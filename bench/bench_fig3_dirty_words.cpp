/**
 * @file
 * Figure 3 — proportion of dirty words in a cache line when it is
 * evicted from the LLC (baseline, per benchmark). This is the sparsity
 * PRA converts into partial write activations.
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const sim::ConfigPoint base{&schemeByName("baseline"),
                                dram::PagePolicy::RelaxedClose, false};

    Table t("Figure 3: dirty words per LLC-evicted line");
    std::vector<std::string> header{"Benchmark"};
    for (unsigned k = 1; k <= 8; ++k)
        header.push_back(std::to_string(k) + "w");
    header.push_back("mean");
    t.header(header);

    const auto names = workloads::benchmarkNames();
    sim::Runner runner;
    SweepTimer timer("fig3");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        const workloads::Mix rate{name, {name, name, name, name}};
        jobs.push_back({rate, base, kBenchTargetInstructions, {}});
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    Histogram total(kWordsPerLine + 1);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &name = names[i];
        const sim::RunResult &r = results[i];
        std::vector<std::string> row{name};
        for (unsigned k = 1; k <= 8; ++k) {
            row.push_back(Table::pct(r.dirtyWords.fraction(k), 1));
            total.record(k, r.dirtyWords.count(k));
        }
        row.push_back(Table::fmt(r.dirtyWords.mean(), 2));
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (unsigned k = 1; k <= 8; ++k)
        avg.push_back(Table::pct(total.fraction(k), 1));
    avg.push_back(Table::fmt(total.mean(), 2));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "Paper: most evicted lines carry few dirty words; PRA's\n"
                 "write-activation granularity distribution (Fig. 11) "
                 "follows this directly.\n";
    return 0;
}
