/**
 * @file
 * Figure 11 — proportion of row-activation granularities under PRA for
 * both the restricted (a) and relaxed (b) close-page policies.
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

void
report(sim::Runner &runner, dram::PagePolicy policy, const char *title,
       const double paper_avg[8])
{
    const sim::ConfigPoint pra{Scheme::Pra, policy, false};

    Table t(title);
    std::vector<std::string> header{"Benchmark"};
    for (unsigned g = 1; g <= 8; ++g)
        header.push_back(std::to_string(g) + "/8");
    t.header(header);

    const auto mixes = workloads::allWorkloads();
    SweepTimer timer(policy == dram::PagePolicy::RestrictedClose
                         ? "fig11a"
                         : "fig11b");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes)
        jobs.push_back({mix, pra, kBenchTargetInstructions, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    Histogram total(9);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        const auto &mix = mixes[i];
        const sim::RunResult &r = results[i];
        std::vector<std::string> row{mix.name};
        for (unsigned g = 1; g <= 8; ++g) {
            row.push_back(Table::pct(r.dramStats.actGranularity
                                         .fraction(g),
                                     1));
            total.record(g, r.dramStats.actGranularity.count(g));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (unsigned g = 1; g <= 8; ++g)
        avg.push_back(Table::pct(total.fraction(g), 1));
    t.addRow(avg);
    std::vector<std::string> paper{"paper avg"};
    for (unsigned g = 0; g < 8; ++g)
        paper.push_back(Table::fmt(paper_avg[g], 2) + "%");
    t.addRow(paper);
    t.print(std::cout);
}

} // namespace

int
main()
{
    // Paper-reported average proportions, 1/8 .. 8/8.
    const double relaxed_paper[8] = {39, 2, 0.43, 0.45,
                                     0.05, 0.05, 0.02, 58};
    const double restricted_paper[8] = {36, 2.3, 0.4, 1.2,
                                        0.04, 0.04, 0.02, 60};

    sim::Runner runner;
    report(runner, dram::PagePolicy::RestrictedClose,
           "Figure 11a: activation granularities, restricted close-page",
           restricted_paper);
    report(runner, dram::PagePolicy::RelaxedClose,
           "Figure 11b: activation granularities, relaxed close-page",
           relaxed_paper);
    return 0;
}
