/**
 * @file
 * Figure 11 — proportion of row-activation granularities under PRA for
 * both the restricted (a) and relaxed (b) close-page policies, plus a
 * registry-driven read-granularity sweep comparing how every scheme
 * activates for reads (write-predicted PRA opens full rows for reads;
 * the speculative-read schemes do not).
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

void
report(sim::Runner &runner, dram::PagePolicy policy, const char *title,
       const double paper_avg[8])
{
    const sim::ConfigPoint pra{&schemeByName("pra"), policy, false};

    Table t(title);
    std::vector<std::string> header{"Benchmark"};
    for (unsigned g = 1; g <= 8; ++g)
        header.push_back(std::to_string(g) + "/8");
    t.header(header);

    const auto mixes = workloads::allWorkloads();
    SweepTimer timer(policy == dram::PagePolicy::RestrictedClose
                         ? "fig11a"
                         : "fig11b");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes)
        jobs.push_back({mix, pra, kBenchTargetInstructions, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    Histogram total(9);
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        const auto &mix = mixes[i];
        const sim::RunResult &r = results[i];
        std::vector<std::string> row{mix.name};
        for (unsigned g = 1; g <= 8; ++g) {
            row.push_back(Table::pct(r.dramStats.actGranularity
                                         .fraction(g),
                                     1));
            total.record(g, r.dramStats.actGranularity.count(g));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (unsigned g = 1; g <= 8; ++g)
        avg.push_back(Table::pct(total.fraction(g), 1));
    t.addRow(avg);
    std::vector<std::string> paper{"paper avg"};
    for (unsigned g = 0; g < 8; ++g)
        paper.push_back(Table::fmt(paper_avg[g], 2) + "%");
    t.addRow(paper);
    t.print(std::cout);
}

/**
 * Read-granularity sweep: for every registered scheme, the distribution
 * of activation granularities over read-serving ACTs only, aggregated
 * across a read-representative workload subset. Schemes without partial
 * reads land entirely in the 8/8 column; the speculative-read plugins
 * (sectored, pra_spec_read) shift mass left. Registry-driven: a new
 * comparator shows up here with zero edits.
 */
void
reportReadGranularity(sim::Runner &runner)
{
    const dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    const std::vector<std::string> names{"GUPS", "LinkedList", "mcf",
                                         "lbm"};
    std::vector<workloads::Mix> mixes;
    for (const auto &n : names)
        mixes.push_back({n, {n, n, n, n}});

    Table t("Read-activation granularity by scheme, relaxed close-page");
    std::vector<std::string> header{"Scheme"};
    for (unsigned g = 1; g <= 8; ++g)
        header.push_back(std::to_string(g) + "/8");
    header.push_back("mean g");
    t.header(header);

    SweepTimer timer("fig11-read-gran");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const SchemeModel *scheme : allSchemes())
        for (const auto &mix : mixes)
            jobs.push_back({mix,
                            sim::ConfigPoint{scheme, policy, false},
                            kBenchTargetInstructions,
                            {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    std::size_t cell = 0;
    for (const SchemeModel *scheme : allSchemes()) {
        Histogram total(9);
        for (std::size_t i = 0; i < mixes.size(); ++i, ++cell)
            for (unsigned g = 1; g <= 8; ++g)
                total.record(g, results[cell]
                                    .dramStats.readActGranularity
                                    .count(g));
        std::vector<std::string> row{scheme->displayName()};
        for (unsigned g = 1; g <= 8; ++g)
            row.push_back(Table::pct(total.fraction(g), 1));
        double mean = 0.0;
        for (unsigned g = 1; g <= 8; ++g)
            mean += g * total.fraction(g);
        row.push_back(Table::fmt(mean, 2));
        t.addRow(row);
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    // Paper-reported average proportions, 1/8 .. 8/8.
    const double relaxed_paper[8] = {39, 2, 0.43, 0.45,
                                     0.05, 0.05, 0.02, 58};
    const double restricted_paper[8] = {36, 2.3, 0.4, 1.2,
                                        0.04, 0.04, 0.02, 60};

    sim::Runner runner;
    report(runner, dram::PagePolicy::RestrictedClose,
           "Figure 11a: activation granularities, restricted close-page",
           restricted_paper);
    report(runner, dram::PagePolicy::RelaxedClose,
           "Figure 11b: activation granularities, relaxed close-page",
           relaxed_paper);
    reportReadGranularity(runner);
    return 0;
}
