/**
 * @file
 * Figure 13 — normalized performance (weighted speedup, Eq. 3), DRAM
 * energy consumption, and energy-delay product of FGA, Half-DRAM, and
 * PRA relative to the baseline (relaxed close-page), over all 14
 * workloads.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    const std::vector<const SchemeModel *> schemes = {&schemeByName("fga"), &schemeByName("halfdram"),
                                         &schemeByName("pra")};

    Table tp("Figure 13a: normalized performance (weighted speedup)");
    Table te("Figure 13b: normalized DRAM energy");
    Table td("Figure 13c: normalized energy-delay product");
    for (Table *t : {&tp, &te, &td})
        t->header({"Workload", "FGA", "Half-DRAM", "PRA"});

    const auto mixes = workloads::allWorkloads();
    const sim::ConfigPoint base_pt{&schemeByName("baseline"), policy, false};
    std::vector<sim::ConfigPoint> points{base_pt};
    for (const SchemeModel *s : schemes)
        points.push_back({s, policy, false});

    sim::Runner runner;
    SweepTimer timer("fig13");
    timer.attach(runner);

    // Shared (4-core) runs: one job per (workload, point) cell.
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes)
        for (const auto &pt : points)
            jobs.push_back({mix, pt, kBenchTargetInstructions, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    // Pre-warm the alone-IPC cache in parallel; the weighted-speedup
    // loop below then hits only warm entries. The compute-once cache
    // makes the result independent of warm-up order.
    std::vector<std::string> apps;
    for (const auto &mix : mixes)
        for (const auto &app : mix.apps)
            if (std::find(apps.begin(), apps.end(), app) == apps.end())
                apps.push_back(app);
    runner.parallelFor(apps.size() * points.size(), [&](std::size_t i) {
        runner.aloneIpc().get(apps[i % apps.size()],
                              points[i / apps.size()]);
    });

    double sum[3][3] = {};
    double n = 0;
    std::size_t job = 0;
    for (const auto &mix : mixes) {
        const sim::RunResult &base = results[job++];
        const double base_ws = runner.weightedSpeedup(mix, base, base_pt);

        std::vector<std::string> rp{mix.name}, re{mix.name},
            rd{mix.name};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const sim::ConfigPoint &pt = points[s + 1];
            const sim::RunResult &r = results[job++];
            const double ws = runner.weightedSpeedup(mix, r, pt);
            const double perf = ws / base_ws;
            const double energy = r.totalEnergyNj / base.totalEnergyNj;
            const double edp = r.edp / base.edp;
            rp.push_back(Table::fmt(perf, 3));
            re.push_back(Table::fmt(energy, 3));
            rd.push_back(Table::fmt(edp, 3));
            sum[0][s] += perf;
            sum[1][s] += energy;
            sum[2][s] += edp;
        }
        tp.addRow(rp);
        te.addRow(re);
        td.addRow(rd);
        n += 1;
    }

    Table *tables[3] = {&tp, &te, &td};
    const char *paper[3] = {
        "paper avg: PRA -0.8% (worst -4.8%); Half-DRAM +0.3%; "
        "FGA -14% (worst -18%)",
        "paper avg: PRA -23% (up to -34%), best of the three",
        "paper avg: PRA -22% (up to -32%), best of the three"};
    for (int k = 0; k < 3; ++k) {
        std::vector<std::string> avg{"average"};
        for (int s = 0; s < 3; ++s)
            avg.push_back(Table::fmt(sum[k][s] / n, 3));
        tables[k]->addRow(avg);
        tables[k]->print(std::cout);
        std::cout << paper[k] << "\n\n";
    }
    return 0;
}
