/**
 * @file
 * Figure 13 — normalized performance (weighted speedup, Eq. 3), DRAM
 * energy consumption, and energy-delay product of FGA, Half-DRAM, and
 * PRA relative to the baseline (relaxed close-page), over all 14
 * workloads.
 */
#include <iostream>

#include "bench_util.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    const std::vector<Scheme> schemes = {Scheme::Fga, Scheme::HalfDram,
                                         Scheme::Pra};

    sim::AloneIpcCache alone;

    Table tp("Figure 13a: normalized performance (weighted speedup)");
    Table te("Figure 13b: normalized DRAM energy");
    Table td("Figure 13c: normalized energy-delay product");
    for (Table *t : {&tp, &te, &td})
        t->header({"Workload", "FGA", "Half-DRAM", "PRA"});

    double sum[3][3] = {};
    double n = 0;
    for (const auto &mix : workloads::allWorkloads()) {
        const sim::ConfigPoint base_pt{Scheme::Baseline, policy, false};
        const sim::RunResult base = runPoint(mix, base_pt);
        const double base_ws =
            sim::weightedSpeedup(mix, base, base_pt, alone);

        std::vector<std::string> rp{mix.name}, re{mix.name},
            rd{mix.name};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const sim::ConfigPoint pt{schemes[s], policy, false};
            const sim::RunResult r = runPoint(mix, pt);
            const double ws = sim::weightedSpeedup(mix, r, pt, alone);
            const double perf = ws / base_ws;
            const double energy = r.totalEnergyNj / base.totalEnergyNj;
            const double edp = r.edp / base.edp;
            rp.push_back(Table::fmt(perf, 3));
            re.push_back(Table::fmt(energy, 3));
            rd.push_back(Table::fmt(edp, 3));
            sum[0][s] += perf;
            sum[1][s] += energy;
            sum[2][s] += edp;
        }
        tp.addRow(rp);
        te.addRow(re);
        td.addRow(rd);
        n += 1;
    }

    Table *tables[3] = {&tp, &te, &td};
    const char *paper[3] = {
        "paper avg: PRA -0.8% (worst -4.8%); Half-DRAM +0.3%; "
        "FGA -14% (worst -18%)",
        "paper avg: PRA -23% (up to -34%), best of the three",
        "paper avg: PRA -22% (up to -32%), best of the three"};
    for (int k = 0; k < 3; ++k) {
        std::vector<std::string> avg{"average"};
        for (int s = 0; s < 3; ++s)
            avg.push_back(Table::fmt(sum[k][s] / n, 3));
        tables[k]->addRow(avg);
        tables[k]->print(std::cout);
        std::cout << paper[k] << "\n\n";
    }
    return 0;
}
