/**
 * @file
 * Section 3 comparison — PRA's intra-chip coverage vs. the Skinflint
 * DRAM System's (SDS) inter-chip coverage. For every LLC writeback we
 * compute (a) PRA's row-activation granularity (dirty words / 8 MAT
 * groups) and (b) SDS's chip-access granularity (byte positions dirty in
 * any word / 8 chips). The paper claims PRA reduces average activation
 * granularity by 42% while SDS reduces chip-access granularity by only
 * 16%.
 */
#include <bit>
#include <iostream>

#include "bench_util.h"
#include "cache/hierarchy.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    Table t("Section 3: PRA word-group coverage vs SDS chip coverage "
            "(write granularity, fraction of full)");
    t.header({"Benchmark", "PRA g/8", "SDS chips/8", "PRA saving",
              "SDS saving"});

    double pra_sum = 0, sds_sum = 0, n = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        // Drive each benchmark through a standalone hierarchy and look
        // at the dirty masks of everything that leaves it.
        cache::HierarchyConfig hc;
        hc.numCores = 1;
        cache::Hierarchy hier(hc);
        auto gen = workloads::makeGenerator(name, 1);

        // Reads (demand fetches) are full-granularity accesses for both
        // schemes; the paper's 42% / 16% figures are averages over ALL
        // accesses, not just writes.
        double words = 0, chips = 0, lines = 0, reads = 0;
        auto account = [&](const cache::Writeback &wb) {
            words += wb.dirty.toWordMask().count();
            chips += std::popcount(wb.dirty.toChipMask());
            lines += 1;
        };
        for (int i = 0; i < 800'000; ++i) {
            const cpu::MemOp op = gen->next();
            const auto out =
                hier.access(0, op.addr, op.isWrite, op.bytes);
            reads += out.needsMemRead ? 1 : 0;
            for (const auto &wb : out.writebacks)
                account(wb);
        }
        for (const auto &wb : hier.flush())
            account(wb);

        const double total = reads + lines;
        const double pra_g =
            total ? (reads * 8.0 + words) / total / 8.0 : 1.0;
        const double sds_g =
            total ? (reads * 8.0 + chips) / total / 8.0 : 1.0;
        t.addRow({name, Table::fmt(pra_g, 3), Table::fmt(sds_g, 3),
                  Table::pct(1.0 - pra_g), Table::pct(1.0 - sds_g)});
        pra_sum += pra_g;
        sds_sum += sds_g;
        n += 1;
    }
    t.addRow({"average", Table::fmt(pra_sum / n, 3),
              Table::fmt(sds_sum / n, 3),
              Table::pct(1.0 - pra_sum / n),
              Table::pct(1.0 - sds_sum / n)});
    t.print(std::cout);

    std::cout << "Paper: PRA reduces average row-activation granularity "
                 "by 42%; SDS reduces chip-access granularity by only "
                 "16% (a single fully-dirty word needs every chip but "
                 "only one MAT group).\n";
    return 0;
}
