/**
 * @file
 * Table 2 — DRAM die area and row-activation energy breakdown of the
 * 2Gb x8 DDR3-1600 chip from the analytic CACTI-style model, printed
 * against the paper's published values.
 */
#include <iostream>

#include "common/table.h"
#include "power/cacti_model.h"

using namespace pra;
using power::CactiModel;

int
main()
{
    const CactiModel model;
    const auto &area = model.area();
    const auto &e = model.components();

    Table at("Table 2 (area): die area breakdown, mm^2");
    at.header({"Component", "Model", "Paper"});
    at.addRow({"DRAM cell", Table::fmt(area.dramCell, 3), "4.677"});
    at.addRow({"Sense amplifier", Table::fmt(area.senseAmplifier, 3),
               "1.909"});
    at.addRow({"Row predecoder", Table::fmt(area.rowPredecoder, 3),
               "0.067"});
    at.addRow({"Local wordline driver",
               Table::fmt(area.localWordlineDriver, 3), "1.617"});
    at.addRow({"Total die (incl. others)", Table::fmt(area.totalDie, 3),
               "11.884"});
    at.print(std::cout);

    Table et("Table 2 (energy): row activation energy, pJ");
    et.header({"Component", "Model", "Paper"});
    et.addRow({"Local bitline (per MAT)", Table::fmt(e.localBitline, 3),
               "15.583"});
    et.addRow({"Local sense amplifier (per MAT)",
               Table::fmt(e.localSenseAmp, 3), "1.257"});
    et.addRow({"Local wordline (per MAT)", Table::fmt(e.localWordline, 3),
               "0.046"});
    et.addRow({"Row decoder (per MAT)", Table::fmt(e.rowDecoder, 3),
               "0.035"});
    et.addRow({"Total per MAT", Table::fmt(e.perMat(), 3), "16.921"});
    et.addRow({"Row activation bus (per bank)",
               Table::fmt(e.rowActivationBus, 3), "17.944"});
    et.addRow({"Row predecoder (per bank)", Table::fmt(e.rowPredecoder, 3),
               "0.072"});
    et.addRow({"Total per bank (16 MATs)",
               Table::fmt(model.fullRowEnergy(), 3), "288.752"});
    et.print(std::cout);
    return 0;
}
