/**
 * @file
 * Controller-policy ablations on the conventional baseline: the
 * row-hit cap (the paper adopts 4, after Kaseridis et al.), write-queue
 * watermarks, and precharge power-down. These show why the baseline is
 * configured the way the paper configures it.
 */
#include <iostream>

#include "bench_util.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const workloads::Mix mix{"MIX1",
                             {"bzip2", "lbm", "libquantum", "omnetpp"}};

    Table cap("Row-hit cap sweep (relaxed close-page, MIX1)");
    cap.header({"cap", "rd hit", "wr hit", "IPC0", "power mW"});
    for (unsigned c : {1u, 2u, 4u, 8u, 16u}) {
        sim::SystemConfig cfg = benchConfig(
            {Scheme::Baseline, dram::PagePolicy::RelaxedClose, false},
            500'000);
        cfg.dram.rowHitCap = c;
        const sim::RunResult r = sim::runWorkload(mix, cfg);
        cap.addRow({std::to_string(c),
                    Table::pct(r.dramStats.readHitRate()),
                    Table::pct(r.dramStats.writeHitRate()),
                    Table::fmt(r.ipc[0], 3),
                    Table::fmt(r.avgPowerMw, 0)});
    }
    cap.print(std::cout);

    Table wm("Write-drain watermark sweep (GUPS)");
    wm.header({"high/low", "IPC0", "rd latency-sensitive power mW"});
    const workloads::Mix gups{"GUPS", {"GUPS", "GUPS", "GUPS", "GUPS"}};
    struct Wm
    {
        unsigned hi, lo;
    };
    for (Wm w : {Wm{16, 4}, Wm{32, 8}, Wm{48, 16}, Wm{60, 32}}) {
        sim::SystemConfig cfg = benchConfig(
            {Scheme::Baseline, dram::PagePolicy::RelaxedClose, false},
            500'000);
        cfg.dram.writeHighWatermark = w.hi;
        cfg.dram.writeLowWatermark = w.lo;
        const sim::RunResult r = sim::runWorkload(gups, cfg);
        wm.addRow({std::to_string(w.hi) + "/" + std::to_string(w.lo),
                   Table::fmt(r.ipc[0], 3), Table::fmt(r.avgPowerMw, 0)});
    }
    wm.print(std::cout);

    Table pd("Precharge power-down (bzip2, low intensity)");
    pd.header({"power-down", "BG energy nJ", "total power mW", "IPC0"});
    const workloads::Mix bzip{"bzip2",
                              {"bzip2", "bzip2", "bzip2", "bzip2"}};
    for (bool enabled : {false, true}) {
        sim::SystemConfig cfg = benchConfig(
            {Scheme::Baseline, dram::PagePolicy::RelaxedClose, false},
            500'000);
        cfg.dram.powerDownEnabled = enabled;
        const sim::RunResult r = sim::runWorkload(bzip, cfg);
        pd.addRow({enabled ? "on" : "off",
                   Table::fmt(r.breakdown.background, 0),
                   Table::fmt(r.avgPowerMw, 0), Table::fmt(r.ipc[0], 3)});
    }
    pd.print(std::cout);
    return 0;
}
