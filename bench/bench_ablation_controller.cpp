/**
 * @file
 * Controller-policy ablations on the conventional baseline: the
 * row-hit cap (the paper adopts 4, after Kaseridis et al.), write-queue
 * watermarks, precharge power-down, and the scheduler policy (FR-FCFS
 * against strict FCFS and FR-FCFS with write-age promotion). These show
 * why the baseline is configured the way the paper configures it.
 */
#include <iostream>

#include "bench_util.h"
#include "dram/sched/scheduler_policy.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

sim::SystemConfig
baselineCfg()
{
    return benchConfig(
        {&schemeByName("baseline"), dram::PagePolicy::RelaxedClose, false},
        500'000);
}

} // namespace

int
main()
{
    const workloads::Mix mix{"MIX1",
                             {"bzip2", "lbm", "libquantum", "omnetpp"}};
    const workloads::Mix gups{"GUPS", {"GUPS", "GUPS", "GUPS", "GUPS"}};
    const workloads::Mix bzip{"bzip2",
                              {"bzip2", "bzip2", "bzip2", "bzip2"}};

    const std::vector<unsigned> caps{1u, 2u, 4u, 8u, 16u};
    struct Wm
    {
        unsigned hi, lo;
    };
    const std::vector<Wm> wms{{16, 4}, {32, 8}, {48, 16}, {60, 32}};
    const std::vector<bool> pds{false, true};

    // All three sweeps share one job list: caps, then watermarks, then
    // power-down, each as a full-config override.
    sim::Runner runner;
    SweepTimer timer("ablation_controller");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (unsigned c : caps) {
        sim::SystemConfig cfg = baselineCfg();
        cfg.dram.rowHitCap = c;
        jobs.push_back({mix, {}, 0, cfg});
    }
    for (const Wm &w : wms) {
        sim::SystemConfig cfg = baselineCfg();
        cfg.dram.writeHighWatermark = w.hi;
        cfg.dram.writeLowWatermark = w.lo;
        jobs.push_back({gups, {}, 0, cfg});
    }
    for (bool enabled : pds) {
        sim::SystemConfig cfg = baselineCfg();
        cfg.dram.powerDownEnabled = enabled;
        jobs.push_back({bzip, {}, 0, cfg});
    }
    const std::vector<dram::SchedulerKind> scheds{
        dram::SchedulerKind::FrFcfs, dram::SchedulerKind::Fcfs,
        dram::SchedulerKind::FrFcfsWriteAge};
    for (dram::SchedulerKind kind : scheds) {
        for (const workloads::Mix &m : {gups, mix}) {
            sim::SystemConfig cfg = baselineCfg();
            cfg.dram.scheduler = kind;
            jobs.push_back({m, {}, 0, cfg});
        }
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);
    std::size_t job = 0;

    Table cap("Row-hit cap sweep (relaxed close-page, MIX1)");
    cap.header({"cap", "rd hit", "wr hit", "IPC0", "power mW"});
    for (unsigned c : caps) {
        const sim::RunResult &r = results[job++];
        cap.addRow({std::to_string(c),
                    Table::pct(r.dramStats.readHitRate()),
                    Table::pct(r.dramStats.writeHitRate()),
                    Table::fmt(r.ipc[0], 3),
                    Table::fmt(r.avgPowerMw, 0)});
    }
    cap.print(std::cout);

    Table wm("Write-drain watermark sweep (GUPS)");
    wm.header({"high/low", "IPC0", "rd latency-sensitive power mW"});
    for (const Wm &w : wms) {
        const sim::RunResult &r = results[job++];
        wm.addRow({std::to_string(w.hi) + "/" + std::to_string(w.lo),
                   Table::fmt(r.ipc[0], 3), Table::fmt(r.avgPowerMw, 0)});
    }
    wm.print(std::cout);

    Table pd("Precharge power-down (bzip2, low intensity)");
    pd.header({"power-down", "BG energy nJ", "total power mW", "IPC0"});
    for (bool enabled : pds) {
        const sim::RunResult &r = results[job++];
        pd.addRow({enabled ? "on" : "off",
                   Table::fmt(r.breakdown.background, 0),
                   Table::fmt(r.avgPowerMw, 0), Table::fmt(r.ipc[0], 3)});
    }
    pd.print(std::cout);

    Table sched("Scheduler policy sweep (relaxed close-page)");
    sched.header({"policy", "mix", "rd hit", "wr hit", "rd lat",
                  "IPC0", "power mW"});
    for (dram::SchedulerKind kind : scheds) {
        for (const workloads::Mix &m : {gups, mix}) {
            const sim::RunResult &r = results[job++];
            sched.addRow({dram::schedulerKindName(kind), m.name,
                          Table::pct(r.dramStats.readHitRate()),
                          Table::pct(r.dramStats.writeHitRate()),
                          Table::fmt(r.dramStats.readLatency.mean(), 1),
                          Table::fmt(r.ipc[0], 3),
                          Table::fmt(r.avgPowerMw, 0)});
        }
    }
    sched.print(std::cout);
    return 0;
}
