/**
 * @file
 * Figure 14 — case study of PRA combined with Half-DRAM under the
 * restricted close-page policy (where relaxed tRRD/tFAW matter most):
 * average DRAM power, normalized performance, DRAM energy, and EDP of
 * Half-DRAM, PRA, and the combined scheme over all 14 workloads. The
 * comparator plugins (Sectored DRAM and PRA+SpecRead) ride along as
 * extra columns under the same normalization.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const dram::PagePolicy policy = dram::PagePolicy::RestrictedClose;
    const std::vector<const SchemeModel *> schemes = {
        &schemeByName("halfdram"),      &schemeByName("pra"),
        &schemeByName("halfdram+pra"),  &schemeByName("sectored"),
        &schemeByName("pra_spec_read")};

    const auto mixes = workloads::allWorkloads();
    const sim::ConfigPoint base_pt{&schemeByName("baseline"), policy, false};
    std::vector<sim::ConfigPoint> points{base_pt};
    for (const SchemeModel *s : schemes)
        points.push_back({s, policy, false});

    sim::Runner runner;
    SweepTimer timer("fig14");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes)
        for (const auto &pt : points)
            jobs.push_back({mix, pt, kBenchTargetInstructions, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    std::vector<std::string> apps;
    for (const auto &mix : mixes)
        for (const auto &app : mix.apps)
            if (std::find(apps.begin(), apps.end(), app) == apps.end())
                apps.push_back(app);
    runner.parallelFor(apps.size() * points.size(), [&](std::size_t i) {
        runner.aloneIpc().get(apps[i % apps.size()],
                              points[i / apps.size()]);
    });

    const std::size_t ns = schemes.size();
    std::vector<double> power_sum(ns), perf_sum(ns), energy_sum(ns),
        edp_sum(ns);
    double n = 0;
    std::size_t job = 0;
    for (const auto &mix : mixes) {
        const sim::RunResult &base = results[job++];
        const double base_ws = runner.weightedSpeedup(mix, base, base_pt);
        for (std::size_t s = 0; s < ns; ++s) {
            const sim::ConfigPoint &pt = points[s + 1];
            const sim::RunResult &r = results[job++];
            power_sum[s] += r.avgPowerMw / base.avgPowerMw;
            perf_sum[s] += runner.weightedSpeedup(mix, r, pt) / base_ws;
            energy_sum[s] += r.totalEnergyNj / base.totalEnergyNj;
            edp_sum[s] += r.edp / base.edp;
        }
        n += 1;
    }

    Table t("Figure 14: Half-DRAM vs PRA vs combined, with comparator "
            "plugins (restricted close-page, average of 14 workloads)");
    std::vector<std::string> header{"Metric"};
    for (const SchemeModel *s : schemes)
        header.push_back(s->displayName());
    t.header(header);
    auto row = [&](const char *name, const std::vector<double> &vals) {
        std::vector<std::string> cells{name};
        for (double v : vals)
            cells.push_back(Table::fmt(v / n, 3));
        t.addRow(cells);
    };
    row("DRAM power (norm.)", power_sum);
    row("Performance (norm.)", perf_sum);
    row("DRAM energy (norm.)", energy_sum);
    row("EDP (norm.)", edp_sum);
    t.print(std::cout);

    std::cout << "Paper: the combined scheme is synergistic — better "
                 "performance than either alone (relaxed tRRD/tFAW bite "
                 "hardest under restricted close-page) and the lowest "
                 "power/energy/EDP of the three.\n";
    return 0;
}
