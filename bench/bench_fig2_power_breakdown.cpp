/**
 * @file
 * Figure 2 — DRAM power consumption breakdown of the conventional
 * baseline. As in the paper's motivational study, a single core runs
 * each benchmark (relaxed close-page policy); the table reports each
 * category's share of total DRAM power: ACT-PRE, RD, WR, RD I/O,
 * WR I/O, background, refresh.
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const sim::ConfigPoint base{&schemeByName("baseline"),
                                dram::PagePolicy::RelaxedClose, false};

    Table t("Figure 2: baseline DRAM power breakdown (single core)");
    t.header({"Benchmark", "ACT-PRE", "RD", "WR", "RD I/O", "WR I/O",
              "BG", "REF", "Total mW"});

    // One single-core job per benchmark (a one-app mix builds exactly
    // the generator the motivational study used).
    const auto names = workloads::benchmarkNames();
    sim::Runner runner;
    SweepTimer timer("fig2");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names)
        jobs.push_back({workloads::Mix{name, {name}}, base,
                        kBenchTargetInstructions, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    double acc[7] = {};
    double count = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &name = names[i];
        const sim::RunResult &r = results[i];

        const auto &e = r.breakdown;
        const double total = e.total();
        const double shares[7] = {
            e.actPre / total, e.read / total, e.write / total,
            e.readIo / total, e.writeIo / total, e.background / total,
            e.refresh / total,
        };
        std::vector<std::string> row{name};
        for (int i = 0; i < 7; ++i) {
            row.push_back(Table::pct(shares[i], 1));
            acc[i] += shares[i];
        }
        row.push_back(Table::fmt(r.avgPowerMw, 0));
        t.addRow(row);
        count += 1;
    }

    std::vector<std::string> avg{"average"};
    for (int i = 0; i < 7; ++i)
        avg.push_back(Table::pct(acc[i] / count, 1));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "Paper: ACT-PRE up to 33%, average 25%; I/O (RD I/O + "
                 "WR I/O) up to 19%, average 14%.\n";
    return 0;
}
