/**
 * @file
 * PRAC overhead-vs-threshold curves (DESIGN.md §13): for each scheme x
 * workload, sweep the disturbance threshold from "PRAC off" down
 * through increasingly paranoid settings and report what the
 * mitigation machinery costs — RFM frequency, IPC delta, and total
 * DRAM energy delta, each against the PRAC-off point of the same
 * scheme. Partial activation is orthogonal to activation counting, so
 * the interesting question the table answers is whether PRA's
 * partial-row ACTs change the overhead slope relative to a
 * conventional-activation scheme (`sectored`) at the same threshold.
 *
 * Results land on stdout and machine-readably in BENCH_prac.json
 * (one record per cell). PRA_SMOKE=1 shrinks the grid for CI.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

bool
smokeMode()
{
    const char *env = std::getenv("PRA_SMOKE");
    return env != nullptr && env[0] == '1';
}

/** 0 = PRAC off; otherwise DramConfig::disturbanceThreshold. */
std::vector<unsigned>
thresholds(bool smoke)
{
    if (smoke)
        return {0, 64};
    return {0, 1024, 256, 64};
}

sim::SystemConfig
cellConfig(const SchemeModel *scheme, unsigned threshold,
           std::uint64_t target)
{
    sim::SystemConfig cfg = benchConfig(
        {scheme, dram::PagePolicy::RelaxedClose, false}, target);
    if (threshold != 0) {
        cfg.dram.pracEnabled = true;
        cfg.dram.disturbanceThreshold = threshold;
    }
    return cfg;
}

std::string
thresholdName(unsigned threshold)
{
    return threshold == 0 ? std::string("off") : std::to_string(threshold);
}

} // namespace

int
main()
{
    const bool smoke = smokeMode();
    const std::uint64_t target = smoke ? 120'000 : 500'000;
    const std::vector<workloads::Mix> mixes =
        smoke ? std::vector<workloads::Mix>{
                    {"GUPS", {"GUPS", "GUPS", "GUPS", "GUPS"}}}
              : std::vector<workloads::Mix>{
                    {"GUPS", {"GUPS", "GUPS", "GUPS", "GUPS"}},
                    {"lbm", {"lbm", "lbm", "lbm", "lbm"}}};
    const std::vector<const SchemeModel *> schemes = {
        &schemeByName("pra"), &schemeByName("sectored")};
    const std::vector<unsigned> curve = thresholds(smoke);

    sim::Runner runner;
    SweepTimer timer("prac_overhead");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes) {
        for (const SchemeModel *scheme : schemes) {
            for (unsigned thr : curve)
                jobs.push_back({mix, {}, 0, cellConfig(scheme, thr, target)});
        }
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    Table t("PRAC overhead vs disturbance threshold"
            " (deltas vs PRAC off, same scheme)");
    t.header({"Workload", "Scheme", "Threshold", "RFMs", "RFM/Mcyc",
              "IPC delta", "Energy delta"});

    std::ofstream json("BENCH_prac.json");
    json << "{\n  \"bench\": \"prac_overhead\",\n  \"smoke\": "
         << (smoke ? "true" : "false")
         << ",\n  \"target_instructions\": " << target
         << ",\n  \"cells\": [\n";

    std::size_t job = 0;
    bool first = true;
    for (const auto &mix : mixes) {
        for (const SchemeModel *scheme : schemes) {
            // curve[0] is the PRAC-off reference for this scheme.
            const sim::RunResult &ref = results[job];
            for (unsigned thr : curve) {
                const sim::RunResult &r = results[job++];
                const double rfm_per_mcyc =
                    r.dramCycles != 0
                        ? 1e6 * static_cast<double>(r.dramStats.rfms) /
                              static_cast<double>(r.dramCycles)
                        : 0.0;
                const double ipc_delta = r.ipc[0] / ref.ipc[0] - 1.0;
                const double energy_delta =
                    r.totalEnergyNj / ref.totalEnergyNj - 1.0;
                t.addRow({mix.name, scheme->displayName(),
                          thresholdName(thr),
                          std::to_string(r.dramStats.rfms),
                          Table::fmt(rfm_per_mcyc, 1),
                          Table::pct(ipc_delta), Table::pct(energy_delta)});

                if (!first)
                    json << ",\n";
                first = false;
                json << "    {\"workload\": \"" << mix.name
                     << "\", \"scheme\": \"" << scheme->displayName()
                     << "\", \"disturbance_threshold\": " << thr
                     << ", \"rfms\": " << r.dramStats.rfms
                     << ", \"rfm_ops\": " << r.energy.rfmOps
                     << ", \"ipc\": " << r.ipc[0]
                     << ", \"total_energy_nj\": " << r.totalEnergyNj
                     << ", \"ipc_delta\": " << ipc_delta
                     << ", \"energy_delta\": " << energy_delta << "}";
            }
        }
    }
    json << "\n  ]\n}\n";
    t.print(std::cout);

    std::cout
        << "Reading the table: at JEDEC-like thresholds (>=1024) the\n"
           "mitigation is effectively free; the overhead only becomes\n"
           "visible at paranoid thresholds. Counting is per-ACT, not\n"
           "per-bit, so partial activation does not amplify the hammer\n"
           "rate — PRA's overhead curve is, if anything, slightly\n"
           "shallower than sectored's, because the IPC it gives up to\n"
           "RFM stalls starts from a longer-queue operating point\n"
           "(BENCH_prac.json).\n";
    return 0;
}
