/**
 * @file
 * Figure 10 — impact of PRA on row-buffer read/write/total hit rates
 * (relaxed close-page). False row-buffer hits count as misses and are
 * reported separately, as in Section 5.2.1.
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    const sim::ConfigPoint base{&schemeByName("baseline"),
                                dram::PagePolicy::RelaxedClose, false};
    const sim::ConfigPoint pra{&schemeByName("pra"),
                               dram::PagePolicy::RelaxedClose, false};

    Table t("Figure 10: row-buffer hit rates, Baseline -> PRA");
    t.header({"Benchmark", "Rd base", "Rd PRA", "Wr base", "Wr PRA",
              "Tot base", "Tot PRA", "FalseHit rd%", "FalseHit wr%"});

    const auto names = workloads::benchmarkNames();
    sim::Runner runner;
    SweepTimer timer("fig10");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        const workloads::Mix rate{name, {name, name, name, name}};
        jobs.push_back({rate, base, kBenchTargetInstructions, {}});
        jobs.push_back({rate, pra, kBenchTargetInstructions, {}});
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    double base_tot = 0, pra_tot = 0, rd_false = 0, n = 0;
    std::size_t job = 0;
    for (const auto &name : names) {
        const sim::RunResult &rb = results[job++];
        const sim::RunResult &rp = results[job++];
        const auto &db = rb.dramStats;
        const auto &dp = rp.dramStats;
        const double false_rd =
            dp.readReqs
                ? 100.0 * dp.readFalseHits /
                      static_cast<double>(dp.readReqs)
                : 0.0;
        const double false_wr =
            dp.writeReqs
                ? 100.0 * dp.writeFalseHits /
                      static_cast<double>(dp.writeReqs)
                : 0.0;
        t.addRow({name, Table::pct(db.readHitRate()),
                  Table::pct(dp.readHitRate()),
                  Table::pct(db.writeHitRate()),
                  Table::pct(dp.writeHitRate()),
                  Table::pct(db.totalHitRate()),
                  Table::pct(dp.totalHitRate()),
                  Table::fmt(false_rd, 3), Table::fmt(false_wr, 3)});
        base_tot += db.totalHitRate();
        pra_tot += dp.totalHitRate();
        rd_false += false_rd;
        n += 1;
    }
    t.print(std::cout);

    std::cout << "Average total hit rate: baseline "
              << Table::pct(base_tot / n) << " -> PRA "
              << Table::pct(pra_tot / n)
              << " (paper: 11.2% -> 11.1%). Average read false-hit rate "
              << Table::fmt(rd_false / n, 3)
              << "% (paper: 0.04% average, 0.26% max).\n";
    return 0;
}
