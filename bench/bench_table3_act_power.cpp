/**
 * @file
 * Table 3 (power rows) — derives the activation power from IDD currents
 * via Eq. 1/2 and scales it across PRA granularities with the CACTI
 * component model, against the paper's published values.
 */
#include <iostream>

#include "common/table.h"
#include "power/cacti_model.h"
#include "power/idd.h"
#include "power/power_params.h"

using namespace pra;

int
main()
{
    const power::IddParams idd;
    const double p_act = power::actPowerFromIdd(idd);

    std::cout << "Eq. 1/2 derivation (2Gb x8 DDR3-1600 at 20 nm):\n"
              << "  IDD0 = " << idd.idd0 << " mA, IDD2N = " << idd.idd2n
              << " mA, IDD3N = " << idd.idd3n << " mA, VDD = " << idd.vdd
              << " V\n"
              << "  I_ACT = " << Table::fmt(power::actCurrent(idd), 2)
              << " mA  ->  P_ACT = " << Table::fmt(p_act, 2)
              << " mW (paper: 22.2 mW)\n\n";

    const power::CactiModel cacti;
    const power::PowerParams published;

    Table t("Table 3: ACT power per activation granularity (mW)");
    t.header({"Granularity", "CACTI-scaled", "Paper", "Delta"});
    for (unsigned g = 8; g >= 1; --g) {
        const double derived = cacti.actPower(g, p_act);
        const double paper = published.actPowerAt(g);
        t.addRow({std::to_string(g) + "/8 row", Table::fmt(derived, 1),
                  Table::fmt(paper, 1),
                  Table::pct((derived - paper) / paper)});
    }
    t.print(std::cout);

    std::cout << "Background powers: ACT STBY = "
              << Table::fmt(power::actStandbyPower(idd), 0)
              << " mW (paper 42), PRE STBY = "
              << Table::fmt(power::preStandbyPower(idd), 0)
              << " mW (paper 27)\n";
    return 0;
}
