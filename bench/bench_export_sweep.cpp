/**
 * @file
 * Full-sweep export: runs every workload x scheme point of the main
 * evaluation and writes machine-readable results to pra_sweep.csv and
 * pra_sweep.json in the working directory (and a short summary to
 * stdout). This is the artifact downstream plotting/regression tooling
 * consumes.
 */
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    std::ofstream csv("pra_sweep.csv");
    std::ofstream json("pra_sweep.json");
    sim::CsvWriter writer(csv);
    json << "[\n";

    const std::vector<Scheme> schemes = {Scheme::Baseline, Scheme::Fga,
                                         Scheme::HalfDram, Scheme::Sds,
                                         Scheme::Pra, Scheme::HalfDramPra};
    // The eight rate-mode workloads; mixes are covered by the figure
    // benches and make this export twice as slow.
    const auto names = workloads::benchmarkNames();
    sim::Runner runner;
    SweepTimer timer("export_sweep");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    std::vector<std::pair<std::string, sim::ConfigPoint>> labels;
    for (const auto &name : names) {
        const workloads::Mix rate{name, {name, name, name, name}};
        for (Scheme scheme : schemes) {
            const sim::ConfigPoint point{
                scheme, dram::PagePolicy::RelaxedClose, false};
            jobs.push_back({rate, point, 400'000, {}});
            labels.emplace_back(name, point);
        }
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    bool first = true;
    unsigned runs = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &[name, point] = labels[i];
        const sim::RunResult &r = results[i];
        writer.add(name, point.key(), r);
        json << (first ? "" : ",\n") << sim::toJson(name, point.key(), r);
        first = false;
        ++runs;
    }
    json << "\n]\n";

    std::cout << "wrote " << runs
              << " runs to pra_sweep.csv / pra_sweep.json\n";
    return 0;
}
