/**
 * @file
 * Full-sweep export: runs every workload x scheme point of the main
 * evaluation and writes machine-readable results to pra_sweep.csv and
 * pra_sweep.json in the working directory (and a short summary to
 * stdout). This is the artifact downstream plotting/regression tooling
 * consumes.
 *
 * The sweep is run twice through one Runner — cold, then warm against
 * the result cache — and a machine-readable timing summary lands in
 * BENCH_sweep.json (wall seconds, simulated cycles, and the event
 * engine's skip/wake counters per pass, DESIGN.md §11).
 *
 * Modes:
 *  - PRA_SMOKE=1 shrinks the grid (3 workloads x {Baseline, Pra},
 *    120k instructions) for CI;
 *  - --assert-event-speedup replaces the export with a cold
 *    tick-vs-event wall-time comparison and exits non-zero unless the
 *    event engine is at least 2x faster. The comparison runs at the
 *    ROADMAP north-star geometry (kScaleGeometry: many channels whose
 *    idle cycles the wakeup queue skips) rather than the saturated 2x2
 *    paper grid, shares functional warmups across both passes, and
 *    disables the result cache from inside the binary: cache keys
 *    deliberately exclude the observational engine knob, so a cached
 *    tick run would otherwise be served to the event pass (or vice
 *    versa) and fake the ratio.
 */
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/report.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

/** One timed pass over the grid, as it lands in BENCH_sweep.json. */
struct PassTotals
{
    double wallSecs = 0.0;
    std::uint64_t dramCycles = 0;
    std::uint64_t skippedTicks = 0;
    std::uint64_t eventsPopped = 0;
    std::uint64_t rounds = 0;
    std::uint64_t heapPeak = 0;

    void
    add(const std::vector<sim::RunResult> &results)
    {
        for (const sim::RunResult &r : results) {
            dramCycles += r.dramCycles;
            skippedTicks += r.engine.skippedTicks;
            eventsPopped += r.engine.eventsPopped;
            rounds += r.engine.rounds;
            heapPeak = std::max(heapPeak, r.engine.heapPeak);
        }
    }
};

bool
smokeMode()
{
    const char *env = std::getenv("PRA_SMOKE");
    return env != nullptr && env[0] == '1';
}

const char *
engineName(dram::EngineKind kind)
{
    return kind == dram::EngineKind::Event ? "event" : "tick";
}

/** Channel/rank geometry for a job grid; {0, 0} keeps the default. */
struct Geometry
{
    unsigned channels = 0;
    unsigned ranks = 0;
};

/**
 * The assert-mode geometry: the ROADMAP north-star is datacenter-scale
 * configs with many channels x ranks, where most channels idle on any
 * given cycle — the regime the wakeup-queue engine exists for. The
 * default 2x2 paper geometry keeps every channel saturated, so it
 * measures per-round cost, not event-skipping.
 */
constexpr Geometry kScaleGeometry{32, 2};

/** The workload x scheme job list; @p engine forces one engine kind. */
std::vector<sim::SweepJob>
buildJobs(const std::vector<std::string> &names,
          const std::vector<const SchemeModel *> &schemes, std::uint64_t target,
          std::vector<std::pair<std::string, sim::ConfigPoint>> *labels,
          std::optional<dram::EngineKind> engine = std::nullopt,
          Geometry geom = {})
{
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        const workloads::Mix rate{name, {name, name, name, name}};
        for (const SchemeModel *scheme : schemes) {
            const sim::ConfigPoint point{
                scheme, dram::PagePolicy::RelaxedClose, false};
            sim::SweepJob job{rate, point, target, {}};
            if (engine || geom.channels != 0) {
                sim::SystemConfig cfg = benchConfig(point, target);
                if (engine)
                    cfg.dram.engine = *engine;
                if (geom.channels != 0) {
                    cfg.dram.channels = geom.channels;
                    cfg.dram.ranksPerChannel = geom.ranks;
                }
                job.config = cfg;
            }
            jobs.push_back(std::move(job));
            if (labels != nullptr)
                labels->emplace_back(name, point);
        }
    }
    return jobs;
}

/** Run @p jobs through @p runner, timing the wall clock. */
std::vector<sim::RunResult>
timedRun(sim::Runner &runner, const std::vector<sim::SweepJob> &jobs,
         PassTotals &totals)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::RunResult> results = runner.run(jobs);
    totals.wallSecs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    totals.add(results);
    return results;
}

void
jsonPass(std::ostream &os, const char *name, const PassTotals &p)
{
    os << "  \"" << name << "\": {\"wall_s\": " << p.wallSecs
       << ", \"dram_cycles\": " << p.dramCycles
       << ", \"skipped_ticks\": " << p.skippedTicks
       << ", \"events_popped\": " << p.eventsPopped
       << ", \"rounds\": " << p.rounds << ", \"heap_peak\": " << p.heapPeak
       << "}";
}

void
jsonHeader(std::ostream &os, const char *mode, bool smoke,
           std::size_t cells, std::uint64_t target)
{
    os << "{\n  \"mode\": \"" << mode << "\",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"cells\": " << cells
       << ",\n  \"target_instructions\": " << target << ",\n";
}

int
assertEventSpeedup(const std::vector<std::string> &names,
                   const std::vector<const SchemeModel *> &schemes, std::uint64_t target,
                   bool smoke)
{
    setenv("PRA_NO_CACHE", "1", 1);   // See file header: keys ignore engine.

    // One Runner for both passes: warmup keys deliberately exclude the
    // engine knob, so the functional warm snapshots (which never touch
    // DRAM timing) are computed once and shared — the measured gap is
    // the engines, not duplicated warmup. The result cache stays off
    // (above), so no simulation output crosses between passes.
    sim::Runner runner;
    auto timeEngine = [&](dram::EngineKind kind, PassTotals &totals) {
        const std::vector<sim::SweepJob> jobs = buildJobs(
            names, schemes, target, nullptr, kind, kScaleGeometry);
        timedRun(runner, jobs, totals);
        return jobs.size();
    };

    // Populate the shared warm snapshots outside both timed regions so
    // neither engine pays them (first-pass warmup would otherwise bias
    // the ratio toward whichever engine runs second).
    const std::vector<sim::SweepJob> prewarm = buildJobs(
        names, schemes, target, nullptr, std::nullopt, kScaleGeometry);
    runner.parallelFor(prewarm.size(), [&](std::size_t i) {
        runner.warmups().get(sim::sweepJobConfig(prewarm[i]),
                             prewarm[i].mix);
    });

    PassTotals tick, event;
    const std::size_t cells = timeEngine(dram::EngineKind::Tick, tick);
    timeEngine(dram::EngineKind::Event, event);
    const double speedup =
        event.wallSecs > 0.0 ? tick.wallSecs / event.wallSecs : 0.0;

    {
        std::ofstream out("BENCH_sweep.json");
        jsonHeader(out, "assert-event-speedup", smoke, cells, target);
        out << "  \"channels\": " << kScaleGeometry.channels
            << ",\n  \"ranks_per_channel\": " << kScaleGeometry.ranks
            << ",\n";
        jsonPass(out, "tick", tick);
        out << ",\n";
        jsonPass(out, "event", event);
        out << ",\n  \"speedup\": " << speedup << "\n}\n";
    }

    std::cout << "tick " << tick.wallSecs << " s, event " << event.wallSecs
              << " s, speedup " << speedup << "x over " << cells
              << " cells (BENCH_sweep.json)\n";
    if (speedup < 2.0) {
        std::cerr << "FAIL: event engine speedup " << speedup
                  << "x is below the required 2x\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool assert_speedup =
        argc > 1 && std::string(argv[1]) == "--assert-event-speedup";
    const bool smoke = smokeMode();

    std::vector<const SchemeModel *> schemes = {&schemeByName("baseline"), &schemeByName("fga"),
                                   &schemeByName("halfdram"), &schemeByName("sds"),
                                   &schemeByName("pra"), &schemeByName("halfdram+pra")};
    // The eight rate-mode workloads; mixes are covered by the figure
    // benches and make this export twice as slow.
    std::vector<std::string> names = workloads::benchmarkNames();
    std::uint64_t target = 400'000;
    if (smoke) {
        schemes = {&schemeByName("baseline"), &schemeByName("pra")};
        names.resize(std::min<std::size_t>(names.size(), 3));
        target = 120'000;
    }

    if (assert_speedup)
        return assertEventSpeedup(names, schemes, target, smoke);

    std::ofstream csv("pra_sweep.csv");
    std::ofstream json("pra_sweep.json");
    sim::CsvWriter writer(csv);
    json << "[\n";

    sim::Runner runner;
    SweepTimer timer("export_sweep");
    timer.attach(runner);
    std::vector<std::pair<std::string, sim::ConfigPoint>> labels;
    const std::vector<sim::SweepJob> jobs =
        buildJobs(names, schemes, target, &labels);

    PassTotals cold, warm;
    const std::vector<sim::RunResult> results =
        timedRun(runner, jobs, cold);
    timer.add(results);
    // Second pass through the same runner: every cell must now be
    // served from the result cache (when one is enabled); the wall-time
    // gap is the reuse headroom recorded in BENCH_sweep.json.
    timedRun(runner, jobs, warm);

    bool first = true;
    unsigned runs = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &[name, point] = labels[i];
        const sim::RunResult &r = results[i];
        writer.add(name, point.key(), r);
        json << (first ? "" : ",\n") << sim::toJson(name, point.key(), r);
        first = false;
        ++runs;
    }
    json << "\n]\n";

    {
        std::ofstream out("BENCH_sweep.json");
        jsonHeader(out, "export", smoke, jobs.size(), target);
        out << "  \"engine\": \""
            << engineName(benchConfig(labels.front().second).dram.engine)
            << "\",\n";
        jsonPass(out, "cold", cold);
        out << ",\n";
        jsonPass(out, "warm", warm);
        out << "\n}\n";
    }

    std::cout << "wrote " << runs
              << " runs to pra_sweep.csv / pra_sweep.json "
              << "(timing: BENCH_sweep.json)\n";
    return 0;
}
