/**
 * @file
 * Full-sweep export: runs every workload x scheme point of the main
 * evaluation and writes machine-readable results to pra_sweep.csv and
 * pra_sweep.json in the working directory (and a short summary to
 * stdout). This is the artifact downstream plotting/regression tooling
 * consumes.
 */
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "sim/report.h"

using namespace pra;
using namespace pra::bench;

int
main()
{
    std::ofstream csv("pra_sweep.csv");
    std::ofstream json("pra_sweep.json");
    sim::CsvWriter writer(csv);
    json << "[\n";

    const std::vector<Scheme> schemes = {Scheme::Baseline, Scheme::Fga,
                                         Scheme::HalfDram, Scheme::Sds,
                                         Scheme::Pra, Scheme::HalfDramPra};
    bool first = true;
    unsigned runs = 0;
    // The eight rate-mode workloads; mixes are covered by the figure
    // benches and make this export twice as slow.
    for (const auto &name : workloads::benchmarkNames()) {
        const workloads::Mix rate{name, {name, name, name, name}};
        for (Scheme scheme : schemes) {
            const sim::ConfigPoint point{
                scheme, dram::PagePolicy::RelaxedClose, false};
            const sim::RunResult r = runPoint(rate, point, 400'000);
            writer.add(name, point.key(), r);
            json << (first ? "" : ",\n")
                 << sim::toJson(name, point.key(), r);
            first = false;
            ++runs;
        }
    }
    json << "\n]\n";

    std::cout << "wrote " << runs
              << " runs to pra_sweep.csv / pra_sweep.json\n";
    return 0;
}
