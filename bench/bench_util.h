/**
 * @file
 * Shared helpers for the experiment harnesses: standard run
 * configuration, normalization utilities, and wall-clock
 * instrumentation for the sweep engine.
 */
#ifndef PRA_BENCH_BENCH_UTIL_H
#define PRA_BENCH_BENCH_UTIL_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"
#include "sim/runner.h"

namespace pra::bench {

/**
 * Measured-region length shared by the figure sweeps. Short enough to
 * keep the full sweep matrix tractable, long enough that every workload
 * reaches steady state (the paper's trends are stable from ~500k on).
 */
inline constexpr std::uint64_t kBenchTargetInstructions = 800'000;

/** Paper-baseline system configuration for a scheme/policy point. */
inline sim::SystemConfig
benchConfig(const sim::ConfigPoint &point,
            std::uint64_t target_instructions = kBenchTargetInstructions)
{
    sim::SystemConfig cfg = sim::makeConfig(point);
    cfg.targetInstructions = target_instructions;
    return cfg;
}

/** Run one of the paper's 14 workloads under a configuration point. */
inline sim::RunResult
runPoint(const workloads::Mix &mix, const sim::ConfigPoint &point,
         std::uint64_t target_instructions = kBenchTargetInstructions)
{
    return sim::runWorkload(mix, benchConfig(point, target_instructions));
}

/** "0.77" style normalized value. */
inline std::string
norm(double value, double baseline)
{
    return Table::fmt(baseline != 0.0 ? value / baseline : 0.0, 3);
}

/**
 * Scoped wall-clock instrumentation for a sweep: reports the elapsed
 * wall time, the number of cells, and the aggregate simulation rate
 * (simulated DRAM cycles per wall second) on destruction. Output goes
 * to stderr so the tabular stdout of every bench binary stays
 * byte-identical whether or not anyone is watching the rate.
 */
class SweepTimer
{
  public:
    explicit SweepTimer(std::string label)
        : label_(std::move(label)),
          start_(std::chrono::steady_clock::now())
    {
    }

    SweepTimer(const SweepTimer &) = delete;
    SweepTimer &operator=(const SweepTimer &) = delete;

    /** Credit one finished cell. Safe to call from worker threads. */
    void
    add(const sim::RunResult &res)
    {
        simulatedCycles_.fetch_add(res.dramCycles,
                                   std::memory_order_relaxed);
        cells_.fetch_add(1, std::memory_order_relaxed);
        eventsPopped_.fetch_add(res.engine.eventsPopped,
                                std::memory_order_relaxed);
        roundsRun_.fetch_add(res.engine.rounds, std::memory_order_relaxed);
        skippedTicks_.fetch_add(res.engine.skippedTicks,
                                std::memory_order_relaxed);
        std::uint64_t prev = heapPeak_.load(std::memory_order_relaxed);
        while (prev < res.engine.heapPeak &&
               !heapPeak_.compare_exchange_weak(prev, res.engine.heapPeak,
                                                std::memory_order_relaxed)) {
        }
    }

    /** Credit @p results finished cells at once. */
    void
    add(const std::vector<sim::RunResult> &results)
    {
        for (const auto &r : results)
            add(r);
    }

    /**
     * Report @p runner's reuse counters (persistent-cache hits, warmups
     * simulated) alongside the wall time. The runner must outlive this
     * timer; counters are read at destruction.
     */
    void attach(const sim::Runner &runner) { runner_ = &runner; }

    ~SweepTimer()
    {
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        const double cycles =
            static_cast<double>(simulatedCycles_.load());
        std::fprintf(stderr,
                     "[sweep] %s: %llu cells, %.2f s wall, "
                     "%.1fM DRAM cycles, %.2fM cycles/s",
                     label_.c_str(),
                     static_cast<unsigned long long>(cells_.load()),
                     secs, cycles / 1e6,
                     secs > 0.0 ? cycles / 1e6 / secs : 0.0);
        if (runner_ != nullptr) {
            std::fprintf(
                stderr, ", %llu cache hits, %llu warmups",
                static_cast<unsigned long long>(
                    runner_->resultCacheHits()),
                static_cast<unsigned long long>(
                    runner_->warmupsComputed()));
        }
        // Event-engine counters (DESIGN.md §11): wake-ups popped per
        // simulated kilocycle, the fraction of ticks the engine slept
        // through, and the deepest wake-up heap seen. All-zero under
        // EngineKind::Tick.
        const double events =
            static_cast<double>(eventsPopped_.load());
        const double rounds = static_cast<double>(roundsRun_.load());
        const double skipped =
            static_cast<double>(skippedTicks_.load());
        std::fprintf(
            stderr, ", %.2f events/kcycle, %.1f%% ticks skipped, "
                    "heap peak %llu\n",
            cycles > 0.0 ? events / (cycles / 1e3) : 0.0,
            rounds + skipped > 0.0 ? 100.0 * skipped / (rounds + skipped)
                                   : 0.0,
            static_cast<unsigned long long>(heapPeak_.load()));
    }

  private:
    std::string label_;
    std::chrono::steady_clock::time_point start_;
    std::atomic<std::uint64_t> simulatedCycles_{0};
    std::atomic<std::uint64_t> cells_{0};
    std::atomic<std::uint64_t> eventsPopped_{0};
    std::atomic<std::uint64_t> roundsRun_{0};
    std::atomic<std::uint64_t> skippedTicks_{0};
    std::atomic<std::uint64_t> heapPeak_{0};
    const sim::Runner *runner_ = nullptr;
};

} // namespace pra::bench

#endif // PRA_BENCH_BENCH_UTIL_H
