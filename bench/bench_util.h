/**
 * @file
 * Shared helpers for the experiment harnesses: standard run
 * configuration and normalization utilities.
 */
#ifndef PRA_BENCH_BENCH_UTIL_H
#define PRA_BENCH_BENCH_UTIL_H

#include <string>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"

namespace pra::bench {

/** Paper-baseline system configuration for a scheme/policy point. */
inline sim::SystemConfig
benchConfig(const sim::ConfigPoint &point,
            std::uint64_t target_instructions = 800'000)
{
    sim::SystemConfig cfg = sim::makeConfig(point);
    cfg.targetInstructions = target_instructions;
    return cfg;
}

/** Run one of the paper's 14 workloads under a configuration point. */
inline sim::RunResult
runPoint(const workloads::Mix &mix, const sim::ConfigPoint &point,
         std::uint64_t target_instructions = 800'000)
{
    return sim::runWorkload(mix, benchConfig(point, target_instructions));
}

/** "0.77" style normalized value. */
inline std::string
norm(double value, double baseline)
{
    return Table::fmt(baseline != 0.0 ? value / baseline : 0.0, 3);
}

} // namespace pra::bench

#endif // PRA_BENCH_BENCH_UTIL_H
