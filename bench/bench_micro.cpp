/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * address mapper, the FGD cache, the memory controller tick loop, and
 * the workload generators. These guard simulation throughput (the whole
 * evaluation reruns dozens of multi-million-cycle simulations).
 */
#include <benchmark/benchmark.h>

#include "cache/hierarchy.h"
#include "common/rng.h"
#include "dram/dram_system.h"
#include "workloads/factory.h"

using namespace pra;

namespace {

void
BM_AddressDecode(benchmark::State &state)
{
    dram::DramConfig cfg;
    const dram::AddressMapper mapper(cfg);
    Rng rng(1);
    Addr a = rng.below(mapper.capacityBytes());
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.decode(a));
        a = (a + 4097 * kLineBytes) & (mapper.capacityBytes() - 1);
    }
}
BENCHMARK(BM_AddressDecode);

void
BM_CacheAccess(benchmark::State &state)
{
    cache::Cache cache(cache::CacheParams{
        static_cast<std::size_t>(state.range(0)) * 1024, 8, kLineBytes});
    Rng rng(2);
    for (auto _ : state) {
        const Addr a = rng.below(64ull << 20);
        benchmark::DoNotOptimize(
            cache.access(a, rng.chance(0.3), ByteMask::word(a % 8)));
    }
}
BENCHMARK(BM_CacheAccess)->Arg(32)->Arg(4096);

void
BM_HierarchyAccess(benchmark::State &state)
{
    cache::HierarchyConfig hc;
    cache::Hierarchy hier(hc);
    Rng rng(3);
    for (auto _ : state) {
        const Addr a = rng.below(64ull << 20);
        benchmark::DoNotOptimize(
            hier.access(0, a, rng.chance(0.3), ByteMask::word(a % 8)));
    }
}
BENCHMARK(BM_HierarchyAccess);

void
BM_DramSystemTick(benchmark::State &state)
{
    dram::DramConfig cfg;
    // The benchmark arg indexes the scheme registry (registration order).
    cfg.scheme = allSchemes()[static_cast<std::size_t>(state.range(0))];
    dram::DramSystem sys(cfg);
    Rng rng(4);
    std::uint64_t tag = 0;
    for (auto _ : state) {
        const Addr a = rng.below(sys.mapper().capacityBytes());
        const bool wr = rng.chance(0.35);
        if (sys.canAccept(a, wr))
            sys.enqueue(a, wr, WordMask::single(rng.below(8)), 0, ++tag);
        sys.tick();
        if ((tag & 0xff) == 0)
            benchmark::DoNotOptimize(sys.drainCompletions());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramSystemTick)
    ->Arg(0)    // baseline (registry slot 0)
    ->Arg(3);   // pra (registry slot 3)

void
BM_WorkloadGenerator(benchmark::State &state)
{
    const auto &names = workloads::benchmarkNames();
    auto gen = workloads::makeGenerator(names[state.range(0)], 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen->next());
}
BENCHMARK(BM_WorkloadGenerator)->DenseRange(0, 7);

void
BM_Rng(benchmark::State &state)
{
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

} // namespace

BENCHMARK_MAIN();
