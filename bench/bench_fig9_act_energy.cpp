/**
 * @file
 * Figure 9 — row activation energy as a function of the number of MATs
 * activated, showing the shared-structure floor that keeps half-row
 * activation from saving a full 50%.
 */
#include <iostream>

#include "common/table.h"
#include "power/cacti_model.h"

using namespace pra;

int
main()
{
    const power::CactiModel model;
    const double full = model.fullRowEnergy();

    Table t("Figure 9: activation energy vs. MATs activated");
    t.header({"MATs", "Energy (pJ)", "Relative", "Half-height (pJ)"});
    for (unsigned mats = 2; mats <= kMatsPerSubarray; mats += 2) {
        t.addRow({std::to_string(mats),
                  Table::fmt(model.actEnergy(mats), 2),
                  Table::pct(model.actEnergy(mats) / full),
                  Table::fmt(model.actEnergy(mats, true), 2)});
    }
    t.print(std::cout);

    std::cout << "Half-row (8 MATs) saves "
              << Table::pct(1.0 - model.actEnergy(8) / full)
              << " — less than 50% because the row activation bus and\n"
                 "predecoder ("
              << Table::fmt(model.components().shared(), 2)
              << " pJ) are paid on every activation.\n";
    return 0;
}
