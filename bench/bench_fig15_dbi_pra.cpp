/**
 * @file
 * Figure 15 — case study of PRA combined with the Dirty-Block Index:
 * DRAM power, normalized performance, DRAM energy, and EDP of DBI, PRA,
 * and DBI+PRA for the paper's representative benchmarks (bzip2, GUPS,
 * em3d) and the mean over all 14 workloads.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

struct Normalized
{
    double power, perf, energy, edp;
};

} // namespace

int
main()
{
    const dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    struct Config
    {
        const char *name;
        const SchemeModel *scheme;
        bool dbi;
    };
    const Config configs[3] = {{"DBI", &schemeByName("baseline"), true},
                               {"PRA", &schemeByName("pra"), false},
                               {"DBI+PRA", &schemeByName("pra"), true}};

    const std::vector<std::string> featured = {"bzip2", "GUPS", "em3d"};

    Table t("Figure 15: DBI vs PRA vs DBI+PRA "
            "(normalized power | perf | energy | EDP)");
    t.header({"Workload", "DBI", "PRA", "DBI+PRA"});

    const auto mixes = workloads::allWorkloads();
    const sim::ConfigPoint base_pt{&schemeByName("baseline"), policy, false};
    std::vector<sim::ConfigPoint> points{base_pt};
    for (const Config &c : configs)
        points.push_back({c.scheme, policy, c.dbi});

    sim::Runner runner;
    SweepTimer timer("fig15");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes)
        for (const auto &pt : points)
            jobs.push_back({mix, pt, kBenchTargetInstructions, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    std::vector<std::string> apps;
    for (const auto &mix : mixes)
        for (const auto &app : mix.apps)
            if (std::find(apps.begin(), apps.end(), app) == apps.end())
                apps.push_back(app);
    runner.parallelFor(apps.size() * points.size(), [&](std::size_t i) {
        runner.aloneIpc().get(apps[i % apps.size()],
                              points[i / apps.size()]);
    });

    double sums[3][4] = {};
    double n = 0;
    std::size_t job = 0;
    for (const auto &mix : mixes) {
        const sim::RunResult &base = results[job++];
        const double base_ws = runner.weightedSpeedup(mix, base, base_pt);

        Normalized vals[3];
        for (int c = 0; c < 3; ++c) {
            const sim::ConfigPoint &pt = points[c + 1];
            const sim::RunResult &r = results[job++];
            vals[c] = {r.avgPowerMw / base.avgPowerMw,
                       runner.weightedSpeedup(mix, r, pt) / base_ws,
                       r.totalEnergyNj / base.totalEnergyNj,
                       r.edp / base.edp};
            sums[c][0] += vals[c].power;
            sums[c][1] += vals[c].perf;
            sums[c][2] += vals[c].energy;
            sums[c][3] += vals[c].edp;
        }
        n += 1;

        if (std::find(featured.begin(), featured.end(), mix.name) !=
            featured.end()) {
            std::vector<std::string> row{mix.name};
            for (int c = 0; c < 3; ++c) {
                row.push_back(Table::fmt(vals[c].power, 2) + "|" +
                              Table::fmt(vals[c].perf, 2) + "|" +
                              Table::fmt(vals[c].energy, 2) + "|" +
                              Table::fmt(vals[c].edp, 2));
            }
            t.addRow(row);
        }
    }

    std::vector<std::string> mean{"MEAN(14)"};
    for (int c = 0; c < 3; ++c) {
        mean.push_back(Table::fmt(sums[c][0] / n, 2) + "|" +
                       Table::fmt(sums[c][1] / n, 2) + "|" +
                       Table::fmt(sums[c][2] / n, 2) + "|" +
                       Table::fmt(sums[c][3] / n, 2));
    }
    t.addRow(mean);
    t.print(std::cout);

    std::cout << "Paper: DBI helps performance (write row-batching), PRA "
                 "helps power; combined sits between — better than DBI "
                 "alone on power, slightly worse than PRA alone due to "
                 "extra false row-buffer hits from the intensive write "
                 "bursts.\n";
    return 0;
}
