/**
 * @file
 * Figure 15 — case study of PRA combined with the Dirty-Block Index:
 * DRAM power, normalized performance, DRAM energy, and EDP of DBI, PRA,
 * and DBI+PRA for the paper's representative benchmarks (bzip2, GUPS,
 * em3d) and the mean over all 14 workloads.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.h"

using namespace pra;
using namespace pra::bench;

namespace {

struct Normalized
{
    double power, perf, energy, edp;
};

} // namespace

int
main()
{
    const dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    struct Config
    {
        const char *name;
        Scheme scheme;
        bool dbi;
    };
    const Config configs[3] = {{"DBI", Scheme::Baseline, true},
                               {"PRA", Scheme::Pra, false},
                               {"DBI+PRA", Scheme::Pra, true}};

    sim::AloneIpcCache alone;
    const std::vector<std::string> featured = {"bzip2", "GUPS", "em3d"};

    Table t("Figure 15: DBI vs PRA vs DBI+PRA "
            "(normalized power | perf | energy | EDP)");
    t.header({"Workload", "DBI", "PRA", "DBI+PRA"});

    double sums[3][4] = {};
    double n = 0;
    for (const auto &mix : workloads::allWorkloads()) {
        const sim::ConfigPoint base_pt{Scheme::Baseline, policy, false};
        const sim::RunResult base = runPoint(mix, base_pt);
        const double base_ws =
            sim::weightedSpeedup(mix, base, base_pt, alone);

        Normalized vals[3];
        for (int c = 0; c < 3; ++c) {
            const sim::ConfigPoint pt{configs[c].scheme, policy,
                                      configs[c].dbi};
            const sim::RunResult r = runPoint(mix, pt);
            vals[c] = {r.avgPowerMw / base.avgPowerMw,
                       sim::weightedSpeedup(mix, r, pt, alone) / base_ws,
                       r.totalEnergyNj / base.totalEnergyNj,
                       r.edp / base.edp};
            sums[c][0] += vals[c].power;
            sums[c][1] += vals[c].perf;
            sums[c][2] += vals[c].energy;
            sums[c][3] += vals[c].edp;
        }
        n += 1;

        if (std::find(featured.begin(), featured.end(), mix.name) !=
            featured.end()) {
            std::vector<std::string> row{mix.name};
            for (int c = 0; c < 3; ++c) {
                row.push_back(Table::fmt(vals[c].power, 2) + "|" +
                              Table::fmt(vals[c].perf, 2) + "|" +
                              Table::fmt(vals[c].energy, 2) + "|" +
                              Table::fmt(vals[c].edp, 2));
            }
            t.addRow(row);
        }
    }

    std::vector<std::string> mean{"MEAN(14)"};
    for (int c = 0; c < 3; ++c) {
        mean.push_back(Table::fmt(sums[c][0] / n, 2) + "|" +
                       Table::fmt(sums[c][1] / n, 2) + "|" +
                       Table::fmt(sums[c][2] / n, 2) + "|" +
                       Table::fmt(sums[c][3] / n, 2));
    }
    t.addRow(mean);
    t.print(std::cout);

    std::cout << "Paper: DBI helps performance (write row-batching), PRA "
                 "helps power; combined sits between — better than DBI "
                 "alone on power, slightly worse than PRA alone due to "
                 "extra false row-buffer hits from the intensive write "
                 "bursts.\n";
    return 0;
}
