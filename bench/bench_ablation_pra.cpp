/**
 * @file
 * PRA design-space ablations (the design choices DESIGN.md calls out).
 * For a write-heavy and a locality-heavy workload it isolates:
 *
 *  1. mask-delivery cost    — praMaskCycles 0/1/2 (paper Fig. 7a uses 1;
 *                             the DM-pin alternative of Section 4.2
 *                             would make it 0 at other costs);
 *  2. mask merging          — OR-merging queued same-row write masks
 *                             (Section 5.2.1) on/off;
 *  3. tRRD/tFAW relaxation  — weighted activation window on/off;
 *  4. minimum granularity   — 1/8 vs 1/4 vs 1/2 row minimum (fewer PRA
 *                             latch bits and wordline gates);
 *  5. ECC DIMM              — x72 with the ECC chip's PRA pin tied high.
 *
 * Each row reports total-power saving vs the conventional baseline and
 * the IPC delta vs the same baseline.
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

struct Variant
{
    const char *name;
    void (*tweak)(sim::SystemConfig &);
};

constexpr Variant kVariants[] = {
    {"PRA (paper config)", [](sim::SystemConfig &) {}},
    {"mask cycle = 0 (DM-pin-style)",
     [](sim::SystemConfig &c) { c.dram.timing.praMaskCycles = 0; }},
    {"mask cycle = 2",
     [](sim::SystemConfig &c) { c.dram.timing.praMaskCycles = 2; }},
    {"no mask merging",
     [](sim::SystemConfig &c) { c.dram.mergeWriteMasks = false; }},
    {"no tRRD/tFAW relaxation",
     [](sim::SystemConfig &c) { c.dram.weightedActWindow = false; }},
    {"min granularity 1/4 row",
     [](sim::SystemConfig &c) { c.dram.minActGranularity = 2; }},
    {"min granularity 1/2 row",
     [](sim::SystemConfig &c) { c.dram.minActGranularity = 4; }},
    {"x72 ECC DIMM",
     [](sim::SystemConfig &c) { c.dram.eccChipsPerRank = 1; }},
};

/**
 * Per mix, jobs are enqueued as: baseline, ECC baseline, then one job
 * per variant — all as full-config overrides on the sweep engine.
 */
void
buildJobs(const workloads::Mix &mix, std::vector<sim::SweepJob> &jobs)
{
    const sim::SystemConfig base_cfg =
        benchConfig({&schemeByName("baseline"), dram::PagePolicy::RelaxedClose,
                     false},
                    500'000);
    jobs.push_back({mix, {}, 0, base_cfg});

    sim::SystemConfig ecc_base = base_cfg;
    ecc_base.dram.eccChipsPerRank = 1;
    jobs.push_back({mix, {}, 0, ecc_base});

    for (const Variant &v : kVariants) {
        sim::SystemConfig cfg = benchConfig(
            {&schemeByName("pra"), dram::PagePolicy::RelaxedClose, false},
            500'000);
        v.tweak(cfg);
        jobs.push_back({mix, {}, 0, cfg});
    }
}

void
addRows(Table &t, const workloads::Mix &mix,
        const std::vector<sim::RunResult> &results, std::size_t &job)
{
    const sim::RunResult &base = results[job++];
    const sim::RunResult &ecc_base = results[job++];
    for (const Variant &v : kVariants) {
        const sim::RunResult &r = results[job++];
        // The ECC variant must compare against an ECC baseline.
        const bool is_ecc =
            std::string(v.name).find("ECC") != std::string::npos;
        const sim::RunResult &ref = is_ecc ? ecc_base : base;
        t.addRow({mix.name, v.name,
                  Table::pct(1.0 - r.totalEnergyNj / ref.totalEnergyNj),
                  Table::pct(r.ipc[0] / ref.ipc[0] - 1.0),
                  Table::fmt(r.energy.meanActGranularity(), 2),
                  std::to_string(r.dramStats.writeFalseHits)});
    }
}

} // namespace

int
main()
{
    Table t("PRA ablations (vs conventional baseline)");
    t.header({"Workload", "Variant", "Energy saving", "IPC delta",
              "mean gran", "wr false hits"});

    const std::vector<workloads::Mix> mixes = {
        {"GUPS", {"GUPS", "GUPS", "GUPS", "GUPS"}},
        {"lbm", {"lbm", "lbm", "lbm", "lbm"}},
    };
    sim::Runner runner;
    SweepTimer timer("ablation_pra");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes)
        buildJobs(mix, jobs);
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    std::size_t job = 0;
    for (const auto &mix : mixes)
        addRows(t, mix, results, job);
    t.print(std::cout);

    std::cout
        << "Reading the table: the mask-delivery cycle and the tFAW\n"
           "relaxation barely move the needle (the paper's claim that\n"
           "PRA's timing overheads are negligible); coarsening the\n"
           "minimum granularity to a half row gives up roughly the gap\n"
           "between PRA and Half-DRAM; the ECC chip claws back an\n"
           "eighth of the activation saving.\n";
    return 0;
}
