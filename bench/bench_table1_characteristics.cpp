/**
 * @file
 * Table 1 — Memory characteristics of the eight benchmarks under the
 * conventional baseline (relaxed close-page, FR-FCFS): row-buffer hit
 * rates, read/write traffic split, and read/write row-activation split.
 * Paper values are printed beside the measured ones.
 */
#include <iostream>

#include "common/table.h"
#include "sim/runner.h"

using namespace pra;

namespace {

struct PaperRow
{
    const char *name;
    int rdHit, wrHit, rdTraffic, wrTraffic, rdAct, wrAct;
};

constexpr PaperRow kPaper[] = {
    {"bzip2", 32, 1, 69, 31, 60, 40},
    {"lbm", 29, 18, 57, 43, 54, 46},
    {"libquantum", 73, 48, 66, 34, 50, 50},
    {"mcf", 18, 1, 79, 21, 76, 24},
    {"omnetpp", 47, 2, 71, 29, 57, 43},
    {"em3d", 5, 1, 51, 49, 50, 50},
    {"GUPS", 3, 1, 53, 47, 52, 48},
    {"LinkedList", 4, 1, 65, 35, 64, 36},
};

} // namespace

int
main()
{
    sim::ConfigPoint base{&schemeByName("baseline"),
                          dram::PagePolicy::RelaxedClose, false};

    Table table("Table 1: memory characteristics (measured | paper)");
    table.header({"Benchmark", "RdHit%", "WrHit%", "RdTraf%", "WrTraf%",
                  "RdAct%", "WrAct%"});

    double sums[6] = {0, 0, 0, 0, 0, 0};
    int paper_sums[6] = {0, 0, 0, 0, 0, 0};

    // targetInstructions = 0 keeps makeConfig()'s full-length default.
    sim::Runner runner;
    std::vector<sim::SweepJob> jobs;
    for (const PaperRow &row : kPaper) {
        const workloads::Mix rate{row.name,
                                  {row.name, row.name, row.name, row.name}};
        jobs.push_back({rate, base, 0, {}});
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);

    std::size_t job = 0;
    for (const PaperRow &row : kPaper) {
        const sim::RunResult &r = results[job++];
        const auto &d = r.dramStats;

        const double traffic =
            static_cast<double>(d.readReqs + d.writeReqs);
        const double acts =
            static_cast<double>(d.actsForReads + d.actsForWrites);
        const double vals[6] = {
            d.readHitRate() * 100.0,
            d.writeHitRate() * 100.0,
            traffic ? 100.0 * d.readReqs / traffic : 0.0,
            traffic ? 100.0 * d.writeReqs / traffic : 0.0,
            acts ? 100.0 * d.actsForReads / acts : 0.0,
            acts ? 100.0 * d.actsForWrites / acts : 0.0,
        };
        const int paper_vals[6] = {row.rdHit, row.wrHit, row.rdTraffic,
                                   row.wrTraffic, row.rdAct, row.wrAct};

        std::vector<std::string> cells{row.name};
        for (int i = 0; i < 6; ++i) {
            cells.push_back(Table::fmt(vals[i], 0) + " | " +
                            std::to_string(paper_vals[i]));
            sums[i] += vals[i];
            paper_sums[i] += paper_vals[i];
        }
        table.addRow(cells);
    }

    std::vector<std::string> avg{"average"};
    for (int i = 0; i < 6; ++i) {
        avg.push_back(Table::fmt(sums[i] / 8.0, 0) + " | " +
                      std::to_string(paper_sums[i] / 8));
    }
    table.addRow(avg);
    table.print(std::cout);
    return 0;
}
