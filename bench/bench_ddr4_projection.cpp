/**
 * @file
 * DDR4 projection — the paper's Section 4.2 argues PRA carries over to
 * DDR4 (spare WE/A14 pin for the PRA command), and Section 2.2.1 that
 * row overfetching worsens in future devices. This bench runs the
 * headline comparison on both device presets: the paper's DDR3-1600
 * baseline and a DDR4-2400 projection (16 banks in 4 bank groups,
 * tCCD_S/tCCD_L, 1.2 V-scaled power).
 */
#include <iostream>

#include "bench_util.h"
#include "dram/presets.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

constexpr const char *kApps[] = {"GUPS", "lbm", "libquantum"};

void
buildJobs(const dram::DramConfig &preset,
          std::vector<sim::SweepJob> &jobs)
{
    for (const char *name : kApps) {
        const workloads::Mix rate{name, {name, name, name, name}};
        sim::SystemConfig base_cfg;
        base_cfg.dram = preset;
        base_cfg.targetInstructions = 500'000;
        sim::SystemConfig pra_cfg = base_cfg;
        pra_cfg.dram.scheme = &schemeByName("pra");
        jobs.push_back({rate, {}, 0, base_cfg});
        jobs.push_back({rate, {}, 0, pra_cfg});
    }
}

void
compare(const char *device, const std::vector<sim::RunResult> &results,
        std::size_t &job)
{
    Table t(std::string("PRA on ") + device);
    t.header({"Workload", "base power mW", "PRA power", "saving",
              "IPC delta", "rd latency (cyc)"});

    for (const char *name : kApps) {
        const sim::RunResult &base = results[job++];
        const sim::RunResult &pra = results[job++];
        t.addRow({name, Table::fmt(base.avgPowerMw, 0),
                  Table::fmt(pra.avgPowerMw, 0),
                  Table::pct(1.0 - pra.avgPowerMw / base.avgPowerMw),
                  Table::pct(pra.ipc[0] / base.ipc[0] - 1.0),
                  Table::fmt(pra.dramStats.readLatency.mean(), 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    sim::Runner runner;
    SweepTimer timer("ddr4_projection");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    buildJobs(dram::ddr3_1600(), jobs);
    buildJobs(dram::ddr4_2400(), jobs);
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    std::size_t job = 0;
    compare("DDR3-1600 (paper baseline, 2Gb x8)", results, job);
    compare("DDR4-2400 projection (4Gb x8, 4 bank groups)", results,
            job);
    std::cout << "PRA's relative saving carries to the DDR4-shaped "
                 "device; the faster clock shortens the mask-delivery "
                 "cycle in wall-clock terms while the larger bank count "
                 "spreads activations.\n";
    return 0;
}
