/**
 * @file
 * Figure 12 — normalized DRAM row-activation power (a), I/O power (b),
 * and total power (c) of FGA, Half-DRAM, and PRA, relative to the
 * conventional baseline (relaxed close-page), over all 14 workloads.
 */
#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"

using namespace pra;
using namespace pra::bench;

namespace {

struct PowerTriple
{
    double act, io, total;
};

PowerTriple
powersOf(const sim::RunResult &r)
{
    const double ns = static_cast<double>(r.dramCycles) * 1.25;
    return {r.breakdown.actPre / ns,
            (r.breakdown.readIo + r.breakdown.writeIo) / ns,
            r.breakdown.total() / ns};
}

} // namespace

int
main()
{
    const dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    const std::vector<const SchemeModel *> schemes = {&schemeByName("fga"), &schemeByName("halfdram"),
                                         &schemeByName("pra")};

    Table ta("Figure 12a: normalized row-activation power");
    Table ti("Figure 12b: normalized I/O power");
    Table tt("Figure 12c: normalized total DRAM power");
    for (Table *t : {&ta, &ti, &tt})
        t->header({"Workload", "FGA", "Half-DRAM", "PRA"});

    // One job per (workload, scheme) cell, baseline first so the
    // consumption loop below can walk the results in enqueue order.
    const auto mixes = workloads::allWorkloads();
    sim::Runner runner;
    SweepTimer timer("fig12");
    timer.attach(runner);
    std::vector<sim::SweepJob> jobs;
    for (const auto &mix : mixes) {
        jobs.push_back({mix, {&schemeByName("baseline"), policy, false},
                        kBenchTargetInstructions, {}});
        for (const SchemeModel *s : schemes)
            jobs.push_back({mix, {s, policy, false},
                            kBenchTargetInstructions, {}});
    }
    const std::vector<sim::RunResult> results = runner.run(jobs);
    timer.add(results);

    double sum[3][3] = {};
    double n = 0;
    std::size_t job = 0;
    for (const auto &mix : mixes) {
        const sim::RunResult &base = results[job++];
        const PowerTriple pb = powersOf(base);
        std::vector<std::string> ra{mix.name}, ri{mix.name},
            rt{mix.name};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const sim::RunResult &r = results[job++];
            const PowerTriple p = powersOf(r);
            ra.push_back(Table::fmt(p.act / pb.act, 3));
            ri.push_back(Table::fmt(p.io / pb.io, 3));
            rt.push_back(Table::fmt(p.total / pb.total, 3));
            sum[0][s] += p.act / pb.act;
            sum[1][s] += p.io / pb.io;
            sum[2][s] += p.total / pb.total;
        }
        ta.addRow(ra);
        ti.addRow(ri);
        tt.addRow(rt);
        n += 1;
    }

    Table *tables[3] = {&ta, &ti, &tt};
    const char *paper[3] = {
        "paper avg: FGA/Half-DRAM save more ACT power than PRA; "
        "PRA -34% (up to -43%)",
        "paper avg: PRA -45% (up to -58%); FGA/Half-DRAM ~baseline "
        "energy per bit",
        "paper avg: PRA -23% (up to -32%); FGA -15%; Half-DRAM -11%"};
    for (int k = 0; k < 3; ++k) {
        std::vector<std::string> avg{"average"};
        for (int s = 0; s < 3; ++s)
            avg.push_back(Table::fmt(sum[k][s] / n, 3));
        tables[k]->addRow(avg);
        tables[k]->print(std::cout);
        std::cout << paper[k] << "\n\n";
    }
    return 0;
}
