/**
 * @file
 * 64-bit FNV-1a hashing shared by the persistent result cache (content
 * addressing) and the invariant auditor (config and state fingerprints).
 * Deterministic across platforms; never used where collision resistance
 * against an adversary matters.
 */
#ifndef PRA_COMMON_HASH_H
#define PRA_COMMON_HASH_H

#include <cstdint>
#include <cstring>
#include <string_view>

namespace pra {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/** One-shot FNV-1a over a byte string. */
inline std::uint64_t
fnv1a64(std::string_view data, std::uint64_t seed = kFnv1aOffset)
{
    std::uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= kFnv1aPrime;
    }
    return h;
}

/** Incremental FNV-1a for fingerprinting structured state. */
class Fnv1a
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= kFnv1aPrime;
        }
    }

    /** Fold an integral (or bit-copied) value into the hash. */
    template <typename T>
    void
    add(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&value, sizeof(value));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = kFnv1aOffset;
};

} // namespace pra

#endif // PRA_COMMON_HASH_H
