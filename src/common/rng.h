/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * xoshiro256** — fast, high quality, and identical across platforms so
 * every benchmark and test in the repo is bit-reproducible.
 */
#ifndef PRA_COMMON_RNG_H
#define PRA_COMMON_RNG_H

#include <cstdint>

namespace pra {

/** Seeded xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace pra

#endif // PRA_COMMON_RNG_H
