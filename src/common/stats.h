/**
 * @file
 * Lightweight statistics primitives: counters, ratios, and histograms.
 *
 * Every simulator component exposes its activity through these so the
 * experiment harnesses can regenerate the paper's tables without touching
 * component internals.
 */
#ifndef PRA_COMMON_STATS_H
#define PRA_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pra {

/** Simple monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** hits / (hits + misses) convenience pair. */
class HitRate
{
  public:
    void hit(std::uint64_t n = 1) { hits_ += n; }
    void miss(std::uint64_t n = 1) { misses_ += n; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t total() const { return hits_ + misses_; }

    /** Hit fraction in [0,1]; 0 when no events were recorded. */
    double
    rate() const
    {
        const std::uint64_t t = total();
        return t ? static_cast<double>(hits_) / static_cast<double>(t) : 0.0;
    }

    void
    reset()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Fixed-bucket histogram (e.g. activation granularities 1..8). */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

    void
    record(std::size_t bucket, std::uint64_t n = 1)
    {
        if (bucket < counts_.size())
            counts_[bucket] += n;
    }

    std::uint64_t count(std::size_t bucket) const { return counts_[bucket]; }
    std::size_t buckets() const { return counts_.size(); }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto c : counts_)
            t += c;
        return t;
    }

    /** Fraction of all samples that landed in @p bucket. */
    double
    fraction(std::size_t bucket) const
    {
        const std::uint64_t t = total();
        return t ? static_cast<double>(counts_[bucket]) /
                       static_cast<double>(t)
                 : 0.0;
    }

    /** Sample mean using bucket indices as values. */
    double mean() const;

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
};

/** Running mean/min/max over a stream of doubles. */
class Summary
{
  public:
    void record(double v);

    /** Fold another summary into this one. */
    void merge(const Summary &other);

    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    std::uint64_t samples() const { return n_; }

    /** Raw running sum (bit-exact persistence of sweep results). */
    double sum() const { return sum_; }

    /** Rebuild a summary from its raw state (sum, not mean). */
    static Summary
    fromRaw(std::uint64_t n, double sum, double min, double max)
    {
        Summary s;
        s.n_ = n;
        s.sum_ = sum;
        s.min_ = min;
        s.max_ = max;
        return s;
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace pra

#endif // PRA_COMMON_STATS_H
