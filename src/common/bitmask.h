/**
 * @file
 * Word- and byte-granularity dirty masks.
 *
 * A WordMask is the 8-bit structure the paper calls the "PRA mask": bit i
 * set means word i of a 64 B cache line is dirty (and, on the DRAM side,
 * that MAT group i must be activated). A ByteMask tracks dirtiness at byte
 * granularity inside a line; it is what the L1 actually records on stores,
 * and it is also what the SDS comparator needs (chip-level coverage).
 */
#ifndef PRA_COMMON_BITMASK_H
#define PRA_COMMON_BITMASK_H

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace pra {

/** 8-bit word-granularity dirty/activation mask (one bit per 8 B word). */
class WordMask
{
  public:
    constexpr WordMask() = default;
    constexpr explicit WordMask(std::uint8_t bits) : bits_(bits) {}

    /** Mask with every word set (full-row activation). */
    static constexpr WordMask full() { return WordMask(0xff); }
    /** Mask with no word set. */
    static constexpr WordMask none() { return WordMask(0x00); }
    /** Mask with only word @p word set. */
    static constexpr WordMask
    single(unsigned word)
    {
        return WordMask(static_cast<std::uint8_t>(1u << word));
    }
    /** Mask covering the first @p n words. */
    static constexpr WordMask
    firstWords(unsigned n)
    {
        return n >= kWordsPerLine
            ? full()
            : WordMask(static_cast<std::uint8_t>((1u << n) - 1));
    }

    constexpr std::uint8_t bits() const { return bits_; }
    constexpr bool test(unsigned word) const { return bits_ & (1u << word); }
    constexpr void set(unsigned word) { bits_ |= (1u << word); }
    constexpr void clear(unsigned word) { bits_ &= ~(1u << word); }

    constexpr bool empty() const { return bits_ == 0; }
    constexpr bool isFull() const { return bits_ == 0xff; }

    /** Number of set words; equals the row-activation granularity (g/8). */
    constexpr unsigned count() const { return std::popcount(bits_); }

    /** True when every bit of @p other is also set here. */
    constexpr bool covers(WordMask other) const
    {
        return (bits_ & other.bits_) == other.bits_;
    }

    constexpr WordMask operator|(WordMask o) const
    {
        return WordMask(bits_ | o.bits_);
    }
    constexpr WordMask operator&(WordMask o) const
    {
        return WordMask(bits_ & o.bits_);
    }
    constexpr WordMask &operator|=(WordMask o)
    {
        bits_ |= o.bits_;
        return *this;
    }
    constexpr bool operator==(const WordMask &) const = default;

  private:
    std::uint8_t bits_ = 0;
};

/** 64-bit byte-granularity dirty mask over one 64 B cache line. */
class ByteMask
{
  public:
    constexpr ByteMask() = default;
    constexpr explicit ByteMask(std::uint64_t bits) : bits_(bits) {}

    static constexpr ByteMask full() { return ByteMask(~0ull); }
    static constexpr ByteMask none() { return ByteMask(0ull); }

    /** Mask covering @p len bytes starting at line offset @p offset. */
    static constexpr ByteMask
    range(unsigned offset, unsigned len)
    {
        if (len == 0)
            return none();
        if (len >= kLineBytes)
            return full();
        std::uint64_t m = (len >= 64) ? ~0ull : ((1ull << len) - 1);
        return ByteMask(m << offset);
    }

    /** Mask covering whole word @p word. */
    static constexpr ByteMask
    word(unsigned word)
    {
        return ByteMask(0xffull << (word * kBytesPerWord));
    }

    constexpr std::uint64_t bits() const { return bits_; }
    constexpr bool test(unsigned byte) const
    {
        return bits_ & (1ull << byte);
    }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr unsigned count() const { return std::popcount(bits_); }

    /**
     * Collapse to word granularity: word i is dirty iff any of its 8 bytes
     * is dirty. This is exactly the FGD → PRA-mask reduction of the paper.
     */
    constexpr WordMask
    toWordMask() const
    {
        std::uint8_t words = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if ((bits_ >> (w * kBytesPerWord)) & 0xff)
                words |= static_cast<std::uint8_t>(1u << w);
        }
        return WordMask(words);
    }

    /**
     * SDS chip-access mask: chip c (byte position c of every word) must be
     * written iff any word's byte at position c is dirty. Returns an 8-bit
     * mask with bit c set when chip c must be accessed.
     */
    constexpr std::uint8_t
    toChipMask() const
    {
        std::uint8_t chips = 0;
        for (unsigned c = 0; c < kBytesPerWord; ++c) {
            for (unsigned w = 0; w < kWordsPerLine; ++w) {
                if (bits_ & (1ull << (w * kBytesPerWord + c))) {
                    chips |= static_cast<std::uint8_t>(1u << c);
                    break;
                }
            }
        }
        return chips;
    }

    constexpr ByteMask operator|(ByteMask o) const
    {
        return ByteMask(bits_ | o.bits_);
    }
    constexpr ByteMask &operator|=(ByteMask o)
    {
        bits_ |= o.bits_;
        return *this;
    }
    constexpr bool operator==(const ByteMask &) const = default;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace pra

#endif // PRA_COMMON_BITMASK_H
