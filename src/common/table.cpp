#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace pra {

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(std::max(cells.size(), header_.size()));
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::pct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << cell;
            if (c + 1 < widths.size())
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    os << '\n';
}

} // namespace pra
