#include "common/stats.h"

#include <algorithm>

namespace pra {

double
Histogram::mean() const
{
    const std::uint64_t t = total();
    if (!t)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        acc += static_cast<double>(i) * static_cast<double>(counts_[i]);
    return acc / static_cast<double>(t);
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

void
Summary::record(double v)
{
    if (n_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++n_;
}

} // namespace pra
