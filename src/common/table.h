/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * paper's tables and figure series in a uniform, diffable format.
 */
#ifndef PRA_COMMON_TABLE_H
#define PRA_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace pra {

/** Column-aligned text table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cols) { header_ = std::move(cols); }

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string fmt(double v, int digits = 2);
    /** Convenience: format a fraction as a percentage string. */
    static std::string pct(double fraction, int digits = 1);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pra

#endif // PRA_COMMON_TABLE_H
