/**
 * @file
 * Fundamental typedefs and constants shared by every PRA module.
 *
 * All simulation time is expressed in DRAM bus cycles (tCK). For the
 * baseline DDR3-1600 device tCK is 1.25 ns; the CPU model converts using
 * the fixed 4:1 CPU:DRAM clock ratio from the paper's configuration.
 */
#ifndef PRA_COMMON_TYPES_H
#define PRA_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace pra {

/** Simulation time in DRAM bus cycles. */
using Cycle = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** A cache line holds eight 8-byte words. */
inline constexpr unsigned kLineBytes = 64;
/** Words per cache line (the PRA mask has one bit per word). */
inline constexpr unsigned kWordsPerLine = 8;
/** Bytes per word. */
inline constexpr unsigned kBytesPerWord = 8;

/** DDR3 burst length: beats per column access. */
inline constexpr unsigned kBurstLength = 8;

/** MATs per sub-array in the baseline 2Gb x8 chip. */
inline constexpr unsigned kMatsPerSubarray = 16;
/** MAT groups controllable by one PRA mask bit (two MATs per group). */
inline constexpr unsigned kMatGroups = 8;

/** CPU core cycles per DRAM bus cycle (3.2 GHz / 800 MHz). */
inline constexpr unsigned kCpuCyclesPerDramCycle = 4;

/** Sentinel for "no row open" and similar. */
inline constexpr std::uint32_t kInvalidRow = 0xffffffffu;

/** Align an address down to its cache-line base. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Index of the word within its cache line that @p addr falls in. */
constexpr unsigned
wordInLine(Addr addr)
{
    return static_cast<unsigned>((addr >> 3) & (kWordsPerLine - 1));
}

/** Index of the byte within its cache line that @p addr falls in. */
constexpr unsigned
byteInLine(Addr addr)
{
    return static_cast<unsigned>(addr & (kLineBytes - 1));
}

} // namespace pra

#endif // PRA_COMMON_TYPES_H
