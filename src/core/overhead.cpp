#include "core/overhead.h"

#include "common/types.h"

namespace pra {

double
ChipOverheadModel::latchAreaFraction() const
{
    const double total_um2 = latchAreaUm2 * latchesPerChip;
    return total_um2 / (dieAreaMm2 * 1e6);
}

double
ChipOverheadModel::latchPowerFraction() const
{
    return (latchPowerUw * 1e-3) / actPowerMw;
}

double
ChipOverheadModel::totalAreaFraction() const
{
    return latchAreaFraction() + wordlineGateAreaFrac;
}

unsigned
CacheOverheadModel::baselineBitsPerLine() const
{
    return lineBytes * 8 + tagBits + stateBits;
}

double
CacheOverheadModel::storageOverhead() const
{
    const unsigned lines = sizeBytes / lineBytes;
    const double baseline =
        static_cast<double>(lines) * baselineBitsPerLine();
    const double extra = static_cast<double>(lines) * extraDirtyBits;
    return extra / baseline;
}

} // namespace pra
