/**
 * @file
 * Row-buffer state with partial-row (PRA) semantics.
 *
 * A conventional row buffer is either closed or holds one full row. Under
 * PRA a row can be *partially* open: only the MAT groups named by the PRA
 * mask were activated. A request that targets the open row but needs a
 * group that is closed experiences a *false row buffer hit* (paper
 * Section 5.2.1): it would have been a hit in a conventional DRAM but
 * requires a precharge + re-activation here.
 */
#ifndef PRA_CORE_ROW_BUFFER_H
#define PRA_CORE_ROW_BUFFER_H

#include <cstdint>

#include "common/bitmask.h"
#include "common/types.h"

namespace pra {

/** Outcome of probing a row buffer for a request. */
enum class RowProbe
{
    Closed,    //!< No row open: plain miss, activate.
    Conflict,  //!< Different row open: precharge then activate.
    Hit,       //!< Open row covers the request: column access only.
    FalseHit,  //!< Same row open, needed MAT groups closed: PRE + ACT.
};

/** Logical state of one bank's row buffer, including the PRA latch. */
class RowBufferState
{
  public:
    bool isOpen() const { return open_; }
    std::uint32_t openRow() const { return row_; }
    /** MAT groups currently sensed (the PRA latch contents). */
    WordMask openMask() const { return mask_; }
    bool isPartial() const { return open_ && !mask_.isFull(); }

    /** Record an activation of @p row covering @p mask. */
    void
    activate(std::uint32_t row, WordMask mask)
    {
        open_ = true;
        row_ = row;
        mask_ = mask;
    }

    /** Record a precharge. */
    void
    close()
    {
        open_ = false;
        row_ = kInvalidRow;
        mask_ = WordMask::none();
    }

    /**
     * Probe for a request needing @p row with word footprint @p need
     * (reads need the full row: pass WordMask::full()).
     */
    RowProbe
    probe(std::uint32_t row, WordMask need) const
    {
        if (!open_)
            return RowProbe::Closed;
        if (row_ != row)
            return RowProbe::Conflict;
        if (mask_.covers(need))
            return RowProbe::Hit;
        return RowProbe::FalseHit;
    }

    /**
     * True when a conventional (full-row) DRAM would have hit: used to
     * classify FalseHit outcomes against the baseline.
     */
    bool
    conventionalHit(std::uint32_t row) const
    {
        return open_ && row_ == row;
    }

  private:
    bool open_ = false;
    std::uint32_t row_ = kInvalidRow;
    WordMask mask_ = WordMask::none();
};

} // namespace pra

#endif // PRA_CORE_ROW_BUFFER_H
