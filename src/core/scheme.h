/**
 * @file
 * Pluggable DRAM organization schemes (DESIGN.md §12).
 *
 * Every scheme the paper evaluates — and every comparator added since —
 * is one self-contained SchemeModel subclass registered under a string
 * name. The model declares the full behavioural contract the rest of
 * the system consumes: activation mask/granularity/weight, burst
 * shaping, the PRA mask-cycle need, driven-word rules for both bus
 * directions, read-side demand/prediction masks, and the energy bucket
 * an activation charges. The controller, the invariant auditor, the
 * model checker, and the power model are all scheme-agnostic: they call
 * through this interface and never name a concrete scheme (enforced by
 * the pra_lint `scheme-locality` rule).
 *
 * Registered schemes:
 *  - baseline     : conventional DDR3, full-row ACT, 8-burst transfers.
 *  - fga          : fine-grained activation at half-row granularity;
 *                   data mapping folds the line into the active MATs, so
 *                   every transfer takes twice the bursts.
 *  - halfdram     : half-row ACT for all requests with full bandwidth
 *                   (half-height MATs, HFFs shared across halves).
 *  - pra          : the paper's scheme; full-row ACT for reads,
 *                   dirty-word granularity ACT for writes, write I/O
 *                   reduced to the dirty words, +1 tCK mask delivery on
 *                   partial ACTs.
 *  - halfdram+pra : case-study composition (Section 5.2.3).
 *  - sds          : Skinflint DRAM System (Lee et al., HPCA 2013) —
 *                   inter-chip selection. Writes skip chips whose byte
 *                   positions are clean in every word; each selected
 *                   chip still activates its full row, so activation
 *                   energy scales linearly with selected chips.
 *  - sectored     : Sectored DRAM (Olgun et al.) — per-sector
 *                   activation AND per-sector I/O for reads and writes.
 *                   Reads open exactly the sectors the line demands,
 *                   transfers are shortened to the selected sectors,
 *                   and activation energy is linear in the sector count
 *                   (each MAT slice is a fully isolated sub-array).
 *  - pra_spec_read: read-side partial activation layered on PRA: reads
 *                   open a speculative sector mask predicted from the
 *                   line address; an underprediction is discovered as a
 *                   row-buffer false hit and repaired with a precharge
 *                   plus a second, full-row activation.
 *
 * Conformance: the invariant auditor (src/verify/auditor.h) re-derives
 * every activation's expected mask/granularity/weight from these same
 * model functions against its own shadow write queue, so a controller
 * that drifts from the model is caught at the first divergent command.
 */
#ifndef PRA_CORE_SCHEME_H
#define PRA_CORE_SCHEME_H

#include <string>
#include <string_view>
#include <vector>

#include "common/bitmask.h"
#include "common/types.h"
#include "power/power_model.h"
#include "power/power_params.h"

namespace pra {

/**
 * Behavioural model of one DRAM organization scheme.
 *
 * Instances are immutable registry singletons: configs hold them by
 * pointer, pointer equality is identity, and every virtual is a pure
 * function of its arguments (no internal state), so two simulations of
 * the same config are bit-identical regardless of sharing.
 */
class SchemeModel
{
  public:
    virtual ~SchemeModel() = default;

    // --- Identity -------------------------------------------------------

    /** Registry key and config-file spelling (lower-case). */
    virtual const char *name() const = 0;
    /** Human-readable name used in reports and canonical configs. */
    virtual const char *displayName() const = 0;
    /** Additional accepted config spellings (lower-case). */
    virtual std::vector<std::string> aliases() const { return {}; }

    // --- Capability flags (defaults: conventional DDR3) -----------------

    /** Writes may activate a partial row from a dirty-word mask. */
    virtual bool partialWrites() const { return false; }
    /** MATs are split vertically; activations are half-height. */
    virtual bool halfHeight() const { return false; }
    /** Line folded into active MATs: transfers take 2x bursts. */
    virtual bool foldedMapping() const { return false; }
    /** All activations (reads too) cover only half the MAT groups. */
    virtual bool halfGroups() const { return false; }
    /** Writes select chips (SDS); masks carry chip-level semantics. */
    virtual bool chipSelect() const { return false; }
    /** Reads may open a partial row (read-side partial activation). */
    virtual bool partialReads() const { return false; }

    // --- Read-side demand and prediction --------------------------------
    //
    // Both are pure functions of the line address, so the controller,
    // the auditor, and the model checker derive identical expectations
    // with no shared state. Schemes without partialReads() keep the
    // full-row defaults (reads need — and open — the whole row).

    /**
     * Words of @p addr's line a read actually consumes (the demand the
     * open mask must cover before the column access may issue). Never
     * empty.
     */
    virtual WordMask
    readNeed(Addr addr) const
    {
        (void)addr;
        return WordMask::full();
    }

    /**
     * Words a read activation speculatively opens for @p addr. May
     * underpredict readNeed(); the controller then observes a row-
     * buffer false hit and re-activates the full row (the misprediction
     * penalty is the second ACT). Never empty.
     */
    virtual WordMask
    readActMask(Addr addr) const
    {
        (void)addr;
        return WordMask::full();
    }

    // --- Command shaping -------------------------------------------------

    /** Nominal data-bus cycles a 64 B line transfer occupies. */
    virtual unsigned
    burstCycles(unsigned nominal_burst_cycles) const
    {
        return foldedMapping() ? 2 * nominal_burst_cycles
                               : nominal_burst_cycles;
    }

    /**
     * Data-bus cycles one column access actually occupies when it moves
     * the words in @p words (the dirty mask for writes, the read demand
     * for reads). Schemes with fine-grained I/O shorten the burst;
     * everything else transfers the whole (possibly folded) line.
     */
    virtual unsigned
    columnBurstCycles(bool is_write, WordMask words,
                      unsigned nominal_burst_cycles) const
    {
        (void)is_write;
        (void)words;
        return burstCycles(nominal_burst_cycles);
    }

    /**
     * MAT-group granularity of an activation (1..8).
     *
     * @param is_write  Activation triggered by a write request.
     * @param mask      Demand mask: the merged dirty-word mask for
     *                  writes, the (speculative or fallback) read mask
     *                  for reads. Ignored by schemes that always open
     *                  fixed-granularity rows.
     */
    virtual unsigned
    actGranularity(bool is_write, WordMask mask) const
    {
        unsigned g = kMatGroups;
        if (halfGroups())
            g = kMatGroups / 2;
        if ((partialWrites() || chipSelect()) && is_write && !mask.empty())
            g = mask.count();
        return g;
    }

    /**
     * The MAT groups an activation opens for demand @p mask. Reads (and
     * non-partial schemes) open the full row; PRA writes open exactly
     * the masked groups.
     */
    virtual WordMask
    actMask(bool is_write, WordMask mask) const
    {
        if ((partialWrites() || chipSelect()) && is_write && !mask.empty())
            return mask;
        return WordMask::full();
    }

    /** True when this activation needs the extra PRA-mask cycle. */
    virtual bool
    needsMaskCycle(bool is_write, WordMask mask) const
    {
        return (partialWrites() || chipSelect()) && is_write &&
               !mask.isFull() && !mask.empty();
    }

    /**
     * Activation weight against the tFAW/tRRD power budget: the ratio of
     * this activation's power to a conventional full-row activation.
     * The paper's relaxed tRRD/tFAW constraints follow from charging the
     * four-activation window by power instead of by count.
     */
    virtual double
    actWeight(unsigned granularity, const power::PowerParams &pp) const
    {
        // Chip selection scales the activation current linearly: each
        // skipped chip draws nothing, each selected chip draws the full
        // per-chip activation current.
        if (chipSelect())
            return static_cast<double>(granularity) / kMatGroups;
        double w = pp.actPowerAt(granularity) / pp.actPowerAt(kMatGroups);
        if (halfHeight())
            w *= 0.55;   // Half-height CACTI scale at full width (~0.53).
        return w;
    }

    /**
     * Words whose data is actually driven on the DQ pins for a write.
     * PRA transmits only dirty words; every other scheme drives the full
     * line.
     */
    virtual unsigned
    wordsDriven(WordMask mask) const
    {
        if ((partialWrites() || chipSelect()) && !mask.empty())
            return mask.count();
        return kWordsPerLine;
    }

    /**
     * Words driven on the DQ pins for a read whose demand is @p need.
     * Only fine-grained-I/O schemes transfer less than the full line.
     */
    virtual unsigned
    readWordsDriven(WordMask need) const
    {
        (void)need;
        return kWordsPerLine;
    }

    /**
     * Charge one activation of @p granularity into the energy counters.
     * The default picks the bucket from the capability flags exactly as
     * the paper's schemes require (SDS chip-selected writes are linear
     * in chips; half-height schemes use the CACTI half-height curve);
     * fine-grained-I/O schemes override to the linear bucket.
     */
    virtual void
    accountActivate(power::EnergyCounts &c, unsigned granularity,
                    bool is_write) const
    {
        if (chipSelect() && is_write) {
            ++c.sdsActs;
            c.sdsChipsActivated += granularity;
        } else if (halfHeight()) {
            ++c.actsHalfHeight[granularity - 1];
        } else {
            ++c.acts[granularity - 1];
        }
    }

    // --- Non-virtual helpers --------------------------------------------

    /** The raw write mask this scheme's activation algebra consumes
     *  (chip-selecting schemes operate on the chip mask). */
    WordMask
    writeMask(WordMask mask, std::uint8_t chip_mask) const
    {
        return chipSelect() ? WordMask{chip_mask} : mask;
    }

    /** Demand footprint of a write (mergedWriteMask element algebra with
     *  the empty-mask full-row fallback applied). */
    WordMask
    writeNeed(WordMask mask, std::uint8_t chip_mask) const
    {
        if (chipSelect()) {
            const WordMask chips{chip_mask};
            return chips.empty() ? WordMask::full() : chips;
        }
        if (!partialWrites())
            return WordMask::full();
        return mask.empty() ? WordMask::full() : mask;
    }
};

// --- Registry -----------------------------------------------------------

/**
 * Registered scheme named @p name (config spelling, display name, or
 * alias; case-insensitive); nullptr when unknown.
 */
const SchemeModel *findScheme(std::string_view name);

/**
 * findScheme() that throws std::runtime_error listing every registered
 * scheme name on an unknown spelling (config_io's unknown-scheme error).
 */
const SchemeModel &schemeByName(std::string_view name);

/**
 * Every registered scheme, in registration order (deterministic: used
 * by analysis tools, conformance tests, and sweeps to iterate schemes).
 */
const std::vector<const SchemeModel *> &allSchemes();

/** Comma-joined registered config names (diagnostics, --help text). */
std::string registeredSchemeNames();

/** The conventional-DDR3 baseline scheme (DramConfig's default). */
const SchemeModel &baselineScheme();

} // namespace pra

#endif // PRA_CORE_SCHEME_H
