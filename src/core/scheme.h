/**
 * @file
 * DRAM organization schemes evaluated in the paper and their behavioural
 * traits. This is the central description of what PRA (and each
 * comparator) changes relative to the conventional DDR3 baseline; the
 * DRAM timing model and the power model are both driven by these traits.
 *
 * Schemes:
 *  - Baseline   : conventional DDR3, full-row ACT, 8-burst transfers.
 *  - Fga        : fine-grained activation at half-row granularity; data
 *                 mapping folds the line into the active MATs, so every
 *                 transfer takes twice the bursts (bandwidth halved).
 *  - HalfDram   : half-row ACT for all requests with full bandwidth
 *                 (half-height MATs, HFFs shared across halves).
 *  - Pra        : the paper's scheme; full-row ACT for reads, dirty-word
 *                 granularity ACT for writes, write I/O reduced to the
 *                 dirty words, +1 tCK mask delivery on partial ACTs.
 *  - HalfDramPra: case-study composition (Section 5.2.3).
 *  - Sds        : Skinflint DRAM System (Lee et al., HPCA 2013) — the
 *                 closest prior work: inter-chip selection. Writes skip
 *                 chips whose byte positions are clean in every word;
 *                 each selected chip still activates its full row, so
 *                 activation energy scales linearly with selected chips
 *                 (no shared-structure floor *within* a chip is saved).
 *
 * Conformance: the invariant auditor (src/verify/auditor.h) re-derives
 * every activation's expected mask/granularity/weight from these same
 * trait functions against its own shadow write queue, so a controller
 * that drifts from the traits is caught at the first divergent command.
 */
#ifndef PRA_CORE_SCHEME_H
#define PRA_CORE_SCHEME_H

#include <string>

#include "common/bitmask.h"
#include "common/types.h"
#include "power/power_params.h"

namespace pra {

/** DRAM organization scheme. */
enum class Scheme
{
    Baseline,
    Fga,
    HalfDram,
    Pra,
    HalfDramPra,
    Sds,
};

/** Human-readable scheme name. */
std::string schemeName(Scheme s);

/** Static behavioural traits of a scheme. */
struct SchemeTraits
{
    /** Writes may activate a partial row from a dirty-word mask. */
    bool partialWrites = false;
    /** MATs are split vertically; activations are half-height. */
    bool halfHeight = false;
    /** Line folded into active MATs: transfers take 2x bursts. */
    bool foldedMapping = false;
    /** All activations (reads too) cover only half the MAT groups. */
    bool halfGroups = false;
    /** Writes select chips (SDS); masks carry chip-level semantics. */
    bool chipSelect = false;

    /** Traits for scheme @p s. */
    static SchemeTraits of(Scheme s);

    /** Data-bus cycles a 64 B line transfer occupies. */
    unsigned
    burstCycles(unsigned nominal_burst_cycles) const
    {
        return foldedMapping ? 2 * nominal_burst_cycles
                             : nominal_burst_cycles;
    }

    /**
     * MAT-group granularity of an activation (1..8).
     *
     * @param is_write  Activation triggered by a write request.
     * @param mask      Dirty-word mask of the (merged) write(s); ignored
     *                  for reads and non-partial schemes.
     */
    unsigned
    actGranularity(bool is_write, WordMask mask) const
    {
        unsigned g = kMatGroups;
        if (halfGroups)
            g = kMatGroups / 2;
        if ((partialWrites || chipSelect) && is_write && !mask.empty())
            g = mask.count();
        return g;
    }

    /**
     * The MAT groups an activation opens. Reads (and non-partial schemes)
     * open the full row; PRA writes open exactly the masked groups.
     */
    WordMask
    actMask(bool is_write, WordMask mask) const
    {
        if ((partialWrites || chipSelect) && is_write && !mask.empty())
            return mask;
        return WordMask::full();
    }

    /** True when this activation needs the extra PRA-mask cycle. */
    bool
    needsMaskCycle(bool is_write, WordMask mask) const
    {
        return (partialWrites || chipSelect) && is_write &&
               !mask.isFull() && !mask.empty();
    }

    /**
     * Activation weight against the tFAW/tRRD power budget: the ratio of
     * this activation's power to a conventional full-row activation.
     * The paper's relaxed tRRD/tFAW constraints follow from charging the
     * four-activation window by power instead of by count.
     */
    double
    actWeight(unsigned granularity, const power::PowerParams &pp) const
    {
        // Chip selection scales the activation current linearly: each
        // skipped chip draws nothing, each selected chip draws the full
        // per-chip activation current.
        if (chipSelect)
            return static_cast<double>(granularity) / kMatGroups;
        double w = pp.actPowerAt(granularity) / pp.actPowerAt(kMatGroups);
        if (halfHeight)
            w *= 0.55;   // Half-height CACTI scale at full width (~0.53).
        return w;
    }

    /**
     * Words whose data is actually driven on the DQ pins for a write.
     * PRA transmits only dirty words; every other scheme drives the full
     * line.
     */
    unsigned
    wordsDriven(WordMask mask) const
    {
        if ((partialWrites || chipSelect) && !mask.empty())
            return mask.count();
        return kWordsPerLine;
    }
};

} // namespace pra

#endif // PRA_CORE_SCHEME_H
