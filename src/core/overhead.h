/**
 * @file
 * PRA hardware-overhead model (paper Section 4.2).
 *
 * Quantifies the cost of adopting PRA: the per-bank PRA latches, the
 * wordline AND gates, and the fine-grained dirty bits (FGD) added to the
 * cache hierarchy. The numbers mirror the paper's analysis (latch design
 * of Kong et al. scaled to 20 nm; CACTI-3DD for the caches at 22 nm) and
 * back the "small hardware overhead" claim with concrete arithmetic.
 */
#ifndef PRA_CORE_OVERHEAD_H
#define PRA_CORE_OVERHEAD_H

namespace pra {

/** PRA additions inside the DRAM chip. */
struct ChipOverheadModel
{
    double latchAreaUm2 = 1.97;      //!< One 8-bit PRA latch at 20 nm.
    unsigned latchesPerChip = 8;     //!< One per bank.
    double latchPowerUw = 3.8;       //!< Per latch, per activation.
    double dieAreaMm2 = 11.884;      //!< Baseline 2Gb die (Table 2).
    double actPowerMw = 22.2;        //!< Full-row activation power.
    double wordlineGateAreaFrac = 0.03; //!< AND gates (per [25]).

    /** Total PRA latch area as a fraction of the die. */
    double latchAreaFraction() const;
    /** PRA latch power as a fraction of activation power. */
    double latchPowerFraction() const;
    /** Total added die area fraction (latches + wordline gates). */
    double totalAreaFraction() const;
};

/** FGD storage added to one cache (7 extra dirty bits per 64 B line). */
struct CacheOverheadModel
{
    unsigned sizeBytes;       //!< Cache capacity.
    unsigned lineBytes;       //!< Line size (64).
    unsigned tagBits;         //!< Tag bits per line (approximate).
    unsigned stateBits;       //!< Valid + coherence + one dirty bit.
    unsigned extraDirtyBits = 7; //!< FGD addition: 8 word dirty bits - 1.

    /** Bits per line before FGD. */
    unsigned baselineBitsPerLine() const;
    /** FGD storage overhead as a fraction of total cache storage. */
    double storageOverhead() const;
};

/** The paper's published CACTI-3DD overhead estimates for reference. */
struct PublishedFgdOverheads
{
    // 32 KB L1 at 22 nm.
    static constexpr double l1Area = 0.0031;
    static constexpr double l1DynamicEnergy = 0.0012;
    static constexpr double l1Leakage = 0.0126;
    // 4 MB L2 at 22 nm.
    static constexpr double l2Area = 0.0109;
    static constexpr double l2DynamicEnergy = 0.0041;
    static constexpr double l2Leakage = 0.0139;
};

} // namespace pra

#endif // PRA_CORE_OVERHEAD_H
