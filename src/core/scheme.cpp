/**
 * @file
 * The scheme registry: every DRAM organization scheme the repository
 * knows lives in this translation unit (pra_lint's `scheme-locality`
 * rule keeps scheme-specific dispatch from leaking anywhere else).
 * Adding a comparator is one subclass plus one line in makeRegistry().
 */
#include "core/scheme.h"

#include <cctype>
#include <stdexcept>

#include "common/hash.h"

namespace pra {

namespace {

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/**
 * Deterministic per-line sector-usage profile: the words of a line a
 * read actually consumes. No reuse trace reaches the DRAM level, so the
 * profile is synthesized from an FNV-1a hash of the line address —
 * stable per line, varied across lines (mean ~4.7 of 8 words), and
 * identical in the controller, the auditor, and the model checker.
 */
WordMask
sectorUse(Addr addr)
{
    Fnv1a h;
    h.add(static_cast<std::uint64_t>(addr >> 6));
    const auto bits = static_cast<std::uint8_t>(h.value() & 0xff);
    return bits ? WordMask{bits} : WordMask::full();
}

// --- The paper's schemes (Section 5.2) ----------------------------------

class BaselineScheme : public SchemeModel
{
  public:
    const char *name() const override { return "baseline"; }
    const char *displayName() const override { return "Baseline"; }
};

class FgaScheme : public SchemeModel
{
  public:
    const char *name() const override { return "fga"; }
    const char *displayName() const override { return "FGA"; }
    // Half-row FGA (the variant evaluated in Section 5.2.2): half the
    // MAT groups activate and the line is folded into them, doubling
    // the burst count.
    bool foldedMapping() const override { return true; }
    bool halfGroups() const override { return true; }
};

class HalfDramScheme : public SchemeModel
{
  public:
    const char *name() const override { return "halfdram"; }
    const char *displayName() const override { return "Half-DRAM"; }
    std::vector<std::string> aliases() const override
    {
        return {"half-dram"};
    }
    bool halfHeight() const override { return true; }
};

class PraScheme : public SchemeModel
{
  public:
    const char *name() const override { return "pra"; }
    const char *displayName() const override { return "PRA"; }
    bool partialWrites() const override { return true; }
};

class HalfDramPraScheme : public SchemeModel
{
  public:
    const char *name() const override { return "halfdram+pra"; }
    const char *displayName() const override { return "Half-DRAM+PRA"; }
    std::vector<std::string> aliases() const override
    {
        return {"half-dram+pra", "combined"};
    }
    bool partialWrites() const override { return true; }
    bool halfHeight() const override { return true; }
};

class SdsScheme : public SchemeModel
{
  public:
    const char *name() const override { return "sds"; }
    const char *displayName() const override { return "SDS"; }
    bool chipSelect() const override { return true; }
};

// --- Comparators beyond the paper (DESIGN.md §12.3) ---------------------

/**
 * Sectored DRAM (Olgun et al.): every MAT slice is an isolated
 * sub-array with its own local wordline segment, so both reads and
 * writes activate — and transfer — only the sectors they touch. Sector
 * select bits ride the ACT like the PRA mask (one extra command cycle,
 * the tRCD-side cost of the sector latch), activation energy is linear
 * in the selected sectors (no shared-structure floor), and the I/O
 * burst is shortened to the moved sectors in both directions.
 */
class SectoredScheme : public SchemeModel
{
  public:
    const char *name() const override { return "sectored"; }
    const char *displayName() const override { return "Sectored"; }
    bool partialWrites() const override { return true; }
    bool partialReads() const override { return true; }

    WordMask readNeed(Addr addr) const override { return sectorUse(addr); }
    /** Sector demand is known at activate time (the request carries its
     *  sector bits), so reads open exactly what they need. */
    WordMask readActMask(Addr addr) const override
    {
        return sectorUse(addr);
    }

    unsigned
    actGranularity(bool is_write, WordMask mask) const override
    {
        (void)is_write;
        return mask.empty() ? kMatGroups : mask.count();
    }

    WordMask
    actMask(bool is_write, WordMask mask) const override
    {
        (void)is_write;
        return mask.empty() ? WordMask::full() : mask;
    }

    bool
    needsMaskCycle(bool is_write, WordMask mask) const override
    {
        (void)is_write;
        return !mask.isFull() && !mask.empty();
    }

    double
    actWeight(unsigned granularity,
              const power::PowerParams &pp) const override
    {
        (void)pp;
        return static_cast<double>(granularity) / kMatGroups;
    }

    unsigned
    readWordsDriven(WordMask need) const override
    {
        return need.empty() ? kWordsPerLine : need.count();
    }

    unsigned
    columnBurstCycles(bool is_write, WordMask words,
                      unsigned nominal_burst_cycles) const override
    {
        (void)is_write;
        const unsigned w = words.empty() ? kWordsPerLine : words.count();
        // Ceil-scaled burst: moving w of 8 sectors takes w/8 of the
        // nominal beats, never less than one bus cycle.
        const unsigned cycles =
            (nominal_burst_cycles * w + kWordsPerLine - 1) / kWordsPerLine;
        return cycles ? cycles : 1;
    }

    void
    accountActivate(power::EnergyCounts &c, unsigned granularity,
                    bool is_write) const override
    {
        (void)is_write;
        // Linear bucket (shared with SDS): each selected sector slice
        // draws its isolated share of the full-row activation power.
        ++c.sdsActs;
        c.sdsChipsActivated += granularity;
    }
};

/**
 * Read-side partial activation on top of PRA: reads open a speculative
 * sector mask predicted from the line address. Overpredictions waste a
 * little activation energy; an underprediction surfaces as a row-buffer
 * false hit, which the controller repairs with a precharge and a
 * second, full-row activation (the misprediction penalty). Write-side
 * behaviour is exactly PRA's.
 */
class PraSpecReadScheme : public SchemeModel
{
  public:
    const char *name() const override { return "pra_spec_read"; }
    const char *displayName() const override { return "PRA+SpecRead"; }
    std::vector<std::string> aliases() const override
    {
        return {"pra-spec-read", "specread"};
    }
    bool partialWrites() const override { return true; }
    bool partialReads() const override { return true; }

    WordMask readNeed(Addr addr) const override { return sectorUse(addr); }

    WordMask
    readActMask(Addr addr) const override
    {
        const WordMask use = sectorUse(addr);
        // The predictor is modeled as mostly exact with a deterministic
        // ~1/8 underprediction rate: a second address hash elects lines
        // whose lowest demanded sector the prediction misses, forcing
        // the full-row fallback path.
        Fnv1a h;
        h.add(static_cast<std::uint64_t>((addr >> 6) * 0x9e3779b97f4a7c15ull));
        if ((h.value() & 0x7) == 0) {
            const WordMask missed{
                static_cast<std::uint8_t>(use.bits() & (use.bits() - 1))};
            if (!missed.empty())
                return missed;
        }
        return use;
    }

    unsigned
    actGranularity(bool is_write, WordMask mask) const override
    {
        if (!is_write)
            return mask.empty() ? kMatGroups : mask.count();
        return SchemeModel::actGranularity(is_write, mask);
    }

    WordMask
    actMask(bool is_write, WordMask mask) const override
    {
        if (!is_write)
            return mask.empty() ? WordMask::full() : mask;
        return SchemeModel::actMask(is_write, mask);
    }

    bool
    needsMaskCycle(bool is_write, WordMask mask) const override
    {
        if (!is_write)
            return !mask.isFull() && !mask.empty();
        return SchemeModel::needsMaskCycle(is_write, mask);
    }
};

/** Registration order is the canonical sweep/iteration order. */
const std::vector<const SchemeModel *> &
makeRegistry()
{
    static const BaselineScheme baseline;
    static const FgaScheme fga;
    static const HalfDramScheme halfdram;
    static const PraScheme pra;
    static const HalfDramPraScheme halfdram_pra;
    static const SdsScheme sds;
    static const SectoredScheme sectored;
    static const PraSpecReadScheme pra_spec_read;
    static const std::vector<const SchemeModel *> registry{
        &baseline, &fga,  &halfdram, &pra,
        &halfdram_pra, &sds, &sectored, &pra_spec_read,
    };
    return registry;
}

} // namespace

const std::vector<const SchemeModel *> &
allSchemes()
{
    return makeRegistry();
}

const SchemeModel *
findScheme(std::string_view name)
{
    const std::string key = lowered(name);
    for (const SchemeModel *s : allSchemes()) {
        if (key == s->name() || key == lowered(s->displayName()))
            return s;
        for (const std::string &alias : s->aliases())
            if (key == alias)
                return s;
    }
    return nullptr;
}

std::string
registeredSchemeNames()
{
    std::string names;
    for (const SchemeModel *s : allSchemes()) {
        if (!names.empty())
            names += ", ";
        names += s->name();
    }
    return names;
}

const SchemeModel &
schemeByName(std::string_view name)
{
    if (const SchemeModel *s = findScheme(name))
        return *s;
    throw std::runtime_error("unknown scheme '" + std::string(name) +
                             "' (registered schemes: " +
                             registeredSchemeNames() + ")");
}

const SchemeModel &
baselineScheme()
{
    return *allSchemes().front();
}

} // namespace pra
