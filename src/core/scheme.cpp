#include "core/scheme.h"

namespace pra {

std::string
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Baseline:
        return "Baseline";
      case Scheme::Fga:
        return "FGA";
      case Scheme::HalfDram:
        return "Half-DRAM";
      case Scheme::Pra:
        return "PRA";
      case Scheme::HalfDramPra:
        return "Half-DRAM+PRA";
      case Scheme::Sds:
        return "SDS";
    }
    return "?";
}

SchemeTraits
SchemeTraits::of(Scheme s)
{
    SchemeTraits t;
    switch (s) {
      case Scheme::Baseline:
        break;
      case Scheme::Fga:
        // Half-row FGA (the variant evaluated in Section 5.2.2): half the
        // MAT groups activate and the line is folded into them, doubling
        // the burst count.
        t.halfGroups = true;
        t.foldedMapping = true;
        break;
      case Scheme::HalfDram:
        t.halfHeight = true;
        break;
      case Scheme::Pra:
        t.partialWrites = true;
        break;
      case Scheme::HalfDramPra:
        t.halfHeight = true;
        t.partialWrites = true;
        break;
      case Scheme::Sds:
        t.chipSelect = true;
        break;
    }
    return t;
}

} // namespace pra
