// RowBufferState is header-only; this translation unit exists so the
// library always has at least one object for the linker and to anchor
// any future out-of-line definitions.
#include "core/row_buffer.h"
