/**
 * @file
 * Analytic die-area and row-activation-energy model of the baseline
 * 2Gb x8 DDR3-1600 chip, reproducing the component structure the paper
 * obtained from CACTI-3DD at the 20 nm node (Table 2 and Figure 9).
 *
 * Activation energy decomposes into a per-MAT part (local bitlines, local
 * sense amplifiers, local wordline, local row decoder) that scales with
 * the number of MATs activated, and a per-bank shared part (row activation
 * bus, row predecoder) that is paid on every activation regardless of
 * granularity. This shared part is why the energy saving of half-row
 * activation is less than 50 % (Figure 9) and is folded into the
 * P_ACT(granularity) scaling used by the power model.
 */
#ifndef PRA_POWER_CACTI_MODEL_H
#define PRA_POWER_CACTI_MODEL_H

#include "common/types.h"

namespace pra::power {

/** Die area breakdown in mm^2 (Table 2, 2Gb x8 DDR3-1600 at 20 nm). */
struct DieArea
{
    double dramCell = 4.677;
    double senseAmplifier = 1.909;
    double rowPredecoder = 0.067;
    double localWordlineDriver = 1.617;
    double totalDie = 11.884;   //!< Including all other structures.

    /** Sum of the explicitly modeled components. */
    double modeledTotal() const
    {
        return dramCell + senseAmplifier + rowPredecoder +
               localWordlineDriver;
    }
};

/** Per-MAT and per-bank activation energy components in pJ (Table 2). */
struct ActEnergyComponents
{
    // Per activated MAT.
    double localBitline = 15.583;
    double localSenseAmp = 1.257;
    double localWordline = 0.046;
    double rowDecoder = 0.035;

    // Shared per bank (paid once per activation).
    double rowActivationBus = 17.944;
    double rowPredecoder = 0.072;

    double perMat() const
    {
        return localBitline + localSenseAmp + localWordline + rowDecoder;
    }
    double shared() const { return rowActivationBus + rowPredecoder; }
};

/**
 * CACTI-style activation energy and PRA power-scaling model.
 *
 * All energies are per chip. A full-row activation drives all 16 MATs of
 * a sub-array; a PRA activation at granularity g (1..8 MAT groups) drives
 * 2g MATs. Half-DRAM-style half-height MATs halve the bitline and sense
 * amplifier energy of each driven MAT.
 */
class CactiModel
{
  public:
    CactiModel() = default;
    CactiModel(DieArea area, ActEnergyComponents energy)
        : area_(area), energy_(energy)
    {}

    const DieArea &area() const { return area_; }
    const ActEnergyComponents &components() const { return energy_; }

    /** Energy (pJ) of one activation driving @p num_mats MATs. */
    double actEnergy(unsigned num_mats, bool half_height = false) const;

    /** Full-row activation energy per bank (Table 2 bottom line). */
    double fullRowEnergy() const { return actEnergy(kMatsPerSubarray); }

    /**
     * Energy scale factor of a granularity-g activation relative to a
     * full-row activation (g in 1..8 MAT groups; 2 MATs per group).
     */
    double scaleFactor(unsigned granularity, bool half_height = false) const;

    /**
     * P_ACT (mW) at granularity g, scaling the industrial full-row
     * activation power @p full_row_act_mw by the CACTI energy ratio.
     * This is how the paper's Table 3 row of ACT powers is produced.
     */
    double actPower(unsigned granularity, double full_row_act_mw = 22.2,
                    bool half_height = false) const;

  private:
    DieArea area_{};
    ActEnergyComponents energy_{};
};

} // namespace pra::power

#endif // PRA_POWER_CACTI_MODEL_H
