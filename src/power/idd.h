/**
 * @file
 * IDD-based activation power derivation (paper Eq. 1 and Eq. 2).
 *
 * Following the Micron power-calculator methodology, the pure row
 * activation power is the IDD0 activate current with the background
 * (active-standby during tRAS, precharge-standby during tRC - tRAS)
 * contribution removed:
 *
 *   I_ACT = IDD0 - (IDD3N * tRAS + IDD2N * (tRC - tRAS)) / tRC   (Eq. 1)
 *   P_ACT = VDD * I_ACT                                          (Eq. 2)
 *
 * The default values are solved back from the paper's Table 3 so that the
 * derivation reproduces the published P_ACT = 22.2 mW, ACT_STBY = 42 mW
 * and PRE_STBY = 27 mW for the 2Gb x8 DDR3-1600 device at 20 nm.
 */
#ifndef PRA_POWER_IDD_H
#define PRA_POWER_IDD_H

namespace pra::power {

/** Datasheet currents (mA) and supply voltage for one DRAM device. */
struct IddParams
{
    double vdd = 1.5;      //!< Supply voltage (V).
    double idd0 = 39.98;   //!< Activate-precharge current (mA).
    double idd2n = 18.0;   //!< Precharge standby current (mA).
    double idd3n = 28.0;   //!< Active standby current (mA).

    unsigned tRas = 28;    //!< Row active time (cycles).
    unsigned tRc = 39;     //!< Row cycle time (cycles).
};

/** Eq. 1: pure activation current in mA. */
constexpr double
actCurrent(const IddParams &p)
{
    const double background =
        (p.idd3n * p.tRas + p.idd2n * (p.tRc - p.tRas)) /
        static_cast<double>(p.tRc);
    return p.idd0 - background;
}

/** Eq. 2: pure activation power in mW. */
constexpr double
actPowerFromIdd(const IddParams &p)
{
    return p.vdd * actCurrent(p);
}

/** Active-standby background power in mW (VDD * IDD3N). */
constexpr double
actStandbyPower(const IddParams &p)
{
    return p.vdd * p.idd3n;
}

/** Precharge-standby background power in mW (VDD * IDD2N). */
constexpr double
preStandbyPower(const IddParams &p)
{
    return p.vdd * p.idd2n;
}

} // namespace pra::power

#endif // PRA_POWER_IDD_H
