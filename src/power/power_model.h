/**
 * @file
 * Micron-methodology DRAM energy accounting.
 *
 * The DRAM system accumulates event counts (EnergyCounts) while it
 * simulates; PowerModel converts them into the energy/power breakdown the
 * paper reports (Figure 2 categories: ACT-PRE, RD, WR, RD I/O, WR I/O,
 * BG, REF).
 *
 * Accounting rules:
 *  - Each ACT-PRE pair is charged P_ACT(g) over one tRC window. A
 *    half-height activation (Half-DRAM / FGA / combined scheme) uses the
 *    CACTI half-height curve normalized to the same full-row power.
 *  - RD / WR core energy and I/O energy are charged per transferred line
 *    at the nominal burst occupancy, so a scheme that stretches a transfer
 *    over more cycles (FGA) consumes the same energy but exhibits lower
 *    average power due to longer runtime — matching the paper's note on
 *    FGA's apparent I/O "saving".
 *  - Write I/O (ODT on the target rank plus termination on peer ranks) is
 *    scaled by the fraction of words actually driven, which is PRA's
 *    write-I/O saving; read I/O is scaled the same way, but only
 *    fine-grained-I/O schemes (sectored) ever drive fewer than all the
 *    words of a read, so every paper scheme charges full read I/O.
 *  - Background energy integrates per-rank state residency; refresh is
 *    charged per REF operation over tRFC.
 */
#ifndef PRA_POWER_POWER_MODEL_H
#define PRA_POWER_POWER_MODEL_H

#include <array>
#include <cstdint>

#include "common/types.h"
#include "power/cacti_model.h"
#include "power/power_params.h"

namespace pra::power {

/** Raw event counts accumulated by the DRAM system during simulation. */
struct EnergyCounts
{
    /** ACT-PRE pairs by granularity (index g-1), full-height MATs. */
    std::array<std::uint64_t, 8> acts{};
    /** ACT-PRE pairs by granularity, half-height MATs (Half-DRAM/FGA). */
    std::array<std::uint64_t, 8> actsHalfHeight{};
    /** SDS chip-selected write activations (full row per chip). */
    std::uint64_t sdsActs = 0;
    /** Total chips activated over all SDS write activations. */
    std::uint64_t sdsChipsActivated = 0;

    std::uint64_t readLines = 0;       //!< 64 B lines read.
    std::uint64_t writeLines = 0;      //!< 64 B line write transactions.
    std::uint64_t writeWordsDriven = 0; //!< Words actually driven on DQ.
    /** Words actually driven on DQ for reads: kWordsPerLine per line
     *  except under fine-grained-I/O schemes (sectored reads move only
     *  the demanded sectors). */
    std::uint64_t readWordsDriven = 0;

    std::uint64_t actStandbyCycles = 0; //!< Rank-cycles with a bank open.
    std::uint64_t preStandbyCycles = 0; //!< Rank-cycles idle, not PDN.
    std::uint64_t powerDownCycles = 0;  //!< Rank-cycles in PRE PDN.
    std::uint64_t refreshOps = 0;       //!< All-bank REF commands issued.
    std::uint64_t rfmOps = 0;           //!< PRAC RFM mitigations issued.

    std::uint64_t elapsedCycles = 0;    //!< Wall-clock DRAM cycles.

    EnergyCounts &operator+=(const EnergyCounts &o);
    /** Field-wise equality: bit-exactness checks (auditor, fast paths). */
    bool operator==(const EnergyCounts &o) const = default;

    /** Mean activation granularity in MAT groups (1..8), both curves. */
    double meanActGranularity() const;
    std::uint64_t totalActs() const;
};

/** Energy breakdown in nJ per Figure 2 category. */
struct EnergyBreakdown
{
    double actPre = 0.0;
    double read = 0.0;
    double write = 0.0;
    double readIo = 0.0;   //!< Read I/O + read termination.
    double writeIo = 0.0;  //!< Write ODT + write termination.
    double background = 0.0;
    double refresh = 0.0;

    double total() const
    {
        return actPre + read + write + readIo + writeIo + background +
               refresh;
    }
};

/** Converts EnergyCounts into energies (nJ) and average power (mW). */
class PowerModel
{
  public:
    /**
     * @param params    Per-chip power parameters (Table 3).
     * @param chips     DRAM devices per rank (8 in the baseline).
     * @param ranks     Ranks sharing a channel (termination targets).
     * @param ecc_chips Extra ECC devices per rank (x72 DIMM). An ECC
     *                  chip's PRA pin is tied high (paper Section 4.2),
     *                  so it always performs full-row activations and
     *                  full write bursts regardless of the scheme.
     */
    PowerModel(PowerParams params, unsigned chips, unsigned ranks,
               unsigned ecc_chips = 0);

    const PowerParams &params() const { return params_; }

    /** Rank-level energy breakdown (nJ) for the given counts. */
    EnergyBreakdown energy(const EnergyCounts &counts) const;

    /** Average total power in mW over the counted interval. */
    double averagePower(const EnergyCounts &counts) const;

    /** Total energy in nJ. */
    double totalEnergy(const EnergyCounts &counts) const
    {
        return energy(counts).total();
    }

    /** Simulated wall-clock time in ns. */
    double
    elapsedNs(const EnergyCounts &counts) const
    {
        return static_cast<double>(counts.elapsedCycles) * params_.tCkNs;
    }

    /** Energy-delay product in nJ * ns (relative use only). */
    double
    energyDelayProduct(const EnergyCounts &counts) const
    {
        return totalEnergy(counts) * elapsedNs(counts);
    }

  private:
    double halfHeightActPower(unsigned granularity) const;

    PowerParams params_;
    CactiModel cacti_;
    unsigned chips_;
    unsigned ranks_;
    unsigned eccChips_;
};

} // namespace pra::power

#endif // PRA_POWER_POWER_MODEL_H
