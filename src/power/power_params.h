/**
 * @file
 * DDR3 device power parameters (paper Table 3, "Power (mW)" block) and
 * the timing values the power model needs to convert between power and
 * energy. All values are per DRAM device (chip); the power model scales
 * by the number of chips in a rank.
 */
#ifndef PRA_POWER_POWER_PARAMS_H
#define PRA_POWER_POWER_PARAMS_H

#include <array>

#include "power/cacti_model.h"
#include "power/idd.h"

namespace pra::power {

/** Per-chip DDR3-1600 power parameters in mW (Table 3). */
struct PowerParams
{
    double preStandby = 27.0;   //!< PRE STBY: all banks precharged, idle.
    double prePowerDown = 18.0; //!< PRE PDN: precharge power-down.
    double refresh = 210.0;     //!< REF: power during the tRFC burst.
    double actStandby = 42.0;   //!< ACT STBY: at least one bank open.
    double read = 78.0;         //!< RD: core read (IDD4R - IDD3N).
    double write = 93.0;        //!< WR: core write (IDD4W - IDD3N).
    // I/O powers are per data pin, as in the Micron TN-41-01 power
    // calculator the paper uses (PdqRD / PdqWR / PdqRDoth / PdqWRoth for
    // a dual-rank terminated DDR3 system). The effective pin factor is
    // calibrated so the baseline power breakdown reproduces the paper's
    // Figure 2 shares (ACT-PRE ~25%, I/O ~14% of total): the full
    // 10/11-pin dual-rank termination roughly doubles the I/O share the
    // paper reports, while a per-chip reading makes it 4x too small.
    double readIo = 4.6;        //!< RD I/O per pin, target rank drivers.
    double writeOdt = 21.2;     //!< WR ODT per pin, target rank.
    double readTerm = 15.5;     //!< RD TERM per pin, other rank.
    double writeTerm = 15.4;    //!< WR TERM per pin, other rank.
    unsigned readIoPins = 4;    //!< Effective pin factor (see above).
    unsigned writeIoPins = 4;   //!< Effective pin factor (see above).

    /**
     * ACT power (mW) per activation granularity, index g-1 for g in 1..8
     * MAT groups. Table 3: full, 7/8 ... 1/8 row = 22.2, 19.6, 16.9, 14.3,
     * 11.6, 9.1, 6.4, 3.7 mW.
     */
    std::array<double, 8> actPower{3.7, 6.4, 9.1, 11.6,
                                   14.3, 16.9, 19.6, 22.2};

    double tCkNs = 1.25;        //!< DDR3-1600 clock period (ns).
    unsigned tRc = 39;          //!< Row cycle (cycles), ACT-PRE energy window.
    unsigned burstCycles = 4;   //!< Cycles a BL8 transfer occupies the bus.
    unsigned tRfc = 128;        //!< Refresh cycle time (160 ns).
    unsigned tRefi = 6240;      //!< Refresh interval (7.8 us).
    unsigned tRfm = 80;         //!< PRAC RFM window (~tRFC/2), if enabled.

    /** P_ACT (mW) for a granularity-g activation, g in 1..8. */
    double
    actPowerAt(unsigned granularity) const
    {
        return actPower[granularity - 1];
    }

    /** Energy (nJ) of one ACT-PRE pair at granularity g. */
    double
    actEnergyNj(unsigned granularity) const
    {
        return actPowerAt(granularity) * tRc * tCkNs * 1e-3;
    }

    /**
     * Populate the per-granularity ACT powers from the CACTI component
     * model instead of the hard-coded Table 3 values (bench_table3 shows
     * the two agree within a few percent).
     */
    void
    deriveActPowerFromCacti(const CactiModel &cacti, double full_row_mw)
    {
        for (unsigned g = 1; g <= 8; ++g)
            actPower[g - 1] = cacti.actPower(g, full_row_mw);
    }
};

} // namespace pra::power

#endif // PRA_POWER_POWER_PARAMS_H
