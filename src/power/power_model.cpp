#include "power/power_model.h"

namespace pra::power {

EnergyCounts &
EnergyCounts::operator+=(const EnergyCounts &o)
{
    for (unsigned i = 0; i < 8; ++i) {
        acts[i] += o.acts[i];
        actsHalfHeight[i] += o.actsHalfHeight[i];
    }
    sdsActs += o.sdsActs;
    sdsChipsActivated += o.sdsChipsActivated;
    readLines += o.readLines;
    writeLines += o.writeLines;
    writeWordsDriven += o.writeWordsDriven;
    readWordsDriven += o.readWordsDriven;
    actStandbyCycles += o.actStandbyCycles;
    preStandbyCycles += o.preStandbyCycles;
    powerDownCycles += o.powerDownCycles;
    refreshOps += o.refreshOps;
    rfmOps += o.rfmOps;
    elapsedCycles += o.elapsedCycles;
    return *this;
}

std::uint64_t
EnergyCounts::totalActs() const
{
    std::uint64_t t = sdsActs;
    for (unsigned i = 0; i < 8; ++i)
        t += acts[i] + actsHalfHeight[i];
    return t;
}

double
EnergyCounts::meanActGranularity() const
{
    const std::uint64_t t = totalActs();
    if (!t)
        return 0.0;
    double acc = static_cast<double>(sdsChipsActivated);
    for (unsigned i = 0; i < 8; ++i)
        acc += static_cast<double>(i + 1) *
               static_cast<double>(acts[i] + actsHalfHeight[i]);
    return acc / static_cast<double>(t);
}

PowerModel::PowerModel(PowerParams params, unsigned chips, unsigned ranks,
                       unsigned ecc_chips)
    : params_(params), chips_(chips), ranks_(ranks), eccChips_(ecc_chips)
{
}

double
PowerModel::halfHeightActPower(unsigned granularity) const
{
    // Normalize the half-height CACTI curve so that a full-row,
    // full-height activation matches the industrial P_ACT; the half-height
    // curve then expresses Half-DRAM's and the combined scheme's savings.
    return params_.actPowerAt(8) * cacti_.scaleFactor(granularity, true);
}

EnergyBreakdown
PowerModel::energy(const EnergyCounts &c) const
{
    const PowerParams &p = params_;
    const double ns_per_cycle = p.tCkNs;
    const double chips = static_cast<double>(chips_);
    // mW * ns = pJ; divide by 1e3 for nJ.
    constexpr double kPjToNj = 1e-3;

    EnergyBreakdown e;

    const double act_window_ns = static_cast<double>(p.tRc) * ns_per_cycle;
    for (unsigned g = 1; g <= 8; ++g) {
        const double n_full = static_cast<double>(c.acts[g - 1]);
        const double n_half = static_cast<double>(c.actsHalfHeight[g - 1]);
        e.actPre += n_full * p.actPowerAt(g) * act_window_ns * chips *
                    kPjToNj;
        e.actPre += n_half * halfHeightActPower(g) * act_window_ns * chips *
                    kPjToNj;
    }
    // SDS: linear in selected chips, full per-chip activation power.
    e.actPre += static_cast<double>(c.sdsChipsActivated) *
                p.actPowerAt(8) * act_window_ns * kPjToNj;

    const double burst_ns = static_cast<double>(p.burstCycles) *
                            ns_per_cycle;
    const double reads = static_cast<double>(c.readLines);
    const double writes = static_cast<double>(c.writeLines);
    // Fraction of write words actually driven on the DQ pins.
    const double words = static_cast<double>(c.writeWordsDriven);
    const double peer_ranks = ranks_ > 1 ? static_cast<double>(ranks_ - 1)
                                         : 0.0;

    e.read = reads * p.read * burst_ns * chips * kPjToNj;
    e.write = writes * p.write * burst_ns * chips * kPjToNj;
    // I/O powers are per pin (TN-41-01): scale by the device's data-pin
    // count. PRA drives (and the peer rank terminates) only the dirty
    // words of a write burst; sectored reads drive only the demanded
    // sectors (read_words == kWordsPerLine * readLines — and therefore
    // the paper's unscaled read I/O, bit-exactly — for every scheme
    // without fine-grained read I/O).
    const double read_words = static_cast<double>(c.readWordsDriven);
    e.readIo = (read_words / kWordsPerLine) *
               (p.readIo + p.readTerm * peer_ranks) *
               p.readIoPins * burst_ns * chips * kPjToNj;
    e.writeIo = (words / kWordsPerLine) *
                (p.writeOdt + p.writeTerm * peer_ranks) * p.writeIoPins *
                burst_ns * chips * kPjToNj;

    e.background =
        (static_cast<double>(c.actStandbyCycles) * p.actStandby +
         static_cast<double>(c.preStandbyCycles) * p.preStandby +
         static_cast<double>(c.powerDownCycles) * p.prePowerDown) *
        ns_per_cycle * chips * kPjToNj;

    e.refresh = static_cast<double>(c.refreshOps) * p.refresh *
                static_cast<double>(p.tRfc) * ns_per_cycle * chips * kPjToNj;
    // RFM internally refreshes the victim row's neighbourhood: charge it
    // like a refresh burst scaled to the tRFM window.
    e.refresh += static_cast<double>(c.rfmOps) * p.refresh *
                 static_cast<double>(p.tRfm) * ns_per_cycle * chips *
                 kPjToNj;

    if (eccChips_ > 0) {
        // The ECC devices ignore PRA/SDS masks: full-row activation on
        // every ACT and full bursts on every transfer (Section 4.2).
        const double ecc = static_cast<double>(eccChips_);
        e.actPre += static_cast<double>(c.totalActs()) * p.actPowerAt(8) *
                    act_window_ns * ecc * kPjToNj;
        e.read += reads * p.read * burst_ns * ecc * kPjToNj;
        e.write += writes * p.write * burst_ns * ecc * kPjToNj;
        e.readIo += reads * (p.readIo + p.readTerm * peer_ranks) *
                    p.readIoPins * burst_ns * ecc * kPjToNj;
        e.writeIo += writes * (p.writeOdt + p.writeTerm * peer_ranks) *
                     p.writeIoPins * burst_ns * ecc * kPjToNj;
        e.background +=
            (static_cast<double>(c.actStandbyCycles) * p.actStandby +
             static_cast<double>(c.preStandbyCycles) * p.preStandby +
             static_cast<double>(c.powerDownCycles) * p.prePowerDown) *
            ns_per_cycle * ecc * kPjToNj;
        e.refresh += static_cast<double>(c.refreshOps) * p.refresh *
                     static_cast<double>(p.tRfc) * ns_per_cycle * ecc *
                     kPjToNj;
        e.refresh += static_cast<double>(c.rfmOps) * p.refresh *
                     static_cast<double>(p.tRfm) * ns_per_cycle * ecc *
                     kPjToNj;
    }

    return e;
}

double
PowerModel::averagePower(const EnergyCounts &c) const
{
    const double ns = elapsedNs(c);
    if (ns <= 0.0)
        return 0.0;
    // nJ / ns = W; report mW.
    return energy(c).total() / ns * 1e3;
}

} // namespace pra::power
