#include "power/cacti_model.h"

#include <cassert>

namespace pra::power {

double
CactiModel::actEnergy(unsigned num_mats, bool half_height) const
{
    assert(num_mats >= 1 && num_mats <= kMatsPerSubarray);
    const double cell_part = energy_.localBitline + energy_.localSenseAmp;
    const double drive_part = energy_.localWordline + energy_.rowDecoder;
    const double per_mat =
        (half_height ? cell_part * 0.5 : cell_part) + drive_part;
    return num_mats * per_mat + energy_.shared();
}

double
CactiModel::scaleFactor(unsigned granularity, bool half_height) const
{
    assert(granularity >= 1 && granularity <= kMatGroups);
    return actEnergy(2 * granularity, half_height) / fullRowEnergy();
}

double
CactiModel::actPower(unsigned granularity, double full_row_act_mw,
                     bool half_height) const
{
    return full_row_act_mw * scaleFactor(granularity, half_height);
}

} // namespace pra::power
