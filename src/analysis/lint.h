/**
 * @file
 * Repo-specific determinism and configuration lint (DESIGN.md §10).
 *
 * Eight rules, each encoding an invariant this repository depends on
 * but a generic linter cannot know:
 *
 *  - entropy: no ambient randomness or wall-clock access in src/
 *    outside common/rng.h — the simulator must be bit-reproducible, so
 *    all randomness flows through the seeded PRNG and all time is
 *    simulated Cycle time (the compiled port of
 *    tools/check_determinism.sh). Files under tests/ are scanned only
 *    as the fault-coverage reference corpus, never for entropy (test
 *    drills legitimately spell forbidden patterns);
 *  - unordered-iteration: no iteration over std::unordered_map/
 *    unordered_set in result-affecting code (src/dram, src/sim,
 *    src/cache) — hash-order iteration silently varies across library
 *    versions, defeating determinism. Suppress a vetted site (e.g. keys
 *    sorted before use) with `// pra-lint: unordered-ok`;
 *  - timing-locality: no raw timing-parameter access (word-bounded
 *    `timing`/`Timing`) in issue-path code — the controller, bank/rank
 *    FSMs, bus arbiter, maintenance engine, wake-up heap, and scheduler
 *    policies must derive legality from the precomputed command-pair
 *    gap tables (src/dram/timing_tables.h), keeping the hot path free
 *    of scattered tRCD-style arithmetic that the event engine's wake-up
 *    bounds could silently miss. timing_tables.cpp (the builder) and
 *    checker.* (the independent oracle) are outside the scope; a vetted
 *    cold-path site suppresses with `// pra-lint: timing-ok`;
 *  - config-coverage: every DramConfig and SystemConfig field must
 *    appear in canonicalConfig() (the result-cache key — a field
 *    missing there lets two behaviourally different configs share a
 *    cache entry) and in the applyConfigLine() handler region (so
 *    config files can set it). Fields that cannot affect simulated
 *    results opt out of the canonical key with
 *    `// pra-lint: observational`;
 *  - energy-coverage: every power::EnergyCounts member must be
 *    consumed by the PowerModel aggregation and the auditor's energy
 *    conservation check — an unconsumed counter means silently dropped
 *    energy;
 *  - scheme-locality: no scheme dispatch outside the registry TU —
 *    scheme behaviour lives in the SchemeModel plugins
 *    (src/core/scheme.{h,cpp}); any other file under src/ spelling the
 *    legacy `Scheme::` enum idiom, the retired `SchemeTraits` struct,
 *    or comparing (==/!=) against a registered scheme-name string
 *    literal is reintroducing a closed-world switch that new plugins
 *    would silently miss. Selection by name (findScheme/schemeByName)
 *    is fine — the literal sits in a call, not beside a comparison.
 *    Suppress a vetted site (e.g. a serialization-compat default)
 *    with `// pra-lint: scheme-ok`;
 *  - fault-coverage: every analysis::Fault enum member
 *    (analysis/model_checker.h) and every DramConfig deliberate fault
 *    hook (auditFault-/fault-prefixed fields in dram/config.h) must be
 *    referenced from at least one file under tests/ — an undrilled
 *    fault hook is a model-checker property nothing proves can fire.
 *    Active only when the scanned input includes tests/ files, so
 *    src-only scans stay meaningful;
 *  - maintop-coverage: every named MaintenanceOp registered under src/
 *    (a `registerOp("name", ...)` call site) must be referenced from at
 *    least one file under tests/ (same corpus gating as fault-coverage)
 *    and must appear in canonicalConfig() — a registered op changes
 *    which commands issue when, so two configs differing only in the
 *    op's presence must not share a result-cache entry. An op vetted as
 *    result-neutral opts out of the canonical-key requirement with
 *    `// pra-lint: observational` on the registration line; an
 *    *unnamed* registerOp() call under src/ is always flagged — an
 *    anonymous op has no handle either requirement could key on.
 *
 * The engine operates on in-memory sources so tests can drill it with
 * synthetic inputs (tests/test_pra_lint.cpp); tools/pra_lint.cpp feeds
 * it the real tree.
 */
#ifndef PRA_ANALYSIS_LINT_H
#define PRA_ANALYSIS_LINT_H

#include <string>
#include <vector>

namespace pra::analysis {

/** One source file handed to the linter. */
struct SourceFile
{
    std::string path;  //!< Repo-relative path (rule scoping keys on it).
    std::string text;
};

/** One lint finding. */
struct LintIssue
{
    std::string file;
    unsigned line = 0;   //!< 1-based; 0 for whole-file findings.
    std::string rule;    //!< entropy, unordered-iteration, ...
    std::string message;

    std::string format() const;
};

/** Run every rule over @p files; empty result == clean. */
std::vector<LintIssue> lintSources(const std::vector<SourceFile> &files);

// --- Parsing helpers (exposed for the lint's own tests) -----------------

/**
 * Names of the data members of struct/class @p struct_name declared in
 * @p text (brace-depth-1 declarations only; member functions and
 * comments are skipped).
 */
std::vector<std::string> structFields(const std::string &text,
                                      const std::string &struct_name);

/**
 * Body (between the outermost braces) of the function named
 * @p function_name in @p text; empty when not found.
 */
std::string functionBody(const std::string &text,
                         const std::string &function_name);

/** True when @p identifier occurs word-bounded in @p text. */
bool containsIdentifier(const std::string &text,
                        const std::string &identifier);

/**
 * Enumerator names of `enum [class] EnumName` declared in @p text, in
 * declaration order; initializer expressions and comments are skipped.
 */
std::vector<std::string> enumMembers(const std::string &text,
                                     const std::string &enum_name);

} // namespace pra::analysis

#endif // PRA_ANALYSIS_LINT_H
