/**
 * @file
 * Replayable DRAM command scripts.
 *
 * A command script is the serialized form of one explored command path:
 * every ACT/RD/WR/PRE/REF the model checker (or a hand-written
 * regression case) issued, with enough annotation to re-validate the
 * path from scratch — the activation's issued open mask next to the
 * scheme-derived mask it *should* have opened, and each column
 * command's request footprint. Replaying a script feeds the commands to
 * a fresh TimingChecker and an independent open-mask shadow, so a
 * counterexample found by exploration becomes a permanent, self-checking
 * regression artifact (tests/test_modelcheck_regressions.cpp).
 *
 * Text format (one command per line, '#' starts a comment):
 *
 *   ACT <cycle> <rank> <bank> <row> partial=<0|1> weight=<float>
 *       mask=<hex> expect=<hex>
 *   RD  <cycle> <rank> <bank> <row> burst=<n> need=<hex>
 *   WR  <cycle> <rank> <bank> <row> burst=<n> need=<hex>
 *   PRE <cycle> <rank> <bank>
 *   REF <cycle> <rank>
 *   RFM <cycle> <rank> <bank> <row>
 *
 * An RFM line names the victim (bank, row) the mitigation cleared;
 * replay resets that row's disturbance count in the spec shadow. Under
 * a PRAC-enabled config the replay also counts every ACT per row and
 * reports a violation when a count reaches the disturbance threshold
 * with no intervening RFM.
 */
#ifndef PRA_ANALYSIS_COMMAND_SCRIPT_H
#define PRA_ANALYSIS_COMMAND_SCRIPT_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/checker.h"
#include "dram/config.h"

namespace pra::analysis {

/** One serialized DRAM command with its validation annotations. */
struct ScriptCommand
{
    dram::CheckedCommand::Kind kind = dram::CheckedCommand::Kind::Activate;
    Cycle cycle = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint32_t row = 0;
    bool partial = false;        //!< ACT: PRA mask delivery cycle spent.
    double weight = 1.0;         //!< ACT: tFAW/tRRD charge.
    unsigned burst = 0;          //!< RD/WR: data-bus occupancy.
    std::uint8_t mask = 0xff;    //!< ACT: MAT groups actually opened.
    std::uint8_t expect = 0xff;  //!< ACT: scheme-derived expected mask.
    std::uint8_t need = 0xff;    //!< RD/WR: request word footprint.

    /** The checker-facing view of this command. */
    dram::CheckedCommand checked() const;
};

/** A replayable command path plus its provenance metadata. */
struct CommandScript
{
    std::vector<ScriptCommand> commands;
    std::string scheduler = "frfcfs";  //!< Policy the path was found under.
    std::string fault = "none";        //!< Fault hook active when found.
    /**
     * Registered scheme the path was explored under. Serialized only
     * when it differs from the model default ("pra"), so every script
     * distilled before schemes became pluggable round-trips
     * byte-identically.
     */
    std::string scheme = "pra";

    /** Render as the text format above (parse() round-trips it). */
    std::string serialize() const;

    /**
     * Parse the text format. Returns false and sets @p error on the
     * first malformed line; metadata lines are optional.
     */
    static bool parse(const std::string &text, CommandScript &out,
                      std::string &error);
};

/**
 * Replay @p script against a fresh TimingChecker built from @p cfg plus
 * an independent per-bank open-mask shadow, returning every violation:
 * all timing-rule breaches, ACT masks that differ from their
 * scheme-derived expectation, and column accesses outside the open
 * (possibly partial) row mask. Empty result == clean path.
 */
std::vector<std::string> replayScript(const CommandScript &script,
                                      const dram::DramConfig &cfg);

/**
 * Delta-debug @p script down to a minimal reproducer: greedily drop
 * single commands (to a fixpoint) while replayScript() still reports
 * the original script's first violation. Scripts that replay clean —
 * liveness counterexamples are violations of the *exploration*, not of
 * the replayed command stream — are returned unchanged.
 */
CommandScript shrinkScript(const CommandScript &script,
                           const dram::DramConfig &cfg);

} // namespace pra::analysis

#endif // PRA_ANALYSIS_COMMAND_SCRIPT_H
