#include "analysis/command_script.h"

#include <cstdio>
#include <sstream>

#include "common/bitmask.h"

namespace pra::analysis {

namespace {

using dram::CheckedCommand;

const char *
kindName(CheckedCommand::Kind k)
{
    switch (k) {
      case CheckedCommand::Kind::Activate: return "ACT";
      case CheckedCommand::Kind::Read: return "RD";
      case CheckedCommand::Kind::Write: return "WR";
      case CheckedCommand::Kind::Precharge: return "PRE";
      case CheckedCommand::Kind::Refresh: return "REF";
      case CheckedCommand::Kind::Rfm: return "RFM";
    }
    return "?";
}

/** Parse "key=value"; returns false when the key does not match. */
bool
keyValue(const std::string &tok, const char *key, std::string &value)
{
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0)
        return false;
    value = tok.substr(prefix.size());
    return true;
}

bool
parseHex8(const std::string &s, std::uint8_t &out)
{
    unsigned v = 0;
    if (std::sscanf(s.c_str(), "%x", &v) != 1 || v > 0xff)
        return false;
    out = static_cast<std::uint8_t>(v);
    return true;
}

} // namespace

dram::CheckedCommand
ScriptCommand::checked() const
{
    return {kind, cycle, rank, bank, row, partial, weight, burst};
}

std::string
CommandScript::serialize() const
{
    std::ostringstream os;
    os << "# pra-modelcheck command script v1\n";
    os << "# scheduler=" << scheduler << " fault=" << fault;
    // Serialization-compat default, not dispatch. pra-lint: scheme-ok
    if (scheme != "pra")
        os << " scheme=" << scheme;
    os << "\n";
    for (const ScriptCommand &c : commands) {
        os << kindName(c.kind) << " " << c.cycle << " " << c.rank;
        switch (c.kind) {
          case CheckedCommand::Kind::Activate: {
            char buf[64];
            std::snprintf(buf, sizeof buf,
                          " partial=%u weight=%.17g mask=%02x expect=%02x",
                          c.partial ? 1u : 0u, c.weight, c.mask, c.expect);
            os << " " << c.bank << " " << c.row << buf;
            break;
          }
          case CheckedCommand::Kind::Read:
          case CheckedCommand::Kind::Write: {
            char buf[32];
            std::snprintf(buf, sizeof buf, " burst=%u need=%02x", c.burst,
                          c.need);
            os << " " << c.bank << " " << c.row << buf;
            break;
          }
          case CheckedCommand::Kind::Precharge:
            os << " " << c.bank;
            break;
          case CheckedCommand::Kind::Refresh:
            break;
          case CheckedCommand::Kind::Rfm:
            os << " " << c.bank << " " << c.row;   // Victim entry.
            break;
        }
        os << "\n";
    }
    return os.str();
}

bool
CommandScript::parse(const std::string &text, CommandScript &out,
                     std::string &error)
{
    out = CommandScript{};
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Metadata is carried in a comment so the format stays trivially
        // line-oriented; recover it when present.
        if (line.rfind("# scheduler=", 0) == 0) {
            std::istringstream ls(line.substr(2));
            std::string tok, value;
            while (ls >> tok) {
                if (keyValue(tok, "scheduler", value))
                    out.scheduler = value;
                else if (keyValue(tok, "fault", value))
                    out.fault = value;
                else if (keyValue(tok, "scheme", value))
                    out.scheme = value;
            }
            continue;
        }
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string op;
        if (!(ls >> op))
            continue;   // Blank line.

        ScriptCommand cmd;
        auto fail = [&](const char *why) {
            error = "line " + std::to_string(lineno) + ": " + why;
            return false;
        };
        if (op == "ACT")
            cmd.kind = CheckedCommand::Kind::Activate;
        else if (op == "RD")
            cmd.kind = CheckedCommand::Kind::Read;
        else if (op == "WR")
            cmd.kind = CheckedCommand::Kind::Write;
        else if (op == "PRE")
            cmd.kind = CheckedCommand::Kind::Precharge;
        else if (op == "REF")
            cmd.kind = CheckedCommand::Kind::Refresh;
        else if (op == "RFM")
            cmd.kind = CheckedCommand::Kind::Rfm;
        else
            return fail("unknown command");

        if (!(ls >> cmd.cycle >> cmd.rank))
            return fail("missing cycle/rank");
        if (cmd.kind != CheckedCommand::Kind::Refresh && !(ls >> cmd.bank))
            return fail("missing bank");
        if (cmd.kind == CheckedCommand::Kind::Activate ||
            cmd.kind == CheckedCommand::Kind::Read ||
            cmd.kind == CheckedCommand::Kind::Write ||
            cmd.kind == CheckedCommand::Kind::Rfm) {
            if (!(ls >> cmd.row))
                return fail("missing row");
        }
        std::string tok, value;
        while (ls >> tok) {
            if (keyValue(tok, "partial", value))
                cmd.partial = value == "1";
            else if (keyValue(tok, "weight", value))
                cmd.weight = std::stod(value);
            else if (keyValue(tok, "burst", value))
                cmd.burst = static_cast<unsigned>(std::stoul(value));
            else if (keyValue(tok, "mask", value)) {
                if (!parseHex8(value, cmd.mask))
                    return fail("bad mask");
            } else if (keyValue(tok, "expect", value)) {
                if (!parseHex8(value, cmd.expect))
                    return fail("bad expect");
            } else if (keyValue(tok, "need", value)) {
                if (!parseHex8(value, cmd.need))
                    return fail("bad need");
            } else {
                return fail("unknown attribute");
            }
        }
        out.commands.push_back(cmd);
    }
    return true;
}

std::vector<std::string>
replayScript(const CommandScript &script, const dram::DramConfig &cfg)
{
    dram::TimingChecker checker(cfg);
    // Independent open-mask shadow: the TimingChecker validates command
    // spacing, this validates the PRA mask algebra on top of it.
    std::vector<WordMask> shadow(cfg.ranksPerChannel * cfg.banksPerRank,
                                 WordMask::none());
    auto at = [&](const ScriptCommand &c) -> WordMask & {
        return shadow[c.rank * cfg.banksPerRank + c.bank];
    };

    std::vector<std::string> violations;
    auto fail = [&](const ScriptCommand &c, const std::string &why) {
        violations.push_back("cycle " + std::to_string(c.cycle) + " rank " +
                             std::to_string(c.rank) + " bank " +
                             std::to_string(c.bank) + ": " + why);
    };
    auto hex = [](std::uint8_t v) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "0x%02x", v);
        return std::string(buf);
    };

    // Disturbance spec shadow (PRAC configs): every ACT counts against
    // its row; an RFM line resets its named victim. Reaching the
    // configured threshold with no intervening mitigation is the
    // disturbance-safety violation the model checker explores for.
    std::vector<std::uint32_t> actCounts;
    if (cfg.pracEnabled) {
        actCounts.assign(static_cast<std::size_t>(cfg.ranksPerChannel) *
                             cfg.banksPerRank * cfg.rowsPerBank,
                         0);
    }
    auto countAt = [&](const ScriptCommand &c) -> std::uint32_t & {
        return actCounts[(static_cast<std::size_t>(c.rank) *
                              cfg.banksPerRank +
                          c.bank) *
                             cfg.rowsPerBank +
                         c.row];
    };

    for (const ScriptCommand &c : script.commands) {
        if (c.rank >= cfg.ranksPerChannel || c.bank >= cfg.banksPerRank) {
            fail(c, "rank/bank outside configured geometry");
            continue;
        }
        checker.observe(c.checked());
        switch (c.kind) {
          case CheckedCommand::Kind::Activate:
            if (c.mask != c.expect) {
                fail(c, "ACT opens mask " + hex(c.mask) +
                            " but the scheme-derived mask is " +
                            hex(c.expect));
            }
            at(c) = WordMask{c.mask};
            if (cfg.pracEnabled && c.row < cfg.rowsPerBank &&
                ++countAt(c) >= cfg.disturbanceThreshold) {
                fail(c, "row " + std::to_string(c.row) +
                            " activation count reached the disturbance "
                            "threshold " +
                            std::to_string(cfg.disturbanceThreshold) +
                            " without mitigation");
            }
            break;
          case CheckedCommand::Kind::Read:
            // Reads consume the full row (PRA's asymmetric design point)
            // unless the scheme activates read sectors too; then the
            // within-open-mask check below is the whole invariant.
            if (!cfg.scheme->partialReads() && !at(c).isFull())
                fail(c, "READ from a partially open row (mask " +
                            hex(at(c).bits()) + ")");
            [[fallthrough]];
          case CheckedCommand::Kind::Write:
            if (!at(c).covers(WordMask{c.need})) {
                fail(c, "column access needs " + hex(c.need) +
                            " outside open mask " + hex(at(c).bits()));
            }
            break;
          case CheckedCommand::Kind::Precharge:
            at(c) = WordMask::none();
            break;
          case CheckedCommand::Kind::Refresh:
            break;
          case CheckedCommand::Kind::Rfm:
            if (cfg.pracEnabled && c.row < cfg.rowsPerBank)
                countAt(c) = 0;
            break;
        }
    }
    for (const std::string &v : checker.violations())
        violations.push_back(v);
    return violations;
}

CommandScript
shrinkScript(const CommandScript &script, const dram::DramConfig &cfg)
{
    const auto base = replayScript(script, cfg);
    if (base.empty())
        return script;
    // The reproduction target is the script's first violation: dropping
    // a command may only stand if the exact same message survives (a
    // removal that merely provokes a *different* breach is not a
    // smaller witness of this one).
    const std::string &target = base.front();
    auto reproduces = [&](const CommandScript &trial) {
        for (const std::string &v : replayScript(trial, cfg)) {
            if (v == target)
                return true;
        }
        return false;
    };

    CommandScript current = script;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (std::size_t i = 0; i < current.commands.size(); ++i) {
            CommandScript trial = current;
            trial.commands.erase(
                trial.commands.begin() + static_cast<std::ptrdiff_t>(i));
            if (reproduces(trial)) {
                current = std::move(trial);
                progressed = true;
                --i;   // Re-test the command that slid into slot i.
            }
        }
    }
    return current;
}

} // namespace pra::analysis
