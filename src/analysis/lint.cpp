#include "analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>

#include "core/scheme.h"

namespace pra::analysis {

namespace {

// NOTE: the forbidden-pattern spellings below are assembled from split
// string literals so this file does not itself trip the entropy rule
// (or tools/check_determinism.sh) when scanned.

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const auto nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(pos));
            break;
        }
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

/**
 * Blank out // and block comments (newlines preserved, so line numbers
 * survive). String and char literal contents are kept: the entropy rule
 * must still see device-path literals.
 */
std::string
stripComments(const std::string &text)
{
    std::string out = text;
    enum class S { Code, Line, Block, Str, Chr } s = S::Code;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const char n = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (s) {
          case S::Code:
            if (c == '/' && n == '/') {
                s = S::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                s = S::Block;
                out[i] = ' ';
            } else if (c == '"') {
                s = S::Str;
            } else if (c == '\'' && !(i > 0 && identChar(out[i - 1]))) {
                // A quote straight after an identifier char is a digit
                // separator (120'000), not a char literal.
                s = S::Chr;
            }
            break;
          case S::Line:
            if (c == '\n')
                s = S::Code;
            else
                out[i] = ' ';
            break;
          case S::Block:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                s = S::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case S::Str:
            if (c == '\\')
                ++i;
            else if (c == '"')
                s = S::Code;
            break;
          case S::Chr:
            if (c == '\\')
                ++i;
            else if (c == '\'')
                s = S::Code;
            break;
        }
    }
    return out;
}

bool
wordBoundedAt(const std::string &text, std::size_t pos, std::size_t len)
{
    if (pos > 0 && identChar(text[pos - 1]))
        return false;
    const std::size_t end = pos + len;
    return end >= text.size() || !identChar(text[end]);
}

std::size_t
findIdentifier(const std::string &text, const std::string &ident,
               std::size_t from = 0)
{
    for (std::size_t pos = text.find(ident, from); pos != std::string::npos;
         pos = text.find(ident, pos + 1)) {
        if (wordBoundedAt(text, pos, ident.size()))
            return pos;
    }
    return std::string::npos;
}

/** One data-member declaration with its 1-based source line. */
struct FieldDecl
{
    std::string name;
    unsigned line = 0;
};

bool
startsWithKeyword(const std::string &stmt)
{
    static const char *const kSkip[] = {
        "public", "private", "protected", "using",  "typedef",
        "static", "friend",  "enum",      "struct", "class",
        "template",
    };
    for (const char *kw : kSkip) {
        const std::size_t n = std::string(kw).size();
        if (stmt.compare(0, n, kw) == 0 &&
            (stmt.size() == n || !identChar(stmt[n])))
            return true;
    }
    return false;
}

/** Last whitespace-separated token of @p stmt, stripped of ref/ptr. */
std::string
lastToken(const std::string &stmt)
{
    std::size_t end = stmt.find_last_not_of(" \t");
    if (end == std::string::npos)
        return {};
    std::size_t begin = end;
    while (begin > 0 && !std::isspace(static_cast<unsigned char>(
                            stmt[begin - 1])))
        --begin;
    std::string tok = stmt.substr(begin, end - begin + 1);
    while (!tok.empty() && (tok.front() == '&' || tok.front() == '*'))
        tok.erase(tok.begin());
    return tok;
}

bool
validIdentifier(const std::string &tok)
{
    if (tok.empty() || std::isdigit(static_cast<unsigned char>(tok[0])))
        return false;
    return std::all_of(tok.begin(), tok.end(), identChar);
}

std::vector<FieldDecl>
structFieldDecls(const std::string &text, const std::string &struct_name)
{
    const std::string stripped = stripComments(text);
    std::vector<FieldDecl> fields;

    // Locate `struct Name ... {` (skipping forward declarations).
    std::size_t open = std::string::npos;
    for (std::size_t pos = findIdentifier(stripped, struct_name);
         pos != std::string::npos;
         pos = findIdentifier(stripped, struct_name, pos + 1)) {
        const auto stop = stripped.find_first_of(";{", pos);
        if (stop != std::string::npos && stripped[stop] == '{') {
            open = stop;
            break;
        }
    }
    if (open == std::string::npos)
        return fields;

    unsigned line = 1 + static_cast<unsigned>(
                        std::count(stripped.begin(),
                                   stripped.begin() +
                                       static_cast<std::ptrdiff_t>(open),
                                   '\n'));
    // Accumulate depth-1 statements; `{...}` groups are elided (they are
    // either member-function bodies — discarded, the statement had a '('
    // — or brace initializers, which the name precedes anyway).
    std::string stmt;
    unsigned stmtLine = 0;
    auto flush = [&]() {
        if (!stmt.empty() && stmt.find('(') == std::string::npos &&
            !startsWithKeyword(stmt)) {
            const auto cut = stmt.find_first_of("=[");
            std::string decl =
                cut == std::string::npos ? stmt : stmt.substr(0, cut);
            const std::string name = lastToken(decl);
            if (validIdentifier(name))
                fields.push_back({name, stmtLine});
        }
        stmt.clear();
        stmtLine = 0;
    };
    int depth = 1;
    bool pendingBody = false;   // Elided a brace group for this statement.
    for (std::size_t i = open + 1; i < stripped.size() && depth > 0; ++i) {
        const char c = stripped[i];
        if (c == '\n')
            ++line;
        if (depth > 1) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
            continue;
        }
        switch (c) {
          case '{':
            ++depth;
            pendingBody = true;
            break;
          case '}':
            depth = 0;   // Struct closed.
            break;
          case ';':
            flush();
            pendingBody = false;
            break;
          default:
            if (pendingBody && !std::isspace(static_cast<unsigned char>(c))) {
                // Text after a brace group without an intervening ';'
                // means the group was a function body; the statement so
                // far was its signature.
                stmt.clear();
                stmtLine = 0;
                pendingBody = false;
            }
            if (!std::isspace(static_cast<unsigned char>(c)) &&
                stmtLine == 0)
                stmtLine = line;
            if (!pendingBody)
                stmt += c;
            break;
        }
    }
    return fields;
}

/** Enumerator declarations of `enum [class] Name` with source lines. */
std::vector<FieldDecl>
enumMemberDecls(const std::string &text, const std::string &enum_name)
{
    const std::string stripped = stripComments(text);
    std::vector<FieldDecl> members;

    // Locate the definition: the name, preceded by the `enum` keyword
    // (directly or through `class`/`struct`), followed by `{` (possibly
    // through an underlying-type clause). Forward declarations end in
    // ';' and are skipped.
    std::size_t open = std::string::npos;
    for (std::size_t pos = findIdentifier(stripped, enum_name);
         pos != std::string::npos;
         pos = findIdentifier(stripped, enum_name, pos + 1)) {
        const std::size_t window = pos > 24 ? pos - 24 : 0;
        const std::string before = stripped.substr(window, pos - window);
        if (findIdentifier(before, "enum") == std::string::npos)
            continue;
        const auto stop = stripped.find_first_of(";{", pos);
        if (stop != std::string::npos && stripped[stop] == '{') {
            open = stop;
            break;
        }
    }
    if (open == std::string::npos)
        return members;

    unsigned line = 1 + static_cast<unsigned>(
                        std::count(stripped.begin(),
                                   stripped.begin() +
                                       static_cast<std::ptrdiff_t>(open),
                                   '\n'));
    bool expectName = true;
    for (std::size_t i = open + 1; i < stripped.size(); ++i) {
        const char c = stripped[i];
        if (c == '\n') {
            ++line;
            continue;
        }
        if (c == '}')
            break;
        if (c == ',') {
            expectName = true;
            continue;
        }
        if (expectName && identChar(c)) {
            std::string name;
            while (i < stripped.size() && identChar(stripped[i]))
                name += stripped[i++];
            --i;
            if (validIdentifier(name))
                members.push_back({name, line});
            // Anything until the next ',' (an `= expr` initializer)
            // belongs to this enumerator.
            expectName = false;
        }
    }
    return members;
}

// --- Rule: entropy ------------------------------------------------------

const std::string kCallPatterns[] = {
    // Split literals: see NOTE at the top of this namespace.
    "ra" "nd",    "sra" "nd",        "rand" "_r",
    "rand" "om",  "drand" "48",      "ti" "me",
    "gettime" "ofday",  "clock_get" "time",  "clo" "ck",
};

const std::string kBareIdentifiers[] = {
    "random" "_device",
    "system" "_clock",
    "steady" "_clock",
    "high_resolution" "_clock",
    "get" "entropy",
};

const std::string kLiteralNeedles[] = {
    "/dev/u" "random",
    "/dev/" "random",
};

void
lintEntropy(const SourceFile &f, const std::vector<std::string> &lines,
            std::vector<LintIssue> &issues)
{
    // Scoped to src/: tests/ files enter the scan only as the
    // fault-coverage reference corpus and legitimately spell forbidden
    // patterns inside drill inputs.
    if (f.path.find("src/") == std::string::npos)
        return;
    if (f.path.size() >= 12 &&
        f.path.compare(f.path.size() - 12, 12, "common/rng.h") == 0)
        return;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        auto report = [&](const std::string &what) {
            issues.push_back({f.path, static_cast<unsigned>(li + 1),
                              "entropy",
                              what + " — all randomness must flow through "
                                     "common/rng.h and all time must be "
                                     "simulated Cycle time"});
        };
        for (const std::string &name : kCallPatterns) {
            for (std::size_t pos = line.find(name); pos != std::string::npos;
                 pos = line.find(name, pos + 1)) {
                if (!wordBoundedAt(line, pos, name.size()))
                    continue;
                if (pos > 0 && line[pos - 1] == '.')
                    continue;   // Member call on an unrelated object.
                std::size_t after = pos + name.size();
                while (after < line.size() && line[after] == ' ')
                    ++after;
                if (after < line.size() && line[after] == '(') {
                    report("call to " + name + "()");
                    break;
                }
            }
        }
        for (const std::string &name : kBareIdentifiers) {
            if (findIdentifier(line, name) != std::string::npos)
                report("use of " + name);
        }
        for (const std::string &needle : kLiteralNeedles) {
            if (line.find(needle) != std::string::npos) {
                report("use of " + needle);
                break;   // The urandom needle contains no random match,
                         // but report each line once.
            }
        }
    }
}

// --- Rule: unordered-iteration ------------------------------------------

bool
resultAffectingPath(const std::string &path)
{
    for (const char *dir : {"src/dram", "src/sim", "src/cache"}) {
        if (path.find(dir) != std::string::npos)
            return true;
    }
    return false;
}

/** Names of variables/members declared as unordered_{map,set} in @p text. */
std::vector<std::string>
unorderedNames(const std::string &text)
{
    std::vector<std::string> names;
    for (const char *kind : {"unordered_map", "unordered_set"}) {
        const std::string key = std::string(kind) + "<";
        for (std::size_t pos = text.find(key); pos != std::string::npos;
             pos = text.find(key, pos + key.size())) {
            // Match the template argument brackets.
            std::size_t i = pos + key.size();
            int depth = 1;
            while (i < text.size() && depth > 0) {
                if (text[i] == '<')
                    ++depth;
                else if (text[i] == '>')
                    --depth;
                ++i;
            }
            // Skip whitespace and ref/ptr to the declared name.
            while (i < text.size() &&
                   (std::isspace(static_cast<unsigned char>(text[i])) ||
                    text[i] == '&' || text[i] == '*'))
                ++i;
            std::string name;
            while (i < text.size() && identChar(text[i]))
                name += text[i++];
            if (validIdentifier(name) &&
                std::find(names.begin(), names.end(), name) == names.end())
                names.push_back(name);
        }
    }
    return names;
}

bool
suppressed(const std::vector<std::string> &raw, std::size_t li,
           const char *marker)
{
    for (std::size_t back = 0; back <= 1 && back <= li; ++back) {
        if (raw[li - back].find(marker) != std::string::npos)
            return true;
    }
    return false;
}

void
lintUnorderedIteration(const SourceFile &f,
                       const std::vector<std::string> &raw,
                       const std::vector<std::string> &stripped,
                       const std::vector<std::string> &names,
                       std::vector<LintIssue> &issues)
{
    if (!resultAffectingPath(f.path) || names.empty())
        return;

    for (std::size_t li = 0; li < stripped.size(); ++li) {
        const std::string &line = stripped[li];
        for (const std::string &n : names) {
            bool flagged = false;
            // Range-for over the container.
            for (std::size_t pos = findIdentifier(line, n);
                 pos != std::string::npos && !flagged;
                 pos = findIdentifier(line, n, pos + 1)) {
                std::size_t before = pos;
                while (before > 0 && line[before - 1] == ' ')
                    --before;
                if (before == 0 || line[before - 1] != ':' ||
                    (before >= 2 && line[before - 2] == ':'))
                    continue;   // Not `: name` (or it is `::name`).
                if (line.find("for") == std::string::npos)
                    continue;
                const std::size_t after = pos + n.size();
                if (after < line.size() &&
                    (line[after] == '.' || line[after] == '['))
                    continue;   // Element access: the range iterated is
                                // the mapped value, not the container.
                flagged = true;
            }
            // Explicit iterator walk.
            if (!flagged) {
                for (const char *m : {".begin", ".cbegin", ".rbegin"}) {
                    if (line.find(n + m) != std::string::npos) {
                        flagged = true;
                        break;
                    }
                }
            }
            if (flagged && !suppressed(raw, li, "pra-lint: unordered-ok")) {
                issues.push_back(
                    {f.path, static_cast<unsigned>(li + 1),
                     "unordered-iteration",
                     "iteration over unordered container '" + n +
                         "' in result-affecting code — hash order is not "
                         "deterministic across library versions; sort "
                         "keys first and annotate the loop with "
                         "`pra-lint: unordered-ok`, or use an ordered "
                         "container"});
            }
        }
    }
}

// --- Rule: timing-locality ----------------------------------------------

/**
 * True when @p path names an issue-path translation unit covered by the
 * timing-locality rule: the controller, the bank/rank FSM layers, the
 * bus arbiter, the maintenance engine, the wake-up heap, and every
 * scheduler policy. timing_tables.* (the table builder — the one place
 * allowed to read raw Timing fields) and checker.* (the independent
 * oracle, deliberately a second derivation) fall outside the scope by
 * construction: their stems are not in the list and they do not live
 * under src/dram/sched/.
 */
bool
timingLocalityScoped(const std::string &path)
{
    if (path.find("src/dram/") == std::string::npos)
        return false;
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = base.substr(dot + 1);
    if (ext != "h" && ext != "cpp")
        return false;
    if (path.find("src/dram/sched/") != std::string::npos)
        return true;
    const std::string stem = base.substr(0, dot);
    for (const char *s : {"controller", "bank", "bank_engine",
                          "bus_arbiter", "rank", "maintenance_engine",
                          "wakeup_heap"}) {
        if (stem == s)
            return true;
    }
    return false;
}

void
lintTimingLocality(const SourceFile &f, const std::vector<std::string> &raw,
                   const std::vector<std::string> &stripped,
                   std::vector<LintIssue> &issues)
{
    if (!timingLocalityScoped(f.path))
        return;
    for (std::size_t li = 0; li < stripped.size(); ++li) {
        const std::string &line = stripped[li];
        const bool hit =
            findIdentifier(line, "timing") != std::string::npos ||
            findIdentifier(line, "Timing") != std::string::npos;
        if (hit && !suppressed(raw, li, "pra-lint: timing-ok")) {
            issues.push_back(
                {f.path, static_cast<unsigned>(li + 1), "timing-locality",
                 "raw timing-parameter access in issue-path code — "
                 "hot-path legality must flow through the precomputed "
                 "command-pair gap tables (src/dram/timing_tables.h); add "
                 "the derived gap to the table builder instead, or "
                 "annotate a vetted cold-path site with "
                 "`pra-lint: timing-ok`"});
        }
    }
}

// --- Rule: scheme-locality ----------------------------------------------

/**
 * Scheme behaviour is owned by the SchemeModel plugins; only the
 * registry TU (src/core/scheme.{h,cpp}) may enumerate the scheme
 * world. Everything else under src/ is in scope.
 */
bool
schemeLocalityScoped(const std::string &path)
{
    if (path.find("src/") == std::string::npos)
        return false;
    return path.find("core/scheme.h") == std::string::npos &&
           path.find("core/scheme.cpp") == std::string::npos;
}

std::string
lowercased(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Registered scheme names/spellings, lowercased (computed once). */
const std::vector<std::string> &
registeredSchemeSpellings()
{
    static const std::vector<std::string> spellings = [] {
        std::vector<std::string> out;
        auto add = [&](const std::string &s) {
            const std::string low = lowercased(s);
            if (std::find(out.begin(), out.end(), low) == out.end())
                out.push_back(low);
        };
        for (const SchemeModel *s : pra::allSchemes()) {
            add(s->name());
            add(s->displayName());
            for (const std::string &a : s->aliases())
                add(a);
        }
        return out;
    }();
    return spellings;
}

/**
 * True when the string literal spanning [q1, q2] (quote positions) in
 * @p line sits beside an ==/!= comparison operator.
 */
bool
literalComparedAt(const std::string &line, std::size_t q1, std::size_t q2)
{
    std::size_t before = q1;
    while (before > 0 && line[before - 1] == ' ')
        --before;
    if (before >= 2 && line[before - 1] == '=' &&
        (line[before - 2] == '=' || line[before - 2] == '!'))
        return true;
    std::size_t after = q2 + 1;
    while (after < line.size() && line[after] == ' ')
        ++after;
    return after + 1 < line.size() &&
           (line[after] == '=' || line[after] == '!') &&
           line[after + 1] == '=';
}

void
lintSchemeLocality(const SourceFile &f, const std::vector<std::string> &raw,
                   const std::vector<std::string> &stripped,
                   std::vector<LintIssue> &issues)
{
    if (!schemeLocalityScoped(f.path))
        return;
    for (std::size_t li = 0; li < stripped.size(); ++li) {
        const std::string &line = stripped[li];
        auto report = [&](const std::string &what) {
            issues.push_back(
                {f.path, static_cast<unsigned>(li + 1), "scheme-locality",
                 what + " — scheme behaviour belongs to the SchemeModel "
                        "plugins (src/core/scheme.h); dispatch through "
                        "the interface (or select via findScheme/"
                        "schemeByName), or annotate a vetted site with "
                        "`pra-lint: scheme-ok`"});
        };
        if (suppressed(raw, li, "pra-lint: scheme-ok"))
            continue;
        // The legacy closed-enum idioms.
        for (std::size_t pos = findIdentifier(line, "Scheme");
             pos != std::string::npos;
             pos = findIdentifier(line, "Scheme", pos + 1)) {
            if (line.compare(pos + 6, 2, "::") == 0) {
                report("legacy `Scheme::` enum dispatch"); // pra-lint: scheme-ok
                break;
            }
        }
        if (findIdentifier(line, "SchemeTraits") != // pra-lint: scheme-ok
            std::string::npos)
            report("use of the retired SchemeTraits struct"); // pra-lint: scheme-ok
        // A registered scheme-name literal beside ==/!= is a by-name
        // switch on the closed scheme world.
        for (std::size_t q1 = line.find('"'); q1 != std::string::npos;
             q1 = line.find('"', q1 + 1)) {
            const std::size_t q2 = line.find('"', q1 + 1);
            if (q2 == std::string::npos)
                break;
            const std::string content =
                lowercased(line.substr(q1 + 1, q2 - q1 - 1));
            const auto &names = registeredSchemeSpellings();
            if (std::find(names.begin(), names.end(), content) !=
                    names.end() &&
                literalComparedAt(line, q1, q2)) {
                report("comparison against scheme-name literal \"" +
                       content + "\"");
            }
            q1 = q2;
        }
    }
}

// --- Rules: config-coverage / energy-coverage ---------------------------

const SourceFile *
findFile(const std::vector<SourceFile> &files, const std::string &suffix)
{
    for (const SourceFile &f : files) {
        if (f.path.size() >= suffix.size() &&
            f.path.compare(f.path.size() - suffix.size(), suffix.size(),
                           suffix) == 0)
            return &f;
    }
    return nullptr;
}

bool
fieldAnnotated(const std::vector<std::string> &raw, unsigned line,
               const char *marker)
{
    if (line == 0)
        return false;
    return suppressed(raw, line - 1, marker);   // Same line or one above.
}

void
lintConfigCoverage(const std::vector<SourceFile> &files,
                   std::vector<LintIssue> &issues)
{
    const SourceFile *io = findFile(files, "sim/config_io.cpp");
    if (!io)
        return;
    const std::string ioStripped = stripComments(io->text);
    const std::string canonical = functionBody(io->text, "canonicalConfig");
    // The handler region is everything outside canonicalConfig and
    // dumpConfig — those two mention every field themselves and would
    // mask a missing parse handler.
    std::string handlers = ioStripped;
    for (const char *fn : {"canonicalConfig", "dumpConfig"}) {
        const std::string body = functionBody(io->text, fn);
        if (body.empty())
            continue;
        const auto at = handlers.find(body);
        if (at != std::string::npos)
            handlers.replace(at, body.size(), std::string(body.size(), ' '));
    }

    struct Target
    {
        const char *suffix;
        const char *structName;
    };
    for (const Target &t : {Target{"dram/config.h", "DramConfig"},
                            Target{"sim/system.h", "SystemConfig"}}) {
        const SourceFile *hdr = findFile(files, t.suffix);
        if (!hdr)
            continue;
        const std::vector<std::string> raw = splitLines(hdr->text);
        for (const FieldDecl &fd : structFieldDecls(hdr->text,
                                                    t.structName)) {
            const bool observational =
                fieldAnnotated(raw, fd.line, "pra-lint: observational");
            if (!observational &&
                findIdentifier(canonical, fd.name) == std::string::npos) {
                issues.push_back(
                    {hdr->path, fd.line, "config-coverage",
                     std::string(t.structName) + "::" + fd.name +
                         " is missing from canonicalConfig() — two "
                         "configs differing only in this field would "
                         "share a sweep result-cache entry; add it to "
                         "the canonical key (or annotate the field "
                         "`pra-lint: observational` if it cannot affect "
                         "results)"});
            }
            if (findIdentifier(handlers, fd.name) == std::string::npos) {
                issues.push_back(
                    {hdr->path, fd.line, "config-coverage",
                     std::string(t.structName) + "::" + fd.name +
                         " has no applyConfigLine() handler — the field "
                         "cannot be set from a config file"});
            }
        }
    }
}

void
lintEnergyCoverage(const std::vector<SourceFile> &files,
                   std::vector<LintIssue> &issues)
{
    const SourceFile *hdr = findFile(files, "power/power_model.h");
    const SourceFile *model = findFile(files, "power/power_model.cpp");
    const SourceFile *auditor = findFile(files, "verify/auditor.cpp");
    if (!hdr || !model || !auditor)
        return;
    const std::string modelText = stripComments(model->text);
    const std::string auditorText = stripComments(auditor->text);
    for (const FieldDecl &fd : structFieldDecls(hdr->text, "EnergyCounts")) {
        if (findIdentifier(modelText, fd.name) == std::string::npos) {
            issues.push_back(
                {hdr->path, fd.line, "energy-coverage",
                 "EnergyCounts::" + fd.name +
                     " is not consumed by the PowerModel aggregation "
                     "(power_model.cpp) — its energy is silently dropped"});
        }
        if (findIdentifier(auditorText, fd.name) == std::string::npos) {
            issues.push_back(
                {hdr->path, fd.line, "energy-coverage",
                 "EnergyCounts::" + fd.name +
                     " is not covered by the auditor energy-conservation "
                     "check (auditor.cpp)"});
        }
    }
}

// --- Rule: fault-coverage -----------------------------------------------

/**
 * Every deliberate fault hook — analysis::Fault enum members and the
 * auditFault-/fault-prefixed DramConfig fields they arm — must be
 * referenced
 * from at least one file under tests/: an undrilled hook is a
 * model-checker property nothing proves can fire. The rule runs only
 * when the input actually contains tests/ files (a src-only scan has
 * no corpus to check against, not a coverage hole).
 */
void
lintFaultCoverage(const std::vector<SourceFile> &files,
                  std::vector<LintIssue> &issues)
{
    std::string corpus;
    for (const SourceFile &f : files) {
        if (f.path.find("tests/") == std::string::npos)
            continue;
        corpus += stripComments(f.text);
        corpus += '\n';
    }
    if (corpus.empty())
        return;

    auto require = [&](const SourceFile *hdr, const FieldDecl &fd,
                       const std::string &qualified) {
        if (findIdentifier(corpus, fd.name) != std::string::npos)
            return;
        issues.push_back(
            {hdr->path, fd.line, "fault-coverage",
             qualified + " is not referenced by any file under tests/ — "
                         "an undrilled fault hook is a model-checker "
                         "property nothing proves can fire; drill it in "
                         "tests/test_modelcheck_regressions.cpp"});
    };

    if (const SourceFile *mc = findFile(files, "analysis/model_checker.h")) {
        for (const FieldDecl &fd : enumMemberDecls(mc->text, "Fault"))
            require(mc, fd, "analysis::Fault::" + fd.name);
    }
    if (const SourceFile *cfg = findFile(files, "dram/config.h")) {
        for (const FieldDecl &fd : structFieldDecls(cfg->text,
                                                    "DramConfig")) {
            if (fd.name.rfind("auditFault", 0) == 0 ||
                fd.name.rfind("fault", 0) == 0)
                require(cfg, fd, "DramConfig::" + fd.name);
        }
    }
}

// --- Rule: maintop-coverage ---------------------------------------------

/**
 * Every named MaintenanceOp registered under src/ must be drilled from
 * tests/ and named in canonicalConfig() (it changes which commands
 * issue when); an unnamed registerOp() under src/ has no handle either
 * requirement could key on. Call sites are recognised by the member
 * access that precedes them (`x.registerOp(` / `x->registerOp(`), so
 * the seam's own declarations in maintenance_engine.h do not trip the
 * rule. The tests/ requirement is corpus-gated like fault-coverage.
 */
void
lintMaintopCoverage(const std::vector<SourceFile> &files,
                    std::vector<LintIssue> &issues)
{
    std::string corpus;
    for (const SourceFile &f : files) {
        if (f.path.find("tests/") == std::string::npos)
            continue;
        corpus += stripComments(f.text);
        corpus += '\n';
    }
    const SourceFile *io = findFile(files, "sim/config_io.cpp");
    const std::string canonical =
        io ? functionBody(io->text, "canonicalConfig") : std::string();

    for (const SourceFile &f : files) {
        if (f.path.rfind("src/", 0) != 0)
            continue;
        const std::string stripped = stripComments(f.text);
        const std::vector<std::string> raw = splitLines(f.text);
        for (std::size_t pos = findIdentifier(stripped, "registerOp");
             pos != std::string::npos;
             pos = findIdentifier(stripped, "registerOp", pos + 1)) {
            // A call site, not a declaration: the identifier follows a
            // member access.
            std::size_t before = pos;
            while (before > 0 && std::isspace(static_cast<unsigned char>(
                                     stripped[before - 1])))
                --before;
            if (before == 0 ||
                (stripped[before - 1] != '.' && stripped[before - 1] != '>'))
                continue;
            std::size_t i = pos + std::string("registerOp").size();
            while (i < stripped.size() &&
                   std::isspace(static_cast<unsigned char>(stripped[i])))
                ++i;
            if (i >= stripped.size() || stripped[i] != '(')
                continue;
            ++i;
            while (i < stripped.size() &&
                   std::isspace(static_cast<unsigned char>(stripped[i])))
                ++i;

            const unsigned line = static_cast<unsigned>(
                std::count(stripped.begin(),
                           stripped.begin() +
                               static_cast<std::ptrdiff_t>(pos),
                           '\n') +
                1);
            const bool observational =
                suppressed(raw, line - 1, "pra-lint: observational");

            if (i >= stripped.size() || stripped[i] != '"') {
                issues.push_back(
                    {f.path, line, "maintop-coverage",
                     "unnamed MaintenanceOp registration — an anonymous "
                     "op cannot be referenced from tests/ or the "
                     "canonical config key; use the named registerOp() "
                     "overload"});
                continue;
            }
            const std::size_t close = stripped.find('"', i + 1);
            if (close == std::string::npos)
                continue;
            const std::string name = stripped.substr(i + 1, close - i - 1);

            if (!corpus.empty() &&
                findIdentifier(corpus, name) == std::string::npos) {
                issues.push_back(
                    {f.path, line, "maintop-coverage",
                     "maintenance op \"" + name +
                         "\" is not referenced by any file under tests/ "
                         "— an undrilled op is scheduling behaviour "
                         "nothing exercises"});
            }
            if (!observational && io &&
                findIdentifier(canonical, name) == std::string::npos) {
                issues.push_back(
                    {f.path, line, "maintop-coverage",
                     "maintenance op \"" + name +
                         "\" does not appear in canonicalConfig() — two "
                         "configs differing only in this op's presence "
                         "would share a sweep result-cache entry; name "
                         "it in the canonical key (or annotate the "
                         "registration `pra-lint: observational` if it "
                         "cannot affect results)"});
            }
        }
    }
}

} // namespace

std::string
LintIssue::format() const
{
    std::string out = file;
    if (line > 0) {
        out += ':';
        out += std::to_string(line);
    }
    out += ": [";
    out += rule;
    out += "] ";
    out += message;
    return out;
}

std::vector<std::string>
structFields(const std::string &text, const std::string &struct_name)
{
    std::vector<std::string> names;
    for (const FieldDecl &fd : structFieldDecls(text, struct_name))
        names.push_back(fd.name);
    return names;
}

std::string
functionBody(const std::string &text, const std::string &function_name)
{
    const std::string stripped = stripComments(text);
    for (std::size_t pos = findIdentifier(stripped, function_name);
         pos != std::string::npos;
         pos = findIdentifier(stripped, function_name, pos + 1)) {
        std::size_t i = pos + function_name.size();
        while (i < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[i])))
            ++i;
        if (i >= stripped.size() || stripped[i] != '(')
            continue;
        int parens = 1;
        ++i;
        while (i < stripped.size() && parens > 0) {
            if (stripped[i] == '(')
                ++parens;
            else if (stripped[i] == ')')
                --parens;
            ++i;
        }
        const auto stop = stripped.find_first_of(";{", i);
        if (stop == std::string::npos || stripped[stop] == ';')
            continue;   // Declaration, not a definition.
        int depth = 1;
        std::size_t j = stop + 1;
        while (j < stripped.size() && depth > 0) {
            if (stripped[j] == '{')
                ++depth;
            else if (stripped[j] == '}')
                --depth;
            ++j;
        }
        return stripped.substr(stop + 1, j - stop - 2);
    }
    return {};
}

bool
containsIdentifier(const std::string &text, const std::string &identifier)
{
    return findIdentifier(text, identifier) != std::string::npos;
}

std::vector<LintIssue>
lintSources(const std::vector<SourceFile> &files)
{
    std::vector<LintIssue> issues;
    // Unordered-container names are pooled across the result-affecting
    // files: members are typically declared in a header and iterated in
    // the matching .cpp.
    std::vector<std::string> unordered;
    for (const SourceFile &f : files) {
        if (!resultAffectingPath(f.path))
            continue;
        for (const std::string &n : unorderedNames(stripComments(f.text))) {
            if (std::find(unordered.begin(), unordered.end(), n) ==
                unordered.end())
                unordered.push_back(n);
        }
    }
    for (const SourceFile &f : files) {
        const std::vector<std::string> raw = splitLines(f.text);
        const std::vector<std::string> stripped =
            splitLines(stripComments(f.text));
        lintEntropy(f, stripped, issues);
        lintUnorderedIteration(f, raw, stripped, unordered, issues);
        lintTimingLocality(f, raw, stripped, issues);
        lintSchemeLocality(f, raw, stripped, issues);
    }
    lintConfigCoverage(files, issues);
    lintEnergyCoverage(files, issues);
    lintFaultCoverage(files, issues);
    lintMaintopCoverage(files, issues);
    return issues;
}

std::vector<std::string>
enumMembers(const std::string &text, const std::string &enum_name)
{
    std::vector<std::string> names;
    for (const FieldDecl &fd : enumMemberDecls(text, enum_name))
        names.push_back(fd.name);
    return names;
}

} // namespace pra::analysis
