#include "analysis/model_checker.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "dram/bank_engine.h"
#include "dram/bus_arbiter.h"
#include "dram/checker.h"
#include "dram/maintenance_engine.h"
#include "dram/request.h"
#include "dram/sched/scheduler_policy.h"

namespace pra::analysis {

namespace {

using dram::BankEngine;
using dram::BusArbiter;
using dram::CheckedCommand;
using dram::DramConfig;
using dram::MaintenanceEngine;
using dram::Request;
using dram::TimingChecker;

/**
 * Timing-register deltas are saturated at this horizon when hashing
 * (see Bank::fingerprint). Anything further out than the default depth
 * budget cannot fire within one exploration, so states differing only
 * beyond it merge. Dedup is a pruning heuristic: merging never invents
 * a violation, it can only skip re-exploring an already-covered future.
 */
constexpr Cycle kFingerprintHorizon = 64;

/** All-ones sentinel: no pending deadline / never woken. */
constexpr Cycle kNever = ~Cycle{0};

/**
 * PRAC model knobs, armed for the PRAC fault drills (drop_count,
 * late_rfm) and whenever Options::disturbanceThreshold asks for a clean
 * PRAC exploration: a tiny threshold so the alert and both drills fire
 * within the default depth budget, a CAM deep enough that the hammer
 * rows never evict (eviction soundness is a unit-test concern), a short
 * tRFM, and a recovery window comfortably above the worst clean-path
 * drain (ModelCheckResult::maxRecoveryWait pins the headroom).
 */
constexpr unsigned kModelPracCam = 4;
constexpr Cycle kModelRecoveryWindow = 48;
constexpr unsigned kModelTrfm = 4;

void
armModelPrac(dram::DramConfig &cfg)
{
    cfg.pracEnabled = true;
    cfg.disturbanceThreshold = ModelChecker::kDefaultDisturbanceThreshold;
    cfg.pracCamEntries = kModelPracCam;
    cfg.pracRecoveryWindow = kModelRecoveryWindow;
    cfg.timing.tRfm = kModelTrfm;
    // Every column access re-activates its row (a true hammer): with
    // the default cap of 2 and only linesPerRow columns per row, no row
    // could reach threshold - 1 activations on any explored path and
    // the alert machinery would be vacuously clean.
    cfg.rowHitCap = 1;
}

/** Candidate-enumeration-only hooks: the explorer issues commands on
 *  its own copied state, so the engine's issue callbacks are unused. */
class NullHooks final : public dram::MaintenanceHooks
{
  public:
    void issuePrecharge(unsigned, unsigned, Cycle) override {}
    void issueAutoPrecharge(unsigned, unsigned, Cycle) override {}
    void issueRefresh(unsigned, Cycle) override {}
};

NullHooks g_nullHooks;

/** One fully copyable point of the explored product state space. */
struct ModelState
{
    Cycle now = 0;
    BankEngine banks;
    BusArbiter bus;
    std::deque<Request> readQ;
    std::deque<Request> writeQ;
    std::size_t nextArrival = 0;
    TimingChecker checker;
    /** Liveness bookkeeping: last cycle each rank was granted any
     *  command while owing queued work (kNever = no queued work). */
    std::vector<Cycle> rankOwed;
    /** PRAC implementation model (tag CAMs + alert), copied per state. */
    dram::PracState prac;
    /** Disturbance *spec* shadow, independent of the CAM: per
     *  (rank, bank, row) activations since the row was last mitigated.
     *  Empty with PRAC off. */
    std::vector<std::uint16_t> specCounts;

    ModelState(const DramConfig &cfg)
        : banks(cfg), bus(cfg), checker(cfg),
          rankOwed(cfg.ranksPerChannel, kNever), prac(cfg),
          specCounts(cfg.pracEnabled
                         ? static_cast<std::size_t>(cfg.ranksPerChannel) *
                               cfg.banksPerRank * cfg.rowsPerBank
                         : std::size_t{0},
                     0)
    {
    }
};

/** One enumerated legal command (or letting the cycle pass). */
struct Choice
{
    enum class Kind
    {
        Idle,
        Refresh,
        Precharge,
        Activate,
        Column,
        Rfm,
    };

    Kind kind = Kind::Idle;
    bool isWrite = false;   //!< Activate/Column: which queue.
    std::size_t index = 0;  //!< Activate/Column: queue position.
    unsigned rank = 0;      //!< Target rank (all command kinds).
    unsigned bank = 0;      //!< Target bank (Refresh: unused).
    std::uint32_t row = 0;  //!< Activate/Column target row.
    unsigned col = 0;       //!< Column target.
    bool partial = false;   //!< Activate: holds extra mask bus cycles.

    /**
     * Identity for sleep-set bookkeeping: a choice re-enumerated in a
     * successor state is "the same" choice when its command-level
     * target matches (queue indices shift as requests dequeue, so the
     * index is deliberately not part of the key).
     */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(kind) << 60) |
               (static_cast<std::uint64_t>(isWrite) << 56) |
               (static_cast<std::uint64_t>(rank) << 48) |
               (static_cast<std::uint64_t>(bank) << 40) |
               (static_cast<std::uint64_t>(row) << 8) | col;
    }
};

/**
 * Conservative commutation test for sleep-set pruning. Two command
 * choices are independent when issuing them in either order reaches
 * the same successor state and neither order disables the other:
 *
 *  - only Activate/Precharge/Column commute (Refresh, RFM and Idle
 *    restart or stall whole ranks, and a partial Activate holds the
 *    command bus for extra mask cycles, skewing every later issue
 *    cycle);
 *  - two Columns never commute (shared data bus, channel column gate,
 *    and the tWTR turnaround are order-sensitive);
 *  - same-bank pairs never commute (one bank FSM);
 *  - same-rank pairs with an Activate never commute (tRRD and the
 *    weighted tFAW window are rank-level registers).
 *
 * This is a bounded-commutation heuristic, not a proof; CI compares a
 * reduced and an unreduced run at equal depth and requires identical
 * findings (EXPERIMENTS.md pins the state-count ratio).
 */
bool
independentChoices(const Choice &a, const Choice &b)
{
    auto movable = [](const Choice &c) {
        return (c.kind == Choice::Kind::Activate && !c.partial) ||
               c.kind == Choice::Kind::Precharge ||
               c.kind == Choice::Kind::Column;
    };
    if (!movable(a) || !movable(b))
        return false;
    if (a.kind == Choice::Kind::Column && b.kind == Choice::Kind::Column)
        return false;
    if (a.rank == b.rank) {
        if (a.bank == b.bank)
            return false;
        if (a.kind == Choice::Kind::Activate ||
            b.kind == Choice::Kind::Activate)
            return false;
    }
    return true;
}

class Explorer
{
  public:
    Explorer(const ModelChecker::Options &opts)
        : opts_(opts), cfg_(ModelChecker::modelConfig(
                           opts.fault, opts.disturbanceThreshold)),
          workload_(ModelChecker::defaultWorkload())
    {
        cfg_.scheduler = opts.scheduler;
        // Scheme override: the model is checked against any registered
        // scheme plugin; the default stays the paper's PRA model.
        if (!opts_.scheme.empty())
            cfg_.scheme = &schemeByName(opts_.scheme);
        scheme_ = cfg_.scheme;
        // Degenerate-geometry overrides: fold the workload onto the
        // overridden shape and drop bank grouping when it no longer
        // divides the bank count (single-bank ranks, odd counts).
        if (opts.overrideRanks > 0)
            cfg_.ranksPerChannel = opts.overrideRanks;
        if (opts.overrideBanks > 0)
            cfg_.banksPerRank = opts.overrideBanks;
        if (opts.overrideBankGroups > 0)
            cfg_.timing.bankGroups = opts.overrideBankGroups;
        if (cfg_.timing.bankGroups > 1 &&
            (cfg_.banksPerRank < cfg_.timing.bankGroups ||
             cfg_.banksPerRank % cfg_.timing.bankGroups != 0)) {
            cfg_.timing.bankGroups = 1;
        }
        // PRAC exploration (armed by a PRAC fault or a disturbance-
        // threshold override) runs the hammer workload.
        if (cfg_.pracEnabled)
            workload_ = ModelChecker::pracWorkload();
        for (ModelRequest &m : workload_) {
            m.rank %= cfg_.ranksPerChannel;
            m.bank %= cfg_.banksPerRank;
        }
        sched_ = dram::makeSchedulerPolicy(cfg_);
    }

    ModelCheckResult run();

    bool livenessOn() const { return opts_.livenessBound > 0; }

  private:
    // --- Workload admission (mirrors MemoryController::enqueue) ----------

    WordMask
    needOf(const Request &req) const
    {
        if (!req.isWrite)
            return scheme_->readNeed(req.addr);
        return scheme_->writeNeed(req.mask, req.chipMask);
    }

    void
    enqueueArrivals(ModelState &s) const
    {
        while (s.nextArrival < workload_.size() &&
               workload_[s.nextArrival].arrival <= s.now) {
            const ModelRequest &m = workload_[s.nextArrival++];
            Request req;
            req.addr = syntheticAddr(m);
            req.isWrite = m.isWrite;
            req.mask = m.isWrite ? WordMask{m.mask} : WordMask::full();
            req.arrival = s.now;
            req.loc.channel = 0;
            req.loc.rank = m.rank;
            req.loc.bank = m.bank;
            req.loc.row = m.row;
            req.loc.col = m.col;
            if (req.isWrite) {
                // Write combining with a queued same-line write.
                bool combined = false;
                for (Request &w : s.writeQ) {
                    if (w.addr == req.addr) {
                        w.mask |= req.mask;
                        w.need = needOf(w);
                        w.probeEpoch = Request::kProbeInvalid;
                        combined = true;
                        break;
                    }
                }
                if (combined)
                    continue;
                req.need = needOf(req);
                s.writeQ.push_back(req);
                s.banks.onEnqueue(s.writeQ.back());
            } else {
                // Read forwarding: served from the write queue, never
                // reaches DRAM.
                bool forwarded = false;
                for (const Request &w : s.writeQ)
                    forwarded = forwarded || w.addr == req.addr;
                if (forwarded)
                    continue;
                req.need = needOf(req);
                s.readQ.push_back(req);
                s.banks.onEnqueue(s.readQ.back());
            }
        }
    }

    Addr
    syntheticAddr(const ModelRequest &m) const
    {
        const Addr lines =
            ((static_cast<Addr>(m.row) * cfg_.banksPerRank + m.bank) *
                 cfg_.ranksPerChannel +
             m.rank) *
                cfg_.linesPerRow +
            m.col;
        return lines * 64;
    }

    /** OR of queued same-row write masks (mergedWriteMask, uncached). */
    WordMask
    mergedWriteMask(const ModelState &s, const Request &req) const
    {
        WordMask merged = WordMask::none();
        for (const Request &w : s.writeQ) {
            if (!w.loc.sameRow(req.loc))
                continue;
            merged |= scheme_->writeMask(w.mask, w.chipMask);
            if (!cfg_.mergeWriteMasks)
                break;
        }
        return merged.empty() ? WordMask::full() : merged;
    }

    // --- Command application (mirrors the controller's issue paths) ------

    /** Spec-shadow slot for (rank, bank, row); PRAC configs only. */
    std::uint16_t &
    specCountAt(ModelState &s, unsigned r, unsigned b,
                std::uint32_t row) const
    {
        return s.specCounts[(static_cast<std::size_t>(r) *
                                 cfg_.banksPerRank +
                             b) *
                                cfg_.rowsPerBank +
                            row];
    }

    /** Feed @p cmd to the path checker; non-empty on a rule breach. */
    std::string
    observe(ModelState &s, const CheckedCommand &cmd)
    {
        s.checker.observe(cmd);
        if (!s.checker.clean())
            return s.checker.violations().front();
        return {};
    }

    std::string
    applyActivate(ModelState &s, bool is_write, std::size_t idx,
                  std::vector<ScriptCommand> &path)
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        Request &req = q[idx];
        dram::Rank &rank = s.banks.rank(req.loc.rank);
        dram::Bank &bank = rank.bank(req.loc.bank);

        const WordMask dirty =
            is_write ? mergedWriteMask(s, req)
            : req.fullRowFallback ? WordMask::full()
                                  : scheme_->readActMask(req.addr);
        unsigned gran = scheme_->actGranularity(is_write, dirty);
        WordMask open_mask = scheme_->actMask(is_write, dirty);
        const bool partial = scheme_->needsMaskCycle(is_write, dirty);
        if (partial && gran < cfg_.minActGranularity)
            gran = std::min(cfg_.minActGranularity, kMatGroups);
        const double weight = cfg_.weightedActWindow
                                  ? scheme_->actWeight(gran, cfg_.power)
                                  : 1.0;
        // The scheme-derived mask is the invariant; the fault hook (when
        // armed) widens the issued mask behind its back, exactly like the
        // controller's issueActivate does.
        const WordMask expected = open_mask;
        if (cfg_.auditFaultWidenAct != 0)
            open_mask |= WordMask{cfg_.auditFaultWidenAct};

        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Activate;
        sc.cycle = s.now;
        sc.rank = req.loc.rank;
        sc.bank = req.loc.bank;
        sc.row = req.loc.row;
        sc.partial = partial;
        sc.weight = weight;
        sc.mask = open_mask.bits();
        sc.expect = expected.bits();
        path.push_back(sc);

        std::string v = observe(s, sc.checked());
        if (v.empty() && open_mask != expected) {
            v = "cycle " + std::to_string(s.now) +
                ": ACT opens mask beyond the scheme-derived union of "
                "served dirty MAT groups";
        }
        bank.activate(s.now, req.loc.row, open_mask, partial);
        rank.recordActivation(s.now, weight);
        // The implementation model counts through the (possibly faulted)
        // PRAC state machine; the spec shadow counts *every* ACT. Their
        // divergence is exactly what the threshold property watches.
        if (cfg_.pracEnabled && req.loc.row < cfg_.rowsPerBank) {
            s.prac.onActivate(req.loc.rank, req.loc.bank, req.loc.row,
                              partial, s.now);
            std::uint16_t &cnt = specCountAt(s, req.loc.rank,
                                             req.loc.bank, req.loc.row);
            ++cnt;
            if (v.empty() && cnt >= cfg_.disturbanceThreshold) {
                v = "cycle " + std::to_string(s.now) + " rank " +
                    std::to_string(req.loc.rank) + " bank " +
                    std::to_string(req.loc.bank) + ": row " +
                    std::to_string(req.loc.row) +
                    " activation count reached the disturbance "
                    "threshold " +
                    std::to_string(cfg_.disturbanceThreshold) +
                    " without mitigation";
            }
        }
        s.bus.holdCmdBus(s.now,
                         partial ? cfg_.timing.praMaskCycles : 0u);
        s.banks.recountOpenRowMatches(req.loc.rank, req.loc.bank, s.readQ,
                                      s.writeQ);
        return v;
    }

    std::string
    applyColumn(ModelState &s, bool is_write, std::size_t idx,
                std::vector<ScriptCommand> &path)
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const Request req = q[idx];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));

        dram::Bank &bank = s.banks.bank(req.loc.rank, req.loc.bank);
        const unsigned burst = scheme_->columnBurstCycles(
            is_write,
            is_write ? scheme_->writeMask(req.mask, req.chipMask) : req.need,
            static_cast<unsigned>(cfg_.timing.burstCycles));
        const WordMask open_mask = bank.rowBuffer().openMask();

        ScriptCommand sc;
        sc.kind = is_write ? CheckedCommand::Kind::Write
                           : CheckedCommand::Kind::Read;
        sc.cycle = s.now;
        sc.rank = req.loc.rank;
        sc.bank = req.loc.bank;
        sc.row = req.loc.row;
        sc.burst = burst;
        sc.need = req.need.bits();
        path.push_back(sc);

        std::string v = observe(s, sc.checked());
        // PRA mask invariants, independent of the probe that admitted
        // the access: reads consume the full row, and any column access
        // must fall inside the open (possibly partial) mask.
        if (v.empty() && !is_write && !scheme_->partialReads() &&
            !open_mask.isFull()) {
            v = "cycle " + std::to_string(s.now) +
                ": READ served by a partially open row";
        }
        if (v.empty() && !open_mask.covers(req.need)) {
            v = "cycle " + std::to_string(s.now) +
                ": column access outside the open PRA mask";
        }

        s.bus.noteColumnIssued(req.loc.bank, s.now);
        s.bus.holdCmdBus(s.now);
        bank.recordHit();
        if (cfg_.policy == dram::PagePolicy::RestrictedClose)
            bank.setAutoPrecharge();
        if (is_write) {
            bank.write(s.now, burst);
            s.bus.reserveDataBus(s.now + cfg_.timing.wl, burst,
                                 req.loc.rank);
            s.bus.noteWriteIssued(s.now, burst);
        } else {
            bank.read(s.now, burst);
            s.bus.reserveDataBus(s.now + cfg_.timing.rl(), burst,
                                 req.loc.rank);
        }
        s.banks.onDequeue(req);
        return v;
    }

    std::string
    applyPrecharge(ModelState &s, unsigned r, unsigned b,
                   std::vector<ScriptCommand> &path, bool auto_pre)
    {
        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Precharge;
        sc.cycle = s.now;
        sc.rank = r;
        sc.bank = b;
        path.push_back(sc);

        const std::string v = observe(s, sc.checked());
        s.banks.bank(r, b).precharge(s.now);
        if (!auto_pre)
            s.bus.holdCmdBus(s.now);
        s.banks.onPrecharge(r, b);
        return v;
    }

    std::string
    applyRefresh(ModelState &s, unsigned r,
                 std::vector<ScriptCommand> &path)
    {
        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Refresh;
        sc.cycle = s.now;
        sc.rank = r;
        path.push_back(sc);

        const std::string v = observe(s, sc.checked());
        s.banks.rank(r).refresh(s.now);
        s.bus.holdCmdBus(s.now);
        return v;
    }

    /** Mirrors MemoryController::issueRfm: clear the hottest tracked
     *  entry, busy the rank for tRFM, and reset the victim's spec
     *  count — the mitigation the threshold property credits. */
    std::string
    applyRfm(ModelState &s, unsigned r, std::vector<ScriptCommand> &path)
    {
        const dram::PracMitigation mit = s.prac.applyRfm(r, s.now);
        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Rfm;
        sc.cycle = s.now;
        sc.rank = r;
        sc.bank = mit.bank;
        sc.row = mit.row;
        path.push_back(sc);

        const std::string v = observe(s, sc.checked());
        s.banks.rank(r).rfm(s.now);
        s.bus.holdCmdBus(s.now);
        if (cfg_.pracEnabled && mit.row < cfg_.rowsPerBank)
            specCountAt(s, r, mit.bank, mit.row) = 0;
        return v;
    }

    /** Retire every ready auto-precharge (forced, not a choice). */
    std::string
    applyAutoPrecharges(ModelState &s, std::vector<ScriptCommand> &path)
    {
        MaintenanceEngine maint(cfg_, s.banks, g_nullHooks);
        for (const auto &[r, b] : maint.autoPrechargeCandidates(s.now)) {
            const std::string v = applyPrecharge(s, r, b, path, true);
            if (!v.empty())
                return v;
        }
        return {};
    }

    /** Re-derive each rank's owed-service clock from queue occupancy. */
    void
    updateRankOwed(ModelState &s) const
    {
        if (!livenessOn())
            return;
        for (unsigned r = 0; r < cfg_.ranksPerChannel; ++r) {
            if (!s.banks.anyQueuedInRank(r))
                s.rankOwed[r] = kNever;
            else if (s.rankOwed[r] == kNever)
                s.rankOwed[r] = s.now;
        }
    }

    struct EdgeOutcome
    {
        std::string violation;
        /** Arrivals enqueued or auto-precharges retired on this edge
         *  (environment steps: inherited sleep sets must be dropped). */
        bool envChanged = false;
    };

    /**
     * Take @p c on @p s, then advance time and run the forced per-cycle
     * steps (arrivals, auto-precharge retirement). An Idle edge with
     * @p leap_to past now+1 jumps straight to that cycle — the caller
     * guarantees (via firstChangeAt() and the liveness deadlines) that
     * every skipped cycle offers no command, no arrival, no ready
     * auto-precharge, and crosses no progress deadline.
     */
    EdgeOutcome
    applyEdge(ModelState &s, const Choice &c,
              std::vector<ScriptCommand> &path, Cycle leap_to)
    {
        EdgeOutcome out;
        bool served = false;
        switch (c.kind) {
          case Choice::Kind::Idle:
            break;
          case Choice::Kind::Refresh:
            out.violation = applyRefresh(s, c.rank, path);
            served = true;
            break;
          case Choice::Kind::Precharge:
            out.violation = applyPrecharge(s, c.rank, c.bank, path, false);
            served = true;
            break;
          case Choice::Kind::Activate:
            out.violation = applyActivate(s, c.isWrite, c.index, path);
            served = true;
            break;
          case Choice::Kind::Column:
            out.violation = applyColumn(s, c.isWrite, c.index, path);
            served = true;
            break;
          case Choice::Kind::Rfm:
            out.violation = applyRfm(s, c.rank, path);
            served = true;
            break;
        }
        if (!out.violation.empty())
            return out;
        // Any command counts as the rank being granted service
        // (refresh included: it is the rank making forced progress).
        if (served && livenessOn())
            s.rankOwed[c.rank] = s.now;
        const std::size_t arrivals_before = s.nextArrival;
        const std::size_t path_before = path.size();
        if (c.kind == Choice::Kind::Idle && leap_to > s.now + 1)
            s.now = leap_to;
        else
            s.now += 1;
        enqueueArrivals(s);
        out.envChanged = s.nextArrival != arrivals_before;
        out.violation = applyAutoPrecharges(s, path);
        out.envChanged = out.envChanged || path.size() != path_before;
        updateRankOwed(s);
        return out;
    }

    // --- Liveness properties (bounded progress) ---------------------------

    /**
     * Check the bounded-progress properties at @p s: every queued
     * request younger than the liveness bound, refresh within its
     * slack past tREFI, and every rank owing queued work granted some
     * command within the bound. Also records the clean-run headroom
     * (max wait / max overrun) used to tune the default bounds.
     */
    std::string
    checkLiveness(const ModelState &s, ModelCheckResult &res) const
    {
        if (!livenessOn())
            return {};
        auto starved = [&](const Request &r) -> std::string {
            const Cycle wait = s.now - r.arrival;
            res.maxRequestWait = std::max(res.maxRequestWait, wait);
            if (wait <= opts_.livenessBound)
                return {};
            return "cycle " + std::to_string(s.now) + " rank " +
                   std::to_string(r.loc.rank) + " bank " +
                   std::to_string(r.loc.bank) +
                   ": request starved - queued " + std::to_string(wait) +
                   " cycles > liveness bound " +
                   std::to_string(opts_.livenessBound);
        };
        for (const Request &r : s.readQ) {
            const std::string v = starved(r);
            if (!v.empty())
                return v;
        }
        for (const Request &r : s.writeQ) {
            const std::string v = starved(r);
            if (!v.empty())
                return v;
        }
        for (unsigned r = 0; r < cfg_.ranksPerChannel; ++r) {
            const Cycle due = s.banks.rank(r).nextRefreshAt();
            if (s.now > due) {
                const Cycle over = s.now - due;
                res.maxRefreshOverrun =
                    std::max(res.maxRefreshOverrun, over);
                if (over > opts_.refreshSlack) {
                    return "cycle " + std::to_string(s.now) + " rank " +
                           std::to_string(r) +
                           ": refresh overran its tREFI deadline by " +
                           std::to_string(over) + " cycles > slack " +
                           std::to_string(opts_.refreshSlack);
                }
            }
            // Disturbance-safety recovery window (DESIGN.md §13):
            // under work conservation an outstanding Alert Back-Off
            // must see its RFM mitigation inside the window — the
            // late_rfm fault holds the mitigation back one full window
            // and must land here.
            if (cfg_.pracEnabled && s.prac.alertActive(r)) {
                const Cycle wait = s.now - s.prac.alertRaisedAt(r);
                res.maxRecoveryWait =
                    std::max(res.maxRecoveryWait, wait);
                if (wait > cfg_.pracRecoveryWindow) {
                    return "cycle " + std::to_string(s.now) + " rank " +
                           std::to_string(r) +
                           ": PRAC alert outstanding " +
                           std::to_string(wait) +
                           " cycles > recovery window " +
                           std::to_string(cfg_.pracRecoveryWindow) +
                           " - RFM mitigation missed its window";
                }
            }
            if (s.rankOwed[r] != kNever &&
                s.now - s.rankOwed[r] > opts_.livenessBound) {
                return "cycle " + std::to_string(s.now) + " rank " +
                       std::to_string(r) +
                       ": rank with queued work granted no command for " +
                       std::to_string(s.now - s.rankOwed[r]) +
                       " cycles > liveness bound " +
                       std::to_string(opts_.livenessBound);
            }
        }
        return {};
    }

    /**
     * Earliest cycle at which any bounded-progress property could flip
     * from holding to violated if no further command issues. Idle time
     * leaps never jump past it, so a violation is still detected at
     * the exact cycle it first occurs.
     */
    Cycle
    earliestDeadline(const ModelState &s) const
    {
        Cycle d = kNever;
        auto upd = [&](Cycle c) { d = std::min(d, c); };
        for (const Request &r : s.readQ)
            upd(r.arrival + opts_.livenessBound + 1);
        for (const Request &r : s.writeQ)
            upd(r.arrival + opts_.livenessBound + 1);
        for (unsigned r = 0; r < cfg_.ranksPerChannel; ++r) {
            upd(s.banks.rank(r).nextRefreshAt() + opts_.refreshSlack + 1);
            if (s.rankOwed[r] != kNever)
                upd(s.rankOwed[r] + opts_.livenessBound + 1);
            if (cfg_.pracEnabled && s.prac.alertActive(r)) {
                upd(s.prac.alertRaisedAt(r) + cfg_.pracRecoveryWindow +
                    1);
            }
        }
        return d;
    }

    Cycle
    nextArrivalCycle(const ModelState &s) const
    {
        return s.nextArrival < workload_.size()
                   ? workload_[s.nextArrival].arrival
                   : kNever;
    }

    // --- Choice enumeration (mirrors the controller's tick gates) --------

    void
    enumerateColumns(ModelState &s, bool is_write,
                     std::vector<Choice> &out,
                     std::set<Addr> &seen) const
    {
        if (!is_write && s.bus.readBlocked(s.now))
            return;
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const std::size_t window = sched_->columnWindow(q.size());
        for (std::size_t i = 0; i < window; ++i) {
            Request &req = q[i];
            // Mirror the controller's (faulted) aged-request skip: the
            // bounded-progress property, not the emulation, must flag
            // the starvation.
            if (cfg_.faultStarvesRequest(s.now, req.arrival))
                continue;
            const dram::Bank &bank =
                s.banks.bank(req.loc.rank, req.loc.bank);
            if (s.banks.probe(req) != RowProbe::Hit)
                continue;
            if (bank.autoPrechargePending())
                continue;
            if (cfg_.policy == dram::PagePolicy::RestrictedClose &&
                !req.classified) {
                continue;
            }
            const bool column_ok = is_write ? bank.canWrite(s.now)
                                            : bank.canRead(s.now);
            if (!column_ok)
                continue;
            if (!s.bus.columnGateOk(req.loc.bank, s.now))
                continue;
            const Cycle data_start =
                s.now +
                (is_write ? cfg_.timing.wl : cfg_.timing.rl());
            if (!s.bus.dataBusFree(data_start, req.loc.rank))
                continue;
            if (cfg_.policy == dram::PagePolicy::RelaxedClose &&
                bank.hitCount() >= cfg_.rowHitCap) {
                continue;
            }
            // Duplicate-address reads are interchangeable: issuing
            // either yields the same successor state.
            if (!seen.insert(req.addr).second)
                continue;
            Choice c;
            c.kind = Choice::Kind::Column;
            c.isWrite = is_write;
            c.index = i;
            c.rank = req.loc.rank;
            c.bank = req.loc.bank;
            c.row = req.loc.row;
            c.col = req.loc.col;
            out.push_back(c);
        }
    }

    void
    enumeratePrepares(ModelState &s, bool is_write,
                      std::vector<Choice> &out,
                      std::set<std::uint64_t> &actSeen,
                      std::set<std::pair<unsigned, unsigned>> &preSeen)
        const
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const std::size_t window = sched_->prepareWindow(q.size());
        for (std::size_t i = 0; i < window; ++i) {
            Request &req = q[i];
            // Same faulted aged-request skip as the column scan.
            if (cfg_.faultStarvesRequest(s.now, req.arrival))
                continue;
            const dram::Rank &rank = s.banks.rank(req.loc.rank);
            const dram::Bank &bank = rank.bank(req.loc.bank);
            const RowProbe probe = s.banks.probe(req);

            switch (probe) {
              case RowProbe::Closed: {
                if (rank.refreshDue(s.now) || rank.refreshing(s.now))
                    break;
                // Alert Back-Off: the rank drains toward its RFM; no
                // new activation may issue while the alert stands.
                if (cfg_.pracEnabled &&
                    s.prac.alertActive(req.loc.rank)) {
                    break;
                }
                if (!bank.canActivate(s.now))
                    break;
                const WordMask dirty =
                    is_write            ? mergedWriteMask(s, req)
                    : req.fullRowFallback ? WordMask::full()
                                          : scheme_->readActMask(req.addr);
                unsigned gran =
                    scheme_->actGranularity(is_write, dirty);
                if (scheme_->needsMaskCycle(is_write, dirty) &&
                    gran < cfg_.minActGranularity) {
                    gran = std::min(cfg_.minActGranularity, kMatGroups);
                }
                const double weight =
                    cfg_.weightedActWindow
                        ? scheme_->actWeight(gran, cfg_.power)
                        : 1.0;
                if (!rank.canActivate(s.now, weight))
                    break;
                // Two requests producing the same activation (same bank,
                // row and mask) yield identical successors.
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(req.loc.rank) << 48) |
                    (static_cast<std::uint64_t>(req.loc.bank) << 40) |
                    (static_cast<std::uint64_t>(req.loc.row) << 8) |
                    scheme_->actMask(is_write, dirty).bits();
                if (!actSeen.insert(key).second)
                    break;
                Choice c;
                c.kind = Choice::Kind::Activate;
                c.isWrite = is_write;
                c.index = i;
                c.rank = req.loc.rank;
                c.bank = req.loc.bank;
                c.row = req.loc.row;
                c.partial = scheme_->needsMaskCycle(is_write, dirty);
                out.push_back(c);
                break;
              }
              case RowProbe::Conflict:
              case RowProbe::FalseHit: {
                const bool still_useful =
                    probe == RowProbe::Conflict &&
                    cfg_.policy == dram::PagePolicy::RelaxedClose &&
                    s.banks.openRowMatches(req.loc.rank, req.loc.bank) >
                        0 &&
                    bank.hitCount() < cfg_.rowHitCap;
                if (!still_useful && bank.canPrecharge(s.now) &&
                    preSeen.insert({req.loc.rank, req.loc.bank})
                        .second) {
                    Choice c;
                    c.kind = Choice::Kind::Precharge;
                    c.rank = req.loc.rank;
                    c.bank = req.loc.bank;
                    out.push_back(c);
                }
                break;
              }
              case RowProbe::Hit:
                if (cfg_.policy == dram::PagePolicy::RelaxedClose &&
                    bank.hitCount() >= cfg_.rowHitCap &&
                    bank.canPrecharge(s.now) &&
                    preSeen.insert({req.loc.rank, req.loc.bank})
                        .second) {
                    Choice c;
                    c.kind = Choice::Kind::Precharge;
                    c.rank = req.loc.rank;
                    c.bank = req.loc.bank;
                    out.push_back(c);
                }
                break;
            }
        }
    }

    /**
     * Every command any policy could legally issue at @p s. Empty on a
     * quiet (or command-bus-busy) state: only then may a cycle pass
     * unused under work-conserving exploration.
     */
    void
    enumerateNonIdle(ModelState &s, std::vector<Choice> &out) const
    {
        if (s.bus.cmdBusBusy(s.now))
            return;   // The controller's early-out: nothing issues.

        MaintenanceEngine maint(cfg_, s.banks, g_nullHooks);
        maint.setPracState(&s.prac);
        for (unsigned r : maint.refreshCandidates(s.now)) {
            Choice c;
            c.kind = Choice::Kind::Refresh;
            c.rank = r;
            out.push_back(c);
        }
        for (unsigned r : maint.rfmCandidates(s.now)) {
            Choice c;
            c.kind = Choice::Kind::Rfm;
            c.rank = r;
            out.push_back(c);
        }

        std::set<Addr> colSeen;
        enumerateColumns(s, false, out, colSeen);
        enumerateColumns(s, true, out, colSeen);

        std::set<std::uint64_t> actSeen;
        std::set<std::pair<unsigned, unsigned>> preSeen;
        enumeratePrepares(s, false, out, actSeen, preSeen);
        enumeratePrepares(s, true, out, actSeen, preSeen);

        for (const auto &[r, b] : maint.closeCandidates(s.now)) {
            if (preSeen.insert({r, b}).second) {
                Choice c;
                c.kind = Choice::Kind::Precharge;
                c.rank = r;
                c.bank = b;
                out.push_back(c);
            }
        }
    }

    // --- Wakeup soundness (DESIGN.md §11.2 contract) ----------------------

    dram::SchedulerInputs
    inputsOf(const ModelState &s) const
    {
        dram::SchedulerInputs in;
        in.readQueueSize = s.readQ.size();
        in.writeQueueSize = s.writeQ.size();
        if (!s.readQ.empty())
            in.oldestReadArrival = s.readQ.front().arrival;
        if (!s.writeQ.empty())
            in.oldestWriteArrival = s.writeQ.front().arrival;
        return in;
    }

    /**
     * The wake bounds a quiet controller round's column scan would
     * note (MemoryController::tryColumnAccess, including the faulted
     * readBlockedUntil() and aged-request skips — the emulation must
     * see exactly what the faulted controller sees, so a suppressed
     * bound is missing here too and the soundness property fires).
     */
    template <typename Fn>
    void
    scanColumnBounds(ModelState &s, bool is_write, Fn &&consider) const
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        if (!is_write && s.bus.readBlocked(s.now)) {
            if (!q.empty())
                consider(s.bus.readBlockedUntil());
            return;
        }
        const std::size_t window = sched_->columnWindow(q.size());
        for (std::size_t i = 0; i < window; ++i) {
            Request &req = q[i];
            if (cfg_.faultStarvesRequest(s.now, req.arrival))
                continue;
            const dram::Bank &bank =
                s.banks.bank(req.loc.rank, req.loc.bank);
            if (s.banks.probe(req) != RowProbe::Hit)
                continue;
            if (bank.autoPrechargePending())
                continue;
            if (cfg_.policy == dram::PagePolicy::RestrictedClose &&
                !req.classified) {
                continue;
            }
            const bool column_ok = is_write ? bank.canWrite(s.now)
                                            : bank.canRead(s.now);
            if (!column_ok) {
                consider(bank.earliestColumnAccess());
                continue;
            }
            if (!s.bus.columnGateOk(req.loc.bank, s.now)) {
                consider(s.bus.columnGateFreeAt(req.loc.bank));
                continue;
            }
            const Cycle lat =
                is_write ? cfg_.timing.wl : cfg_.timing.rl();
            if (!s.bus.dataBusFree(s.now + lat, req.loc.rank)) {
                const Cycle free_at = s.bus.dataBusFreeAt(req.loc.rank);
                if (free_at > lat)
                    consider(free_at - lat);
                continue;
            }
            // Hit-cap rejection is state-gated: no retry bound, exactly
            // like the controller.
        }
    }

    /** Likewise for the prepare scan (MemoryController::tryPrepare). */
    template <typename Fn>
    void
    scanPrepareBounds(ModelState &s, bool is_write, Fn &&consider) const
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const std::size_t window = sched_->prepareWindow(q.size());
        for (std::size_t i = 0; i < window; ++i) {
            Request &req = q[i];
            if (cfg_.faultStarvesRequest(s.now, req.arrival))
                continue;
            const dram::Rank &rank = s.banks.rank(req.loc.rank);
            const dram::Bank &bank = rank.bank(req.loc.bank);
            switch (s.banks.probe(req)) {
              case RowProbe::Closed:
                if (rank.refreshDue(s.now) || rank.refreshing(s.now)) {
                    if (rank.refreshing(s.now))
                        consider(rank.refreshDoneAt());
                    break;
                }
                // ABO is state-gated for the ACT path; the prac_rfm
                // op's own bound (rfmWakeBound, considered by the
                // caller) publishes the wake.
                if (cfg_.pracEnabled &&
                    s.prac.alertActive(req.loc.rank)) {
                    break;
                }
                if (!bank.canActivate(s.now)) {
                    consider(bank.earliestActivate());
                    break;
                }
                // At a quiet state the rank-level gate must be what
                // blocks (else the ACT would have been enumerated).
                consider(rank.nextActAllowedAt());
                consider(rank.earliestActWindowExpiry());
                break;
              case RowProbe::Conflict:
              case RowProbe::FalseHit: {
                const bool still_useful =
                    s.banks.probe(req) == RowProbe::Conflict &&
                    cfg_.policy == dram::PagePolicy::RelaxedClose &&
                    s.banks.openRowMatches(req.loc.rank, req.loc.bank) >
                        0 &&
                    bank.hitCount() < cfg_.rowHitCap;
                if (!still_useful && !bank.canPrecharge(s.now))
                    consider(bank.earliestPrecharge());
                break;
              }
              case RowProbe::Hit:
                if (cfg_.policy == dram::PagePolicy::RelaxedClose &&
                    bank.hitCount() >= cfg_.rowHitCap &&
                    !bank.canPrecharge(s.now)) {
                    consider(bank.earliestPrecharge());
                }
                break;
            }
        }
    }

    /**
     * The wake bound the event engine would publish from a quiet round
     * at @p s: the minimum future cycle over the round's scan-noted
     * bounds, the scheduler's decision flip, and the maintenance
     * deadline bound, under the heap's stale-bound rule (candidates at
     * or before now are dropped — which is how faultSuppressWakeTwtr
     * loses the tWTR release).
     *
     * The emulation scans both queues' prepare bounds even though the
     * controller scans the secondary queue only when the primary is
     * empty: extra candidates can only lower the emulated bound, so it
     * under-approximates the real published bound. A soundness
     * violation flagged against it is therefore always a violation of
     * the real engine too (the converse may be missed).
     */
    Cycle
    publishedWakeBound(ModelState &s) const
    {
        Cycle best = kNever;
        auto consider = [&](Cycle c) {
            if (c > s.now && c != kNever && c < best)
                best = c;
        };
        if (s.bus.cmdBusBusy(s.now)) {
            consider(s.bus.cmdBusFreeAt());
        } else {
            scanColumnBounds(s, false, consider);
            scanColumnBounds(s, true, consider);
            scanPrepareBounds(s, false, consider);
            scanPrepareBounds(s, true, consider);
        }
        if (!s.readQ.empty() || !s.writeQ.empty())
            consider(sched_->nextDecisionChangeAt(inputsOf(s), s.now));
        MaintenanceEngine maint(cfg_, s.banks, g_nullHooks);
        maint.setPracState(&s.prac);
        consider(maint.nextWakeAt(s.now));
        if (cfg_.pracEnabled) {
            // The prac_rfm op's registered bound, under opWakeBound()'s
            // clamp rule (a bound at or before now wakes at now + 1).
            Cycle c = maint.rfmWakeBound(s.now);
            if (c != kNever && c <= s.now)
                c = s.now + 1;
            consider(c);
        }
        return best;
    }

    /**
     * Ground truth for the soundness check and the idle time leap:
     * freeze @p from and walk time forward until the enumerated
     * command set stops being empty or an auto-precharge becomes
     * ready; kNever if nothing changes before @p cap. Deliberately
     * independent of publishedWakeBound() — deriving one from the
     * other would let a wake-bound bug mask itself.
     */
    Cycle
    firstChangeAt(const ModelState &from, Cycle cap) const
    {
        ModelState probe = from;
        std::vector<Choice> cs;
        while (true) {
            probe.now += 1;
            if (probe.now >= cap)
                return kNever;
            {
                MaintenanceEngine maint(cfg_, probe.banks, g_nullHooks);
                if (!maint.autoPrechargeCandidates(probe.now).empty())
                    return probe.now;
            }
            cs.clear();
            enumerateNonIdle(probe, cs);
            if (!cs.empty())
                return probe.now;
        }
    }

    // --- Node preparation -------------------------------------------------

    struct Prepared
    {
        std::vector<Choice> choices;
        Cycle leapTo = 0;        //!< Forced-idle jump target (0 = none).
        std::string violation;   //!< Wakeup-soundness breach, if any.
    };

    /**
     * Enumerate @p s's choice set under work conservation and sleep
     * sets, and run the quiet-state obligations: the wakeup-soundness
     * check against the emulated published bound, and the idle
     * time-leap target (never past the next arrival, the exploration
     * depth, a liveness deadline, or the fingerprint horizon).
     *
     * Quiet detection and the liveness machinery always run on the
     * unpruned choice set; sleep sets only thin the branches actually
     * explored.
     */
    Prepared
    prepareState(ModelState &s, const std::vector<Choice> &sleep,
                 ModelCheckResult &res) const
    {
        Prepared p;
        std::vector<Choice> non_idle;
        enumerateNonIdle(s, non_idle);

        if (non_idle.empty()) {
            // Quiet state: this is where the event engine would publish
            // its wake bound, so this is where the contract is checked.
            const Cycle cap =
                std::min({nextArrivalCycle(s), opts_.depth + 1,
                          s.now + kFingerprintHorizon});
            Cycle change = kNever;
            if ((opts_.wakeupSoundness || opts_.reduction) &&
                s.now + 1 < cap) {
                change = firstChangeAt(s, cap);
            }
            if (opts_.wakeupSoundness && change != kNever) {
                const Cycle published = publishedWakeBound(s);
                if (change < published) {
                    p.violation =
                        "cycle " + std::to_string(s.now) +
                        ": lost wakeup - the legal command set changes "
                        "at cycle " +
                        std::to_string(change) +
                        " but the published wake bound is " +
                        (published == kNever
                             ? std::string("never")
                             : std::to_string(published));
                }
            }
            if (opts_.reduction) {
                Cycle target = std::min(change, cap);
                if (livenessOn())
                    target = std::min(target, earliestDeadline(s));
                if (target > s.now + 1)
                    p.leapTo = target;
            }
            p.choices.push_back(Choice{});
            return p;
        }

        // Work conservation: with the liveness properties on, a cycle
        // may pass unused only at quiet states — the controller always
        // issues when something is legal, so every real policy's paths
        // remain covered. With them off, Idle stays enumerated beside
        // every command (the pre-liveness semantics).
        if (!livenessOn())
            p.choices.push_back(Choice{});
        for (const Choice &c : non_idle) {
            bool asleep = false;
            for (const Choice &sc : sleep) {
                if (sc.key() == c.key()) {
                    asleep = true;
                    break;
                }
            }
            if (asleep) {
                ++res.interleavingsPruned;
                continue;
            }
            p.choices.push_back(c);
        }
        return p;
    }

    // --- State dedup ------------------------------------------------------

    /** Saturated now-relative delta of a future cycle register. */
    static Cycle
    futureDelta(Cycle reg, Cycle now)
    {
        return reg <= now ? Cycle{0}
                          : std::min(reg - now, kFingerprintHorizon);
    }

    /** Request age saturated at the liveness bound (past which every
     *  age is equally violated — states merge again). */
    Cycle
    ageOf(const ModelState &s, const Request &r) const
    {
        return std::min(s.now - r.arrival, opts_.livenessBound + 1);
    }

    /** Per-rank liveness registers: the owed-service clock and how far
     *  refresh has run past its deadline, both saturated. */
    void
    addRankLiveness(Fnv1a &h, const ModelState &s, unsigned r) const
    {
        if (!livenessOn())
            return;
        h.add(s.rankOwed[r] == kNever
                  ? kNever
                  : std::min(s.now - s.rankOwed[r],
                             opts_.livenessBound + 1));
        const Cycle due = s.banks.rank(r).nextRefreshAt();
        h.add(s.now > due
                  ? std::min(s.now - due, opts_.refreshSlack + 1)
                  : Cycle{0});
    }

    std::uint64_t
    fingerprint(const ModelState &s) const
    {
        // Per-row disturbance counters and per-rank alerts break the
        // rank/bank interchangeability argument, so PRAC exploration
        // always uses the plain (symmetry-free) fingerprint; the idle
        // leap and sleep sets stay on.
        if (opts_.reduction && !cfg_.pracEnabled)
            return canonicalFingerprint(s);
        Fnv1a h;
        s.banks.fingerprint(h, s.now, kFingerprintHorizon);
        s.bus.fingerprint(h, s.now, kFingerprintHorizon);
        auto addQueue = [&](const std::deque<Request> &q) {
            h.add(q.size());
            for (const Request &r : q) {
                h.add(r.loc.rank);
                h.add(r.loc.bank);
                h.add(r.loc.row);
                h.add(r.loc.col);
                h.add(r.isWrite);
                h.add(r.mask.bits());
                // The fallback flag changes the demand of the next ACT,
                // so it is state; packed above the 8 need bits to keep
                // every pre-existing fingerprint byte-identical.
                h.add(r.need.bits() |
                      (r.fullRowFallback ? 0x100u : 0u));
                // Ages feed the bounded-progress properties, so two
                // states are future-equivalent only when they agree.
                if (livenessOn())
                    h.add(ageOf(s, r));
            }
        };
        addQueue(s.readQ);
        addQueue(s.writeQ);
        for (unsigned r = 0; r < cfg_.ranksPerChannel; ++r)
            addRankLiveness(h, s, r);
        if (cfg_.pracEnabled) {
            s.prac.fingerprint(h, s.now, kFingerprintHorizon);
            for (const std::uint16_t c : s.specCounts)
                h.add(c);
        }
        h.add(s.nextArrival);
        if (s.nextArrival < workload_.size()) {
            const Cycle a = workload_[s.nextArrival].arrival;
            h.add(futureDelta(a, s.now));
        }
        return h.value();
    }

    /**
     * Symmetry-canonical fingerprint: banks within a bank group and
     * whole ranks are interchangeable up to renaming when their entire
     * observable content (FSM registers, targeting queue entries,
     * targeting future arrivals, liveness clocks, bus residue) matches.
     * Banks are sorted by content hash within their group (bank-group
     * membership is geometry, so the sort never crosses groups), ranks
     * by their canonicalized content hash; the final hash then renames
     * every rank/bank id through the canonical order, including the
     * queue entries (whose cross-bank order still matters for the scan
     * windows), the data-bus rank residue, and the unarrived workload.
     * Two states differing only by such a permutation now collide in
     * the visited set — dedup is pruning, so collapsing states that
     * truly are futures-equivalent never loses a violation.
     */
    std::uint64_t
    canonicalFingerprint(const ModelState &s) const
    {
        const unsigned ranks = cfg_.ranksPerChannel;
        const unsigned banks = cfg_.banksPerRank;
        const unsigned groups =
            cfg_.timing.bankGroups > 1
                ? static_cast<unsigned>(cfg_.timing.bankGroups)
                : 1u;
        const unsigned per_group = banks / groups;

        // 1. Content hash of every bank: its FSM plus everything that
        // targets it, so equal hashes mean interchangeable roles.
        std::vector<std::vector<std::uint64_t>> sub(
            ranks, std::vector<std::uint64_t>(banks));
        for (unsigned r = 0; r < ranks; ++r) {
            for (unsigned b = 0; b < banks; ++b) {
                Fnv1a hb;
                s.banks.bank(r, b).fingerprint(hb, s.now,
                                               kFingerprintHorizon);
                hb.add(s.banks.queued(r, b));
                hb.add(s.banks.openRowMatches(r, b));
                auto addTargeted = [&](const std::deque<Request> &q) {
                    for (const Request &req : q) {
                        if (req.loc.rank != r || req.loc.bank != b)
                            continue;
                        hb.add(req.loc.row);
                        hb.add(req.loc.col);
                        hb.add(req.isWrite);
                        hb.add(req.mask.bits());
                        hb.add(req.need.bits() |
                               (req.fullRowFallback ? 0x100u : 0u));
                        if (livenessOn())
                            hb.add(ageOf(s, req));
                    }
                };
                addTargeted(s.readQ);
                addTargeted(s.writeQ);
                for (std::size_t i = s.nextArrival;
                     i < workload_.size(); ++i) {
                    const ModelRequest &m = workload_[i];
                    if (m.rank != r || m.bank != b)
                        continue;
                    hb.add(futureDelta(m.arrival, s.now));
                    hb.add(m.isWrite);
                    hb.add(m.row);
                    hb.add(m.col);
                    hb.add(m.mask);
                }
                sub[r][b] = hb.value();
            }
        }

        // 2. Canonical bank order, sorted by content hash within each
        // bank group (ties broken by index for determinism).
        std::vector<std::vector<unsigned>> bank_order(ranks);
        std::vector<std::vector<unsigned>> bank_ren(
            ranks, std::vector<unsigned>(banks));
        for (unsigned r = 0; r < ranks; ++r) {
            bank_order[r].resize(banks);
            for (unsigned b = 0; b < banks; ++b)
                bank_order[r][b] = b;
            for (unsigned g = 0; g < groups; ++g) {
                auto begin =
                    bank_order[r].begin() +
                    static_cast<std::ptrdiff_t>(g * per_group);
                std::sort(begin, begin + per_group,
                          [&](unsigned a, unsigned b) {
                              return sub[r][a] != sub[r][b]
                                         ? sub[r][a] < sub[r][b]
                                         : a < b;
                          });
            }
            for (unsigned pos = 0; pos < banks; ++pos)
                bank_ren[r][bank_order[r][pos]] = pos;
        }

        // 3. Rank content keys over the canonicalized banks, the
        // rank-level registers, the per-rank data-bus residue (which
        // encodes the tRTRS switch asymmetry), and liveness clocks.
        std::vector<std::uint64_t> rank_key(ranks);
        for (unsigned r = 0; r < ranks; ++r) {
            Fnv1a hr;
            s.banks.rank(r).fingerprintRankLevel(hr, s.now,
                                                 kFingerprintHorizon);
            for (unsigned b : bank_order[r])
                hr.add(sub[r][b]);
            hr.add(futureDelta(s.bus.dataBusFreeAt(r), s.now));
            addRankLiveness(hr, s, r);
            rank_key[r] = hr.value();
        }

        // 4. Canonical rank order.
        std::vector<unsigned> rank_order(ranks);
        std::vector<unsigned> rank_ren(ranks);
        for (unsigned r = 0; r < ranks; ++r)
            rank_order[r] = r;
        std::sort(rank_order.begin(), rank_order.end(),
                  [&](unsigned a, unsigned b) {
                      return rank_key[a] != rank_key[b]
                                 ? rank_key[a] < rank_key[b]
                                 : a < b;
                  });
        for (unsigned pos = 0; pos < ranks; ++pos)
            rank_ren[rank_order[pos]] = pos;

        // 5. Final hash under the renaming.
        Fnv1a h;
        for (unsigned pos = 0; pos < ranks; ++pos)
            h.add(rank_key[rank_order[pos]]);
        s.bus.fingerprint(h, s.now, kFingerprintHorizon, &rank_ren);
        auto addQueue = [&](const std::deque<Request> &q) {
            h.add(q.size());
            for (const Request &req : q) {
                h.add(rank_ren[req.loc.rank]);
                h.add(bank_ren[req.loc.rank][req.loc.bank]);
                h.add(req.loc.row);
                h.add(req.loc.col);
                h.add(req.isWrite);
                h.add(req.mask.bits());
                h.add(req.need.bits() |
                      (req.fullRowFallback ? 0x100u : 0u));
                if (livenessOn())
                    h.add(ageOf(s, req));
            }
        };
        addQueue(s.readQ);
        addQueue(s.writeQ);
        h.add(s.nextArrival);
        for (std::size_t i = s.nextArrival; i < workload_.size(); ++i) {
            const ModelRequest &m = workload_[i];
            h.add(futureDelta(m.arrival, s.now));
            h.add(rank_ren[m.rank]);
            h.add(bank_ren[m.rank][m.bank]);
            h.add(m.isWrite);
            h.add(m.row);
            h.add(m.col);
            h.add(m.mask);
        }
        return h.value();
    }

    ModelChecker::Options opts_;
    DramConfig cfg_;
    const SchemeModel *scheme_ = nullptr;
    std::vector<ModelRequest> workload_;
    std::unique_ptr<dram::SchedulerPolicy> sched_;
};

ModelCheckResult
Explorer::run()
{
    ModelCheckResult res;

    struct Node
    {
        ModelState state;
        std::vector<Choice> choices;
        std::vector<Choice> sleep;    //!< Choices covered by a sibling.
        Cycle leapTo = 0;             //!< Forced-idle jump target.
        std::size_t next = 0;
        std::size_t restoreLen = 0;   //!< Path length before this node.
    };

    std::vector<ScriptCommand> path;
    std::vector<Node> stack;
    std::unordered_set<std::uint64_t> visited;

    auto finishScript = [&](CommandScript &out) {
        out.commands = path;
        out.scheduler = sched_->name();
        out.fault = faultName(opts_.fault);
        out.scheme = scheme_->name();
    };
    auto noteDepth = [&](const ModelState &s) {
        res.deepestCycle = std::max(res.deepestCycle, s.now);
        if (path.size() > res.deepestPath.commands.size())
            finishScript(res.deepestPath);
    };
    auto fail = [&](const std::string &v) {
        res.violationFound = true;
        res.violation = v;
        finishScript(res.counterexample);
    };

    ModelState root(cfg_);
    enqueueArrivals(root);
    updateRankOwed(root);
    {
        const std::string v = applyAutoPrecharges(root, path);
        if (!v.empty()) {
            fail(v);
            return res;
        }
    }
    visited.insert(fingerprint(root));
    res.statesExplored = 1;
    noteDepth(root);
    {
        Prepared p = prepareState(root, {}, res);
        if (!p.violation.empty()) {
            fail(p.violation);
            return res;
        }
        stack.push_back({std::move(root), std::move(p.choices),
                         {}, p.leapTo, 0, 0});
    }

    while (!stack.empty()) {
        Node &top = stack.back();
        if (top.next >= top.choices.size()) {
            path.resize(top.restoreLen);
            stack.pop_back();
            continue;
        }
        const std::size_t idx = top.next++;
        const Choice choice = top.choices[idx];
        const std::size_t prev_len = path.size();
        const Cycle parent_now = top.state.now;
        ModelState child = top.state;   // Copy: explore independently.
        const Cycle leap =
            choice.kind == Choice::Kind::Idle ? top.leapTo : 0;
        const EdgeOutcome edge = applyEdge(child, choice, path, leap);
        if (choice.kind != Choice::Kind::Idle)
            ++res.commandsIssued;
        if (child.now > parent_now + 1)
            ++res.idleLeaps;
        if (!edge.violation.empty()) {
            fail(edge.violation);
            return res;
        }
        if (child.now > opts_.depth) {
            noteDepth(child);
            path.resize(prev_len);
            continue;
        }
        {
            const std::string lv = checkLiveness(child, res);
            if (!lv.empty()) {
                fail(lv);
                return res;
            }
        }
        if (!visited.insert(fingerprint(child)).second) {
            ++res.statesDeduped;
            path.resize(prev_len);
            continue;
        }
        ++res.statesExplored;
        noteDepth(child);
        if (res.statesExplored >= opts_.maxStates) {
            res.budgetExhausted = true;
            break;
        }
        // Sleep set: siblings already taken before this edge that
        // commute with it are covered through the sibling-first order,
        // so the child need not re-branch on them. Inherited sleeps
        // survive only while they stay independent of the edge, and an
        // environment step (arrival, auto-precharge) or a passing
        // cycle invalidates the commutation argument entirely.
        std::vector<Choice> child_sleep;
        if (opts_.reduction && !edge.envChanged &&
            choice.kind != Choice::Kind::Idle) {
            for (const Choice &sc : top.sleep) {
                if (independentChoices(sc, choice))
                    child_sleep.push_back(sc);
            }
            for (std::size_t j = 0; j < idx; ++j) {
                const Choice &cj = top.choices[j];
                if (cj.kind != Choice::Kind::Idle &&
                    independentChoices(cj, choice)) {
                    child_sleep.push_back(cj);
                }
            }
        }
        Prepared p = prepareState(child, child_sleep, res);
        if (!p.violation.empty()) {
            fail(p.violation);
            return res;
        }
        stack.push_back({std::move(child), std::move(p.choices),
                         std::move(child_sleep), p.leapTo, 0, prev_len});
    }
    return res;
}

} // namespace

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::None: return "none";
      case Fault::WidenAct: return "widen_act";
      case Fault::IgnoreTccdL: return "ignore_tccd_l";
      case Fault::IgnoreTwtr: return "ignore_twtr";
      case Fault::SuppressWake: return "suppress_wake";
      case Fault::StarveAged: return "starve_aged";
      case Fault::DropCount: return "drop_count";
      case Fault::LateRfm: return "late_rfm";
    }
    return "none";
}

bool
parseFault(const std::string &name, Fault &out)
{
    if (name == "none")
        out = Fault::None;
    else if (name == "widen_act")
        out = Fault::WidenAct;
    else if (name == "ignore_tccd_l")
        out = Fault::IgnoreTccdL;
    else if (name == "ignore_twtr")
        out = Fault::IgnoreTwtr;
    else if (name == "suppress_wake")
        out = Fault::SuppressWake;
    else if (name == "starve_aged")
        out = Fault::StarveAged;
    else if (name == "drop_count")
        out = Fault::DropCount;
    else if (name == "late_rfm")
        out = Fault::LateRfm;
    else
        return false;
    return true;
}

ModelChecker::ModelChecker(const Options &opts) : opts_(opts) {}

ModelCheckResult
ModelChecker::run()
{
    Explorer explorer(opts_);
    return explorer.run();
}

dram::DramConfig
ModelChecker::modelConfig(Fault fault, unsigned disturbanceThreshold)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 4;
    cfg.rowsPerBank = 16;
    cfg.linesPerRow = 4;
    cfg.policy = dram::PagePolicy::RelaxedClose;
    cfg.scheduler = dram::SchedulerKind::FrFcfs;
    cfg.readQueueDepth = 8;
    cfg.writeQueueDepth = 8;
    cfg.writeHighWatermark = 6;
    cfg.writeLowWatermark = 2;
    cfg.rowHitCap = 2;
    cfg.powerDownEnabled = false;
    cfg.enableChecker = false;   // The explorer owns its own checker.
    // The event engine is the explored implementation (this config also
    // drives real controllers in test_engine_differential.cpp, which
    // pins Tick/Event equivalence); test_modelcheck_regressions.cpp
    // replays every distilled script under both engine kinds and
    // requires identical verdicts.
    cfg.engine = dram::EngineKind::Event;
    cfg.scheme = &schemeByName("pra");

    // Reduced timing: every rule (refresh included) fires inside the
    // default depth budget; tCCD_L > tCCD so the bank-group rule is
    // observable; tRC = tRAS + tRP stays self-consistent.
    dram::Timing &t = cfg.timing;
    t.tRcd = 3;
    t.tRp = 3;
    t.tCas = 3;
    t.tRas = 6;
    t.tWr = 3;
    t.tCcd = 2;
    t.tRrd = 2;
    t.tFaw = 8;
    t.tRc = 9;
    t.wl = 2;
    t.tRtp = 2;
    // tWTR is deliberately larger than tWR: the write-to-read release
    // (WL + tWTR + burst) then lands strictly after the write-to-
    // precharge release (WL + burst + tWR), leaving quiet states where
    // the tWTR release is the *only* future event — the window the
    // suppress-wake fault hides and the soundness property needs to
    // observe. With tWTR == tWR the two releases coincide and the
    // maintenance engine's precharge bound always covers the loss.
    t.tWtr = 6;
    t.tRfc = 6;
    t.tRefi = 30;
    t.tXp = 2;
    t.tRtrs = 1;
    t.burstCycles = 2;
    t.bankGroups = 2;
    t.tCcdL = 4;
    t.praMaskCycles = 1;

    switch (fault) {
      case Fault::None:
        break;
      case Fault::WidenAct:
        cfg.auditFaultWidenAct = 0x80;
        break;
      case Fault::IgnoreTccdL:
        cfg.faultIgnoreTccdL = true;
        break;
      case Fault::IgnoreTwtr:
        cfg.faultIgnoreTwtr = true;
        break;
      case Fault::SuppressWake:
        cfg.faultSuppressWakeTwtr = true;
        break;
      case Fault::StarveAged:
        // Low enough that the starved request's progress deadline
        // (arrival + livenessBound) still lands inside the default
        // depth budget.
        cfg.faultStarveAgedCycles = 8;
        break;
      case Fault::DropCount:
        armModelPrac(cfg);
        cfg.faultPracDropCount = true;
        break;
      case Fault::LateRfm:
        armModelPrac(cfg);
        cfg.faultPracLateRfm = true;
        break;
    }
    // The clean arm of the disturbance-safety family: PRAC on with no
    // fault (or a threshold override on top of a PRAC fault).
    if (disturbanceThreshold > 0) {
        if (!cfg.pracEnabled)
            armModelPrac(cfg);
        cfg.disturbanceThreshold = disturbanceThreshold;
    }
    return cfg;
}

std::vector<ModelRequest>
ModelChecker::defaultWorkload()
{
    // Geometry: 2 ranks x 4 banks, bank groups {0,1} and {2,3}.
    return {
        // Same-row partial writes: merged PRA mask, partial ACT.
        {0, true, 0, 0, 1, 0, 0x03},
        {0, true, 0, 0, 1, 1, 0x0c},
        // Same-group reads (bank 1, two columns of one row): tCCD_L
        // back-to-back pressure and the row-hit cap.
        {0, false, 0, 1, 2, 0, 0xff},
        {1, false, 0, 1, 2, 1, 0xff},
        // Cross-group read: tCCD_S spacing and write-to-read turnaround.
        {1, false, 0, 2, 3, 0, 0xff},
        // Cross-rank write: tRTRS bus bubble, second rank's refresh.
        {2, true, 1, 0, 1, 0, 0x10},
        // Symmetric twin reads: identical requests to the two banks of
        // rank 1's second bank group, whose FSMs carry no other traffic.
        // Every interleaving of their ACT/RD pairs lands in a state
        // that is a bank permutation of its mirror — the traffic that
        // makes the symmetry canonicalizer (and the 4x reduction claim)
        // observable rather than vacuous.
        {1, false, 1, 2, 6, 0, 0xff},
        {1, false, 1, 3, 6, 0, 0xff},
        // Row conflict on (0, 0): precharge + re-activate path.
        {2, false, 0, 0, 4, 0, 0xff},
        // Full-mask write on the fourth bank: non-partial ACT, tFAW
        // pressure with four banks active in rank 0.
        {3, true, 0, 3, 5, 0, 0xff},
    };
}

std::vector<ModelRequest>
ModelChecker::pracWorkload()
{
    // Geometry: 2 ranks x 4 banks; threshold 3 (alert at 2) with
    // rowHitCap forced to 1 (armModelPrac), so each of row 1's three
    // writes is its own re-activation: three ACTs of one row exist on
    // explored paths, and the second must raise the alert. Masks are
    // chosen so each row's merged PRA mask stays partial (union 0x0f,
    // never a full row): the drop_count fault then drops exactly these
    // ACTs from the implementation counters while the spec shadow keeps
    // counting. Row 2 gives the bank CAM a second entry (victim
    // selection is observable, not vacuous).
    return {
        {0, true, 0, 0, 1, 0, 0x03},
        {0, true, 0, 0, 1, 1, 0x0c},
        {1, true, 0, 0, 2, 0, 0x03},
        {1, true, 0, 0, 1, 2, 0x03},
        // Cross-rank read: rank 1's refresh and liveness clocks stay
        // exercised while rank 0 sits alert-blocked.
        {2, false, 1, 0, 3, 0, 0xff},
    };
}

} // namespace pra::analysis
