#include "analysis/model_checker.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "dram/bank_engine.h"
#include "dram/bus_arbiter.h"
#include "dram/checker.h"
#include "dram/maintenance_engine.h"
#include "dram/request.h"
#include "dram/sched/scheduler_policy.h"

namespace pra::analysis {

namespace {

using dram::BankEngine;
using dram::BusArbiter;
using dram::CheckedCommand;
using dram::DramConfig;
using dram::MaintenanceEngine;
using dram::Request;
using dram::TimingChecker;

/**
 * Timing-register deltas are saturated at this horizon when hashing
 * (see Bank::fingerprint). Anything further out than the default depth
 * budget cannot fire within one exploration, so states differing only
 * beyond it merge. Dedup is a pruning heuristic: merging never invents
 * a violation, it can only skip re-exploring an already-covered future.
 */
constexpr Cycle kFingerprintHorizon = 64;

/** Candidate-enumeration-only hooks: the explorer issues commands on
 *  its own copied state, so the engine's issue callbacks are unused. */
class NullHooks final : public dram::MaintenanceHooks
{
  public:
    void issuePrecharge(unsigned, unsigned, Cycle) override {}
    void issueAutoPrecharge(unsigned, unsigned, Cycle) override {}
    void issueRefresh(unsigned, Cycle) override {}
};

NullHooks g_nullHooks;

/** One fully copyable point of the explored product state space. */
struct ModelState
{
    Cycle now = 0;
    BankEngine banks;
    BusArbiter bus;
    std::deque<Request> readQ;
    std::deque<Request> writeQ;
    std::size_t nextArrival = 0;
    TimingChecker checker;

    ModelState(const DramConfig &cfg)
        : banks(cfg), bus(cfg), checker(cfg)
    {
    }
};

/** One enumerated legal command (or letting the cycle pass). */
struct Choice
{
    enum class Kind
    {
        Idle,
        Refresh,
        Precharge,
        Activate,
        Column,
    };

    Kind kind = Kind::Idle;
    bool isWrite = false;   //!< Activate/Column: which queue.
    std::size_t index = 0;  //!< Activate/Column: queue position.
    unsigned rank = 0;      //!< Refresh/Precharge target.
    unsigned bank = 0;      //!< Precharge target.
};

class Explorer
{
  public:
    Explorer(const ModelChecker::Options &opts)
        : opts_(opts), cfg_(ModelChecker::modelConfig(opts.fault)),
          traits_(cfg_.traits()),
          workload_(ModelChecker::defaultWorkload())
    {
        cfg_.scheduler = opts.scheduler;
        sched_ = dram::makeSchedulerPolicy(cfg_);
    }

    ModelCheckResult run();

  private:
    // --- Workload admission (mirrors MemoryController::enqueue) ----------

    WordMask
    needOf(const Request &req) const
    {
        if (!req.isWrite || !traits_.partialWrites)
            return WordMask::full();
        return req.mask.empty() ? WordMask::full() : req.mask;
    }

    void
    enqueueArrivals(ModelState &s) const
    {
        while (s.nextArrival < workload_.size() &&
               workload_[s.nextArrival].arrival <= s.now) {
            const ModelRequest &m = workload_[s.nextArrival++];
            Request req;
            req.addr = syntheticAddr(m);
            req.isWrite = m.isWrite;
            req.mask = m.isWrite ? WordMask{m.mask} : WordMask::full();
            req.arrival = s.now;
            req.loc.channel = 0;
            req.loc.rank = m.rank;
            req.loc.bank = m.bank;
            req.loc.row = m.row;
            req.loc.col = m.col;
            if (req.isWrite) {
                // Write combining with a queued same-line write.
                bool combined = false;
                for (Request &w : s.writeQ) {
                    if (w.addr == req.addr) {
                        w.mask |= req.mask;
                        w.need = needOf(w);
                        w.probeEpoch = Request::kProbeInvalid;
                        combined = true;
                        break;
                    }
                }
                if (combined)
                    continue;
                req.need = needOf(req);
                s.writeQ.push_back(req);
                s.banks.onEnqueue(s.writeQ.back());
            } else {
                // Read forwarding: served from the write queue, never
                // reaches DRAM.
                bool forwarded = false;
                for (const Request &w : s.writeQ)
                    forwarded = forwarded || w.addr == req.addr;
                if (forwarded)
                    continue;
                req.need = WordMask::full();
                s.readQ.push_back(req);
                s.banks.onEnqueue(s.readQ.back());
            }
        }
    }

    Addr
    syntheticAddr(const ModelRequest &m) const
    {
        const Addr lines =
            ((static_cast<Addr>(m.row) * cfg_.banksPerRank + m.bank) *
                 cfg_.ranksPerChannel +
             m.rank) *
                cfg_.linesPerRow +
            m.col;
        return lines * 64;
    }

    /** OR of queued same-row write masks (mergedWriteMask, uncached). */
    WordMask
    mergedWriteMask(const ModelState &s, const Request &req) const
    {
        WordMask merged = WordMask::none();
        for (const Request &w : s.writeQ) {
            if (!w.loc.sameRow(req.loc))
                continue;
            merged |= w.mask;
            if (!cfg_.mergeWriteMasks)
                break;
        }
        return merged.empty() ? WordMask::full() : merged;
    }

    // --- Command application (mirrors the controller's issue paths) ------

    /** Feed @p cmd to the path checker; non-empty on a rule breach. */
    std::string
    observe(ModelState &s, const CheckedCommand &cmd)
    {
        s.checker.observe(cmd);
        if (!s.checker.clean())
            return s.checker.violations().front();
        return {};
    }

    std::string
    applyActivate(ModelState &s, bool is_write, std::size_t idx,
                  std::vector<ScriptCommand> &path)
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        Request &req = q[idx];
        dram::Rank &rank = s.banks.rank(req.loc.rank);
        dram::Bank &bank = rank.bank(req.loc.bank);

        const WordMask dirty =
            is_write ? mergedWriteMask(s, req) : WordMask::full();
        unsigned gran = traits_.actGranularity(is_write, dirty);
        WordMask open_mask = traits_.actMask(is_write, dirty);
        const bool partial = traits_.needsMaskCycle(is_write, dirty);
        if (partial && gran < cfg_.minActGranularity)
            gran = std::min(cfg_.minActGranularity, kMatGroups);
        const double weight = cfg_.weightedActWindow
                                  ? traits_.actWeight(gran, cfg_.power)
                                  : 1.0;
        // The scheme-derived mask is the invariant; the fault hook (when
        // armed) widens the issued mask behind its back, exactly like the
        // controller's issueActivate does.
        const WordMask expected = open_mask;
        if (cfg_.auditFaultWidenAct != 0)
            open_mask |= WordMask{cfg_.auditFaultWidenAct};

        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Activate;
        sc.cycle = s.now;
        sc.rank = req.loc.rank;
        sc.bank = req.loc.bank;
        sc.row = req.loc.row;
        sc.partial = partial;
        sc.weight = weight;
        sc.mask = open_mask.bits();
        sc.expect = expected.bits();
        path.push_back(sc);

        std::string v = observe(s, sc.checked());
        if (v.empty() && open_mask != expected) {
            v = "cycle " + std::to_string(s.now) +
                ": ACT opens mask beyond the scheme-derived union of "
                "served dirty MAT groups";
        }
        bank.activate(s.now, req.loc.row, open_mask, partial);
        rank.recordActivation(s.now, weight);
        s.bus.holdCmdBus(s.now,
                         partial ? cfg_.timing.praMaskCycles : 0u);
        s.banks.recountOpenRowMatches(req.loc.rank, req.loc.bank, s.readQ,
                                      s.writeQ);
        return v;
    }

    std::string
    applyColumn(ModelState &s, bool is_write, std::size_t idx,
                std::vector<ScriptCommand> &path)
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const Request req = q[idx];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));

        dram::Bank &bank = s.banks.bank(req.loc.rank, req.loc.bank);
        const unsigned burst =
            traits_.burstCycles(cfg_.timing.burstCycles);
        const WordMask open_mask = bank.rowBuffer().openMask();

        ScriptCommand sc;
        sc.kind = is_write ? CheckedCommand::Kind::Write
                           : CheckedCommand::Kind::Read;
        sc.cycle = s.now;
        sc.rank = req.loc.rank;
        sc.bank = req.loc.bank;
        sc.row = req.loc.row;
        sc.burst = burst;
        sc.need = req.need.bits();
        path.push_back(sc);

        std::string v = observe(s, sc.checked());
        // PRA mask invariants, independent of the probe that admitted
        // the access: reads consume the full row, and any column access
        // must fall inside the open (possibly partial) mask.
        if (v.empty() && !is_write && !open_mask.isFull()) {
            v = "cycle " + std::to_string(s.now) +
                ": READ served by a partially open row";
        }
        if (v.empty() && !open_mask.covers(req.need)) {
            v = "cycle " + std::to_string(s.now) +
                ": column access outside the open PRA mask";
        }

        s.bus.noteColumnIssued(req.loc.bank, s.now);
        s.bus.holdCmdBus(s.now);
        bank.recordHit();
        if (cfg_.policy == dram::PagePolicy::RestrictedClose)
            bank.setAutoPrecharge();
        if (is_write) {
            bank.write(s.now, burst);
            s.bus.reserveDataBus(s.now + cfg_.timing.wl, burst,
                                 req.loc.rank);
            s.bus.noteWriteIssued(s.now, burst);
        } else {
            bank.read(s.now, burst);
            s.bus.reserveDataBus(s.now + cfg_.timing.rl(), burst,
                                 req.loc.rank);
        }
        s.banks.onDequeue(req);
        return v;
    }

    std::string
    applyPrecharge(ModelState &s, unsigned r, unsigned b,
                   std::vector<ScriptCommand> &path, bool auto_pre)
    {
        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Precharge;
        sc.cycle = s.now;
        sc.rank = r;
        sc.bank = b;
        path.push_back(sc);

        const std::string v = observe(s, sc.checked());
        s.banks.bank(r, b).precharge(s.now);
        if (!auto_pre)
            s.bus.holdCmdBus(s.now);
        s.banks.onPrecharge(r, b);
        return v;
    }

    std::string
    applyRefresh(ModelState &s, unsigned r,
                 std::vector<ScriptCommand> &path)
    {
        ScriptCommand sc;
        sc.kind = CheckedCommand::Kind::Refresh;
        sc.cycle = s.now;
        sc.rank = r;
        path.push_back(sc);

        const std::string v = observe(s, sc.checked());
        s.banks.rank(r).refresh(s.now);
        s.bus.holdCmdBus(s.now);
        return v;
    }

    /** Retire every ready auto-precharge (forced, not a choice). */
    std::string
    applyAutoPrecharges(ModelState &s, std::vector<ScriptCommand> &path)
    {
        MaintenanceEngine maint(cfg_, s.banks, g_nullHooks);
        for (const auto &[r, b] : maint.autoPrechargeCandidates(s.now)) {
            const std::string v = applyPrecharge(s, r, b, path, true);
            if (!v.empty())
                return v;
        }
        return {};
    }

    /**
     * Take @p c on @p s, then advance one cycle and run the forced
     * per-cycle steps (arrivals, auto-precharge retirement). Non-empty
     * return = first violation on this edge.
     */
    std::string
    applyEdge(ModelState &s, const Choice &c,
              std::vector<ScriptCommand> &path)
    {
        std::string v;
        switch (c.kind) {
          case Choice::Kind::Idle:
            break;
          case Choice::Kind::Refresh:
            v = applyRefresh(s, c.rank, path);
            break;
          case Choice::Kind::Precharge:
            v = applyPrecharge(s, c.rank, c.bank, path, false);
            break;
          case Choice::Kind::Activate:
            v = applyActivate(s, c.isWrite, c.index, path);
            break;
          case Choice::Kind::Column:
            v = applyColumn(s, c.isWrite, c.index, path);
            break;
        }
        if (!v.empty())
            return v;
        s.now += 1;
        enqueueArrivals(s);
        return applyAutoPrecharges(s, path);
    }

    // --- Choice enumeration (mirrors the controller's tick gates) --------

    void
    enumerateColumns(ModelState &s, bool is_write,
                     std::vector<Choice> &out,
                     std::set<Addr> &seen) const
    {
        if (!is_write && s.bus.readBlocked(s.now))
            return;
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const std::size_t window = sched_->columnWindow(q.size());
        for (std::size_t i = 0; i < window; ++i) {
            Request &req = q[i];
            const dram::Bank &bank =
                s.banks.bank(req.loc.rank, req.loc.bank);
            if (s.banks.probe(req) != RowProbe::Hit)
                continue;
            if (bank.autoPrechargePending())
                continue;
            if (cfg_.policy == dram::PagePolicy::RestrictedClose &&
                !req.classified) {
                continue;
            }
            const bool column_ok = is_write ? bank.canWrite(s.now)
                                            : bank.canRead(s.now);
            if (!column_ok)
                continue;
            if (!s.bus.columnGateOk(req.loc.bank, s.now))
                continue;
            const Cycle data_start =
                s.now +
                (is_write ? cfg_.timing.wl : cfg_.timing.rl());
            if (!s.bus.dataBusFree(data_start, req.loc.rank))
                continue;
            if (cfg_.policy == dram::PagePolicy::RelaxedClose &&
                bank.hitCount() >= cfg_.rowHitCap) {
                continue;
            }
            // Duplicate-address reads are interchangeable: issuing
            // either yields the same successor state.
            if (!seen.insert(req.addr).second)
                continue;
            Choice c;
            c.kind = Choice::Kind::Column;
            c.isWrite = is_write;
            c.index = i;
            out.push_back(c);
        }
    }

    void
    enumeratePrepares(ModelState &s, bool is_write,
                      std::vector<Choice> &out,
                      std::set<std::uint64_t> &actSeen,
                      std::set<std::pair<unsigned, unsigned>> &preSeen)
        const
    {
        std::deque<Request> &q = is_write ? s.writeQ : s.readQ;
        const std::size_t window = sched_->prepareWindow(q.size());
        for (std::size_t i = 0; i < window; ++i) {
            Request &req = q[i];
            const dram::Rank &rank = s.banks.rank(req.loc.rank);
            const dram::Bank &bank = rank.bank(req.loc.bank);
            const RowProbe probe = s.banks.probe(req);

            switch (probe) {
              case RowProbe::Closed: {
                if (rank.refreshDue(s.now) || rank.refreshing(s.now))
                    break;
                if (!bank.canActivate(s.now))
                    break;
                const WordMask dirty = is_write
                                           ? mergedWriteMask(s, req)
                                           : WordMask::full();
                unsigned gran =
                    traits_.actGranularity(is_write, dirty);
                if (traits_.needsMaskCycle(is_write, dirty) &&
                    gran < cfg_.minActGranularity) {
                    gran = std::min(cfg_.minActGranularity, kMatGroups);
                }
                const double weight =
                    cfg_.weightedActWindow
                        ? traits_.actWeight(gran, cfg_.power)
                        : 1.0;
                if (!rank.canActivate(s.now, weight))
                    break;
                // Two requests producing the same activation (same bank,
                // row and mask) yield identical successors.
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(req.loc.rank) << 48) |
                    (static_cast<std::uint64_t>(req.loc.bank) << 40) |
                    (static_cast<std::uint64_t>(req.loc.row) << 8) |
                    traits_.actMask(is_write, dirty).bits();
                if (!actSeen.insert(key).second)
                    break;
                Choice c;
                c.kind = Choice::Kind::Activate;
                c.isWrite = is_write;
                c.index = i;
                out.push_back(c);
                break;
              }
              case RowProbe::Conflict:
              case RowProbe::FalseHit: {
                const bool still_useful =
                    probe == RowProbe::Conflict &&
                    cfg_.policy == dram::PagePolicy::RelaxedClose &&
                    s.banks.openRowMatches(req.loc.rank, req.loc.bank) >
                        0 &&
                    bank.hitCount() < cfg_.rowHitCap;
                if (!still_useful && bank.canPrecharge(s.now) &&
                    preSeen.insert({req.loc.rank, req.loc.bank})
                        .second) {
                    Choice c;
                    c.kind = Choice::Kind::Precharge;
                    c.rank = req.loc.rank;
                    c.bank = req.loc.bank;
                    out.push_back(c);
                }
                break;
              }
              case RowProbe::Hit:
                if (cfg_.policy == dram::PagePolicy::RelaxedClose &&
                    bank.hitCount() >= cfg_.rowHitCap &&
                    bank.canPrecharge(s.now) &&
                    preSeen.insert({req.loc.rank, req.loc.bank})
                        .second) {
                    Choice c;
                    c.kind = Choice::Kind::Precharge;
                    c.rank = req.loc.rank;
                    c.bank = req.loc.bank;
                    out.push_back(c);
                }
                break;
            }
        }
    }

    std::vector<Choice>
    enumerateChoices(ModelState &s) const
    {
        std::vector<Choice> out;
        out.push_back(Choice{});   // Idle: let the cycle pass.
        if (s.bus.cmdBusBusy(s.now))
            return out;   // The controller's early-out: nothing issues.

        MaintenanceEngine maint(cfg_, s.banks, g_nullHooks);
        for (unsigned r : maint.refreshCandidates(s.now)) {
            Choice c;
            c.kind = Choice::Kind::Refresh;
            c.rank = r;
            out.push_back(c);
        }

        std::set<Addr> colSeen;
        enumerateColumns(s, false, out, colSeen);
        enumerateColumns(s, true, out, colSeen);

        std::set<std::uint64_t> actSeen;
        std::set<std::pair<unsigned, unsigned>> preSeen;
        enumeratePrepares(s, false, out, actSeen, preSeen);
        enumeratePrepares(s, true, out, actSeen, preSeen);

        for (const auto &[r, b] : maint.closeCandidates(s.now)) {
            if (preSeen.insert({r, b}).second) {
                Choice c;
                c.kind = Choice::Kind::Precharge;
                c.rank = r;
                c.bank = b;
                out.push_back(c);
            }
        }
        return out;
    }

    // --- State dedup ------------------------------------------------------

    std::uint64_t
    fingerprint(const ModelState &s) const
    {
        Fnv1a h;
        s.banks.fingerprint(h, s.now, kFingerprintHorizon);
        s.bus.fingerprint(h, s.now, kFingerprintHorizon);
        auto addQueue = [&](const std::deque<Request> &q) {
            h.add(q.size());
            for (const Request &r : q) {
                h.add(r.loc.rank);
                h.add(r.loc.bank);
                h.add(r.loc.row);
                h.add(r.loc.col);
                h.add(r.isWrite);
                h.add(r.mask.bits());
                h.add(r.need.bits());
            }
        };
        addQueue(s.readQ);
        addQueue(s.writeQ);
        h.add(s.nextArrival);
        if (s.nextArrival < workload_.size()) {
            const Cycle a = workload_[s.nextArrival].arrival;
            h.add(a <= s.now ? Cycle{0}
                             : std::min(a - s.now, kFingerprintHorizon));
        }
        return h.value();
    }

    ModelChecker::Options opts_;
    DramConfig cfg_;
    SchemeTraits traits_;
    std::vector<ModelRequest> workload_;
    std::unique_ptr<dram::SchedulerPolicy> sched_;
};

ModelCheckResult
Explorer::run()
{
    ModelCheckResult res;

    struct Node
    {
        ModelState state;
        std::vector<Choice> choices;
        std::size_t next = 0;
        std::size_t restoreLen = 0;   //!< Path length before this node.
    };

    std::vector<ScriptCommand> path;
    std::vector<Node> stack;
    std::unordered_set<std::uint64_t> visited;

    auto finishScript = [&](CommandScript &out) {
        out.commands = path;
        out.scheduler = sched_->name();
        out.fault = faultName(opts_.fault);
    };
    auto noteDepth = [&](const ModelState &s) {
        res.deepestCycle = std::max(res.deepestCycle, s.now);
        if (path.size() > res.deepestPath.commands.size())
            finishScript(res.deepestPath);
    };

    ModelState root(cfg_);
    enqueueArrivals(root);
    {
        const std::string v = applyAutoPrecharges(root, path);
        if (!v.empty()) {
            res.violationFound = true;
            res.violation = v;
            finishScript(res.counterexample);
            return res;
        }
    }
    visited.insert(fingerprint(root));
    res.statesExplored = 1;
    noteDepth(root);
    {
        std::vector<Choice> choices = enumerateChoices(root);
        stack.push_back({std::move(root), std::move(choices), 0, 0});
    }

    while (!stack.empty()) {
        Node &top = stack.back();
        if (top.next >= top.choices.size()) {
            path.resize(top.restoreLen);
            stack.pop_back();
            continue;
        }
        const Choice choice = top.choices[top.next++];
        const std::size_t prev_len = path.size();
        ModelState child = top.state;   // Copy: explore independently.
        const std::string v = applyEdge(child, choice, path);
        if (choice.kind != Choice::Kind::Idle)
            ++res.commandsIssued;
        if (!v.empty()) {
            res.violationFound = true;
            res.violation = v;
            finishScript(res.counterexample);
            return res;
        }
        if (child.now > opts_.depth) {
            noteDepth(child);
            path.resize(prev_len);
            continue;
        }
        if (!visited.insert(fingerprint(child)).second) {
            ++res.statesDeduped;
            path.resize(prev_len);
            continue;
        }
        ++res.statesExplored;
        noteDepth(child);
        if (res.statesExplored >= opts_.maxStates) {
            res.budgetExhausted = true;
            break;
        }
        std::vector<Choice> choices = enumerateChoices(child);
        stack.push_back(
            {std::move(child), std::move(choices), 0, prev_len});
    }
    return res;
}

} // namespace

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::None: return "none";
      case Fault::WidenAct: return "widen_act";
      case Fault::IgnoreTccdL: return "ignore_tccd_l";
      case Fault::IgnoreTwtr: return "ignore_twtr";
    }
    return "none";
}

bool
parseFault(const std::string &name, Fault &out)
{
    if (name == "none")
        out = Fault::None;
    else if (name == "widen_act")
        out = Fault::WidenAct;
    else if (name == "ignore_tccd_l")
        out = Fault::IgnoreTccdL;
    else if (name == "ignore_twtr")
        out = Fault::IgnoreTwtr;
    else
        return false;
    return true;
}

ModelChecker::ModelChecker(const Options &opts) : opts_(opts) {}

ModelCheckResult
ModelChecker::run()
{
    Explorer explorer(opts_);
    return explorer.run();
}

dram::DramConfig
ModelChecker::modelConfig(Fault fault)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.ranksPerChannel = 2;
    cfg.banksPerRank = 4;
    cfg.rowsPerBank = 16;
    cfg.linesPerRow = 4;
    cfg.policy = dram::PagePolicy::RelaxedClose;
    cfg.scheduler = dram::SchedulerKind::FrFcfs;
    cfg.readQueueDepth = 8;
    cfg.writeQueueDepth = 8;
    cfg.writeHighWatermark = 6;
    cfg.writeLowWatermark = 2;
    cfg.rowHitCap = 2;
    cfg.powerDownEnabled = false;
    cfg.enableChecker = false;   // The explorer owns its own checker.
    // The event engine is the explored implementation (this config also
    // drives real controllers in test_engine_differential.cpp, which
    // pins Tick/Event equivalence); test_modelcheck_regressions.cpp
    // replays every distilled script under both engine kinds and
    // requires identical verdicts.
    cfg.engine = dram::EngineKind::Event;
    cfg.scheme = Scheme::Pra;

    // Reduced timing: every rule (refresh included) fires inside the
    // default depth budget; tCCD_L > tCCD so the bank-group rule is
    // observable; tRC = tRAS + tRP stays self-consistent.
    dram::Timing &t = cfg.timing;
    t.tRcd = 3;
    t.tRp = 3;
    t.tCas = 3;
    t.tRas = 6;
    t.tWr = 3;
    t.tCcd = 2;
    t.tRrd = 2;
    t.tFaw = 8;
    t.tRc = 9;
    t.wl = 2;
    t.tRtp = 2;
    t.tWtr = 3;
    t.tRfc = 6;
    t.tRefi = 30;
    t.tXp = 2;
    t.tRtrs = 1;
    t.burstCycles = 2;
    t.bankGroups = 2;
    t.tCcdL = 4;
    t.praMaskCycles = 1;

    switch (fault) {
      case Fault::None:
        break;
      case Fault::WidenAct:
        cfg.auditFaultWidenAct = 0x80;
        break;
      case Fault::IgnoreTccdL:
        cfg.faultIgnoreTccdL = true;
        break;
      case Fault::IgnoreTwtr:
        cfg.faultIgnoreTwtr = true;
        break;
    }
    return cfg;
}

std::vector<ModelRequest>
ModelChecker::defaultWorkload()
{
    // Geometry: 2 ranks x 4 banks, bank groups {0,1} and {2,3}.
    return {
        // Same-row partial writes: merged PRA mask, partial ACT.
        {0, true, 0, 0, 1, 0, 0x03},
        {0, true, 0, 0, 1, 1, 0x0c},
        // Same-group reads (bank 1, two columns of one row): tCCD_L
        // back-to-back pressure and the row-hit cap.
        {0, false, 0, 1, 2, 0, 0xff},
        {1, false, 0, 1, 2, 1, 0xff},
        // Cross-group read: tCCD_S spacing and write-to-read turnaround.
        {1, false, 0, 2, 3, 0, 0xff},
        // Cross-rank write: tRTRS bus bubble, second rank's refresh.
        {2, true, 1, 0, 1, 0, 0x10},
        // Row conflict on (0, 0): precharge + re-activate path.
        {2, false, 0, 0, 4, 0, 0xff},
        // Full-mask write on the fourth bank: non-partial ACT, tFAW
        // pressure with four banks active in rank 0.
        {3, true, 0, 3, 5, 0, 0xff},
    };
}

} // namespace pra::analysis
