/**
 * @file
 * Bounded exhaustive protocol model checker for the decomposed memory
 * controller (DESIGN.md §10).
 *
 * The live controller picks *one* command per cycle; a scheduling or
 * gating bug that only manifests under a choice the default policy
 * never makes stays invisible to simulation-based testing. This checker
 * explores the *product* of the controller's layers — BankEngine bank
 * FSMs x BusArbiter channel gates x MaintenanceEngine decisions — by
 * enumerating, at every cycle of every explored path, every command the
 * layer gates declare legal (not just the policy's pick), issuing it on
 * a copied state, and validating the resulting command stream against
 * the independent TimingChecker plus the PRA mask invariants:
 *
 *  - reads are served only by fully open rows;
 *  - column accesses fall inside the open (possibly partial) PRA mask;
 *  - an activation opens exactly the scheme-derived mask (the union of
 *    the queued same-row writes' dirty MAT groups for PRA writes).
 *
 * On top of safety, the checker verifies *liveness* (bounded progress)
 * under work-conserving exploration (a cycle may pass unused only when
 * no command is legal — the over-approximation of every real policy,
 * since the controller always issues when something is legal):
 *
 *  - every queued request is serviced within Options::livenessBound
 *    cycles of its arrival;
 *  - refresh never overruns its deadline by more than
 *    Options::refreshSlack cycles past tREFI;
 *  - a rank with queued work is granted some command within the bound;
 *  - wakeup soundness: at every quiet state (nothing legal), the wake
 *    bound the event engine would publish (DESIGN.md §11.2) is no later
 *    than the first cycle at which idling actually changes the legal
 *    command set — a statically explored "no lost wakeup" proof.
 *
 * Under a PRAC-enabled model (DESIGN.md §13) a third family —
 * *disturbance safety* — joins in:
 *
 *  - no row's modeled activation count (every ACT counted, partial or
 *    not, in a spec-side per-row shadow independent of the controller's
 *    tag CAM) reaches Options::disturbanceThreshold on any explored
 *    path without an intervening RFM mitigation of that row;
 *  - an Alert Back-Off never stays outstanding past the configured
 *    recovery window (DramConfig::pracRecoveryWindow) — the RFM must
 *    land inside it, and RFM never collides with refresh (the
 *    TimingChecker rejects commands inside tRFC/tRFM);
 *  - the prac_rfm maintenance op's published wake bound obeys the same
 *    wakeup-soundness contract as every other layer.
 *
 * Exploration is depth-first over a reduced-timing model configuration
 * (small tRCD/tRAS/tREFI so refresh and every turnaround rule fire
 * within a shallow horizon), with visited-state deduplication keyed on
 * the engines' fingerprint() seams: all timing registers are hashed as
 * now-relative saturated deltas, so time-shifted but future-equivalent
 * states merge. Options::reduction additionally collapses forced-idle
 * stretches into one time leap, canonicalizes bank/rank permutation
 * symmetry in the fingerprint, and prunes commutative command
 * interleavings with sleep sets (DESIGN.md §10.1). Dedup only prunes
 * re-exploration — every reported violation lies on a concretely
 * simulated path and is emitted as a replayable CommandScript.
 *
 * The seven deliberate fault hooks (DramConfig::auditFaultWidenAct,
 * faultIgnoreTccdL, faultIgnoreTwtr, faultSuppressWakeTwtr,
 * faultStarveAgedCycles, faultPracDropCount, faultPracLateRfm) weaken
 * controller-side gates without touching the checker; the default
 * budgets must find a counterexample for each
 * (tests/test_modelcheck_regressions.cpp pins this), and must find none
 * with no fault armed.
 */
#ifndef PRA_ANALYSIS_MODEL_CHECKER_H
#define PRA_ANALYSIS_MODEL_CHECKER_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/command_script.h"
#include "dram/config.h"

namespace pra::analysis {

/** Which deliberate fault hook the explored configuration arms. */
enum class Fault
{
    None,         //!< Unfaulted build: exploration must stay clean.
    WidenAct,     //!< auditFaultWidenAct: ACT masks widened covertly.
    IgnoreTccdL,  //!< faultIgnoreTccdL: same-group tCCD_L gate dropped.
    IgnoreTwtr,   //!< faultIgnoreTwtr: write-to-read tWTR gate dropped.
    SuppressWake, //!< faultSuppressWakeTwtr: tWTR wake bound suppressed.
    StarveAged,   //!< faultStarveAgedCycles: aged requests never issue.
    DropCount,    //!< faultPracDropCount: partial ACTs left uncounted.
    LateRfm,      //!< faultPracLateRfm: RFM released one window too late.
};

/** Config-flag spelling of @p f (none, widen_act, ...). */
const char *faultName(Fault f);

/** Inverse of faultName(); returns false on unknown spellings. */
bool parseFault(const std::string &name, Fault &out);

/** One request of the exploration workload. */
struct ModelRequest
{
    Cycle arrival = 0;
    bool isWrite = false;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint32_t row = 0;
    unsigned col = 0;
    std::uint8_t mask = 0xff;  //!< Dirty-word mask (writes).
};

/** Outcome of one bounded exploration. */
struct ModelCheckResult
{
    bool violationFound = false;
    /** First violation message (checker rule, mask or liveness). */
    std::string violation;
    /** Replayable path ending in the violating command. */
    CommandScript counterexample;
    /** Longest violation-free path seen (near-miss --emit-test seed). */
    CommandScript deepestPath;
    std::uint64_t statesExplored = 0;
    std::uint64_t statesDeduped = 0;
    std::uint64_t commandsIssued = 0;
    Cycle deepestCycle = 0;
    bool budgetExhausted = false;  //!< maxStates hit before completion.
    /** Reduction diagnostics: forced-idle stretches collapsed and
     *  sleep-set-pruned command interleavings. */
    std::uint64_t idleLeaps = 0;
    std::uint64_t interleavingsPruned = 0;
    /** Liveness headroom actually observed on clean runs: the longest
     *  any request waited and the furthest any refresh ran past its
     *  tREFI deadline. Used to tune the default bounds. */
    Cycle maxRequestWait = 0;
    Cycle maxRefreshOverrun = 0;
    /** Disturbance-safety headroom (PRAC models): the longest any
     *  Alert Back-Off stayed outstanding before its RFM landed. Used to
     *  tune DramConfig::pracRecoveryWindow the same way. */
    Cycle maxRecoveryWait = 0;
};

/** Bounded exhaustive explorer (see file header). */
class ModelChecker
{
  public:
    struct Options
    {
        Cycle depth = kDefaultDepth;
        std::uint64_t maxStates = kDefaultMaxStates;
        dram::SchedulerKind scheduler = dram::SchedulerKind::FrFcfs;
        Fault fault = Fault::None;
        /**
         * Registered scheme name to explore under (see core/scheme.h);
         * empty keeps the model default ("pra"). schemeByName() rejects
         * unknown spellings up front.
         */
        std::string scheme;
        /**
         * Bounded-progress horizon: a queued request older than this
         * (or a rank with queued work granted nothing for this long)
         * is a liveness violation. 0 disables the liveness properties
         * *and* work-conserving exploration (an Idle edge is then
         * enumerated beside every command, the pre-liveness semantics).
         */
        Cycle livenessBound = kDefaultLivenessBound;
        /** Refresh may run at most this far past its tREFI deadline. */
        Cycle refreshSlack = kDefaultRefreshSlack;
        /**
         * Non-zero arms PRAC on the model config (when the fault alone
         * does not) and overrides the disturbance threshold the safety
         * property checks against; 0 keeps the model default (PRAC off
         * unless the fault is a PRAC drill). Exploration under PRAC
         * switches to pracWorkload() and disables the symmetry
         * canonicalizer (per-row counters break rank/bank symmetry).
         */
        unsigned disturbanceThreshold = 0;
        /** Check the published-wake-bound contract at quiet states. */
        bool wakeupSoundness = true;
        /** Idle time-leap + symmetry canonicalization + sleep sets. */
        bool reduction = true;
        /**
         * Geometry overrides for degenerate-edge coverage (0 = keep
         * the model default). The workload is folded modulo the
         * overridden geometry; bank groups are reduced to 1 when they
         * no longer divide the bank count.
         */
        unsigned overrideRanks = 0;
        unsigned overrideBanks = 0;
        unsigned overrideBankGroups = 0;
    };

    static constexpr Cycle kDefaultDepth = 96;
    /** The unfaulted default-workload space converges at ~515k states
     *  (depth-independent past ~32 — the interleaving breadth, not the
     *  horizon, dominates); the budget leaves ~2x headroom. */
    static constexpr std::uint64_t kDefaultMaxStates = 1000000;
    /**
     * Default liveness bound, tuned above the longest wait any request
     * experiences on clean work-conserving paths (measured: 81 cycles,
     * stable from depth 96 through 130 — ModelCheckResult::
     * maxRequestWait pins the headroom in
     * tests/test_modelcheck_regressions.cpp) yet low enough that the
     * starve-aged fault's progress deadline (arrival + bound + 1)
     * lands inside the default depth.
     */
    static constexpr Cycle kDefaultLivenessBound = 88;
    /** Default refresh slack past tREFI (measured clean-run maximum
     *  overrun: 21 cycles), tuned the same way. */
    static constexpr Cycle kDefaultRefreshSlack = 32;
    /** Disturbance threshold the PRAC model arms when a PRAC fault (or
     *  a replayed RFM-bearing script) enables PRAC without an explicit
     *  Options::disturbanceThreshold override. Three keeps the full
     *  alert → RFM → re-activate cycle (and both PRAC fault drills)
     *  inside the default depth and liveness budgets: the hammer rows
     *  re-activate serially under rowHitCap 1, so each extra counted
     *  ACT costs a full ACT/WR/PRE round trip of drain time. */
    static constexpr unsigned kDefaultDisturbanceThreshold = 3;

    explicit ModelChecker(const Options &opts);

    /** Explore; stops at the first violation or when budgets drain. */
    ModelCheckResult run();

    /**
     * The reduced-timing model configuration: every checked rule fires
     * within the default depth budget (tREFI and tRFC included), DDR4
     * bank groups are on with tCCD_L > tCCD_S so the group rule is
     * observable, and the scheme is PRA so partial-activation masks
     * exercise the mask invariants.
     *
     * A non-zero @p disturbanceThreshold arms the PRAC model (counters,
     * ABO, RFM, reduced tRFM and recovery window) when the fault alone
     * does not, and overrides the threshold either way — the same
     * arming Options::disturbanceThreshold applies to an exploration.
     */
    static dram::DramConfig modelConfig(Fault fault,
                                        unsigned disturbanceThreshold = 0);

    /**
     * The deterministic exploration workload: same-row partial writes
     * (mask merging), same- and cross-group reads (tCCD_L/tCCD_S),
     * cross-rank traffic (tRTRS), a row conflict, and enough banks in
     * one rank to saturate the weighted tFAW window.
     */
    static std::vector<ModelRequest> defaultWorkload();

    /**
     * The PRAC hammer workload (used whenever the explored config has
     * pracEnabled): alternating same-bank rows whose re-activations are
     * all partial write ACTs — the merged mask union stays below a full
     * row, so the drop_count fault suppresses exactly the counting the
     * threshold property watches — plus one cross-rank read so the
     * second rank's refresh and liveness clocks stay exercised while
     * rank 0 is alert-blocked.
     */
    static std::vector<ModelRequest> pracWorkload();

  private:
    Options opts_;
};

} // namespace pra::analysis

#endif // PRA_ANALYSIS_MODEL_CHECKER_H
