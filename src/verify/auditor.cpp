#include "verify/auditor.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "cache/hierarchy.h"

namespace pra::verify {

namespace {

/** Commands per energy-conservation window (ISSUE: 1 ulp per window). */
constexpr std::uint64_t kEnergyWindowEvents = 4096;
/** L2 ways examined per sampled coherence scan (rotating cursor). */
constexpr std::size_t kL2ScanChunkWays = 4096;
/** Cap on fully formatted violation strings kept for the report. */
constexpr std::size_t kMaxStoredViolations = 32;

constexpr std::array<InvariantStats,
                     static_cast<std::size_t>(Invariant::Count_)>
invariantMeta()
{
    std::array<InvariantStats, static_cast<std::size_t>(Invariant::Count_)>
        meta{};
    auto set = [&meta](Invariant inv, const char *name, const char *what) {
        meta[static_cast<std::size_t>(inv)] = {name, what, 0, 0};
    };
    set(Invariant::ReadFullRow, "dram.act.read-full-row",
        "reads always get a full-row activation");
    set(Invariant::ActMaskConformance, "dram.act.mask-conformance",
        "partial ACT mask/granularity/weight match the served writes");
    set(Invariant::ColumnWithinMask, "dram.col.within-open-mask",
        "no column command touches a MAT outside the open mask");
    set(Invariant::ShadowRowState, "dram.shadow.row-state",
        "commands legal against independent bank/queue shadow state");
    set(Invariant::WritebackMaskExact, "cache.wb.mask-exact",
        "writeback PRA mask == FGD word collapse; line left clean");
    set(Invariant::DirtyInclusion, "cache.dirty-inclusion",
        "L1 dirty lines resident in L2; DBI tracks exactly L2 dirty");
    set(Invariant::EnergyConservation, "power.event-conservation",
        "per-command energy events sum to aggregate PowerModel totals");
    set(Invariant::SkipQuiescent, "fastpath.skip-quiescent",
        "cycle-skip windows are command-free under slow-path replay");
    set(Invariant::ForkFingerprint, "fastpath.fork-fingerprint",
        "warm-snapshot forks replicate hierarchy state bit-exactly");
    set(Invariant::EventWakeSound, "fastpath.event-wake-sound",
        "heap-declared-quiet rounds do nothing when forced to run");
    set(Invariant::PracConservation, "dram.prac.count-conservation",
        "PRAC tracked-count sum == ACTs counted - counts mitigated");
    return meta;
}

unsigned
resolveScanStride(unsigned configured)
{
    if (const char *env = std::getenv("PRA_AUDIT_STRIDE")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    if (configured > 0)
        return configured;
#ifdef NDEBUG
    return 16384;
#else
    return 4096;
#endif
}

std::string
maskStr(WordMask m)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "0x%02x", m.bits());
    return buf;
}

/** The command-driven slice of the counts (background residency and the
 *  wall clock are not event-driven and are checked by equation instead). */
power::EnergyCounts
commandCountsOnly(power::EnergyCounts c)
{
    c.actStandbyCycles = 0;
    c.preStandbyCycles = 0;
    c.powerDownCycles = 0;
    c.elapsedCycles = 0;
    return c;
}

} // namespace

Auditor::Auditor(const AuditConfig &cfg)
    : cfg_(cfg),
      model_(cfg.power, cfg.chipsPerRank, cfg.ranksPerChannel,
             cfg.eccChipsPerRank),
      stats_(invariantMeta())
{
    channels_.resize(cfg_.channels);
    for (auto &ch : channels_) {
        ch.banks.resize(static_cast<std::size_t>(cfg_.ranksPerChannel) *
                        cfg_.banksPerRank);
        if (cfg_.pracEnabled) {
            ch.prac.resize(cfg_.ranksPerChannel);
            for (auto &pr : ch.prac)
                pr.cams.resize(cfg_.banksPerRank);
        }
    }
    scanStride_ = resolveScanStride(cfg_.scanStride);
}

bool
Auditor::envEnabled()
{
    const char *env = std::getenv("PRA_AUDIT");
    return env && env[0] == '1';
}

bool
Auditor::envReplay()
{
    const char *env = std::getenv("PRA_AUDIT_REPLAY");
    return env && env[0] == '1';
}

Auditor::ShadowBank &
Auditor::shadowBank(const DramCommandEvent &ev)
{
    auto &ch = channels_[ev.channel];
    return ch.banks[static_cast<std::size_t>(ev.rank) * cfg_.banksPerRank +
                    ev.bank];
}

void
Auditor::record(const RingEntry &entry)
{
    ring_[ringNext_] = entry;
    ringNext_ = (ringNext_ + 1) % ring_.size();
    ringFill_ = std::min(ringFill_ + 1, ring_.size());
}

std::string
Auditor::formatRing() const
{
    std::ostringstream os;
    os << "ring buffer (oldest first, " << ringFill_ << " events):\n";
    for (std::size_t i = 0; i < ringFill_; ++i) {
        const std::size_t idx =
            (ringNext_ + ring_.size() - ringFill_ + i) % ring_.size();
        const RingEntry &e = ring_[idx];
        os << "  [" << e.cycle << "] " << e.tag << " ch" << e.channel;
        if (e.tag == 'b') {
            os << " addr 0x" << std::hex << e.addr << std::dec << " pra "
               << maskStr(WordMask{e.mask});
        } else {
            os << " r" << e.rank << " b" << e.bank << " row " << e.row
               << " addr 0x" << std::hex << e.addr << std::dec << " mask "
               << maskStr(WordMask{e.mask}) << " need "
               << maskStr(WordMask{e.need})
               << (e.partial ? " partial" : "");
        }
        os << '\n';
    }
    return os.str();
}

void
Auditor::fail(Invariant inv, Cycle cycle, const std::string &why)
{
    ++stat(inv).violations;
    if (totalViolations_++ == 0)
        firstViolationRing_ = formatRing();
    if (violations_.size() >= kMaxStoredViolations)
        return;
    std::ostringstream os;
    os << stat(inv).name << " @ cycle " << cycle << ": " << why;
    violations_.push_back(os.str());
}

void
Auditor::onWriteEnqueue(const WriteQueueEvent &ev)
{
    ++events_;
    record({'q', ev.cycle, ev.channel, ev.rank, ev.bank, ev.row, ev.addr,
            ev.mask.bits(), ev.chipMask, false});

    auto &writes = channels_[ev.channel].writes;
    // Mirror the controller's write combining: one entry per line
    // address, masks ORed, queue order preserved.
    for (auto &w : writes) {
        if (w.addr == ev.addr) {
            w.mask |= ev.mask;
            w.chipMask |= ev.chipMask;
            return;
        }
    }
    writes.push_back(
        {ev.addr, ev.rank, ev.bank, ev.row, ev.mask, ev.chipMask});
}

void
Auditor::checkActivate(const DramCommandEvent &ev, ShadowChannel &ch)
{
    // Independently re-derive what the activation should have been from
    // the shadow write queue (paper Section 5.2.1: the PRA masks of all
    // queued same-row writes are ORed into one activation).
    const SchemeModel &scheme = *cfg_.scheme;
    WordMask merged = WordMask::none();
    if (ev.forWrite) {
        for (const auto &w : ch.writes) {
            if (w.rank != ev.rank || w.bank != ev.bank || w.row != ev.row)
                continue;
            merged |= scheme.writeMask(w.mask, w.chipMask);
            if (!cfg_.mergeWriteMasks)
                break;   // Ablation: only the oldest same-row write.
        }
    }

    // The demand the activation should answer. Writes: the merged shadow
    // dirty mask. Reads: the scheme's speculative read mask — except that
    // the controller may legitimately fall back to the full row after a
    // misprediction (a false hit the auditor cannot observe), so a read
    // ACT's demand is whichever of {predicted, full} it actually opened,
    // and anything else is a violation.
    WordMask demand = WordMask::full();
    if (ev.forWrite) {
        demand = merged.empty() ? WordMask::full() : merged;
    } else if (scheme.partialReads()) {
        const WordMask predicted = scheme.readActMask(ev.addr);
        ++stat(Invariant::ReadFullRow).checks;
        if (ev.mask != predicted && !ev.mask.isFull()) {
            fail(Invariant::ReadFullRow, ev.cycle,
                 "read activation opened " + maskStr(ev.mask) +
                     " instead of the speculative read mask " +
                     maskStr(predicted) + " or the full-row fallback");
        }
        demand = ev.mask.isFull() ? WordMask::full() : predicted;
    } else {
        ++stat(Invariant::ReadFullRow).checks;
        if (!ev.mask.isFull()) {
            fail(Invariant::ReadFullRow, ev.cycle,
                 "read activation opened " + maskStr(ev.mask) +
                     " instead of the full row");
        }
    }

    const WordMask expect_mask = scheme.actMask(ev.forWrite, demand);
    const bool expect_partial =
        scheme.needsMaskCycle(ev.forWrite, demand);
    unsigned expect_gran = scheme.actGranularity(ev.forWrite, demand);
    if (expect_partial && expect_gran < cfg_.minActGranularity)
        expect_gran = std::min(cfg_.minActGranularity, kMatGroups);
    const double expect_weight =
        cfg_.weightedActWindow
            ? scheme.actWeight(expect_gran, cfg_.power)
            : 1.0;

    ++stat(Invariant::ActMaskConformance).checks;
    if (ev.mask != expect_mask) {
        fail(Invariant::ActMaskConformance, ev.cycle,
             "ACT opened " + maskStr(ev.mask) + " but the served writes " +
                 "require exactly " + maskStr(expect_mask) +
                 " (merged dirty " + maskStr(demand) + ")");
    }
    if (ev.partial != expect_partial) {
        fail(Invariant::ActMaskConformance, ev.cycle,
             std::string("ACT mask-cycle flag is ") +
                 (ev.partial ? "set" : "clear") + " but should be " +
                 (expect_partial ? "set" : "clear"));
    }
    if (ev.granularity != expect_gran) {
        fail(Invariant::ActMaskConformance, ev.cycle,
             "ACT charged granularity " + std::to_string(ev.granularity) +
                 " but the mask implies " + std::to_string(expect_gran));
    }
    if (ev.weight != expect_weight) {
        fail(Invariant::ActMaskConformance, ev.cycle,
             "ACT tFAW weight " + std::to_string(ev.weight) +
                 " != expected " + std::to_string(expect_weight));
    }
}

void
Auditor::onCommand(const DramCommandEvent &ev)
{
    ++events_;
    record({ev.kind == DramCommandEvent::Kind::Activate    ? 'A'
            : ev.kind == DramCommandEvent::Kind::Read      ? 'R'
            : ev.kind == DramCommandEvent::Kind::Write     ? 'W'
            : ev.kind == DramCommandEvent::Kind::Precharge ? 'P'
            : ev.kind == DramCommandEvent::Kind::Rfm       ? 'M'
                                                           : 'F',
            ev.cycle, ev.channel, ev.rank, ev.bank, ev.row, ev.addr,
            ev.mask.bits(), ev.need.bits(), ev.partial});

    if (inQuiescentWindow_) {
        ++stat(Invariant::SkipQuiescent).checks;
        std::ostringstream os;
        os << "command issued inside a cycle-skip window [" << windowFrom_
           << ", " << windowTo_ << ") the fast path declared quiescent";
        fail(Invariant::SkipQuiescent, ev.cycle, os.str());
    }

    auto &ch = channels_[ev.channel];
    ShadowBank &bank = shadowBank(ev);

    switch (ev.kind) {
      case DramCommandEvent::Kind::Activate: {
        ++stat(Invariant::ShadowRowState).checks;
        if (bank.open) {
            fail(Invariant::ShadowRowState, ev.cycle,
                 "ACT to a bank the shadow state has open (row " +
                     std::to_string(bank.row) + ")");
        }
        checkActivate(ev, ch);
        if (cfg_.pracEnabled)
            pracCountActivate(ev, ch);
        bank.open = true;
        bank.row = ev.row;
        bank.mask = ev.mask;   // Actual mask: columns check reality.
        accountCommandEnergy(ev);
        break;
      }

      case DramCommandEvent::Kind::Read:
      case DramCommandEvent::Kind::Write: {
        ++stat(Invariant::ShadowRowState).checks;
        if (!bank.open || bank.row != ev.row) {
            fail(Invariant::ShadowRowState, ev.cycle,
                 bank.open ? "column command to row " +
                                 std::to_string(ev.row) +
                                 " but shadow has row " +
                                 std::to_string(bank.row) + " open"
                           : "column command to a closed shadow bank");
        }
        ++stat(Invariant::ColumnWithinMask).checks;
        if (!bank.mask.covers(ev.need)) {
            fail(Invariant::ColumnWithinMask, ev.cycle,
                 "column needs MATs " + maskStr(ev.need) +
                     " but the activation opened only " +
                     maskStr(bank.mask));
        }
        if (ev.kind == DramCommandEvent::Kind::Write) {
            auto &writes = ch.writes;
            const auto it = std::find_if(
                writes.begin(), writes.end(),
                [&](const ShadowWrite &w) { return w.addr == ev.addr; });
            ++stat(Invariant::ShadowRowState).checks;
            if (it == writes.end()) {
                fail(Invariant::ShadowRowState, ev.cycle,
                     "WR drains a write the shadow queue never admitted");
            } else {
                writes.erase(it);
            }
        }
        accountCommandEnergy(ev);
        break;
      }

      case DramCommandEvent::Kind::Precharge:
        ++stat(Invariant::ShadowRowState).checks;
        if (!bank.open) {
            fail(Invariant::ShadowRowState, ev.cycle,
                 "PRE to a bank the shadow state has closed");
        }
        bank.open = false;
        bank.mask = WordMask::none();
        break;

      case DramCommandEvent::Kind::Refresh: {
        ++stat(Invariant::ShadowRowState).checks;
        for (unsigned b = 0; b < cfg_.banksPerRank; ++b) {
            const ShadowBank &sb =
                ch.banks[static_cast<std::size_t>(ev.rank) *
                             cfg_.banksPerRank +
                         b];
            if (sb.open) {
                fail(Invariant::ShadowRowState, ev.cycle,
                     "REF with shadow bank " + std::to_string(b) +
                         " still open");
                break;
            }
        }
        accountCommandEnergy(ev);
        break;
      }

      case DramCommandEvent::Kind::Rfm: {
        ++stat(Invariant::ShadowRowState).checks;
        if (!cfg_.pracEnabled) {
            fail(Invariant::ShadowRowState, ev.cycle,
                 "RFM issued with PRAC disabled");
            break;
        }
        for (unsigned b = 0; b < cfg_.banksPerRank; ++b) {
            const ShadowBank &sb =
                ch.banks[static_cast<std::size_t>(ev.rank) *
                             cfg_.banksPerRank +
                         b];
            if (sb.open) {
                fail(Invariant::ShadowRowState, ev.cycle,
                     "RFM with shadow bank " + std::to_string(b) +
                         " still open");
                break;
            }
        }
        pracCheckRfm(ev, ch);
        accountCommandEnergy(ev);
        break;
      }
    }
}

std::uint64_t
Auditor::pracTrackedSum(const ShadowPracRank &pr)
{
    std::uint64_t sum = 0;
    for (const auto &cam : pr.cams) {
        for (const auto &e : cam)
            sum += e.count;
    }
    return sum;
}

void
Auditor::pracCountActivate(const DramCommandEvent &ev, ShadowChannel &ch)
{
    // Replay the spec CAM: *every* activation of a row disturbs its
    // neighbours, partial (masked) or not, so every ACT must be counted.
    // The Misra-Gries eviction (replace the coldest entry, inherit its
    // count) is part of the contract: it only ever over-approximates a
    // row's true count, and it keeps the tracked sum rising by exactly
    // one per counted ACT — which is what conservation checks below.
    ShadowPracRank &pr = ch.prac[ev.rank];
    ++pr.acts;
    auto &cam = pr.cams[ev.bank];
    auto it = std::find_if(cam.begin(), cam.end(),
                           [&](const ShadowPracEntry &e) {
                               return e.row == ev.row;
                           });
    if (it == cam.end()) {
        if (cam.size() < cfg_.pracCamEntries) {
            cam.push_back({ev.row, 0});
            it = cam.end() - 1;
        } else {
            it = std::min_element(cam.begin(), cam.end(),
                                  [](const ShadowPracEntry &a,
                                     const ShadowPracEntry &b) {
                                      return a.count < b.count;
                                  });
            it->row = ev.row;   // Inherit the evictee's count.
        }
    }
    ++it->count;

    // Online conservation: the controller's reported tracked sum must
    // equal the replica's, and both must equal acts - mitigated. A
    // dropped count (e.g. the drop_count fault drill) trips this at the
    // very first uncounted ACT.
    ++stat(Invariant::PracConservation).checks;
    const std::uint64_t expect = pr.acts - pr.mitigated;
    if (ev.pracTracked != expect || pracTrackedSum(pr) != expect) {
        fail(Invariant::PracConservation, ev.cycle,
             "after ACT r" + std::to_string(ev.rank) + " b" +
                 std::to_string(ev.bank) + " row " +
                 std::to_string(ev.row) + ": controller tracked sum " +
                 std::to_string(ev.pracTracked) + ", replica " +
                 std::to_string(pracTrackedSum(pr)) +
                 ", conservation expects " + std::to_string(expect) +
                 " (acts " + std::to_string(pr.acts) + " - mitigated " +
                 std::to_string(pr.mitigated) + ")");
    }
}

void
Auditor::pracCheckRfm(const DramCommandEvent &ev, ShadowChannel &ch)
{
    ShadowPracRank &pr = ch.prac[ev.rank];

    // The replica selects its own victim — hottest tracked entry, bank
    // then insertion order breaking ties — and the controller's reported
    // (bank, row, cleared) must match it exactly.
    unsigned vic_bank = 0;
    std::size_t vic_idx = 0;
    std::uint32_t vic_count = 0;
    bool found = false;
    for (unsigned b = 0; b < pr.cams.size(); ++b) {
        const auto &cam = pr.cams[b];
        for (std::size_t i = 0; i < cam.size(); ++i) {
            if (!found || cam[i].count > vic_count) {
                found = true;
                vic_bank = b;
                vic_idx = i;
                vic_count = cam[i].count;
            }
        }
    }

    ++stat(Invariant::PracConservation).checks;
    if (!found) {
        fail(Invariant::PracConservation, ev.cycle,
             "RFM on rank " + std::to_string(ev.rank) +
                 " with no tracked activation counts to mitigate");
        return;
    }
    const std::uint32_t vic_row = pr.cams[vic_bank][vic_idx].row;
    if (ev.bank != vic_bank || ev.row != vic_row ||
        ev.pracCleared != vic_count) {
        fail(Invariant::PracConservation, ev.cycle,
             "RFM cleared b" + std::to_string(ev.bank) + " row " +
                 std::to_string(ev.row) + " (count " +
                 std::to_string(ev.pracCleared) +
                 ") but the replica's hottest entry is b" +
                 std::to_string(vic_bank) + " row " +
                 std::to_string(vic_row) + " (count " +
                 std::to_string(vic_count) + ")");
    }
    pr.cams[vic_bank].erase(pr.cams[vic_bank].begin() +
                            static_cast<std::ptrdiff_t>(vic_idx));
    pr.mitigated += vic_count;

    ++stat(Invariant::PracConservation).checks;
    const std::uint64_t expect = pr.acts - pr.mitigated;
    if (ev.pracTracked != expect || pracTrackedSum(pr) != expect) {
        fail(Invariant::PracConservation, ev.cycle,
             "after RFM on rank " + std::to_string(ev.rank) +
                 ": controller tracked sum " +
                 std::to_string(ev.pracTracked) + ", replica " +
                 std::to_string(pracTrackedSum(pr)) +
                 ", conservation expects " + std::to_string(expect));
    }
}

void
Auditor::accountCommandEnergy(const DramCommandEvent &ev)
{
    auto charge = [&](power::EnergyCounts &c) {
        switch (ev.kind) {
          case DramCommandEvent::Kind::Activate:
            cfg_.scheme->accountActivate(c, ev.granularity, ev.forWrite);
            break;
          case DramCommandEvent::Kind::Read:
            ++c.readLines;
            c.readWordsDriven += cfg_.scheme->readWordsDriven(ev.need);
            break;
          case DramCommandEvent::Kind::Write:
            ++c.writeLines;
            c.writeWordsDriven += cfg_.scheme->wordsDriven(ev.mask);
            break;
          case DramCommandEvent::Kind::Precharge:
            break;
          case DramCommandEvent::Kind::Refresh:
            ++c.refreshOps;
            break;
          case DramCommandEvent::Kind::Rfm:
            ++c.rfmOps;
            break;
        }
    };
    charge(shadow_);
    charge(window_);
    if (++windowEvents_ >= kEnergyWindowEvents)
        closeEnergyWindow();
}

void
Auditor::closeEnergyWindow()
{
    if (windowEvents_ == 0)
        return;
    windowEnergySum_ += model_.energy(commandCountsOnly(window_)).total();
    ++windowsClosed_;
    window_ = power::EnergyCounts{};
    windowEvents_ = 0;
}

void
Auditor::onWriteback(const WritebackEvent &ev)
{
    ++events_;
    record({'b', 0, 0, 0, 0, 0, ev.addr, ev.pra.bits(), 0, false});

    ++stat(Invariant::WritebackMaskExact).checks;
    if (ev.pra != ev.dirty.toWordMask()) {
        fail(Invariant::WritebackMaskExact, 0,
             "writeback PRA mask " + maskStr(ev.pra) +
                 " != word collapse " + maskStr(ev.dirty.toWordMask()) +
                 " of its FGD dirty bytes");
    }
    if (ev.dirty.empty()) {
        fail(Invariant::WritebackMaskExact, 0,
             "clean line emitted as a writeback");
    }
    if (hier_ != nullptr) {
        // "Cleared exactly on writeback": once the line leaves, no level
        // may still hold dirty bytes for it, and the DBI must not track
        // it anymore.
        bool still_dirty = !hier_->l2().dirtyMask(ev.addr).empty();
        for (unsigned c = 0; c < hier_->numCores() && !still_dirty; ++c)
            still_dirty = !hier_->l1(c).dirtyMask(ev.addr).empty();
        if (still_dirty) {
            fail(Invariant::WritebackMaskExact, 0,
                 "line written back but dirty bits survive in the "
                 "hierarchy");
        }
        if (hier_->dbi() != nullptr && hier_->dbi()->isTracked(ev.addr)) {
            fail(Invariant::WritebackMaskExact, 0,
                 "line written back but still tracked by the DBI");
        }
    }
}

void
Auditor::onCacheAccess()
{
    if (hier_ == nullptr)
        return;
    if (++accesses_ % scanStride_ != 0)
        return;
    runCoherenceScan();
}

void
Auditor::runCoherenceScan()
{
    ++scans_;
    const cache::Hierarchy &h = *hier_;

    // L1 dirty lines must be resident in the inclusive L2. The L1s are
    // small; scan them fully.
    for (unsigned c = 0; c < h.numCores(); ++c) {
        for (const cache::EvictedLine &line :
             h.l1(c).collectDirtyLines()) {
            ++stat(Invariant::DirtyInclusion).checks;
            if (!h.l2().contains(line.addr)) {
                std::ostringstream os;
                os << "L1[" << c << "] dirty line 0x" << std::hex
                   << line.addr << std::dec
                   << " is not resident in the inclusive L2";
                fail(Invariant::DirtyInclusion, 0, os.str());
            }
        }
    }

    // L2 dirty lines must be DBI-tracked (rotating chunk: the scan cost
    // stays O(chunk) per sample instead of O(cache)).
    if (h.dbi() != nullptr) {
        const std::size_t total = h.l2().totalWays();
        const std::size_t chunk = std::min(kL2ScanChunkWays, total);
        for (const cache::EvictedLine &line :
             h.l2().dirtyLinesInRange(l2ScanCursor_, chunk)) {
            ++stat(Invariant::DirtyInclusion).checks;
            if (!h.dbi()->isTracked(line.addr)) {
                std::ostringstream os;
                os << "L2 dirty line 0x" << std::hex << line.addr
                   << std::dec << " is not tracked by the DBI";
                fail(Invariant::DirtyInclusion, 0, os.str());
            }
        }
        l2ScanCursor_ = (l2ScanCursor_ + chunk) % std::max<std::size_t>(
                                                      total, 1);

        // Every DBI-tracked line must still be dirty-resident in the L2,
        // and the tracked_ counter must agree with the table.
        std::uint64_t listed = 0;
        for (Addr addr : h.dbi()->trackedAddresses()) {
            ++listed;
            ++stat(Invariant::DirtyInclusion).checks;
            if (!h.l2().contains(addr) ||
                h.l2().dirtyMask(addr).empty()) {
                std::ostringstream os;
                os << "DBI tracks 0x" << std::hex << addr << std::dec
                   << " but the L2 holds no dirty copy";
                fail(Invariant::DirtyInclusion, 0, os.str());
            }
        }
        ++stat(Invariant::DirtyInclusion).checks;
        if (listed != h.dbi()->trackedLines()) {
            fail(Invariant::DirtyInclusion, 0,
                 "DBI tracked-line counter " +
                     std::to_string(h.dbi()->trackedLines()) +
                     " != table population " + std::to_string(listed));
        }
    }
}

void
Auditor::beginQuiescentWindow(Cycle from, Cycle to)
{
    inQuiescentWindow_ = true;
    windowFrom_ = from;
    windowTo_ = to;
}

void
Auditor::endQuiescentWindow()
{
    ++stat(Invariant::SkipQuiescent).checks;
    inQuiescentWindow_ = false;
}

void
Auditor::onEventRound(Cycle cycle, Cycle wake, bool activity)
{
    ++stat(Invariant::EventWakeSound).checks;
    if (activity) {
        std::ostringstream os;
        os << "event engine slept toward cycle " << wake
           << " but a forced round at cycle " << cycle
           << " acted — the published wake-up candidate set is unsound";
        fail(Invariant::EventWakeSound, cycle, os.str());
    }
}

void
Auditor::checkFingerprint(const char *what, std::uint64_t expected,
                          std::uint64_t actual)
{
    ++stat(Invariant::ForkFingerprint).checks;
    if (expected != actual) {
        std::ostringstream os;
        os << what << ": state fingerprint 0x" << std::hex << actual
           << " != source 0x" << expected << std::dec;
        fail(Invariant::ForkFingerprint, 0, os.str());
    }
}

void
Auditor::finalize(const power::EnergyCounts &aggregate)
{
    closeEnergyWindow();

    auto check_count = [&](const char *name, std::uint64_t shadow,
                           std::uint64_t agg) {
        ++stat(Invariant::EnergyConservation).checks;
        if (shadow != agg) {
            fail(Invariant::EnergyConservation, aggregate.elapsedCycles,
                 std::string(name) + ": shadow command count " +
                     std::to_string(shadow) + " != aggregate " +
                     std::to_string(agg));
        }
    };
    for (unsigned g = 0; g < shadow_.acts.size(); ++g) {
        check_count(("acts[" + std::to_string(g + 1) + "]").c_str(),
                    shadow_.acts[g], aggregate.acts[g]);
        check_count(
            ("actsHalfHeight[" + std::to_string(g + 1) + "]").c_str(),
            shadow_.actsHalfHeight[g], aggregate.actsHalfHeight[g]);
    }
    check_count("sdsActs", shadow_.sdsActs, aggregate.sdsActs);
    check_count("sdsChipsActivated", shadow_.sdsChipsActivated,
                aggregate.sdsChipsActivated);
    check_count("readLines", shadow_.readLines, aggregate.readLines);
    check_count("writeLines", shadow_.writeLines, aggregate.writeLines);
    check_count("writeWordsDriven", shadow_.writeWordsDriven,
                aggregate.writeWordsDriven);
    check_count("refreshOps", shadow_.refreshOps, aggregate.refreshOps);
    check_count("rfmOps", shadow_.rfmOps, aggregate.rfmOps);

    // Background residency is not event-driven; conservation here means
    // every rank is in exactly one background state every cycle.
    const std::uint64_t bg = aggregate.actStandbyCycles +
                             aggregate.preStandbyCycles +
                             aggregate.powerDownCycles;
    const std::uint64_t expected_bg =
        aggregate.elapsedCycles *
        static_cast<std::uint64_t>(cfg_.ranksPerChannel) * cfg_.channels;
    ++stat(Invariant::EnergyConservation).checks;
    if (bg != expected_bg) {
        fail(Invariant::EnergyConservation, aggregate.elapsedCycles,
             "background rank-cycles " + std::to_string(bg) +
                 " != elapsed * ranks = " + std::to_string(expected_bg));
    }

    // Windowed per-command energy must sum to the whole-run evaluation
    // within 1 ulp per closed window (float addition reassociation).
    const double whole =
        model_.energy(commandCountsOnly(shadow_)).total();
    const double tol = static_cast<double>(windowsClosed_ + 1) * 2.0 *
                       DBL_EPSILON * std::max(1.0, std::fabs(whole));
    ++stat(Invariant::EnergyConservation).checks;
    if (std::fabs(windowEnergySum_ - whole) > tol) {
        std::ostringstream os;
        os << "windowed command energy " << windowEnergySum_
           << " nJ diverges from aggregate evaluation " << whole
           << " nJ (tolerance " << tol << ")";
        fail(Invariant::EnergyConservation, aggregate.elapsedCycles,
             os.str());
    }
}

std::string
Auditor::report() const
{
    std::ostringstream os;
    os << "=== PRA invariant audit report ===\n";
    os << "config fingerprint : 0x" << std::hex << cfg_.configFingerprint
       << std::dec << '\n';
    os << "events audited     : " << events_ << " (" << scans_
       << " coherence scans)\n";
    os << "invariants:\n";
    for (const auto &s : stats_) {
        os << "  " << s.name << ": " << s.checks << " checks, "
           << s.violations << " violations\n";
    }
    if (totalViolations_ == 0) {
        os << "clean\n";
        return os.str();
    }
    os << "violations (" << violations_.size() << " of "
       << totalViolations_ << " shown):\n";
    for (const auto &v : violations_)
        os << "  " << v << '\n';
    os << firstViolationRing_;
    return os.str();
}

} // namespace pra::verify
