/**
 * @file
 * Events observed by the cross-layer invariant auditor.
 *
 * Every layer that participates in the PRA contract reports what it
 * *actually did* through one of these plain structs; the auditor keeps
 * its own shadow state and derives what *should* have happened. The
 * structs carry raw facts only — no derived expectations — so a bug in
 * the reporting layer cannot pre-satisfy the invariant it violates.
 */
#ifndef PRA_VERIFY_EVENTS_H
#define PRA_VERIFY_EVENTS_H

#include <cstdint>

#include "common/bitmask.h"
#include "common/types.h"

namespace pra::verify {

/** One DRAM command as the controller issued it. */
struct DramCommandEvent
{
    enum class Kind
    {
        Activate,
        Read,
        Write,
        Precharge,
        Refresh,
        Rfm,     //!< PRAC mitigation (DESIGN.md §13).
    };

    Kind kind;
    Cycle cycle = 0;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint32_t row = 0;
    Addr addr = 0;

    /**
     * ACT: the MAT groups the activation actually opened (post fault
     * injection, if any). Column commands: the words actually driven on
     * the DQ pins (writes) or the full line (reads).
     */
    WordMask mask = WordMask::full();
    /** Column commands: the MAT footprint the request must find open. */
    WordMask need = WordMask::full();

    bool partial = false;     //!< ACT spent the extra PRA-mask cycle.
    bool forWrite = false;    //!< ACT triggered by / column is a write.
    unsigned granularity = 0; //!< ACT granularity the controller charged.
    double weight = 0.0;      //!< ACT tFAW/tRRD weight charged.

    /**
     * PRAC accounting facts (zero unless pracEnabled). ACT and RFM
     * report the controller's post-command tracked-count sum for the
     * rank; RFM additionally reports the count the mitigation cleared.
     * The auditor replays its own CAM from the raw command stream and
     * checks the conservation identity against these.
     */
    std::uint64_t pracTracked = 0;
    std::uint64_t pracCleared = 0;
};

/** A write transaction entering a controller write queue (pre-combine). */
struct WriteQueueEvent
{
    Cycle cycle = 0;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint32_t row = 0;
    Addr addr = 0;
    WordMask mask = WordMask::full();  //!< FGD dirty-word (PRA) mask.
    std::uint8_t chipMask = 0xff;      //!< SDS chip-access mask.
};

/** A line leaving the cache hierarchy toward DRAM. */
struct WritebackEvent
{
    Addr addr = 0;
    ByteMask dirty;            //!< FGD byte-granularity dirty bits.
    WordMask pra;              //!< PRA mask the hierarchy attached.
};

} // namespace pra::verify

#endif // PRA_VERIFY_EVENTS_H
