/**
 * @file
 * Simulation-wide invariant auditor.
 *
 * A second, independently written implementation of the paper's
 * *semantics* (where dram::TimingChecker is a second implementation of
 * the DDR3 *timing*). The auditor observes raw events from every layer —
 * write-queue admissions, DRAM commands, cache writebacks, fast-path
 * transitions — keeps its own shadow state, and checks a registry of
 * named cross-layer invariants:
 *
 *  - dram.act.read-full-row      reads always activate the full row;
 *  - dram.act.mask-conformance   every partial ACT's mask equals the
 *                                union of dirty-word MAT groups of the
 *                                queued writes it serves (granularity,
 *                                mask-cycle flag and tFAW weight too);
 *  - dram.col.within-open-mask   no column command touches a MAT group
 *                                outside the open activation's mask;
 *  - dram.shadow.row-state       commands are legal against the shadow
 *                                bank/queue state (ACT to closed banks,
 *                                columns to the open row, ...);
 *  - cache.wb.mask-exact         a writeback's PRA mask is exactly the
 *                                word-collapse of its FGD dirty bytes,
 *                                and the line is clean everywhere once
 *                                the writeback is emitted;
 *  - cache.dirty-inclusion       L1 dirty lines are resident in the
 *                                (inclusive) L2; the DBI tracks exactly
 *                                the dirty L2 lines (sampled scan);
 *  - power.event-conservation    per-command energy events sum to the
 *                                aggregate PowerModel totals (counts
 *                                exactly; windowed energy within 1 ulp
 *                                per window);
 *  - fastpath.skip-quiescent     cycle-skip windows are command-free
 *                                when replayed through the slow path
 *                                (PRA_AUDIT_REPLAY=1);
 *  - fastpath.fork-fingerprint   warm-snapshot exports/forks replicate
 *                                the hierarchy state bit-exactly
 *                                (PRA_AUDIT_REPLAY=1);
 *  - fastpath.event-wake-sound   scheduling rounds the event engine's
 *                                wake-up heap declared quiet do nothing
 *                                when forced to run anyway
 *                                (PRA_AUDIT_REPLAY=1);
 *  - dram.prac.count-conservation
 *                                the controller's PRAC activation
 *                                counters are conservation-exact: its
 *                                reported tracked-count sum equals the
 *                                replayed-CAM sum, which by construction
 *                                equals ACTs counted minus counts
 *                                mitigated (pracEnabled only).
 *
 * Attachment mirrors DramConfig::enableChecker: set
 * sim::SystemConfig::enableAudit (or export PRA_AUDIT=1, which also
 * turns violations into an abort with a full report). Per-event checks
 * always run; the cache coherence scan is sampled at a configurable
 * stride (denser in debug builds). On the first violation the auditor
 * snapshots a ring buffer of the last commands/events, and report()
 * renders it with the config fingerprint so the failure is reproducible
 * from the report alone.
 */
#ifndef PRA_VERIFY_AUDITOR_H
#define PRA_VERIFY_AUDITOR_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitmask.h"
#include "common/types.h"
#include "core/scheme.h"
#include "power/power_model.h"
#include "verify/events.h"

namespace pra::cache {
class Hierarchy;
}

namespace pra::verify {

/**
 * The configuration slice the auditor needs to re-derive expectations.
 * Built by the attaching layer (sim::System or a test) from its own
 * config so the auditor does not depend on dram:: headers.
 */
struct AuditConfig
{
    /** Scheme under audit (registry singleton; never null once set). */
    const SchemeModel *scheme = &baselineScheme();
    bool mergeWriteMasks = true;
    bool weightedActWindow = true;
    unsigned minActGranularity = 1;

    unsigned channels = 1;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;

    power::PowerParams power{};
    unsigned chipsPerRank = 8;
    unsigned eccChipsPerRank = 0;

    // PRAC (DramConfig::pracEnabled &c.); the auditor replays its own
    // tag-CAM from the raw command stream and checks conservation.
    bool pracEnabled = false;
    unsigned pracThreshold = 512;
    unsigned pracCamEntries = 8;

    /** Coherence-scan stride in accesses; 0 = auto (denser in debug). */
    unsigned scanStride = 0;
    /** FNV-1a of the canonical config, echoed in every report. */
    std::uint64_t configFingerprint = 0;
};

/** Named invariants checked by the auditor (see file header). */
enum class Invariant
{
    ReadFullRow,
    ActMaskConformance,
    ColumnWithinMask,
    ShadowRowState,
    WritebackMaskExact,
    DirtyInclusion,
    EnergyConservation,
    SkipQuiescent,
    ForkFingerprint,
    EventWakeSound,
    PracConservation,
    Count_,
};

/** Per-invariant bookkeeping surfaced by report(). */
struct InvariantStats
{
    const char *name = "";
    const char *what = "";
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
};

/** The cross-layer invariant auditor (one per simulated system). */
class Auditor
{
  public:
    explicit Auditor(const AuditConfig &cfg);

    /** Enable the cache-side invariants (optional; may be null). */
    void attachHierarchy(const cache::Hierarchy *hier) { hier_ = hier; }

    // --- Event intake -------------------------------------------------
    void onWriteEnqueue(const WriteQueueEvent &ev);
    void onCommand(const DramCommandEvent &ev);
    void onWriteback(const WritebackEvent &ev);
    /** One core access completed; samples the coherence scan. */
    void onCacheAccess();

    // --- Fast-path equivalence (PRA_AUDIT_REPLAY=1) -------------------
    /** A cycle-skip window [from, to) is being replayed tick-by-tick. */
    void beginQuiescentWindow(Cycle from, Cycle to);
    void endQuiescentWindow();
    /**
     * The event engine was forced (replay mode) to run a scheduling
     * round at @p cycle although its published wake-up target was
     * @p wake (> cycle); @p activity reports whether the round issued a
     * command, retired an auto-precharge, or delivered a completion —
     * any of which proves the published wake-up set unsound.
     */
    void onEventRound(Cycle cycle, Cycle wake, bool activity);
    /** Compare a snapshot/fork state fingerprint against its source. */
    void checkFingerprint(const char *what, std::uint64_t expected,
                          std::uint64_t actual);

    /**
     * End-of-run conservation checks against the aggregate counts the
     * power model is evaluated on.
     */
    void finalize(const power::EnergyCounts &aggregate);

    // --- Results ------------------------------------------------------
    bool clean() const { return totalViolations_ == 0; }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    const std::array<InvariantStats,
                     static_cast<std::size_t>(Invariant::Count_)> &
    invariants() const
    {
        return stats_;
    }
    std::uint64_t eventsAudited() const { return events_; }
    std::uint64_t scansRun() const { return scans_; }

    /** Full report: config fingerprint, invariant table, ring buffer. */
    std::string report() const;

    /** PRA_AUDIT=1: audit every System and abort on violations. */
    static bool envEnabled();
    /** PRA_AUDIT_REPLAY=1: replay fast paths through the slow path. */
    static bool envReplay();

  private:
    struct ShadowBank
    {
        bool open = false;
        std::uint32_t row = 0;
        WordMask mask = WordMask::none();
    };

    /** Shadow image of one queued (possibly combined) write. */
    struct ShadowWrite
    {
        Addr addr = 0;
        unsigned rank = 0;
        unsigned bank = 0;
        std::uint32_t row = 0;
        WordMask mask = WordMask::none();
        std::uint8_t chipMask = 0;
    };

    /** One tracked row of the auditor's independent PRAC CAM replica. */
    struct ShadowPracEntry
    {
        std::uint32_t row = 0;
        std::uint32_t count = 0;
    };

    /** Independent PRAC shadow for one rank: per-bank CAM + ledger. */
    struct ShadowPracRank
    {
        std::vector<std::vector<ShadowPracEntry>> cams;  //!< Per bank.
        std::uint64_t acts = 0;        //!< ACTs that must be counted.
        std::uint64_t mitigated = 0;   //!< Counts cleared by RFMs.
    };

    struct ShadowChannel
    {
        std::vector<ShadowBank> banks;
        std::vector<ShadowWrite> writes;   //!< Controller queue order.
        std::vector<ShadowPracRank> prac;  //!< Empty unless pracEnabled.
    };

    /** Compact raw entry for the pre-violation ring buffer. */
    struct RingEntry
    {
        char tag = 0;   //!< A/R/W/P/F command, q enqueue, b writeback.
        Cycle cycle = 0;
        unsigned channel = 0;
        unsigned rank = 0;
        unsigned bank = 0;
        std::uint32_t row = 0;
        Addr addr = 0;
        std::uint8_t mask = 0;
        std::uint8_t need = 0;
        bool partial = false;
    };

    InvariantStats &stat(Invariant inv)
    {
        return stats_[static_cast<std::size_t>(inv)];
    }
    ShadowBank &shadowBank(const DramCommandEvent &ev);

    void fail(Invariant inv, Cycle cycle, const std::string &why);
    void record(const RingEntry &entry);
    std::string formatRing() const;
    void checkActivate(const DramCommandEvent &ev, ShadowChannel &ch);
    void pracCountActivate(const DramCommandEvent &ev, ShadowChannel &ch);
    void pracCheckRfm(const DramCommandEvent &ev, ShadowChannel &ch);
    static std::uint64_t pracTrackedSum(const ShadowPracRank &pr);
    void accountCommandEnergy(const DramCommandEvent &ev);
    void closeEnergyWindow();
    void runCoherenceScan();

    AuditConfig cfg_;
    power::PowerModel model_;
    const cache::Hierarchy *hier_ = nullptr;

    std::vector<ShadowChannel> channels_;

    // Shadow energy accounting (command-driven categories only).
    power::EnergyCounts shadow_{};
    power::EnergyCounts window_{};
    std::uint64_t windowEvents_ = 0;
    std::uint64_t windowsClosed_ = 0;
    double windowEnergySum_ = 0.0;

    // Quiescent-window replay state.
    bool inQuiescentWindow_ = false;
    Cycle windowFrom_ = 0;
    Cycle windowTo_ = 0;

    // Coherence-scan sampling.
    unsigned scanStride_ = 1;
    std::uint64_t accesses_ = 0;
    std::uint64_t scans_ = 0;
    std::size_t l2ScanCursor_ = 0;

    // Ring buffer of recent events; snapshot taken at first violation.
    std::array<RingEntry, 64> ring_{};
    std::size_t ringNext_ = 0;
    std::size_t ringFill_ = 0;
    std::string firstViolationRing_;

    std::array<InvariantStats, static_cast<std::size_t>(Invariant::Count_)>
        stats_{};
    std::vector<std::string> violations_;
    std::uint64_t totalViolations_ = 0;
    std::uint64_t events_ = 0;
};

} // namespace pra::verify

#endif // PRA_VERIFY_AUDITOR_H
