/**
 * @file
 * Workload factory: the paper's eight benchmarks by name, the calibrated
 * SPEC CPU2006 / Olden synthetic presets, and the six multiprogrammed
 * mixes of Table 4.
 */
#ifndef PRA_WORKLOADS_FACTORY_H
#define PRA_WORKLOADS_FACTORY_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cpu/mem_op.h"
#include "workloads/synthetic.h"

namespace pra::workloads {

/** The eight single benchmarks, in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/** Extra server-class workloads beyond the paper's suite. */
const std::vector<std::string> &extendedWorkloadNames();

/** The calibrated synthetic preset for a SPEC/Olden name. */
SyntheticParams presetFor(const std::string &name, std::uint64_t seed);

/**
 * Create a generator for @p name (one of benchmarkNames()). @p seed
 * decorrelates multiple instances of the same benchmark in rate mode.
 */
std::unique_ptr<cpu::Generator> makeGenerator(const std::string &name,
                                              std::uint64_t seed = 1);

/** One multiprogrammed workload (Table 4). */
struct Mix
{
    std::string name;
    std::array<std::string, 4> apps;
};

/** MIX1..MIX6 from Table 4. */
const std::vector<Mix> &mixes();

/**
 * All 14 evaluated workloads: the eight benchmarks as four identical
 * instances ("rate mode") followed by MIX1..MIX6.
 */
std::vector<Mix> allWorkloads();

} // namespace pra::workloads

#endif // PRA_WORKLOADS_FACTORY_H
