/**
 * @file
 * Parameterized synthetic memory-traffic generator.
 *
 * SPEC CPU2006 SimPoint traces are proprietary, so the five SPEC
 * workloads of the paper (bzip2, lbm, libquantum, mcf, omnetpp) are
 * modeled by this generator, calibrated per benchmark to the published
 * statistics that drive every PRA result:
 *
 *  - memory intensity        (gap between memory instructions),
 *  - read/write traffic mix  (Table 1 "Memory traffic"),
 *  - row-buffer locality     (Table 1 hit rates; sequential run lengths),
 *  - dirty words per line    (Figure 3 distribution),
 *  - pointer-chase fraction  (load serialization; latency sensitivity).
 *
 * The generator walks a large region (far beyond the 4 MB LLC) with
 * sequential runs of geometrically distributed length, mixes in random
 * jumps, and issues stores either read-modify-write style to the most
 * recently loaded line or to an independent store stream.
 */
#ifndef PRA_WORKLOADS_SYNTHETIC_H
#define PRA_WORKLOADS_SYNTHETIC_H

#include <array>
#include <string>

#include "common/rng.h"
#include "cpu/mem_op.h"

namespace pra::workloads {

/** Calibration knobs for one synthetic benchmark model. */
struct SyntheticParams
{
    std::string name = "synthetic";
    double gapMean = 30.0;    //!< Mean non-memory instructions per op.
    double pWrite = 0.3;      //!< Store probability.
    Addr regionBytes = 512ull << 20;   //!< Working set (>> LLC).
    /**
     * Mean sequential run length in lines. Runs stay inside one DRAM
     * row, so longer runs raise the row-buffer hit rate.
     */
    double runMeanLines = 1.0;
    /** Store targets the most recently loaded line (RMW style). */
    double pRmw = 1.0;
    /**
     * Mean run length of the independent store stream; 0 means "same as
     * runMeanLines". Long store runs give the writeback stream DRAM row
     * locality (lbm-style streaming stores).
     */
    double storeRunMeanLines = 0.0;
    /** Load depends on prior load (pointer chase; serializes). */
    double pSerializing = 0.0;
    /**
     * Distribution of dirty word count per stored line: weight of k+1
     * dirty words at index k (need not be normalized).
     */
    std::array<double, 8> dirtyWords{1, 0, 0, 0, 0, 0, 0, 0};
    /**
     * Distribution of changed-byte width within each dirty word
     * (weights for 1, 2, 4, and 8 bytes). Small integer updates leave
     * the word's high bytes untouched, which is exactly what the
     * Skinflint (SDS) comparator exploits; PRA is insensitive to it.
     */
    std::array<double, 4> narrowBytes{0.30, 0.30, 0.20, 0.20};
    std::uint64_t seed = 1;
};

/** The synthetic generator. */
class Synthetic : public cpu::Generator
{
  public:
    explicit Synthetic(const SyntheticParams &params);

    cpu::MemOp next() override;
    const char *name() const override { return params_.name.c_str(); }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<Synthetic>(*this);
    }

    const SyntheticParams &params() const { return params_; }

  private:
    Addr randomLine();
    unsigned sampleGap();
    unsigned sampleDirtyWords();
    unsigned sampleByteWidth();

    SyntheticParams params_;
    Rng rng_;
    double dirtyTotal_ = 0.0;

    Addr cursor_ = 0;        //!< Current sequential read position.
    unsigned runLeft_ = 0;   //!< Lines remaining in the current run.
    Addr lastLoaded_ = 0;    //!< For RMW stores.
    Addr storeCursor_ = 0;   //!< Independent store stream position.
    unsigned storeRunLeft_ = 0;
};

} // namespace pra::workloads

#endif // PRA_WORKLOADS_SYNTHETIC_H
