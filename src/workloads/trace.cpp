#include "workloads/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pra::workloads {

bool
parseTraceLine(const std::string &line, cpu::MemOp &op)
{
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    const std::string body =
        hash == std::string::npos ? line : line.substr(0, hash);
    std::istringstream is(body);

    unsigned gap = 0;
    std::string kind;
    if (!(is >> gap >> kind))
        return false;   // Blank or comment line.

    op = cpu::MemOp{};
    op.gap = gap;
    std::string addr_hex;
    if (!(is >> addr_hex))
        throw std::runtime_error("trace line missing address: " + line);
    op.addr = std::stoull(addr_hex, nullptr, 16);

    if (kind == "R") {
        // Plain load.
    } else if (kind == "S") {
        op.serializing = true;
    } else if (kind == "W") {
        op.isWrite = true;
        std::string mask_hex;
        if (!(is >> mask_hex))
            throw std::runtime_error("store missing byte mask: " + line);
        op.bytes = ByteMask(std::stoull(mask_hex, nullptr, 16));
        if (op.bytes.empty())
            throw std::runtime_error("store with empty byte mask: " +
                                     line);
    } else {
        throw std::runtime_error("unknown trace op '" + kind + "'");
    }
    return true;
}

std::string
formatTraceLine(const cpu::MemOp &op)
{
    std::ostringstream os;
    os << op.gap << ' ';
    if (op.isWrite)
        os << "W ";
    else
        os << (op.serializing ? "S " : "R ");
    os << std::hex << op.addr;
    if (op.isWrite)
        os << ' ' << op.bytes.bits();
    return os.str();
}

std::vector<cpu::MemOp>
readTrace(std::istream &in)
{
    std::vector<cpu::MemOp> ops;
    std::string line;
    while (std::getline(in, line)) {
        cpu::MemOp op;
        if (parseTraceLine(line, op))
            ops.push_back(op);
    }
    return ops;
}

void
writeTrace(std::ostream &out, const std::vector<cpu::MemOp> &ops)
{
    out << "# pra-dram memory trace: <gap> R|S|W <addr> [bytemask]\n";
    for (const auto &op : ops)
        out << formatTraceLine(op) << '\n';
}

std::vector<cpu::MemOp>
recordTrace(cpu::Generator &gen, std::size_t count)
{
    std::vector<cpu::MemOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        ops.push_back(gen.next());
    return ops;
}

TraceGenerator::TraceGenerator(std::vector<cpu::MemOp> ops,
                               std::string name)
    : ops_(std::move(ops)), name_(std::move(name))
{
    if (ops_.empty())
        throw std::invalid_argument("empty trace");
}

TraceGenerator
TraceGenerator::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open trace file " + path);
    return TraceGenerator(readTrace(in), path);
}

cpu::MemOp
TraceGenerator::next()
{
    const cpu::MemOp op = ops_[pos_];
    pos_ = (pos_ + 1) % ops_.size();
    return op;
}

} // namespace pra::workloads
