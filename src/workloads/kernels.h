/**
 * @file
 * Algorithmic microbenchmark kernels used by the paper: GUPS (random
 * table update), LinkedList (pointer-chase), and em3d (Olden;
 * bipartite-graph relaxation). Unlike the synthetic SPEC models, these
 * produce their address streams mechanically from the actual algorithm
 * over synthetic data structures, so their memory characteristics (poor
 * locality, ~50/50 read-write traffic, single dirty word per line) are
 * emergent rather than calibrated.
 */
#ifndef PRA_WORKLOADS_KERNELS_H
#define PRA_WORKLOADS_KERNELS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "cpu/mem_op.h"

namespace pra::workloads {

/**
 * GUPS: read-modify-write of a random 8-byte element of a giant table.
 * Each update loads the element's line, then stores one word back —
 * a dirty mask of exactly one word, with no spatial locality.
 */
class Gups : public cpu::Generator
{
  public:
    explicit Gups(Addr table_bytes = 1ull << 28, unsigned gap = 12,
                  std::uint64_t seed = 7);

    cpu::MemOp next() override;
    const char *name() const override { return "GUPS"; }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<Gups>(*this);
    }

  private:
    Addr tableBytes_;
    unsigned gap_;
    Rng rng_;
    bool pendingStore_ = false;
    Addr current_ = 0;
};

/**
 * LinkedList: Zilles-style list traversal. Nodes are one cache line and
 * are linked in a random permutation, so every hop is a dependent
 * (serializing) load to an unpredictable line; a fraction of visits
 * stores one payload word into the node.
 */
class LinkedList : public cpu::Generator
{
  public:
    explicit LinkedList(std::size_t nodes = 1u << 21, unsigned gap = 20,
                        double store_fraction = 0.55,
                        std::uint64_t seed = 11);

    cpu::MemOp next() override;
    const char *name() const override { return "LinkedList"; }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<LinkedList>(*this);
    }

  private:
    std::vector<std::uint32_t> nextIndex_;  //!< Random cycle permutation.
    unsigned gap_;
    double storeFraction_;
    Rng rng_;
    std::uint32_t current_ = 0;
    bool pendingStore_ = false;
};

/**
 * em3d (Olden): electromagnetic wave propagation on a bipartite graph.
 * Each step visits a node (64 B apart, in shuffled order), loads one
 * in-edge neighbor value from the opposite partition, and stores the
 * recomputed value (one word) into the node.
 */
class Em3d : public cpu::Generator
{
  public:
    explicit Em3d(std::size_t nodes = 1u << 21, unsigned gap = 14,
                  std::uint64_t seed = 23);

    cpu::MemOp next() override;
    const char *name() const override { return "em3d"; }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<Em3d>(*this);
    }

  private:
    std::size_t nodes_;
    unsigned gap_;
    Rng rng_;
    std::vector<std::uint32_t> visitOrder_;
    std::size_t pos_ = 0;
    unsigned phase_ = 0;     //!< 0: load neighbor, 1: store node.
    std::uint32_t node_ = 0;
};

} // namespace pra::workloads

#endif // PRA_WORKLOADS_KERNELS_H
