#include "workloads/factory.h"

#include <stdexcept>

#include "workloads/kernels.h"
#include "workloads/server.h"

namespace pra::workloads {

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "lbm", "libquantum", "mcf",
        "omnetpp", "em3d", "GUPS", "LinkedList",
    };
    return names;
}

const std::vector<std::string> &
extendedWorkloadNames()
{
    static const std::vector<std::string> names = {"stream", "kvstore"};
    return names;
}

SyntheticParams
presetFor(const std::string &name, std::uint64_t seed)
{
    SyntheticParams p;
    p.name = name;
    p.seed = seed;
    if (name == "bzip2") {
        // Compute-bound: modest traffic, moderate read locality, RMW
        // stores, mostly 1-2 dirty words (Table 1: 32/1 hit, 69/31 mix).
        p.gapMean = 60.0;
        p.pWrite = 0.36;
        p.runMeanLines = 2.6;
        p.pRmw = 1.0;
        p.pSerializing = 0.1;
        p.dirtyWords = {0.80, 0.10, 0.04, 0.02, 0.01, 0.0, 0.0, 0.03};
    } else if (name == "lbm") {
        // Streaming stencil: heavy traffic, multi-word dirty lines,
        // independent store stream (Table 1: 29/18 hit, 57/43 mix).
        p.gapMean = 18.0;
        p.pWrite = 0.52;
        p.runMeanLines = 1.2;
        p.pRmw = 0.35;
        p.storeRunMeanLines = 14.0;
        p.pSerializing = 0.0;
        p.dirtyWords = {0.50, 0.18, 0.09, 0.05, 0.03, 0.02, 0.03, 0.10};
    } else if (name == "libquantum") {
        // Long vector streams: highest row locality of the suite
        // (Table 1: 73/48 hit, 66/34 mix).
        p.gapMean = 16.0;
        p.pWrite = 0.45;
        p.runMeanLines = 24.0;
        p.pRmw = 1.0;
        p.pSerializing = 0.0;
        p.dirtyWords = {0.90, 0.08, 0.0, 0.0, 0.0, 0.0, 0.0, 0.02};
    } else if (name == "mcf") {
        // Pointer-heavy random reads, few writes
        // (Table 1: 18/1 hit, 79/21 mix).
        p.gapMean = 25.0;
        p.pWrite = 0.25;
        p.runMeanLines = 1.7;
        p.pRmw = 1.0;
        p.pSerializing = 0.5;
        p.dirtyWords = {0.88, 0.08, 0.0, 0.0, 0.0, 0.0, 0.0, 0.04};
    } else if (name == "omnetpp") {
        // Discrete-event simulator: scattered heap traffic
        // (Table 1: 47/2 hit, 71/29 mix).
        p.gapMean = 30.0;
        p.pWrite = 0.33;
        p.runMeanLines = 3.4;
        p.pRmw = 1.0;
        p.pSerializing = 0.3;
        p.dirtyWords = {0.78, 0.12, 0.05, 0.02, 0.0, 0.0, 0.0, 0.03};
    } else {
        throw std::invalid_argument("no synthetic preset for " + name);
    }
    return p;
}

std::unique_ptr<cpu::Generator>
makeGenerator(const std::string &name, std::uint64_t seed)
{
    if (name == "GUPS")
        return std::make_unique<Gups>(1ull << 28, 12, seed * 2654435761u + 7);
    if (name == "LinkedList") {
        return std::make_unique<LinkedList>(1u << 21, 20, 0.55,
                                            seed * 2654435761u + 11);
    }
    if (name == "em3d") {
        return std::make_unique<Em3d>(1u << 21, 14,
                                      seed * 2654435761u + 23);
    }
    if (name == "stream") {
        return std::make_unique<Stream>(256ull << 20, 6,
                                        seed * 2654435761u + 41);
    }
    if (name == "kvstore") {
        // Session-store style: 75/25 read/update mix.
        return std::make_unique<KvStore>(1ull << 30, 0.25, 30,
                                         seed * 2654435761u + 43);
    }
    return std::make_unique<Synthetic>(presetFor(name, seed));
}

const std::vector<Mix> &
mixes()
{
    static const std::vector<Mix> table4 = {
        {"MIX1", {"bzip2", "lbm", "libquantum", "omnetpp"}},
        {"MIX2", {"mcf", "em3d", "GUPS", "LinkedList"}},
        {"MIX3", {"bzip2", "mcf", "lbm", "em3d"}},
        {"MIX4", {"libquantum", "GUPS", "omnetpp", "LinkedList"}},
        {"MIX5", {"bzip2", "LinkedList", "lbm", "GUPS"}},
        {"MIX6", {"libquantum", "em3d", "omnetpp", "mcf"}},
    };
    return table4;
}

std::vector<Mix>
allWorkloads()
{
    std::vector<Mix> all;
    for (const auto &name : benchmarkNames())
        all.push_back({name, {name, name, name, name}});
    for (const auto &mix : mixes())
        all.push_back(mix);
    return all;
}

} // namespace pra::workloads
