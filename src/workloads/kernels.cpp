#include "workloads/kernels.h"

#include <numeric>

namespace pra::workloads {

// --------------------------------------------------------------------- GUPS

Gups::Gups(Addr table_bytes, unsigned gap, std::uint64_t seed)
    : tableBytes_(table_bytes), gap_(gap), rng_(seed)
{
}

cpu::MemOp
Gups::next()
{
    cpu::MemOp op;
    if (pendingStore_) {
        // t[i] ^= v: one-word store to the line just loaded.
        pendingStore_ = false;
        op.gap = 1;
        op.isWrite = true;
        op.addr = current_;
        op.bytes = ByteMask::word(wordInLine(current_));
        return op;
    }
    const Addr words = tableBytes_ / kBytesPerWord;
    current_ = rng_.below(words) * kBytesPerWord;
    op.gap = gap_;
    op.isWrite = false;
    op.addr = current_;
    pendingStore_ = true;
    return op;
}

// --------------------------------------------------------------- LinkedList

LinkedList::LinkedList(std::size_t nodes, unsigned gap,
                       double store_fraction, std::uint64_t seed)
    : gap_(gap), storeFraction_(store_fraction), rng_(seed)
{
    // Sattolo's algorithm: a single random cycle through all nodes.
    nextIndex_.resize(nodes);
    std::iota(nextIndex_.begin(), nextIndex_.end(), 0u);
    for (std::size_t i = nodes - 1; i > 0; --i) {
        const std::size_t j = rng_.below(i);
        std::swap(nextIndex_[i], nextIndex_[j]);
    }
}

cpu::MemOp
LinkedList::next()
{
    cpu::MemOp op;
    const Addr node_addr = static_cast<Addr>(current_) * kLineBytes;
    if (pendingStore_) {
        // Payload update: a 32-bit counter in the node — the word is
        // dirty for PRA, but only its low bytes change (SDS-visible).
        pendingStore_ = false;
        op.gap = 2;
        op.isWrite = true;
        op.addr = node_addr + kBytesPerWord;
        op.bytes = ByteMask::range(kBytesPerWord, 4);
        return op;
    }
    // p = p->next: dependent load of the node's first word.
    op.gap = gap_;
    op.isWrite = false;
    op.addr = node_addr;
    op.serializing = true;
    pendingStore_ = rng_.chance(storeFraction_);
    current_ = nextIndex_[current_];
    return op;
}

// --------------------------------------------------------------------- em3d

Em3d::Em3d(std::size_t nodes, unsigned gap, std::uint64_t seed)
    : nodes_(nodes), gap_(gap), rng_(seed)
{
    // Nodes are visited in shuffled order, as the Olden allocator
    // interleaves E and H nodes across the heap.
    visitOrder_.resize(nodes_);
    std::iota(visitOrder_.begin(), visitOrder_.end(), 0u);
    for (std::size_t i = nodes_ - 1; i > 0; --i) {
        const std::size_t j = rng_.below(i + 1);
        std::swap(visitOrder_[i], visitOrder_[j]);
    }
}

cpu::MemOp
Em3d::next()
{
    // The opposite-partition neighbor values live in a compact region
    // that largely fits in the LLC, so DRAM traffic is dominated by the
    // node sweep: fetch-on-store plus the eventual dirty writeback.
    constexpr Addr kNeighborRegion = 512ull << 10;

    cpu::MemOp op;
    const std::uint32_t node = visitOrder_[pos_];
    const Addr node_addr =
        (1ull << 30) + static_cast<Addr>(node) * kLineBytes;

    if (phase_ == 0) {
        // value += coeff * from_node->value
        op.gap = gap_;
        op.isWrite = false;
        op.addr = rng_.below(kNeighborRegion / kLineBytes) * kLineBytes;
        phase_ = 1;
        return op;
    }

    op.gap = 3;
    op.isWrite = true;
    op.addr = node_addr;
    op.bytes = ByteMask::word(0);
    phase_ = 0;
    pos_ = (pos_ + 1) % nodes_;
    return op;
}

} // namespace pra::workloads
