#include "workloads/server.h"

#include <cmath>

namespace pra::workloads {

Stream::Stream(Addr array_bytes, unsigned gap, std::uint64_t seed)
    : arrayBytes_(array_bytes), gap_(gap), rng_(seed)
{
    // Stagger instances so rate-mode copies do not walk the shared LLC
    // in lockstep (which would alias every core's lines onto the same
    // sets).
    pos_ = (seed * 7919) % (arrayBytes_ / kBytesPerWord);
}

cpu::MemOp
Stream::next()
{
    // Arrays a, b, c are laid out back to back; the kernel walks them
    // word by word: every line is read (b, c) or written (a) in full.
    const Addr word_off = (pos_ * kBytesPerWord) % arrayBytes_;
    cpu::MemOp op;
    op.gap = gap_;
    switch (phase_) {
      case 0:   // load b[i]
        op.addr = arrayBytes_ + word_off;
        phase_ = 1;
        break;
      case 1:   // load c[i]
        op.addr = 2 * arrayBytes_ + word_off;
        phase_ = 2;
        break;
      default:  // store a[i]
        op.isWrite = true;
        op.addr = word_off;
        op.bytes = ByteMask::word(wordInLine(word_off));
        phase_ = 0;
        ++pos_;
        break;
    }
    return op;
}

KvStore::KvStore(Addr heap_bytes, double update_fraction, unsigned gap,
                 std::uint64_t seed)
    : heapBytes_(heap_bytes), updateFraction_(update_fraction),
      gap_(gap), rng_(seed)
{
}

Addr
KvStore::recordAddr()
{
    // Zipf-ish skew: cubing a uniform sample concentrates accesses on a
    // hot prefix of the record heap (the classic YCSB hot-set shape).
    const double u = rng_.uniform();
    const double skewed = u * u * u;
    const Addr lines = heapBytes_ / kLineBytes;
    const Addr line = static_cast<Addr>(skewed * static_cast<double>(lines));
    return (line % lines) * kLineBytes;
}

cpu::MemOp
KvStore::next()
{
    cpu::MemOp op;
    if (hasPending_) {
        // Update one field (timestamp/counter) of the record just read.
        hasPending_ = false;
        op.gap = 4;
        op.isWrite = true;
        op.addr = pendingUpdate_;
        op.bytes = ByteMask::range(byteInLine(pendingUpdate_), 4);
        return op;
    }
    const Addr rec = recordAddr();
    op.gap = gap_;
    op.addr = rec;
    if (rng_.chance(updateFraction_)) {
        pendingUpdate_ = rec + 2 * kBytesPerWord;   // Value field.
        hasPending_ = true;
    }
    return op;
}

} // namespace pra::workloads
