/**
 * @file
 * Memory-trace recording and replay.
 *
 * The paper drove its platform with SPEC CPU2006 SimPoint traces; those
 * are proprietary, but the trace layer makes them pluggable: any
 * instruction-level memory trace in the simple text format below can be
 * replayed through the full platform in place of a synthetic generator,
 * and any generator can be recorded to a file for inspection or reuse.
 *
 * Format — one operation per line, '#' comments allowed:
 *
 *     <gap> R <hex addr>              # load
 *     <gap> S <hex addr>              # serializing (dependent) load
 *     <gap> W <hex addr> <hex bytemask>  # store with 64-bit dirty mask
 *
 * where <gap> is the number of non-memory instructions preceding the
 * operation.
 */
#ifndef PRA_WORKLOADS_TRACE_H
#define PRA_WORKLOADS_TRACE_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cpu/mem_op.h"

namespace pra::workloads {

/** Parse one trace line; returns false for blank/comment lines. */
bool parseTraceLine(const std::string &line, cpu::MemOp &op);

/** Format @p op as one trace line. */
std::string formatTraceLine(const cpu::MemOp &op);

/** Read a whole trace from a stream (throws on malformed lines). */
std::vector<cpu::MemOp> readTrace(std::istream &in);

/** Write @p ops to a stream in trace format. */
void writeTrace(std::ostream &out, const std::vector<cpu::MemOp> &ops);

/** Record @p count operations from @p gen. */
std::vector<cpu::MemOp> recordTrace(cpu::Generator &gen,
                                    std::size_t count);

/**
 * Generator that replays a recorded trace, looping when it reaches the
 * end (simulations run for a fixed instruction count, so the trace must
 * be effectively infinite).
 */
class TraceGenerator : public cpu::Generator
{
  public:
    TraceGenerator(std::vector<cpu::MemOp> ops, std::string name);

    /** Load from a trace file on disk. */
    static TraceGenerator fromFile(const std::string &path);

    cpu::MemOp next() override;
    const char *name() const override { return name_.c_str(); }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<TraceGenerator>(*this);
    }

    std::size_t size() const { return ops_.size(); }

  private:
    std::vector<cpu::MemOp> ops_;
    std::string name_;
    std::size_t pos_ = 0;
};

} // namespace pra::workloads

#endif // PRA_WORKLOADS_TRACE_H
