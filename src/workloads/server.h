/**
 * @file
 * Server/datacenter workload models beyond the paper's suite — the
 * traffic classes its introduction motivates (servers and datacenters
 * where DRAM is 25–57 % of system power). Two extremes for PRA:
 *
 *  - Stream: STREAM-triad style copy/scale kernels. Sequential, fully
 *    dirty lines — maximal row locality, nothing for PRA to trim.
 *  - KvStore: YCSB-like key-value serving. Skewed random reads with a
 *    small fraction of small-value updates — minimal locality, one
 *    dirty word per update: PRA's best case.
 */
#ifndef PRA_WORKLOADS_SERVER_H
#define PRA_WORKLOADS_SERVER_H

#include <memory>

#include "common/rng.h"
#include "cpu/mem_op.h"

namespace pra::workloads {

/** STREAM-triad style kernel: a[i] = b[i] + s * c[i], sequential. */
class Stream : public cpu::Generator
{
  public:
    explicit Stream(Addr array_bytes = 256ull << 20, unsigned gap = 6,
                    std::uint64_t seed = 41);

    cpu::MemOp next() override;
    const char *name() const override { return "stream"; }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<Stream>(*this);
    }

  private:
    Addr arrayBytes_;
    unsigned gap_;
    Rng rng_;
    Addr pos_ = 0;     //!< Word index into the arrays.
    unsigned phase_ = 0; //!< 0: load b, 1: load c, 2: store a.
};

/**
 * YCSB-style key-value store: zipf-skewed point reads over a large
 * record heap; a configurable fraction of operations update one small
 * field of the record.
 */
class KvStore : public cpu::Generator
{
  public:
    KvStore(Addr heap_bytes = 1ull << 30, double update_fraction = 0.05,
            unsigned gap = 40, std::uint64_t seed = 43);

    cpu::MemOp next() override;
    const char *name() const override { return "kvstore"; }
    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<KvStore>(*this);
    }

  private:
    Addr recordAddr();

    Addr heapBytes_;
    double updateFraction_;
    unsigned gap_;
    Rng rng_;
    Addr pendingUpdate_ = 0;
    bool hasPending_ = false;
};

} // namespace pra::workloads

#endif // PRA_WORKLOADS_SERVER_H
