#include "workloads/synthetic.h"

#include <cmath>

namespace pra::workloads {

Synthetic::Synthetic(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    for (double w : params_.dirtyWords)
        dirtyTotal_ += w;
    cursor_ = randomLine();
    storeCursor_ = randomLine();
}

Addr
Synthetic::randomLine()
{
    const Addr lines = params_.regionBytes / kLineBytes;
    return rng_.below(lines) * kLineBytes;
}

unsigned
Synthetic::sampleGap()
{
    // Geometric-ish gap with the configured mean.
    if (params_.gapMean <= 0.0)
        return 0;
    const double u = rng_.uniform();
    const double g = -params_.gapMean * std::log(1.0 - u);
    return static_cast<unsigned>(std::min(g, 100000.0));
}

unsigned
Synthetic::sampleByteWidth()
{
    static constexpr unsigned kWidths[4] = {1, 2, 4, 8};
    double total = 0.0;
    for (double w : params_.narrowBytes)
        total += w;
    double pick = rng_.uniform() * total;
    for (unsigned i = 0; i < 4; ++i) {
        pick -= params_.narrowBytes[i];
        if (pick <= 0.0)
            return kWidths[i];
    }
    return 8;
}

unsigned
Synthetic::sampleDirtyWords()
{
    double pick = rng_.uniform() * dirtyTotal_;
    for (unsigned k = 0; k < 8; ++k) {
        pick -= params_.dirtyWords[k];
        if (pick <= 0.0)
            return k + 1;
    }
    return 8;
}

cpu::MemOp
Synthetic::next()
{
    cpu::MemOp op;
    op.gap = sampleGap();
    op.isWrite = rng_.chance(params_.pWrite);

    if (op.isWrite) {
        Addr line;
        if (rng_.chance(params_.pRmw) && lastLoaded_ != 0) {
            line = lastLoaded_;
        } else {
            // Independent store stream with the same run structure.
            if (storeRunLeft_ > 0) {
                storeCursor_ += kLineBytes;
                if (storeCursor_ >= params_.regionBytes)
                    storeCursor_ = 0;
                --storeRunLeft_;
            } else {
                storeCursor_ = randomLine();
                const double mean = params_.storeRunMeanLines > 0.0
                                        ? params_.storeRunMeanLines
                                        : params_.runMeanLines;
                if (mean > 1.0) {
                    storeRunLeft_ = static_cast<unsigned>(
                        -(mean - 1.0) * std::log(1.0 - rng_.uniform()));
                }
            }
            line = storeCursor_;
        }
        const unsigned k = sampleDirtyWords();
        // The dirty footprint position is a deterministic hash of the
        // line, so repeated stores to one line overwrite the same field
        // (as real code does) instead of spreading dirtiness.
        const unsigned start =
            k >= kWordsPerLine
                ? 0
                : static_cast<unsigned>((line >> 6) * 0x9e3779b97f4a7c15ull
                                        >> 61) %
                      (kWordsPerLine - k + 1);
        const unsigned width = sampleByteWidth();
        ByteMask bytes;
        for (unsigned w = 0; w < k; ++w)
            bytes |= ByteMask::range((start + w) * kBytesPerWord, width);
        op.addr = line;
        op.bytes = bytes;
        return op;
    }

    // Load: continue the sequential run or jump.
    if (runLeft_ > 0) {
        cursor_ += kLineBytes;
        if (cursor_ >= params_.regionBytes)
            cursor_ = 0;
        --runLeft_;
    } else {
        cursor_ = randomLine();
        if (params_.runMeanLines > 1.0) {
            runLeft_ = static_cast<unsigned>(
                -(params_.runMeanLines - 1.0) *
                std::log(1.0 - rng_.uniform()));
        }
    }
    op.addr = cursor_;
    op.serializing = rng_.chance(params_.pSerializing);
    lastLoaded_ = cursor_;
    return op;
}

} // namespace pra::workloads
