#include "dram/bank_engine.h"

namespace pra::dram {

BankEngine::BankEngine(const DramConfig &cfg) : cfg_(&cfg)
{
    ranks_.reserve(cfg.ranksPerChannel);
    for (unsigned r = 0; r < cfg.ranksPerChannel; ++r)
        ranks_.emplace_back(cfg, r);
    bankInfo_.resize(cfg.ranksPerChannel * cfg.banksPerRank);
}

void
BankEngine::recountOpenRowMatches(unsigned r, unsigned b,
                                  std::deque<Request> &readQ,
                                  std::deque<Request> &writeQ)
{
    BankInfo &bi = info(r, b);
    bi.openRowMatches = 0;
    if (!bank(r, b).isOpen())
        return;
    auto count = [&](std::deque<Request> &q) {
        for (auto &req : q) {
            if (req.loc.rank == r && req.loc.bank == b &&
                probe(req) == RowProbe::Hit) {
                ++bi.openRowMatches;
            }
        }
    };
    count(readQ);
    count(writeQ);
}

void
BankEngine::fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const
{
    for (const Rank &r : ranks_)
        r.fingerprint(h, now, horizon);
    for (const BankInfo &bi : bankInfo_) {
        h.add(bi.queued);
        h.add(bi.openRowMatches);
    }
}

} // namespace pra::dram
