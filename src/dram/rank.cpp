#include "dram/rank.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pra::dram {

Rank::Rank(const DramConfig &cfg, unsigned index) : cfg_(&cfg)
{
    const TimingTables tables = TimingTables::build(cfg);
    t_ = tables.rank;
    banks_.reserve(cfg.banksPerRank);
    for (unsigned b = 0; b < cfg.banksPerRank; ++b)
        banks_.emplace_back(tables.bank);
    // Stagger refresh deadlines across ranks so they do not refresh in
    // lockstep (matches real controller practice).
    nextRefresh_ = t_.refreshInterval +
                   index * (t_.refreshInterval / (cfg.ranksPerChannel + 1));
}

bool
Rank::allBanksClosed() const
{
    return std::none_of(banks_.begin(), banks_.end(),
                        [](const Bank &b) { return b.isOpen(); });
}

bool
Rank::canActivate(Cycle now, double weight) const
{
    if (now < nextActAllowed_)
        return false;
    // Drop activations that have left the tFAW window.
    while (!actWindow_.empty() &&
           actWindow_.front().first + t_.fawWindow <= now) {
        actWindow_.pop_front();
    }
    double in_window = 0.0;
    for (const auto &[cycle, w] : actWindow_)
        in_window += w;
    // Conventional DRAM allows four full-row activations per window; the
    // weighted budget reduces to exactly that when all weights are 1.
    return in_window + weight <= 4.0 + 1e-9;
}

void
Rank::recordActivation(Cycle now, double weight)
{
    actWindow_.emplace_back(now, weight);
    nextActAllowed_ = now + t_.actGap(weight);
}

bool
Rank::canRefresh(Cycle now) const
{
    if (!allBanksClosed())
        return false;
    return std::all_of(banks_.begin(), banks_.end(), [now](const Bank &b) {
        return b.earliestActivate() <= now;
    });
}

void
Rank::refresh(Cycle now)
{
    refreshDone_ = now + t_.refreshCycle;
    for (auto &b : banks_)
        b.blockUntil(refreshDone_);
    // Catch-up semantics: a late refresh does not shift the schedule.
    nextRefresh_ += t_.refreshInterval;
    if (nextRefresh_ <= now)
        nextRefresh_ = now + t_.refreshInterval;
}

void
Rank::rfm(Cycle now)
{
    rfmDone_ = now + t_.rfmCycle;
    for (auto &b : banks_)
        b.blockUntil(rfmDone_);
}

void
Rank::updatePowerState(Cycle now, bool has_queued_work)
{
    const bool idle = allBanksClosed() && !has_queued_work &&
                      !refreshing(now);
    if (idle && !wasIdle_)
        idleSince_ = now;
    wasIdle_ = idle;

    if (!cfg_->powerDownEnabled)
        return;

    if (idle && !poweredDown_ &&
        now - idleSince_ >= cfg_->powerDownThreshold) {
        poweredDown_ = true;
    }
    if (!idle && poweredDown_)
        wake(now);
}

RankState
Rank::powerState(Cycle now) const
{
    if (refreshing(now))
        return RankState::Refreshing;
    if (!allBanksClosed())
        return RankState::ActiveStandby;
    if (poweredDown_)
        return RankState::PowerDown;
    return RankState::PrechargeStandby;
}

void
Rank::wake(Cycle now)
{
    poweredDown_ = false;
    for (auto &b : banks_)
        b.blockUntil(now + t_.powerUp);
}

void
Rank::fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const
{
    for (const Bank &b : banks_)
        b.fingerprint(h, now, horizon);
    fingerprintRankLevel(h, now, horizon);
}

void
Rank::fingerprintRankLevel(Fnv1a &h, Cycle now, Cycle horizon) const
{
    auto delta = [&](Cycle reg) {
        h.add(reg <= now ? Cycle{0} : std::min(reg - now, horizon));
    };
    // Only window entries still inside tFAW can gate a future ACT; the
    // expired ones are popped lazily, so skip them for normalization.
    for (const auto &[cycle, weight] : actWindow_) {
        if (cycle + t_.fawWindow <= now)
            continue;
        delta(cycle + t_.fawWindow);
        h.add(weight);
    }
    delta(nextActAllowed_);
    delta(nextRefresh_);
    delta(refreshDone_);
    // Gated so PRAC-off fingerprint streams stay byte-identical to the
    // pre-PRAC revision (the model checker pins exact state counts).
    if (cfg_->pracEnabled)
        delta(rfmDone_);
    h.add(poweredDown_);
}

void
Rank::fastForwardBackground(Cycle from, Cycle to, bool has_queued_work,
                            power::EnergyCounts &energy)
{
    if (to <= from)
        return;

#ifndef NDEBUG
    // Cycle-by-cycle replay of updatePowerState() + the accountBackground
    // state counting, used below to assert the analytic jump is exact.
    std::uint64_t replay_act = 0, replay_pre = 0, replay_pd = 0;
    bool replay_was_idle = wasIdle_, replay_pd_state = poweredDown_;
    Cycle replay_idle_since = idleSince_;
    for (Cycle c = from; c < to; ++c) {
        const bool idle =
            allBanksClosed() && !has_queued_work && !refreshing(c);
        if (idle && !replay_was_idle)
            replay_idle_since = c;
        replay_was_idle = idle;
        if (cfg_->powerDownEnabled) {
            if (idle && !replay_pd_state &&
                c - replay_idle_since >= cfg_->powerDownThreshold) {
                replay_pd_state = true;
            }
            // wake() is never reachable here: !idle with poweredDown_ set
            // implies the pre-skip tick already woke the rank.
            assert(idle || !replay_pd_state);
        }
        if (refreshing(c) || !allBanksClosed())
            ++replay_act;
        else if (replay_pd_state)
            ++replay_pd;
        else
            ++replay_pre;
    }
#endif

    const Cycle len = to - from;
    std::uint64_t act_cycles = 0, pre_cycles = 0, pd_cycles = 0;
    if (!allBanksClosed()) {
        // A bank is open: never refreshing (REF requires all banks
        // closed and none can open mid-skip), never idle.
        act_cycles = len;
        wasIdle_ = false;
    } else {
        // Refreshing segment [from, refresh_end): counts as active
        // standby, not idle.
        const Cycle refresh_end =
            std::min(std::max(refreshDone_, from), to);
        act_cycles = refresh_end - from;
        if (refresh_end > from)
            wasIdle_ = false;
        if (refresh_end < to) {
            if (has_queued_work) {
                // Work queued: a powered-down rank would already have
                // been woken by the tick that saw the arrival.
                assert(!poweredDown_);
                pre_cycles = to - refresh_end;
                wasIdle_ = false;
            } else {
                // Idle stretch: precharge standby until the power-down
                // threshold elapses, power-down after.
                if (!wasIdle_)
                    idleSince_ = refresh_end;
                wasIdle_ = true;
                Cycle pd_start = to;
                if (cfg_->powerDownEnabled) {
                    pd_start = poweredDown_
                                   ? refresh_end
                                   : std::max(refresh_end,
                                              idleSince_ +
                                                  cfg_->powerDownThreshold);
                    pd_start = std::min(pd_start, to);
                }
                pre_cycles = pd_start - refresh_end;
                pd_cycles = to - pd_start;
                if (pd_start < to)
                    poweredDown_ = true;
            }
        }
    }

#ifndef NDEBUG
    // The analytic jump and the naive per-cycle loop must agree exactly.
    assert(replay_act == act_cycles);
    assert(replay_pre == pre_cycles);
    assert(replay_pd == pd_cycles);
    assert(replay_was_idle == wasIdle_);
    assert(replay_pd_state == poweredDown_);
    assert(!replay_was_idle || replay_idle_since == idleSince_);
#endif

    energy.actStandbyCycles += act_cycles;
    energy.preStandbyCycles += pre_cycles;
    energy.powerDownCycles += pd_cycles;
}

} // namespace pra::dram
