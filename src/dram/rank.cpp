#include "dram/rank.h"

#include <algorithm>
#include <cmath>

namespace pra::dram {

Rank::Rank(const DramConfig &cfg, unsigned index) : cfg_(&cfg)
{
    banks_.reserve(cfg.banksPerRank);
    for (unsigned b = 0; b < cfg.banksPerRank; ++b)
        banks_.emplace_back(cfg.timing);
    // Stagger refresh deadlines across ranks so they do not refresh in
    // lockstep (matches real controller practice).
    nextRefresh_ = cfg.timing.tRefi +
                   index * (cfg.timing.tRefi / (cfg.ranksPerChannel + 1));
}

bool
Rank::allBanksClosed() const
{
    return std::none_of(banks_.begin(), banks_.end(),
                        [](const Bank &b) { return b.isOpen(); });
}

bool
Rank::canActivate(Cycle now, double weight) const
{
    if (now < nextActAllowed_)
        return false;
    // Drop activations that have left the tFAW window.
    while (!actWindow_.empty() &&
           actWindow_.front().first + cfg_->timing.tFaw <= now) {
        actWindow_.pop_front();
    }
    double in_window = 0.0;
    for (const auto &[cycle, w] : actWindow_)
        in_window += w;
    // Conventional DRAM allows four full-row activations per window; the
    // weighted budget reduces to exactly that when all weights are 1.
    return in_window + weight <= 4.0 + 1e-9;
}

void
Rank::recordActivation(Cycle now, double weight)
{
    actWindow_.emplace_back(now, weight);
    const auto gap = static_cast<Cycle>(
        std::max(2.0, std::round(cfg_->timing.tRrd * weight)));
    nextActAllowed_ = now + gap;
}

bool
Rank::canRefresh(Cycle now) const
{
    if (!allBanksClosed())
        return false;
    return std::all_of(banks_.begin(), banks_.end(), [now](const Bank &b) {
        return b.earliestActivate() <= now;
    });
}

void
Rank::refresh(Cycle now)
{
    refreshDone_ = now + cfg_->timing.tRfc;
    for (auto &b : banks_)
        b.blockUntil(refreshDone_);
    // Catch-up semantics: a late refresh does not shift the schedule.
    nextRefresh_ += cfg_->timing.tRefi;
    if (nextRefresh_ <= now)
        nextRefresh_ = now + cfg_->timing.tRefi;
}

void
Rank::updatePowerState(Cycle now, bool has_queued_work)
{
    const bool idle = allBanksClosed() && !has_queued_work &&
                      !refreshing(now);
    if (idle && !wasIdle_)
        idleSince_ = now;
    wasIdle_ = idle;

    if (!cfg_->powerDownEnabled)
        return;

    if (idle && !poweredDown_ &&
        now - idleSince_ >= cfg_->powerDownThreshold) {
        poweredDown_ = true;
    }
    if (!idle && poweredDown_)
        wake(now);
}

RankState
Rank::powerState(Cycle now) const
{
    if (refreshing(now))
        return RankState::Refreshing;
    if (!allBanksClosed())
        return RankState::ActiveStandby;
    if (poweredDown_)
        return RankState::PowerDown;
    return RankState::PrechargeStandby;
}

void
Rank::wake(Cycle now)
{
    poweredDown_ = false;
    for (auto &b : banks_)
        b.blockUntil(now + cfg_->timing.tXp);
}

} // namespace pra::dram
