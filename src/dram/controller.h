/**
 * @file
 * Per-channel DDR3 memory controller.
 *
 * Implements the paper's baseline controller: FR-FCFS scheduling with
 * reads prioritized over writes, separate 64-entry read/write queues with
 * 48/16 write-drain watermarks, row-interleaved mapping with the relaxed
 * close-page policy (rows close when no queued request can use them; at
 * most four consecutive row hits per activation), or line-interleaved
 * mapping with the restricted close-page policy (auto-precharge on every
 * column access). Refresh, data-bus and command-bus contention, write-to-
 * read turnaround and rank-to-rank switch penalties are modeled.
 *
 * PRA behaviour (when the configured scheme enables partial writes):
 *  - a write activation ORs the PRA masks of every queued write to the
 *    same row and opens only those MAT groups;
 *  - partial activations spend one extra cycle delivering the mask over
 *    the address bus (and occupy the command/address bus for it);
 *  - requests that target a partially opened row whose needed groups are
 *    closed take a *false row buffer hit*: the row is precharged and
 *    re-activated before the access;
 *  - activations are charged against tRRD/tFAW by power weight, relaxing
 *    both constraints for partial activations.
 */
#ifndef PRA_DRAM_CONTROLLER_H
#define PRA_DRAM_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <vector>

#include <memory>
#include <unordered_map>

#include "common/stats.h"
#include "dram/checker.h"
#include "dram/config.h"
#include "dram/rank.h"
#include "dram/request.h"
#include "power/power_model.h"

namespace pra::verify {
class Auditor;
}

namespace pra::dram {

/** Controller statistics backing Table 1 and Figures 10/11. */
struct ControllerStats
{
    std::uint64_t readReqs = 0;
    std::uint64_t writeReqs = 0;

    // PRA-aware accounting: false hits count as misses.
    std::uint64_t readRowHits = 0;
    std::uint64_t writeRowHits = 0;
    std::uint64_t readRowMisses = 0;
    std::uint64_t writeRowMisses = 0;
    std::uint64_t readFalseHits = 0;   //!< Subset of readRowMisses.
    std::uint64_t writeFalseHits = 0;  //!< Subset of writeRowMisses.

    std::uint64_t actsForReads = 0;
    std::uint64_t actsForWrites = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t forwardedReads = 0;  //!< Served from the write queue.

    /** Activation counts by granularity (bucket g = 1..8). */
    Histogram actGranularity{9};

    Summary readLatency;

    double
    readHitRate() const
    {
        const auto t = readRowHits + readRowMisses;
        return t ? static_cast<double>(readRowHits) / t : 0.0;
    }
    double
    writeHitRate() const
    {
        const auto t = writeRowHits + writeRowMisses;
        return t ? static_cast<double>(writeRowHits) / t : 0.0;
    }
    double
    totalHitRate() const
    {
        const auto h = readRowHits + writeRowHits;
        const auto t = h + readRowMisses + writeRowMisses;
        return t ? static_cast<double>(h) / t : 0.0;
    }
};

/** One channel: ranks, queues, scheduler, and power event counting. */
class MemoryController
{
  public:
    MemoryController(const DramConfig &cfg, unsigned channel_id);

    /** Backpressure check; true when the queue has room. */
    bool canAccept(bool is_write) const;

    /** Enqueue @p req (its loc must already be decoded). */
    void enqueue(Request req, Cycle now);

    /** Advance one DRAM cycle. */
    void tick(Cycle now);

    /**
     * Cycle-skip support: a conservative lower bound (> @p now) on the
     * next cycle at which tick() could do anything beyond background
     * power accounting — issue a command, auto-precharge, or deliver a
     * completion — assuming no new request is enqueued in between. The
     * bound may be earlier than the next real action (the caller simply
     * re-evaluates) but is never later.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Cycle-skip support: account the background power of cycles
     * [@p from, @p to) in one jump. Only valid when nextEventCycle(from)
     * >= to and nothing is enqueued in the window — i.e. every skipped
     * tick would have been action-free.
     */
    void fastForward(Cycle from, Cycle to);

    /** Finished reads since the last drain (caller clears). */
    std::vector<Completion> &completions() { return finished_; }

    /** Any queued or in-flight work. */
    bool busy() const;

    const ControllerStats &stats() const { return stats_; }
    const power::EnergyCounts &energyCounts() const { return energy_; }

    unsigned numRanks() const
    {
        return static_cast<unsigned>(ranks_.size());
    }
    const Rank &rank(unsigned r) const { return ranks_[r]; }

    std::size_t readQueueSize() const { return readQ_.size(); }
    std::size_t writeQueueSize() const { return writeQ_.size(); }

    /** Protocol checker, when DramConfig::enableChecker is set. */
    const TimingChecker *checker() const { return checker_.get(); }

    /**
     * Attach the cross-layer invariant auditor (not owned). The
     * controller reports write-queue admissions and every command it
     * issues; the auditor re-derives mask/granularity expectations from
     * its own shadow state.
     */
    void attachAuditor(verify::Auditor *auditor) { audit_ = auditor; }

  private:
    // Per-bank bookkeeping for fast "does anything still want this row?"
    struct BankInfo
    {
        unsigned queued = 0;        //!< Requests targeting this bank.
        unsigned openRowMatches = 0; //!< Of those, same row as open.
    };

    BankInfo &info(unsigned rank, unsigned bank)
    {
        return bankInfo_[rank * cfg_->banksPerRank + bank];
    }

    WordMask needOf(const Request &req) const;
    void classify(Request &req, RowProbe probe);

    /**
     * Row-buffer probe of @p req against its bank, cached per request
     * and invalidated by the bank's state epoch (activate/precharge) or
     * a mask change (write combining).
     */
    RowProbe probeOf(Request &req) const;

    /** Drop @p addr from the write-queue index after erasing entry @p idx. */
    void eraseWriteIndex(Addr addr, std::size_t idx);

    bool tryColumnAccess(std::deque<Request> &queue, bool is_write,
                         Cycle now);
    bool tryPrepare(std::deque<Request> &queue, bool is_write, Cycle now);
    bool tryMaintenanceClose(Cycle now);
    bool tryRefresh(Cycle now);

    bool dataBusFree(Cycle start, unsigned burst, unsigned rank_id) const;
    void reserveDataBus(Cycle start, unsigned burst, unsigned rank_id);

    void issueActivate(Request &req, bool is_write, Cycle now);
    void issueColumn(std::deque<Request> &queue, std::size_t idx,
                     bool is_write, Cycle now);
    void issuePrecharge(unsigned rank_id, unsigned bank_id, Cycle now);

    /**
     * OR of PRA masks of every queued write to @p req's row, cached per
     * request and invalidated by writeQueueEpoch_.
     */
    WordMask mergedWriteMask(Request &req) const;

    void recountOpenRowMatches(unsigned rank_id, unsigned bank_id);
    void accountBackground(Cycle now);

    const DramConfig *cfg_;
    SchemeTraits traits_;
    unsigned channelId_;

    std::vector<Rank> ranks_;
    std::vector<BankInfo> bankInfo_;

    std::deque<Request> readQ_;
    std::deque<Request> writeQ_;
    /** Line address → writeQ_ position, for O(1) combine/forward. */
    std::unordered_map<Addr, std::size_t> writeIndex_;
    /** Bumped whenever writeQ_ membership or masks change. */
    std::uint64_t writeQueueEpoch_ = 0;
    bool drainMode_ = false;

    Cycle cmdBusFree_ = 0;
    Cycle dataBusFree_ = 0;
    unsigned lastBusRank_ = 0;
    Cycle readCmdBlockedUntil_ = 0;  //!< tWTR gate after write data.
    Cycle lastColumnCycle_ = 0;      //!< DDR4 tCCD_S/tCCD_L gating.
    unsigned lastColumnGroup_ = ~0u;
    bool anyColumnIssued_ = false;

    std::vector<Completion> inflight_;  //!< Reads waiting for data.
    std::vector<Completion> finished_;

    ControllerStats stats_;
    power::EnergyCounts energy_;
    std::unique_ptr<TimingChecker> checker_;
    verify::Auditor *audit_ = nullptr;
};

} // namespace pra::dram

#endif // PRA_DRAM_CONTROLLER_H
