/**
 * @file
 * Per-channel DDR3/DDR4 memory controller, composed of four layers
 * (DESIGN.md §9):
 *
 *  - a SchedulerPolicy (dram/sched/) owning request *selection*: class
 *    priority (reads vs. writes, drain hysteresis) and how far the
 *    column/prepare scans may reorder past the queue head. FR-FCFS is
 *    the default; FCFS and FR-FCFS+write-age-promotion are ablations;
 *  - a BankEngine owning per-bank FSM state (open row, open PRA mask,
 *    hit streak, state epochs) plus pending-work counters, queried by
 *    the scheduling paths, the cycle-skip bound, and maintenance alike;
 *  - a BusArbiter owning the shared-resource gates: command-bus slots,
 *    data-bus reservation with tRTRS rank turnaround, the tWTR
 *    write-to-read gate, and DDR4 tCCD_S/tCCD_L bank-group spacing;
 *  - a MaintenanceEngine owning refresh scheduling and the relaxed/
 *    restricted close policies, with a registerOp() seam for future
 *    maintenance operations (PRAC-style alerts, TRR, scrubbing).
 *
 * The controller itself keeps the queues (write combining, read
 * forwarding, merged PRA masks) and the command *mechanisms* — issuing
 * ACT/column/PRE/REF with stats, energy events, checker and auditor
 * reporting. The default FR-FCFS configuration is bit-identical to the
 * pre-decomposition monolith (pinned by test_golden_equivalence.cpp).
 *
 * Baseline behaviour: FR-FCFS scheduling with reads prioritized over
 * writes, separate 64-entry read/write queues with 48/16 write-drain
 * watermarks, row-interleaved mapping with the relaxed close-page
 * policy (rows close when no queued request can use them; at most four
 * consecutive row hits per activation), or line-interleaved mapping
 * with the restricted close-page policy (auto-precharge on every
 * column access). Refresh, data-bus and command-bus contention,
 * write-to-read turnaround and rank-to-rank switch penalties are
 * modeled.
 *
 * PRA behaviour (when the configured scheme enables partial writes):
 *  - a write activation ORs the PRA masks of every queued write to the
 *    same row and opens only those MAT groups;
 *  - partial activations spend one extra cycle delivering the mask over
 *    the address bus (and occupy the command/address bus for it);
 *  - requests that target a partially opened row whose needed groups are
 *    closed take a *false row buffer hit*: the row is precharged and
 *    re-activated before the access;
 *  - activations are charged against tRRD/tFAW by power weight, relaxing
 *    both constraints for partial activations.
 */
#ifndef PRA_DRAM_CONTROLLER_H
#define PRA_DRAM_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <vector>

#include <memory>
#include <unordered_map>

#include "common/stats.h"
#include "dram/bank_engine.h"
#include "dram/bus_arbiter.h"
#include "dram/checker.h"
#include "dram/config.h"
#include "dram/maintenance_engine.h"
#include "dram/prac.h"
#include "dram/request.h"
#include "dram/sched/scheduler_policy.h"
#include "dram/timing_tables.h"
#include "dram/wakeup_heap.h"
#include "power/power_model.h"

namespace pra::verify {
class Auditor;
}

namespace pra::dram {

/** Controller statistics backing Table 1 and Figures 10/11. */
struct ControllerStats
{
    std::uint64_t readReqs = 0;
    std::uint64_t writeReqs = 0;

    // PRA-aware accounting: false hits count as misses.
    std::uint64_t readRowHits = 0;
    std::uint64_t writeRowHits = 0;
    std::uint64_t readRowMisses = 0;
    std::uint64_t writeRowMisses = 0;
    std::uint64_t readFalseHits = 0;   //!< Subset of readRowMisses.
    std::uint64_t writeFalseHits = 0;  //!< Subset of writeRowMisses.

    std::uint64_t actsForReads = 0;
    std::uint64_t actsForWrites = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rfms = 0;            //!< PRAC mitigations issued.
    std::uint64_t forwardedReads = 0;  //!< Served from the write queue.

    /** Activation counts by granularity (bucket g = 1..8). */
    Histogram actGranularity{9};

    /**
     * Read-only slice of actGranularity: activations issued to serve
     * reads, by granularity. Degenerate (all 8/8) for every scheme
     * without partial reads; the read-granularity sweep in bench_fig11
     * compares speculative-read schemes through it.
     */
    Histogram readActGranularity{9};

    Summary readLatency;

    double
    readHitRate() const
    {
        const auto t = readRowHits + readRowMisses;
        return t ? static_cast<double>(readRowHits) / t : 0.0;
    }
    double
    writeHitRate() const
    {
        const auto t = writeRowHits + writeRowMisses;
        return t ? static_cast<double>(writeRowHits) / t : 0.0;
    }
    double
    totalHitRate() const
    {
        const auto h = readRowHits + writeRowHits;
        const auto t = h + readRowMisses + writeRowMisses;
        return t ? static_cast<double>(h) / t : 0.0;
    }
};

/**
 * Observational counters of the event-driven engine (DESIGN.md §11).
 * Not part of simulated behaviour: excluded from golden fingerprints
 * and from the result cache.
 */
struct EngineStats
{
    std::uint64_t rounds = 0;       //!< Scheduling rounds executed.
    std::uint64_t skippedTicks = 0; //!< Ticks short-circuited by the heap.
    std::uint64_t wakeups = 0;      //!< Rounds triggered by a due event.
    std::uint64_t eventsPopped = 0; //!< Heap entries consumed.
    std::uint64_t heapPushes = 0;   //!< Candidates published.
    std::uint64_t heapPeak = 0;     //!< Max heap occupancy observed.
};

/** One channel: queues + command mechanisms over the four layers. */
class MemoryController : private MaintenanceHooks
{
  public:
    MemoryController(const DramConfig &cfg, unsigned channel_id);

    /** Backpressure check; true when the queue has room. */
    bool canAccept(bool is_write) const;

    /** Enqueue @p req (its loc must already be decoded). */
    void enqueue(Request req, Cycle now);

    /**
     * Advance one DRAM cycle. Under the tick engine every call runs a
     * full scheduling round. Under the event engine (DESIGN.md §11) a
     * call before the published next-wake cycle only accounts
     * background power; rounds run exactly at heap-published wake-up
     * cycles (and whenever enqueue() lowers the wake target).
     */
    void tick(Cycle now);

    /**
     * Cycle-skip support: the next cycle (> @p now) at which tick()
     * could do anything beyond background power accounting — issue a
     * command, auto-precharge, or deliver a completion — assuming no
     * new request is enqueued in between. Under the tick engine this is
     * a conservative lower bound recomputed by scanning every layer:
     * it may be earlier than the next real action (the caller simply
     * re-evaluates) but is never later. Under the event engine it is
     * the already-published heap minimum, returned without a scan.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Cycle-skip support: account the background power of cycles
     * [@p from, @p to) in one jump. Only valid when nextEventCycle(from)
     * >= to and nothing is enqueued in the window — i.e. every skipped
     * tick would have been action-free.
     */
    void fastForward(Cycle from, Cycle to);

    /** Finished reads since the last drain (caller clears). */
    std::vector<Completion> &completions() { return finished_; }

    /** Any queued or in-flight work. */
    bool busy() const;

    const ControllerStats &stats() const { return stats_; }

    /**
     * Background-energy counters. Event-mode skipped ticks defer their
     * background accounting (settled analytically at the next round);
     * reading the counters settles any still-pending window first so
     * callers always see every ticked cycle accounted.
     */
    const power::EnergyCounts &
    energyCounts() const
    {
        const_cast<MemoryController *>(this)->settleBackground();
        return energy_;
    }

    /** Event-engine counters (zero under the tick engine). */
    const EngineStats &engineStats() const { return engineStats_; }

    unsigned numRanks() const { return banks_.numRanks(); }
    const Rank &rank(unsigned r) const { return banks_.rank(r); }

    /** Per-bank state engine (banks, pending-work counters). */
    const BankEngine &bankEngine() const { return banks_; }

    /** The scheduling policy driving request selection. */
    const SchedulerPolicy &schedulerPolicy() const { return *sched_; }

    /** Maintenance engine; registerOp() is the extension seam. */
    MaintenanceEngine &maintenance() { return maint_; }

    std::size_t readQueueSize() const { return readQ_.size(); }
    std::size_t writeQueueSize() const { return writeQ_.size(); }

    /** Protocol checker, when DramConfig::enableChecker is set. */
    const TimingChecker *checker() const { return checker_.get(); }

    /**
     * Attach the cross-layer invariant auditor (not owned). The
     * controller reports write-queue admissions and every command it
     * issues; the auditor re-derives mask/granularity expectations from
     * its own shadow state.
     */
    void attachAuditor(verify::Auditor *auditor) { audit_ = auditor; }

  private:
    WordMask needOf(const Request &req) const;
    void classify(Request &req, RowProbe probe);

    /** Drop @p addr from the write-queue index after erasing entry @p idx. */
    void eraseWriteIndex(Addr addr, std::size_t idx);

    /** Queue occupancy snapshot handed to the scheduler policy. */
    SchedulerInputs schedulerInputs() const;

    bool tryColumnAccess(std::deque<Request> &queue, bool is_write,
                         Cycle now);
    bool tryPrepare(std::deque<Request> &queue, bool is_write, Cycle now);

    void issueActivate(Request &req, bool is_write, Cycle now);
    void issueColumn(std::deque<Request> &queue, std::size_t idx,
                     bool is_write, Cycle now);

    // MaintenanceHooks (decisions live in the MaintenanceEngine).
    void issuePrecharge(unsigned rank_id, unsigned bank_id,
                        Cycle now) override;
    void issueAutoPrecharge(unsigned rank_id, unsigned bank_id,
                            Cycle now) override;
    void issueRefresh(unsigned rank_id, Cycle now) override;
    void issueRfm(unsigned rank_id, Cycle now) override;

    /**
     * OR of PRA masks of every queued write to @p req's row, cached per
     * request and invalidated by writeQueueEpoch_.
     */
    WordMask mergedWriteMask(Request &req) const;

    void accountBackground(Cycle now);

    /**
     * Account the background power of the deferred window [bgFrom_,
     * bgPending_) in one analytic jump (Rank::fastForwardBackground).
     * Event-mode skipped ticks only record bgPending_; the window is
     * action- and arrival-free by construction, so the jump is exact.
     */
    void settleBackground();

    // --- Event engine (DESIGN.md §11) --------------------------------------

    /** One full scheduling round: the tick-engine per-cycle body. */
    void runRound(Cycle now);

    /**
     * Rebuild the wake-up heap and set nextWake_ to its minimum (kNever
     * when empty). Called after every quiet round; the invariant
     * nextWake_ > now holds on return. The candidates are exact, not
     * conservative: the quiet round's failing scans record the release
     * cycle of each gate that blocked a scanned request (scanWake_), and
     * the layers publish their own next decisions — in-flight read
     * finishes, the maintenance engine's nextWakeAt() (refresh
     * deadlines, blocked closes, auto-precharge retirements), and the
     * scheduler's time-driven selection flip. Everything else that could
     * enable work is itself an event (an enqueue lowers nextWake_; a
     * command can only issue inside a round).
     */
    void publishWakeups(Cycle now);

    /**
     * Record an exact retry cycle for a gate that blocked this round.
     * Bounds at or before @p now are stale — a gate register can sit in
     * the past while a *different* predicate (e.g. the weighted tFAW
     * sum behind an expired tRRD) does the blocking — and must not
     * shadow the real future bounds under the single-min collapse.
     */
    void
    noteWake(Cycle c, Cycle now)
    {
        if (c > now && c < scanWake_)
            scanWake_ = c;
    }

    /**
     * Enumerate every cycle at which a scheduling round could act:
     * in-flight completions, the bus arbiter's gate releases, the
     * scheduler policy's next decision flip, refresh deadlines, and the
     * per-bank/per-rank timing-gate releases. Shared by the event
     * engine's publish step and the tick engine's cycle-skip bound.
     */
    template <typename Fn>
    void
    forEachWakeCandidate(Cycle now, Fn &&consider) const
    {
        for (const auto &c : inflight_)
            consider(c.finish);

        const bool reads_queued = !readQ_.empty();
        const bool any_queued = reads_queued || !writeQ_.empty();

        bus_.considerWakeups(reads_queued, any_queued, consider);

        // Time-dependent selection flips (e.g. write-age promotion)
        // can enable a command with no timing-gate release at that
        // cycle, so the policy publishes its own candidate.
        if (any_queued)
            consider(sched_->nextDecisionChangeAt(schedulerInputs(), now));

        // Named maintenance ops (e.g. prac_rfm) publish their own wake
        // bound; an op without one degrades the skip to per-cycle.
        consider(maint_.opWakeBound(now));
        if (maint_.hasOpaqueOps())
            consider(now + 1);

        for (unsigned r = 0; r < banks_.numRanks(); ++r) {
            const Rank &rank = banks_.rank(r);
            // Refresh deadlines apply even to idle ranks.
            consider(rank.nextRefreshAt());
            const bool rank_queued = banks_.anyQueuedInRank(r);
            if (rank_queued) {
                consider(rank.nextActAllowedAt());
                rank.forEachActWindowExpiry(consider);
            }
            const bool refresh_pending = rank.refreshDue(now);
            const bool maint_pending =
                refresh_pending || prac_.alertActive(r);
            for (unsigned b = 0; b < rank.numBanks(); ++b) {
                const Bank &bank = rank.bank(b);
                if (bank.isOpen()) {
                    consider(bank.earliestPrecharge());
                    consider(bank.earliestColumnAccess());
                } else if (rank_queued || maint_pending) {
                    consider(bank.earliestActivate());
                }
            }
        }
    }

    /** Sentinel wake cycle: nothing scheduled. */
    static constexpr Cycle kNever = ~Cycle{0};

    const DramConfig *cfg_;
    const SchemeModel *scheme_;
    unsigned channelId_;

    BankEngine banks_;
    BusArbiter bus_;
    std::unique_ptr<SchedulerPolicy> sched_;
    MaintenanceEngine maint_;
    /** PRAC counters/alert state; inert unless DramConfig::pracEnabled
     *  (the ctor then registers the "prac_rfm" maintenance op). */
    PracState prac_;

    std::deque<Request> readQ_;
    std::deque<Request> writeQ_;
    /** Line address → writeQ_ position, for O(1) combine/forward. */
    std::unordered_map<Addr, std::size_t> writeIndex_;
    /** Bumped whenever writeQ_ membership or masks change. */
    std::uint64_t writeQueueEpoch_ = 0;

    std::vector<Completion> inflight_;  //!< Reads waiting for data.
    std::vector<Completion> finished_;

    ControllerStats stats_;
    power::EnergyCounts energy_;
    std::unique_ptr<TimingChecker> checker_;
    verify::Auditor *audit_ = nullptr;

    // Event engine state (DESIGN.md §11).
    TimingTables tables_;     //!< Precomputed command-pair gaps.
    bool eventMode_ = false;  //!< Event engine selected (config or env).
    bool replayForce_ = false; //!< PRA_AUDIT_REPLAY: tick every cycle.
    Cycle nextWake_ = 0;      //!< Heap minimum; 0 forces the first round.
    WakeupHeap wake_;
    EngineStats engineStats_;
    bool roundActivity_ = false; //!< Set when the current round acts.
    Cycle scanWake_ = kNever; //!< Min gate release noted by this round.
    Cycle bgFrom_ = 0;        //!< First cycle with unaccounted background.
    Cycle bgPending_ = 0;     //!< End (exclusive) of the deferred window.
};

} // namespace pra::dram

#endif // PRA_DRAM_CONTROLLER_H
