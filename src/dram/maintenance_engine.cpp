#include "dram/maintenance_engine.h"

#include <algorithm>

namespace pra::dram {

bool
MaintenanceEngine::autoPreReady(const Bank &bank, Cycle now) const
{
    return bank.autoPrechargePending() && bank.canPrecharge(now);
}

bool
MaintenanceEngine::refreshReady(const Rank &rank, Cycle now) const
{
    return rank.refreshDue(now) && rank.canRefresh(now) &&
           !rank.refreshing(now);
}

bool
MaintenanceEngine::rfmReady(unsigned r, const Rank &rank, Cycle now) const
{
    // Same bank preconditions as refresh (all closed, past tRP —
    // canRefresh() covers the in-progress tRFM window too, since RFM
    // blocks the banks the same way), plus the PRAC readiness gate.
    return prac_ && prac_->rfmReady(r, now) && rank.canRefresh(now) &&
           !rank.refreshing(now);
}

bool
MaintenanceEngine::wantMaint(unsigned r, const Rank &rank, Cycle now) const
{
    return rank.refreshDue(now) || (prac_ && prac_->alertActive(r));
}

bool
MaintenanceEngine::closeEligible(unsigned r, unsigned b, const Bank &bank,
                                 bool want_maint, Cycle now) const
{
    if (!bank.isOpen() || !bank.canPrecharge(now))
        return false;
    const bool useless = banks_->openRowMatches(r, b) == 0 ||
                         bank.hitCount() >= cfg_->rowHitCap;
    // Open-page keeps rows open unless refresh (or an RFM drain) needs
    // them shut.
    return (cfg_->policy == PagePolicy::RelaxedClose && useless) ||
           want_maint;
}

std::vector<MaintenanceEngine::BankRef>
MaintenanceEngine::autoPrechargeCandidates(Cycle now) const
{
    std::vector<BankRef> out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        for (unsigned b = 0; b < banks_->rank(r).numBanks(); ++b) {
            if (autoPreReady(banks_->bank(r, b), now))
                out.emplace_back(r, b);
        }
    }
    return out;
}

void
MaintenanceEngine::stepAutoPrecharge(Cycle now)
{
    // Auto-precharges exist only under restricted close-page: the
    // controller sets the flag solely on RDA/WRA issue, which is gated
    // on the policy. Every other policy can skip the bank scan.
    if (cfg_->policy != PagePolicy::RestrictedClose)
        return;
    // Auto-precharges are encoded in their column command, so every
    // ready one retires this cycle — no command-bus slot to arbitrate.
    // Same (rank, bank) order as autoPrechargeCandidates(), without the
    // per-round vector.
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        for (unsigned b = 0; b < banks_->rank(r).numBanks(); ++b) {
            if (autoPreReady(banks_->bank(r, b), now))
                hooks_->issueAutoPrecharge(r, b, now);
        }
    }
}

std::vector<unsigned>
MaintenanceEngine::refreshCandidates(Cycle now) const
{
    std::vector<unsigned> out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        if (refreshReady(banks_->rank(r), now))
            out.push_back(r);
    }
    return out;
}

bool
MaintenanceEngine::tryRefresh(Cycle now)
{
    // First rank in refreshCandidates() order.
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        if (refreshReady(banks_->rank(r), now)) {
            hooks_->issueRefresh(r, now);
            return true;
        }
    }
    return false;
}

std::vector<MaintenanceEngine::BankRef>
MaintenanceEngine::closeCandidates(Cycle now) const
{
    std::vector<BankRef> out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        const bool want_maint = wantMaint(r, rank, now);
        for (unsigned b = 0; b < rank.numBanks(); ++b) {
            if (closeEligible(r, b, rank.bank(b), want_maint, now))
                out.emplace_back(r, b);
        }
    }
    return out;
}

bool
MaintenanceEngine::tryMaintenanceClose(Cycle now)
{
    // First bank in closeCandidates() order.
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        const bool want_maint = wantMaint(r, rank, now);
        for (unsigned b = 0; b < rank.numBanks(); ++b) {
            if (closeEligible(r, b, rank.bank(b), want_maint, now)) {
                hooks_->issuePrecharge(r, b, now);
                return true;
            }
        }
    }
    return false;
}

std::vector<unsigned>
MaintenanceEngine::rfmCandidates(Cycle now) const
{
    std::vector<unsigned> out;
    if (!prac_ || !prac_->enabled())
        return out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        if (rfmReady(r, banks_->rank(r), now))
            out.push_back(r);
    }
    return out;
}

bool
MaintenanceEngine::tryRfm(Cycle now)
{
    if (!prac_ || !prac_->enabled())
        return false;
    // First rank in rfmCandidates() order.
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        if (rfmReady(r, banks_->rank(r), now)) {
            hooks_->issueRfm(r, now);
            return true;
        }
    }
    return false;
}

Cycle
MaintenanceEngine::rfmWakeBound(Cycle now) const
{
    Cycle next = ~Cycle{0};
    if (!prac_ || !prac_->enabled())
        return next;
    auto consider = [&](Cycle c) {
        if (c < next)
            next = c;
    };
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        if (!prac_->alertActive(r))
            continue;
        const Rank &rank = banks_->rank(r);
        // An open bank is state-gated: its close happens inside a
        // round, which re-publishes. Only the time gates bound here.
        if (!rank.allBanksClosed())
            continue;
        Cycle ready = prac_->rfmReadyAt(r);
        for (unsigned b = 0; b < rank.numBanks(); ++b)
            ready = std::max(ready, rank.bank(b).earliestActivate());
        if (rank.refreshing(now))
            ready = std::max(ready, rank.refreshDoneAt());
        consider(ready);
    }
    return next;
}

Cycle
MaintenanceEngine::nextWakeAt(Cycle now) const
{
    Cycle next = ~Cycle{0};
    auto consider = [&](Cycle c) {
        if (c > now && c < next)
            next = c;
    };
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        // Refresh deadlines apply even to idle ranks; an in-progress
        // refresh re-enables activations when tRFC elapses.
        consider(rank.nextRefreshAt());
        if (rank.refreshing(now))
            consider(rank.refreshDoneAt());
        const bool want_refresh = rank.refreshDue(now);
        const bool want_maint = wantMaint(r, rank, now);
        bool all_closed = true;
        Cycle refresh_ready = 0;
        for (unsigned b = 0; b < rank.numBanks(); ++b) {
            const Bank &bank = rank.bank(b);
            if (bank.autoPrechargePending())
                consider(bank.earliestPrecharge());
            if (bank.isOpen()) {
                all_closed = false;
                const bool useless =
                    banks_->openRowMatches(r, b) == 0 ||
                    bank.hitCount() >= cfg_->rowHitCap;
                // A close blocked only by its tRAS/tWR/tRTP gate fires
                // exactly when the gate releases; a still-useful row is
                // state-gated (its hits drain inside rounds). An RFM
                // drain (PRAC alert) forces closes like a due refresh.
                if ((cfg_->policy == PagePolicy::RelaxedClose && useless) ||
                    want_maint) {
                    consider(bank.earliestPrecharge());
                }
            } else {
                refresh_ready = std::max(refresh_ready,
                                         bank.earliestActivate());
            }
        }
        // A due refresh with every bank closed becomes issuable the
        // cycle the last tRP expires. (RFM readiness publishes through
        // the prac_rfm op's own wake bound — rfmWakeBound().)
        if (want_refresh && all_closed && !rank.refreshing(now))
            consider(refresh_ready);
    }
    return next;
}

} // namespace pra::dram
