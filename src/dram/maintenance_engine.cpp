#include "dram/maintenance_engine.h"

namespace pra::dram {

std::vector<MaintenanceEngine::BankRef>
MaintenanceEngine::autoPrechargeCandidates(Cycle now) const
{
    std::vector<BankRef> out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        for (unsigned b = 0; b < banks_->rank(r).numBanks(); ++b) {
            const Bank &bank = banks_->bank(r, b);
            if (bank.autoPrechargePending() && bank.canPrecharge(now))
                out.emplace_back(r, b);
        }
    }
    return out;
}

void
MaintenanceEngine::stepAutoPrecharge(Cycle now)
{
    // Auto-precharges are encoded in their column command, so every
    // ready one retires this cycle — no command-bus slot to arbitrate.
    for (const auto &[r, b] : autoPrechargeCandidates(now))
        hooks_->issueAutoPrecharge(r, b, now);
}

std::vector<unsigned>
MaintenanceEngine::refreshCandidates(Cycle now) const
{
    std::vector<unsigned> out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        if (rank.refreshDue(now) && rank.canRefresh(now) &&
            !rank.refreshing(now)) {
            out.push_back(r);
        }
    }
    return out;
}

bool
MaintenanceEngine::tryRefresh(Cycle now)
{
    const auto ranks = refreshCandidates(now);
    if (ranks.empty())
        return false;
    hooks_->issueRefresh(ranks.front(), now);
    return true;
}

std::vector<MaintenanceEngine::BankRef>
MaintenanceEngine::closeCandidates(Cycle now) const
{
    std::vector<BankRef> out;
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        const bool want_refresh = rank.refreshDue(now);
        for (unsigned b = 0; b < rank.numBanks(); ++b) {
            const Bank &bank = rank.bank(b);
            if (!bank.isOpen() || !bank.canPrecharge(now))
                continue;
            const bool useless = banks_->openRowMatches(r, b) == 0 ||
                                 bank.hitCount() >= cfg_->rowHitCap;
            // Open-page keeps rows open unless refresh needs them shut.
            if ((cfg_->policy == PagePolicy::RelaxedClose && useless) ||
                want_refresh) {
                out.emplace_back(r, b);
            }
        }
    }
    return out;
}

bool
MaintenanceEngine::tryMaintenanceClose(Cycle now)
{
    const auto targets = closeCandidates(now);
    if (targets.empty())
        return false;
    hooks_->issuePrecharge(targets.front().first, targets.front().second,
                           now);
    return true;
}

} // namespace pra::dram
