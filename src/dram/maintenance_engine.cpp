#include "dram/maintenance_engine.h"

namespace pra::dram {

void
MaintenanceEngine::stepAutoPrecharge(Cycle now)
{
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        for (unsigned b = 0; b < banks_->rank(r).numBanks(); ++b) {
            const Bank &bank = banks_->bank(r, b);
            if (bank.autoPrechargePending() && bank.canPrecharge(now))
                hooks_->issueAutoPrecharge(r, b, now);
        }
    }
}

bool
MaintenanceEngine::tryRefresh(Cycle now)
{
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        if (rank.refreshDue(now) && rank.canRefresh(now) &&
            !rank.refreshing(now)) {
            hooks_->issueRefresh(r, now);
            return true;
        }
    }
    return false;
}

bool
MaintenanceEngine::tryMaintenanceClose(Cycle now)
{
    for (unsigned r = 0; r < banks_->numRanks(); ++r) {
        const Rank &rank = banks_->rank(r);
        const bool want_refresh = rank.refreshDue(now);
        for (unsigned b = 0; b < rank.numBanks(); ++b) {
            const Bank &bank = rank.bank(b);
            if (!bank.isOpen() || !bank.canPrecharge(now))
                continue;
            const bool useless = banks_->openRowMatches(r, b) == 0 ||
                                 bank.hitCount() >= cfg_->rowHitCap;
            // Open-page keeps rows open unless refresh needs them shut.
            if ((cfg_->policy == PagePolicy::RelaxedClose && useless) ||
                want_refresh) {
                hooks_->issuePrecharge(r, b, now);
                return true;
            }
        }
    }
    return false;
}

} // namespace pra::dram
