/**
 * @file
 * DRAM system configuration: organization, controller policy, scheme,
 * timing, and power parameters. Defaults reproduce the paper's Table 3
 * baseline: 8 GB, 2 channels x 2 ranks x 8 chips (x8), 2Gb DDR3-1600
 * devices with 8 banks, 32k rows, 1k columns.
 */
#ifndef PRA_DRAM_CONFIG_H
#define PRA_DRAM_CONFIG_H

#include "common/types.h"
#include "core/scheme.h"
#include "dram/timing.h"
#include "power/power_params.h"

namespace pra::dram {

/** Row-buffer management policy. */
enum class PagePolicy
{
    /**
     * Relaxed close-page: a row stays open while queued requests can hit
     * it (up to the row-hit cap), then the bank precharges; idle ranks
     * enter precharge power-down.
     */
    RelaxedClose,
    /**
     * Restricted close-page: every request is an atomic ACT + column
     * access + (auto-)precharge.
     */
    RestrictedClose,
    /**
     * Open page: rows stay open until a conflicting request or refresh
     * forces them shut (no hit cap, no idle close). Maximizes row-buffer
     * reuse at the cost of conflict latency and background power.
     */
    OpenPage,
};

/** Request scheduling policy (src/dram/sched/). */
enum class SchedulerKind
{
    /**
     * FR-FCFS (paper baseline): row hits first within each queue, reads
     * prioritized over writes with watermark-driven drain hysteresis,
     * at most rowHitCap consecutive hits per activation.
     */
    FrFcfs,
    /** Strict in-order service per queue: no row-hit reordering. */
    Fcfs,
    /**
     * FR-FCFS plus oldest-write promotion: once the oldest queued write
     * has waited longer than writeAgePromotionCycles, writes are
     * serviced ahead of reads even below the high watermark, bounding
     * write starvation under read-heavy traffic.
     */
    FrFcfsWriteAge,
};

/** Simulation engine driving the controller (DESIGN.md §11). */
enum class EngineKind
{
    /** Run a full scheduling round on every DRAM cycle. */
    Tick,
    /**
     * Wakeup-queue event engine: rounds run only at published next-
     * event cycles; intervening ticks just account background power.
     * Bit-identical to Tick (pinned by test_engine_differential.cpp).
     */
    Event,
};

/** Physical address interleaving. */
enum class AddrMapping
{
    /** row:rank:bank:channel:col — open-page friendly (paper default). */
    RowInterleaved,
    /** row:col:rank:bank:channel — spreads consecutive lines, used with
     *  the restricted close-page policy. */
    LineInterleaved,
};

/** Complete DRAM system configuration. */
struct DramConfig
{
    // Organization (Table 3).
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    unsigned rowsPerBank = 32768;
    unsigned linesPerRow = 128;   //!< 8 KB rank-level row / 64 B lines.
    unsigned chipsPerRank = 8;
    /** Extra ECC devices per rank (x72 DIMM); their PRA pin is tied
     *  high, so they always activate full rows (Section 4.2). */
    unsigned eccChipsPerRank = 0;

    // Controller.
    PagePolicy policy = PagePolicy::RelaxedClose;
    AddrMapping mapping = AddrMapping::RowInterleaved;
    SchedulerKind scheduler = SchedulerKind::FrFcfs;
    /**
     * FrFcfsWriteAge only: queue age in DRAM cycles past which the
     * oldest write is promoted ahead of reads.
     */
    Cycle writeAgePromotionCycles = 2000;
    unsigned readQueueDepth = 64;
    unsigned writeQueueDepth = 64;
    unsigned writeHighWatermark = 48;
    unsigned writeLowWatermark = 16;
    unsigned rowHitCap = 4;       //!< Max consecutive hits per activation.
    bool powerDownEnabled = true;
    unsigned powerDownThreshold = 8; //!< Idle cycles before PRE PDN.
    /** Attach the independent DDR3 protocol checker (debug/test aid). */
    bool enableChecker = false;
    /**
     * Test-only fault hook: OR these bits into every activation's open
     * mask after the scheme computed it. A non-zero value deliberately
     * widens partial activations — a mask-conformance bug the invariant
     * auditor (src/verify) must catch. Affects simulated behaviour, so
     * it participates in the canonical config / result-cache key.
     */
    std::uint8_t auditFaultWidenAct = 0;
    /**
     * Test-only fault hooks for the bus arbiter, in the same spirit:
     * drop the tCCD_L same-bank-group gate (issuing too-early column
     * commands) or the tWTR write-to-read gate. The independent
     * TimingChecker must flag the resulting protocol violations. Both
     * affect simulated behaviour, so they participate in the canonical
     * config / result-cache key.
     */
    bool faultIgnoreTccdL = false;
    bool faultIgnoreTwtr = false;
    /**
     * Test-only liveness fault hooks, drilled by the model checker's
     * progress properties (src/analysis, DESIGN.md §10.1). The first
     * makes BusArbiter::readBlockedUntil() report a stale (cycle-0)
     * bound while readBlocked() keeps gating reads: the event engine's
     * stale-bound rule drops it, losing the tWTR release wake-up — the
     * checker's wakeup-soundness property must catch the lost wakeup.
     * The second (non-zero = age threshold in cycles) makes both
     * scheduling scans skip any request older than the threshold,
     * modelling a saturating age-priority counter that inverts — the
     * checker's bounded-progress property must catch the starved
     * request. Both affect simulated behaviour, so they participate in
     * the canonical config / result-cache key.
     */
    bool faultSuppressWakeTwtr = false;
    Cycle faultStarveAgedCycles = 0;

    /** The starve-aged fault's admission predicate, shared by the live
     *  controller's scans and the model checker's enumeration so both
     *  see the identical (faulted) behaviour. */
    bool
    faultStarvesRequest(Cycle now, Cycle arrival) const
    {
        return faultStarveAgedCycles != 0 &&
               now - arrival >= faultStarveAgedCycles;
    }

    // --- PRAC / RFM read-disturbance mitigation (DESIGN.md §13) ------------
    /**
     * Per-row activation counting with Alert Back-Off and RFM recovery.
     * Off by default: every PRAC field below is consulted only when this
     * is set, so disabled configurations are bit-identical to builds
     * that predate the feature. Affects simulated behaviour, so it
     * participates in the canonical config / result-cache key.
     */
    bool pracEnabled = false;
    /**
     * Activation count at which a row is considered disturbed. The
     * controller raises its alert one activation *early* (at threshold
     * - 1) and back-offs further ACTs to the rank until an RFM
     * mitigation lands, so no counted row ever reaches the threshold.
     */
    unsigned disturbanceThreshold = 512;
    /**
     * Tag-CAM entries per bank tracking the hottest rows. Eviction
     * inherits min-count + 1 (Misra-Gries style), so every tracked
     * count is a sound over-approximation of the row's true activation
     * count and the tracked sum rises by exactly 1 per counted ACT.
     */
    unsigned pracCamEntries = 8;
    /**
     * Recovery window in cycles: an RFM mitigation must issue within
     * this many cycles of the alert being raised. The model checker
     * proves the bound; the live controller treats alert recovery as
     * top-priority maintenance (right after refresh).
     */
    Cycle pracRecoveryWindow = 1024;
    /**
     * Test-only PRAC fault hooks, drilled by the model checker's
     * disturbance-safety properties (DESIGN.md §13). The first makes
     * the counter skip masked *partial* activations — a row disturbed
     * through partial ACTs then crosses the threshold with no alert
     * ever raised. The second delays RFM readiness until a full
     * recovery window after the alert — the mitigation lands one
     * window too late on every path. Both affect simulated behaviour,
     * so they participate in the canonical config / result-cache key.
     */
    bool faultPracDropCount = false;
    bool faultPracLateRfm = false;

    // PRA design-space ablation knobs (DESIGN.md "ablations").
    /** OR the masks of queued same-row writes into one activation. */
    bool mergeWriteMasks = true;
    /** Charge tRRD/tFAW by activation power instead of by count. */
    bool weightedActWindow = true;
    /**
     * Minimum partial-activation granularity in MAT groups: 1 = the
     * paper's one-eighth row, 2 = quarter row, 4 = half row. Coarser
     * masks need fewer PRA latch bits (and fewer wordline gates).
     */
    unsigned minActGranularity = 1;

    /**
     * Simulation engine. Observational: both engines produce identical
     * simulated behaviour (it is excluded from the canonical config and
     * result-cache keys), so this only trades wall-clock time. The
     * PRA_ENGINE=tick|event environment variable overrides it
     * process-wide.
     */
    EngineKind engine = EngineKind::Event;   // pra-lint: observational

    /**
     * Scheme under evaluation: an immutable registry singleton
     * (core/scheme.h). Never null; pointer equality is scheme identity.
     */
    const SchemeModel *scheme = &baselineScheme();

    Timing timing{};
    power::PowerParams power{};

    /** Apply the paper's restricted close-page study configuration. */
    void
    useRestrictedClosePage()
    {
        policy = PagePolicy::RestrictedClose;
        mapping = AddrMapping::LineInterleaved;
    }
};

} // namespace pra::dram

#endif // PRA_DRAM_CONFIG_H
