/**
 * @file
 * Maintenance engine: refresh scheduling and row-close policies.
 *
 * Owns the *decisions* that keep the array healthy and the row buffers
 * policy-conformant — when an all-bank refresh issues, when the relaxed
 * close policy shuts a useless open row, when a restricted-close
 * auto-precharge retires — while the controller keeps the *mechanism*
 * (stats, checker/auditor reporting, bus accounting) behind the
 * MaintenanceHooks interface it implements.
 *
 * Future maintenance operations with their own issue windows — PRAC
 * per-bank alert recovery, targeted-row-refresh, scrubbing — plug in
 * through registerOp(): an op is polled once per scheduling round after
 * refresh and before the request scheduler, and returns true when it
 * consumed the round's command slot (see DESIGN.md §9).
 */
#ifndef PRA_DRAM_MAINTENANCE_ENGINE_H
#define PRA_DRAM_MAINTENANCE_ENGINE_H

#include <functional>
#include <utility>
#include <vector>

#include "dram/bank_engine.h"
#include "dram/config.h"

namespace pra::dram {

/** Command mechanisms the maintenance engine drives (the controller). */
class MaintenanceHooks
{
  public:
    /** Explicit PRE command (occupies a command-bus slot). */
    virtual void issuePrecharge(unsigned rank_id, unsigned bank_id,
                                Cycle now) = 0;
    /** Auto-precharge retire (RDA/WRA-encoded; no command-bus slot). */
    virtual void issueAutoPrecharge(unsigned rank_id, unsigned bank_id,
                                    Cycle now) = 0;
    /** All-bank refresh to @p rank_id. */
    virtual void issueRefresh(unsigned rank_id, Cycle now) = 0;

  protected:
    ~MaintenanceHooks() = default;
};

/** Refresh + close-policy decision engine (see file header). */
class MaintenanceEngine
{
  public:
    MaintenanceEngine(const DramConfig &cfg, BankEngine &banks,
                      MaintenanceHooks &hooks)
        : cfg_(&cfg), banks_(&banks), hooks_(&hooks)
    {
    }

    /**
     * Retire pending auto-precharges (restricted close-page). Runs
     * every cycle — the precharge is encoded in the previous column
     * command, so it needs no command-bus slot.
     */
    void stepAutoPrecharge(Cycle now);

    /** Issue an all-bank refresh to any rank that is due and ready. */
    bool tryRefresh(Cycle now);

    /**
     * Close open rows that no queued request can use (relaxed close
     * policy), or that a due refresh needs shut. Open-page keeps rows
     * open unless refresh forces the close.
     */
    bool tryMaintenanceClose(Cycle now);

    /**
     * A pluggable maintenance operation: returns true when it issued a
     * command (consuming this round's slot).
     */
    using MaintenanceOp = std::function<bool(Cycle)>;

    /** Register @p op; polled in registration order by tryOps(). */
    void registerOp(MaintenanceOp op)
    {
        ops_.push_back(std::move(op));
    }

    /**
     * True when any pluggable op is registered. Ops are opaque (no wake
     * contract), so the event engine must poll every cycle while one is
     * present (DESIGN.md §11).
     */
    bool hasOps() const { return !ops_.empty(); }

    /**
     * Event-engine wake bound (DESIGN.md §11): the earliest cycle > @p
     * now at which a maintenance decision could newly fire — a refresh
     * deadline or tRFC completion, a pending auto-precharge retiring, a
     * close-policy precharge whose tRAS/tWR/tRTP gate releases, or a due
     * refresh becoming issuable once every bank clears tRP. Exact for
     * the no-intervening-commands window the event engine guarantees:
     * every input (open rows, pending-work counters, deadlines) can
     * otherwise change only inside a scheduling round.
     */
    Cycle nextWakeAt(Cycle now) const;

    /** Poll registered ops; true when one consumed the round. */
    bool
    tryOps(Cycle now)
    {
        for (auto &op : ops_) {
            if (op(now))
                return true;
        }
        return false;
    }

    // --- Analysis choice-enumeration seams ---------------------------------
    //
    // The offline model checker (src/analysis) explores *every* legal
    // maintenance decision, not just the first one the try*/step*
    // methods would take. These enumerators are the single source of
    // truth: the try*/step* methods above are implemented on top of
    // them, so the live controller and the checker can never disagree
    // about which commands are candidates at a given cycle.

    /** (rank, bank) pair identifying a maintenance target. */
    using BankRef = std::pair<unsigned, unsigned>;

    /** Ranks whose refresh is due and issuable at @p now, in rank order. */
    std::vector<unsigned> refreshCandidates(Cycle now) const;

    /**
     * Banks the close policy may precharge at @p now (useless open rows
     * under relaxed close, or any open row blocking a due refresh), in
     * (rank, bank) order.
     */
    std::vector<BankRef> closeCandidates(Cycle now) const;

    /** Banks whose pending auto-precharge can retire at @p now. */
    std::vector<BankRef> autoPrechargeCandidates(Cycle now) const;

  private:
    // Shared decision predicates: the try*/step* hot paths and the
    // vector-returning enumerators above both reduce to these, so the
    // live controller and the model checker can never disagree about
    // which commands are candidates at a given cycle.
    bool autoPreReady(const Bank &bank, Cycle now) const;
    bool refreshReady(const Rank &rank, Cycle now) const;
    bool closeEligible(unsigned r, unsigned b, const Bank &bank,
                       bool want_refresh, Cycle now) const;

    const DramConfig *cfg_;
    BankEngine *banks_;
    MaintenanceHooks *hooks_;
    std::vector<MaintenanceOp> ops_;
};

} // namespace pra::dram

#endif // PRA_DRAM_MAINTENANCE_ENGINE_H
