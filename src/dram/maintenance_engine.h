/**
 * @file
 * Maintenance engine: refresh scheduling and row-close policies.
 *
 * Owns the *decisions* that keep the array healthy and the row buffers
 * policy-conformant — when an all-bank refresh issues, when the relaxed
 * close policy shuts a useless open row, when a restricted-close
 * auto-precharge retires — while the controller keeps the *mechanism*
 * (stats, checker/auditor reporting, bus accounting) behind the
 * MaintenanceHooks interface it implements.
 *
 * Maintenance operations with their own issue windows — PRAC alert
 * recovery (prac_rfm, DESIGN.md §13), targeted-row-refresh, scrubbing —
 * plug in through registerOp(): an op is polled once per scheduling
 * round after refresh and before the request scheduler, and returns
 * true when it consumed the round's command slot (see DESIGN.md §9).
 * The named overload additionally carries a nextWakeAt bound so the
 * event engine can sleep through the op's quiet stretches; unnamed ops
 * stay opaque (polled every cycle).
 */
#ifndef PRA_DRAM_MAINTENANCE_ENGINE_H
#define PRA_DRAM_MAINTENANCE_ENGINE_H

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dram/bank_engine.h"
#include "dram/config.h"
#include "dram/prac.h"

namespace pra::dram {

/** Command mechanisms the maintenance engine drives (the controller). */
class MaintenanceHooks
{
  public:
    /** Explicit PRE command (occupies a command-bus slot). */
    virtual void issuePrecharge(unsigned rank_id, unsigned bank_id,
                                Cycle now) = 0;
    /** Auto-precharge retire (RDA/WRA-encoded; no command-bus slot). */
    virtual void issueAutoPrecharge(unsigned rank_id, unsigned bank_id,
                                    Cycle now) = 0;
    /** All-bank refresh to @p rank_id. */
    virtual void issueRefresh(unsigned rank_id, Cycle now) = 0;

    /**
     * All-bank RFM mitigation to @p rank_id (PRAC alert recovery,
     * DESIGN.md §13). Default no-op so hooks that never enable PRAC —
     * the model checker's null hooks included — need not implement it.
     */
    virtual void
    issueRfm(unsigned rank_id, Cycle now)
    {
        (void)rank_id;
        (void)now;
    }

  protected:
    ~MaintenanceHooks() = default;
};

/** Refresh + close-policy decision engine (see file header). */
class MaintenanceEngine
{
  public:
    MaintenanceEngine(const DramConfig &cfg, BankEngine &banks,
                      MaintenanceHooks &hooks)
        : cfg_(&cfg), banks_(&banks), hooks_(&hooks)
    {
    }

    /**
     * Retire pending auto-precharges (restricted close-page). Runs
     * every cycle — the precharge is encoded in the previous column
     * command, so it needs no command-bus slot.
     */
    void stepAutoPrecharge(Cycle now);

    /** Issue an all-bank refresh to any rank that is due and ready. */
    bool tryRefresh(Cycle now);

    /**
     * Close open rows that no queued request can use (relaxed close
     * policy), or that a due refresh needs shut. Open-page keeps rows
     * open unless refresh forces the close.
     */
    bool tryMaintenanceClose(Cycle now);

    /**
     * A pluggable maintenance operation: returns true when it issued a
     * command (consuming this round's slot).
     */
    using MaintenanceOp = std::function<bool(Cycle)>;

    /**
     * An op's event-engine wake contract: the earliest cycle at which
     * the op could newly issue, or the all-ones sentinel when it is
     * state-gated (a command inside a round must enable it first).
     * Bounds at or before now are clamped to now + 1 by opWakeBound(),
     * so a sloppy bound can never livelock the event engine.
     */
    using OpWakeBound = std::function<Cycle(Cycle)>;

    /** Register an opaque @p op; polled in registration order. */
    void
    registerOp(MaintenanceOp op)
    {
        ops_.push_back({std::string(), std::move(op), nullptr});
    }

    /**
     * Register @p op under @p name with an event-engine wake bound.
     * The name is the coverage handle the maintop-coverage lint rule
     * traces (tests + canonicalConfig must reference it).
     */
    void
    registerOp(std::string name, MaintenanceOp op, OpWakeBound wake)
    {
        ops_.push_back({std::move(name), std::move(op), std::move(wake)});
    }

    /** True when any pluggable op is registered. */
    bool hasOps() const { return !ops_.empty(); }

    /**
     * True when an op without a wake contract is registered: the event
     * engine must then poll every cycle (DESIGN.md §11). Bounded ops
     * publish through opWakeBound() instead.
     */
    bool
    hasOpaqueOps() const
    {
        for (const auto &e : ops_) {
            if (!e.wake)
                return true;
        }
        return false;
    }

    /**
     * Minimum wake bound over the bounded ops, clamped strictly past
     * @p now (see OpWakeBound); the all-ones sentinel when every bound
     * is quiet. Opaque ops are excluded — hasOpaqueOps() covers them.
     */
    Cycle
    opWakeBound(Cycle now) const
    {
        Cycle next = ~Cycle{0};
        for (const auto &e : ops_) {
            if (!e.wake)
                continue;
            Cycle c = e.wake(now);
            if (c != ~Cycle{0} && c <= now)
                c = now + 1;
            next = std::min(next, c);
        }
        return next;
    }

    /**
     * Event-engine wake bound (DESIGN.md §11): the earliest cycle > @p
     * now at which a maintenance decision could newly fire — a refresh
     * deadline or tRFC completion, a pending auto-precharge retiring, a
     * close-policy precharge whose tRAS/tWR/tRTP gate releases, or a due
     * refresh becoming issuable once every bank clears tRP. Exact for
     * the no-intervening-commands window the event engine guarantees:
     * every input (open rows, pending-work counters, deadlines) can
     * otherwise change only inside a scheduling round.
     */
    Cycle nextWakeAt(Cycle now) const;

    /** Poll registered ops; true when one consumed the round. */
    bool
    tryOps(Cycle now)
    {
        for (auto &e : ops_) {
            if (e.op(now))
                return true;
        }
        return false;
    }

    // --- PRAC / RFM (DESIGN.md §13) ----------------------------------------

    /**
     * Attach the PRAC counter state the RFM decision paths consult (not
     * owned; nullptr keeps every RFM path inert). The close policy also
     * reads it: an outstanding alert forces useless-row closes exactly
     * like a due refresh, so the rank can drain toward the mitigation.
     */
    void setPracState(const PracState *prac) { prac_ = prac; }

    /** Ranks an RFM mitigation may issue to at @p now, in rank order. */
    std::vector<unsigned> rfmCandidates(Cycle now) const;

    /** First rank in rfmCandidates() order; true when an RFM issued. */
    bool tryRfm(Cycle now);

    /**
     * Wake bound for the prac_rfm op (see OpWakeBound): the earliest
     * cycle an alerted rank's banks all clear tRP and the (possibly
     * faulted) readiness gate opens. Sentinel when no alert is pending
     * or the drain is state-gated.
     */
    Cycle rfmWakeBound(Cycle now) const;

    // --- Analysis choice-enumeration seams ---------------------------------
    //
    // The offline model checker (src/analysis) explores *every* legal
    // maintenance decision, not just the first one the try*/step*
    // methods would take. These enumerators are the single source of
    // truth: the try*/step* methods above are implemented on top of
    // them, so the live controller and the checker can never disagree
    // about which commands are candidates at a given cycle.

    /** (rank, bank) pair identifying a maintenance target. */
    using BankRef = std::pair<unsigned, unsigned>;

    /** Ranks whose refresh is due and issuable at @p now, in rank order. */
    std::vector<unsigned> refreshCandidates(Cycle now) const;

    /**
     * Banks the close policy may precharge at @p now (useless open rows
     * under relaxed close, or any open row blocking a due refresh), in
     * (rank, bank) order.
     */
    std::vector<BankRef> closeCandidates(Cycle now) const;

    /** Banks whose pending auto-precharge can retire at @p now. */
    std::vector<BankRef> autoPrechargeCandidates(Cycle now) const;

  private:
    struct OpEntry
    {
        std::string name;     //!< Empty for opaque (unnamed) ops.
        MaintenanceOp op;
        OpWakeBound wake;     //!< nullptr for opaque ops.
    };

    // Shared decision predicates: the try*/step* hot paths and the
    // vector-returning enumerators above both reduce to these, so the
    // live controller and the model checker can never disagree about
    // which commands are candidates at a given cycle.
    bool autoPreReady(const Bank &bank, Cycle now) const;
    bool refreshReady(const Rank &rank, Cycle now) const;
    bool rfmReady(unsigned r, const Rank &rank, Cycle now) const;
    bool closeEligible(unsigned r, unsigned b, const Bank &bank,
                       bool want_maint, Cycle now) const;
    /** Rank needs its banks shut: refresh due or PRAC alert pending. */
    bool wantMaint(unsigned r, const Rank &rank, Cycle now) const;

    const DramConfig *cfg_;
    BankEngine *banks_;
    MaintenanceHooks *hooks_;
    const PracState *prac_ = nullptr;
    std::vector<OpEntry> ops_;
};

} // namespace pra::dram

#endif // PRA_DRAM_MAINTENANCE_ENGINE_H
