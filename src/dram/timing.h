/**
 * @file
 * DDR3-1600 timing parameters in DRAM bus cycles (tCK = 1.25 ns).
 * Values follow the paper's Table 3 baseline configuration; parameters
 * the table omits (tRTP, tWTR, tRFC, tREFI, tXP) use the Samsung 2Gb
 * K4B2G0846E datasheet values at DDR3-1600.
 */
#ifndef PRA_DRAM_TIMING_H
#define PRA_DRAM_TIMING_H

namespace pra::dram {

/** DRAM device timing set (all values in bus cycles). */
struct Timing
{
    unsigned tRcd = 11;   //!< ACT to column command.
    unsigned tRp = 11;    //!< PRE to ACT.
    unsigned tCas = 11;   //!< Column read to data (RL).
    unsigned tRas = 28;   //!< ACT to PRE.
    unsigned tWr = 12;    //!< End of write data to PRE.
    unsigned tCcd = 4;    //!< Column command to column command.
    unsigned tRrd = 5;    //!< ACT to ACT, different banks.
    unsigned tFaw = 24;   //!< Four-activation window.
    unsigned tRc = 39;    //!< ACT to ACT, same bank (tRAS + tRP).
    unsigned wl = 8;      //!< Write latency (CWL).
    unsigned tRtp = 6;    //!< Read to PRE.
    unsigned tWtr = 6;    //!< End of write data to read command.
    unsigned tRfc = 128;  //!< Refresh cycle (160 ns for 2Gb).
    unsigned tRefi = 6240; //!< Refresh interval (7.8 us).
    unsigned tXp = 5;     //!< Power-down exit latency.
    unsigned tRtrs = 2;   //!< Rank-to-rank data-bus switch bubble.
    unsigned burstCycles = 4; //!< BL8 on a DDR bus: 8 beats = 4 cycles.

    // DDR4 bank grouping (1 group = DDR3 semantics).
    unsigned bankGroups = 1;  //!< Bank groups per rank.
    unsigned tCcdL = 4;       //!< Column-to-column, same bank group.

    /** Extra cycles a partial (PRA) activation adds for mask delivery. */
    unsigned praMaskCycles = 1;

    /**
     * RFM (refresh management) cycle time: how long an all-bank RFM
     * mitigation command blocks the rank. JEDEC leaves tRFM device-
     * dependent but at most tRFC; DDR5 datasheets place the all-bank
     * value near tRFC/2, which 80 cycles is for the 2Gb part modeled
     * here. Only consulted when DramConfig::pracEnabled is set.
     */
    unsigned tRfm = 80;

    unsigned rl() const { return tCas; }
};

} // namespace pra::dram

#endif // PRA_DRAM_TIMING_H
