#include "dram/address_mapping.h"

#include <cassert>

namespace pra::dram {

namespace {

/** Extract @p count low bits from @p v and shift them out. */
unsigned
take(Addr &v, unsigned count)
{
    const unsigned field = static_cast<unsigned>(v & ((1ull << count) - 1));
    v >>= count;
    return field;
}

unsigned
log2u(unsigned v)
{
    unsigned bits = 0;
    while ((1u << bits) < v)
        ++bits;
    assert((1u << bits) == v && "organization sizes must be powers of two");
    return bits;
}

} // namespace

AddressMapper::AddressMapper(const DramConfig &cfg)
    : mapping_(cfg.mapping),
      channels_(cfg.channels),
      ranks_(cfg.ranksPerChannel),
      banks_(cfg.banksPerRank),
      rows_(cfg.rowsPerBank),
      cols_(cfg.linesPerRow)
{
}

DecodedAddr
AddressMapper::decode(Addr addr) const
{
    Addr v = addr >> 6;   // Line address: 64 B granularity.
    DecodedAddr d;
    switch (mapping_) {
      case AddrMapping::RowInterleaved:
        d.col = take(v, log2u(cols_));
        d.channel = take(v, log2u(channels_));
        d.bank = take(v, log2u(banks_));
        d.rank = take(v, log2u(ranks_));
        break;
      case AddrMapping::LineInterleaved:
        d.channel = take(v, log2u(channels_));
        d.bank = take(v, log2u(banks_));
        d.rank = take(v, log2u(ranks_));
        d.col = take(v, log2u(cols_));
        break;
    }
    d.row = static_cast<std::uint32_t>(v % rows_);
    return d;
}

Addr
AddressMapper::encode(const DecodedAddr &loc) const
{
    Addr v = loc.row;
    switch (mapping_) {
      case AddrMapping::RowInterleaved:
        v = (v << log2u(ranks_)) | loc.rank;
        v = (v << log2u(banks_)) | loc.bank;
        v = (v << log2u(channels_)) | loc.channel;
        v = (v << log2u(cols_)) | loc.col;
        break;
      case AddrMapping::LineInterleaved:
        v = (v << log2u(cols_)) | loc.col;
        v = (v << log2u(ranks_)) | loc.rank;
        v = (v << log2u(banks_)) | loc.bank;
        v = (v << log2u(channels_)) | loc.channel;
        break;
    }
    return v << 6;
}

Addr
AddressMapper::capacityBytes() const
{
    return static_cast<Addr>(channels_) * ranks_ * banks_ * rows_ * cols_ *
           kLineBytes;
}

} // namespace pra::dram
