/**
 * @file
 * PRAC: per-row activation counting with Alert Back-Off and RFM
 * recovery (DESIGN.md §13).
 *
 * Real PRAC DRAM counts activations inside the array; the controller
 * only sees the alert pin. This model keeps the counters controller-
 * side in a bounded tag CAM per bank (the hottest-row working set),
 * Misra-Gries style: when a new row displaces a full CAM's minimum
 * entry it *inherits* min-count + 1, so every tracked count is a sound
 * over-approximation of the row's true activation count — a row can be
 * mitigated early, never late — and the tracked sum rises by exactly 1
 * per counted activation. That gives the conservation identity
 *
 *     trackedSum(rank) == countedActs(rank) - mitigatedCount(rank)
 *
 * which verify::Auditor re-derives from the event stream and checks
 * online during sweeps.
 *
 * Alert Back-Off: when any tracked count reaches disturbanceThreshold
 * - 1, the rank raises its alert; further activations to the rank are
 * blocked until an RFM mitigation clears the hottest entry. The model
 * checker proves that, under this protocol, no row's activation count
 * can reach the threshold on any explored path, and that the
 * mitigation always lands within DramConfig::pracRecoveryWindow of the
 * alert.
 *
 * The two PRAC fault hooks (DramConfig::faultPracDropCount,
 * faultPracLateRfm) weaken exactly this state machine; the checker's
 * disturbance-safety properties must catch both.
 *
 * PracState is a plain value type: the live controller owns one, and
 * the model checker copies one per explored state.
 */
#ifndef PRA_DRAM_PRAC_H
#define PRA_DRAM_PRAC_H

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"
#include "dram/config.h"

namespace pra::dram {

/** One tag-CAM entry: a tracked row and its over-approximate count. */
struct PracEntry
{
    std::uint32_t row = 0;
    std::uint32_t count = 0;
};

/** What one RFM mitigation cleared (for events and replay scripts). */
struct PracMitigation
{
    unsigned bank = 0;
    std::uint32_t row = 0;
    std::uint32_t cleared = 0;   //!< Tracked count the RFM reset.
};

/** Controller-side PRAC counter/alert state machine (see file header). */
class PracState
{
  public:
    /** Sentinel cycle: no pending wake. */
    static constexpr Cycle kNever = ~Cycle{0};

    /** Disabled state (no banks tracked; every query is inert). */
    PracState() = default;

    explicit PracState(const DramConfig &cfg);

    bool enabled() const { return enabled_; }

    /**
     * Count an activation of (rank, bank, row) at @p now and raise the
     * rank's alert when the row's tracked count reaches threshold - 1.
     * @p partial marks a masked (PRA) activation — the drop_count fault
     * hook skips exactly those, which is the bug the model checker's
     * threshold property must catch.
     */
    void onActivate(unsigned rank, unsigned bank, std::uint32_t row,
                    bool partial, Cycle now);

    /** Alert Back-Off: ACTs to @p rank are blocked while this holds. */
    bool alertActive(unsigned rank) const;

    /** Cycle the outstanding alert was raised (valid while active). */
    Cycle alertRaisedAt(unsigned rank) const;

    /**
     * True when an RFM mitigation may issue to @p rank (alert pending;
     * the late_rfm fault hook additionally holds it back until a full
     * recovery window has already elapsed — one window too late).
     */
    bool rfmReady(unsigned rank, Cycle now) const;

    /**
     * Earliest cycle rfmReady() can turn true: kNever with no alert,
     * the faulted release cycle under late_rfm, otherwise 0 (ready now;
     * only the rank's bank state gates the command). Event-engine wake
     * bound for the prac_rfm maintenance op.
     */
    Cycle rfmReadyAt(unsigned rank) const;

    /**
     * Apply an RFM to @p rank: clear the hottest tracked entry and
     * re-arm (or drop) the alert. The alert window restarts at @p now
     * when other entries still sit at threshold - 1 — each mitigation
     * buys one fresh recovery window.
     */
    PracMitigation applyRfm(unsigned rank, Cycle now);

    // --- Conservation accessors (verify::Auditor cross-checks these) ------
    std::uint64_t countedActs(unsigned rank) const;
    std::uint64_t mitigatedCount(unsigned rank) const;
    std::uint64_t trackedSum(unsigned rank) const;

    /**
     * Fold the behavioural PRAC state (CAM contents in insertion order,
     * alert flag and its now-relative age saturated at @p horizon) into
     * @p h. The monotone conservation counters are deliberately
     * excluded — they never influence a future decision.
     */
    void fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const;

  private:
    struct RankState
    {
        std::vector<std::vector<PracEntry>> cams;   //!< One CAM per bank.
        bool alert = false;
        Cycle alertRaisedAt = 0;
        std::uint64_t countedActs = 0;
        std::uint64_t mitigated = 0;
    };

    bool enabled_ = false;
    unsigned threshold_ = 0;
    unsigned camEntries_ = 0;
    Cycle recoveryWindow_ = 0;
    bool faultDropCount_ = false;
    bool faultLateRfm_ = false;
    std::vector<RankState> ranks_;
};

} // namespace pra::dram

#endif // PRA_DRAM_PRAC_H
