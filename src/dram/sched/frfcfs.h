/**
 * @file
 * FR-FCFS scheduling (the paper's baseline policy) and its write-age
 * variant.
 */
#ifndef PRA_DRAM_SCHED_FRFCFS_H
#define PRA_DRAM_SCHED_FRFCFS_H

#include <algorithm>

#include "dram/sched/scheduler_policy.h"

namespace pra::dram {

/**
 * First-Ready FCFS: row hits anywhere in a queue issue ahead of older
 * misses, reads are prioritized over writes, and the write queue drains
 * in bursts governed by high/low watermark hysteresis. Bit-identical to
 * the pre-decomposition monolithic controller.
 */
class FrFcfsPolicy : public SchedulerPolicy
{
  public:
    explicit FrFcfsPolicy(const DramConfig &cfg) : cfg_(&cfg) {}

    const char *name() const override { return "frfcfs"; }

    void
    onTick(const SchedulerInputs &in, Cycle) override
    {
        if (in.writeQueueSize >= cfg_->writeHighWatermark)
            drainMode_ = true;
        else if (in.writeQueueSize <= cfg_->writeLowWatermark)
            drainMode_ = false;
    }

    bool
    writesFirst(const SchedulerInputs &in, Cycle) const override
    {
        return drainMode_ || in.readQueueSize == 0;
    }

    std::size_t
    columnWindow(std::size_t queue_size) const override
    {
        return queue_size;   // Row hits may come from anywhere.
    }

    std::size_t
    prepareWindow(std::size_t queue_size) const override
    {
        // Preparing banks for the oldest few requests bounds per-cycle
        // work without changing behaviour in practice.
        return std::min<std::size_t>(queue_size, kPrepareWindow);
    }

    bool drainMode() const { return drainMode_; }

    static constexpr std::size_t kPrepareWindow = 16;

  protected:
    const DramConfig *cfg_;
    bool drainMode_ = false;
};

/**
 * FR-FCFS with oldest-write promotion: identical reordering, but once
 * the oldest queued write has aged past writeAgePromotionCycles the
 * write queue is serviced first even below the high watermark. Caps the
 * worst-case write latency that pure read-priority FR-FCFS allows under
 * sustained read streams.
 */
class FrFcfsWriteAgePolicy : public FrFcfsPolicy
{
  public:
    using FrFcfsPolicy::FrFcfsPolicy;

    const char *name() const override { return "frfcfs_wage"; }

    bool
    writesFirst(const SchedulerInputs &in, Cycle now) const override
    {
        if (FrFcfsPolicy::writesFirst(in, now))
            return true;
        return in.writeQueueSize > 0 &&
               now - in.oldestWriteArrival > cfg_->writeAgePromotionCycles;
    }

    Cycle
    nextDecisionChangeAt(const SchedulerInputs &in,
                         Cycle now) const override
    {
        // The oldest write crosses the promotion age at a fixed future
        // cycle; nothing else in this policy flips on time alone.
        if (in.writeQueueSize == 0)
            return ~Cycle{0};
        const Cycle flip =
            in.oldestWriteArrival + cfg_->writeAgePromotionCycles + 1;
        return flip > now ? flip : ~Cycle{0};
    }
};

} // namespace pra::dram

#endif // PRA_DRAM_SCHED_FRFCFS_H
