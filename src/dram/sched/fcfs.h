/**
 * @file
 * Strict first-come-first-served scheduling (ablation reference).
 */
#ifndef PRA_DRAM_SCHED_FCFS_H
#define PRA_DRAM_SCHED_FCFS_H

#include "dram/sched/scheduler_policy.h"

namespace pra::dram {

/**
 * FCFS: each queue is serviced strictly in arrival order — the scans
 * may only look at the queue head, so a row miss at the head blocks
 * younger row hits behind it (no first-ready reordering). Between the
 * classes, the older head request goes first, which also removes the
 * watermark drain hysteresis. The lower row-hit rate this produces is
 * the classic motivation for FR-FCFS (Rixner et al., ISCA 2000) and
 * shows up directly in the scheduler ablation table.
 */
class FcfsPolicy : public SchedulerPolicy
{
  public:
    explicit FcfsPolicy(const DramConfig &) {}

    const char *name() const override { return "fcfs"; }

    void onTick(const SchedulerInputs &, Cycle) override {}

    bool
    writesFirst(const SchedulerInputs &in, Cycle) const override
    {
        if (in.readQueueSize == 0)
            return in.writeQueueSize > 0;
        if (in.writeQueueSize == 0)
            return false;
        return in.oldestWriteArrival < in.oldestReadArrival;
    }

    std::size_t
    columnWindow(std::size_t queue_size) const override
    {
        return queue_size ? 1 : 0;
    }

    std::size_t
    prepareWindow(std::size_t queue_size) const override
    {
        return queue_size ? 1 : 0;
    }
};

} // namespace pra::dram

#endif // PRA_DRAM_SCHED_FCFS_H
