#include "dram/sched/scheduler_policy.h"

#include "dram/sched/fcfs.h"
#include "dram/sched/frfcfs.h"

namespace pra::dram {

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::FrFcfs:
        return "frfcfs";
      case SchedulerKind::Fcfs:
        return "fcfs";
      case SchedulerKind::FrFcfsWriteAge:
        return "frfcfs_wage";
    }
    return "?";
}

std::unique_ptr<SchedulerPolicy>
makeSchedulerPolicy(const DramConfig &cfg)
{
    switch (cfg.scheduler) {
      case SchedulerKind::Fcfs:
        return std::make_unique<FcfsPolicy>(cfg);
      case SchedulerKind::FrFcfsWriteAge:
        return std::make_unique<FrFcfsWriteAgePolicy>(cfg);
      case SchedulerKind::FrFcfs:
        break;
    }
    return std::make_unique<FrFcfsPolicy>(cfg);
}

} // namespace pra::dram
