/**
 * @file
 * Pluggable request-scheduling policies for the memory controller.
 *
 * The controller owns the *mechanism* of command issue — timing gates,
 * bus arbitration, bank FSMs — while a SchedulerPolicy owns the
 * *selection*: which service class (reads or writes) goes first this
 * cycle, and how deep into each age-ordered queue the column-access and
 * prepare scans may reorder. The controller consults the policy at
 * fixed points in its tick:
 *
 *  1. onTick() on every scheduling round (even command-bus-busy ones),
 *     so a policy's hysteresis state tracks queue occupancy exactly as
 *     the pre-decomposition monolith's drain flag did;
 *  2. writesFirst() when a scheduling round actually runs;
 *  3. columnWindow()/prepareWindow() to bound the two FR-FCFS scans;
 *  4. nextDecisionChangeAt() so the event engine (DESIGN.md §11) wakes
 *     for purely time-driven selection flips (write-age promotion).
 *
 * A window of 1 disables reordering entirely (strict per-queue FCFS); a
 * window of queue_size reproduces classic FR-FCFS row-hit-first
 * behaviour. New policies implement this interface and register in
 * makeSchedulerPolicy(); see DESIGN.md §9.
 */
#ifndef PRA_DRAM_SCHED_SCHEDULER_POLICY_H
#define PRA_DRAM_SCHED_SCHEDULER_POLICY_H

#include <cstddef>
#include <memory>

#include "common/types.h"
#include "dram/config.h"

namespace pra::dram {

/** Queue occupancy snapshot the policy sees each cycle. */
struct SchedulerInputs
{
    std::size_t readQueueSize = 0;
    std::size_t writeQueueSize = 0;
    /** Arrival cycle of the oldest queued read; valid when non-empty. */
    Cycle oldestReadArrival = 0;
    /** Arrival cycle of the oldest queued write; valid when non-empty. */
    Cycle oldestWriteArrival = 0;
};

/** Request-selection policy interface (see file header). */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Policy name as spelled in config files (`scheduler = <name>`). */
    virtual const char *name() const = 0;

    /**
     * Called once per scheduling round before any issue decision,
     * including rounds on which the command bus is busy. Under the tick
     * engine that is every DRAM cycle; the event engine only runs
     * rounds at wake-up cycles, and every round it skips has unchanged
     * queue sizes (an enqueue forces a round), so hysteresis updates
     * must be idempotent for fixed inputs — repeated application with
     * the same SchedulerInputs reaches the same state as one.
     */
    virtual void onTick(const SchedulerInputs &in, Cycle now) = 0;

    /** True when the write queue is the primary class this round. */
    virtual bool writesFirst(const SchedulerInputs &in, Cycle now) const = 0;

    /**
     * Event-engine wake-up candidate: the next cycle (> @p now) at
     * which writesFirst() could change its answer with the queues
     * unchanged — a purely time-driven selection flip. Policies whose
     * selection depends only on occupancy keep the default (never).
     * A too-early candidate is harmless (the round re-evaluates); a
     * late one would let the event engine sleep through the flip.
     */
    virtual Cycle
    nextDecisionChangeAt(const SchedulerInputs &, Cycle) const
    {
        return ~Cycle{0};
    }

    /**
     * Number of queue-head entries the column-access (row-hit) scan may
     * consider, in age order. The first entry passing every timing gate
     * issues.
     */
    virtual std::size_t columnWindow(std::size_t queue_size) const = 0;

    /** Same bound for the prepare (ACT/PRE) scan. */
    virtual std::size_t prepareWindow(std::size_t queue_size) const = 0;
};

/** Config-file spelling of @p kind (frfcfs, fcfs, frfcfs_wage). */
const char *schedulerKindName(SchedulerKind kind);

/**
 * Every registered scheduler kind, in config-spelling order. Analysis
 * tools (the model checker sweeps the product space under each policy)
 * and parameterized tests iterate this instead of hard-coding the enum,
 * so a new policy is picked up everywhere by registering here.
 */
inline constexpr SchedulerKind kAllSchedulerKinds[] = {
    SchedulerKind::FrFcfs,
    SchedulerKind::Fcfs,
    SchedulerKind::FrFcfsWriteAge,
};

/** Instantiate the policy selected by @p cfg. */
std::unique_ptr<SchedulerPolicy> makeSchedulerPolicy(const DramConfig &cfg);

} // namespace pra::dram

#endif // PRA_DRAM_SCHED_SCHEDULER_POLICY_H
