/**
 * @file
 * Pluggable request-scheduling policies for the memory controller.
 *
 * The controller owns the *mechanism* of command issue — timing gates,
 * bus arbitration, bank FSMs — while a SchedulerPolicy owns the
 * *selection*: which service class (reads or writes) goes first this
 * cycle, and how deep into each age-ordered queue the column-access and
 * prepare scans may reorder. The controller consults the policy at
 * fixed points in its tick:
 *
 *  1. onTick() every DRAM cycle (even command-bus-busy ones), so a
 *     policy's hysteresis state tracks queue occupancy exactly as the
 *     pre-decomposition monolith's drain flag did;
 *  2. writesFirst() when a scheduling round actually runs;
 *  3. columnWindow()/prepareWindow() to bound the two FR-FCFS scans.
 *
 * A window of 1 disables reordering entirely (strict per-queue FCFS); a
 * window of queue_size reproduces classic FR-FCFS row-hit-first
 * behaviour. New policies implement this interface and register in
 * makeSchedulerPolicy(); see DESIGN.md §9.
 */
#ifndef PRA_DRAM_SCHED_SCHEDULER_POLICY_H
#define PRA_DRAM_SCHED_SCHEDULER_POLICY_H

#include <cstddef>
#include <memory>

#include "common/types.h"
#include "dram/config.h"

namespace pra::dram {

/** Queue occupancy snapshot the policy sees each cycle. */
struct SchedulerInputs
{
    std::size_t readQueueSize = 0;
    std::size_t writeQueueSize = 0;
    /** Arrival cycle of the oldest queued read; valid when non-empty. */
    Cycle oldestReadArrival = 0;
    /** Arrival cycle of the oldest queued write; valid when non-empty. */
    Cycle oldestWriteArrival = 0;
};

/** Request-selection policy interface (see file header). */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Policy name as spelled in config files (`scheduler = <name>`). */
    virtual const char *name() const = 0;

    /**
     * Called once per DRAM cycle before any issue decision, including
     * cycles on which the command bus is busy. Policies update
     * hysteresis state (e.g. write-drain mode) here.
     */
    virtual void onTick(const SchedulerInputs &in, Cycle now) = 0;

    /** True when the write queue is the primary class this round. */
    virtual bool writesFirst(const SchedulerInputs &in, Cycle now) const = 0;

    /**
     * Number of queue-head entries the column-access (row-hit) scan may
     * consider, in age order. The first entry passing every timing gate
     * issues.
     */
    virtual std::size_t columnWindow(std::size_t queue_size) const = 0;

    /** Same bound for the prepare (ACT/PRE) scan. */
    virtual std::size_t prepareWindow(std::size_t queue_size) const = 0;
};

/** Config-file spelling of @p kind (frfcfs, fcfs, frfcfs_wage). */
const char *schedulerKindName(SchedulerKind kind);

/**
 * Every registered scheduler kind, in config-spelling order. Analysis
 * tools (the model checker sweeps the product space under each policy)
 * and parameterized tests iterate this instead of hard-coding the enum,
 * so a new policy is picked up everywhere by registering here.
 */
inline constexpr SchedulerKind kAllSchedulerKinds[] = {
    SchedulerKind::FrFcfs,
    SchedulerKind::Fcfs,
    SchedulerKind::FrFcfsWriteAge,
};

/** Instantiate the policy selected by @p cfg. */
std::unique_ptr<SchedulerPolicy> makeSchedulerPolicy(const DramConfig &cfg);

} // namespace pra::dram

#endif // PRA_DRAM_SCHED_SCHEDULER_POLICY_H
