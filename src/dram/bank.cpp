#include "dram/bank.h"

#include <algorithm>

namespace pra::dram {

void
Bank::activate(Cycle now, std::uint32_t row, WordMask mask, bool partial)
{
    const Cycle sense_start = now + (partial ? t_.maskDelay : Cycle{0});
    rowBuf_.activate(row, mask);
    ++stateEpoch_;
    earliestColumn_ = sense_start + t_.actToColumn;
    earliestPre_ = sense_start + t_.actToPrecharge;
    // The ACT->ACT gap lower-bounds the next activation of this bank
    // even if the row is precharged early.
    earliestAct_ = std::max(earliestAct_, sense_start + t_.actToAct);
    hitCount_ = 0;
    autoPre_ = false;
}

void
Bank::read(Cycle now, unsigned burst_cycles)
{
    (void)burst_cycles;
    earliestColumn_ = std::max(earliestColumn_, now + t_.columnToColumn);
    earliestPre_ = std::max(earliestPre_, now + t_.readToPrecharge);
}

void
Bank::write(Cycle now, unsigned burst_cycles)
{
    earliestColumn_ = std::max(earliestColumn_, now + t_.columnToColumn);
    // Write recovery counts from the end of the data burst.
    earliestPre_ = std::max(earliestPre_,
                            now + t_.writeToPrecharge + burst_cycles);
}

void
Bank::precharge(Cycle now)
{
    rowBuf_.close();
    ++stateEpoch_;
    earliestAct_ = std::max(earliestAct_, now + t_.prechargeToAct);
    hitCount_ = 0;
    autoPre_ = false;
}

} // namespace pra::dram
