#include "dram/bank.h"

#include <algorithm>

namespace pra::dram {

void
Bank::activate(Cycle now, std::uint32_t row, WordMask mask, bool partial)
{
    const Cycle sense_start =
        now + (partial ? timing_->praMaskCycles : 0u);
    rowBuf_.activate(row, mask);
    ++stateEpoch_;
    earliestColumn_ = sense_start + timing_->tRcd;
    earliestPre_ = sense_start + timing_->tRas;
    // tRC lower-bounds the next activation of this bank even if the row
    // is precharged early.
    earliestAct_ = std::max(earliestAct_, sense_start + timing_->tRc);
    hitCount_ = 0;
    autoPre_ = false;
}

void
Bank::read(Cycle now, unsigned burst_cycles)
{
    (void)burst_cycles;
    earliestColumn_ = std::max(earliestColumn_, now + timing_->tCcd);
    earliestPre_ = std::max(earliestPre_, now + timing_->tRtp);
}

void
Bank::write(Cycle now, unsigned burst_cycles)
{
    earliestColumn_ = std::max(earliestColumn_, now + timing_->tCcd);
    // Write recovery counts from the end of the data burst.
    earliestPre_ = std::max(earliestPre_,
                            now + timing_->wl + burst_cycles + timing_->tWr);
}

void
Bank::precharge(Cycle now)
{
    rowBuf_.close();
    ++stateEpoch_;
    earliestAct_ = std::max(earliestAct_, now + timing_->tRp);
    hitCount_ = 0;
    autoPre_ = false;
}

} // namespace pra::dram
