/**
 * @file
 * Wakeup queue for the event-driven controller engine (DESIGN.md §11).
 *
 * After a quiet scheduling round the controller repopulates the queue
 * with the exact next-action cycle published by every layer (bank FSM
 * gap expiries, bus releases, refresh deadlines, scheduler decision
 * flips); tick() then fast-paths every cycle below the queue minimum.
 *
 * The structure is a flat vector with a cached minimum, not an ordered
 * heap: the queue is cleared and fully repopulated at each publish, so
 * only min() is ever consulted between publishes and heapification
 * would be pure overhead on the publish path. popDue() is a linear
 * compaction over a few dozen entries, and the vector storage keeps the
 * controller copyable and movable.
 */
#ifndef PRA_DRAM_WAKEUP_HEAP_H
#define PRA_DRAM_WAKEUP_HEAP_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/types.h"

namespace pra::dram {

/** Min-tracking bag of future wakeup cycles (duplicates allowed). */
class WakeupHeap
{
  public:
    void
    clear()
    {
        heap_.clear();
        min_ = kNone;
    }
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Smallest queued cycle; undefined when empty. */
    Cycle min() const { return min_; }

    void
    push(Cycle c)
    {
        heap_.push_back(c);
        if (c < min_)
            min_ = c;
    }

    /** Remove every entry <= @p now; returns how many were removed. */
    std::size_t
    popDue(Cycle now)
    {
        const std::size_t before = heap_.size();
        heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                                   [now](Cycle c) { return c <= now; }),
                    heap_.end());
        min_ = kNone;
        for (Cycle c : heap_)
            min_ = std::min(min_, c);
        return before - heap_.size();
    }

  private:
    static constexpr Cycle kNone = ~Cycle{0};

    std::vector<Cycle> heap_;
    Cycle min_ = kNone;
};

} // namespace pra::dram

#endif // PRA_DRAM_WAKEUP_HEAP_H
