/**
 * @file
 * One DRAM bank: row-buffer state (including the PRA latch) plus the
 * earliest-issue-cycle registers that enforce intra-bank timing
 * constraints (tRCD, tRAS, tRP, tRTP, tWR, tRC).
 */
#ifndef PRA_DRAM_BANK_H
#define PRA_DRAM_BANK_H

#include <algorithm>

#include "common/hash.h"
#include "common/types.h"
#include "core/row_buffer.h"
#include "dram/timing_tables.h"

namespace pra::dram {

/** Bank FSM with earliest-allowed-cycle timing registers. */
class Bank
{
  public:
    explicit Bank(const BankTables &t) : t_(t) {}

    const RowBufferState &rowBuffer() const { return rowBuf_; }
    bool isOpen() const { return rowBuf_.isOpen(); }

    /** Probe the row buffer for a request footprint. */
    RowProbe
    probe(std::uint32_t row, WordMask need) const
    {
        return rowBuf_.probe(row, need);
    }

    bool conventionalHit(std::uint32_t row) const
    {
        return rowBuf_.conventionalHit(row);
    }

    // --- Timing queries -------------------------------------------------

    bool canActivate(Cycle now) const
    {
        return !rowBuf_.isOpen() && now >= earliestAct_;
    }
    bool canRead(Cycle now) const
    {
        return rowBuf_.isOpen() && now >= earliestColumn_;
    }
    bool canWrite(Cycle now) const { return canRead(now); }
    bool canPrecharge(Cycle now) const
    {
        return rowBuf_.isOpen() && now >= earliestPre_;
    }
    Cycle earliestPrecharge() const { return earliestPre_; }
    Cycle earliestActivate() const { return earliestAct_; }
    Cycle earliestColumnAccess() const { return earliestColumn_; }

    /**
     * Monotonic counter bumped whenever the row-buffer contents change
     * (activate/precharge). A probe result cached against an epoch stays
     * valid while the epoch is unchanged and the request footprint is
     * unchanged.
     */
    std::uint32_t stateEpoch() const { return stateEpoch_; }

    // --- Command effects --------------------------------------------------

    /**
     * Activate @p row covering @p mask at cycle @p now.
     * @param partial  True when a PRA mask must be delivered first, which
     *                 delays sensing by praMaskCycles (paper Fig. 7a).
     */
    void activate(Cycle now, std::uint32_t row, WordMask mask, bool partial);

    /** Column read at @p now; burst occupies @p burst_cycles. */
    void read(Cycle now, unsigned burst_cycles);

    /** Column write at @p now; data arrives after WL. */
    void write(Cycle now, unsigned burst_cycles);

    /** Precharge at @p now. */
    void precharge(Cycle now);

    /** Block activations until @p until (refresh / power-down exit). */
    void
    blockUntil(Cycle until)
    {
        if (until > earliestAct_)
            earliestAct_ = until;
    }

    // --- Row-hit cap bookkeeping -----------------------------------------

    unsigned hitCount() const { return hitCount_; }
    void recordHit() { ++hitCount_; }

    /** Restricted close-page: auto-precharge pending after column op. */
    bool autoPrechargePending() const { return autoPre_; }
    void setAutoPrecharge() { autoPre_ = true; }

    // --- Analysis probe seam ----------------------------------------------

    /**
     * Fold the protocol-relevant bank state into @p h, with every timing
     * register expressed as a delta from @p now saturated at @p horizon.
     * Two banks whose futures are indistinguishable (all gates released,
     * same row-buffer contents) hash equal regardless of how they got
     * there — the normalization the offline model checker's state
     * deduplication relies on (src/analysis).
     */
    void
    fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const
    {
        auto delta = [&](Cycle reg) {
            h.add(reg <= now ? Cycle{0} : std::min(reg - now, horizon));
        };
        h.add(rowBuf_.isOpen());
        h.add(rowBuf_.isOpen() ? rowBuf_.openRow() : kInvalidRow);
        h.add(rowBuf_.openMask().bits());
        delta(earliestAct_);
        delta(earliestColumn_);
        delta(earliestPre_);
        h.add(hitCount_);
        h.add(autoPre_);
    }

  private:
    BankTables t_;
    RowBufferState rowBuf_;

    Cycle earliestAct_ = 0;     //!< tRP / tRC / tRFC gated.
    Cycle earliestColumn_ = 0;  //!< tRCD gated.
    Cycle earliestPre_ = 0;     //!< tRAS / tRTP / tWR gated.
    unsigned hitCount_ = 0;     //!< Column accesses since activation.
    bool autoPre_ = false;
    std::uint32_t stateEpoch_ = 0;  //!< Row-buffer change counter.
};

} // namespace pra::dram

#endif // PRA_DRAM_BANK_H
