#include "dram/prac.h"

#include <algorithm>
#include <cassert>

namespace pra::dram {

PracState::PracState(const DramConfig &cfg)
    : enabled_(cfg.pracEnabled), threshold_(cfg.disturbanceThreshold),
      camEntries_(cfg.pracCamEntries),
      recoveryWindow_(cfg.pracRecoveryWindow),
      faultDropCount_(cfg.faultPracDropCount),
      faultLateRfm_(cfg.faultPracLateRfm)
{
    if (!enabled_)
        return;
    assert(threshold_ >= 2 && "alert fires at threshold - 1");
    assert(camEntries_ >= 1);
    ranks_.resize(cfg.ranksPerChannel);
    for (auto &r : ranks_)
        r.cams.resize(cfg.banksPerRank);
}

void
PracState::onActivate(unsigned rank, unsigned bank, std::uint32_t row,
                      bool partial, Cycle now)
{
    if (!enabled_)
        return;
    // drop_count fault: masked partial activations disturb their
    // neighbours like any other ACT, but the broken counter skips them.
    if (faultDropCount_ && partial)
        return;

    RankState &rs = ranks_[rank];
    auto &cam = rs.cams[bank];
    ++rs.countedActs;

    PracEntry *hit = nullptr;
    for (auto &e : cam) {
        if (e.row == row) {
            hit = &e;
            break;
        }
    }
    if (!hit) {
        if (cam.size() < camEntries_) {
            cam.push_back({row, 0});
            hit = &cam.back();
        } else {
            // Misra-Gries eviction: displace the minimum entry and
            // inherit its count — the new row *might* have been that
            // hot, so over-approximate (never under-count a row).
            hit = &cam.front();
            for (auto &e : cam) {
                if (e.count < hit->count)
                    hit = &e;
            }
            hit->row = row;
        }
    }
    ++hit->count;

    // Alert Back-Off one activation early: the next ACT to this row
    // would reach the threshold, so stall the rank until an RFM lands.
    if (!rs.alert && hit->count >= threshold_ - 1) {
        rs.alert = true;
        rs.alertRaisedAt = now;
    }
}

bool
PracState::alertActive(unsigned rank) const
{
    return enabled_ && ranks_[rank].alert;
}

Cycle
PracState::alertRaisedAt(unsigned rank) const
{
    return ranks_[rank].alertRaisedAt;
}

bool
PracState::rfmReady(unsigned rank, Cycle now) const
{
    if (!alertActive(rank))
        return false;
    // late_rfm fault: readiness held back until the recovery window has
    // already elapsed, so the mitigation is one window too late.
    if (faultLateRfm_)
        return now > ranks_[rank].alertRaisedAt + recoveryWindow_;
    return true;
}

Cycle
PracState::rfmReadyAt(unsigned rank) const
{
    if (!alertActive(rank))
        return kNever;
    if (faultLateRfm_)
        return ranks_[rank].alertRaisedAt + recoveryWindow_ + 1;
    return 0;
}

PracMitigation
PracState::applyRfm(unsigned rank, Cycle now)
{
    RankState &rs = ranks_[rank];
    PracMitigation out;
    // Clear the hottest tracked entry across the rank (first-seen on
    // ties, so the choice is deterministic).
    unsigned victim_bank = 0;
    std::size_t victim_idx = 0;
    std::uint32_t victim_count = 0;
    for (unsigned b = 0; b < rs.cams.size(); ++b) {
        for (std::size_t i = 0; i < rs.cams[b].size(); ++i) {
            if (rs.cams[b][i].count > victim_count) {
                victim_bank = b;
                victim_idx = i;
                victim_count = rs.cams[b][i].count;
            }
        }
    }
    if (victim_count > 0) {
        auto &cam = rs.cams[victim_bank];
        out = {victim_bank, cam[victim_idx].row, victim_count};
        cam.erase(cam.begin() +
                  static_cast<std::ptrdiff_t>(victim_idx));
        rs.mitigated += victim_count;
    }
    // Re-arm when another row already sits at the alert line; the
    // recovery window restarts — each RFM buys one fresh window.
    rs.alert = false;
    for (const auto &cam : rs.cams) {
        for (const auto &e : cam) {
            if (e.count >= threshold_ - 1) {
                rs.alert = true;
                rs.alertRaisedAt = now;
                break;
            }
        }
        if (rs.alert)
            break;
    }
    return out;
}

std::uint64_t
PracState::countedActs(unsigned rank) const
{
    return enabled_ ? ranks_[rank].countedActs : 0;
}

std::uint64_t
PracState::mitigatedCount(unsigned rank) const
{
    return enabled_ ? ranks_[rank].mitigated : 0;
}

std::uint64_t
PracState::trackedSum(unsigned rank) const
{
    if (!enabled_)
        return 0;
    std::uint64_t sum = 0;
    for (const auto &cam : ranks_[rank].cams) {
        for (const auto &e : cam)
            sum += e.count;
    }
    return sum;
}

void
PracState::fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const
{
    if (!enabled_)
        return;
    for (const auto &rs : ranks_) {
        h.add(rs.alert);
        // The alert's *age* (not its absolute cycle) drives the
        // recovery-window property, saturated like every other
        // now-relative register.
        if (rs.alert)
            h.add(std::min(now - rs.alertRaisedAt, horizon));
        for (const auto &cam : rs.cams) {
            h.add(cam.size());
            for (const auto &e : cam) {
                h.add(e.row);
                h.add(e.count);
            }
        }
    }
}

} // namespace pra::dram
