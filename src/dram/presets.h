/**
 * @file
 * Device presets: the paper's baseline DDR3-1600 configuration and a
 * DDR4-2400 projection.
 *
 * The paper's Section 4.2 discusses how PRA maps onto DDR4 (spare pins
 * such as WE/A14 for the PRA command, unused address-bus cycles for the
 * mask); the DDR4 preset lets the experiments test that projection on a
 * DDR4-shaped device: 16 banks in 4 bank groups (tCCD_S/tCCD_L), longer
 * rows relative to the request size, lower VDD, and faster clock. Power
 * parameters are the Table 3 values scaled by the DDR4 supply ratio
 * (1.2 V vs 1.5 V, quadratic for dynamic terms) — a documented
 * projection, not datasheet numbers.
 */
#ifndef PRA_DRAM_PRESETS_H
#define PRA_DRAM_PRESETS_H

#include "dram/config.h"

namespace pra::dram {

/** The paper's baseline: 2Gb x8 DDR3-1600 (Table 3). */
inline DramConfig
ddr3_1600()
{
    return DramConfig{};
}

/** DDR4-2400 projection: 4Gb x8, 16 banks in 4 groups. */
inline DramConfig
ddr4_2400()
{
    DramConfig cfg;
    cfg.banksPerRank = 16;
    cfg.rowsPerBank = 32768;   // 4Gb x8: 16 banks x 32k rows x 8Kb.

    Timing &t = cfg.timing;
    t.tRcd = 16;
    t.tRp = 16;
    t.tCas = 16;
    t.tRas = 39;
    t.tRc = 55;
    t.tWr = 18;
    t.tCcd = 4;    // tCCD_S.
    t.tCcdL = 6;
    t.bankGroups = 4;
    t.tRrd = 4;    // tRRD_S.
    t.tFaw = 26;
    t.wl = 12;
    t.tRtp = 9;
    t.tWtr = 9;
    t.tRfc = 312;  // 260 ns at 0.833 ns/cycle (4Gb).
    t.tRefi = 9363;
    t.tXp = 8;

    power::PowerParams &p = cfg.power;
    p.tCkNs = 0.8333;
    p.tRc = t.tRc;
    p.tRfc = t.tRfc;
    p.tRefi = t.tRefi;
    // Supply scaling 1.5 V -> 1.2 V: dynamic terms ~(1.2/1.5)^2 = 0.64.
    constexpr double kVddScale = 0.64;
    p.preStandby *= kVddScale;
    p.prePowerDown *= kVddScale;
    p.refresh *= kVddScale;
    p.actStandby *= kVddScale;
    p.read *= kVddScale;
    p.write *= kVddScale;
    p.readIo *= kVddScale;
    p.writeOdt *= kVddScale;
    p.readTerm *= kVddScale;
    p.writeTerm *= kVddScale;
    for (double &a : p.actPower)
        a *= kVddScale;
    return cfg;
}

} // namespace pra::dram

#endif // PRA_DRAM_PRESETS_H
