/**
 * @file
 * Precomputed command-pair gap tables (DESIGN.md §11).
 *
 * Hot-path legality in the bank/rank/channel engines used to be
 * re-derived from raw Timing parameters on every issue decision
 * (tRCD + mask delay here, WL + burst + tWR there). These tables
 * flatten every command-pair rule into one precomputed minimum-gap
 * value per scope — bank (same-bank FSM gaps), rank (inter-bank and
 * maintenance gaps), channel (bus turnarounds and bank-group spacing) —
 * built once per controller from DramConfig. The independent
 * TimingChecker deliberately keeps deriving the same rules from the raw
 * parameters, so a table-derivation bug surfaces as a checker violation
 * under PRA_AUDIT, and tests/test_timing_tables.cpp pins every entry
 * against the minimum gap the checker accepts.
 *
 * Derivations (all in cycles):
 *   bank.maskDelay        = tPRA mask cycles (partial ACT row-sense delay)
 *   bank.actToColumn      = tRCD
 *   bank.actToPrecharge   = tRAS
 *   bank.actToAct         = tRC
 *   bank.columnToColumn   = tCCD
 *   bank.readToPrecharge  = tRTP
 *   bank.writeToPrecharge = WL + tWR        (burst added per command)
 *   bank.prechargeToAct   = tRP
 *   rank.actToActSameRank = tRRD            (weighted via actGap())
 *   rank.fawWindow        = tFAW
 *   rank.refreshInterval  = tREFI
 *   rank.refreshCycle     = tRFC
 *   rank.rfmCycle         = tRFM (PRAC mitigation rank-block window)
 *   rank.powerUp          = tXP
 *   channel.readLatency   = RL (= tCAS)
 *   channel.writeLatency  = WL
 *   channel.burst         = burst beats per column command
 *   channel.writeToRead   = WL + tWTR       (burst added per command)
 *   channel.rankSwitch    = tRTRS
 *   channel.columnSameGroup  = tCCD_L
 *   channel.columnCrossGroup = tCCD_S (= tCCD)
 *   channel.maskCycles    = tPRA mask cycles (command-bus occupancy)
 *   channel.readToWrite   = RL + burst + tRTRS - WL (cross-rank RD->WR
 *                           data-bus turnaround; same-rank RD->WR omits
 *                           the tRTRS term — the off-by-tRTRS trap)
 */
#ifndef PRA_DRAM_TIMING_TABLES_H
#define PRA_DRAM_TIMING_TABLES_H

#include <algorithm>
#include <cmath>

#include "common/types.h"

namespace pra::dram {

struct DramConfig;

/** Same-bank command-pair gaps (consumed by Bank). */
struct BankTables
{
    Cycle maskDelay = 0;        //!< Partial ACT: mask transfer before sense.
    Cycle actToColumn = 0;      //!< ACT -> RD/WR.
    Cycle actToPrecharge = 0;   //!< ACT -> PRE.
    Cycle actToAct = 0;         //!< ACT -> ACT.
    Cycle columnToColumn = 0;   //!< RD/WR -> RD/WR.
    Cycle readToPrecharge = 0;  //!< RD -> PRE.
    Cycle writeToPrecharge = 0; //!< WR -> PRE, excluding the burst.
    Cycle prechargeToAct = 0;   //!< PRE -> ACT.
};

/** Same-rank, cross-bank gaps and maintenance windows (Rank). */
struct RankTables
{
    Cycle actToActSameRank = 0; //!< ACT -> ACT, different banks, weight 1.
    Cycle fawWindow = 0;        //!< Rolling four-activate window span.
    Cycle refreshInterval = 0;  //!< REF cadence.
    Cycle refreshCycle = 0;     //!< REF -> any command to the rank.
    Cycle rfmCycle = 0;         //!< RFM -> any command to the rank.
    Cycle powerUp = 0;          //!< Power-down exit to first command.

    /**
     * Weighted ACT->ACT gap: a partial activation of weight w consumes
     * w of the rail budget, so the pairwise spacing scales with the
     * *previous* activation's weight, floored at the 2-cycle command
     * bus minimum (mirrors TimingChecker's rule exactly).
     */
    Cycle
    actGap(double weight) const
    {
        return static_cast<Cycle>(std::max(
            2.0,
            std::round(static_cast<double>(actToActSameRank) * weight)));
    }
};

/** Channel-scope bus turnaround and bank-group gaps (BusArbiter). */
struct ChannelTables
{
    Cycle readLatency = 0;      //!< RD command -> first data beat (RL).
    Cycle writeLatency = 0;     //!< WR command -> first data beat (WL).
    Cycle burst = 0;            //!< Data-bus beats per column command.
    Cycle writeToRead = 0;      //!< WR -> RD same rank, excluding burst.
    Cycle rankSwitch = 0;       //!< Data-bus rank turnaround.
    Cycle columnSameGroup = 0;  //!< Column -> column, same bank group.
    Cycle columnCrossGroup = 0; //!< Column -> column, across groups.
    Cycle maskCycles = 0;       //!< Partial-ACT mask command-bus hold.
    Cycle bankGroups = 0;       //!< Groups per rank; <= 1 disables rule.
    Cycle readToWrite = 0;      //!< RD -> WR *cross rank* (see header).
};

/** All three scopes, built once per controller from the raw config. */
struct TimingTables
{
    BankTables bank;
    RankTables rank;
    ChannelTables channel;

    static TimingTables build(const DramConfig &cfg);
};

} // namespace pra::dram

#endif // PRA_DRAM_TIMING_TABLES_H
