/**
 * @file
 * Per-bank state engine for one channel.
 *
 * Owns the rank/bank FSMs (open row, open PRA mask, hit streak, timing
 * registers, state epochs) plus the controller-side pending-work
 * bookkeeping: how many queued requests target each bank and how many
 * of those could hit the currently open (possibly partial) row. The
 * controller's scheduling paths, the cycle-skip nextEventCycle() bound,
 * and the maintenance engine all query bank state through this one API
 * instead of reaching into parallel arrays.
 */
#ifndef PRA_DRAM_BANK_ENGINE_H
#define PRA_DRAM_BANK_ENGINE_H

#include <deque>
#include <vector>

#include "dram/config.h"
#include "dram/rank.h"
#include "dram/request.h"

namespace pra::dram {

/** Rank/bank state plus pending-work counters for one channel. */
class BankEngine
{
  public:
    explicit BankEngine(const DramConfig &cfg);

    unsigned numRanks() const
    {
        return static_cast<unsigned>(ranks_.size());
    }
    Rank &rank(unsigned r) { return ranks_[r]; }
    const Rank &rank(unsigned r) const { return ranks_[r]; }

    Bank &bank(unsigned r, unsigned b) { return ranks_[r].bank(b); }
    const Bank &bank(unsigned r, unsigned b) const
    {
        return ranks_[r].bank(b);
    }

    /**
     * Row-buffer probe of @p req against its bank, cached per request
     * and invalidated by the bank's state epoch (activate/precharge) or
     * a footprint change (write combining).
     */
    RowProbe
    probe(Request &req) const
    {
        const Bank &bank = ranks_[req.loc.rank].bank(req.loc.bank);
        if (req.probeEpoch != bank.stateEpoch()) {
            req.cachedProbe = bank.probe(req.loc.row, req.need);
            req.probeEpoch = bank.stateEpoch();
            // A read that false-hits a speculatively opened row has
            // outlived its prediction: pin the full-row fallback so the
            // re-activation after the precharge covers the demand (one
            // seam shared by the live controller and the model checker).
            if (req.cachedProbe == RowProbe::FalseHit && !req.isWrite)
                req.fullRowFallback = true;
        }
        return req.cachedProbe;
    }

    // --- Pending-work bookkeeping ----------------------------------------

    /** Queued requests targeting bank (r, b). */
    unsigned queued(unsigned r, unsigned b) const
    {
        return info(r, b).queued;
    }

    /** Of those, requests the open row can serve (mask-aware). */
    unsigned openRowMatches(unsigned r, unsigned b) const
    {
        return info(r, b).openRowMatches;
    }

    /** Any queued request targeting rank @p r. */
    bool
    anyQueuedInRank(unsigned r) const
    {
        for (unsigned b = 0; b < cfg_->banksPerRank; ++b) {
            if (info(r, b).queued > 0)
                return true;
        }
        return false;
    }

    /** Account a newly queued @p req (also primes its probe cache). */
    void
    onEnqueue(Request &req)
    {
        BankInfo &bi = info(req.loc.rank, req.loc.bank);
        ++bi.queued;
        if (probe(req) == RowProbe::Hit)
            ++bi.openRowMatches;
    }

    /** Account a request leaving the queues via a column access. */
    void
    onDequeue(const Request &req)
    {
        BankInfo &bi = info(req.loc.rank, req.loc.bank);
        --bi.queued;
        if (bi.openRowMatches > 0)
            --bi.openRowMatches;
    }

    /** A precharge closed the row: nothing can hit it any more. */
    void
    onPrecharge(unsigned r, unsigned b)
    {
        info(r, b).openRowMatches = 0;
    }

    /**
     * Recount open-row matches for bank (r, b) after an activation
     * changed the open row/mask, scanning both queues with the cached
     * probe.
     */
    void recountOpenRowMatches(unsigned r, unsigned b,
                               std::deque<Request> &readQ,
                               std::deque<Request> &writeQ);

    /**
     * Analysis probe seam: fold every rank/bank FSM plus the pending-work
     * counters into @p h, timing registers normalized to @p now and
     * saturated at @p horizon (see Bank::fingerprint). Used by the
     * offline model checker (src/analysis) for state deduplication.
     */
    void fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const;

  private:
    struct BankInfo
    {
        unsigned queued = 0;         //!< Requests targeting this bank.
        unsigned openRowMatches = 0; //!< Of those, servable by open row.
    };

    BankInfo &info(unsigned r, unsigned b)
    {
        return bankInfo_[r * cfg_->banksPerRank + b];
    }
    const BankInfo &info(unsigned r, unsigned b) const
    {
        return bankInfo_[r * cfg_->banksPerRank + b];
    }

    const DramConfig *cfg_;
    std::vector<Rank> ranks_;
    std::vector<BankInfo> bankInfo_;
};

} // namespace pra::dram

#endif // PRA_DRAM_BANK_ENGINE_H
