#include "dram/checker.h"

#include <cmath>
#include <sstream>

namespace pra::dram {

TimingChecker::TimingChecker(const DramConfig &cfg) : cfg_(cfg)
{
    ranks_.resize(cfg_.ranksPerChannel);
    for (auto &r : ranks_)
        r.banks.resize(cfg_.banksPerRank);
}

void
TimingChecker::fail(const CheckedCommand &cmd, const std::string &why)
{
    if (violations_.size() >= 64)
        return;   // Keep the report bounded.
    std::ostringstream os;
    os << "cycle " << cmd.cycle << " rank " << cmd.rank << " bank "
       << cmd.bank << ": " << why;
    violations_.push_back(os.str());
}

TimingChecker::BankShadow &
TimingChecker::bank(const CheckedCommand &cmd)
{
    return ranks_[cmd.rank].banks[cmd.bank];
}

TimingChecker::RankShadow &
TimingChecker::rank(const CheckedCommand &cmd)
{
    return ranks_[cmd.rank];
}

void
TimingChecker::observe(const CheckedCommand &cmd)
{
    ++checked_;
    const Timing &t = cfg_.timing;
    RankShadow &rk = rank(cmd);
    BankShadow &bk = bank(cmd);

    if (cmd.cycle < rk.refreshUntil &&
        cmd.kind != CheckedCommand::Kind::Refresh) {
        fail(cmd, "command during tRFC of an ongoing refresh");
    }
    // The RFM recovery window blocks *everything* to the rank — a
    // refresh colliding with an in-progress mitigation is exactly the
    // collision the disturbance-safety family must rule out.
    if (cmd.cycle < rk.rfmUntil)
        fail(cmd, "command during tRFM of an ongoing RFM");

    switch (cmd.kind) {
      case CheckedCommand::Kind::Activate: {
        if (bk.open)
            fail(cmd, "ACT to an open bank");
        if (cmd.cycle < bk.actAllowed)
            fail(cmd, "ACT violates tRP/tRFC");
        if (bk.everActivated && cmd.cycle < bk.lastAct + t.tRc)
            fail(cmd, "ACT violates tRC");
        if (rk.everActivated) {
            const auto gap = static_cast<Cycle>(
                std::max(2.0, std::round(t.tRrd * rk.lastActWeight)));
            if (cmd.cycle < rk.lastAct + gap)
                fail(cmd, "ACT violates (weighted) tRRD");
        }
        // Weighted tFAW: drop old entries, sum the rest.
        double in_window = 0.0;
        for (const auto &[cycle, w] : rk.actWindow) {
            if (cycle + t.tFaw > cmd.cycle)
                in_window += w;
        }
        if (in_window + cmd.weight > 4.0 + 1e-9)
            fail(cmd, "ACT violates (weighted) tFAW");
        rk.actWindow.emplace_back(cmd.cycle, cmd.weight);
        if (rk.actWindow.size() > 64)
            rk.actWindow.erase(rk.actWindow.begin());

        const Cycle sense = cmd.cycle +
                            (cmd.partial ? t.praMaskCycles : 0u);
        bk.open = true;
        bk.lastAct = sense;
        bk.everActivated = true;
        bk.columnAllowed = sense + t.tRcd;
        bk.prechargeAllowed = sense + t.tRas;
        rk.lastAct = cmd.cycle;
        rk.lastActWeight = cmd.weight;
        rk.everActivated = true;
        break;
      }

      case CheckedCommand::Kind::Read:
      case CheckedCommand::Kind::Write: {
        const bool is_write = cmd.kind == CheckedCommand::Kind::Write;
        if (!bk.open)
            fail(cmd, "column command to a closed bank");
        if (cmd.cycle < bk.columnAllowed)
            fail(cmd, "column command violates tRCD/tCCD");
        if (!is_write && cmd.cycle < rk.writeToReadOk)
            fail(cmd, "READ violates tWTR after a write to the rank");
        // DDR4 bank groups: the long tCCD_L applies to back-to-back
        // column commands within one group, tCCD(_S) across groups —
        // tracked at the channel level, independently of the per-bank
        // tCCD gate folded into columnAllowed.
        if (t.bankGroups > 1) {
            const unsigned group =
                cmd.bank / (cfg_.banksPerRank / t.bankGroups);
            if (anyColumnSeen_) {
                const bool same_group = group == lastColumnGroup_;
                const Cycle gap = same_group ? t.tCcdL : t.tCcd;
                if (cmd.cycle < lastColumnCycle_ + gap) {
                    fail(cmd, same_group
                                  ? "column command violates tCCD_L "
                                    "within a bank group"
                                  : "column command violates tCCD_S "
                                    "across bank groups");
                }
            }
            lastColumnCycle_ = cmd.cycle;
            lastColumnGroup_ = group;
            anyColumnSeen_ = true;
        }
        const Cycle data_start =
            cmd.cycle + (is_write ? t.wl : t.rl());
        // A burst that switches ranks pays the tRTRS bubble on top of
        // plain bus occupancy; the read-to-write direction change is the
        // interesting special case and gets its own message.
        Cycle bus_free = dataBusBusyUntil_;
        if (busUsed_ && cmd.rank != lastBusRank_)
            bus_free += t.tRtrs;
        if (data_start < bus_free) {
            if (is_write && lastBurstWasRead_ &&
                data_start >= dataBusBusyUntil_) {
                fail(cmd, "read-to-write rank turnaround violates tRTRS");
            } else {
                fail(cmd, "data-bus overlap");
            }
        }
        dataBusBusyUntil_ = data_start + cmd.burstCycles;
        busUsed_ = true;
        lastBusRank_ = cmd.rank;
        lastBurstWasRead_ = !is_write;
        bk.columnAllowed =
            std::max(bk.columnAllowed, cmd.cycle + t.tCcd);
        if (is_write) {
            rk.writeToReadOk =
                std::max(rk.writeToReadOk,
                         cmd.cycle + t.wl + cmd.burstCycles + t.tWtr);
            bk.prechargeAllowed =
                std::max(bk.prechargeAllowed,
                         cmd.cycle + t.wl + cmd.burstCycles + t.tWr);
        } else {
            bk.prechargeAllowed =
                std::max(bk.prechargeAllowed, cmd.cycle + t.tRtp);
        }
        break;
      }

      case CheckedCommand::Kind::Precharge:
        if (!bk.open)
            fail(cmd, "PRE to a closed bank");
        if (cmd.cycle < bk.prechargeAllowed)
            fail(cmd, "PRE violates tRAS/tRTP/tWR");
        bk.open = false;
        bk.actAllowed = cmd.cycle + t.tRp;
        break;

      case CheckedCommand::Kind::Refresh: {
        for (unsigned b = 0; b < rk.banks.size(); ++b) {
            if (rk.banks[b].open)
                fail(cmd, "REF with bank " + std::to_string(b) +
                              " open");
            if (cmd.cycle < rk.banks[b].actAllowed)
                fail(cmd, "REF before tRP of bank " + std::to_string(b));
        }
        rk.refreshUntil = cmd.cycle + t.tRfc;
        for (auto &b : rk.banks)
            b.actAllowed = std::max(b.actAllowed, rk.refreshUntil);
        break;
      }

      case CheckedCommand::Kind::Rfm: {
        if (!cfg_.pracEnabled)
            fail(cmd, "RFM with PRAC disabled");
        for (unsigned b = 0; b < rk.banks.size(); ++b) {
            if (rk.banks[b].open)
                fail(cmd, "RFM with bank " + std::to_string(b) +
                              " open");
            if (cmd.cycle < rk.banks[b].actAllowed)
                fail(cmd, "RFM before tRP of bank " + std::to_string(b));
        }
        rk.rfmUntil = cmd.cycle + t.tRfm;
        for (auto &b : rk.banks)
            b.actAllowed = std::max(b.actAllowed, rk.rfmUntil);
        break;
      }
    }
}

} // namespace pra::dram
