#include "dram/dram_system.h"

namespace pra::dram {

DramSystem::DramSystem(const DramConfig &cfg) : cfg_(cfg), mapper_(cfg_)
{
    channels_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c)
        channels_.emplace_back(cfg_, c);
}

bool
DramSystem::canAccept(Addr addr, bool is_write) const
{
    const DecodedAddr loc = mapper_.decode(addr);
    return channels_[loc.channel].canAccept(is_write);
}

bool
DramSystem::enqueue(Addr addr, bool is_write, WordMask mask,
                    unsigned core_id, std::uint64_t tag,
                    std::uint8_t chip_mask)
{
    Request req;
    req.addr = lineBase(addr);
    req.isWrite = is_write;
    req.mask = is_write ? mask : WordMask::full();
    req.chipMask = is_write ? chip_mask : std::uint8_t{0xff};
    req.coreId = core_id;
    req.tag = tag;
    req.loc = mapper_.decode(addr);
    if (!channels_[req.loc.channel].canAccept(is_write))
        return false;
    channels_[req.loc.channel].enqueue(req, now_);
    return true;
}

void
DramSystem::tick()
{
    for (auto &ch : channels_)
        ch.tick(now_);
    ++now_;
}

Cycle
DramSystem::nextEventCycle() const
{
    // Candidates are judged relative to the last simulated cycle: a gate
    // releasing exactly at now_ still produces a candidate (== now_), so
    // the caller never skips a cycle in which an action is possible.
    const Cycle last = now_ > 0 ? now_ - 1 : 0;
    Cycle next = ~Cycle{0};
    for (const auto &ch : channels_)
        next = std::min(next, ch.nextEventCycle(last));
    return next;
}

void
DramSystem::fastForwardTo(Cycle target)
{
    if (target <= now_)
        return;
    for (auto &ch : channels_)
        ch.fastForward(now_, target);
    now_ = target;
}

void
DramSystem::drain(Cycle max_cycles)
{
    // Standalone-driver convenience: runs until all queues and in-flight
    // transfers finish. Completions produced along the way are discarded;
    // callers that need them should tick() and drainCompletions()
    // themselves.
    const Cycle limit = now_ + max_cycles;
    while (busy() && now_ < limit) {
        tick();
        drainCompletions();
    }
}

std::vector<Completion>
DramSystem::drainCompletions()
{
    std::vector<Completion> all;
    for (auto &ch : channels_) {
        auto &done = ch.completions();
        all.insert(all.end(), done.begin(), done.end());
        done.clear();
    }
    return all;
}

bool
DramSystem::busy() const
{
    for (const auto &ch : channels_) {
        if (ch.busy())
            return true;
    }
    return false;
}

ControllerStats
DramSystem::aggregateStats() const
{
    ControllerStats agg;
    for (const auto &ch : channels_) {
        const ControllerStats &s = ch.stats();
        agg.readReqs += s.readReqs;
        agg.writeReqs += s.writeReqs;
        agg.readRowHits += s.readRowHits;
        agg.writeRowHits += s.writeRowHits;
        agg.readRowMisses += s.readRowMisses;
        agg.writeRowMisses += s.writeRowMisses;
        agg.readFalseHits += s.readFalseHits;
        agg.writeFalseHits += s.writeFalseHits;
        agg.actsForReads += s.actsForReads;
        agg.actsForWrites += s.actsForWrites;
        agg.precharges += s.precharges;
        agg.refreshes += s.refreshes;
        agg.rfms += s.rfms;
        agg.forwardedReads += s.forwardedReads;
        for (std::size_t g = 0; g < s.actGranularity.buckets(); ++g)
            agg.actGranularity.record(g, s.actGranularity.count(g));
        for (std::size_t g = 0; g < s.readActGranularity.buckets(); ++g)
            agg.readActGranularity.record(g, s.readActGranularity.count(g));
        agg.readLatency.merge(s.readLatency);
    }
    return agg;
}

EngineStats
DramSystem::engineStats() const
{
    EngineStats agg;
    for (const auto &ch : channels_) {
        const EngineStats &e = ch.engineStats();
        agg.rounds += e.rounds;
        agg.skippedTicks += e.skippedTicks;
        agg.wakeups += e.wakeups;
        agg.eventsPopped += e.eventsPopped;
        agg.heapPushes += e.heapPushes;
        agg.heapPeak = std::max(agg.heapPeak, e.heapPeak);
    }
    return agg;
}

power::EnergyCounts
DramSystem::energyCounts() const
{
    power::EnergyCounts counts;
    for (const auto &ch : channels_)
        counts += ch.energyCounts();
    counts.elapsedCycles = now_;   // Wall clock, not summed.
    return counts;
}

} // namespace pra::dram
