#include "dram/timing_tables.h"

#include "dram/config.h"

namespace pra::dram {

TimingTables
TimingTables::build(const DramConfig &cfg)
{
    const Timing &t = cfg.timing;
    TimingTables tt;

    tt.bank.maskDelay = t.praMaskCycles;
    tt.bank.actToColumn = t.tRcd;
    tt.bank.actToPrecharge = t.tRas;
    tt.bank.actToAct = t.tRc;
    tt.bank.columnToColumn = t.tCcd;
    tt.bank.readToPrecharge = t.tRtp;
    tt.bank.writeToPrecharge = Cycle{t.wl} + t.tWr;
    tt.bank.prechargeToAct = t.tRp;

    tt.rank.actToActSameRank = t.tRrd;
    tt.rank.fawWindow = t.tFaw;
    tt.rank.refreshInterval = t.tRefi;
    tt.rank.refreshCycle = t.tRfc;
    tt.rank.rfmCycle = t.tRfm;
    tt.rank.powerUp = t.tXp;

    tt.channel.readLatency = t.rl();
    tt.channel.writeLatency = t.wl;
    tt.channel.burst = t.burstCycles;
    tt.channel.writeToRead = Cycle{t.wl} + t.tWtr;
    tt.channel.rankSwitch = t.tRtrs;
    tt.channel.columnSameGroup = t.tCcdL;
    tt.channel.columnCrossGroup = t.tCcd;
    tt.channel.maskCycles = t.praMaskCycles;
    tt.channel.bankGroups = t.bankGroups;
    // Cross-rank RD->WR turnaround; clamp: with very short read latency
    // the write command needs no extra gap beyond the command bus.
    const Cycle rd_done = Cycle{t.rl()} + t.burstCycles + t.tRtrs;
    tt.channel.readToWrite = rd_done > t.wl ? rd_done - t.wl : 0;

    return tt;
}

} // namespace pra::dram
