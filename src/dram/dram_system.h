/**
 * @file
 * Top-level DRAM system: the address mapper plus one memory controller
 * per channel, aggregated statistics, and the power-model event counts.
 * This is the component a CPU/cache front-end (or a trace driver) talks
 * to.
 */
#ifndef PRA_DRAM_DRAM_SYSTEM_H
#define PRA_DRAM_DRAM_SYSTEM_H

#include <vector>

#include "dram/address_mapping.h"
#include "dram/controller.h"

namespace pra::dram {

/** Multi-channel DRAM system front door. */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &cfg);

    const DramConfig &config() const { return cfg_; }
    const AddressMapper &mapper() const { return mapper_; }

    /** Current DRAM cycle. */
    Cycle now() const { return now_; }

    /** True when the target channel queue can take the request. */
    bool canAccept(Addr addr, bool is_write) const;

    /**
     * Enqueue a 64 B transaction. @p mask carries the FGD dirty-word bits
     * for writes and @p chip_mask the SDS chip-access bits. Returns false
     * (and drops the request) when the queue is full — callers should
     * check canAccept first.
     */
    bool enqueue(Addr addr, bool is_write, WordMask mask, unsigned core_id,
                 std::uint64_t tag, std::uint8_t chip_mask = 0xff);

    /** Advance the whole DRAM system by one cycle. */
    void tick();

    /**
     * Cycle-skip support: conservative lower bound on the next cycle at
     * which any channel could act, judged from the last simulated cycle
     * (now()-1, so an action already unblocked for the upcoming cycle
     * yields a bound of exactly now() and no skip). Assumes no enqueue
     * happens in between. Only meaningful after at least one tick().
     */
    Cycle nextEventCycle() const;

    /**
     * Cycle-skip support: advance the clock from now() to @p target in
     * one jump, accounting background power for the skipped cycles. The
     * caller must have established via nextEventCycle() that every cycle
     * in [now(), target) is action-free.
     */
    void fastForwardTo(Cycle target);

    /** Run until all queues drain (bounded by @p max_cycles). */
    void drain(Cycle max_cycles = 2'000'000);

    /** Collect finished reads from all channels (clears them). */
    std::vector<Completion> drainCompletions();

    bool busy() const;

    /** Aggregated controller statistics over all channels. */
    ControllerStats aggregateStats() const;

    /** Aggregated power-event counts (elapsedCycles = wall clock). */
    power::EnergyCounts energyCounts() const;

    /**
     * Aggregated event-engine counters over all channels (counts sum,
     * heapPeak takes the max). Observational — see EngineStats.
     */
    EngineStats engineStats() const;

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }
    const MemoryController &channel(unsigned c) const { return channels_[c]; }

    /** Attach the invariant auditor (not owned) to every channel. */
    void
    attachAuditor(verify::Auditor *auditor)
    {
        for (auto &ch : channels_)
            ch.attachAuditor(auditor);
    }

  private:
    DramConfig cfg_;
    AddressMapper mapper_;
    std::vector<MemoryController> channels_;
    Cycle now_ = 0;
};

} // namespace pra::dram

#endif // PRA_DRAM_DRAM_SYSTEM_H
