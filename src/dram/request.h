/**
 * @file
 * Memory requests exchanged between the cache hierarchy and the DRAM
 * system, and the decoded DRAM coordinates of an address.
 */
#ifndef PRA_DRAM_REQUEST_H
#define PRA_DRAM_REQUEST_H

#include <cstdint>

#include "common/bitmask.h"
#include "common/types.h"
#include "core/row_buffer.h"

namespace pra::dram {

/** DRAM coordinates of a cache-line address. */
struct DecodedAddr
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint32_t row = 0;
    unsigned col = 0;   //!< Line index within the row (0..linesPerRow-1).

    bool
    sameRow(const DecodedAddr &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row;
    }
};

/** One 64 B read or write transaction. */
struct Request
{
    Addr addr = 0;
    bool isWrite = false;
    /**
     * Dirty-word mask for writes (the FGD bits delivered with the
     * writeback). Reads and non-PRA writebacks use a full mask.
     */
    WordMask mask = WordMask::full();
    /**
     * Chip-access mask for writes (SDS): bit c set when byte position c
     * of any word changed. Full for reads and non-SDS schemes.
     */
    std::uint8_t chipMask = 0xff;
    Cycle arrival = 0;       //!< Enqueue cycle at the controller.
    unsigned coreId = 0;     //!< Issuing core (for completion routing).
    std::uint64_t tag = 0;   //!< Opaque id the issuer uses to match.
    DecodedAddr loc;         //!< Filled in by the address mapper.

    // Controller bookkeeping.
    bool classified = false; //!< Row-hit accounting done.
    /**
     * Read-side partial activation fallback (DESIGN.md §12.4): set when
     * a probe for this read observed a row-buffer false hit — the open
     * (speculative) mask missed part of the demand. The next activation
     * for this request then opens the full row instead of re-trusting
     * the predictor, bounding the misprediction penalty at one extra
     * PRE + ACT. Never set for schemes without partial reads (their
     * reads always demand — and reopen — full rows anyway).
     */
    bool fullRowFallback = false;

    /**
     * Cached needOf() footprint: recomputed only when the masks change
     * (write combining), so the FR-FCFS scans do not re-derive it per
     * cycle per request.
     */
    WordMask need = WordMask::full();
    /** Bank state epoch the cached probe below was taken against. */
    std::uint32_t probeEpoch = kProbeInvalid;
    /** Row-buffer probe result cached at probeEpoch. */
    RowProbe cachedProbe = RowProbe::Closed;

    /**
     * Cached merged same-row write mask: valid while the controller's
     * write-queue epoch (bumped on any write enqueue/combine/dequeue)
     * matches, so repeated FR-FCFS prepare scans during a write drain do
     * not rescan the whole write queue per request per cycle.
     */
    WordMask cachedMergedMask = WordMask::full();
    /** Write-queue epoch the cached merged mask was taken against. */
    std::uint64_t mergedMaskEpoch = kMergedInvalid;

    static constexpr std::uint32_t kProbeInvalid = 0xffffffffu;
    static constexpr std::uint64_t kMergedInvalid = ~std::uint64_t{0};
};

/** Completion notification for a read. */
struct Completion
{
    std::uint64_t tag = 0;
    unsigned coreId = 0;
    Addr addr = 0;
    Cycle finish = 0;
    Cycle latency = 0;
};

} // namespace pra::dram

#endif // PRA_DRAM_REQUEST_H
