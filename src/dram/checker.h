/**
 * @file
 * Independent DDR3 protocol checker.
 *
 * Observes the controller's command stream and verifies every inter-
 * command timing constraint from its own shadow state — a second,
 * independently written implementation of the DDR3 rules, so a bug in
 * the controller or bank FSM cannot hide itself. Used by the test suite
 * (and attachable in any simulation via DramConfig::enableChecker) the
 * way DRAMSim2's sanity checking is.
 *
 * Checked rules:
 *  - ACT only to a closed bank, respecting tRP (after PRE), tRC (after
 *    previous ACT of the same bank), tRRD (after any ACT of the rank)
 *    and the four-activation window tFAW (weighted when the scheme uses
 *    partial activations);
 *  - column commands only to an open bank after tRCD (+ the PRA mask
 *    cycle for partial activations) and tCCD after a previous column
 *    command to the same rank;
 *  - with DDR4 bank groups, channel-level column spacing: tCCD_L after
 *    a column command to the same bank group, tCCD_S across groups;
 *  - PRE only after tRAS (from ACT), tRTP (from READ) and
 *    WL + burst + tWR (from WRITE);
 *  - REF only with all banks of the rank precharged, and no command to
 *    a refreshing rank before tRFC elapses;
 *  - RFM (PRAC mitigation) only with all banks of the rank precharged,
 *    and no command at all — refresh included — to the rank before its
 *    tRFM recovery window elapses;
 *  - READ no earlier than WL + burst + tWTR after a WRITE to the same
 *    rank (write-to-read turnaround);
 *  - data-bus occupancy never overlaps between transfers on a channel,
 *    and a burst that switches ranks (including the read-to-write
 *    direction change) pays the tRTRS bus bubble first.
 */
#ifndef PRA_DRAM_CHECKER_H
#define PRA_DRAM_CHECKER_H

#include <string>
#include <vector>

#include "dram/config.h"
#include "dram/request.h"

namespace pra::dram {

/** One observed command for the checker. */
struct CheckedCommand
{
    enum class Kind
    {
        Activate,
        Read,
        Write,
        Precharge,
        Refresh,
        Rfm,       //!< PRAC mitigation; rank-scoped like Refresh.
    };

    Kind kind;
    Cycle cycle;
    unsigned rank;
    unsigned bank;
    std::uint32_t row = 0;
    bool partial = false;      //!< PRA activation (extra mask cycle).
    double weight = 1.0;       //!< tFAW charge of an activation.
    unsigned burstCycles = 0;  //!< Data-bus occupancy of column cmds.
};

/** Shadow-state DDR3 rule verifier for one channel. */
class TimingChecker
{
  public:
    explicit TimingChecker(const DramConfig &cfg);

    /** Observe a command; records a violation string if illegal. */
    void observe(const CheckedCommand &cmd);

    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    bool clean() const { return violations_.empty(); }
    std::uint64_t commandsChecked() const { return checked_; }

  private:
    struct BankShadow
    {
        bool open = false;
        Cycle lastAct = 0;
        bool everActivated = false;
        Cycle columnAllowed = 0;   //!< tRCD(+mask) gate.
        Cycle prechargeAllowed = 0;
        Cycle actAllowed = 0;      //!< tRP / tRFC gate.
    };

    struct RankShadow
    {
        std::vector<BankShadow> banks;
        std::vector<std::pair<Cycle, double>> actWindow;
        Cycle lastAct = 0;
        double lastActWeight = 1.0;
        bool everActivated = false;
        Cycle refreshUntil = 0;
        Cycle rfmUntil = 0;        //!< tRFM recovery-window gate.
        Cycle writeToReadOk = 0;   //!< tWTR gate for READs to this rank.
    };

    void fail(const CheckedCommand &cmd, const std::string &why);
    BankShadow &bank(const CheckedCommand &cmd);
    RankShadow &rank(const CheckedCommand &cmd);

    DramConfig cfg_;
    std::vector<RankShadow> ranks_;
    Cycle lastColumnCycle_ = 0;      //!< DDR4 bank-group spacing.
    unsigned lastColumnGroup_ = 0;
    bool anyColumnSeen_ = false;
    Cycle dataBusBusyUntil_ = 0;
    bool busUsed_ = false;           //!< A burst has occupied the bus.
    unsigned lastBusRank_ = 0;       //!< Rank of the last data burst.
    bool lastBurstWasRead_ = false;  //!< Direction of the last burst.
    std::vector<std::string> violations_;
    std::uint64_t checked_ = 0;
};

} // namespace pra::dram

#endif // PRA_DRAM_CHECKER_H
