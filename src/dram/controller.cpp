#include "dram/controller.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "verify/auditor.h"

namespace pra::dram {

namespace {

/** Command tracing to stderr, enabled with PRA_TRACE=1 (debug aid). */
bool
traceEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("PRA_TRACE");
        return env && env[0] == '1';
    }();
    return enabled;
}

void
trace(Cycle now, unsigned ch, const char *cmd, unsigned rank, unsigned bank,
      std::uint32_t row, unsigned extra)
{
    if (traceEnabled()) {
        std::fprintf(stderr, "%8llu ch%u %-4s r%u b%u row%u x%u\n",
                     static_cast<unsigned long long>(now), ch, cmd, rank,
                     bank, row, extra);
    }
}

} // namespace

MemoryController::MemoryController(const DramConfig &cfg,
                                   unsigned channel_id)
    : cfg_(&cfg), traits_(cfg.traits()), channelId_(channel_id),
      banks_(cfg), bus_(cfg), sched_(makeSchedulerPolicy(cfg)),
      maint_(cfg, banks_, *this)
{
    if (cfg.enableChecker)
        checker_ = std::make_unique<TimingChecker>(cfg);
}

bool
MemoryController::canAccept(bool is_write) const
{
    return is_write ? writeQ_.size() < cfg_->writeQueueDepth
                    : readQ_.size() < cfg_->readQueueDepth;
}

WordMask
MemoryController::needOf(const Request &req) const
{
    // Reads always need the full row (full bandwidth on reads is the
    // asymmetric design point of PRA); writes need their dirty words.
    // Under SDS the same algebra runs at chip granularity.
    if (!req.isWrite)
        return WordMask::full();
    if (traits_.chipSelect) {
        const WordMask chips{req.chipMask};
        return chips.empty() ? WordMask::full() : chips;
    }
    if (!traits_.partialWrites)
        return WordMask::full();
    return req.mask.empty() ? WordMask::full() : req.mask;
}

void
MemoryController::enqueue(Request req, Cycle now)
{
    req.arrival = now;
    assert(req.loc.channel == channelId_);

    if (req.isWrite) {
        ++stats_.writeReqs;
        if (audit_) {
            // Report the pre-combine transaction; the auditor's shadow
            // queue performs its own combining.
            audit_->onWriteEnqueue({now, channelId_, req.loc.rank,
                                    req.loc.bank, req.loc.row, req.addr,
                                    req.mask, req.chipMask});
        }
        // Write combining: coalesce with a queued write to the same line
        // (O(1) via the address index; queued write addresses are unique).
        if (auto it = writeIndex_.find(req.addr); it != writeIndex_.end()) {
            Request &w = writeQ_[it->second];
            w.mask |= req.mask;
            w.chipMask |= req.chipMask;
            // The merged masks can change the write's footprint, so the
            // cached need/probe are stale.
            w.need = needOf(w);
            w.probeEpoch = Request::kProbeInvalid;
            ++writeQueueEpoch_;
            return;
        }
        req.need = needOf(req);
        writeQ_.push_back(req);
        writeIndex_.emplace(req.addr, writeQ_.size() - 1);
        ++writeQueueEpoch_;
    } else {
        ++stats_.readReqs;
        // Forwarding: a read that matches a queued write is served from
        // the write queue without a DRAM access.
        if (writeIndex_.count(req.addr)) {
            ++stats_.forwardedReads;
            finished_.push_back({req.tag, req.coreId, req.addr, now + 1,
                                 1});
            return;
        }
        req.need = needOf(req);
        readQ_.push_back(req);
    }

    // Mask-aware accounting: only requests the (possibly partial) open
    // row can actually serve count as pending hits. The engine's probe
    // also primes the request's cache for the upcoming scheduler scans.
    Request &queued_req = req.isWrite ? writeQ_.back() : readQ_.back();
    banks_.onEnqueue(queued_req);
}

void
MemoryController::eraseWriteIndex(Addr addr, std::size_t idx)
{
    writeIndex_.erase(addr);
    // A mid-queue erase shifts every later entry down one slot; renumber
    // from the queue itself (deterministic order) instead of walking the
    // hash map. The queue is at most writeQueueDepth (64) entries, so
    // this stays cheap.
    for (std::size_t i = idx; i < writeQ_.size(); ++i)
        writeIndex_[writeQ_[i].addr] = i;
}

void
MemoryController::classify(Request &req, RowProbe probe)
{
    if (req.classified)
        return;
    req.classified = true;
    switch (probe) {
      case RowProbe::Hit:
        if (req.isWrite)
            ++stats_.writeRowHits;
        else
            ++stats_.readRowHits;
        break;
      case RowProbe::FalseHit:
        // A conventional DRAM would have hit; PRA must PRE + re-ACT.
        if (req.isWrite) {
            ++stats_.writeFalseHits;
            ++stats_.writeRowMisses;
        } else {
            ++stats_.readFalseHits;
            ++stats_.readRowMisses;
        }
        break;
      case RowProbe::Closed:
      case RowProbe::Conflict:
        if (req.isWrite)
            ++stats_.writeRowMisses;
        else
            ++stats_.readRowMisses;
        break;
    }
}

WordMask
MemoryController::mergedWriteMask(Request &req) const
{
    if (req.mergedMaskEpoch == writeQueueEpoch_)
        return req.cachedMergedMask;
    // "PRA masks are ORed to activate partial rows as many as possible to
    //  accommodate all requests targeting the same row" (Section 5.2.1).
    WordMask merged = WordMask::none();
    for (const auto &w : writeQ_) {
        if (!w.loc.sameRow(req.loc))
            continue;
        merged |= traits_.chipSelect ? WordMask{w.chipMask} : w.mask;
        if (!cfg_->mergeWriteMasks)
            break;   // Ablation: only the oldest same-row write's mask.
    }
    req.cachedMergedMask = merged.empty() ? WordMask::full() : merged;
    req.mergedMaskEpoch = writeQueueEpoch_;
    return req.cachedMergedMask;
}

SchedulerInputs
MemoryController::schedulerInputs() const
{
    SchedulerInputs in;
    in.readQueueSize = readQ_.size();
    in.writeQueueSize = writeQ_.size();
    if (!readQ_.empty())
        in.oldestReadArrival = readQ_.front().arrival;
    if (!writeQ_.empty())
        in.oldestWriteArrival = writeQ_.front().arrival;
    return in;
}

void
MemoryController::issueActivate(Request &req, bool is_write, Cycle now)
{
    Rank &rank = banks_.rank(req.loc.rank);
    Bank &bank = rank.bank(req.loc.bank);

    WordMask dirty = is_write ? mergedWriteMask(req) : WordMask::full();
    unsigned gran = traits_.actGranularity(is_write, dirty);
    WordMask open_mask = traits_.actMask(is_write, dirty);
    const bool partial = traits_.needsMaskCycle(is_write, dirty);
    if (partial && gran < cfg_->minActGranularity)
        gran = std::min(cfg_->minActGranularity, kMatGroups);
    const double weight = cfg_->weightedActWindow
                              ? traits_.actWeight(gran, cfg_->power)
                              : 1.0;
    // Deliberate fault injection (tests only): widen the opened mask
    // behind the scheme's back so the auditor must catch the mismatch.
    if (cfg_->auditFaultWidenAct != 0)
        open_mask |= WordMask{cfg_->auditFaultWidenAct};

    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Activate, now,
                           req.loc.rank, req.loc.bank, req.loc.row,
                           partial, weight, 0});
    }
    bank.activate(now, req.loc.row, open_mask, partial);
    rank.recordActivation(now, weight);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Activate, now,
                           channelId_, req.loc.rank, req.loc.bank,
                           req.loc.row, req.addr, open_mask,
                           WordMask::none(), partial, is_write, gran,
                           weight});
    }

    // A partial activation occupies the command/address bus one extra
    // cycle to transfer the PRA mask (paper Fig. 7a).
    bus_.holdCmdBus(now, partial ? cfg_->timing.praMaskCycles : 0u);

    trace(now, channelId_, "ACT", req.loc.rank, req.loc.bank, req.loc.row,
          gran);
    if (traits_.chipSelect && is_write) {
        // SDS: per-chip full-row activations; energy is linear in the
        // number of selected chips.
        ++energy_.sdsActs;
        energy_.sdsChipsActivated += gran;
    } else if (traits_.halfHeight) {
        ++energy_.actsHalfHeight[gran - 1];
    } else {
        ++energy_.acts[gran - 1];
    }
    stats_.actGranularity.record(gran);
    if (is_write)
        ++stats_.actsForWrites;
    else
        ++stats_.actsForReads;

    banks_.recountOpenRowMatches(req.loc.rank, req.loc.bank, readQ_,
                                 writeQ_);
}

void
MemoryController::issueColumn(std::deque<Request> &queue, std::size_t idx,
                              bool is_write, Cycle now)
{
    Request req = queue[idx];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(idx));
    if (is_write) {
        eraseWriteIndex(req.addr, idx);
        ++writeQueueEpoch_;
    }

    Rank &rank = banks_.rank(req.loc.rank);
    Bank &bank = rank.bank(req.loc.bank);
    const unsigned burst = traits_.burstCycles(cfg_->timing.burstCycles);

    bus_.noteColumnIssued(req.loc.bank, now);
    trace(now, channelId_, is_write ? "WR" : "RD", req.loc.rank,
          req.loc.bank, req.loc.row, req.loc.col);
    if (checker_) {
        checker_->observe({is_write ? CheckedCommand::Kind::Write
                                    : CheckedCommand::Kind::Read,
                           now, req.loc.rank, req.loc.bank, req.loc.row,
                           false, 0.0, burst});
    }
    if (audit_) {
        const WordMask drive =
            is_write ? (traits_.chipSelect ? WordMask{req.chipMask}
                                           : req.mask)
                     : WordMask::full();
        audit_->onCommand({is_write ? verify::DramCommandEvent::Kind::Write
                                    : verify::DramCommandEvent::Kind::Read,
                           now, channelId_, req.loc.rank, req.loc.bank,
                           req.loc.row, req.addr, drive, req.need, false,
                           is_write, 0, 0.0});
    }
    bus_.holdCmdBus(now);
    bank.recordHit();
    if (cfg_->policy == PagePolicy::RestrictedClose)
        bank.setAutoPrecharge();

    if (is_write) {
        bank.write(now, burst);
        bus_.reserveDataBus(now + cfg_->timing.wl, burst, req.loc.rank);
        bus_.noteWriteIssued(now, burst);
        ++energy_.writeLines;
        energy_.writeWordsDriven += traits_.wordsDriven(
            traits_.chipSelect ? WordMask{req.chipMask} : req.mask);
    } else {
        bank.read(now, burst);
        const Cycle finish = now + cfg_->timing.rl() + burst;
        bus_.reserveDataBus(now + cfg_->timing.rl(), burst, req.loc.rank);
        ++energy_.readLines;
        inflight_.push_back({req.tag, req.coreId, req.addr, finish,
                             finish - req.arrival});
        stats_.readLatency.record(
            static_cast<double>(finish - req.arrival));
    }

    banks_.onDequeue(req);
}

void
MemoryController::issuePrecharge(unsigned rank_id, unsigned bank_id,
                                 Cycle now)
{
    trace(now, channelId_, "PRE", rank_id, bank_id, 0, 0);
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Precharge, now, rank_id,
                           bank_id, 0, false, 0.0, 0});
    }
    banks_.bank(rank_id, bank_id).precharge(now);
    bus_.holdCmdBus(now);
    ++stats_.precharges;
    banks_.onPrecharge(rank_id, bank_id);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Precharge, now,
                           channelId_, rank_id, bank_id, 0, 0,
                           WordMask::none(), WordMask::none(), false,
                           false, 0, 0.0});
    }
}

void
MemoryController::issueAutoPrecharge(unsigned rank_id, unsigned bank_id,
                                     Cycle now)
{
    // Auto-precharge (restricted close-page) is encoded in the column
    // command (RDA/WRA), so it consumes no command-bus slot.
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Precharge, now, rank_id,
                           bank_id, 0, false, 0.0, 0});
    }
    banks_.bank(rank_id, bank_id).precharge(now);
    ++stats_.precharges;
    banks_.onPrecharge(rank_id, bank_id);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Precharge, now,
                           channelId_, rank_id, bank_id, 0, 0,
                           WordMask::none(), WordMask::none(), false,
                           false, 0, 0.0});
    }
}

void
MemoryController::issueRefresh(unsigned rank_id, Cycle now)
{
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Refresh, now, rank_id, 0,
                           0, false, 0.0, 0});
    }
    banks_.rank(rank_id).refresh(now);
    bus_.holdCmdBus(now);
    ++stats_.refreshes;
    ++energy_.refreshOps;
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Refresh, now,
                           channelId_, rank_id, 0, 0, 0, WordMask::none(),
                           WordMask::none(), false, false, 0, 0.0});
    }
}

bool
MemoryController::tryColumnAccess(std::deque<Request> &queue, bool is_write,
                                  Cycle now)
{
    if (!is_write && bus_.readBlocked(now))
        return false;
    const std::size_t window = sched_->columnWindow(queue.size());
    for (std::size_t i = 0; i < window; ++i) {
        Request &req = queue[i];
        Bank &bank = banks_.bank(req.loc.rank, req.loc.bank);
        if (banks_.probe(req) != RowProbe::Hit)
            continue;
        // Restricted close-page: the auto-precharge is encoded in the
        // previous column command (RDA/WRA), so the row is already
        // committed to close — no further hits may ride on it. The
        // classified check keeps ACT + column + PRE atomic: only the
        // request whose activation opened the row (classified at ACT
        // time) may use it.
        if (bank.autoPrechargePending())
            continue;
        if (cfg_->policy == PagePolicy::RestrictedClose && !req.classified)
            continue;
        const bool column_ok =
            is_write ? bank.canWrite(now) : bank.canRead(now);
        if (!column_ok)
            continue;
        // DDR4 bank groups: back-to-back column commands to the same
        // group must honor the long tCCD_L; across groups tCCD(_S)
        // applies at the channel level.
        if (!bus_.columnGateOk(req.loc.bank, now))
            continue;
        const Cycle data_start =
            now + (is_write ? cfg_->timing.wl : cfg_->timing.rl());
        if (!bus_.dataBusFree(data_start, req.loc.rank))
            continue;
        if (cfg_->policy == PagePolicy::RelaxedClose &&
            bank.hitCount() >= cfg_->rowHitCap) {
            continue;   // Must re-activate; handled by close + prepare.
        }
        classify(req, RowProbe::Hit);
        issueColumn(queue, i, is_write, now);
        return true;
    }
    return false;
}

bool
MemoryController::tryPrepare(std::deque<Request> &queue, bool is_write,
                             Cycle now)
{
    // The policy bounds how deep the prepare scan may look past the
    // oldest request (FR-FCFS: a small window; FCFS: the head only).
    const std::size_t window = sched_->prepareWindow(queue.size());
    for (std::size_t i = 0; i < window; ++i) {
        Request &req = queue[i];
        Rank &rank = banks_.rank(req.loc.rank);
        Bank &bank = rank.bank(req.loc.bank);
        const RowProbe probe = banks_.probe(req);

        switch (probe) {
          case RowProbe::Closed: {
            if (rank.refreshDue(now) || rank.refreshing(now))
                break;   // Let the rank drain for refresh.
            // The bank gate needs no mask, so check it before the (write-
            // queue scanning) merged-mask / weight derivation.
            if (!bank.canActivate(now))
                break;
            WordMask dirty =
                is_write ? mergedWriteMask(req) : WordMask::full();
            unsigned gran = traits_.actGranularity(is_write, dirty);
            if (traits_.needsMaskCycle(is_write, dirty) &&
                gran < cfg_->minActGranularity) {
                gran = std::min(cfg_->minActGranularity, kMatGroups);
            }
            const double weight =
                cfg_->weightedActWindow
                    ? traits_.actWeight(gran, cfg_->power)
                    : 1.0;
            if (rank.canActivate(now, weight)) {
                classify(req, probe);
                issueActivate(req, is_write, now);
                return true;
            }
            break;
          }
          case RowProbe::Conflict:
          case RowProbe::FalseHit: {
            // Close the current row — but under the relaxed policy only
            // once it has no pending hits left (or its budget is spent),
            // so younger row hits are not squandered. A false hit always
            // precharges: the partially opened row cannot serve this
            // request and the re-activation's (full or merged) footprint
            // covers every same-row request (paper Section 5.2.1).
            const bool still_useful =
                probe == RowProbe::Conflict &&
                cfg_->policy == PagePolicy::RelaxedClose &&
                banks_.openRowMatches(req.loc.rank, req.loc.bank) > 0 &&
                bank.hitCount() < cfg_->rowHitCap;
            if (!still_useful && bank.canPrecharge(now)) {
                classify(req, probe);
                issuePrecharge(req.loc.rank, req.loc.bank, now);
                return true;
            }
            break;
          }
          case RowProbe::Hit:
            if (cfg_->policy == PagePolicy::RelaxedClose &&
                bank.hitCount() >= cfg_->rowHitCap &&
                bank.canPrecharge(now)) {
                // Hit-budget exhausted: close so it can re-activate.
                issuePrecharge(req.loc.rank, req.loc.bank, now);
                return true;
            }
            break;   // Column path (or pending auto-PRE) handles it.
        }
    }
    return false;
}

void
MemoryController::accountBackground(Cycle now)
{
    for (unsigned r = 0; r < banks_.numRanks(); ++r) {
        Rank &rank = banks_.rank(r);
        rank.updatePowerState(now, banks_.anyQueuedInRank(r));
        switch (rank.powerState(now)) {
          case RankState::ActiveStandby:
          case RankState::Refreshing:
            ++energy_.actStandbyCycles;
            break;
          case RankState::PrechargeStandby:
            ++energy_.preStandbyCycles;
            break;
          case RankState::PowerDown:
            ++energy_.powerDownCycles;
            break;
        }
    }
}

void
MemoryController::tick(Cycle now)
{
    accountBackground(now);

    // Restricted-close auto-precharges retire without a command slot.
    maint_.stepAutoPrecharge(now);

    // Deliver finished reads.
    for (std::size_t i = 0; i < inflight_.size();) {
        if (inflight_[i].finish <= now) {
            finished_.push_back(inflight_[i]);
            inflight_[i] = inflight_.back();
            inflight_.pop_back();
        } else {
            ++i;
        }
    }

    // The policy observes queue occupancy every cycle (its drain
    // hysteresis must track enqueues even on command-bus-busy ticks).
    const SchedulerInputs inputs = schedulerInputs();
    sched_->onTick(inputs, now);

    if (bus_.cmdBusBusy(now))
        return;

    if (maint_.tryRefresh(now))
        return;
    // Pluggable maintenance operations (none registered by default).
    if (maint_.tryOps(now))
        return;

    const bool writes_first = sched_->writesFirst(inputs, now);
    std::deque<Request> &primary = writes_first ? writeQ_ : readQ_;
    std::deque<Request> &secondary = writes_first ? readQ_ : writeQ_;
    const bool primary_is_write = writes_first;

    if (tryColumnAccess(primary, primary_is_write, now))
        return;
    // Opportunistic hits from the other queue keep the bus busy without
    // reordering ahead of the primary class's prepare commands.
    if (tryColumnAccess(secondary, !primary_is_write, now))
        return;
    if (tryPrepare(primary, primary_is_write, now))
        return;
    if (secondary.size() > 0 && primary.empty() &&
        tryPrepare(secondary, !primary_is_write, now)) {
        return;
    }
    maint_.tryMaintenanceClose(now);
}

Cycle
MemoryController::nextEventCycle(Cycle now) const
{
    constexpr Cycle kNever = ~Cycle{0};
    Cycle next = kNever;
    auto consider = [&](Cycle c) {
        if (c > now && c < next)
            next = c;
    };

    // Every gate that can block an otherwise-ready action is listed
    // individually, so a window in which exactly one gate binds still
    // wakes at the cycle that gate releases. Extra (too-early) candidates
    // are harmless — the caller re-evaluates — but a missing one would
    // overshoot and change behaviour.

    // Completion deliveries.
    for (const auto &c : inflight_)
        consider(c.finish);

    const bool reads_queued = !readQ_.empty();
    const bool writes_queued = !writeQ_.empty();
    const bool any_queued = reads_queued || writes_queued;

    // Bus gates: command bus, tWTR, bank-group spacing, data-bus release.
    bus_.considerWakeups(reads_queued, any_queued, consider);

    for (unsigned r = 0; r < banks_.numRanks(); ++r) {
        const Rank &rank = banks_.rank(r);
        // Refresh becomes due at the deadline regardless of the queues.
        consider(rank.nextRefreshAt());

        const bool rank_queued = banks_.anyQueuedInRank(r);
        if (rank_queued) {
            // Activation gates (tRRD, weighted tFAW expiries).
            consider(rank.nextActAllowedAt());
            for (Cycle e : rank.actWindowExpiries())
                consider(e);
        }

        const bool refresh_pending = rank.refreshDue(now);
        for (unsigned b = 0; b < rank.numBanks(); ++b) {
            const Bank &bank = rank.bank(b);
            if (bank.isOpen()) {
                // Column hits, and precharges (auto, maintenance, or
                // conflict/false-hit closes) unlock here.
                consider(bank.earliestPrecharge());
                consider(bank.earliestColumnAccess());
            } else if (rank_queued || refresh_pending) {
                // ACT for a queued request, or the tRP/tRFC expiry that
                // lets a due refresh (or post-refresh ACT) proceed.
                consider(bank.earliestActivate());
            }
        }
    }

    return next;
}

void
MemoryController::fastForward(Cycle from, Cycle to)
{
    for (unsigned r = 0; r < banks_.numRanks(); ++r) {
        banks_.rank(r).fastForwardBackground(from, to,
                                             banks_.anyQueuedInRank(r),
                                             energy_);
    }
}

bool
MemoryController::busy() const
{
    return !readQ_.empty() || !writeQ_.empty() || !inflight_.empty() ||
           !finished_.empty();
}

} // namespace pra::dram
