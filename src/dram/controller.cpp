#include "dram/controller.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "verify/auditor.h"

namespace pra::dram {

namespace {

/** Command tracing to stderr, enabled with PRA_TRACE=1 (debug aid). */
bool
traceEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("PRA_TRACE");
        return env && env[0] == '1';
    }();
    return enabled;
}

void
trace(Cycle now, unsigned ch, const char *cmd, unsigned rank, unsigned bank,
      std::uint32_t row, unsigned extra)
{
    if (traceEnabled()) {
        std::fprintf(stderr, "%8llu ch%u %-4s r%u b%u row%u x%u\n",
                     static_cast<unsigned long long>(now), ch, cmd, rank,
                     bank, row, extra);
    }
}

/**
 * Engine selection: DramConfig::engine, overridable with
 * PRA_ENGINE=tick|event. The env value is cached once per process (like
 * PRA_TRACE), so in-process engine comparisons must use the config
 * knob, not the environment.
 */
bool
eventEngineSelected(const DramConfig &cfg)
{
    static const int env_mode = [] {
        const char *env = std::getenv("PRA_ENGINE");
        if (!env || !env[0])
            return -1;
        return env[0] == 'e' ? 1 : 0;
    }();
    if (env_mode >= 0)
        return env_mode == 1;
    return cfg.engine == EngineKind::Event;
}

} // namespace

MemoryController::MemoryController(const DramConfig &cfg,
                                   unsigned channel_id)
    : cfg_(&cfg), scheme_(cfg.scheme), channelId_(channel_id),
      banks_(cfg), bus_(cfg), sched_(makeSchedulerPolicy(cfg)),
      maint_(cfg, banks_, *this), prac_(cfg),
      tables_(TimingTables::build(cfg)),
      eventMode_(eventEngineSelected(cfg)),
      replayForce_(verify::Auditor::envReplay())
{
    if (cfg.enableChecker)
        checker_ = std::make_unique<TimingChecker>(cfg);
    if (cfg.pracEnabled) {
        // RFM mitigation plugs in through the generic maintenance-op
        // seam: the engine owns the readiness decision (rfmReady) and
        // the wake contract, the controller only issues the command.
        maint_.setPracState(&prac_);
        maint_.registerOp(
            "prac_rfm", [this](Cycle now) { return maint_.tryRfm(now); },
            [this](Cycle now) { return maint_.rfmWakeBound(now); });
    }
}

bool
MemoryController::canAccept(bool is_write) const
{
    return is_write ? writeQ_.size() < cfg_->writeQueueDepth
                    : readQ_.size() < cfg_->readQueueDepth;
}

WordMask
MemoryController::needOf(const Request &req) const
{
    // Writes need their dirty words (chip granularity under SDS). Reads
    // need whatever the scheme says the line demands: the full row for
    // the paper's schemes (full bandwidth on reads is PRA's asymmetric
    // design point), the demanded sectors under read-side partial
    // activation.
    if (!req.isWrite)
        return scheme_->readNeed(req.addr);
    return scheme_->writeNeed(req.mask, req.chipMask);
}

void
MemoryController::enqueue(Request req, Cycle now)
{
    req.arrival = now;
    assert(req.loc.channel == channelId_);

    // An arrival can enable work immediately (on every enqueue path,
    // including combining and forwarding), so pull the wake target in;
    // tick(now) then runs a full round and republishes.
    if (eventMode_ && now < nextWake_)
        nextWake_ = now;

    // Settle the deferred background window before the queues change:
    // the window was arrival-free by construction, so its per-rank
    // queued-work flags must be read against the pre-arrival state.
    settleBackground();

    if (req.isWrite) {
        ++stats_.writeReqs;
        if (audit_) {
            // Report the pre-combine transaction; the auditor's shadow
            // queue performs its own combining.
            audit_->onWriteEnqueue({now, channelId_, req.loc.rank,
                                    req.loc.bank, req.loc.row, req.addr,
                                    req.mask, req.chipMask});
        }
        // Write combining: coalesce with a queued write to the same line
        // (O(1) via the address index; queued write addresses are unique).
        if (auto it = writeIndex_.find(req.addr); it != writeIndex_.end()) {
            Request &w = writeQ_[it->second];
            w.mask |= req.mask;
            w.chipMask |= req.chipMask;
            // The merged masks can change the write's footprint, so the
            // cached need/probe are stale.
            w.need = needOf(w);
            w.probeEpoch = Request::kProbeInvalid;
            ++writeQueueEpoch_;
            return;
        }
        req.need = needOf(req);
        writeQ_.push_back(req);
        writeIndex_.emplace(req.addr, writeQ_.size() - 1);
        ++writeQueueEpoch_;
    } else {
        ++stats_.readReqs;
        // Forwarding: a read that matches a queued write is served from
        // the write queue without a DRAM access.
        if (writeIndex_.count(req.addr)) {
            ++stats_.forwardedReads;
            finished_.push_back({req.tag, req.coreId, req.addr, now + 1,
                                 1});
            return;
        }
        req.need = needOf(req);
        readQ_.push_back(req);
    }

    // Mask-aware accounting: only requests the (possibly partial) open
    // row can actually serve count as pending hits. The engine's probe
    // also primes the request's cache for the upcoming scheduler scans.
    Request &queued_req = req.isWrite ? writeQ_.back() : readQ_.back();
    banks_.onEnqueue(queued_req);
}

void
MemoryController::eraseWriteIndex(Addr addr, std::size_t idx)
{
    writeIndex_.erase(addr);
    // A mid-queue erase shifts every later entry down one slot; renumber
    // from the queue itself (deterministic order) instead of walking the
    // hash map. The queue is at most writeQueueDepth (64) entries, so
    // this stays cheap.
    for (std::size_t i = idx; i < writeQ_.size(); ++i)
        writeIndex_[writeQ_[i].addr] = i;
}

void
MemoryController::classify(Request &req, RowProbe probe)
{
    if (req.classified)
        return;
    req.classified = true;
    switch (probe) {
      case RowProbe::Hit:
        if (req.isWrite)
            ++stats_.writeRowHits;
        else
            ++stats_.readRowHits;
        break;
      case RowProbe::FalseHit:
        // A conventional DRAM would have hit; PRA must PRE + re-ACT.
        if (req.isWrite) {
            ++stats_.writeFalseHits;
            ++stats_.writeRowMisses;
        } else {
            ++stats_.readFalseHits;
            ++stats_.readRowMisses;
        }
        break;
      case RowProbe::Closed:
      case RowProbe::Conflict:
        if (req.isWrite)
            ++stats_.writeRowMisses;
        else
            ++stats_.readRowMisses;
        break;
    }
}

WordMask
MemoryController::mergedWriteMask(Request &req) const
{
    if (req.mergedMaskEpoch == writeQueueEpoch_)
        return req.cachedMergedMask;
    // "PRA masks are ORed to activate partial rows as many as possible to
    //  accommodate all requests targeting the same row" (Section 5.2.1).
    WordMask merged = WordMask::none();
    for (const auto &w : writeQ_) {
        if (!w.loc.sameRow(req.loc))
            continue;
        merged |= scheme_->writeMask(w.mask, w.chipMask);
        if (!cfg_->mergeWriteMasks)
            break;   // Ablation: only the oldest same-row write's mask.
    }
    req.cachedMergedMask = merged.empty() ? WordMask::full() : merged;
    req.mergedMaskEpoch = writeQueueEpoch_;
    return req.cachedMergedMask;
}

SchedulerInputs
MemoryController::schedulerInputs() const
{
    SchedulerInputs in;
    in.readQueueSize = readQ_.size();
    in.writeQueueSize = writeQ_.size();
    if (!readQ_.empty())
        in.oldestReadArrival = readQ_.front().arrival;
    if (!writeQ_.empty())
        in.oldestWriteArrival = writeQ_.front().arrival;
    return in;
}

void
MemoryController::issueActivate(Request &req, bool is_write, Cycle now)
{
    roundActivity_ = true;
    Rank &rank = banks_.rank(req.loc.rank);
    Bank &bank = rank.bank(req.loc.bank);

    // Demand driving this activation: the merged dirty-word mask for
    // writes, the scheme's (speculative) read mask — or the full row
    // once a false hit burned the prediction — for reads.
    WordMask demand = is_write ? mergedWriteMask(req)
                      : req.fullRowFallback
                          ? WordMask::full()
                          : scheme_->readActMask(req.addr);
    unsigned gran = scheme_->actGranularity(is_write, demand);
    WordMask open_mask = scheme_->actMask(is_write, demand);
    const bool partial = scheme_->needsMaskCycle(is_write, demand);
    if (partial && gran < cfg_->minActGranularity)
        gran = std::min(cfg_->minActGranularity, kMatGroups);
    const double weight = cfg_->weightedActWindow
                              ? scheme_->actWeight(gran, cfg_->power)
                              : 1.0;
    // Deliberate fault injection (tests only): widen the opened mask
    // behind the scheme's back so the auditor must catch the mismatch.
    if (cfg_->auditFaultWidenAct != 0)
        open_mask |= WordMask{cfg_->auditFaultWidenAct};

    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Activate, now,
                           req.loc.rank, req.loc.bank, req.loc.row,
                           partial, weight, 0});
    }
    bank.activate(now, req.loc.row, open_mask, partial);
    rank.recordActivation(now, weight);
    prac_.onActivate(req.loc.rank, req.loc.bank, req.loc.row, partial, now);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Activate, now,
                           channelId_, req.loc.rank, req.loc.bank,
                           req.loc.row, req.addr, open_mask,
                           WordMask::none(), partial, is_write, gran,
                           weight, prac_.trackedSum(req.loc.rank), 0});
    }

    // A partial activation occupies the command/address bus one extra
    // cycle to transfer the PRA mask (paper Fig. 7a).
    bus_.holdCmdBus(
        now,
        partial ? static_cast<unsigned>(tables_.channel.maskCycles) : 0u);

    trace(now, channelId_, "ACT", req.loc.rank, req.loc.bank, req.loc.row,
          gran);
    scheme_->accountActivate(energy_, gran, is_write);
    stats_.actGranularity.record(gran);
    if (is_write) {
        ++stats_.actsForWrites;
    } else {
        ++stats_.actsForReads;
        stats_.readActGranularity.record(gran);
    }

    banks_.recountOpenRowMatches(req.loc.rank, req.loc.bank, readQ_,
                                 writeQ_);
}

void
MemoryController::issueColumn(std::deque<Request> &queue, std::size_t idx,
                              bool is_write, Cycle now)
{
    roundActivity_ = true;
    Request req = queue[idx];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(idx));
    if (is_write) {
        eraseWriteIndex(req.addr, idx);
        ++writeQueueEpoch_;
    }

    Rank &rank = banks_.rank(req.loc.rank);
    Bank &bank = rank.bank(req.loc.bank);
    const unsigned burst = scheme_->columnBurstCycles(
        is_write,
        is_write ? scheme_->writeMask(req.mask, req.chipMask) : req.need,
        static_cast<unsigned>(tables_.channel.burst));

    bus_.noteColumnIssued(req.loc.bank, now);
    trace(now, channelId_, is_write ? "WR" : "RD", req.loc.rank,
          req.loc.bank, req.loc.row, req.loc.col);
    if (checker_) {
        checker_->observe({is_write ? CheckedCommand::Kind::Write
                                    : CheckedCommand::Kind::Read,
                           now, req.loc.rank, req.loc.bank, req.loc.row,
                           false, 0.0, burst});
    }
    if (audit_) {
        const WordMask drive =
            is_write ? scheme_->writeMask(req.mask, req.chipMask)
                     : WordMask::full();
        audit_->onCommand({is_write ? verify::DramCommandEvent::Kind::Write
                                    : verify::DramCommandEvent::Kind::Read,
                           now, channelId_, req.loc.rank, req.loc.bank,
                           req.loc.row, req.addr, drive, req.need, false,
                           is_write, 0, 0.0});
    }
    bus_.holdCmdBus(now);
    bank.recordHit();
    if (cfg_->policy == PagePolicy::RestrictedClose)
        bank.setAutoPrecharge();

    if (is_write) {
        bank.write(now, burst);
        bus_.reserveDataBus(now + tables_.channel.writeLatency, burst,
                            req.loc.rank);
        bus_.noteWriteIssued(now, burst);
        ++energy_.writeLines;
        energy_.writeWordsDriven += scheme_->wordsDriven(
            scheme_->writeMask(req.mask, req.chipMask));
    } else {
        bank.read(now, burst);
        const Cycle finish = now + tables_.channel.readLatency + burst;
        bus_.reserveDataBus(now + tables_.channel.readLatency, burst,
                            req.loc.rank);
        ++energy_.readLines;
        energy_.readWordsDriven += scheme_->readWordsDriven(req.need);
        inflight_.push_back({req.tag, req.coreId, req.addr, finish,
                             finish - req.arrival});
        stats_.readLatency.record(
            static_cast<double>(finish - req.arrival));
    }

    banks_.onDequeue(req);
}

void
MemoryController::issuePrecharge(unsigned rank_id, unsigned bank_id,
                                 Cycle now)
{
    roundActivity_ = true;
    trace(now, channelId_, "PRE", rank_id, bank_id, 0, 0);
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Precharge, now, rank_id,
                           bank_id, 0, false, 0.0, 0});
    }
    banks_.bank(rank_id, bank_id).precharge(now);
    bus_.holdCmdBus(now);
    ++stats_.precharges;
    banks_.onPrecharge(rank_id, bank_id);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Precharge, now,
                           channelId_, rank_id, bank_id, 0, 0,
                           WordMask::none(), WordMask::none(), false,
                           false, 0, 0.0});
    }
}

void
MemoryController::issueAutoPrecharge(unsigned rank_id, unsigned bank_id,
                                     Cycle now)
{
    // Auto-precharge (restricted close-page) is encoded in the column
    // command (RDA/WRA), so it consumes no command-bus slot.
    roundActivity_ = true;
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Precharge, now, rank_id,
                           bank_id, 0, false, 0.0, 0});
    }
    banks_.bank(rank_id, bank_id).precharge(now);
    ++stats_.precharges;
    banks_.onPrecharge(rank_id, bank_id);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Precharge, now,
                           channelId_, rank_id, bank_id, 0, 0,
                           WordMask::none(), WordMask::none(), false,
                           false, 0, 0.0});
    }
}

void
MemoryController::issueRefresh(unsigned rank_id, Cycle now)
{
    roundActivity_ = true;
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Refresh, now, rank_id, 0,
                           0, false, 0.0, 0});
    }
    banks_.rank(rank_id).refresh(now);
    bus_.holdCmdBus(now);
    ++stats_.refreshes;
    ++energy_.refreshOps;
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Refresh, now,
                           channelId_, rank_id, 0, 0, 0, WordMask::none(),
                           WordMask::none(), false, false, 0, 0.0});
    }
}

void
MemoryController::issueRfm(unsigned rank_id, Cycle now)
{
    roundActivity_ = true;
    // Clear the hottest tracked row first so the victim (bank, row) can
    // be reported to the checker, trace, and auditor.
    const PracMitigation mit = prac_.applyRfm(rank_id, now);
    if (checker_) {
        checker_->observe({CheckedCommand::Kind::Rfm, now, rank_id,
                           mit.bank, mit.row, false, 0.0, 0});
    }
    banks_.rank(rank_id).rfm(now);
    bus_.holdCmdBus(now);
    ++stats_.rfms;
    ++energy_.rfmOps;
    trace(now, channelId_, "RFM", rank_id, mit.bank, mit.row, 0);
    if (audit_) {
        audit_->onCommand({verify::DramCommandEvent::Kind::Rfm, now,
                           channelId_, rank_id, mit.bank, mit.row, 0,
                           WordMask::none(), WordMask::none(), false,
                           false, 0, 0.0, prac_.trackedSum(rank_id),
                           mit.cleared});
    }
}

bool
MemoryController::tryColumnAccess(std::deque<Request> &queue, bool is_write,
                                  Cycle now)
{
    if (!is_write && bus_.readBlocked(now)) {
        if (!queue.empty())
            noteWake(bus_.readBlockedUntil(), now);
        return false;
    }
    const std::size_t window = sched_->columnWindow(queue.size());
    for (std::size_t i = 0; i < window; ++i) {
        Request &req = queue[i];
        // Test-only fault: a saturating age-priority counter inverts,
        // so the scan skips requests past the age threshold forever.
        // The model checker's bounded-progress property catches this.
        if (cfg_->faultStarvesRequest(now, req.arrival))
            continue;
        Bank &bank = banks_.bank(req.loc.rank, req.loc.bank);
        // State-gated rejections (row miss, pending auto-precharge,
        // unclassified, exhausted hit budget) need no retry bound: the
        // enabling change is itself a command or arrival, which forces a
        // round. Time-gated rejections note the exact release cycle.
        if (banks_.probe(req) != RowProbe::Hit)
            continue;
        // Restricted close-page: the auto-precharge is encoded in the
        // previous column command (RDA/WRA), so the row is already
        // committed to close — no further hits may ride on it. The
        // classified check keeps ACT + column + PRE atomic: only the
        // request whose activation opened the row (classified at ACT
        // time) may use it.
        if (bank.autoPrechargePending())
            continue;
        if (cfg_->policy == PagePolicy::RestrictedClose && !req.classified)
            continue;
        const bool column_ok =
            is_write ? bank.canWrite(now) : bank.canRead(now);
        if (!column_ok) {
            noteWake(bank.earliestColumnAccess(), now);
            continue;
        }
        // DDR4 bank groups: back-to-back column commands to the same
        // group must honor the long tCCD_L; across groups tCCD(_S)
        // applies at the channel level.
        if (!bus_.columnGateOk(req.loc.bank, now)) {
            noteWake(bus_.columnGateFreeAt(req.loc.bank), now);
            continue;
        }
        const Cycle lat = is_write ? tables_.channel.writeLatency
                                   : tables_.channel.readLatency;
        const Cycle data_start = now + lat;
        if (!bus_.dataBusFree(data_start, req.loc.rank)) {
            noteWake(bus_.dataBusFreeAt(req.loc.rank) - lat, now);
            continue;
        }
        if (cfg_->policy == PagePolicy::RelaxedClose &&
            bank.hitCount() >= cfg_->rowHitCap) {
            continue;   // Must re-activate; handled by close + prepare.
        }
        classify(req, RowProbe::Hit);
        issueColumn(queue, i, is_write, now);
        return true;
    }
    return false;
}

bool
MemoryController::tryPrepare(std::deque<Request> &queue, bool is_write,
                             Cycle now)
{
    // The policy bounds how deep the prepare scan may look past the
    // oldest request (FR-FCFS: a small window; FCFS: the head only).
    const std::size_t window = sched_->prepareWindow(queue.size());
    for (std::size_t i = 0; i < window; ++i) {
        Request &req = queue[i];
        // Same test-only aged-request fault as the column scan.
        if (cfg_->faultStarvesRequest(now, req.arrival))
            continue;
        Rank &rank = banks_.rank(req.loc.rank);
        Bank &bank = rank.bank(req.loc.bank);
        const RowProbe probe = banks_.probe(req);

        switch (probe) {
          case RowProbe::Closed: {
            if (rank.refreshDue(now) || rank.refreshing(now)) {
                // A due refresh issues inside a round (maintenance wake
                // bound covers it); an in-progress one releases at tRFC.
                if (rank.refreshing(now))
                    noteWake(rank.refreshDoneAt(), now);
                break;   // Let the rank drain for refresh.
            }
            // Alert Back-Off: while a PRAC alert is pending, no further
            // ACT may issue to the rank until RFM clears it. State-gated
            // (the alert only clears via the RFM command, which runs
            // inside a round); tRFM blocking is noted like tRFC below.
            if (prac_.alertActive(req.loc.rank))
                break;
            if (rank.rfmBusy(now)) {
                noteWake(rank.rfmDoneAt(), now);
                break;
            }
            // The bank gate needs no mask, so check it before the (write-
            // queue scanning) merged-mask / weight derivation.
            if (!bank.canActivate(now)) {
                noteWake(bank.earliestActivate(), now);
                break;
            }
            WordMask demand = is_write ? mergedWriteMask(req)
                              : req.fullRowFallback
                                  ? WordMask::full()
                                  : scheme_->readActMask(req.addr);
            unsigned gran = scheme_->actGranularity(is_write, demand);
            if (scheme_->needsMaskCycle(is_write, demand) &&
                gran < cfg_->minActGranularity) {
                gran = std::min(cfg_->minActGranularity, kMatGroups);
            }
            const double weight =
                cfg_->weightedActWindow
                    ? scheme_->actWeight(gran, cfg_->power)
                    : 1.0;
            if (rank.canActivate(now, weight)) {
                classify(req, probe);
                issueActivate(req, is_write, now);
                return true;
            }
            // Rank-level gate: either tRRD or the (weighted) tFAW window
            // blocks; both release at register-known cycles.
            noteWake(rank.nextActAllowedAt(), now);
            noteWake(rank.earliestActWindowExpiry(), now);
            break;
          }
          case RowProbe::Conflict:
          case RowProbe::FalseHit: {
            // Close the current row — but under the relaxed policy only
            // once it has no pending hits left (or its budget is spent),
            // so younger row hits are not squandered. A false hit always
            // precharges: the partially opened row cannot serve this
            // request and the re-activation's (full or merged) footprint
            // covers every same-row request (paper Section 5.2.1).
            const bool still_useful =
                probe == RowProbe::Conflict &&
                cfg_->policy == PagePolicy::RelaxedClose &&
                banks_.openRowMatches(req.loc.rank, req.loc.bank) > 0 &&
                bank.hitCount() < cfg_->rowHitCap;
            if (!still_useful) {
                if (bank.canPrecharge(now)) {
                    classify(req, probe);
                    issuePrecharge(req.loc.rank, req.loc.bank, now);
                    return true;
                }
                // tRAS/tWR/tRTP gate; still_useful is state-gated (its
                // hits drain inside rounds) and needs no bound.
                noteWake(bank.earliestPrecharge(), now);
            }
            break;
          }
          case RowProbe::Hit:
            if (cfg_->policy == PagePolicy::RelaxedClose &&
                bank.hitCount() >= cfg_->rowHitCap) {
                if (bank.canPrecharge(now)) {
                    // Hit-budget exhausted: close so it can re-activate.
                    issuePrecharge(req.loc.rank, req.loc.bank, now);
                    return true;
                }
                noteWake(bank.earliestPrecharge(), now);
            }
            break;   // Column path (or pending auto-PRE) handles it.
        }
    }
    return false;
}

void
MemoryController::accountBackground(Cycle now)
{
    for (unsigned r = 0; r < banks_.numRanks(); ++r) {
        Rank &rank = banks_.rank(r);
        rank.updatePowerState(now, banks_.anyQueuedInRank(r));
        switch (rank.powerState(now)) {
          case RankState::ActiveStandby:
          case RankState::Refreshing:
            ++energy_.actStandbyCycles;
            break;
          case RankState::PrechargeStandby:
            ++energy_.preStandbyCycles;
            break;
          case RankState::PowerDown:
            ++energy_.powerDownCycles;
            break;
        }
    }
}

void
MemoryController::tick(Cycle now)
{
    if (!eventMode_) {
        runRound(now);
        return;
    }

    if (now < nextWake_ && !replayForce_) {
        // Published-quiet cycle: only background power accrues, and even
        // that is deferred — the next round (or counter read) settles
        // the whole skipped window in one analytic jump.
        ++engineStats_.skippedTicks;
        bgPending_ = now + 1;
        return;
    }

    // PRA_AUDIT_REPLAY forces a full round on cycles the heap declared
    // quiet; such a round must not act, or the published wake-up set
    // was unsound.
    const bool forced_quiet = now < nextWake_;
    const std::size_t popped = wake_.popDue(now);
    engineStats_.eventsPopped += popped;
    if (popped > 0)
        ++engineStats_.wakeups;

    roundActivity_ = false;
    scanWake_ = kNever;
    ++engineStats_.rounds;
    runRound(now);
    if (forced_quiet && audit_)
        audit_->onEventRound(now, nextWake_, roundActivity_);
    if (roundActivity_) {
        // An active round nearly always warrants a next-cycle follow-up
        // (the command bus is held, completions cascade); re-arming at
        // now + 1 is sound — it skips nothing — and any bounds the
        // round's scans noted before its issue are stale anyway. Only a
        // round that found nothing to do publishes, and its scans have
        // already computed the exact cycle each blocked gate releases.
        nextWake_ = now + 1;
    } else {
        publishWakeups(now);
    }
}

void
MemoryController::settleBackground()
{
    if (bgPending_ <= bgFrom_)
        return;
    // The deferred window saw no commands and no arrivals (either would
    // have forced a round), so bank-open state and queue membership were
    // constant across it — exactly the contract the analytic jump needs.
    for (unsigned r = 0; r < banks_.numRanks(); ++r) {
        banks_.rank(r).fastForwardBackground(bgFrom_, bgPending_,
                                             banks_.anyQueuedInRank(r),
                                             energy_);
    }
    bgFrom_ = bgPending_;
}

void
MemoryController::runRound(Cycle now)
{
    settleBackground();
    accountBackground(now);
    bgFrom_ = bgPending_ = now + 1;

    // Restricted-close auto-precharges retire without a command slot.
    maint_.stepAutoPrecharge(now);

    // Deliver finished reads.
    for (std::size_t i = 0; i < inflight_.size();) {
        if (inflight_[i].finish <= now) {
            roundActivity_ = true;
            finished_.push_back(inflight_[i]);
            inflight_[i] = inflight_.back();
            inflight_.pop_back();
        } else {
            ++i;
        }
    }

    // The policy observes queue occupancy on every round. Rounds the
    // event engine skips have unchanged queue sizes (an enqueue always
    // forces a round), so the hysteresis state it would have computed on
    // the skipped cycles is exactly what one application computes here.
    const SchedulerInputs inputs = schedulerInputs();
    sched_->onTick(inputs, now);

    if (bus_.cmdBusBusy(now)) {
        // Nothing below can issue until the slot frees; the retry bound
        // is exact (auto-precharges and completions ran above).
        noteWake(bus_.cmdBusFreeAt(), now);
        return;
    }

    if (maint_.tryRefresh(now))
        return;
    // Pluggable maintenance operations (none registered by default).
    if (maint_.tryOps(now)) {
        roundActivity_ = true;
        return;
    }

    const bool writes_first = sched_->writesFirst(inputs, now);
    std::deque<Request> &primary = writes_first ? writeQ_ : readQ_;
    std::deque<Request> &secondary = writes_first ? readQ_ : writeQ_;
    const bool primary_is_write = writes_first;

    if (tryColumnAccess(primary, primary_is_write, now))
        return;
    // Opportunistic hits from the other queue keep the bus busy without
    // reordering ahead of the primary class's prepare commands.
    if (tryColumnAccess(secondary, !primary_is_write, now))
        return;
    if (tryPrepare(primary, primary_is_write, now))
        return;
    if (secondary.size() > 0 && primary.empty() &&
        tryPrepare(secondary, !primary_is_write, now)) {
        return;
    }
    maint_.tryMaintenanceClose(now);
}

void
MemoryController::publishWakeups(Cycle now)
{
    wake_.clear();
    std::uint64_t pushes = 0;
    auto consider = [&](Cycle c) {
        if (c > now && c != kNever) {
            wake_.push(c);
            ++pushes;
        }
    };
    // The quiet round that just ran is itself the wake-bound scan: every
    // gate that rejected a candidate noted its exact release cycle in
    // scanWake_ (DESIGN.md §11). Only the layers whose next event needs
    // no request scan are added here — in-flight completions, the
    // scheduler's time-driven decision flips, and the maintenance
    // engine's deadline bound. State-gated rejections (row miss, pending
    // auto-precharge, still-useful row) need no retry candidate: their
    // enabling change is itself a command or arrival, which forces a
    // round.
    consider(scanWake_);
    for (const auto &c : inflight_)
        consider(c.finish);
    if (!readQ_.empty() || !writeQ_.empty())
        consider(sched_->nextDecisionChangeAt(schedulerInputs(), now));
    consider(maint_.nextWakeAt(now));
    // Named maintenance ops publish through their wake-bound contract;
    // ops registered without one are opaque, and while any such op is
    // present the engine degrades to per-cycle rounds.
    consider(maint_.opWakeBound(now));
    if (maint_.hasOpaqueOps())
        consider(now + 1);
    engineStats_.heapPushes += pushes;
    engineStats_.heapPeak =
        std::max<std::uint64_t>(engineStats_.heapPeak, wake_.size());
    nextWake_ = wake_.empty() ? kNever : wake_.min();
}

Cycle
MemoryController::nextEventCycle(Cycle now) const
{
    // Event engine: the heap minimum was published by the last round
    // and every later enqueue ran through tick(), so it is exact for
    // the caller's (no-arrivals) contract — no rescan needed. The
    // invariant nextWake_ > last-ticked-cycle makes the guard always
    // true once ticking has started.
    if (eventMode_ && nextWake_ > now)
        return nextWake_;

    // Tick engine: recompute the bound by scanning every layer. Every
    // gate that can block an otherwise-ready action is listed
    // individually, so a window in which exactly one gate binds still
    // wakes at the cycle that gate releases. Extra (too-early)
    // candidates are harmless — the caller re-evaluates — but a missing
    // one would overshoot and change behaviour.
    Cycle next = kNever;
    auto consider = [&](Cycle c) {
        if (c > now && c < next)
            next = c;
    };
    forEachWakeCandidate(now, consider);
    return next;
}

void
MemoryController::fastForward(Cycle from, Cycle to)
{
    // Settle any lazily deferred window first so the two analytic jumps
    // stay contiguous, then mark [from, to) as accounted.
    settleBackground();
    for (unsigned r = 0; r < banks_.numRanks(); ++r) {
        banks_.rank(r).fastForwardBackground(from, to,
                                             banks_.anyQueuedInRank(r),
                                             energy_);
    }
    bgFrom_ = bgPending_ = to;
}

bool
MemoryController::busy() const
{
    return !readQ_.empty() || !writeQ_.empty() || !inflight_.empty() ||
           !finished_.empty();
}

} // namespace pra::dram
