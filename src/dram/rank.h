/**
 * @file
 * One DRAM rank: the set of banks operating in lockstep across the
 * chips of a DIMM, plus the rank-level constraints — tRRD and the
 * (activation-weighted) tFAW window, refresh scheduling, and the
 * precharge power-down state used by the power model.
 *
 * PRA's relaxed tRRD/tFAW (paper Section 4.1.3): partial activations
 * draw proportionally less current, so they are charged against the
 * four-activation power window by their power weight instead of by
 * count, and the post-ACT tRRD gap shrinks proportionally.
 */
#ifndef PRA_DRAM_RANK_H
#define PRA_DRAM_RANK_H

#include <deque>
#include <vector>

#include "common/types.h"
#include "dram/bank.h"
#include "dram/config.h"
#include "power/power_model.h"

namespace pra::dram {

/** Power-relevant rank state. */
enum class RankState
{
    ActiveStandby,   //!< At least one bank has an open row.
    PrechargeStandby, //!< All banks idle, clocks on.
    PowerDown,       //!< Precharge power-down.
    Refreshing,      //!< Inside tRFC of an all-bank refresh.
};

/** Rank model: banks + rank-level activation and refresh constraints. */
class Rank
{
  public:
    Rank(const DramConfig &cfg, unsigned index);

    Bank &bank(unsigned b) { return banks_[b]; }
    const Bank &bank(unsigned b) const { return banks_[b]; }
    unsigned numBanks() const { return static_cast<unsigned>(banks_.size()); }

    /** True when no bank has an open row. */
    bool allBanksClosed() const;

    // --- Activation budget ------------------------------------------------

    /**
     * Rank-level check: may an activation of weight @p weight issue at
     * @p now? Enforces weighted tFAW and the post-ACT tRRD gap.
     */
    bool canActivate(Cycle now, double weight) const;

    /** Record an activation of weight @p weight at @p now. */
    void recordActivation(Cycle now, double weight);

    // --- Refresh ------------------------------------------------------------

    /** True when the refresh deadline has passed. */
    bool refreshDue(Cycle now) const { return now >= nextRefresh_; }

    /** Cycle at which the next refresh becomes due. */
    Cycle nextRefreshAt() const { return nextRefresh_; }

    /** Earliest cycle the tRRD gate allows another activation. */
    Cycle nextActAllowedAt() const { return nextActAllowed_; }

    /**
     * Visit the expiry cycle of every activation currently charged
     * against the weighted tFAW window (each entry leaves the window at
     * its cycle + tFAW), oldest first. Cycle-skip uses these as wake-up
     * candidates; allocation-free because it runs on the publish path.
     */
    template <typename Fn>
    void
    forEachActWindowExpiry(Fn &&fn) const
    {
        for (const auto &[cycle, weight] : actWindow_) {
            (void)weight;
            fn(cycle + t_.fawWindow);
        }
    }

    /**
     * Earliest tFAW-window expiry, or the all-ones sentinel when the
     * window is empty — the exact cycle the activation budget next
     * loosens (entries are appended in issue order, so the front is the
     * oldest).
     */
    Cycle
    earliestActWindowExpiry() const
    {
        return actWindow_.empty() ? ~Cycle{0}
                                  : actWindow_.front().first + t_.fawWindow;
    }

    /** All banks closed and past their tRP so REF may issue. */
    bool canRefresh(Cycle now) const;

    /** Issue an all-bank refresh at @p now. */
    void refresh(Cycle now);

    bool refreshing(Cycle now) const { return now < refreshDone_; }

    /** Cycle the in-progress (or last) refresh releases the banks. */
    Cycle refreshDoneAt() const { return refreshDone_; }

    // --- RFM (PRAC mitigation, DESIGN.md §13) -------------------------------

    /**
     * Issue an all-bank RFM at @p now: banks block for tRFM exactly as
     * refresh blocks them for tRFC. Preconditions match canRefresh()
     * (all banks closed, past tRP).
     */
    void rfm(Cycle now);

    /** True inside the tRFM window of an in-progress RFM. */
    bool rfmBusy(Cycle now) const { return now < rfmDone_; }

    /** Cycle the in-progress (or last) RFM releases the banks. */
    Cycle rfmDoneAt() const { return rfmDone_; }

    // --- Power-down ----------------------------------------------------------

    /**
     * Update the power-down state machine. @p has_queued_work is true
     * when the controller holds any request for this rank.
     */
    void updatePowerState(Cycle now, bool has_queued_work);

    /** Power-relevant state at @p now (after updatePowerState). */
    RankState powerState(Cycle now) const;

    /** True when in power-down; activations must first wake the rank. */
    bool poweredDown() const { return poweredDown_; }

    /** Leave power-down; banks stall tXP before the next ACT. */
    void wake(Cycle now);

    /**
     * Cycle-skip fast path: account the background power of the cycles
     * [@p from, @p to) in one jump, assuming no command issues and no
     * request arrives in that window (so bank open state and
     * @p has_queued_work are constant). Performs exactly the state
     * transitions and energy counting that per-cycle
     * updatePowerState()+powerState() accounting would, verified against
     * a cycle-by-cycle replay in debug builds.
     */
    void fastForwardBackground(Cycle from, Cycle to, bool has_queued_work,
                               power::EnergyCounts &energy);

    // --- Analysis probe seam ----------------------------------------------

    /**
     * Fold the protocol-relevant rank state (banks, weighted tFAW
     * window, tRRD gate, refresh schedule, power-down) into @p h with
     * all cycle registers normalized to @p now and saturated at
     * @p horizon — see Bank::fingerprint.
     */
    void fingerprint(Fnv1a &h, Cycle now, Cycle horizon) const;

    /**
     * The rank-level registers alone (weighted tFAW window, tRRD gate,
     * refresh schedule, power-down) without the per-bank FSMs. The
     * model checker's symmetry reduction hashes banks separately so it
     * can canonicalize their order within a bank group; fingerprint()
     * composes this with every Bank::fingerprint in index order.
     */
    void fingerprintRankLevel(Fnv1a &h, Cycle now, Cycle horizon) const;

  private:
    const DramConfig *cfg_;   //!< Power-down policy knobs only.
    RankTables t_;
    std::vector<Bank> banks_;

    // Weighted tFAW window: (cycle, weight) of recent activations.
    mutable std::deque<std::pair<Cycle, double>> actWindow_;
    Cycle nextActAllowed_ = 0;   //!< tRRD gate.

    Cycle nextRefresh_;
    Cycle refreshDone_ = 0;
    Cycle rfmDone_ = 0;

    bool poweredDown_ = false;
    Cycle idleSince_ = 0;
    bool wasIdle_ = false;
};

} // namespace pra::dram

#endif // PRA_DRAM_RANK_H
