/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * Two mappings from the paper: row-interleaved (consecutive lines fill a
 * row before moving on — maximizes row-buffer locality, used with the
 * relaxed close-page policy) and line-interleaved (consecutive lines
 * stripe across channels/banks/ranks — maximizes parallelism, used with
 * the restricted close-page policy).
 */
#ifndef PRA_DRAM_ADDRESS_MAPPING_H
#define PRA_DRAM_ADDRESS_MAPPING_H

#include "dram/config.h"
#include "dram/request.h"

namespace pra::dram {

/** Decodes line addresses into channel/rank/bank/row/column. */
class AddressMapper
{
  public:
    explicit AddressMapper(const DramConfig &cfg);

    /** Decode byte address @p addr. */
    DecodedAddr decode(Addr addr) const;

    /** Recompose a byte address from DRAM coordinates (inverse map). */
    Addr encode(const DecodedAddr &loc) const;

    /** Total addressable bytes. */
    Addr capacityBytes() const;

  private:
    AddrMapping mapping_;
    unsigned channels_, ranks_, banks_;
    std::uint32_t rows_;
    unsigned cols_;
};

} // namespace pra::dram

#endif // PRA_DRAM_ADDRESS_MAPPING_H
