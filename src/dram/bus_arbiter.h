/**
 * @file
 * Command- and data-bus arbiter for one channel.
 *
 * Owns every channel-level shared-resource gate the controller used to
 * scatter across its tick path:
 *
 *  - command/address-bus occupancy (one slot per command, plus the
 *    extra PRA mask cycles of a partial activation);
 *  - data-bus reservation with the tRTRS rank-switch bubble;
 *  - the tWTR write-to-read turnaround gate;
 *  - DDR4 bank-group column spacing (tCCD_L within a group, tCCD_S
 *    across groups) at the channel level.
 *
 * The scheduler and maintenance paths ask may-issue questions here and
 * report issued commands back; the cycle-skip bound enumerates the
 * arbiter's wake-up candidates through considerWakeups().
 */
#ifndef PRA_DRAM_BUS_ARBITER_H
#define PRA_DRAM_BUS_ARBITER_H

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "dram/config.h"
#include "dram/timing_tables.h"

namespace pra::dram {

/** Channel-level bus and turnaround gating (see file header). */
class BusArbiter
{
  public:
    explicit BusArbiter(const DramConfig &cfg)
        : cfg_(&cfg), t_(TimingTables::build(cfg).channel)
    {
    }

    // --- Command/address bus ---------------------------------------------

    bool cmdBusBusy(Cycle now) const { return now < cmdBusFree_; }

    /** Cycle the command bus frees (exact wake bound when busy). */
    Cycle cmdBusFreeAt() const { return cmdBusFree_; }

    /** Occupy the command bus at @p now for 1 + @p extra cycles. */
    void holdCmdBus(Cycle now, unsigned extra = 0)
    {
        cmdBusFree_ = now + 1 + extra;
    }

    // --- Write-to-read turnaround ----------------------------------------

    /** tWTR: read commands blocked until the write data window clears. */
    bool readBlocked(Cycle now) const
    {
        if (cfg_->faultIgnoreTwtr)
            return false;   // Test-only fault: checker must catch this.
        return now < readCmdBlockedUntil_;
    }

    /** A write command at @p now blocks reads for wl + burst + tWTR. */
    void noteWriteIssued(Cycle now, unsigned burst)
    {
        readCmdBlockedUntil_ = now + t_.writeToRead + burst;
    }

    /** Cycle the tWTR gate releases (exact wake bound when blocked). */
    Cycle
    readBlockedUntil() const
    {
        // Test-only fault: report a stale (cycle-0) bound while
        // readBlocked() keeps gating. The wake heap's c > now rule
        // drops stale bounds, so the event engine loses the tWTR
        // release wakeup — the model checker's wakeup-soundness
        // property must catch this.
        if (cfg_->faultSuppressWakeTwtr)
            return 0;
        return readCmdBlockedUntil_;
    }

    // --- Data bus ---------------------------------------------------------

    /** May a burst to @p rank_id start its data at @p start? */
    bool
    dataBusFree(Cycle start, unsigned rank_id) const
    {
        Cycle earliest = dataBusFree_;
        if (rank_id != lastBusRank_)
            earliest += t_.rankSwitch;
        return start >= earliest;
    }

    void
    reserveDataBus(Cycle start, unsigned burst, unsigned rank_id)
    {
        dataBusFree_ = start + burst;
        lastBusRank_ = rank_id;
    }

    /** Earliest data-start cycle for @p rank_id (wake-bound query). */
    Cycle
    dataBusFreeAt(unsigned rank_id) const
    {
        return rank_id != lastBusRank_ ? dataBusFree_ + t_.rankSwitch
                                       : dataBusFree_;
    }

    // --- DDR4 bank-group column spacing ------------------------------------

    /** tCCD_S/tCCD_L spacing against the last column command. */
    bool
    columnGateOk(unsigned bank_id, Cycle now) const
    {
        if (t_.bankGroups <= 1 || !anyColumnIssued_)
            return true;
        const bool same_group = groupOf(bank_id) == lastColumnGroup_;
        // Test-only fault: treat same-group spacing as cross-group, so
        // the independent TimingChecker must flag the tCCD_L violation.
        const Cycle gap = same_group && !cfg_->faultIgnoreTccdL
                              ? t_.columnSameGroup
                              : t_.columnCrossGroup;
        return now >= lastColumnCycle_ + gap;
    }

    /** Cycle the tCCD spacing for @p bank_id releases (wake bound). */
    Cycle
    columnGateFreeAt(unsigned bank_id) const
    {
        if (t_.bankGroups <= 1 || !anyColumnIssued_)
            return 0;
        const bool same_group = groupOf(bank_id) == lastColumnGroup_;
        const Cycle gap = same_group && !cfg_->faultIgnoreTccdL
                              ? t_.columnSameGroup
                              : t_.columnCrossGroup;
        return lastColumnCycle_ + gap;
    }

    void
    noteColumnIssued(unsigned bank_id, Cycle now)
    {
        if (t_.bankGroups > 1) {
            lastColumnCycle_ = now;
            lastColumnGroup_ = groupOf(bank_id);
            anyColumnIssued_ = true;
        }
    }

    // --- Cycle-skip support -------------------------------------------------

    /**
     * Feed every cycle at which a bus gate could release an otherwise
     * ready action to @p consider (the nextEventCycle() candidate
     * collector).
     */
    template <typename Fn>
    void
    considerWakeups(bool reads_queued, bool any_queued,
                    Fn &&consider) const
    {
        // The command bus gates refresh and every scheduler action.
        consider(cmdBusFree_);
        if (!any_queued)
            return;
        if (reads_queued)
            consider(readBlockedUntil());   // tWTR release (faultable).
        if (t_.bankGroups > 1 && anyColumnIssued_) {
            consider(lastColumnCycle_ + t_.columnCrossGroup);
            consider(lastColumnCycle_ + t_.columnSameGroup);
        }
        // Data-bus release: a column command becomes issuable once its
        // data window (starting wl/rl cycles later, +tRtrs on a rank
        // switch) clears dataBusFree_.
        const Cycle lats[] = {t_.writeLatency, t_.readLatency};
        for (Cycle lat : lats) {
            for (Cycle busy_until :
                 {dataBusFree_, dataBusFree_ + t_.rankSwitch}) {
                if (busy_until > lat)
                    consider(busy_until - lat);
            }
        }
    }

    // --- Analysis probe seam ----------------------------------------------

    /**
     * Fold the channel bus state into @p h, cycle registers normalized
     * to @p now and saturated at @p horizon (see Bank::fingerprint).
     * The tCCD_S/L reference point is hashed as the two release cycles
     * it implies rather than the raw command cycle, so long-expired
     * column history does not keep otherwise-identical states apart.
     * When @p rank_rename is non-null it maps rank ids to canonical
     * positions (the model checker's symmetry reduction) before the
     * live data-bus rank is hashed.
     */
    void
    fingerprint(Fnv1a &h, Cycle now, Cycle horizon,
                const std::vector<unsigned> *rank_rename = nullptr) const
    {
        auto delta = [&](Cycle reg) {
            h.add(reg <= now ? Cycle{0} : std::min(reg - now, horizon));
        };
        delta(cmdBusFree_);
        delta(dataBusFree_);
        unsigned bus_rank = lastBusRank_;
        if (rank_rename && bus_rank < rank_rename->size())
            bus_rank = (*rank_rename)[bus_rank];
        h.add(dataBusFree_ > now ? bus_rank : 0u);
        delta(readCmdBlockedUntil_);
        if (t_.bankGroups > 1 && anyColumnIssued_) {
            delta(lastColumnCycle_ + t_.columnCrossGroup);
            delta(lastColumnCycle_ + t_.columnSameGroup);
            const bool live =
                lastColumnCycle_ + t_.columnSameGroup > now;
            h.add(live ? lastColumnGroup_ : ~0u);
        }
    }

  private:
    unsigned groupOf(unsigned bank_id) const
    {
        return bank_id /
               (cfg_->banksPerRank / static_cast<unsigned>(t_.bankGroups));
    }

    const DramConfig *cfg_;   //!< Fault hooks + geometry only.
    ChannelTables t_;
    Cycle cmdBusFree_ = 0;
    Cycle dataBusFree_ = 0;
    unsigned lastBusRank_ = 0;
    Cycle readCmdBlockedUntil_ = 0;  //!< tWTR gate after write data.
    Cycle lastColumnCycle_ = 0;      //!< DDR4 tCCD_S/tCCD_L gating.
    unsigned lastColumnGroup_ = ~0u;
    bool anyColumnIssued_ = false;
};

} // namespace pra::dram

#endif // PRA_DRAM_BUS_ARBITER_H
