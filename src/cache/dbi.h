/**
 * @file
 * Dirty-Block Index (DBI) — DRAM-aware writeback (paper Section 5.2.3,
 * after Seshadri et al., ISCA 2014).
 *
 * The DBI decouples dirty bits from the tag store and organizes them by
 * DRAM row. When a dirty line is evicted from the LLC, every other dirty
 * line belonging to the same DRAM row is proactively written back too, so
 * a single write row activation is amortized over many writebacks.
 */
#ifndef PRA_CACHE_DBI_H
#define PRA_CACHE_DBI_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace pra::cache {

/** Tracks which LLC lines are dirty, grouped by DRAM row. */
class DirtyBlockIndex
{
  public:
    /** @p row_key maps a line address to its DRAM row identity. */
    explicit DirtyBlockIndex(std::function<std::uint64_t(Addr)> row_key)
        : rowKey_(std::move(row_key))
    {}

    /** Record that the LLC line at @p addr is dirty. */
    void markDirty(Addr addr);

    /** Record that the line was cleaned or evicted. */
    void markClean(Addr addr);

    /**
     * The evicted dirty line at @p addr triggers proactive writeback:
     * returns the addresses of all *other* dirty lines in the same DRAM
     * row (and forgets them — the caller must clean and write them back).
     */
    std::vector<Addr> siblingsForEviction(Addr addr);

    std::uint64_t trackedLines() const { return tracked_; }
    std::uint64_t proactiveWritebacks() const { return proactive_; }

    /** True when @p addr is currently tracked as dirty. */
    bool isTracked(Addr addr) const;

    /**
     * Every tracked line address, ordered by (row key, intra-row
     * insertion order) for deterministic audit iteration.
     */
    std::vector<Addr> trackedAddresses() const;

    /** FNV-1a over the row-group table (sorted) and counters. */
    std::uint64_t auditFingerprint() const;

  private:
    std::function<std::uint64_t(Addr)> rowKey_;
    std::unordered_map<std::uint64_t, std::vector<Addr>> dirtyByRow_;
    std::uint64_t tracked_ = 0;
    std::uint64_t proactive_ = 0;
};

} // namespace pra::cache

#endif // PRA_CACHE_DBI_H
