/**
 * @file
 * Tag-only set-associative write-back cache with fine-grained dirty bits
 * (FGD, paper Section 4.1.4).
 *
 * Each line tracks dirtiness at byte granularity (a ByteMask). Stores OR
 * their written bytes into the line's mask; the word-level PRA mask is
 * derived with ByteMask::toWordMask() when the line finally leaves the
 * hierarchy. The cache stores no data — the simulator only needs address
 * and dirtiness behaviour.
 */
#ifndef PRA_CACHE_CACHE_H
#define PRA_CACHE_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitmask.h"
#include "common/types.h"

namespace pra::cache {

/** Geometry and identification of one cache. */
struct CacheParams
{
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = kLineBytes;

    std::size_t numSets() const { return sizeBytes / lineBytes / ways; }
};

/** A line evicted from a cache, with its accumulated dirty bytes. */
struct EvictedLine
{
    Addr addr = 0;
    ByteMask dirty;   //!< Empty for clean evictions.

    bool isDirty() const { return !dirty.empty(); }
};

/** Result of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** Victim displaced by the fill (misses only, when a line existed). */
    std::optional<EvictedLine> evicted;
};

/** LRU set-associative write-back write-allocate cache (tags only). */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    const CacheParams &params() const { return params_; }

    /**
     * Access line @p addr. On a miss the line is allocated (fill) and the
     * LRU victim, if any, is returned. @p store_bytes is ORed into the
     * line's dirty mask for writes.
     */
    AccessResult access(Addr addr, bool is_write, ByteMask store_bytes);

    /** True when the line is present. */
    bool contains(Addr addr) const;

    /** Dirty mask of a resident line (empty if absent or clean). */
    ByteMask dirtyMask(Addr addr) const;

    /** Mark a resident line clean (DBI proactive writeback). */
    void cleanLine(Addr addr);

    /**
     * Remove the line, returning its state (back-invalidation from an
     * inclusive outer level).
     */
    std::optional<EvictedLine> invalidate(Addr addr);

    /** OR extra dirty bytes into a resident line (L1 -> L2 writeback). */
    void mergeDirty(Addr addr, ByteMask dirty);

    /** All resident dirty lines (diagnostics / flush). */
    std::vector<EvictedLine> collectDirtyLines() const;

    /** Total way slots (sets x associativity), for chunked audits. */
    std::size_t totalWays() const { return ways_.size(); }

    /**
     * Dirty lines among way slots [first, first + count) with wrap-
     * around, so an auditor can scan the cache incrementally with a
     * rotating cursor instead of O(cache) per sample.
     */
    std::vector<EvictedLine> dirtyLinesInRange(std::size_t first,
                                               std::size_t count) const;

    /**
     * FNV-1a over the complete mutable state (tags, dirty masks, LRU
     * stamps, statistics). Two caches with equal fingerprints behave
     * identically under any subsequent access sequence.
     */
    std::uint64_t auditFingerprint() const;

    // Statistics.
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_; }

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        ByteMask dirty;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Way *find(Addr addr);
    const Way *find(Addr addr) const;

    CacheParams params_;
    std::size_t sets_;
    std::vector<Way> ways_;   //!< sets_ x params_.ways, row-major.
    std::uint64_t useClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
};

} // namespace pra::cache

#endif // PRA_CACHE_CACHE_H
