#include "cache/hierarchy.h"

#include <cassert>

#include "common/hash.h"

namespace pra::cache {

Hierarchy::Hierarchy(const HierarchyConfig &cfg)
    : cfg_(cfg), l2_(cfg.l2)
{
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        l1s_.push_back(std::make_unique<Cache>(cfg_.l1));
    if (cfg_.enableDbi) {
        assert(cfg_.dbiRowKey && "DBI requires a row-key function");
        dbi_ = std::make_unique<DirtyBlockIndex>(cfg_.dbiRowKey);
    }
}

Hierarchy::Hierarchy(const Hierarchy &other)
    : cfg_(other.cfg_), l2_(other.l2_), dirtyWords_(other.dirtyWords_),
      memReads_(other.memReads_), memWrites_(other.memWrites_)
{
    l1s_.reserve(other.l1s_.size());
    for (const auto &l1 : other.l1s_)
        l1s_.push_back(std::make_unique<Cache>(*l1));
    if (other.dbi_)
        dbi_ = std::make_unique<DirtyBlockIndex>(*other.dbi_);
}

void
Hierarchy::emitWriteback(Addr addr, ByteMask dirty,
                         std::vector<Writeback> &out)
{
    ++memWrites_;
    dirtyWords_.record(dirty.toWordMask().count());
    out.push_back({addr, dirty});
}

void
Hierarchy::evictFromL2(const EvictedLine &victim,
                       std::vector<Writeback> &out)
{
    // Inclusive hierarchy: back-invalidate L1 copies and fold their
    // dirty bytes into the departing line.
    ByteMask dirty = victim.dirty;
    for (auto &l1 : l1s_) {
        if (auto line = l1->invalidate(victim.addr))
            dirty |= line->dirty;
    }

    if (dirty.empty()) {
        if (dbi_)
            dbi_->markClean(victim.addr);
        return;
    }

    if (dbi_) {
        // DRAM-aware writeback: flush every dirty line of this DRAM row.
        const std::vector<Addr> siblings =
            dbi_->siblingsForEviction(victim.addr);
        emitWriteback(victim.addr, dirty, out);
        for (Addr sib : siblings) {
            ByteMask sib_dirty = l2_.dirtyMask(sib);
            // Include dirty bytes still sitting in the L1s.
            for (auto &l1 : l1s_) {
                sib_dirty |= l1->dirtyMask(sib);
                l1->cleanLine(sib);
            }
            if (!sib_dirty.empty()) {
                l2_.cleanLine(sib);
                emitWriteback(sib, sib_dirty, out);
            }
        }
    } else {
        emitWriteback(victim.addr, dirty, out);
    }
}

HierarchyOutcome
Hierarchy::access(unsigned core, Addr addr, bool is_write,
                  ByteMask store_bytes)
{
    assert(core < l1s_.size());
    addr = lineBase(addr);
    HierarchyOutcome outcome;

    Cache &l1 = *l1s_[core];
    const AccessResult l1_result = l1.access(addr, is_write, store_bytes);
    if (l1_result.hit) {
        outcome.l1Hit = true;
        return outcome;
    }

    // L1 victim writes back into the (inclusive) L2.
    if (l1_result.evicted && l1_result.evicted->isDirty()) {
        l2_.mergeDirty(l1_result.evicted->addr, l1_result.evicted->dirty);
        if (dbi_)
            dbi_->markDirty(l1_result.evicted->addr);
    }

    // The L2 sees the access as a read (the store's bytes stay dirty in
    // the L1 until that line is evicted).
    const AccessResult l2_result =
        l2_.access(addr, false, ByteMask::none());
    if (l2_result.hit) {
        outcome.l2Hit = true;
        return outcome;
    }

    outcome.needsMemRead = true;
    ++memReads_;
    if (l2_result.evicted)
        evictFromL2(*l2_result.evicted, outcome.writebacks);
    return outcome;
}

std::uint64_t
Hierarchy::auditFingerprint() const
{
    Fnv1a h;
    h.add(static_cast<std::uint64_t>(l1s_.size()));
    for (const auto &l1 : l1s_)
        h.add(l1->auditFingerprint());
    h.add(l2_.auditFingerprint());
    for (std::size_t b = 0; b < dirtyWords_.buckets(); ++b)
        h.add(dirtyWords_.count(b));
    h.add(memReads_);
    h.add(memWrites_);
    h.add(dbi_ ? dbi_->auditFingerprint() : std::uint64_t{0});
    return h.value();
}

std::vector<Writeback>
Hierarchy::flush()
{
    std::vector<Writeback> out;
    // Pull L1 dirtiness down into the L2 first.
    for (auto &l1 : l1s_) {
        for (const EvictedLine &line : l1->collectDirtyLines()) {
            l2_.mergeDirty(line.addr, line.dirty);
            l1->cleanLine(line.addr);
        }
    }
    for (const EvictedLine &line : l2_.collectDirtyLines()) {
        l2_.cleanLine(line.addr);
        if (dbi_)
            dbi_->markClean(line.addr);
        emitWriteback(line.addr, line.dirty, out);
    }
    return out;
}

} // namespace pra::cache
