#include "cache/cache.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace pra::cache {

Cache::Cache(const CacheParams &params)
    : params_(params), sets_(params.numSets())
{
    assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 &&
           "set count must be a power of two");
    ways_.resize(sets_ * params_.ways);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>((addr / params_.lineBytes) &
                                    (sets_ - 1));
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / sets_;
}

Cache::Way *
Cache::find(Addr addr)
{
    const std::size_t base = setIndex(addr) * params_.ways;
    const std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.tag == tag)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

AccessResult
Cache::access(Addr addr, bool is_write, ByteMask store_bytes)
{
    addr = lineBase(addr);
    ++useClock_;

    if (Way *way = find(addr)) {
        ++hits_;
        way->lastUse = useClock_;
        if (is_write)
            way->dirty |= store_bytes;
        return {true, std::nullopt};
    }

    ++misses_;
    const std::size_t base = setIndex(addr) * params_.ways;
    Way *victim = &ways_[base];
    for (unsigned w = 0; w < params_.ways; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }

    AccessResult result;
    if (victim->valid) {
        ++evictions_;
        if (!victim->dirty.empty())
            ++dirtyEvictions_;
        // Reconstruct the victim's address from tag and set.
        const std::size_t set = setIndex(addr);
        const Addr victim_addr =
            (victim->tag * sets_ + set) * params_.lineBytes;
        result.evicted = EvictedLine{victim_addr, victim->dirty};
    }

    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->dirty = is_write ? store_bytes : ByteMask::none();
    victim->lastUse = useClock_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    return find(lineBase(addr)) != nullptr;
}

ByteMask
Cache::dirtyMask(Addr addr) const
{
    const Way *way = find(lineBase(addr));
    return way ? way->dirty : ByteMask::none();
}

void
Cache::cleanLine(Addr addr)
{
    if (Way *way = find(lineBase(addr)))
        way->dirty = ByteMask::none();
}

std::optional<EvictedLine>
Cache::invalidate(Addr addr)
{
    addr = lineBase(addr);
    if (Way *way = find(addr)) {
        EvictedLine line{addr, way->dirty};
        way->valid = false;
        way->dirty = ByteMask::none();
        return line;
    }
    return std::nullopt;
}

void
Cache::mergeDirty(Addr addr, ByteMask dirty)
{
    if (Way *way = find(lineBase(addr)))
        way->dirty |= dirty;
}

std::vector<EvictedLine>
Cache::dirtyLinesInRange(std::size_t first, std::size_t count) const
{
    std::vector<EvictedLine> lines;
    if (ways_.empty())
        return lines;
    count = std::min(count, ways_.size());
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = (first + i) % ways_.size();
        const Way &way = ways_[idx];
        if (way.valid && !way.dirty.empty()) {
            const std::size_t set = idx / params_.ways;
            const Addr addr = (way.tag * sets_ + set) * params_.lineBytes;
            lines.push_back({addr, way.dirty});
        }
    }
    return lines;
}

std::uint64_t
Cache::auditFingerprint() const
{
    Fnv1a h;
    h.add(sets_);
    h.add(params_.ways);
    h.add(useClock_);
    h.add(hits_);
    h.add(misses_);
    h.add(evictions_);
    h.add(dirtyEvictions_);
    for (const Way &way : ways_) {
        h.add(static_cast<std::uint8_t>(way.valid));
        h.add(way.tag);
        h.add(way.dirty.bits());
        h.add(way.lastUse);
    }
    return h.value();
}

std::vector<EvictedLine>
Cache::collectDirtyLines() const
{
    std::vector<EvictedLine> lines;
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned w = 0; w < params_.ways; ++w) {
            const Way &way = ways_[set * params_.ways + w];
            if (way.valid && !way.dirty.empty()) {
                const Addr addr =
                    (way.tag * sets_ + set) * params_.lineBytes;
                lines.push_back({addr, way.dirty});
            }
        }
    }
    return lines;
}

} // namespace pra::cache
