#include "cache/dbi.h"

#include <algorithm>

#include "common/hash.h"

namespace pra::cache {

bool
DirtyBlockIndex::isTracked(Addr addr) const
{
    addr = lineBase(addr);
    const auto it = dirtyByRow_.find(rowKey_(addr));
    if (it == dirtyByRow_.end())
        return false;
    return std::find(it->second.begin(), it->second.end(), addr) !=
           it->second.end();
}

std::vector<Addr>
DirtyBlockIndex::trackedAddresses() const
{
    // The unordered_map iteration order is an implementation detail;
    // sort by row key so audits (and fingerprints) are deterministic.
    std::vector<std::uint64_t> keys;
    keys.reserve(dirtyByRow_.size());
    for (const auto &[key, lines] : dirtyByRow_) {   // pra-lint: unordered-ok (keys sorted before use)
        (void)lines;
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());

    std::vector<Addr> addrs;
    for (std::uint64_t key : keys) {
        for (Addr addr : dirtyByRow_.at(key))
            addrs.push_back(addr);
    }
    return addrs;
}

std::uint64_t
DirtyBlockIndex::auditFingerprint() const
{
    std::vector<std::uint64_t> keys;
    keys.reserve(dirtyByRow_.size());
    for (const auto &[key, lines] : dirtyByRow_) {   // pra-lint: unordered-ok (keys sorted before use)
        (void)lines;
        keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());

    Fnv1a h;
    h.add(tracked_);
    h.add(proactive_);
    for (std::uint64_t key : keys) {
        h.add(key);
        for (Addr addr : dirtyByRow_.at(key))
            h.add(addr);
    }
    return h.value();
}

void
DirtyBlockIndex::markDirty(Addr addr)
{
    addr = lineBase(addr);
    auto &lines = dirtyByRow_[rowKey_(addr)];
    if (std::find(lines.begin(), lines.end(), addr) == lines.end()) {
        lines.push_back(addr);
        ++tracked_;
    }
}

void
DirtyBlockIndex::markClean(Addr addr)
{
    addr = lineBase(addr);
    auto it = dirtyByRow_.find(rowKey_(addr));
    if (it == dirtyByRow_.end())
        return;
    auto &lines = it->second;
    auto pos = std::find(lines.begin(), lines.end(), addr);
    if (pos != lines.end()) {
        lines.erase(pos);
        --tracked_;
        if (lines.empty())
            dirtyByRow_.erase(it);
    }
}

std::vector<Addr>
DirtyBlockIndex::siblingsForEviction(Addr addr)
{
    addr = lineBase(addr);
    std::vector<Addr> siblings;
    auto it = dirtyByRow_.find(rowKey_(addr));
    if (it == dirtyByRow_.end())
        return siblings;
    for (Addr line : it->second) {
        if (line != addr)
            siblings.push_back(line);
    }
    tracked_ -= it->second.size();
    proactive_ += siblings.size();
    dirtyByRow_.erase(it);
    return siblings;
}

} // namespace pra::cache
