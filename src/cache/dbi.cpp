#include "cache/dbi.h"

#include <algorithm>

namespace pra::cache {

void
DirtyBlockIndex::markDirty(Addr addr)
{
    addr = lineBase(addr);
    auto &lines = dirtyByRow_[rowKey_(addr)];
    if (std::find(lines.begin(), lines.end(), addr) == lines.end()) {
        lines.push_back(addr);
        ++tracked_;
    }
}

void
DirtyBlockIndex::markClean(Addr addr)
{
    addr = lineBase(addr);
    auto it = dirtyByRow_.find(rowKey_(addr));
    if (it == dirtyByRow_.end())
        return;
    auto &lines = it->second;
    auto pos = std::find(lines.begin(), lines.end(), addr);
    if (pos != lines.end()) {
        lines.erase(pos);
        --tracked_;
        if (lines.empty())
            dirtyByRow_.erase(it);
    }
}

std::vector<Addr>
DirtyBlockIndex::siblingsForEviction(Addr addr)
{
    addr = lineBase(addr);
    std::vector<Addr> siblings;
    auto it = dirtyByRow_.find(rowKey_(addr));
    if (it == dirtyByRow_.end())
        return siblings;
    for (Addr line : it->second) {
        if (line != addr)
            siblings.push_back(line);
    }
    tracked_ -= it->second.size();
    proactive_ += siblings.size();
    dirtyByRow_.erase(it);
    return siblings;
}

} // namespace pra::cache
