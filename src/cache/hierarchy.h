/**
 * @file
 * Two-level inclusive cache hierarchy with FGD plumbing (paper Fig. 8):
 * private L1 data caches over a shared L2. Stores set byte-granularity
 * dirty bits in the L1; on L1 eviction the bits are ORed into the L2
 * copy; on L2 eviction the accumulated dirty bits leave as a writeback
 * whose word mask becomes the DRAM PRA mask. Optionally a Dirty-Block
 * Index turns each dirty L2 eviction into a row-batched writeback group.
 */
#ifndef PRA_CACHE_HIERARCHY_H
#define PRA_CACHE_HIERARCHY_H

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cache/dbi.h"
#include "common/stats.h"

namespace pra::cache {

/** Hierarchy geometry (paper Table 3 baseline). */
struct HierarchyConfig
{
    unsigned numCores = 4;
    CacheParams l1{32 * 1024, 4, kLineBytes};
    CacheParams l2{4 * 1024 * 1024, 8, kLineBytes};
    bool enableDbi = false;
    /** Row-key function for the DBI (DRAM row identity of a line). */
    std::function<std::uint64_t(Addr)> dbiRowKey;
};

/** A line leaving the hierarchy toward DRAM. */
struct Writeback
{
    Addr addr = 0;
    ByteMask dirty;

    /** PRA mask delivered to the memory controller with the writeback. */
    WordMask praMask() const { return dirty.toWordMask(); }
};

/** What one core access did to the hierarchy. */
struct HierarchyOutcome
{
    bool l1Hit = false;
    bool l2Hit = false;
    bool needsMemRead = false;   //!< LLC miss: line must be fetched.
    std::vector<Writeback> writebacks;
};

/** Private-L1 / shared-L2 hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &cfg);

    /**
     * Deep copy: every tag array, dirty mask, LRU clock, DBI row-group
     * table, and statistic counter is duplicated, so the copy behaves
     * bit-identically to the original under any subsequent access
     * sequence. This is what lets a warm snapshot (sim::WarmSnapshot) be
     * forked into many simulations after a single functional warmup.
     */
    Hierarchy(const Hierarchy &other);
    Hierarchy(Hierarchy &&) = default;

    /**
     * Core @p core accesses @p addr; for stores @p store_bytes are the
     * bytes written (FGD granularity).
     */
    HierarchyOutcome access(unsigned core, Addr addr, bool is_write,
                            ByteMask store_bytes);

    /** Write back every dirty line (end-of-run flush). */
    std::vector<Writeback> flush();

    unsigned numCores() const
    {
        return static_cast<unsigned>(l1s_.size());
    }
    const Cache &l1(unsigned core) const { return *l1s_[core]; }
    const Cache &l2() const { return l2_; }
    const DirtyBlockIndex *dbi() const { return dbi_.get(); }

    /**
     * FNV-1a over the complete mutable hierarchy state (every cache,
     * the DBI table, histograms, counters). The deep-copy constructor's
     * contract — a warm-snapshot fork behaves bit-identically to its
     * source — is checkable as fingerprint equality; the invariant
     * auditor does so under PRA_AUDIT_REPLAY=1.
     */
    std::uint64_t auditFingerprint() const;

    /** Dirty-word count distribution of LLC writebacks (Figure 3). */
    const Histogram &dirtyWordsHistogram() const { return dirtyWords_; }

    std::uint64_t memReads() const { return memReads_; }
    std::uint64_t memWrites() const { return memWrites_; }

  private:
    void evictFromL2(const EvictedLine &victim,
                     std::vector<Writeback> &out);
    void emitWriteback(Addr addr, ByteMask dirty,
                       std::vector<Writeback> &out);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    Cache l2_;
    std::unique_ptr<DirtyBlockIndex> dbi_;

    Histogram dirtyWords_{kWordsPerLine + 1};
    std::uint64_t memReads_ = 0;
    std::uint64_t memWrites_ = 0;
};

} // namespace pra::cache

#endif // PRA_CACHE_HIERARCHY_H
