/**
 * @file
 * The instruction-stream abstraction the core model executes: a sequence
 * of memory operations separated by non-memory instruction gaps. Workload
 * generators (synthetic SPEC models and the algorithmic microbenchmark
 * kernels) produce this stream.
 */
#ifndef PRA_CPU_MEM_OP_H
#define PRA_CPU_MEM_OP_H

#include <memory>

#include "common/bitmask.h"
#include "common/types.h"

namespace pra::cpu {

/** One memory instruction plus its preceding non-memory gap. */
struct MemOp
{
    unsigned gap = 0;       //!< Non-memory instructions before this op.
    bool isWrite = false;
    Addr addr = 0;
    /** Bytes a store writes (drives the FGD dirty bits). */
    ByteMask bytes;
    /**
     * Load depends on the previous load's value (pointer chase): the
     * core may not issue it while any demand load is outstanding.
     */
    bool serializing = false;
};

/** Infinite instruction-stream source. */
class Generator
{
  public:
    virtual ~Generator() = default;

    /** Produce the next memory operation. */
    virtual MemOp next() = 0;

    /** Short workload name for reports. */
    virtual const char *name() const = 0;

    /**
     * Checkpoint support: an independent deep copy whose future next()
     * stream is identical to this generator's — RNG state, cursors, and
     * any pending-operation state included. Warm-snapshot forking
     * (sim::WarmSnapshot) clones the post-warmup generators so every
     * forked system replays the exact instruction stream a cold run
     * would have seen.
     */
    virtual std::unique_ptr<Generator> clone() const = 0;
};

} // namespace pra::cpu

#endif // PRA_CPU_MEM_OP_H
