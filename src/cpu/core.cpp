#include "cpu/core.h"

#include <algorithm>
#include <limits>

namespace pra::cpu {

Core::Core(unsigned id, const CoreParams &params, Generator &gen,
           CoreMemoryPort &port)
    : id_(id), params_(params), gen_(&gen), port_(&port),
      nextTag_(static_cast<std::uint64_t>(id) << 48)
{
    demandLoads_.reserve(params_.ldqSize);
}

std::uint64_t
Core::robLimit() const
{
    if (demandLoads_.empty())
        return std::numeric_limits<std::uint64_t>::max();
    std::uint64_t oldest = demandLoads_.front().instNum;
    for (const auto &l : demandLoads_)
        oldest = std::min(oldest, l.instNum);
    return oldest + params_.robSize;
}

void
Core::tick()
{
    std::uint64_t budget =
        static_cast<std::uint64_t>(params_.issueWidth) *
        kCpuCyclesPerDramCycle;

    while (budget > 0) {
        if (!hasOp_) {
            op_ = gen_->next();
            opInst_ = instCount_ + op_.gap + 1;
            hasOp_ = true;
        }

        // Run ahead through non-memory instructions, bounded by the ROB.
        const std::uint64_t limit = std::min(opInst_ - 1, robLimit());
        if (instCount_ < limit) {
            const std::uint64_t adv =
                std::min<std::uint64_t>(budget, limit - instCount_);
            instCount_ += adv;
            budget -= adv;
            if (budget == 0)
                break;
        }
        if (instCount_ < opInst_ - 1)
            break;   // ROB-head blocked on an outstanding load.

        // The memory op is next; check structural constraints.
        if (instCount_ + 1 > robLimit())
            break;
        if (op_.isWrite) {
            if (storeFetches_ >= params_.stqSize)
                break;
        } else {
            if (demandLoads_.size() >= params_.ldqSize)
                break;
            if (op_.serializing && !demandLoads_.empty())
                break;   // Pointer chase: wait for in-flight loads.
        }
        if (!port_->canIssue(id_, op_.addr))
            break;   // DRAM queue or writeback backpressure.

        const std::uint64_t tag = nextTag_++;
        const bool fetching = port_->access(id_, op_, tag);
        ++instCount_;
        --budget;
        if (op_.isWrite) {
            ++stores_;
            if (fetching)
                ++storeFetches_;
        } else {
            ++loads_;
            if (fetching)
                demandLoads_.push_back({tag, instCount_});
        }
        hasOp_ = false;
    }
}

bool
Core::stalled() const
{
    // Mirrors the break conditions of tick(): every one of them can only
    // clear via complete() or the memory port freeing, never by the mere
    // passage of time, so a true result stays true until one of those
    // happens.
    if (!hasOp_)
        return false;   // Next op unknown; tick() must pull it first.
    const std::uint64_t limit = std::min(opInst_ - 1, robLimit());
    if (instCount_ < limit)
        return false;   // Can still run ahead of the memory op.
    if (instCount_ < opInst_ - 1)
        return true;    // ROB-head blocked on an outstanding load.
    if (instCount_ + 1 > robLimit())
        return true;    // The memory op itself would overflow the ROB.
    if (op_.isWrite) {
        if (storeFetches_ >= params_.stqSize)
            return true;
    } else {
        if (demandLoads_.size() >= params_.ldqSize)
            return true;
        if (op_.serializing && !demandLoads_.empty())
            return true;
    }
    return !port_->canIssue(id_, op_.addr);
}

void
Core::complete(std::uint64_t tag)
{
    for (std::size_t i = 0; i < demandLoads_.size(); ++i) {
        if (demandLoads_[i].tag == tag) {
            demandLoads_[i] = demandLoads_.back();
            demandLoads_.pop_back();
            return;
        }
    }
    if (storeFetches_ > 0)
        --storeFetches_;
}

} // namespace pra::cpu
