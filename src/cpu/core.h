/**
 * @file
 * Simplified out-of-order core model.
 *
 * The full gem5 O3 pipeline of the paper's testbed is reduced to the
 * three properties the PRA evaluation depends on:
 *
 *  1. *Read latency sensitivity* — the core stalls when the oldest
 *     outstanding demand load falls a ROB's distance behind the issue
 *     front (ROB-head blocking), and pointer-chasing loads serialize.
 *  2. *Write latency insensitivity* — stores retire into the store queue
 *     and never block retirement; only a full STQ applies backpressure.
 *  3. *Bounded memory-level parallelism* — LDQ/STQ sizes (32/32) bound
 *     outstanding misses, as in the paper's configuration.
 *
 * The core runs in the DRAM clock domain: each DRAM cycle provides
 * issueWidth x 4 instruction slots (3.2 GHz core, 800 MHz bus).
 */
#ifndef PRA_CPU_CORE_H
#define PRA_CPU_CORE_H

#include <cstdint>
#include <vector>

#include "cpu/mem_op.h"

namespace pra::cpu {

/** Core microarchitecture parameters (paper Table 3). */
struct CoreParams
{
    unsigned issueWidth = 4;  //!< Instructions per CPU cycle.
    unsigned robSize = 192;
    unsigned ldqSize = 32;
    unsigned stqSize = 32;
};

/**
 * Callbacks the core uses to touch the memory system. The system wiring
 * (sim::System) implements this; tests can stub it.
 */
class CoreMemoryPort
{
  public:
    virtual ~CoreMemoryPort() = default;

    /** May @p core start a new LLC-filling access to @p addr now? */
    virtual bool canIssue(unsigned core, Addr addr) = 0;

    /**
     * Perform the cache access for @p core. Returns true when the line
     * missed the LLC and a DRAM fetch with tag @p tag was started (the
     * core must wait for completion notice).
     */
    virtual bool access(unsigned core, const MemOp &op,
                        std::uint64_t tag) = 0;
};

/** The simplified OoO core. */
class Core
{
  public:
    Core(unsigned id, const CoreParams &params, Generator &gen,
         CoreMemoryPort &port);

    /** Advance one DRAM cycle of execution. */
    void tick();

    /** A DRAM fetch with @p tag finished. */
    void complete(std::uint64_t tag);

    /**
     * True when tick() is guaranteed to make no progress until either a
     * DRAM completion arrives or the memory port frees up — the cycle-skip
     * fast path may then elide the tick entirely. Conservative: returns
     * false whenever the next instruction is not yet known.
     */
    bool stalled() const;

    unsigned id() const { return id_; }
    std::uint64_t retiredInstructions() const { return instCount_; }
    std::uint64_t issuedLoads() const { return loads_; }
    std::uint64_t issuedStores() const { return stores_; }
    std::uint64_t outstandingLoads() const
    {
        return demandLoads_.size();
    }

  private:
    struct OutstandingLoad
    {
        std::uint64_t tag;
        std::uint64_t instNum;
    };

    /** Issue-front limit imposed by the ROB. */
    std::uint64_t robLimit() const;

    unsigned id_;
    CoreParams params_;
    Generator *gen_;
    CoreMemoryPort *port_;

    std::uint64_t instCount_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;

    bool hasOp_ = false;
    MemOp op_;
    std::uint64_t opInst_ = 0;   //!< Instruction number of the held op.

    std::vector<OutstandingLoad> demandLoads_;
    unsigned storeFetches_ = 0;

    std::uint64_t nextTag_;
};

} // namespace pra::cpu

#endif // PRA_CPU_CORE_H
