/**
 * @file
 * Parallel sweep engine for the benchmark binaries and examples.
 *
 * The evaluation sweeps are embarrassingly parallel: every (workload,
 * configuration) cell is an independent deterministic simulation. The
 * Runner fans the cells out over a std::thread pool and hands back the
 * results in job order, so a caller that prints results sequentially
 * produces byte-identical output to the old serial loops — only faster.
 *
 * Thread count resolution (Runner::resolveThreads):
 *   1. an explicit constructor argument wins;
 *   2. otherwise the PRA_JOBS environment variable (positive integer);
 *   3. otherwise std::thread::hardware_concurrency().
 * PRA_JOBS=1 therefore forces the engine serial, which the determinism
 * regression tests use as the reference.
 *
 * Weighted-speedup sweeps share one AloneIpcCache across all threads;
 * its compute-once guarantee means each (config, app) alone run happens
 * exactly once no matter how many cells need it concurrently.
 */
#ifndef PRA_SIM_RUNNER_H
#define PRA_SIM_RUNNER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/experiment.h"

namespace pra::sim {

/** One independent sweep cell: a workload under a configuration. */
struct SweepJob
{
    workloads::Mix mix;
    ConfigPoint point{};
    /**
     * Measured-region length; 0 keeps makeConfig()'s default. Ignored
     * when @ref config is set.
     */
    std::uint64_t targetInstructions = 0;
    /**
     * Full configuration override for jobs that tweak raw SystemConfig
     * fields (ablations, DDR4 projection); when set, @ref point is not
     * consulted for the config (it may still label the job).
     */
    std::optional<SystemConfig> config;
};

/** Run one sweep cell (also the per-thread worker body). */
RunResult runSweepJob(const SweepJob &job);

/** The parallel sweep engine. */
class Runner
{
  public:
    /**
     * @param threads Worker count; 0 = resolveThreads(0) (PRA_JOBS or
     *                hardware concurrency).
     */
    explicit Runner(unsigned threads = 0);

    /** Worker count this runner fans out over. */
    unsigned threads() const { return threads_; }

    /** Apply the resolution order documented above to @p requested. */
    static unsigned resolveThreads(unsigned requested);

    /**
     * Run @p fn(0) .. @p fn(n-1) across the pool and block until all
     * complete. Indices are claimed dynamically; @p fn must be safe to
     * call concurrently from different threads with distinct indices.
     * The first exception thrown by any invocation is rethrown here.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run every job and return the results with results[i] belonging to
     * jobs[i], regardless of completion order — deterministic by
     * construction.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    /** Shared alone-IPC cache (thread-safe, compute-once). */
    AloneIpcCache &aloneIpc() { return alone_; }

    /** Weighted speedup (Eq. 3) against the shared alone cache. */
    double weightedSpeedup(const workloads::Mix &mix,
                           const RunResult &shared,
                           const ConfigPoint &point);

  private:
    unsigned threads_;
    AloneIpcCache alone_;
};

} // namespace pra::sim

#endif // PRA_SIM_RUNNER_H
