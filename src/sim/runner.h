/**
 * @file
 * Parallel sweep engine for the benchmark binaries and examples.
 *
 * The evaluation sweeps are embarrassingly parallel: every (workload,
 * configuration) cell is an independent deterministic simulation. The
 * Runner fans the cells out over a std::thread pool and hands back the
 * results in job order, so a caller that prints results sequentially
 * produces byte-identical output to the old serial loops — only faster.
 *
 * On top of the thread pool the Runner layers two reuse levels, both
 * result-preserving (every cell stays bit-identical to a cold serial
 * run):
 *
 *   1. A WarmupCache: N schemes sweeping one workload share a single
 *      functional warmup — each cell forks its System from the shared
 *      WarmSnapshot instead of re-running the 120k-ops-per-core warmup.
 *   2. A persistent, content-addressed ResultCache: each cell's full
 *      RunResult is stored under the hash of its canonical config +
 *      workload + version salt, so a repeated sweep (same process or a
 *      later one) replays results without simulating at all. Controlled
 *      by PRA_CACHE_DIR / PRA_NO_CACHE (see sim/result_cache.h).
 *
 * Setting PRA_COLD_REPLAY=1 re-runs every warm-forked cell cold and
 * aborts on any statistic mismatch — a debugging mode that proves the
 * reuse machinery is invisible.
 *
 * Thread count resolution (Runner::resolveThreads):
 *   1. an explicit constructor argument wins;
 *   2. otherwise the PRA_JOBS environment variable (positive integer;
 *      anything else warns on stderr and is ignored);
 *   3. otherwise std::thread::hardware_concurrency().
 * PRA_JOBS=1 therefore forces the engine serial, which the determinism
 * regression tests use as the reference.
 *
 * Weighted-speedup sweeps share one AloneIpcCache across all threads;
 * its compute-once guarantee means each (config, app) alone run happens
 * exactly once no matter how many cells need it concurrently. The alone
 * cache shares the Runner's warmup and result caches too.
 */
#ifndef PRA_SIM_RUNNER_H
#define PRA_SIM_RUNNER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/experiment.h"
#include "sim/result_cache.h"

namespace pra::sim {

/** One independent sweep cell: a workload under a configuration. */
struct SweepJob
{
    workloads::Mix mix;
    ConfigPoint point{};
    /**
     * Measured-region length; 0 keeps makeConfig()'s default. Ignored
     * when @ref config is set.
     */
    std::uint64_t targetInstructions = 0;
    /**
     * Full configuration override for jobs that tweak raw SystemConfig
     * fields (ablations, DDR4 projection); when set, @ref point is not
     * consulted for the config (it may still label the job).
     */
    std::optional<SystemConfig> config;
};

/** The SystemConfig a sweep job resolves to. */
SystemConfig sweepJobConfig(const SweepJob &job);

/**
 * Run one sweep cell cold: fresh system, fresh warmup, no caches. The
 * reference semantics every reuse level must reproduce bit-exactly.
 */
RunResult runSweepJob(const SweepJob &job);

/** The parallel sweep engine. */
class Runner
{
  public:
    /**
     * @param threads Worker count; 0 = resolveThreads(0) (PRA_JOBS or
     *                hardware concurrency).
     */
    explicit Runner(unsigned threads = 0);

    /** Worker count this runner fans out over. */
    unsigned threads() const { return threads_; }

    /** Apply the resolution order documented above to @p requested. */
    static unsigned resolveThreads(unsigned requested);

    /**
     * Run @p fn(0) .. @p fn(n-1) across the pool and block until all
     * complete. Indices are claimed dynamically; @p fn must be safe to
     * call concurrently from different threads with distinct indices.
     * The first exception thrown by any invocation is rethrown here.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run one job through both reuse levels: persistent result cache
     * first, then a warm-forked simulation (stored back to the cache).
     * Bit-identical to runSweepJob(job).
     */
    RunResult runJob(const SweepJob &job);

    /**
     * Run every job and return the results with results[i] belonging to
     * jobs[i], regardless of completion order — deterministic by
     * construction.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    /** Shared alone-IPC cache (thread-safe, compute-once). */
    AloneIpcCache &aloneIpc() { return alone_; }

    /** Weighted speedup (Eq. 3) against the shared alone cache. */
    double weightedSpeedup(const workloads::Mix &mix,
                           const RunResult &shared,
                           const ConfigPoint &point);

    /** Shared warmup-snapshot store. */
    WarmupCache &warmups() { return warm_; }

    /** The persistent result cache this runner resolved from the env. */
    const ResultCache &resultCache() const { return cache_; }

    /** Cells served from the persistent cache (including alone runs). */
    std::uint64_t
    resultCacheHits() const
    {
        return cacheHits_.load() + alone_.persistentHits();
    }

    /** Distinct functional warmups simulated. */
    std::uint64_t warmupsComputed() const { return warm_.computed(); }

  private:
    unsigned threads_;
    WarmupCache warm_;
    AloneIpcCache alone_;
    ResultCache cache_;
    bool coldReplay_ = false;
    std::atomic<std::uint64_t> cacheHits_{0};
};

} // namespace pra::sim

#endif // PRA_SIM_RUNNER_H
