#include "sim/report.h"

#include <sstream>

namespace pra::sim {

namespace {

void
appendField(std::ostringstream &os, const char *key, double value,
            bool comma = true)
{
    os << "\"" << key << "\":" << value;
    if (comma)
        os << ",";
}

} // namespace

std::string
toJson(const std::string &workload, const std::string &config,
       const RunResult &r)
{
    std::ostringstream os;
    os.precision(10);
    os << "{\"workload\":\"" << workload << "\",\"config\":\"" << config
       << "\",";
    os << "\"ipc\":[";
    for (std::size_t i = 0; i < r.ipc.size(); ++i)
        os << (i ? "," : "") << r.ipc[i];
    os << "],";
    appendField(os, "dram_cycles", static_cast<double>(r.dramCycles));
    appendField(os, "avg_power_mw", r.avgPowerMw);
    appendField(os, "energy_nj", r.totalEnergyNj);
    appendField(os, "edp", r.edp);
    os << "\"breakdown\":{";
    appendField(os, "act_pre", r.breakdown.actPre);
    appendField(os, "read", r.breakdown.read);
    appendField(os, "write", r.breakdown.write);
    appendField(os, "read_io", r.breakdown.readIo);
    appendField(os, "write_io", r.breakdown.writeIo);
    appendField(os, "background", r.breakdown.background);
    appendField(os, "refresh", r.breakdown.refresh, false);
    os << "},";
    const auto &d = r.dramStats;
    os << "\"dram\":{";
    appendField(os, "read_reqs", static_cast<double>(d.readReqs));
    appendField(os, "write_reqs", static_cast<double>(d.writeReqs));
    appendField(os, "read_hit_rate", d.readHitRate());
    appendField(os, "write_hit_rate", d.writeHitRate());
    appendField(os, "read_false_hits",
                static_cast<double>(d.readFalseHits));
    appendField(os, "write_false_hits",
                static_cast<double>(d.writeFalseHits));
    appendField(os, "acts_for_reads",
                static_cast<double>(d.actsForReads));
    appendField(os, "acts_for_writes",
                static_cast<double>(d.actsForWrites), false);
    os << "},";
    os << "\"act_granularity\":[";
    for (unsigned g = 1; g <= 8; ++g) {
        os << (g > 1 ? "," : "")
           << d.actGranularity.fraction(g);
    }
    os << "],";
    os << "\"dirty_words\":[";
    for (unsigned k = 1; k <= 8; ++k)
        os << (k > 1 ? "," : "") << r.dirtyWords.fraction(k);
    os << "]}";
    return os.str();
}

std::string
csvHeader()
{
    return "workload,config,dram_cycles,avg_power_mw,energy_nj,edp,"
           "read_reqs,write_reqs,read_hit_rate,write_hit_rate,"
           "read_false_hits,write_false_hits,acts_reads,acts_writes,"
           "act_pre_nj,read_nj,write_nj,read_io_nj,write_io_nj,"
           "background_nj,refresh_nj,mean_act_granularity,ipc0";
}

std::string
toCsvRow(const std::string &workload, const std::string &config,
         const RunResult &r)
{
    std::ostringstream os;
    os.precision(10);
    const auto &d = r.dramStats;
    os << workload << ',' << config << ',' << r.dramCycles << ','
       << r.avgPowerMw << ',' << r.totalEnergyNj << ',' << r.edp << ','
       << d.readReqs << ',' << d.writeReqs << ',' << d.readHitRate()
       << ',' << d.writeHitRate() << ',' << d.readFalseHits << ','
       << d.writeFalseHits << ',' << d.actsForReads << ','
       << d.actsForWrites << ',' << r.breakdown.actPre << ','
       << r.breakdown.read << ',' << r.breakdown.write << ','
       << r.breakdown.readIo << ',' << r.breakdown.writeIo << ','
       << r.breakdown.background << ',' << r.breakdown.refresh << ','
       << r.energy.meanActGranularity() << ','
       << (r.ipc.empty() ? 0.0 : r.ipc[0]);
    return os.str();
}

} // namespace pra::sim
