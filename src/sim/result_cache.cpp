#include "sim/result_cache.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/hash.h"
#include "sim/config_io.h"

namespace pra::sim {

namespace {

std::uint64_t
doubleBits(double v)
{
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

double
bitsDouble(std::uint64_t u)
{
    double v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

void
putDouble(std::ostream &os, double v)
{
    os << "0x" << std::hex << doubleBits(v) << std::dec;
}

/**
 * Strict token-stream reader for deserialization: every labelled read
 * checks the expected label, and any failure poisons the whole parse
 * (deserializeRunResult then returns nullopt).
 */
class TokenReader
{
  public:
    explicit TokenReader(const std::string &text) : in_(text) {}

    bool ok() const { return ok_; }

    /** Read "label value" (or a bare value when label is null). */
    std::uint64_t
    u64(const char *label)
    {
        expect(label);
        std::uint64_t v = 0;
        if (ok_ && !(in_ >> v))
            ok_ = false;
        return v;
    }

    double
    f64(const char *label)
    {
        expect(label);
        if (!ok_)
            return 0.0;
        std::string tok;
        if (!(in_ >> tok) || tok.size() < 3 || tok[0] != '0' ||
            tok[1] != 'x') {
            ok_ = false;
            return 0.0;
        }
        std::uint64_t u = 0;
        std::istringstream hex(tok.substr(2));
        if (!(hex >> std::hex >> u) || !hex.eof()) {
            ok_ = false;
            return 0.0;
        }
        return bitsDouble(u);
    }

    /** Consume a bare label with no value (the "end" trailer). */
    void marker(const char *label) { expect(label); }

    /**
     * Read "label N v0 ... vN-1" where N must equal @p expected_count
     * (all serialized containers have fixed, config-independent sizes
     * except ipc/retired, whose length the caller reads first).
     */
    template <typename Fill>
    void
    u64Seq(const char *label, std::size_t expected_count, Fill fill)
    {
        const std::uint64_t n = u64(label);
        if (!ok_ || n != expected_count) {
            ok_ = false;
            return;
        }
        for (std::size_t i = 0; ok_ && i < expected_count; ++i) {
            std::uint64_t v = 0;
            if (in_ >> v)
                fill(i, v);
            else
                ok_ = false;
        }
    }

  private:
    void
    expect(const char *label)
    {
        if (!ok_ || label == nullptr)
            return;
        std::string tok;
        if (!(in_ >> tok) || tok != label)
            ok_ = false;
    }

    std::istringstream in_;
    bool ok_ = true;
};

void
warnStoreOnce(const char *what, const std::string &detail)
{
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
        std::fprintf(stderr,
                     "[pra] warning: result cache %s (%s); continuing "
                     "without persisting\n",
                     what, detail.c_str());
    }
}

/** Parse common boolean-ish env values; nullopt when unrecognized. */
std::optional<bool>
parseEnvBool(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s.empty() || s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    return std::nullopt;
}

} // namespace

std::uint64_t
fnv1a(std::string_view data)
{
    return pra::fnv1a64(data);
}

std::string
workloadSpec(const workloads::Mix &mix)
{
    std::ostringstream os;
    for (std::size_t slot = 0; slot < mix.apps.size(); ++slot) {
        if (!mix.apps[slot].empty())
            os << "slot" << slot << " = " << mix.apps[slot] << '\n';
    }
    return os.str();
}

std::string
resultCacheMaterial(const SystemConfig &cfg, const workloads::Mix &mix,
                    std::string_view salt)
{
    std::string material = canonicalConfig(cfg);
    material += workloadSpec(mix);
    material += "salt = ";
    material += salt;
    material += '\n';
    return material;
}

std::string
serializeRunResult(const RunResult &res)
{
    std::ostringstream os;
    os << "ipc " << res.ipc.size();
    for (double v : res.ipc) {
        os << ' ';
        putDouble(os, v);
    }
    os << "\nretired " << res.retired.size();
    for (std::uint64_t v : res.retired)
        os << ' ' << v;
    os << "\ndram_cycles " << res.dramCycles << '\n';

    const dram::ControllerStats &s = res.dramStats;
    os << "read_reqs " << s.readReqs << '\n'
       << "write_reqs " << s.writeReqs << '\n'
       << "read_row_hits " << s.readRowHits << '\n'
       << "write_row_hits " << s.writeRowHits << '\n'
       << "read_row_misses " << s.readRowMisses << '\n'
       << "write_row_misses " << s.writeRowMisses << '\n'
       << "read_false_hits " << s.readFalseHits << '\n'
       << "write_false_hits " << s.writeFalseHits << '\n'
       << "acts_for_reads " << s.actsForReads << '\n'
       << "acts_for_writes " << s.actsForWrites << '\n'
       << "precharges " << s.precharges << '\n'
       << "refreshes " << s.refreshes << '\n'
       << "rfms " << s.rfms << '\n'
       << "forwarded_reads " << s.forwardedReads << '\n';
    os << "act_granularity " << s.actGranularity.buckets();
    for (std::size_t b = 0; b < s.actGranularity.buckets(); ++b)
        os << ' ' << s.actGranularity.count(b);
    os << "\nread_act_granularity " << s.readActGranularity.buckets();
    for (std::size_t b = 0; b < s.readActGranularity.buckets(); ++b)
        os << ' ' << s.readActGranularity.count(b);
    os << "\nread_latency " << s.readLatency.samples() << ' ';
    putDouble(os, s.readLatency.sum());
    os << ' ';
    putDouble(os, s.readLatency.min());
    os << ' ';
    putDouble(os, s.readLatency.max());
    os << '\n';

    const power::EnergyCounts &e = res.energy;
    os << "acts " << e.acts.size();
    for (std::uint64_t v : e.acts)
        os << ' ' << v;
    os << "\nacts_half " << e.actsHalfHeight.size();
    for (std::uint64_t v : e.actsHalfHeight)
        os << ' ' << v;
    os << "\nsds_acts " << e.sdsActs << '\n'
       << "sds_chips " << e.sdsChipsActivated << '\n'
       << "read_lines " << e.readLines << '\n'
       << "write_lines " << e.writeLines << '\n'
       << "write_words_driven " << e.writeWordsDriven << '\n'
       << "read_words_driven " << e.readWordsDriven << '\n'
       << "act_standby_cycles " << e.actStandbyCycles << '\n'
       << "pre_standby_cycles " << e.preStandbyCycles << '\n'
       << "power_down_cycles " << e.powerDownCycles << '\n'
       << "refresh_ops " << e.refreshOps << '\n'
       << "rfm_ops " << e.rfmOps << '\n'
       << "elapsed_cycles " << e.elapsedCycles << '\n';

    os << "dirty_words " << res.dirtyWords.buckets();
    for (std::size_t b = 0; b < res.dirtyWords.buckets(); ++b)
        os << ' ' << res.dirtyWords.count(b);
    os << "\nmem_reads " << res.memReads << '\n'
       << "mem_writes " << res.memWrites << '\n'
       << "dbi_proactive " << res.dbiProactive << '\n';

    const power::EnergyBreakdown &bd = res.breakdown;
    os << "breakdown";
    for (double v : {bd.actPre, bd.read, bd.write, bd.readIo, bd.writeIo,
                     bd.background, bd.refresh}) {
        os << ' ';
        putDouble(os, v);
    }
    os << "\navg_power_mw ";
    putDouble(os, res.avgPowerMw);
    os << "\ntotal_energy_nj ";
    putDouble(os, res.totalEnergyNj);
    os << "\nedp ";
    putDouble(os, res.edp);
    os << "\nend\n";
    return os.str();
}

std::optional<RunResult>
deserializeRunResult(const std::string &text)
{
    TokenReader r(text);
    RunResult res;

    // ipc/retired carry their own length (the active-core count); every
    // other container has a fixed size checked by u64Seq.
    const std::uint64_t cores = r.u64("ipc");
    if (!r.ok() || cores == 0 || cores > 64)
        return std::nullopt;
    res.ipc.reserve(cores);
    for (std::uint64_t i = 0; i < cores; ++i)
        res.ipc.push_back(r.f64(nullptr));
    res.retired.reserve(cores);
    r.u64Seq("retired", cores,
             [&](std::size_t, std::uint64_t v) { res.retired.push_back(v); });
    res.dramCycles = r.u64("dram_cycles");

    dram::ControllerStats &s = res.dramStats;
    s.readReqs = r.u64("read_reqs");
    s.writeReqs = r.u64("write_reqs");
    s.readRowHits = r.u64("read_row_hits");
    s.writeRowHits = r.u64("write_row_hits");
    s.readRowMisses = r.u64("read_row_misses");
    s.writeRowMisses = r.u64("write_row_misses");
    s.readFalseHits = r.u64("read_false_hits");
    s.writeFalseHits = r.u64("write_false_hits");
    s.actsForReads = r.u64("acts_for_reads");
    s.actsForWrites = r.u64("acts_for_writes");
    s.precharges = r.u64("precharges");
    s.refreshes = r.u64("refreshes");
    s.rfms = r.u64("rfms");
    s.forwardedReads = r.u64("forwarded_reads");
    r.u64Seq("act_granularity", s.actGranularity.buckets(),
             [&](std::size_t b, std::uint64_t v) {
                 s.actGranularity.record(b, v);
             });
    r.u64Seq("read_act_granularity", s.readActGranularity.buckets(),
             [&](std::size_t b, std::uint64_t v) {
                 s.readActGranularity.record(b, v);
             });
    {
        const std::uint64_t n = r.u64("read_latency");
        const double sum = r.f64(nullptr);
        const double min = r.f64(nullptr);
        const double max = r.f64(nullptr);
        s.readLatency = Summary::fromRaw(n, sum, min, max);
    }

    power::EnergyCounts &e = res.energy;
    r.u64Seq("acts", e.acts.size(),
             [&](std::size_t i, std::uint64_t v) { e.acts[i] = v; });
    r.u64Seq("acts_half", e.actsHalfHeight.size(),
             [&](std::size_t i, std::uint64_t v) { e.actsHalfHeight[i] = v; });
    e.sdsActs = r.u64("sds_acts");
    e.sdsChipsActivated = r.u64("sds_chips");
    e.readLines = r.u64("read_lines");
    e.writeLines = r.u64("write_lines");
    e.writeWordsDriven = r.u64("write_words_driven");
    e.readWordsDriven = r.u64("read_words_driven");
    e.actStandbyCycles = r.u64("act_standby_cycles");
    e.preStandbyCycles = r.u64("pre_standby_cycles");
    e.powerDownCycles = r.u64("power_down_cycles");
    e.refreshOps = r.u64("refresh_ops");
    e.rfmOps = r.u64("rfm_ops");
    e.elapsedCycles = r.u64("elapsed_cycles");

    r.u64Seq("dirty_words", res.dirtyWords.buckets(),
             [&](std::size_t b, std::uint64_t v) {
                 res.dirtyWords.record(b, v);
             });
    res.memReads = r.u64("mem_reads");
    res.memWrites = r.u64("mem_writes");
    res.dbiProactive = r.u64("dbi_proactive");

    power::EnergyBreakdown &bd = res.breakdown;
    bd.actPre = r.f64("breakdown");
    bd.read = r.f64(nullptr);
    bd.write = r.f64(nullptr);
    bd.readIo = r.f64(nullptr);
    bd.writeIo = r.f64(nullptr);
    bd.background = r.f64(nullptr);
    bd.refresh = r.f64(nullptr);
    res.avgPowerMw = r.f64("avg_power_mw");
    res.totalEnergyNj = r.f64("total_energy_nj");
    res.edp = r.f64("edp");
    r.marker("end");   // Fails the parse when the trailer is missing.

    if (!r.ok())
        return std::nullopt;
    return res;
}

bool
identicalResults(const RunResult &a, const RunResult &b)
{
    // The serialization is bit-exact and covers every simulated-result
    // field, so textual equality is exactly statistic-for-statistic bit
    // equality. RunResult::engine is deliberately outside it: the
    // engine counters describe how the simulator ran (wall-clock
    // diagnostics), not what it computed, and both engines must share
    // cache entries and compare identical.
    return serializeRunResult(a) == serializeRunResult(b);
}

ResultCache::ResultCache(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "[pra] warning: cannot create result cache directory "
                     "'%s' (%s); caching disabled\n",
                     dir.c_str(), ec.message().c_str());
        return;
    }
    dir_ = dir;
}

ResultCache
ResultCache::fromEnv()
{
    if (const char *no = std::getenv("PRA_NO_CACHE")) {
        const std::optional<bool> parsed = parseEnvBool(no);
        if (!parsed) {
            std::fprintf(stderr,
                         "[pra] warning: unrecognized PRA_NO_CACHE='%s' "
                         "(want 0/1/true/false); disabling the result "
                         "cache to be safe\n",
                         no);
            return ResultCache();
        }
        if (*parsed)
            return ResultCache();
    }

    std::string dir;
    if (const char *d = std::getenv("PRA_CACHE_DIR")) {
        if (*d == '\0') {
            std::fprintf(stderr,
                         "[pra] warning: PRA_CACHE_DIR is set but empty; "
                         "using the default cache location\n");
        } else {
            dir = d;
        }
    }
    if (dir.empty()) {
        if (const char *xdg = std::getenv("XDG_CACHE_HOME");
            xdg && *xdg != '\0') {
            dir = std::string(xdg) + "/pra";
        } else if (const char *home = std::getenv("HOME");
                   home && *home != '\0') {
            dir = std::string(home) + "/.cache/pra";
        } else {
            return ResultCache();   // Nowhere sensible to persist.
        }
    }
    return ResultCache(dir);
}

std::string
ResultCache::entryPath(const std::string &material) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.rrc",
                  static_cast<unsigned long long>(fnv1a(material)));
    return dir_ + "/" + name;
}

std::optional<RunResult>
ResultCache::load(const std::string &material) const
{
    if (!enabled())
        return std::nullopt;
    std::ifstream in(entryPath(material), std::ios::binary);
    if (!in)
        return std::nullopt;

    std::string header;
    std::getline(in, header);
    if (header != "pra-result-cache v1")
        return std::nullopt;

    // Each block is "<label> <bytes>\n" followed by exactly that many
    // raw bytes and a trailing newline.
    auto readBlock =
        [&in](const char *label) -> std::optional<std::string> {
        std::string line;
        if (!std::getline(in, line))
            return std::nullopt;
        std::istringstream ls(line);
        std::string got;
        std::size_t bytes = 0;
        if (!(ls >> got >> bytes) || got != label)
            return std::nullopt;
        std::string block(bytes, '\0');
        in.read(block.data(), static_cast<std::streamsize>(bytes));
        if (static_cast<std::size_t>(in.gcount()) != bytes ||
            in.get() != '\n')
            return std::nullopt;
        return block;
    };

    const std::optional<std::string> stored = readBlock("material");
    if (!stored || *stored != material)
        return std::nullopt;   // Unreadable or a genuine hash collision.
    const std::optional<std::string> payload = readBlock("result");
    if (!payload)
        return std::nullopt;
    return deserializeRunResult(*payload);
}

void
ResultCache::store(const std::string &material, const RunResult &res) const
{
    if (!enabled())
        return;
    const std::string path = entryPath(material);
    // Unique temp name per writer thread so concurrent stores never
    // interleave; rename() then publishes the entry atomically.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp"
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp = tmp_name.str();

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warnStoreOnce("cannot write entry", path);
            return;
        }
        const std::string payload = serializeRunResult(res);
        out << "pra-result-cache v1\n"
            << "material " << material.size() << '\n'
            << material << '\n'
            << "result " << payload.size() << '\n'
            << payload << '\n';
        out.flush();
        if (!out) {
            warnStoreOnce("write failed", path);
            out.close();
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warnStoreOnce("rename failed", path + ": " + ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace pra::sim
