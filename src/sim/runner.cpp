#include "sim/runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace pra::sim {

SystemConfig
sweepJobConfig(const SweepJob &job)
{
    SystemConfig cfg = job.config ? *job.config : makeConfig(job.point);
    if (!job.config && job.targetInstructions > 0)
        cfg.targetInstructions = job.targetInstructions;
    return cfg;
}

RunResult
runSweepJob(const SweepJob &job)
{
    return runWorkload(job.mix, sweepJobConfig(job));
}

Runner::Runner(unsigned threads) : threads_(resolveThreads(threads))
{
    cache_ = ResultCache::fromEnv();
    if (const char *env = std::getenv("PRA_COLD_REPLAY"))
        coldReplay_ = (*env != '\0' && std::strcmp(env, "0") != 0);
    alone_.shareWarmups(&warm_);
    alone_.usePersistentCache(&cache_);
}

unsigned
Runner::resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PRA_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0 &&
            static_cast<unsigned long>(v) <=
                std::numeric_limits<unsigned>::max()) {
            return static_cast<unsigned>(v);
        }
        std::fprintf(stderr,
                     "[pra] warning: ignoring invalid PRA_JOBS='%s' "
                     "(want a positive integer); using hardware "
                     "concurrency\n",
                     env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
Runner::parallelFor(std::size_t n,
                    const std::function<void(std::size_t)> &fn)
{
    const std::size_t workers =
        std::min<std::size_t>(threads_, n);
    if (workers <= 1) {
        // Serial reference path: same claim order, same results.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

RunResult
Runner::runJob(const SweepJob &job)
{
    const SystemConfig cfg = sweepJobConfig(job);

    // Level 2: content-addressed persistent cache.
    std::string material;
    if (cache_.enabled()) {
        material = resultCacheMaterial(cfg, job.mix);
        if (std::optional<RunResult> hit = cache_.load(material)) {
            cacheHits_.fetch_add(1);
            return std::move(*hit);
        }
    }

    // Level 1: fork from the shared warm snapshot.
    RunResult res = runWorkload(job.mix, cfg, warm_);

    if (coldReplay_ && !identicalResults(res, runSweepJob(job))) {
        // A warm-forked cell diverging from its cold replay means the
        // snapshot missed some warmup-mutated state — a simulator bug.
        throw std::logic_error(
            "PRA_COLD_REPLAY: warm-forked result diverges from cold run "
            "for workload '" + job.mix.name + "'");
    }

    if (cache_.enabled())
        cache_.store(material, res);
    return res;
}

std::vector<RunResult>
Runner::run(const std::vector<SweepJob> &jobs)
{
    // Results are indexed by job id, so whichever thread finishes a cell
    // first, the returned ordering matches the enqueue ordering exactly.
    std::vector<RunResult> results(jobs.size());
    parallelFor(jobs.size(),
                [&](std::size_t i) { results[i] = runJob(jobs[i]); });
    return results;
}

double
Runner::weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                        const ConfigPoint &point)
{
    return sim::weightedSpeedup(mix, shared, point, alone_);
}

} // namespace pra::sim
