#include "sim/runner.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace pra::sim {

RunResult
runSweepJob(const SweepJob &job)
{
    SystemConfig cfg = job.config ? *job.config : makeConfig(job.point);
    if (!job.config && job.targetInstructions > 0)
        cfg.targetInstructions = job.targetInstructions;
    return runWorkload(job.mix, cfg);
}

Runner::Runner(unsigned threads) : threads_(resolveThreads(threads)) {}

unsigned
Runner::resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PRA_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
Runner::parallelFor(std::size_t n,
                    const std::function<void(std::size_t)> &fn)
{
    const std::size_t workers =
        std::min<std::size_t>(threads_, n);
    if (workers <= 1) {
        // Serial reference path: same claim order, same results.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunResult>
Runner::run(const std::vector<SweepJob> &jobs)
{
    // Results are indexed by job id, so whichever thread finishes a cell
    // first, the returned ordering matches the enqueue ordering exactly.
    std::vector<RunResult> results(jobs.size());
    parallelFor(jobs.size(),
                [&](std::size_t i) { results[i] = runSweepJob(jobs[i]); });
    return results;
}

double
Runner::weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                        const ConfigPoint &point)
{
    return sim::weightedSpeedup(mix, shared, point, alone_);
}

} // namespace pra::sim
