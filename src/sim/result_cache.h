/**
 * @file
 * Content-addressed persistent result cache for sweep cells.
 *
 * A simulation is a pure function of its configuration and workload, so
 * its RunResult can be persisted and replayed across processes: the
 * cache key is the FNV-1a hash of (canonical SystemConfig text +
 * workload spec + simulator version salt), and the value is a bit-exact
 * text serialization of the RunResult (doubles stored as the hex of
 * their bit patterns). Repeated or incremental bench invocations then
 * skip simulation entirely and return byte-identical results.
 *
 * Storage is one file per key under a cache directory resolved at
 * construction (ResultCache::fromEnv):
 *
 *   - PRA_NO_CACHE=1 disables the cache (every cell recomputes);
 *   - PRA_CACHE_DIR overrides the directory;
 *   - otherwise $XDG_CACHE_HOME/pra, falling back to ~/.cache/pra.
 *
 * Each cache file embeds the full (pre-hash) key material and the
 * loader compares it byte-for-byte, so even an FNV-1a collision cannot
 * return a wrong result — it only causes a recompute. Any unreadable,
 * truncated, or mismatched file is treated as a miss and overwritten.
 * Writes go to a unique temporary file renamed into place, so
 * concurrent sweeps (threads or processes) never observe a torn entry.
 *
 * Invalidation: any SystemConfig field change alters the canonical
 * config text (sim::canonicalConfig), and behavioural simulator changes
 * must bump kResultCacheSalt.
 */
#ifndef PRA_SIM_RESULT_CACHE_H
#define PRA_SIM_RESULT_CACHE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/system.h"
#include "workloads/factory.h"

namespace pra::sim {

/**
 * Simulator version salt baked into every cache key. Bump whenever a
 * code change alters any simulated statistic, so stale results can
 * never be replayed across behavioural revisions.
 */
inline constexpr std::string_view kResultCacheSalt =
    "pra-result-cache-v4";   // v4: PRAC/RFM maintenance ops — rfms
                             // stat, rfm_ops energy counter, and the
                             // PRAC canonical-config block.

/** 64-bit FNV-1a hash of @p data. */
std::uint64_t fnv1a(std::string_view data);

/**
 * Canonical text for the workload half of a cache key: each occupied
 * mix slot with its position (the slot index fixes the generator seed,
 * so two mixes with the same apps in different slots key differently).
 * The display name is deliberately excluded — it does not affect the
 * simulation.
 */
std::string workloadSpec(const workloads::Mix &mix);

/**
 * Full pre-hash key material for one sweep cell: canonical config +
 * workload spec + version salt. The cache addresses entries by
 * fnv1a(material) and verifies the material on every load.
 */
std::string resultCacheMaterial(const SystemConfig &cfg,
                                const workloads::Mix &mix,
                                std::string_view salt = kResultCacheSalt);

/**
 * Bit-exact text serialization of a RunResult. Integers are decimal,
 * doubles are the hex of their IEEE-754 bit patterns, so
 * deserializeRunResult(serializeRunResult(r)) reproduces every field
 * byte-identically.
 */
std::string serializeRunResult(const RunResult &res);

/** Strict inverse of serializeRunResult; nullopt on any mismatch. */
std::optional<RunResult> deserializeRunResult(const std::string &text);

/**
 * True when @p a and @p b agree bit-for-bit on every statistic
 * (doubles compared by bit pattern). Backs the PRA_COLD_REPLAY debug
 * mode and the snapshot/cache equivalence tests.
 */
bool identicalResults(const RunResult &a, const RunResult &b);

/** The persistent cache. Copyable; all state is the directory path. */
class ResultCache
{
  public:
    /** A disabled cache: load always misses, store is a no-op. */
    ResultCache() = default;

    /**
     * A cache rooted at @p dir (created if missing; disabled with a
     * stderr warning when creation fails).
     */
    explicit ResultCache(const std::string &dir);

    /** Resolve from the environment (see file comment). */
    static ResultCache fromEnv();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Look up the entry for @p material. Returns the stored result only
     * when the file exists, parses, and its embedded key material
     * matches byte-for-byte.
     */
    std::optional<RunResult> load(const std::string &material) const;

    /**
     * Persist @p res under @p material (atomic rename; best-effort — a
     * failed write warns on stderr once and the sweep continues).
     */
    void store(const std::string &material, const RunResult &res) const;

  private:
    std::string entryPath(const std::string &material) const;

    std::string dir_;   //!< Empty = disabled.
};

} // namespace pra::sim

#endif // PRA_SIM_RESULT_CACHE_H
