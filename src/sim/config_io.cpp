#include "sim/config_io.h"

#include "dram/sched/scheduler_policy.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pra::sim {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

bool
parseBool(const std::string &v)
{
    const std::string s = lower(v);
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    throw std::runtime_error("bad boolean '" + v + "'");
}

dram::SchedulerKind
parseScheduler(const std::string &v)
{
    const std::string s = lower(v);
    if (s == "frfcfs" || s == "fr-fcfs")
        return dram::SchedulerKind::FrFcfs;
    if (s == "fcfs")
        return dram::SchedulerKind::Fcfs;
    if (s == "frfcfs_wage" || s == "frfcfs-wage")
        return dram::SchedulerKind::FrFcfsWriteAge;
    throw std::runtime_error("unknown scheduler '" + v +
                             "' (accepted: frfcfs, fcfs, frfcfs_wage)");
}

unsigned
asUnsigned(const std::string &v)
{
    return static_cast<unsigned>(std::stoul(v));
}

/**
 * One config key: name + parse-and-apply action. Table-driven so the
 * unknown-key diagnostic can enumerate every accepted key.
 */
struct KeyHandler
{
    const char *key;
    void (*apply)(const std::string &value, SystemConfig &cfg);
};

constexpr KeyHandler kKeyHandlers[] = {
    {"scheme",
     [](const std::string &v, SystemConfig &c) {
         // Registry lookup; throws listing every registered name.
         c.dram.scheme = &schemeByName(v);
     }},
    {"policy",
     [](const std::string &v, SystemConfig &c) {
         const std::string s = lower(v);
         if (s == "relaxed") {
             c.dram.policy = dram::PagePolicy::RelaxedClose;
             c.dram.mapping = dram::AddrMapping::RowInterleaved;
         } else if (s == "restricted") {
             c.dram.useRestrictedClosePage();
         } else if (s == "open" || s == "openpage") {
             c.dram.policy = dram::PagePolicy::OpenPage;
             c.dram.mapping = dram::AddrMapping::RowInterleaved;
         } else {
             throw std::runtime_error("unknown policy '" + v + "'");
         }
     }},
    {"scheduler",
     [](const std::string &v, SystemConfig &c) {
         c.dram.scheduler = parseScheduler(v);
     }},
    {"write_age_promotion",
     [](const std::string &v, SystemConfig &c) {
         c.dram.writeAgePromotionCycles = std::stoull(v);
     }},
    {"dbi",
     [](const std::string &v, SystemConfig &c) {
         c.enableDbi = parseBool(v);
     }},
    {"channels",
     [](const std::string &v, SystemConfig &c) {
         c.dram.channels = asUnsigned(v);
     }},
    {"ranks",
     [](const std::string &v, SystemConfig &c) {
         c.dram.ranksPerChannel = asUnsigned(v);
     }},
    {"banks",
     [](const std::string &v, SystemConfig &c) {
         c.dram.banksPerRank = asUnsigned(v);
     }},
    {"rows",
     [](const std::string &v, SystemConfig &c) {
         c.dram.rowsPerBank = asUnsigned(v);
     }},
    {"lines_per_row",
     [](const std::string &v, SystemConfig &c) {
         c.dram.linesPerRow = asUnsigned(v);
     }},
    {"chips",
     [](const std::string &v, SystemConfig &c) {
         c.dram.chipsPerRank = asUnsigned(v);
     }},
    {"ecc_chips",
     [](const std::string &v, SystemConfig &c) {
         c.dram.eccChipsPerRank = asUnsigned(v);
     }},
    {"read_queue",
     [](const std::string &v, SystemConfig &c) {
         c.dram.readQueueDepth = asUnsigned(v);
     }},
    {"write_queue",
     [](const std::string &v, SystemConfig &c) {
         c.dram.writeQueueDepth = asUnsigned(v);
     }},
    {"write_high_watermark",
     [](const std::string &v, SystemConfig &c) {
         c.dram.writeHighWatermark = asUnsigned(v);
     }},
    {"write_low_watermark",
     [](const std::string &v, SystemConfig &c) {
         c.dram.writeLowWatermark = asUnsigned(v);
     }},
    {"row_hit_cap",
     [](const std::string &v, SystemConfig &c) {
         c.dram.rowHitCap = asUnsigned(v);
     }},
    {"power_down",
     [](const std::string &v, SystemConfig &c) {
         c.dram.powerDownEnabled = parseBool(v);
     }},
    {"power_down_threshold",
     [](const std::string &v, SystemConfig &c) {
         c.dram.powerDownThreshold = asUnsigned(v);
     }},
    {"merge_write_masks",
     [](const std::string &v, SystemConfig &c) {
         c.dram.mergeWriteMasks = parseBool(v);
     }},
    {"weighted_act_window",
     [](const std::string &v, SystemConfig &c) {
         c.dram.weightedActWindow = parseBool(v);
     }},
    {"min_act_granularity",
     [](const std::string &v, SystemConfig &c) {
         c.dram.minActGranularity = asUnsigned(v);
     }},
    {"audit_fault_widen_act",
     [](const std::string &v, SystemConfig &c) {
         c.dram.auditFaultWidenAct =
             static_cast<std::uint8_t>(asUnsigned(v));
     }},
    {"fault_ignore_tccd_l",
     [](const std::string &v, SystemConfig &c) {
         c.dram.faultIgnoreTccdL = parseBool(v);
     }},
    {"fault_ignore_twtr",
     [](const std::string &v, SystemConfig &c) {
         c.dram.faultIgnoreTwtr = parseBool(v);
     }},
    {"fault_suppress_wake_twtr",
     [](const std::string &v, SystemConfig &c) {
         c.dram.faultSuppressWakeTwtr = parseBool(v);
     }},
    {"fault_starve_aged_cycles",
     [](const std::string &v, SystemConfig &c) {
         c.dram.faultStarveAgedCycles = asUnsigned(v);
     }},
    {"prac",
     [](const std::string &v, SystemConfig &c) {
         c.dram.pracEnabled = parseBool(v);
     }},
    {"disturbance_threshold",
     [](const std::string &v, SystemConfig &c) {
         c.dram.disturbanceThreshold = asUnsigned(v);
     }},
    {"prac_cam_entries",
     [](const std::string &v, SystemConfig &c) {
         c.dram.pracCamEntries = asUnsigned(v);
     }},
    {"prac_recovery_window",
     [](const std::string &v, SystemConfig &c) {
         c.dram.pracRecoveryWindow = asUnsigned(v);
     }},
    {"fault_prac_drop_count",
     [](const std::string &v, SystemConfig &c) {
         c.dram.faultPracDropCount = parseBool(v);
     }},
    {"fault_prac_late_rfm",
     [](const std::string &v, SystemConfig &c) {
         c.dram.faultPracLateRfm = parseBool(v);
     }},
    {"checker",
     [](const std::string &v, SystemConfig &c) {
         c.dram.enableChecker = parseBool(v);
     }},
    {"engine",
     [](const std::string &v, SystemConfig &c) {
         const std::string s = lower(v);
         if (s == "tick")
             c.dram.engine = dram::EngineKind::Tick;
         else if (s == "event")
             c.dram.engine = dram::EngineKind::Event;
         else
             throw std::runtime_error("unknown engine '" + v +
                                      "' (accepted: tick, event)");
     }},
    {"target_instructions",
     [](const std::string &v, SystemConfig &c) {
         c.targetInstructions = std::stoull(v);
     }},
    {"warmup_ops",
     [](const std::string &v, SystemConfig &c) {
         c.warmupOpsPerCore = std::stoull(v);
     }},
    {"max_cycles",
     [](const std::string &v, SystemConfig &c) {
         c.maxDramCycles = std::stoull(v);
     }},
    {"writeback_backlog",
     [](const std::string &v, SystemConfig &c) {
         c.writebackBacklogLimit = std::stoull(v);
     }},
    {"cycle_skip",
     [](const std::string &v, SystemConfig &c) {
         c.enableCycleSkip = parseBool(v);
     }},
    {"audit",
     [](const std::string &v, SystemConfig &c) {
         c.enableAudit = parseBool(v);
     }},
    {"audit_scan_stride",
     [](const std::string &v, SystemConfig &c) {
         c.auditScanStride = asUnsigned(v);
     }},
    {"issue_width",
     [](const std::string &v, SystemConfig &c) {
         c.core.issueWidth = asUnsigned(v);
     }},
    {"rob",
     [](const std::string &v, SystemConfig &c) {
         c.core.robSize = asUnsigned(v);
     }},
    {"tck_ns",
     [](const std::string &v, SystemConfig &c) {
         c.dram.power.tCkNs = std::stod(v);
     }},
    {"l2_kb",
     [](const std::string &v, SystemConfig &c) {
         c.caches.l2.sizeBytes = std::stoull(v) * 1024;
     }},
    {"l1_kb",
     [](const std::string &v, SystemConfig &c) {
         c.caches.l1.sizeBytes = std::stoull(v) * 1024;
     }},
    {"trcd",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.tRcd = asUnsigned(v);
     }},
    {"trp",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.tRp = asUnsigned(v);
     }},
    {"tras",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.tRas = asUnsigned(v);
     }},
    {"trrd",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.tRrd = asUnsigned(v);
     }},
    {"tfaw",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.tFaw = asUnsigned(v);
     }},
    {"pra_mask_cycles",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.praMaskCycles = asUnsigned(v);
     }},
    {"trfm",
     [](const std::string &v, SystemConfig &c) {
         c.dram.timing.tRfm = asUnsigned(v);
     }},
};

} // namespace

bool
applyConfigLine(const std::string &raw, SystemConfig &cfg)
{
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty())
        return false;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
        throw std::runtime_error("expected key=value: " + line);
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty())
        throw std::runtime_error("empty value for " + key);

    for (const KeyHandler &h : kKeyHandlers) {
        if (key == h.key) {
            h.apply(value, cfg);
            return true;
        }
    }
    std::string accepted;
    for (const KeyHandler &h : kKeyHandlers) {
        if (!accepted.empty())
            accepted += ", ";
        accepted += h.key;
    }
    throw std::runtime_error("unknown config key '" + key +
                             "' (accepted keys: " + accepted + ")");
}

void
loadConfig(std::istream &in, SystemConfig &cfg)
{
    std::string line;
    while (std::getline(in, line))
        applyConfigLine(line, cfg);
}

void
loadConfigFile(const std::string &path, SystemConfig &cfg)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open config file " + path);
    loadConfig(in, cfg);
}

std::string
canonicalConfig(const SystemConfig &cfg)
{
    std::ostringstream os;
    // Doubles are rendered as the hex of their bit pattern: bit-exact,
    // locale-independent, and collision-free under any field change.
    auto bits = [&os](const char *key, double v) {
        std::uint64_t u;
        static_assert(sizeof(u) == sizeof(v));
        std::memcpy(&u, &v, sizeof(u));
        os << key << " = 0x" << std::hex << u << std::dec << '\n';
    };

    const dram::DramConfig &d = cfg.dram;
    os << "scheme = " << d.scheme->displayName() << '\n'
       << "scheduler = " << dram::schedulerKindName(d.scheduler) << '\n'
       << "write_age_promotion = " << d.writeAgePromotionCycles << '\n'
       << "policy = " << static_cast<int>(d.policy) << '\n'
       << "mapping = " << static_cast<int>(d.mapping) << '\n'
       << "channels = " << d.channels << '\n'
       << "ranks = " << d.ranksPerChannel << '\n'
       << "banks = " << d.banksPerRank << '\n'
       << "rows = " << d.rowsPerBank << '\n'
       << "lines_per_row = " << d.linesPerRow << '\n'
       << "chips = " << d.chipsPerRank << '\n'
       << "ecc_chips = " << d.eccChipsPerRank << '\n'
       << "read_queue = " << d.readQueueDepth << '\n'
       << "write_queue = " << d.writeQueueDepth << '\n'
       << "write_high_watermark = " << d.writeHighWatermark << '\n'
       << "write_low_watermark = " << d.writeLowWatermark << '\n'
       << "row_hit_cap = " << d.rowHitCap << '\n'
       << "power_down = " << d.powerDownEnabled << '\n'
       << "power_down_threshold = " << d.powerDownThreshold << '\n'
       << "checker = " << d.enableChecker << '\n'
       << "merge_write_masks = " << d.mergeWriteMasks << '\n'
       << "weighted_act_window = " << d.weightedActWindow << '\n'
       << "min_act_granularity = " << d.minActGranularity << '\n'
       // Behavioural fault hook (src/verify tests): widens ACT masks, so
       // it must key the result cache. The enableAudit flag itself is
       // observational and deliberately excluded.
       << "audit_fault_widen_act = "
       << static_cast<unsigned>(d.auditFaultWidenAct) << '\n'
       // The timing fault hooks change which commands issue when, so
       // they are behavioural and must key the result cache too.
       << "fault_ignore_tccd_l = " << d.faultIgnoreTccdL << '\n'
       << "fault_ignore_twtr = " << d.faultIgnoreTwtr << '\n'
       // The liveness fault hooks change which commands issue when (a
       // suppressed wake bound stalls the event engine; a starved
       // request never drains), so they are behavioural too.
       << "fault_suppress_wake_twtr = " << d.faultSuppressWakeTwtr
       << '\n'
       << "fault_starve_aged_cycles = " << d.faultStarveAgedCycles
       << '\n'
       // PRAC / RFM mitigation (maintenance op prac_rfm): counting,
       // Alert Back-Off and recovery scheduling all change which
       // commands issue when, so the whole block keys the cache.
       << "prac = " << d.pracEnabled << '\n'
       << "disturbance_threshold = " << d.disturbanceThreshold << '\n'
       << "prac_cam_entries = " << d.pracCamEntries << '\n'
       << "prac_recovery_window = " << d.pracRecoveryWindow << '\n'
       << "fault_prac_drop_count = " << d.faultPracDropCount << '\n'
       << "fault_prac_late_rfm = " << d.faultPracLateRfm << '\n'
       // The maintenance op the PRAC block registers: naming it keys
       // the cache on the op's presence, not just its parameters.
       << "prac_op = " << (d.pracEnabled ? "prac_rfm" : "none") << '\n';

    const dram::Timing &t = d.timing;
    os << "trcd = " << t.tRcd << '\n'
       << "trp = " << t.tRp << '\n'
       << "tcas = " << t.tCas << '\n'
       << "tras = " << t.tRas << '\n'
       << "twr = " << t.tWr << '\n'
       << "tccd = " << t.tCcd << '\n'
       << "trrd = " << t.tRrd << '\n'
       << "tfaw = " << t.tFaw << '\n'
       << "trc = " << t.tRc << '\n'
       << "wl = " << t.wl << '\n'
       << "trtp = " << t.tRtp << '\n'
       << "twtr = " << t.tWtr << '\n'
       << "trfc = " << t.tRfc << '\n'
       << "trefi = " << t.tRefi << '\n'
       << "txp = " << t.tXp << '\n'
       << "trtrs = " << t.tRtrs << '\n'
       << "burst_cycles = " << t.burstCycles << '\n'
       << "bank_groups = " << t.bankGroups << '\n'
       << "tccd_l = " << t.tCcdL << '\n'
       << "pra_mask_cycles = " << t.praMaskCycles << '\n'
       << "trfm = " << t.tRfm << '\n';

    const power::PowerParams &p = d.power;
    bits("p_pre_standby", p.preStandby);
    bits("p_pre_power_down", p.prePowerDown);
    bits("p_refresh", p.refresh);
    bits("p_act_standby", p.actStandby);
    bits("p_read", p.read);
    bits("p_write", p.write);
    bits("p_read_io", p.readIo);
    bits("p_write_odt", p.writeOdt);
    bits("p_read_term", p.readTerm);
    bits("p_write_term", p.writeTerm);
    os << "read_io_pins = " << p.readIoPins << '\n'
       << "write_io_pins = " << p.writeIoPins << '\n';
    for (unsigned g = 0; g < p.actPower.size(); ++g) {
        const std::string key = "p_act_" + std::to_string(g + 1);
        bits(key.c_str(), p.actPower[g]);
    }
    bits("tck_ns", p.tCkNs);
    os << "power_trc = " << p.tRc << '\n'
       << "power_burst_cycles = " << p.burstCycles << '\n'
       << "power_trfc = " << p.tRfc << '\n'
       << "power_trfm = " << p.tRfm << '\n'
       << "power_trefi = " << p.tRefi << '\n';

    os << "issue_width = " << cfg.core.issueWidth << '\n'
       << "rob = " << cfg.core.robSize << '\n'
       << "ldq = " << cfg.core.ldqSize << '\n'
       << "stq = " << cfg.core.stqSize << '\n';

    os << "cores = " << cfg.caches.numCores << '\n'
       << "l1_bytes = " << cfg.caches.l1.sizeBytes << '\n'
       << "l1_ways = " << cfg.caches.l1.ways << '\n'
       << "l1_line = " << cfg.caches.l1.lineBytes << '\n'
       << "l2_bytes = " << cfg.caches.l2.sizeBytes << '\n'
       << "l2_ways = " << cfg.caches.l2.ways << '\n'
       << "l2_line = " << cfg.caches.l2.lineBytes << '\n'
       << "dbi = " << cfg.enableDbi << '\n';

    os << "warmup_ops = " << cfg.warmupOpsPerCore << '\n'
       << "target_instructions = " << cfg.targetInstructions << '\n'
       << "max_cycles = " << cfg.maxDramCycles << '\n'
       << "writeback_backlog = " << cfg.writebackBacklogLimit << '\n'
       << "cycle_skip = " << cfg.enableCycleSkip << '\n';
    return os.str();
}

std::string
dumpConfig(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << "scheme = " << cfg.dram.scheme->displayName() << '\n'
       << "scheduler = " << dram::schedulerKindName(cfg.dram.scheduler)
       << '\n'
       << "policy = "
       << (cfg.dram.policy == dram::PagePolicy::RelaxedClose
               ? "relaxed"
               : cfg.dram.policy == dram::PagePolicy::OpenPage
                     ? "openpage"
                     : "restricted")
       << '\n'
       << "dbi = " << (cfg.enableDbi ? "true" : "false") << '\n'
       << "channels = " << cfg.dram.channels << '\n'
       << "ranks = " << cfg.dram.ranksPerChannel << '\n'
       << "read_queue = " << cfg.dram.readQueueDepth << '\n'
       << "write_queue = " << cfg.dram.writeQueueDepth << '\n'
       << "row_hit_cap = " << cfg.dram.rowHitCap << '\n'
       << "prac = " << (cfg.dram.pracEnabled ? "true" : "false") << '\n'
       << "target_instructions = " << cfg.targetInstructions << '\n';
    return os.str();
}

} // namespace pra::sim
