#include "sim/config_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pra::sim {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

bool
parseBool(const std::string &v)
{
    const std::string s = lower(v);
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    throw std::runtime_error("bad boolean '" + v + "'");
}

Scheme
parseScheme(const std::string &v)
{
    const std::string s = lower(v);
    if (s == "baseline")
        return Scheme::Baseline;
    if (s == "fga")
        return Scheme::Fga;
    if (s == "halfdram" || s == "half-dram")
        return Scheme::HalfDram;
    if (s == "pra")
        return Scheme::Pra;
    if (s == "halfdram+pra" || s == "half-dram+pra" || s == "combined")
        return Scheme::HalfDramPra;
    throw std::runtime_error("unknown scheme '" + v + "'");
}

} // namespace

bool
applyConfigLine(const std::string &raw, SystemConfig &cfg)
{
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty())
        return false;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
        throw std::runtime_error("expected key=value: " + line);
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty())
        throw std::runtime_error("empty value for " + key);

    auto as_unsigned = [&] {
        return static_cast<unsigned>(std::stoul(value));
    };

    if (key == "scheme") {
        cfg.dram.scheme = parseScheme(value);
    } else if (key == "policy") {
        const std::string v = lower(value);
        if (v == "relaxed") {
            cfg.dram.policy = dram::PagePolicy::RelaxedClose;
            cfg.dram.mapping = dram::AddrMapping::RowInterleaved;
        } else if (v == "restricted") {
            cfg.dram.useRestrictedClosePage();
        } else if (v == "open" || v == "openpage") {
            cfg.dram.policy = dram::PagePolicy::OpenPage;
            cfg.dram.mapping = dram::AddrMapping::RowInterleaved;
        } else {
            throw std::runtime_error("unknown policy '" + value + "'");
        }
    } else if (key == "dbi") {
        cfg.enableDbi = parseBool(value);
    } else if (key == "channels") {
        cfg.dram.channels = as_unsigned();
    } else if (key == "ranks") {
        cfg.dram.ranksPerChannel = as_unsigned();
    } else if (key == "read_queue") {
        cfg.dram.readQueueDepth = as_unsigned();
    } else if (key == "write_queue") {
        cfg.dram.writeQueueDepth = as_unsigned();
    } else if (key == "write_high_watermark") {
        cfg.dram.writeHighWatermark = as_unsigned();
    } else if (key == "write_low_watermark") {
        cfg.dram.writeLowWatermark = as_unsigned();
    } else if (key == "row_hit_cap") {
        cfg.dram.rowHitCap = as_unsigned();
    } else if (key == "power_down") {
        cfg.dram.powerDownEnabled = parseBool(value);
    } else if (key == "checker") {
        cfg.dram.enableChecker = parseBool(value);
    } else if (key == "target_instructions") {
        cfg.targetInstructions = std::stoull(value);
    } else if (key == "warmup_ops") {
        cfg.warmupOpsPerCore = std::stoull(value);
    } else if (key == "max_cycles") {
        cfg.maxDramCycles = std::stoull(value);
    } else if (key == "l2_kb") {
        cfg.caches.l2.sizeBytes = std::stoull(value) * 1024;
    } else if (key == "l1_kb") {
        cfg.caches.l1.sizeBytes = std::stoull(value) * 1024;
    } else if (key == "trcd") {
        cfg.dram.timing.tRcd = as_unsigned();
    } else if (key == "trp") {
        cfg.dram.timing.tRp = as_unsigned();
    } else if (key == "tras") {
        cfg.dram.timing.tRas = as_unsigned();
    } else if (key == "trrd") {
        cfg.dram.timing.tRrd = as_unsigned();
    } else if (key == "tfaw") {
        cfg.dram.timing.tFaw = as_unsigned();
    } else if (key == "pra_mask_cycles") {
        cfg.dram.timing.praMaskCycles = as_unsigned();
    } else {
        throw std::runtime_error("unknown config key '" + key + "'");
    }
    return true;
}

void
loadConfig(std::istream &in, SystemConfig &cfg)
{
    std::string line;
    while (std::getline(in, line))
        applyConfigLine(line, cfg);
}

void
loadConfigFile(const std::string &path, SystemConfig &cfg)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open config file " + path);
    loadConfig(in, cfg);
}

std::string
canonicalConfig(const SystemConfig &cfg)
{
    std::ostringstream os;
    // Doubles are rendered as the hex of their bit pattern: bit-exact,
    // locale-independent, and collision-free under any field change.
    auto bits = [&os](const char *key, double v) {
        std::uint64_t u;
        static_assert(sizeof(u) == sizeof(v));
        std::memcpy(&u, &v, sizeof(u));
        os << key << " = 0x" << std::hex << u << std::dec << '\n';
    };

    const dram::DramConfig &d = cfg.dram;
    os << "scheme = " << schemeName(d.scheme) << '\n'
       << "policy = " << static_cast<int>(d.policy) << '\n'
       << "mapping = " << static_cast<int>(d.mapping) << '\n'
       << "channels = " << d.channels << '\n'
       << "ranks = " << d.ranksPerChannel << '\n'
       << "banks = " << d.banksPerRank << '\n'
       << "rows = " << d.rowsPerBank << '\n'
       << "lines_per_row = " << d.linesPerRow << '\n'
       << "chips = " << d.chipsPerRank << '\n'
       << "ecc_chips = " << d.eccChipsPerRank << '\n'
       << "read_queue = " << d.readQueueDepth << '\n'
       << "write_queue = " << d.writeQueueDepth << '\n'
       << "write_high_watermark = " << d.writeHighWatermark << '\n'
       << "write_low_watermark = " << d.writeLowWatermark << '\n'
       << "row_hit_cap = " << d.rowHitCap << '\n'
       << "power_down = " << d.powerDownEnabled << '\n'
       << "power_down_threshold = " << d.powerDownThreshold << '\n'
       << "checker = " << d.enableChecker << '\n'
       << "merge_write_masks = " << d.mergeWriteMasks << '\n'
       << "weighted_act_window = " << d.weightedActWindow << '\n'
       << "min_act_granularity = " << d.minActGranularity << '\n'
       // Behavioural fault hook (src/verify tests): widens ACT masks, so
       // it must key the result cache. The enableAudit flag itself is
       // observational and deliberately excluded.
       << "audit_fault_widen_act = "
       << static_cast<unsigned>(d.auditFaultWidenAct) << '\n';

    const dram::Timing &t = d.timing;
    os << "trcd = " << t.tRcd << '\n'
       << "trp = " << t.tRp << '\n'
       << "tcas = " << t.tCas << '\n'
       << "tras = " << t.tRas << '\n'
       << "twr = " << t.tWr << '\n'
       << "tccd = " << t.tCcd << '\n'
       << "trrd = " << t.tRrd << '\n'
       << "tfaw = " << t.tFaw << '\n'
       << "trc = " << t.tRc << '\n'
       << "wl = " << t.wl << '\n'
       << "trtp = " << t.tRtp << '\n'
       << "twtr = " << t.tWtr << '\n'
       << "trfc = " << t.tRfc << '\n'
       << "trefi = " << t.tRefi << '\n'
       << "txp = " << t.tXp << '\n'
       << "trtrs = " << t.tRtrs << '\n'
       << "burst_cycles = " << t.burstCycles << '\n'
       << "bank_groups = " << t.bankGroups << '\n'
       << "tccd_l = " << t.tCcdL << '\n'
       << "pra_mask_cycles = " << t.praMaskCycles << '\n';

    const power::PowerParams &p = d.power;
    bits("p_pre_standby", p.preStandby);
    bits("p_pre_power_down", p.prePowerDown);
    bits("p_refresh", p.refresh);
    bits("p_act_standby", p.actStandby);
    bits("p_read", p.read);
    bits("p_write", p.write);
    bits("p_read_io", p.readIo);
    bits("p_write_odt", p.writeOdt);
    bits("p_read_term", p.readTerm);
    bits("p_write_term", p.writeTerm);
    os << "read_io_pins = " << p.readIoPins << '\n'
       << "write_io_pins = " << p.writeIoPins << '\n';
    for (unsigned g = 0; g < p.actPower.size(); ++g) {
        const std::string key = "p_act_" + std::to_string(g + 1);
        bits(key.c_str(), p.actPower[g]);
    }
    bits("tck_ns", p.tCkNs);
    os << "power_trc = " << p.tRc << '\n'
       << "power_burst_cycles = " << p.burstCycles << '\n'
       << "power_trfc = " << p.tRfc << '\n'
       << "power_trefi = " << p.tRefi << '\n';

    os << "issue_width = " << cfg.core.issueWidth << '\n'
       << "rob = " << cfg.core.robSize << '\n'
       << "ldq = " << cfg.core.ldqSize << '\n'
       << "stq = " << cfg.core.stqSize << '\n';

    os << "cores = " << cfg.caches.numCores << '\n'
       << "l1_bytes = " << cfg.caches.l1.sizeBytes << '\n'
       << "l1_ways = " << cfg.caches.l1.ways << '\n'
       << "l1_line = " << cfg.caches.l1.lineBytes << '\n'
       << "l2_bytes = " << cfg.caches.l2.sizeBytes << '\n'
       << "l2_ways = " << cfg.caches.l2.ways << '\n'
       << "l2_line = " << cfg.caches.l2.lineBytes << '\n'
       << "dbi = " << cfg.enableDbi << '\n';

    os << "warmup_ops = " << cfg.warmupOpsPerCore << '\n'
       << "target_instructions = " << cfg.targetInstructions << '\n'
       << "max_cycles = " << cfg.maxDramCycles << '\n'
       << "writeback_backlog = " << cfg.writebackBacklogLimit << '\n'
       << "cycle_skip = " << cfg.enableCycleSkip << '\n';
    return os.str();
}

std::string
dumpConfig(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << "scheme = " << schemeName(cfg.dram.scheme) << '\n'
       << "policy = "
       << (cfg.dram.policy == dram::PagePolicy::RelaxedClose
               ? "relaxed"
               : cfg.dram.policy == dram::PagePolicy::OpenPage
                     ? "openpage"
                     : "restricted")
       << '\n'
       << "dbi = " << (cfg.enableDbi ? "true" : "false") << '\n'
       << "channels = " << cfg.dram.channels << '\n'
       << "ranks = " << cfg.dram.ranksPerChannel << '\n'
       << "read_queue = " << cfg.dram.readQueueDepth << '\n'
       << "write_queue = " << cfg.dram.writeQueueDepth << '\n'
       << "row_hit_cap = " << cfg.dram.rowHitCap << '\n'
       << "target_instructions = " << cfg.targetInstructions << '\n';
    return os.str();
}

} // namespace pra::sim
