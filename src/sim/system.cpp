#include "sim/system.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "sim/config_io.h"

namespace pra::sim {

System::System(const SystemConfig &cfg,
               std::vector<std::unique_ptr<cpu::Generator>> generators)
    : cfg_(cfg), dram_(cfg.dram), gens_(std::move(generators))
{
    assert(!gens_.empty() && gens_.size() <= cfg_.caches.numCores);

    cache::HierarchyConfig hc = cfg_.caches;
    hc.enableDbi = cfg_.enableDbi;
    if (hc.enableDbi && !hc.dbiRowKey) {
        // DRAM-row identity of a line under the configured mapping. The
        // mapper is captured by value so the function — and any warm
        // snapshot the hierarchy is exported into — stays valid after
        // this System is destroyed.
        const dram::AddressMapper mapper = dram_.mapper();
        const unsigned banks = cfg_.dram.banksPerRank;
        const unsigned ranks = cfg_.dram.ranksPerChannel;
        const unsigned channels = cfg_.dram.channels;
        hc.dbiRowKey = [mapper, banks, ranks, channels](Addr addr) {
            const dram::DecodedAddr loc = mapper.decode(addr);
            return ((static_cast<std::uint64_t>(loc.row) * ranks +
                     loc.rank) *
                        banks +
                    loc.bank) *
                       channels +
                   loc.channel;
        };
    }
    hier_ = std::make_unique<cache::Hierarchy>(hc);

    initCores();
    setupAudit();
}

System::System(const SystemConfig &cfg, const WarmSnapshot &snapshot)
    : cfg_(cfg), dram_(cfg.dram)
{
    // Fork: adopt the warmed hierarchy and the advanced generators by
    // deep copy, then skip warmup. The snapshot's hierarchy embeds its
    // own DBI row-key function (mapper captured by value), which decodes
    // identically here because the fork config agrees with the snapshot
    // on the DRAM organization and mapping (WarmSnapshot contract).
    hier_ = std::make_unique<cache::Hierarchy>(snapshot.hier);
    gens_.reserve(snapshot.gens.size());
    for (const auto &gen : snapshot.gens)
        gens_.push_back(gen->clone());
    assert(!gens_.empty() && gens_.size() <= cfg_.caches.numCores);

    initCores();
    warmed_ = true;
    setupAudit();
    if (auditor_ && auditReplay_) {
        auditor_->checkFingerprint("warm-snapshot fork",
                                   snapshot.hier.auditFingerprint(),
                                   hier_->auditFingerprint());
    }
}

void
System::setupAudit()
{
    const bool env = verify::Auditor::envEnabled();
    if (!cfg_.enableAudit && !env)
        return;

    verify::AuditConfig ac;
    ac.scheme = cfg_.dram.scheme;
    ac.mergeWriteMasks = cfg_.dram.mergeWriteMasks;
    ac.weightedActWindow = cfg_.dram.weightedActWindow;
    ac.minActGranularity = cfg_.dram.minActGranularity;
    ac.channels = cfg_.dram.channels;
    ac.ranksPerChannel = cfg_.dram.ranksPerChannel;
    ac.banksPerRank = cfg_.dram.banksPerRank;
    ac.power = cfg_.dram.power;
    ac.chipsPerRank = cfg_.dram.chipsPerRank;
    ac.eccChipsPerRank = cfg_.dram.eccChipsPerRank;
    ac.pracEnabled = cfg_.dram.pracEnabled;
    ac.pracThreshold = cfg_.dram.disturbanceThreshold;
    ac.pracCamEntries = cfg_.dram.pracCamEntries;
    ac.scanStride = cfg_.auditScanStride;
    ac.configFingerprint = fnv1a64(canonicalConfig(cfg_));

    auditor_ = std::make_unique<verify::Auditor>(ac);
    auditor_->attachHierarchy(hier_.get());
    dram_.attachAuditor(auditor_.get());
    // A configured fault hook means a test inspects the violations
    // itself; enforcement would abort before it can.
    auditEnforce_ = env && cfg_.dram.auditFaultWidenAct == 0;
    auditReplay_ = verify::Auditor::envReplay();
}

System::~System() = default;

void
System::initCores()
{
    // Private physical slice per core.
    coreSlice_ = dram_.mapper().capacityBytes() / cfg_.caches.numCores;

    cores_.reserve(gens_.size());
    for (unsigned c = 0; c < gens_.size(); ++c)
        cores_.emplace_back(c, cfg_.core, *gens_[c], *this);
    finishCycle_.assign(gens_.size(), 0);
    finished_.assign(gens_.size(), false);
}

WarmSnapshot
System::exportWarmSnapshot()
{
    if (!warmed_) {
        functionalWarmup();
        warmed_ = true;
    }
    WarmSnapshot snap{cache::Hierarchy(*hier_), {}};
    snap.gens.reserve(gens_.size());
    for (const auto &gen : gens_)
        snap.gens.push_back(gen->clone());
    if (auditor_ && auditReplay_) {
        auditor_->checkFingerprint("warm-snapshot export",
                                   hier_->auditFingerprint(),
                                   snap.hier.auditFingerprint());
    }
    return snap;
}

Addr
System::translate(unsigned core, Addr addr) const
{
    return (addr % coreSlice_) + static_cast<Addr>(core) * coreSlice_;
}

bool
System::canIssue(unsigned core, Addr addr)
{
    if (pendingWb_.size() > cfg_.writebackBacklogLimit)
        return false;
    return dram_.canAccept(translate(core, addr), false);
}

bool
System::access(unsigned core, const cpu::MemOp &op, std::uint64_t tag)
{
    const Addr addr = translate(core, op.addr);
    cache::HierarchyOutcome out =
        hier_->access(core, addr, op.isWrite, op.bytes);
    pushWritebacks(std::move(out.writebacks));
    if (auditor_)
        auditor_->onCacheAccess();
    if (out.needsMemRead) {
        const bool ok = dram_.enqueue(addr, false, WordMask::full(), core,
                                      tag);
        assert(ok && "canIssue must be checked before access");
        (void)ok;
        return true;
    }
    return false;
}

void
System::pushWritebacks(std::vector<cache::Writeback> &&wbs)
{
    for (auto &wb : wbs) {
        if (auditor_)
            auditor_->onWriteback({wb.addr, wb.dirty, wb.praMask()});
        pendingWb_.push_back(wb);
    }
}

void
System::drainWritebacks()
{
    while (!pendingWb_.empty()) {
        const cache::Writeback &wb = pendingWb_.front();
        if (!dram_.enqueue(wb.addr, true, wb.praMask(), 0, 0,
                           wb.dirty.toChipMask())) {
            break;   // Target write queue full; retry next cycle.
        }
        pendingWb_.pop_front();
    }
}

void
System::functionalWarmup()
{
    // Fill the tag arrays so the measured region starts from a steady
    // state instead of an all-cold LLC; DRAM timing is not exercised and
    // warmup writebacks are discarded.
    for (std::uint64_t i = 0; i < cfg_.warmupOpsPerCore; ++i) {
        for (unsigned c = 0; c < gens_.size(); ++c) {
            const cpu::MemOp op = gens_[c]->next();
            const cache::HierarchyOutcome out = hier_->access(
                c, translate(c, op.addr), op.isWrite, op.bytes);
            if (auditor_) {
                // Warmup discards its writebacks (no DRAM timing), but
                // the cache-side invariants still apply to them.
                for (const cache::Writeback &wb : out.writebacks)
                    auditor_->onWriteback({wb.addr, wb.dirty,
                                           wb.praMask()});
                auditor_->onCacheAccess();
            }
        }
    }
}

RunResult
System::run()
{
    if (!warmed_) {
        functionalWarmup();
        warmed_ = true;
    }

    std::size_t done = 0;
    while (done < cores_.size() && dram_.now() < cfg_.maxDramCycles) {
        for (auto &core : cores_)
            core.tick();
        drainWritebacks();
        dram_.tick();
        for (const auto &comp : dram_.drainCompletions()) {
            if (comp.coreId < cores_.size())
                cores_[comp.coreId].complete(comp.tag);
        }
        for (unsigned c = 0; c < cores_.size(); ++c) {
            if (!finished_[c] && cores_[c].retiredInstructions() >=
                                     cfg_.targetInstructions) {
                finished_[c] = true;
                finishCycle_[c] = dram_.now();
                ++done;
            }
        }

        // Cycle-skip fast path: when every core is provably unable to make
        // progress and no writeback is waiting to enqueue, nothing in the
        // system can change until the DRAM's next event. Jump there in one
        // step; the skipped cycles are no-op core ticks plus action-free
        // DRAM ticks whose background power fastForwardTo() accounts
        // analytically.
        if (cfg_.enableCycleSkip && done < cores_.size() &&
            pendingWb_.empty() &&
            std::all_of(cores_.begin(), cores_.end(),
                        [](const cpu::Core &c) { return c.stalled(); })) {
            const Cycle target =
                std::min(dram_.nextEventCycle(), cfg_.maxDramCycles);
            if (auditor_ && auditReplay_) {
                // Fast-path equivalence audit: tick through the window
                // the fast path would skip. Any command issued inside it
                // disproves the quiescence claim; the per-tick background
                // accounting otherwise matches fastForwardTo exactly, so
                // results stay bit-identical.
                auditor_->beginQuiescentWindow(dram_.now(), target);
                while (dram_.now() < target)
                    dram_.tick();
                auditor_->endQuiescentWindow();
            } else {
                dram_.fastForwardTo(target);
            }
        }
    }

    RunResult res;
    res.dramCycles = dram_.now();
    for (unsigned c = 0; c < cores_.size(); ++c) {
        const Cycle cyc = finished_[c] ? finishCycle_[c] : dram_.now();
        const std::uint64_t insts =
            finished_[c] ? cfg_.targetInstructions
                         : cores_[c].retiredInstructions();
        const double cpu_cycles =
            static_cast<double>(cyc) * kCpuCyclesPerDramCycle;
        res.retired.push_back(insts);
        res.ipc.push_back(cpu_cycles > 0
                              ? static_cast<double>(insts) / cpu_cycles
                              : 0.0);
    }

    res.dramStats = dram_.aggregateStats();
    res.energy = dram_.energyCounts();
    res.engine = dram_.engineStats();
    for (std::size_t b = 0; b < res.dirtyWords.buckets(); ++b)
        res.dirtyWords.record(b, hier_->dirtyWordsHistogram().count(b));
    res.memReads = hier_->memReads();
    res.memWrites = hier_->memWrites();
    if (hier_->dbi())
        res.dbiProactive = hier_->dbi()->proactiveWritebacks();

    const power::PowerModel model(cfg_.dram.power, cfg_.dram.chipsPerRank,
                                  cfg_.dram.ranksPerChannel,
                                  cfg_.dram.eccChipsPerRank);
    res.breakdown = model.energy(res.energy);
    res.avgPowerMw = model.averagePower(res.energy);
    res.totalEnergyNj = model.totalEnergy(res.energy);
    res.edp = model.energyDelayProduct(res.energy);

    if (auditor_) {
        auditor_->finalize(res.energy);
        if (auditEnforce_ && !auditor_->clean()) {
            std::fprintf(stderr, "%s", auditor_->report().c_str());
            std::abort();
        }
    }
    return res;
}

} // namespace pra::sim
