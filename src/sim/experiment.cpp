#include "sim/experiment.h"

#include <sstream>

#include "sim/result_cache.h"

namespace pra::sim {

SystemConfig
makeConfig(const ConfigPoint &point)
{
    SystemConfig cfg;
    cfg.dram.scheme = point.scheme;
    if (point.policy == dram::PagePolicy::RestrictedClose)
        cfg.dram.useRestrictedClosePage();
    cfg.enableDbi = point.dbi;
    return cfg;
}

std::vector<std::unique_ptr<cpu::Generator>>
mixGenerators(const workloads::Mix &mix)
{
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    // Empty trailing slots make a partial mix (e.g. a single-core run);
    // the seed stays tied to the slot so core i is reproducible
    // regardless of how many slots are filled.
    for (unsigned i = 0; i < mix.apps.size(); ++i)
        if (!mix.apps[i].empty())
            gens.push_back(workloads::makeGenerator(mix.apps[i], i + 1));
    return gens;
}

RunResult
runWorkload(const workloads::Mix &mix, const SystemConfig &cfg)
{
    System system(cfg, mixGenerators(mix));
    return system.run();
}

std::string
warmupKey(const SystemConfig &cfg, const workloads::Mix &mix)
{
    // Warmup touches only the hierarchy and the generators, through the
    // per-core address relocation and (with DBI) the row-key function.
    // Everything listed here is exactly what those depend on; scheme,
    // timing, queueing, power, and run-length knobs are deliberately
    // absent so configurations differing only in those share a snapshot.
    std::ostringstream os;
    os << workloadSpec(mix) << "warmup_ops = " << cfg.warmupOpsPerCore
       << '\n'
       << "cores = " << cfg.caches.numCores << '\n'
       << "l1_bytes = " << cfg.caches.l1.sizeBytes << '\n'
       << "l1_ways = " << cfg.caches.l1.ways << '\n'
       << "l1_line = " << cfg.caches.l1.lineBytes << '\n'
       << "l2_bytes = " << cfg.caches.l2.sizeBytes << '\n'
       << "l2_ways = " << cfg.caches.l2.ways << '\n'
       << "l2_line = " << cfg.caches.l2.lineBytes << '\n'
       << "dbi = " << cfg.enableDbi << '\n'
       << "mapping = " << static_cast<int>(cfg.dram.mapping) << '\n'
       << "channels = " << cfg.dram.channels << '\n'
       << "ranks = " << cfg.dram.ranksPerChannel << '\n'
       << "banks = " << cfg.dram.banksPerRank << '\n'
       << "rows = " << cfg.dram.rowsPerBank << '\n'
       << "lines_per_row = " << cfg.dram.linesPerRow << '\n';
    return os.str();
}

std::shared_ptr<const WarmSnapshot>
WarmupCache::get(const SystemConfig &cfg, const workloads::Mix &mix)
{
    const std::string key = warmupKey(cfg, mix);

    std::promise<std::shared_ptr<const WarmSnapshot>> prom;
    std::shared_future<std::shared_ptr<const WarmSnapshot>> fut;
    bool compute = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            compute = true;
            fut = prom.get_future().share();
            cache_.emplace(key, fut);
        } else {
            fut = it->second;
        }
    }

    if (compute) {
        try {
            System system(cfg, mixGenerators(mix));
            prom.set_value(std::make_shared<const WarmSnapshot>(
                system.exportWarmSnapshot()));
            computed_.fetch_add(1);
        } catch (...) {
            // Propagate to every waiter instead of deadlocking them.
            prom.set_exception(std::current_exception());
        }
    }
    return fut.get();
}

RunResult
runWorkload(const workloads::Mix &mix, const SystemConfig &cfg,
            WarmupCache &warm)
{
    if (cfg.warmupOpsPerCore == 0)
        return runWorkload(mix, cfg);   // Nothing to snapshot.
    System system(cfg, *warm.get(cfg, mix));
    return system.run();
}

double
AloneIpcCache::get(const std::string &app, const ConfigPoint &point)
{
    const std::string key = point.key() + "#" + app;

    // Claim-or-wait: the first caller installs a future and computes;
    // later callers (any thread) block on the shared result.
    std::promise<double> prom;
    std::shared_future<double> fut;
    bool compute = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            compute = true;
            fut = prom.get_future().share();
            cache_.emplace(key, fut);
        } else {
            fut = it->second;
        }
    }

    if (compute) {
        try {
            const SystemConfig cfg = makeConfig(point);
            // Slot 0 fixes the generator seed to 1, matching the
            // pre-cache behaviour of building makeGenerator(app, 1).
            const workloads::Mix solo{app, {app, "", "", ""}};

            std::string material;
            std::optional<RunResult> cached;
            if (results_ && results_->enabled()) {
                material = resultCacheMaterial(cfg, solo);
                cached = results_->load(material);
            }
            RunResult res;
            if (cached) {
                persistentHits_.fetch_add(1);
                res = std::move(*cached);
            } else {
                res = warm_ ? runWorkload(solo, cfg, *warm_)
                            : runWorkload(solo, cfg);
                if (results_ && results_->enabled())
                    results_->store(material, res);
            }
            prom.set_value(res.ipc.at(0));
        } catch (...) {
            prom.set_exception(std::current_exception());
        }
    }
    return fut.get();
}

double
weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                const ConfigPoint &point, AloneIpcCache &alone)
{
    double ws = 0.0;
    unsigned core = 0;  // Active cores pack down past empty mix slots.
    for (unsigned c = 0; c < mix.apps.size(); ++c) {
        if (mix.apps[c].empty())
            continue;
        const double alone_ipc = alone.get(mix.apps[c], point);
        if (alone_ipc > 0.0)
            ws += shared.ipc.at(core) / alone_ipc;
        ++core;
    }
    return ws;
}

} // namespace pra::sim
