#include "sim/experiment.h"

namespace pra::sim {

SystemConfig
makeConfig(const ConfigPoint &point)
{
    SystemConfig cfg;
    cfg.dram.scheme = point.scheme;
    if (point.policy == dram::PagePolicy::RestrictedClose)
        cfg.dram.useRestrictedClosePage();
    cfg.enableDbi = point.dbi;
    return cfg;
}

RunResult
runWorkload(const workloads::Mix &mix, const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    // Empty trailing slots make a partial mix (e.g. a single-core run);
    // the seed stays tied to the slot so core i is reproducible
    // regardless of how many slots are filled.
    for (unsigned i = 0; i < mix.apps.size(); ++i)
        if (!mix.apps[i].empty())
            gens.push_back(workloads::makeGenerator(mix.apps[i], i + 1));
    System system(cfg, std::move(gens));
    return system.run();
}

double
AloneIpcCache::get(const std::string &app, const ConfigPoint &point)
{
    const std::string key = point.key() + "#" + app;

    // Claim-or-wait: the first caller installs a future and computes;
    // later callers (any thread) block on the shared result.
    std::promise<double> prom;
    std::shared_future<double> fut;
    bool compute = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            compute = true;
            fut = prom.get_future().share();
            cache_.emplace(key, fut);
        } else {
            fut = it->second;
        }
    }

    if (compute) {
        SystemConfig cfg = makeConfig(point);
        std::vector<std::unique_ptr<cpu::Generator>> gens;
        gens.push_back(workloads::makeGenerator(app, 1));
        System system(cfg, std::move(gens));
        prom.set_value(system.run().ipc.at(0));
    }
    return fut.get();
}

double
weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                const ConfigPoint &point, AloneIpcCache &alone)
{
    double ws = 0.0;
    unsigned core = 0;  // Active cores pack down past empty mix slots.
    for (unsigned c = 0; c < mix.apps.size(); ++c) {
        if (mix.apps[c].empty())
            continue;
        const double alone_ipc = alone.get(mix.apps[c], point);
        if (alone_ipc > 0.0)
            ws += shared.ipc.at(core) / alone_ipc;
        ++core;
    }
    return ws;
}

} // namespace pra::sim
