#include "sim/experiment.h"

namespace pra::sim {

SystemConfig
makeConfig(const ConfigPoint &point)
{
    SystemConfig cfg;
    cfg.dram.scheme = point.scheme;
    if (point.policy == dram::PagePolicy::RestrictedClose)
        cfg.dram.useRestrictedClosePage();
    cfg.enableDbi = point.dbi;
    return cfg;
}

RunResult
runWorkload(const workloads::Mix &mix, const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned i = 0; i < mix.apps.size(); ++i)
        gens.push_back(workloads::makeGenerator(mix.apps[i], i + 1));
    System system(cfg, std::move(gens));
    return system.run();
}

double
AloneIpcCache::get(const std::string &app, const ConfigPoint &point)
{
    const std::string key = point.key() + "#" + app;
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    SystemConfig cfg = makeConfig(point);
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    gens.push_back(workloads::makeGenerator(app, 1));
    System system(cfg, std::move(gens));
    const RunResult res = system.run();
    const double ipc = res.ipc.at(0);
    cache_.emplace(key, ipc);
    return ipc;
}

double
weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                const ConfigPoint &point, AloneIpcCache &alone)
{
    double ws = 0.0;
    for (unsigned c = 0; c < mix.apps.size(); ++c) {
        const double alone_ipc = alone.get(mix.apps[c], point);
        if (alone_ipc > 0.0)
            ws += shared.ipc.at(c) / alone_ipc;
    }
    return ws;
}

} // namespace pra::sim
