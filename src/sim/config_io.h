/**
 * @file
 * Key=value configuration parsing for SystemConfig, so benches,
 * examples, and downstream tools can reconfigure the platform without
 * recompiling:
 *
 *     # comments with '#'
 *     scheme = pra          # baseline|fga|halfdram|pra|halfdram+pra
 *     policy = relaxed      # relaxed|restricted
 *     dbi = true
 *     channels = 2
 *     ranks = 2
 *     read_queue = 64
 *     write_queue = 64
 *     write_high_watermark = 48
 *     write_low_watermark = 16
 *     row_hit_cap = 4
 *     power_down = true
 *     checker = false
 *     target_instructions = 1200000
 *     warmup_ops = 120000
 *     l2_kb = 4096
 *     trcd = 11             # any lowercase timing field
 */
#ifndef PRA_SIM_CONFIG_IO_H
#define PRA_SIM_CONFIG_IO_H

#include <iosfwd>
#include <string>

#include "sim/system.h"

namespace pra::sim {

/**
 * Apply one "key = value" assignment to @p cfg.
 * @throws std::runtime_error on unknown keys or unparsable values.
 * @return false when the line is blank or a comment.
 */
bool applyConfigLine(const std::string &line, SystemConfig &cfg);

/** Apply a whole stream of assignments. */
void loadConfig(std::istream &in, SystemConfig &cfg);

/** Load a config file into @p cfg. */
void loadConfigFile(const std::string &path, SystemConfig &cfg);

/** Render the interesting fields of @p cfg as key=value text. */
std::string dumpConfig(const SystemConfig &cfg);

/**
 * Render *every* behaviour-affecting field of @p cfg as canonical
 * key=value text: organization, controller policy, ablation knobs,
 * scheme, the full timing set, the power parameters (doubles as
 * bit-exact hex), the cache/core geometry, and the run lengths. Two
 * configs with equal canonical text simulate identically; any field
 * change alters the text. This is the config half of the
 * content-addressed result-cache key (sim::resultCacheKey).
 */
std::string canonicalConfig(const SystemConfig &cfg);

} // namespace pra::sim

#endif // PRA_SIM_CONFIG_IO_H
