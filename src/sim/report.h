/**
 * @file
 * Machine-readable result export: JSON documents and CSV rows for
 * RunResult, so experiment sweeps can be post-processed (plotted,
 * diffed, regression-checked) outside the simulator.
 */
#ifndef PRA_SIM_REPORT_H
#define PRA_SIM_REPORT_H

#include <ostream>
#include <string>

#include "sim/system.h"

namespace pra::sim {

/** Serialize a run result (with its label) as a JSON object. */
std::string toJson(const std::string &workload, const std::string &config,
                   const RunResult &result);

/** CSV column header matching writeCsvRow. */
std::string csvHeader();

/** One CSV row for a run. */
std::string toCsvRow(const std::string &workload,
                     const std::string &config, const RunResult &result);

/** Convenience: stream a whole sweep. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(&os)
    {
        *os_ << csvHeader() << '\n';
    }

    void
    add(const std::string &workload, const std::string &config,
        const RunResult &result)
    {
        *os_ << toCsvRow(workload, config, result) << '\n';
    }

  private:
    std::ostream *os_;
};

} // namespace pra::sim

#endif // PRA_SIM_REPORT_H
