/**
 * @file
 * The integrated CPU–cache–DRAM simulation platform (the role gem5 +
 * DRAMSim2 play in the paper): four simplified OoO cores over private
 * L1s, a shared L2 with FGD (optionally fronted by a DBI), and the
 * cycle-accurate multi-channel DDR3 system with the configured scheme.
 *
 * Each core's address stream is relocated into a private slice of the
 * physical address space, as a multiprogrammed run on a real machine
 * would be.
 */
#ifndef PRA_SIM_SYSTEM_H
#define PRA_SIM_SYSTEM_H

#include <deque>
#include <memory>
#include <vector>

#include "cache/hierarchy.h"
#include "common/stats.h"
#include "cpu/core.h"
#include "dram/dram_system.h"
#include "power/power_model.h"
#include "verify/auditor.h"

namespace pra::sim {

/** Full-system configuration (defaults: paper Table 3). */
struct SystemConfig
{
    dram::DramConfig dram{};
    cpu::CoreParams core{};
    cache::HierarchyConfig caches{};
    bool enableDbi = false;

    /** Functional (timing-free) cache-warming ops per active core. */
    std::uint64_t warmupOpsPerCore = 120'000;
    /** Instructions per core in the measured region. */
    std::uint64_t targetInstructions = 1'200'000;
    /** Hard wall-clock bound in DRAM cycles. */
    Cycle maxDramCycles = 40'000'000;
    /** Writeback buffer backpressure threshold. */
    std::size_t writebackBacklogLimit = 64;
    /**
     * Cycle-skipping fast path: when every core is stalled and the DRAM
     * system reports no action possible before cycle T, jump the clock to
     * T instead of ticking through the idle stretch. Produces bit-identical
     * results to the naive loop (the skipped cycles are provably
     * action-free; background power is accounted analytically and, in
     * debug builds, asserted against a cycle-by-cycle replay).
     */
    bool enableCycleSkip = true;
    /**
     * Attach the cross-layer invariant auditor (src/verify) — the
     * semantic counterpart of DramConfig::enableChecker. Observational
     * only: results are bit-identical with or without it. PRA_AUDIT=1
     * in the environment force-enables it for every System and turns
     * violations into an abort with a full report; PRA_AUDIT_REPLAY=1
     * additionally replays cycle-skip windows through the slow path and
     * fingerprint-checks warm-snapshot forks.
     */
    bool enableAudit = false;       // pra-lint: observational
    /** Auditor coherence-scan stride in accesses; 0 = auto. */
    unsigned auditScanStride = 0;   // pra-lint: observational
};

/** Everything one simulation run produces. */
struct RunResult
{
    std::vector<double> ipc;          //!< Per active core.
    std::vector<std::uint64_t> retired;
    Cycle dramCycles = 0;

    dram::ControllerStats dramStats;
    power::EnergyCounts energy;
    Histogram dirtyWords{kWordsPerLine + 1};  //!< Figure 3.

    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t dbiProactive = 0;

    // Power-model evaluation of `energy`.
    power::EnergyBreakdown breakdown;
    double avgPowerMw = 0.0;
    double totalEnergyNj = 0.0;
    double edp = 0.0;

    /**
     * Event-engine counters (zero under the tick engine). Observational
     * wall-clock diagnostics only — deliberately excluded from the
     * result cache so both engines share cache entries.
     */
    dram::EngineStats engine;
};

/**
 * Immutable image of a system's state right after functional warmup:
 * the warmed cache hierarchy (tags, dirty bits, LRU clocks, DBI row
 * groups, warmup-accrued statistics) plus the post-warmup generator
 * states (RNG, cursors, pending ops). Because warmup never touches the
 * DRAM clock, cores, or writeback queue, this is the *complete* mutable
 * state a cold run has accumulated when its measured region begins — so
 * a System forked from the snapshot produces results bit-identical to a
 * cold run, while N configurations sharing a warmup pay for it once.
 *
 * Validity: a fork's SystemConfig must agree with the snapshot's source
 * config on every warmup-relevant field — the mix and its per-slot
 * seeds, warmupOpsPerCore, cache geometry, DBI enable, core count, and
 * the DRAM organization/mapping (which fixes the address-relocation
 * slices and the DBI row-key function). sim::warmupKey() canonicalizes
 * exactly this set; WarmupCache keys snapshots with it.
 */
struct WarmSnapshot
{
    cache::Hierarchy hier;
    std::vector<std::unique_ptr<cpu::Generator>> gens;
};

/** The simulation platform. */
class System : public cpu::CoreMemoryPort
{
  public:
    /**
     * @param cfg        System configuration.
     * @param generators One instruction stream per *active* core (1 for
     *                   "alone" runs, 4 for rate/mix runs).
     */
    System(const SystemConfig &cfg,
           std::vector<std::unique_ptr<cpu::Generator>> generators);

    /**
     * Fork a system from a warm snapshot: deep-copies the warmed
     * hierarchy, clones the generators, and marks warmup done, so run()
     * proceeds straight to the measured region. @p cfg may differ from
     * the snapshot's source configuration in any field that does not
     * affect warmup (scheme, timing, queue/policy knobs, power,
     * targetInstructions, ...) — see WarmSnapshot's validity contract.
     */
    System(const SystemConfig &cfg, const WarmSnapshot &snapshot);
    ~System() override;

    /**
     * Run functional warmup now (idempotent; run() will not repeat it)
     * and export the warmed state. The exported snapshot is independent
     * of this system — safe to share across threads and outlive it.
     */
    WarmSnapshot exportWarmSnapshot();

    /** Warm the caches, run to completion, and evaluate power. */
    RunResult run();

    // CoreMemoryPort interface.
    bool canIssue(unsigned core, Addr addr) override;
    bool access(unsigned core, const cpu::MemOp &op,
                std::uint64_t tag) override;

    const dram::DramSystem &dram() const { return dram_; }
    const cache::Hierarchy &caches() const { return *hier_; }

    /** The invariant auditor, when enabled (null otherwise). */
    const verify::Auditor *auditor() const { return auditor_.get(); }

  private:
    Addr translate(unsigned core, Addr addr) const;
    void functionalWarmup();
    void initCores();
    void setupAudit();
    void pushWritebacks(std::vector<cache::Writeback> &&wbs);
    void drainWritebacks();

    SystemConfig cfg_;
    dram::DramSystem dram_;
    std::unique_ptr<cache::Hierarchy> hier_;
    std::unique_ptr<verify::Auditor> auditor_;
    bool auditEnforce_ = false;   //!< Abort on violations (PRA_AUDIT=1).
    bool auditReplay_ = false;    //!< Replay fast paths (PRA_AUDIT_REPLAY).
    std::vector<std::unique_ptr<cpu::Generator>> gens_;
    std::vector<cpu::Core> cores_;

    std::deque<cache::Writeback> pendingWb_;
    std::vector<Cycle> finishCycle_;
    std::vector<bool> finished_;

    Addr coreSlice_ = 0;
    bool warmed_ = false;   //!< Functional warmup already performed.
};

} // namespace pra::sim

#endif // PRA_SIM_SYSTEM_H
