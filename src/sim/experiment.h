/**
 * @file
 * Experiment harness shared by the benchmark binaries: builds systems
 * for a (scheme, page-policy, DBI) point, runs the 14 paper workloads,
 * and computes the weighted-speedup metric (paper Eq. 3) against cached
 * "alone" runs.
 */
#ifndef PRA_SIM_EXPERIMENT_H
#define PRA_SIM_EXPERIMENT_H

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/system.h"
#include "workloads/factory.h"

namespace pra::sim {

class ResultCache;

/** One evaluated configuration point. */
struct ConfigPoint
{
    const SchemeModel *scheme = &baselineScheme();
    dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    bool dbi = false;

    std::string
    key() const
    {
        return std::string(scheme->displayName()) +
               (policy == dram::PagePolicy::RelaxedClose ? "/relaxed"
                                                         : "/restricted") +
               (dbi ? "/dbi" : "");
    }
};

/** Build the paper's baseline SystemConfig for a configuration point. */
SystemConfig makeConfig(const ConfigPoint &point);

/** Run a 4-core workload (rate quadruple or Table 4 mix). */
RunResult runWorkload(const workloads::Mix &mix, const SystemConfig &cfg);

/** The generators a workload mix instantiates (slot index fixes seed). */
std::vector<std::unique_ptr<cpu::Generator>>
mixGenerators(const workloads::Mix &mix);

/**
 * Canonical text identifying the functional-warmup state a (cfg, mix)
 * pair produces: the workload spec plus every warmup-relevant config
 * field (warmup length, core count, cache geometry, DBI enable, and the
 * DRAM organization/mapping that fixes address relocation and the DBI
 * row key). Two pairs with equal keys produce bit-identical
 * WarmSnapshots — notably the key excludes the scheme, timing, queue,
 * and power knobs, so an entire scheme sweep shares one warmup.
 */
std::string warmupKey(const SystemConfig &cfg, const workloads::Mix &mix);

/**
 * Memoizes WarmSnapshots per warmupKey with compute-once semantics:
 * exactly one thread performs each distinct warmup (the rest block on a
 * shared_future), and every sweep cell then forks its System from the
 * shared snapshot instead of re-warming.
 */
class WarmupCache
{
  public:
    /** The warm snapshot for (cfg, mix); computed at most once. */
    std::shared_ptr<const WarmSnapshot> get(const SystemConfig &cfg,
                                            const workloads::Mix &mix);

    /** Distinct warmups actually simulated (not served from cache). */
    std::uint64_t computed() const { return computed_.load(); }

  private:
    std::mutex mu_;
    std::map<std::string,
             std::shared_future<std::shared_ptr<const WarmSnapshot>>>
        cache_;
    std::atomic<std::uint64_t> computed_{0};
};

/**
 * Run @p mix under @p cfg, forking from @p warm's shared snapshot.
 * Bit-identical to the cold overload (the snapshot is the complete
 * post-warmup mutable state); falls back to a cold run when the config
 * disables warmup.
 */
RunResult runWorkload(const workloads::Mix &mix, const SystemConfig &cfg,
                      WarmupCache &warm);

/**
 * Caches IPC_alone per (config key, app).
 *
 * Thread-safe with compute-once semantics: when several sweep threads
 * need the same alone IPC, exactly one runs the simulation and the rest
 * block on its shared_future, so no alone-run is ever duplicated.
 *
 * Optionally shares a WarmupCache (so alone runs reuse warmups across
 * configuration points that agree on warmup-relevant fields) and a
 * persistent ResultCache (so alone runs replay across processes).
 */
class AloneIpcCache
{
  public:
    /** IPC of @p app running alone under @p point (cached). */
    double get(const std::string &app, const ConfigPoint &point);

    /** Fork alone runs from @p warm's snapshots (nullptr = cold). */
    void shareWarmups(WarmupCache *warm) { warm_ = warm; }

    /** Replay/persist alone results through @p cache (nullptr = off). */
    void usePersistentCache(const ResultCache *cache) { results_ = cache; }

    /** Alone results served from the persistent cache. */
    std::uint64_t persistentHits() const { return persistentHits_.load(); }

  private:
    std::mutex mu_;
    std::map<std::string, std::shared_future<double>> cache_;
    WarmupCache *warm_ = nullptr;
    const ResultCache *results_ = nullptr;
    std::atomic<std::uint64_t> persistentHits_{0};
};

/**
 * Weighted speedup (Eq. 3): sum over cores of IPC_shared / IPC_alone,
 * with alone IPCs measured under the same configuration point.
 */
double weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                       const ConfigPoint &point, AloneIpcCache &alone);

} // namespace pra::sim

#endif // PRA_SIM_EXPERIMENT_H
