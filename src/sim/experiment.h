/**
 * @file
 * Experiment harness shared by the benchmark binaries: builds systems
 * for a (scheme, page-policy, DBI) point, runs the 14 paper workloads,
 * and computes the weighted-speedup metric (paper Eq. 3) against cached
 * "alone" runs.
 */
#ifndef PRA_SIM_EXPERIMENT_H
#define PRA_SIM_EXPERIMENT_H

#include <future>
#include <map>
#include <mutex>
#include <string>

#include "sim/system.h"
#include "workloads/factory.h"

namespace pra::sim {

/** One evaluated configuration point. */
struct ConfigPoint
{
    Scheme scheme = Scheme::Baseline;
    dram::PagePolicy policy = dram::PagePolicy::RelaxedClose;
    bool dbi = false;

    std::string
    key() const
    {
        return schemeName(scheme) +
               (policy == dram::PagePolicy::RelaxedClose ? "/relaxed"
                                                         : "/restricted") +
               (dbi ? "/dbi" : "");
    }
};

/** Build the paper's baseline SystemConfig for a configuration point. */
SystemConfig makeConfig(const ConfigPoint &point);

/** Run a 4-core workload (rate quadruple or Table 4 mix). */
RunResult runWorkload(const workloads::Mix &mix, const SystemConfig &cfg);

/**
 * Caches IPC_alone per (config key, app).
 *
 * Thread-safe with compute-once semantics: when several sweep threads
 * need the same alone IPC, exactly one runs the simulation and the rest
 * block on its shared_future, so no alone-run is ever duplicated.
 */
class AloneIpcCache
{
  public:
    /** IPC of @p app running alone under @p point (cached). */
    double get(const std::string &app, const ConfigPoint &point);

  private:
    std::mutex mu_;
    std::map<std::string, std::shared_future<double>> cache_;
};

/**
 * Weighted speedup (Eq. 3): sum over cores of IPC_shared / IPC_alone,
 * with alone IPCs measured under the same configuration point.
 */
double weightedSpeedup(const workloads::Mix &mix, const RunResult &shared,
                       const ConfigPoint &point, AloneIpcCache &alone);

} // namespace pra::sim

#endif // PRA_SIM_EXPERIMENT_H
