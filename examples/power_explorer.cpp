/**
 * @file
 * Example: using the power-model library standalone — no simulation.
 * Walks the IDD derivation (Eq. 1/2), the CACTI activation-energy
 * scaling, and a what-if: how does PRA's saving move as the row size
 * (bitlines per MAT, hence activation energy) grows in future DRAMs?
 * Section 2.2.1 of the paper argues row overfetching worsens with
 * capacity; this example quantifies that trend with the model.
 */
#include <iostream>

#include "common/table.h"
#include "power/cacti_model.h"
#include "power/idd.h"
#include "power/power_model.h"

using namespace pra;
using namespace pra::power;

int
main()
{
    // 1. Derive activation power from datasheet currents.
    const IddParams idd;
    std::cout << "P_ACT from Eq. 1/2: " << Table::fmt(actPowerFromIdd(idd), 2)
              << " mW\n\n";

    // 2. Build a mini workload by hand and cost it with the PowerModel.
    PowerModel model(PowerParams{}, /*chips=*/8, /*ranks=*/2);
    EnergyCounts conventional;
    conventional.acts[7] = 1000;        // 1000 full-row activations.
    conventional.readLines = 600;
    conventional.writeLines = 400;
    conventional.writeWordsDriven = 400 * kWordsPerLine;
    conventional.preStandbyCycles = 50'000;
    conventional.elapsedCycles = 50'000;

    EnergyCounts pra = conventional;
    // PRA: the 400 write activations shrink to one-eighth rows and only
    // the dirty word is driven.
    pra.acts[7] = 600;
    pra.acts[0] = 400;
    pra.writeWordsDriven = 400;

    Table t("Hand-built episode: conventional vs PRA");
    t.header({"Metric", "Conventional", "PRA", "Saving"});
    const EnergyBreakdown ec = model.energy(conventional);
    const EnergyBreakdown ep = model.energy(pra);
    t.addRow({"ACT-PRE (nJ)", Table::fmt(ec.actPre, 1),
              Table::fmt(ep.actPre, 1),
              Table::pct(1 - ep.actPre / ec.actPre)});
    t.addRow({"Write I/O (nJ)", Table::fmt(ec.writeIo, 1),
              Table::fmt(ep.writeIo, 1),
              Table::pct(1 - ep.writeIo / ec.writeIo)});
    t.addRow({"Total (nJ)", Table::fmt(ec.total(), 1),
              Table::fmt(ep.total(), 1),
              Table::pct(1 - ep.total() / ec.total())});
    t.print(std::cout);

    // 3. What-if: future DRAMs with longer rows (more bitline energy).
    Table f("Future-DRAM trend: PRA 1/8-row saving vs bitline energy");
    f.header({"Bitline scale", "Full-row pJ", "1/8-row pJ",
              "ACT saving at 1/8"});
    for (double scale : {1.0, 1.5, 2.0, 3.0, 4.0}) {
        ActEnergyComponents e;   // Table 2 defaults.
        e.localBitline *= scale;
        const CactiModel m(DieArea{}, e);
        f.addRow({Table::fmt(scale, 1),
                  Table::fmt(m.actEnergy(16), 1),
                  Table::fmt(m.actEnergy(2), 1),
                  Table::pct(1.0 - m.scaleFactor(1))});
    }
    f.print(std::cout);

    std::cout << "The saving grows with bitline energy: exactly the "
                 "paper's argument that row overfetching — and PRA's "
                 "headroom — worsens in future high-capacity DRAMs.\n";
    return 0;
}
