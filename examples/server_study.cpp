/**
 * @file
 * Example: PRA on server-class traffic. The paper's introduction
 * motivates PRA with datacenter DRAM power; this example runs the two
 * extremes of that space — a STREAM-style bandwidth kernel (fully dirty
 * sequential lines: PRA has nothing to trim) and a YCSB-style key-value
 * store (sparse small updates: PRA's best case) — plus a 50/50
 * consolidation mix, under Baseline, Half-DRAM, and PRA.
 */
#include <iostream>

#include "common/table.h"
#include "sim/runner.h"

using namespace pra;

namespace {

const SchemeModel *const kSchemes[] = {&schemeByName("baseline"), &schemeByName("halfdram"),
                               &schemeByName("pra")};

void
study(sim::Runner &runner, const workloads::Mix &mix)
{
    Table t("Workload: " + mix.name);
    t.header({"Scheme", "power mW", "norm power", "norm energy", "IPC0",
              "mean ACT gran", "wr words/line"});

    std::vector<sim::SweepJob> jobs;
    for (const SchemeModel *scheme : kSchemes)
        jobs.push_back({mix,
                        {scheme, dram::PagePolicy::RelaxedClose, false},
                        600'000,
                        {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);

    double base_power = 0, base_energy = 0;
    for (std::size_t s = 0; s < std::size(kSchemes); ++s) {
        const SchemeModel *scheme = kSchemes[s];
        const sim::RunResult &r = results[s];
        if (scheme == &schemeByName("baseline")) {
            base_power = r.avgPowerMw;
            base_energy = r.totalEnergyNj;
        }
        const double words_per_line =
            r.energy.writeLines
                ? static_cast<double>(r.energy.writeWordsDriven) /
                      static_cast<double>(r.energy.writeLines)
                : 0.0;
        t.addRow({std::string(scheme->displayName()), Table::fmt(r.avgPowerMw, 0),
                  Table::fmt(r.avgPowerMw / base_power, 3),
                  Table::fmt(r.totalEnergyNj / base_energy, 3),
                  Table::fmt(r.ipc[0], 3),
                  Table::fmt(r.energy.meanActGranularity(), 2),
                  Table::fmt(words_per_line, 2)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "PRA on server-class traffic\n\n";
    sim::Runner runner;
    study(runner, {"stream x4", {"stream", "stream", "stream", "stream"}});
    study(runner,
          {"kvstore x4", {"kvstore", "kvstore", "kvstore", "kvstore"}});
    study(runner,
          {"consolidated", {"stream", "kvstore", "stream", "kvstore"}});
    std::cout
        << "STREAM writes whole lines, so PRA degenerates to the "
           "baseline there (Half-DRAM still halves activations); the "
           "key-value store is PRA's sweet spot — sparse updates with "
           "no locality. Consolidation lands in between: PRA adapts "
           "per writeback, which is exactly the paper's argument for "
           "mask-granular activation over fixed halving.\n";
    return 0;
}
