/**
 * @file
 * Example: trace recording and replay — the path for evaluating PRA on
 * your own workload traces (the role SPEC SimPoint traces play in the
 * paper). Records a short GUPS trace to a file, reloads it, replays it
 * through the full platform, and emits machine-readable results.
 *
 * Usage: trace_replay [trace-file]
 *   With an argument, replays the given trace file on all four cores
 *   instead of the recorded GUPS trace.
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/config_io.h"
#include "sim/report.h"
#include "workloads/factory.h"
#include "workloads/trace.h"

using namespace pra;

int
main(int argc, char **argv)
{
    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        // Record 200k GUPS operations into a trace file.
        path = "gups.trace";
        auto gen = workloads::makeGenerator("GUPS", 1);
        const auto ops = workloads::recordTrace(*gen, 200'000);
        std::ofstream out(path);
        workloads::writeTrace(out, ops);
        std::cout << "recorded " << ops.size() << " ops to " << path
                  << "\n";
    }

    // Configure the platform from text (see sim/config_io.h for keys).
    sim::SystemConfig cfg;
    std::istringstream config_text(
        "scheme = pra\n"
        "policy = relaxed\n"
        "target_instructions = 400000\n"
        "checker = true\n");
    sim::loadConfig(config_text, cfg);
    std::cout << "configuration:\n" << sim::dumpConfig(cfg) << "\n";

    // Four cores all replaying the trace (offset into private slices by
    // the platform, like a rate-mode run).
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned c = 0; c < 4; ++c) {
        gens.push_back(std::make_unique<workloads::TraceGenerator>(
            workloads::TraceGenerator::fromFile(path)));
    }
    sim::System system(cfg, std::move(gens));
    const sim::RunResult result = system.run();

    // Protocol check: the independent DDR3 checker rode along.
    for (unsigned ch = 0; ch < system.dram().numChannels(); ++ch) {
        const auto *checker = system.dram().channel(ch).checker();
        std::cout << "channel " << ch << ": "
                  << checker->commandsChecked() << " commands checked, "
                  << checker->violations().size() << " violations\n";
    }

    std::cout << "\nJSON result:\n"
              << sim::toJson(path, "PRA/relaxed", result) << "\n\nCSV:\n"
              << sim::csvHeader() << "\n"
              << sim::toCsvRow(path, "PRA/relaxed", result) << "\n";
    return 0;
}
