/**
 * @file
 * Quickstart: simulate one workload under the conventional DRAM baseline
 * and under PRA, and print the headline comparison — DRAM power
 * breakdown, activation granularities, and performance.
 *
 * Usage: quickstart [benchmark]   (default: GUPS)
 */
#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/runner.h"

using namespace pra;

namespace {

void
report(const std::string &label, const sim::RunResult &r)
{
    std::cout << label << ":\n"
              << "  DRAM cycles          " << r.dramCycles << "\n"
              << "  IPC (core 0)         " << Table::fmt(r.ipc.at(0), 3)
              << "\n"
              << "  avg DRAM power       " << Table::fmt(r.avgPowerMw, 1)
              << " mW\n"
              << "  ACT-PRE energy       "
              << Table::fmt(r.breakdown.actPre, 0) << " nJ\n"
              << "  write I/O energy     "
              << Table::fmt(r.breakdown.writeIo, 0) << " nJ\n"
              << "  total energy         "
              << Table::fmt(r.totalEnergyNj, 0) << " nJ\n"
              << "  row hit rate (r/w)   "
              << Table::pct(r.dramStats.readHitRate()) << " / "
              << Table::pct(r.dramStats.writeHitRate()) << "\n"
              << "  false hits (r/w)     " << r.dramStats.readFalseHits
              << " / " << r.dramStats.writeFalseHits << "\n";

    std::cout << "  ACT granularity      ";
    const auto &g = r.dramStats.actGranularity;
    for (unsigned k = 1; k <= 8; ++k)
        std::cout << k << "/8:" << Table::pct(g.fraction(k), 0) << " ";
    std::cout << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "GUPS";
    const workloads::Mix rate{bench, {bench, bench, bench, bench}};

    std::cout << "PRA quickstart — benchmark: " << bench
              << " (4 identical instances)\n\n";

    sim::ConfigPoint base{&schemeByName("baseline"),
                          dram::PagePolicy::RelaxedClose, false};
    sim::ConfigPoint pra{&schemeByName("pra"), dram::PagePolicy::RelaxedClose,
                         false};

    // Both points run concurrently on the sweep engine (PRA_JOBS to
    // control the fan-out); results come back in enqueue order.
    sim::Runner runner;
    const std::vector<sim::RunResult> results =
        runner.run({{rate, base, 0, {}}, {rate, pra, 0, {}}});
    const sim::RunResult &rb = results[0];
    const sim::RunResult &rp = results[1];
    report("Baseline (conventional DDR3-1600)", rb);
    report("PRA (partial row activation)", rp);

    const double power_saving = 1.0 - rp.avgPowerMw / rb.avgPowerMw;
    const double perf_delta = rp.ipc.at(0) / rb.ipc.at(0) - 1.0;
    std::cout << "PRA vs baseline: total DRAM power "
              << Table::pct(power_saving) << " lower, performance "
              << Table::pct(perf_delta) << " delta\n";
    return 0;
}
