/**
 * @file
 * Example: multiprogrammed mix study. Runs one of the paper's Table 4
 * mixes (default MIX2 — the memory-hammering one) under every scheme and
 * prints a side-by-side comparison of performance and power, the way
 * Section 5.2.2 of the paper slices its results.
 *
 * Usage: mix_study [MIX1..MIX6]
 */
#include <algorithm>
#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/runner.h"

using namespace pra;

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "MIX2";
    const auto &all = workloads::mixes();
    const auto it = std::find_if(all.begin(), all.end(),
                                 [&](const workloads::Mix &m) {
                                     return m.name == wanted;
                                 });
    if (it == all.end()) {
        std::cerr << "unknown mix " << wanted
                  << " (use MIX1..MIX6)\n";
        return 1;
    }
    const workloads::Mix &mix = *it;

    std::cout << "Workload " << mix.name << ": ";
    for (const auto &app : mix.apps)
        std::cout << app << " ";
    std::cout << "\n\n";

    Table t("Scheme comparison (relaxed close-page)");
    t.header({"Scheme", "WS", "norm WS", "power mW", "norm power",
              "norm energy", "norm EDP", "falseHit r/w"});

    const std::vector<const SchemeModel *> schemes = {&schemeByName("baseline"), &schemeByName("fga"),
                                         &schemeByName("halfdram"), &schemeByName("sds"),
                                         &schemeByName("pra"), &schemeByName("halfdram+pra")};
    std::vector<sim::ConfigPoint> points;
    for (const SchemeModel *scheme : schemes)
        points.push_back({scheme, dram::PagePolicy::RelaxedClose, false});

    sim::Runner runner;
    std::vector<sim::SweepJob> jobs;
    for (const auto &point : points)
        jobs.push_back({mix, point, 0, {}});
    const std::vector<sim::RunResult> results = runner.run(jobs);

    // Warm the alone-IPC cache in parallel before the serial table loop.
    std::vector<std::string> apps;
    for (const auto &app : mix.apps)
        if (std::find(apps.begin(), apps.end(), app) == apps.end())
            apps.push_back(app);
    runner.parallelFor(apps.size() * points.size(), [&](std::size_t i) {
        runner.aloneIpc().get(apps[i % apps.size()],
                              points[i / apps.size()]);
    });

    double base_ws = 0, base_power = 0, base_energy = 0, base_edp = 0;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeModel *scheme = schemes[s];
        const sim::ConfigPoint &point = points[s];
        const sim::RunResult &r = results[s];
        const double ws = runner.weightedSpeedup(mix, r, point);
        if (scheme == &schemeByName("baseline")) {
            base_ws = ws;
            base_power = r.avgPowerMw;
            base_energy = r.totalEnergyNj;
            base_edp = r.edp;
        }
        t.addRow({std::string(scheme->displayName()), Table::fmt(ws, 3),
                  Table::fmt(ws / base_ws, 3), Table::fmt(r.avgPowerMw, 0),
                  Table::fmt(r.avgPowerMw / base_power, 3),
                  Table::fmt(r.totalEnergyNj / base_energy, 3),
                  Table::fmt(r.edp / base_edp, 3),
                  std::to_string(r.dramStats.readFalseHits) + "/" +
                      std::to_string(r.dramStats.writeFalseHits)});
    }
    t.print(std::cout);
    return 0;
}
