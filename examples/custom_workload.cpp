/**
 * @file
 * Example: plugging a custom workload into the platform. Implements a
 * small "log-structured append" generator from scratch (sequential
 * 1-word appends with periodic random index lookups), runs it under
 * Baseline and PRA, and shows how to read the per-component results.
 *
 * This is the template to follow to evaluate PRA on your own traffic.
 */
#include <iostream>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "sim/experiment.h"

using namespace pra;

namespace {

/**
 * Log-structured append workload: appends a record header into each
 * 64 B log slot (one dirty word per line, sequential lines — ideal for
 * PRA's partial activation AND for row locality; the record payload is
 * written later by a different stage we don't model), with occasional
 * random index lookups that trash the row buffer.
 */
class LogAppend : public cpu::Generator
{
  public:
    explicit LogAppend(std::uint64_t seed) : rng_(seed) {}

    cpu::MemOp
    next() override
    {
        cpu::MemOp op;
        if (rng_.chance(0.25)) {
            // Random index lookup.
            op.gap = 20;
            op.addr = rng_.below((256ull << 20) / kLineBytes) * kLineBytes +
                      (1ull << 29);
            return op;
        }
        // Append one record header: one word in the next 64 B slot.
        op.gap = 10;
        op.isWrite = true;
        op.addr = logHead_;
        op.bytes = ByteMask::word(0);
        logHead_ = (logHead_ + kLineBytes) % (128ull << 20);
        return op;
    }

    const char *name() const override { return "log-append"; }

    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<LogAppend>(*this);
    }

  private:
    Rng rng_;
    Addr logHead_ = 0;
};

sim::RunResult
runUnder(const SchemeModel *scheme)
{
    sim::SystemConfig cfg = sim::makeConfig(
        {scheme, dram::PagePolicy::RelaxedClose, false});
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned c = 0; c < 4; ++c)
        gens.push_back(std::make_unique<LogAppend>(c + 1));
    sim::System system(cfg, std::move(gens));
    return system.run();
}

} // namespace

int
main()
{
    std::cout << "Custom workload: log-structured append "
                 "(75% 1-word appends, 25% random lookups)\n\n";

    const sim::RunResult base = runUnder(&schemeByName("baseline"));
    const sim::RunResult pra = runUnder(&schemeByName("pra"));

    Table t("Baseline vs PRA on the custom workload");
    t.header({"Metric", "Baseline", "PRA"});
    t.addRow({"IPC (core 0)", Table::fmt(base.ipc[0], 3),
              Table::fmt(pra.ipc[0], 3)});
    t.addRow({"avg DRAM power (mW)", Table::fmt(base.avgPowerMw, 0),
              Table::fmt(pra.avgPowerMw, 0)});
    t.addRow({"ACT-PRE energy (nJ)", Table::fmt(base.breakdown.actPre, 0),
              Table::fmt(pra.breakdown.actPre, 0)});
    t.addRow({"write I/O energy (nJ)",
              Table::fmt(base.breakdown.writeIo, 0),
              Table::fmt(pra.breakdown.writeIo, 0)});
    t.addRow({"mean ACT granularity",
              Table::fmt(base.energy.meanActGranularity(), 2),
              Table::fmt(pra.energy.meanActGranularity(), 2)});
    t.addRow({"write row-hit rate",
              Table::pct(base.dramStats.writeHitRate()),
              Table::pct(pra.dramStats.writeHitRate())});
    t.print(std::cout);

    std::cout << "Appends dirty one word per line, so PRA activates "
                 "1/8-rows for almost every writeback while the "
                 "sequential log keeps the read path untouched.\n";
    return 0;
}
