/**
 * @file
 * Scenario tests for the memory controller: FR-FCFS service, exact
 * latencies, row-hit caps, write drain, PRA mask merging, false-hit
 * handling, forwarding, restricted close-page auto-precharge, and
 * refresh.
 */
#include <gtest/gtest.h>

#include "dram/address_mapping.h"
#include "dram/controller.h"

namespace pra::dram {
namespace {

/** Single-channel controller harness with crafted addresses. */
class Harness
{
  public:
    explicit Harness(const SchemeModel *scheme = &schemeByName("baseline"),
                     PagePolicy policy = PagePolicy::RelaxedClose)
    {
        cfg.channels = 1;
        cfg.scheme = scheme;
        cfg.policy = policy;
        cfg.powerDownEnabled = false;   // Keep timing deterministic.
        mapper = std::make_unique<AddressMapper>(cfg);
        mc = std::make_unique<MemoryController>(cfg, 0);
    }

    Request
    make(std::uint32_t row, unsigned bank, unsigned col, bool is_write,
         WordMask mask = WordMask::full(), unsigned rank = 0)
    {
        DecodedAddr loc;
        loc.channel = 0;
        loc.rank = rank;
        loc.bank = bank;
        loc.row = row;
        loc.col = col;
        Request req;
        req.addr = mapper->encode(loc);
        req.isWrite = is_write;
        req.mask = mask;
        req.loc = loc;
        req.tag = nextTag++;
        return req;
    }

    void
    run(Cycle cycles)
    {
        const Cycle end = now + cycles;
        while (now < end)
            mc->tick(now++);
    }

    /** Run until the controller is idle (bounded). */
    void
    settle(Cycle limit = 5000)
    {
        const Cycle end = now + limit;
        while (now < end &&
               (mc->readQueueSize() || mc->writeQueueSize())) {
            mc->tick(now++);
        }
        run(64);   // Let in-flight data land.
    }

    DramConfig cfg;
    std::unique_ptr<AddressMapper> mapper;
    std::unique_ptr<MemoryController> mc;
    Cycle now = 0;
    std::uint64_t nextTag = 1;
};

TEST(Controller, ReadMissLatencyIsActPlusCasPlusBurst)
{
    Harness h;
    h.mc->enqueue(h.make(5, 0, 0, false), 0);
    h.settle();
    ASSERT_EQ(h.mc->completions().size(), 1u);
    const Completion &c = h.mc->completions()[0];
    const Timing &t = h.cfg.timing;
    EXPECT_EQ(c.latency, t.tRcd + t.rl() + t.burstCycles);
}

TEST(Controller, RowHitServedWithoutNewActivation)
{
    Harness h;
    h.mc->enqueue(h.make(5, 0, 0, false), 0);
    h.mc->enqueue(h.make(5, 0, 1, false), 0);
    h.settle();
    EXPECT_EQ(h.mc->completions().size(), 2u);
    EXPECT_EQ(h.mc->stats().actsForReads, 1u);
    EXPECT_EQ(h.mc->stats().readRowHits, 1u);
    EXPECT_EQ(h.mc->stats().readRowMisses, 1u);
}

TEST(Controller, RowConflictPrechargesAndReactivates)
{
    Harness h;
    h.mc->enqueue(h.make(5, 0, 0, false), 0);
    h.mc->enqueue(h.make(9, 0, 0, false), 0);
    h.settle();
    EXPECT_EQ(h.mc->completions().size(), 2u);
    EXPECT_EQ(h.mc->stats().actsForReads, 2u);
    EXPECT_GE(h.mc->stats().precharges, 1u);
    EXPECT_EQ(h.mc->stats().readRowHits, 0u);
}

TEST(Controller, RowHitCapForcesReactivation)
{
    Harness h;
    for (unsigned col = 0; col < 6; ++col)
        h.mc->enqueue(h.make(5, 0, col, false), 0);
    h.settle();
    EXPECT_EQ(h.mc->completions().size(), 6u);
    // Cap of 4 column accesses per activation: 6 requests need 2 ACTs.
    EXPECT_EQ(h.mc->stats().actsForReads, 2u);
    EXPECT_EQ(h.mc->stats().readRowHits, 4u);
    EXPECT_EQ(h.mc->stats().readRowMisses, 2u);
}

TEST(Controller, ReadsPrioritizedOverWrites)
{
    Harness h;
    // A write arrives first, then a read to a different bank.
    h.mc->enqueue(h.make(3, 1, 0, true), 0);
    h.mc->enqueue(h.make(4, 2, 0, false), 0);
    h.settle();
    // The read completes at its isolated-latency floor: the write never
    // got in its way.
    ASSERT_EQ(h.mc->completions().size(), 1u);
    const Timing &t = h.cfg.timing;
    EXPECT_EQ(h.mc->completions()[0].latency,
              t.tRcd + t.rl() + t.burstCycles);
    EXPECT_EQ(h.mc->energyCounts().writeLines, 1u);
}

TEST(Controller, WritesServicedWhenReadQueueEmpty)
{
    Harness h;
    h.mc->enqueue(h.make(3, 0, 0, true), 0);
    h.settle();
    EXPECT_EQ(h.mc->energyCounts().writeLines, 1u);
    EXPECT_EQ(h.mc->stats().actsForWrites, 1u);
    EXPECT_EQ(h.mc->writeQueueSize(), 0u);
}

TEST(Controller, WriteCombiningCoalescesSameLine)
{
    Harness h(&schemeByName("pra"));
    h.mc->enqueue(h.make(3, 0, 0, true, WordMask::single(0)), 0);
    h.mc->enqueue(h.make(3, 0, 0, true, WordMask::single(5)), 0);
    EXPECT_EQ(h.mc->writeQueueSize(), 1u);
    h.settle();
    EXPECT_EQ(h.mc->stats().writeReqs, 2u);
    EXPECT_EQ(h.mc->energyCounts().writeLines, 1u);
    // The coalesced line drives both dirty words.
    EXPECT_EQ(h.mc->energyCounts().writeWordsDriven, 2u);
}

TEST(Controller, ReadForwardedFromWriteQueue)
{
    Harness h;
    h.mc->enqueue(h.make(3, 0, 7, true), 0);
    h.mc->enqueue(h.make(3, 0, 7, false), 0);
    h.settle();
    EXPECT_EQ(h.mc->stats().forwardedReads, 1u);
    ASSERT_EQ(h.mc->completions().size(), 1u);
    EXPECT_EQ(h.mc->completions()[0].latency, 1u);
    // Only the write touched DRAM.
    EXPECT_EQ(h.mc->energyCounts().readLines, 0u);
}

TEST(Controller, PraWriteActivationUsesMergedMask)
{
    Harness h(&schemeByName("pra"));
    // Two queued writes to the same row, different words: one partial
    // activation of granularity 2 serves both (Section 5.2.1).
    h.mc->enqueue(h.make(3, 0, 0, true, WordMask::single(0)), 0);
    h.mc->enqueue(h.make(3, 0, 1, true, WordMask::single(7)), 0);
    h.settle();
    EXPECT_EQ(h.mc->stats().actsForWrites, 1u);
    EXPECT_EQ(h.mc->stats().actGranularity.count(2), 1u);
    EXPECT_EQ(h.mc->energyCounts().acts[1], 1u);
    EXPECT_EQ(h.mc->energyCounts().writeWordsDriven, 2u);
    EXPECT_EQ(h.mc->stats().writeRowHits, 1u);   // Second write rode along.
}

TEST(Controller, PraWriteFalseHitPrechargesAndReactivates)
{
    Harness h(&schemeByName("pra"));
    h.mc->enqueue(h.make(3, 0, 0, true, WordMask::single(0)), 0);
    // Wait until the partial activation happened.
    while (h.now < 2000 && h.mc->stats().actsForWrites == 0)
        h.mc->tick(h.now++);
    ASSERT_EQ(h.mc->stats().actsForWrites, 1u);
    // A write needing a closed MAT group arrives while the partial row
    // is still open.
    h.mc->enqueue(h.make(3, 0, 1, true, WordMask::single(4)), h.now);
    h.settle();
    EXPECT_EQ(h.mc->stats().writeFalseHits, 1u);
    EXPECT_EQ(h.mc->stats().actsForWrites, 2u);
    EXPECT_EQ(h.mc->energyCounts().writeLines, 2u);
}

TEST(Controller, PraReadFalseHitOnPartialRow)
{
    Harness h(&schemeByName("pra"));
    h.mc->enqueue(h.make(3, 0, 0, true, WordMask::single(0)), 0);
    while (h.now < 2000 && h.mc->stats().actsForWrites == 0)
        h.mc->tick(h.now++);
    // A read to the partially opened row: conventional DRAM would hit.
    h.mc->enqueue(h.make(3, 0, 5, false), h.now);
    h.settle();
    EXPECT_EQ(h.mc->stats().readFalseHits, 1u);
    ASSERT_EQ(h.mc->completions().size(), 1u);
    // It was re-activated as a full row.
    EXPECT_EQ(h.mc->energyCounts().acts[7], 1u);
}

TEST(Controller, PraReadHitOnPartialRowWithinFootprintStillFalse)
{
    // Reads need the full row (n-bit prefetch over all MAT groups), so
    // even a read "inside" the open footprint is a false hit.
    Harness h(&schemeByName("pra"));
    h.mc->enqueue(h.make(3, 0, 0, true, WordMask::full()), 0);
    while (h.now < 2000 && h.mc->stats().actsForWrites == 0)
        h.mc->tick(h.now++);
    // Full-mask write opened the whole row: a read must actually HIT.
    h.mc->enqueue(h.make(3, 0, 2, false), h.now);
    h.settle();
    EXPECT_EQ(h.mc->stats().readFalseHits, 0u);
    EXPECT_EQ(h.mc->stats().readRowHits, 1u);
}

TEST(Controller, RestrictedClosePageAutoPrecharges)
{
    Harness h(&schemeByName("baseline"), PagePolicy::RestrictedClose);
    h.mc->enqueue(h.make(5, 0, 0, false), 0);
    h.mc->enqueue(h.make(5, 0, 1, false), 0);
    h.settle();
    // Same row, but every access re-activates.
    EXPECT_EQ(h.mc->stats().actsForReads, 2u);
    EXPECT_EQ(h.mc->stats().readRowHits, 0u);
    EXPECT_EQ(h.mc->stats().precharges, 2u);
}

TEST(Controller, FgaDoublesTransferTime)
{
    Harness base(&schemeByName("baseline"));
    base.mc->enqueue(base.make(5, 0, 0, false), 0);
    base.settle();
    Harness fga(&schemeByName("fga"));
    fga.mc->enqueue(fga.make(5, 0, 0, false), 0);
    fga.settle();
    ASSERT_EQ(base.mc->completions().size(), 1u);
    ASSERT_EQ(fga.mc->completions().size(), 1u);
    EXPECT_EQ(fga.mc->completions()[0].latency,
              base.mc->completions()[0].latency +
                  base.cfg.timing.burstCycles);
    // FGA's half-row activation is recorded at granularity 4.
    EXPECT_EQ(fga.mc->energyCounts().acts[3], 1u);
}

TEST(Controller, HalfDramRecordsHalfHeightActs)
{
    Harness h(&schemeByName("halfdram"));
    h.mc->enqueue(h.make(5, 0, 0, false), 0);
    h.mc->enqueue(h.make(6, 1, 0, true, WordMask::single(0)), 0);
    h.settle();
    EXPECT_EQ(h.mc->energyCounts().actsHalfHeight[7], 2u);
    EXPECT_EQ(h.mc->energyCounts().acts[7], 0u);
    // Half-DRAM still transfers the full line on writes.
    EXPECT_EQ(h.mc->energyCounts().writeWordsDriven, kWordsPerLine);
}

TEST(Controller, DataBusSerializesBursts)
{
    Harness h;
    // Two reads to different banks: second data transfer must wait for
    // the bus.
    h.mc->enqueue(h.make(5, 0, 0, false), 0);
    h.mc->enqueue(h.make(6, 1, 0, false), 0);
    h.settle();
    ASSERT_EQ(h.mc->completions().size(), 2u);
    const Cycle f0 = h.mc->completions()[0].finish;
    const Cycle f1 = h.mc->completions()[1].finish;
    EXPECT_GE(f1 > f0 ? f1 - f0 : f0 - f1, h.cfg.timing.burstCycles);
}

TEST(Controller, WriteToReadTurnaroundEnforced)
{
    Harness h;
    h.mc->enqueue(h.make(3, 0, 0, true), 0);
    // Let the write issue, then present a read to another bank.
    while (h.now < 2000 && h.mc->energyCounts().writeLines == 0)
        h.mc->tick(h.now++);
    const Cycle write_issued = h.now;
    h.mc->enqueue(h.make(4, 1, 0, false), h.now);
    h.settle();
    ASSERT_EQ(h.mc->completions().size(), 1u);
    const Timing &t = h.cfg.timing;
    // Read command could not start before the tWTR window passed.
    EXPECT_GE(h.mc->completions()[0].finish,
              write_issued + t.wl + t.burstCycles + t.tWtr);
}

TEST(Controller, RefreshIssuedEveryTrefi)
{
    Harness h;
    h.run(2 * h.cfg.timing.tRefi + 200);
    // Two ranks, two tREFI windows each (staggered start).
    EXPECT_GE(h.mc->stats().refreshes, 3u);
    EXPECT_EQ(h.mc->energyCounts().refreshOps, h.mc->stats().refreshes);
}

TEST(Controller, RefreshDrainsOpenBankFirst)
{
    Harness h;
    // Open a row just before the refresh deadline.
    h.now = h.cfg.timing.tRefi - 20;
    h.mc->enqueue(h.make(5, 0, 0, false), h.now);
    h.run(400);
    EXPECT_GE(h.mc->stats().refreshes, 1u);
    EXPECT_EQ(h.mc->completions().size(), 1u);
}

TEST(Controller, QueueCapacityEnforced)
{
    Harness h;
    for (unsigned i = 0; i < h.cfg.readQueueDepth; ++i) {
        ASSERT_TRUE(h.mc->canAccept(false));
        h.mc->enqueue(h.make(i, i % 8, 0, false), 0);
    }
    EXPECT_FALSE(h.mc->canAccept(false));
    EXPECT_TRUE(h.mc->canAccept(true));
}

TEST(Controller, BusyReflectsOutstandingWork)
{
    Harness h;
    EXPECT_FALSE(h.mc->busy());
    h.mc->enqueue(h.make(1, 0, 0, false), 0);
    EXPECT_TRUE(h.mc->busy());
    h.settle();
    h.mc->completions().clear();
    EXPECT_FALSE(h.mc->busy());
}

/** Property: under every scheme, N random requests all complete. */
class ControllerSchemeSweep : public ::testing::TestWithParam<const SchemeModel *>
{
};

TEST_P(ControllerSchemeSweep, AllRequestsServiced)
{
    Harness h(GetParam());
    unsigned reads = 0;
    std::uint64_t state = 12345;
    for (int i = 0; i < 200; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const bool is_write = (state >> 33) % 3 == 0;
        const auto row = static_cast<std::uint32_t>((state >> 20) % 64);
        const auto bank = static_cast<unsigned>((state >> 40) % 8);
        const auto col = static_cast<unsigned>((state >> 50) % 32);
        const auto word = static_cast<unsigned>((state >> 10) % 8);
        if (!h.mc->canAccept(is_write)) {
            h.run(200);
        }
        ASSERT_TRUE(h.mc->canAccept(is_write));
        h.mc->enqueue(h.make(row, bank, col, is_write,
                             WordMask::single(word)),
                      h.now);
        reads += is_write ? 0 : 1;
        h.run(3);
    }
    h.settle(200000);
    // Forwarded reads also produce completions, so completions alone
    // must account for every read.
    EXPECT_EQ(h.mc->completions().size(), reads);
    EXPECT_EQ(h.mc->readQueueSize(), 0u);
    EXPECT_EQ(h.mc->writeQueueSize(), 0u);
    // Activation bookkeeping is consistent.
    const auto &e = h.mc->energyCounts();
    std::uint64_t acts = 0;
    for (int g = 0; g < 8; ++g)
        acts += e.acts[g] + e.actsHalfHeight[g];
    EXPECT_EQ(acts,
              h.mc->stats().actsForReads + h.mc->stats().actsForWrites);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ControllerSchemeSweep,
                         ::testing::Values(&schemeByName("baseline"), &schemeByName("fga"),
                                           &schemeByName("halfdram"), &schemeByName("pra"),
                                           &schemeByName("halfdram+pra")));

} // namespace
} // namespace pra::dram
