/**
 * @file
 * Timing-constraint tests for the Bank FSM (tRCD/tRAS/tRP/tRC/tRTP/tWR,
 * PRA mask-delivery delay) and the Rank (weighted tFAW window, tRRD,
 * refresh scheduling, power-down).
 */
#include <gtest/gtest.h>

#include "dram/rank.h"

namespace pra::dram {
namespace {

const Timing kT{};   // DDR3-1600 defaults.
/** Bank-level gap table derived from the same defaults. */
const BankTables kBank = TimingTables::build(DramConfig{}).bank;

TEST(Bank, ActivateThenColumnAfterTrcd)
{
    Bank b(kBank);
    EXPECT_TRUE(b.canActivate(0));
    b.activate(100, 7, WordMask::full(), false);
    EXPECT_FALSE(b.canActivate(100));   // Row open.
    EXPECT_FALSE(b.canRead(100 + kT.tRcd - 1));
    EXPECT_TRUE(b.canRead(100 + kT.tRcd));
    EXPECT_TRUE(b.canWrite(100 + kT.tRcd));
}

TEST(Bank, PartialActivationAddsMaskCycle)
{
    Bank b(kBank);
    b.activate(100, 7, WordMask::single(0), true);
    // Paper Fig. 7a: column command after tRCD + tCK.
    EXPECT_FALSE(b.canWrite(100 + kT.tRcd));
    EXPECT_TRUE(b.canWrite(100 + kT.tRcd + kT.praMaskCycles));
}

TEST(Bank, PrechargeGatedByTras)
{
    Bank b(kBank);
    b.activate(50, 3, WordMask::full(), false);
    EXPECT_FALSE(b.canPrecharge(50 + kT.tRas - 1));
    EXPECT_TRUE(b.canPrecharge(50 + kT.tRas));
}

TEST(Bank, ReadPushesPrechargeByTrtp)
{
    Bank b(kBank);
    b.activate(0, 3, WordMask::full(), false);
    const Cycle rd = 0 + kT.tRas - 2;   // Late read.
    b.read(rd, kT.burstCycles);
    EXPECT_FALSE(b.canPrecharge(kT.tRas));
    EXPECT_TRUE(b.canPrecharge(rd + kT.tRtp));
}

TEST(Bank, WritePushesPrechargeByWriteRecovery)
{
    Bank b(kBank);
    b.activate(0, 3, WordMask::full(), false);
    const Cycle wr = kT.tRcd;
    b.write(wr, kT.burstCycles);
    const Cycle expect = wr + kT.wl + kT.burstCycles + kT.tWr;
    EXPECT_FALSE(b.canPrecharge(expect - 1));
    EXPECT_TRUE(b.canPrecharge(expect));
}

TEST(Bank, RowCycleLimitsBackToBackActivations)
{
    Bank b(kBank);
    b.activate(0, 1, WordMask::full(), false);
    b.precharge(kT.tRas);   // Earliest legal precharge.
    // tRP after PRE would allow tRAS + tRP = tRC; also gated by tRC.
    EXPECT_FALSE(b.canActivate(kT.tRas + kT.tRp - 1));
    EXPECT_TRUE(b.canActivate(kT.tRc));
}

TEST(Bank, ColumnToColumnGapTccd)
{
    Bank b(kBank);
    b.activate(0, 1, WordMask::full(), false);
    b.read(kT.tRcd, kT.burstCycles);
    EXPECT_FALSE(b.canRead(kT.tRcd + kT.tCcd - 1));
    EXPECT_TRUE(b.canRead(kT.tRcd + kT.tCcd));
}

TEST(Bank, HitCountTracksColumnAccesses)
{
    Bank b(kBank);
    b.activate(0, 1, WordMask::full(), false);
    EXPECT_EQ(b.hitCount(), 0u);
    b.recordHit();
    b.recordHit();
    EXPECT_EQ(b.hitCount(), 2u);
    b.precharge(kT.tRas);
    EXPECT_EQ(b.hitCount(), 0u);
}

DramConfig
rankConfig()
{
    DramConfig cfg;
    return cfg;
}

TEST(Rank, TrrdGapBetweenActivations)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    EXPECT_TRUE(r.canActivate(100, 1.0));
    r.recordActivation(100, 1.0);
    EXPECT_FALSE(r.canActivate(100 + kT.tRrd - 1, 1.0));
    EXPECT_TRUE(r.canActivate(100 + kT.tRrd, 1.0));
}

TEST(Rank, PartialActivationsShrinkTrrd)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    // A 1/8-row activation (weight 3.7/22.2) relaxes the gap to the
    // 2-cycle floor.
    r.recordActivation(100, 3.7 / 22.2);
    EXPECT_FALSE(r.canActivate(101, 1.0));
    EXPECT_TRUE(r.canActivate(102, 1.0));
}

TEST(Rank, TfawLimitsFourFullActivations)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    // Four full-weight activations, spaced by tRRD.
    Cycle t = 1000;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(r.canActivate(t, 1.0));
        r.recordActivation(t, 1.0);
        t += kT.tRrd;
    }
    // Fifth activation must wait for the window to roll over.
    EXPECT_FALSE(r.canActivate(t, 1.0));
    EXPECT_TRUE(r.canActivate(1000 + kT.tFaw, 1.0));
}

TEST(Rank, WeightedTfawAdmitsManyPartialActivations)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    // Paper Section 4.1.3: partial activations relax tFAW. Weight 1/6
    // activations fit 24 to a window, not 4.
    const double w = 3.7 / 22.2;
    Cycle t = 1000;
    int admitted = 0;
    for (int i = 0; i < 30; ++i) {
        if (r.canActivate(t, w)) {
            r.recordActivation(t, w);
            ++admitted;
        }
        t += 2;
    }
    EXPECT_GT(admitted, 10);
}

TEST(Rank, RefreshScheduleAndBlocking)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    EXPECT_FALSE(r.refreshDue(0));
    const Cycle due = kT.tRefi;
    EXPECT_TRUE(r.refreshDue(due));
    ASSERT_TRUE(r.canRefresh(due));
    r.refresh(due);
    EXPECT_TRUE(r.refreshing(due + kT.tRfc - 1));
    EXPECT_FALSE(r.refreshing(due + kT.tRfc));
    // Banks blocked during tRFC.
    EXPECT_FALSE(r.bank(0).canActivate(due + kT.tRfc - 1));
    EXPECT_TRUE(r.bank(0).canActivate(due + kT.tRfc));
    // Next refresh scheduled one tREFI later.
    EXPECT_FALSE(r.refreshDue(due + kT.tRefi - 1));
    EXPECT_TRUE(r.refreshDue(due + kT.tRefi));
}

TEST(Rank, RefreshRequiresAllBanksClosed)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    r.bank(2).activate(0, 9, WordMask::full(), false);
    EXPECT_FALSE(r.canRefresh(kT.tRefi));
    r.bank(2).precharge(kT.tRas);
    // tRP must also have elapsed.
    EXPECT_FALSE(r.canRefresh(kT.tRas + kT.tRp - 1));
    EXPECT_TRUE(r.canRefresh(kT.tRc));
}

TEST(Rank, PowerDownAfterIdleThresholdAndWake)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    for (Cycle t = 0; t < cfg.powerDownThreshold + 1; ++t)
        r.updatePowerState(t, false);
    EXPECT_TRUE(r.poweredDown());
    EXPECT_EQ(r.powerState(cfg.powerDownThreshold + 1),
              RankState::PowerDown);
    // Queued work wakes the rank; tXP gates the next activation.
    const Cycle wake = cfg.powerDownThreshold + 5;
    r.updatePowerState(wake, true);
    EXPECT_FALSE(r.poweredDown());
    EXPECT_FALSE(r.bank(0).canActivate(wake + kT.tXp - 1));
    EXPECT_TRUE(r.bank(0).canActivate(wake + kT.tXp));
}

TEST(Rank, NoPowerDownWhenDisabled)
{
    DramConfig cfg = rankConfig();
    cfg.powerDownEnabled = false;
    Rank r(cfg, 0);
    for (Cycle t = 0; t < 100; ++t)
        r.updatePowerState(t, false);
    EXPECT_FALSE(r.poweredDown());
    EXPECT_EQ(r.powerState(100), RankState::PrechargeStandby);
}

TEST(Rank, PowerStateReflectsOpenBanks)
{
    const DramConfig cfg = rankConfig();
    Rank r(cfg, 0);
    EXPECT_EQ(r.powerState(0), RankState::PrechargeStandby);
    r.bank(1).activate(0, 4, WordMask::full(), false);
    EXPECT_EQ(r.powerState(1), RankState::ActiveStandby);
    EXPECT_FALSE(r.allBanksClosed());
}

} // namespace
} // namespace pra::dram
