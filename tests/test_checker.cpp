/**
 * @file
 * Tests for the independent DDR3 protocol checker — first against
 * hand-built legal and illegal command sequences, then end-to-end: the
 * checker rides along full-system simulations of every scheme and must
 * find no violations in the controller's command stream.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "dram/checker.h"
#include "sim/experiment.h"

namespace pra::dram {
namespace {

const Timing kT{};

DramConfig
oneChannel()
{
    DramConfig cfg;
    cfg.channels = 1;
    return cfg;
}

CheckedCommand
act(Cycle cycle, unsigned rank, unsigned bank, std::uint32_t row,
    double weight = 1.0, bool partial = false)
{
    return {CheckedCommand::Kind::Activate, cycle, rank, bank, row,
            partial, weight, 0};
}

CheckedCommand
rd(Cycle cycle, unsigned rank, unsigned bank)
{
    return {CheckedCommand::Kind::Read, cycle, rank, bank, 0, false, 0.0,
            4};
}

CheckedCommand
wr(Cycle cycle, unsigned rank, unsigned bank)
{
    return {CheckedCommand::Kind::Write, cycle, rank, bank, 0, false, 0.0,
            4};
}

CheckedCommand
pre(Cycle cycle, unsigned rank, unsigned bank)
{
    return {CheckedCommand::Kind::Precharge, cycle, rank, bank, 0, false,
            0.0, 0};
}

TEST(Checker, LegalReadSequenceIsClean)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    c.observe(rd(kT.tRcd, 0, 0));
    c.observe(pre(kT.tRas, 0, 0));
    c.observe(act(kT.tRc, 0, 0, 6));
    EXPECT_TRUE(c.clean()) << c.violations()[0];
    EXPECT_EQ(c.commandsChecked(), 4u);
}

TEST(Checker, EarlyColumnViolatesTrcd)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    c.observe(rd(kT.tRcd - 1, 0, 0));
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("tRCD"), std::string::npos);
}

TEST(Checker, PartialActivationShiftsColumnWindow)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5, 3.7 / 22.2, true));
    c.observe(wr(kT.tRcd, 0, 0));   // One cycle too early under PRA.
    EXPECT_FALSE(c.clean());

    TimingChecker ok(oneChannel());
    ok.observe(act(0, 0, 0, 5, 3.7 / 22.2, true));
    ok.observe(wr(kT.tRcd + kT.praMaskCycles, 0, 0));
    EXPECT_TRUE(ok.clean());
}

TEST(Checker, EarlyPrechargeViolatesTras)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    c.observe(pre(kT.tRas - 1, 0, 0));
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("tRAS"), std::string::npos);
}

TEST(Checker, WriteRecoveryExtendsPrecharge)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    const Cycle w = kT.tRcd;
    c.observe(wr(w, 0, 0));
    c.observe(pre(w + kT.wl + 4 + kT.tWr - 1, 0, 0));
    EXPECT_FALSE(c.clean());
}

TEST(Checker, ActToOpenBankFlagged)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    c.observe(act(100, 0, 0, 6));
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("open bank"), std::string::npos);
}

TEST(Checker, TrrdBetweenRankActivations)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    c.observe(act(kT.tRrd - 1, 0, 1, 5));
    EXPECT_FALSE(c.clean());
}

TEST(Checker, WeightedTrrdAllowsFasterPartialFollowup)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5, 3.7 / 22.2, true));
    c.observe(act(2, 0, 1, 5, 3.7 / 22.2, true));   // Floor gap.
    EXPECT_TRUE(c.clean());
}

TEST(Checker, TfawFifthActivationFlagged)
{
    TimingChecker c(oneChannel());
    Cycle t = 0;
    for (unsigned b = 0; b < 4; ++b) {
        c.observe(act(t, 0, b, 1));
        t += kT.tRrd;
    }
    c.observe(act(t, 0, 4, 1));
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("tFAW"), std::string::npos);
}

TEST(Checker, WeightedTfawAdmitsPartials)
{
    TimingChecker c(oneChannel());
    Cycle t = 0;
    for (unsigned b = 0; b < 8; ++b) {
        c.observe(act(t, 0, b, 1, 3.7 / 22.2, true));
        t += 2;
    }
    EXPECT_TRUE(c.clean());
}

TEST(Checker, TwtrWriteToReadFlagged)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    const Cycle w = kT.tRcd;
    c.observe(wr(w, 0, 0));
    c.observe(rd(w + kT.wl + 4 + kT.tWtr - 1, 0, 0));   // One too early.
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("tWTR"), std::string::npos);

    TimingChecker ok(oneChannel());
    ok.observe(act(0, 0, 0, 5));
    ok.observe(wr(kT.tRcd, 0, 0));
    ok.observe(rd(kT.tRcd + kT.wl + 4 + kT.tWtr, 0, 0));
    EXPECT_TRUE(ok.clean()) << ok.violations()[0];
}

TEST(Checker, TwtrIsPerRank)
{
    // A write on rank 0 does not gate a read on rank 1 (only the tRTRS
    // bus bubble applies across ranks).
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 5));
    c.observe(act(0, 1, 0, 5));
    const Cycle w = kT.tRcd;
    c.observe(wr(w, 0, 0));
    // Read command early w.r.t. tWTR but with its data window clear of
    // the write burst plus the rank-switch bubble.
    const Cycle r = w + kT.wl + 4 + kT.tRtrs - kT.rl();
    c.observe(rd(std::max<Cycle>(r, w + kT.tCcd), 1, 0));
    EXPECT_TRUE(c.clean()) << c.violations()[0];
}

TEST(Checker, ReadToWriteRankSwitchPaysTrtrs)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 1));
    c.observe(act(0, 1, 0, 1));
    c.observe(rd(kT.tRcd, 0, 0));
    // Write on the other rank whose data would start inside the tRTRS
    // bubble after the read burst.
    const Cycle bubble_end = kT.tRcd + kT.rl() + 4 + kT.tRtrs;
    c.observe(wr(bubble_end - 1 - kT.wl, 1, 0));
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("turnaround"), std::string::npos);

    TimingChecker ok(oneChannel());
    ok.observe(act(0, 0, 0, 1));
    ok.observe(act(0, 1, 0, 1));
    ok.observe(rd(kT.tRcd, 0, 0));
    ok.observe(wr(bubble_end - kT.wl, 1, 0));
    EXPECT_TRUE(ok.clean()) << ok.violations()[0];
}

TEST(Checker, DataBusOverlapFlagged)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 1));
    c.observe(act(kT.tRrd, 0, 1, 1));
    c.observe(rd(kT.tRrd + kT.tRcd, 0, 0));
    c.observe(rd(kT.tRrd + kT.tRcd + 2, 0, 1));   // Bursts overlap.
    ASSERT_FALSE(c.clean());
    EXPECT_NE(c.violations()[0].find("data-bus"), std::string::npos);
}

TEST(Checker, RefreshRequiresClosedBanks)
{
    TimingChecker c(oneChannel());
    c.observe(act(0, 0, 0, 1));
    c.observe({CheckedCommand::Kind::Refresh, 10, 0, 0, 0, false, 0.0, 0});
    EXPECT_FALSE(c.clean());
}

TEST(Checker, CommandDuringRefreshFlagged)
{
    TimingChecker c(oneChannel());
    c.observe({CheckedCommand::Kind::Refresh, 0, 0, 0, 0, false, 0.0, 0});
    c.observe(act(kT.tRfc - 1, 0, 0, 1));
    EXPECT_FALSE(c.clean());

    TimingChecker ok(oneChannel());
    ok.observe(
        {CheckedCommand::Kind::Refresh, 0, 0, 0, 0, false, 0.0, 0});
    ok.observe(act(kT.tRfc, 0, 0, 1));
    EXPECT_TRUE(ok.clean());
}

/**
 * End-to-end: run the full platform with the checker attached for every
 * scheme and policy; the controller's command stream must be violation
 * free.
 */
class CheckerEndToEnd
    : public ::testing::TestWithParam<std::tuple<const SchemeModel *, PagePolicy>>
{
};

TEST_P(CheckerEndToEnd, FullSimulationIsProtocolClean)
{
    const auto [scheme, policy] = GetParam();
    sim::SystemConfig cfg =
        sim::makeConfig({scheme, policy, false});
    cfg.dram.enableChecker = true;
    cfg.caches.l2 = cache::CacheParams{256 * 1024, 8, kLineBytes};
    cfg.warmupOpsPerCore = 5000;
    cfg.targetInstructions = 80'000;

    const workloads::Mix mix{"mix", {"GUPS", "lbm", "em3d", "mcf"}};
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned i = 0; i < mix.apps.size(); ++i)
        gens.push_back(workloads::makeGenerator(mix.apps[i], i + 1));
    sim::System system(cfg, std::move(gens));
    system.run();

    std::uint64_t checked = 0;
    for (unsigned ch = 0; ch < system.dram().numChannels(); ++ch) {
        const TimingChecker *checker =
            system.dram().channel(ch).checker();
        ASSERT_NE(checker, nullptr);
        checked += checker->commandsChecked();
        EXPECT_TRUE(checker->clean())
            << "channel " << ch << ": " << checker->violations()[0];
    }
    EXPECT_GT(checked, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CheckerEndToEnd,
    ::testing::Combine(
        ::testing::Values(&schemeByName("baseline"), &schemeByName("fga"), &schemeByName("halfdram"),
                          &schemeByName("pra"), &schemeByName("halfdram+pra")),
        ::testing::Values(PagePolicy::RelaxedClose,
                          PagePolicy::RestrictedClose)));

} // namespace
} // namespace pra::dram
