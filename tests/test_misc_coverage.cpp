/**
 * @file
 * Additional coverage: SDS chip masks through the DramSystem front
 * door, latency aggregation, refresh staggering, Summary merging,
 * custom CACTI components, open-page config parsing, and core
 * instruction accounting edge cases.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "dram/dram_system.h"
#include "dram/presets.h"
#include "sim/config_io.h"
#include "workloads/factory.h"

namespace pra {
namespace {

TEST(DramSystemSds, ChipMaskFlowsThroughEnqueue)
{
    dram::DramConfig cfg;
    cfg.scheme = &schemeByName("sds");
    cfg.powerDownEnabled = false;
    dram::DramSystem sys(cfg);
    ASSERT_TRUE(sys.enqueue(0x4000, true, WordMask::full(), 0, 1,
                            /*chip_mask=*/0b00001111));
    sys.drain();
    const auto counts = sys.energyCounts();
    EXPECT_EQ(counts.sdsActs, 1u);
    EXPECT_EQ(counts.sdsChipsActivated, 4u);
    EXPECT_EQ(counts.writeWordsDriven, 4u);
}

TEST(DramSystemSds, ReadsIgnoreChipMask)
{
    dram::DramConfig cfg;
    cfg.scheme = &schemeByName("sds");
    cfg.powerDownEnabled = false;
    dram::DramSystem sys(cfg);
    ASSERT_TRUE(sys.enqueue(0x4000, false, WordMask::full(), 0, 1,
                            /*chip_mask=*/0b00000001));
    sys.drain();
    const auto counts = sys.energyCounts();
    EXPECT_EQ(counts.sdsActs, 0u);
    EXPECT_EQ(counts.acts[7], 1u);   // Full-row read activation.
}

TEST(DramSystem, ReadLatencyAggregatedAcrossChannels)
{
    dram::DramConfig cfg;
    cfg.powerDownEnabled = false;
    dram::DramSystem sys(cfg);
    // One read per channel.
    for (unsigned ch = 0; ch < 2; ++ch) {
        dram::DecodedAddr loc;
        loc.channel = ch;
        loc.row = 9;
        ASSERT_TRUE(sys.enqueue(sys.mapper().encode(loc), false,
                                WordMask::full(), 0, ch));
    }
    sys.drain();
    const auto agg = sys.aggregateStats();
    EXPECT_EQ(agg.readLatency.samples(), 2u);
    EXPECT_GE(agg.readLatency.min(),
              cfg.timing.rl() + cfg.timing.burstCycles);
}

TEST(Summary, MergeCombinesStreams)
{
    Summary a, b, empty;
    a.record(1.0);
    a.record(3.0);
    b.record(10.0);
    a.merge(b);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_NEAR(a.mean(), 14.0 / 3.0, 1e-12);
    // Merging an empty summary is a no-op; merging INTO an empty one
    // copies.
    a.merge(empty);
    EXPECT_EQ(a.samples(), 3u);
    Summary c;
    c.merge(a);
    EXPECT_EQ(c.samples(), 3u);
}

TEST(Rank, RefreshDeadlinesAreStaggeredAcrossRanks)
{
    dram::DramConfig cfg;
    dram::Rank r0(cfg, 0), r1(cfg, 1);
    // Rank 0 becomes due strictly before rank 1.
    Cycle due0 = 0, due1 = 0;
    for (Cycle t = 0; t < 3 * cfg.timing.tRefi; ++t) {
        if (!due0 && r0.refreshDue(t))
            due0 = t;
        if (!due1 && r1.refreshDue(t))
            due1 = t;
        if (due0 && due1)
            break;
    }
    EXPECT_NE(due0, due1);
}

TEST(Cacti, CustomComponentsPropagate)
{
    power::ActEnergyComponents e;
    e.localBitline = 30.0;   // Future device: double the bitline energy.
    const power::CactiModel m(power::DieArea{}, e);
    EXPECT_GT(m.fullRowEnergy(), 480.0);
    // The shared floor shrinks in relative terms -> deeper 1/8 saving.
    const power::CactiModel stock;
    EXPECT_LT(m.scaleFactor(1), stock.scaleFactor(1));
}

TEST(ConfigIo, OpenPagePolicyParses)
{
    sim::SystemConfig cfg;
    sim::applyConfigLine("policy = openpage", cfg);
    EXPECT_EQ(cfg.dram.policy, dram::PagePolicy::OpenPage);
    EXPECT_NE(sim::dumpConfig(cfg).find("policy = openpage"),
              std::string::npos);
}

TEST(Ddr3Preset, MatchesDefaults)
{
    const dram::DramConfig cfg = dram::ddr3_1600();
    EXPECT_EQ(cfg.banksPerRank, 8u);
    EXPECT_EQ(cfg.timing.bankGroups, 1u);
    EXPECT_EQ(cfg.timing.tRcd, 11u);
    EXPECT_DOUBLE_EQ(cfg.power.tCkNs, 1.25);
}

TEST(Workloads, ExtendedNamesDisjointFromSuite)
{
    const auto &suite = workloads::benchmarkNames();
    for (const auto &name : workloads::extendedWorkloadNames()) {
        EXPECT_EQ(std::find(suite.begin(), suite.end(), name),
                  suite.end());
    }
}

TEST(ControllerStats, HitRateHelpers)
{
    dram::ControllerStats s;
    EXPECT_DOUBLE_EQ(s.readHitRate(), 0.0);
    s.readRowHits = 3;
    s.readRowMisses = 1;
    s.writeRowHits = 1;
    s.writeRowMisses = 3;
    EXPECT_DOUBLE_EQ(s.readHitRate(), 0.75);
    EXPECT_DOUBLE_EQ(s.writeHitRate(), 0.25);
    EXPECT_DOUBLE_EQ(s.totalHitRate(), 0.5);
}

TEST(OverheadDocs, PraLatchStorageIsSixtyFourBitsPerRank)
{
    // Section 4.2: "only 64 bits per rank (an 8-bit PRA mask for each of
    //  8 banks)". Derive it from the configuration rather than quoting.
    const dram::DramConfig cfg;
    EXPECT_EQ(cfg.banksPerRank * kMatGroups, 64u);
}

} // namespace
} // namespace pra
