/**
 * @file
 * Tests for the cross-layer invariant auditor (src/verify) — first at
 * the unit level with hand-fed event streams, then end-to-end: audited
 * full-system runs of every scheme must be violation free, and a
 * deliberately injected mask-widening fault in the controller
 * (DramConfig::auditFaultWidenAct) must be caught by the PRA-mask
 * invariant with a ring-buffer report.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "verify/auditor.h"

namespace pra::verify {
namespace {

AuditConfig
praAuditConfig()
{
    dram::DramConfig d;
    d.scheme = &schemeByName("pra");
    AuditConfig ac;
    ac.scheme = d.scheme;
    ac.channels = 1;
    ac.ranksPerChannel = d.ranksPerChannel;
    ac.banksPerRank = d.banksPerRank;
    ac.power = d.power;
    ac.chipsPerRank = d.chipsPerRank;
    ac.eccChipsPerRank = d.eccChipsPerRank;
    ac.configFingerprint = 0xdeadbeef;
    return ac;
}

DramCommandEvent
actEvent(const AuditConfig &ac, bool for_write, WordMask dirty)
{
    DramCommandEvent ev;
    ev.kind = DramCommandEvent::Kind::Activate;
    ev.cycle = 100;
    ev.row = 7;
    ev.addr = 0x1000;
    ev.forWrite = for_write;
    ev.mask = ac.scheme->actMask(for_write, dirty);
    ev.partial = ac.scheme->needsMaskCycle(for_write, dirty);
    ev.granularity = ac.scheme->actGranularity(for_write, dirty);
    ev.weight = ac.scheme->actWeight(ev.granularity, ac.power);
    return ev;
}

TEST(Auditor, CleanManualWriteSequence)
{
    const AuditConfig ac = praAuditConfig();
    Auditor a(ac);

    const WordMask dirty{0x03};
    a.onWriteEnqueue({50, 0, 0, 0, 7, 0x1000, dirty, 0xff});
    a.onCommand(actEvent(ac, true, dirty));

    DramCommandEvent col;
    col.kind = DramCommandEvent::Kind::Write;
    col.cycle = 120;
    col.row = 7;
    col.addr = 0x1000;
    col.forWrite = true;
    col.mask = dirty;   // Words driven.
    col.need = dirty;   // MAT footprint.
    a.onCommand(col);

    DramCommandEvent pre;
    pre.kind = DramCommandEvent::Kind::Precharge;
    pre.cycle = 160;
    a.onCommand(pre);

    EXPECT_TRUE(a.clean()) << a.report();
    EXPECT_EQ(a.eventsAudited(), 4u);
}

TEST(Auditor, PartialReadActivationFlagged)
{
    const AuditConfig ac = praAuditConfig();
    Auditor a(ac);

    // A read activation that opened only half the MAT groups: PRA must
    // never do this (reads are full-row by construction).
    DramCommandEvent ev = actEvent(ac, false, WordMask::full());
    ev.mask = WordMask{0x0f};
    a.onCommand(ev);

    ASSERT_FALSE(a.clean());
    bool found = false;
    for (const auto &v : a.violations())
        found = found || v.find("read-full-row") != std::string::npos;
    EXPECT_TRUE(found) << a.report();
}

TEST(Auditor, WidenedWriteActivationFlagged)
{
    const AuditConfig ac = praAuditConfig();
    Auditor a(ac);

    const WordMask dirty{0x03};
    a.onWriteEnqueue({50, 0, 0, 0, 7, 0x1000, dirty, 0xff});
    DramCommandEvent ev = actEvent(ac, true, dirty);
    ev.mask |= WordMask{0x80};   // Controller opened a MAT it shouldn't.
    a.onCommand(ev);

    ASSERT_FALSE(a.clean());
    EXPECT_NE(a.violations()[0].find("mask-conformance"),
              std::string::npos);
    // The report carries the evidence: invariant table, the offending
    // masks, and the pre-violation ring buffer.
    const std::string report = a.report();
    EXPECT_NE(report.find("ring buffer"), std::string::npos);
    EXPECT_NE(report.find("config fingerprint"), std::string::npos);
    EXPECT_NE(report.find("0xdeadbeef"), std::string::npos);
}

TEST(Auditor, ColumnOutsideOpenMaskFlagged)
{
    const AuditConfig ac = praAuditConfig();
    Auditor a(ac);

    const WordMask dirty{0x03};
    a.onWriteEnqueue({50, 0, 0, 0, 7, 0x1000, dirty, 0xff});
    a.onCommand(actEvent(ac, true, dirty));

    DramCommandEvent col;
    col.kind = DramCommandEvent::Kind::Write;
    col.cycle = 120;
    col.row = 7;
    col.addr = 0x1000;
    col.forWrite = true;
    col.mask = WordMask{0x0c};
    col.need = WordMask{0x0c};   // Outside the 0x03 activation.
    a.onCommand(col);

    ASSERT_FALSE(a.clean());
    bool found = false;
    for (const auto &v : a.violations())
        found = found || v.find("within-open-mask") != std::string::npos;
    EXPECT_TRUE(found) << a.report();
}

TEST(Auditor, CommandInsideQuiescentWindowFlagged)
{
    const AuditConfig ac = praAuditConfig();
    Auditor a(ac);

    a.beginQuiescentWindow(1000, 2000);
    a.onCommand(actEvent(ac, false, WordMask::full()));
    a.endQuiescentWindow();

    ASSERT_FALSE(a.clean());
    bool found = false;
    for (const auto &v : a.violations())
        found = found || v.find("skip-quiescent") != std::string::npos;
    EXPECT_TRUE(found) << a.report();
}

TEST(Auditor, FingerprintMismatchFlagged)
{
    Auditor a(praAuditConfig());
    a.checkFingerprint("unit test", 1, 1);
    EXPECT_TRUE(a.clean());
    a.checkFingerprint("unit test", 1, 2);
    ASSERT_FALSE(a.clean());
    EXPECT_NE(a.violations()[0].find("fork-fingerprint"),
              std::string::npos);
}

// --- PRAC count conservation (DESIGN.md §13) --------------------------

AuditConfig
pracOnConfig()
{
    // A tiny CAM so the Misra-Gries eviction path is reachable in a
    // handful of events.
    AuditConfig ac = praAuditConfig();
    ac.pracEnabled = true;
    ac.pracCamEntries = 2;
    return ac;
}

DramCommandEvent
pracAct(const AuditConfig &ac, std::uint32_t row, std::uint64_t tracked,
        Cycle cycle)
{
    DramCommandEvent ev = actEvent(ac, false, WordMask::full());
    ev.cycle = cycle;
    ev.row = row;
    ev.pracTracked = tracked;
    return ev;
}

DramCommandEvent
preEvent(Cycle cycle)
{
    DramCommandEvent ev;
    ev.kind = DramCommandEvent::Kind::Precharge;
    ev.cycle = cycle;
    return ev;
}

DramCommandEvent
rfmEvent(Cycle cycle, std::uint32_t row, std::uint64_t cleared,
         std::uint64_t tracked)
{
    DramCommandEvent ev;
    ev.kind = DramCommandEvent::Kind::Rfm;
    ev.cycle = cycle;
    ev.row = row;
    ev.pracCleared = cleared;
    ev.pracTracked = tracked;
    return ev;
}

bool
mentions(const Auditor &a, const char *needle)
{
    for (const auto &v : a.violations()) {
        if (v.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(Auditor, PracConservationCleanActRfmSequence)
{
    // Hammer one row twice, then mitigate it: the controller's reported
    // tracked sums (1, 2, then 0 after the RFM clears 2) satisfy
    // trackedSum == acts - mitigated at every step.
    const AuditConfig ac = pracOnConfig();
    Auditor a(ac);
    a.onCommand(pracAct(ac, 7, 1, 100));
    a.onCommand(preEvent(110));
    a.onCommand(pracAct(ac, 7, 2, 120));
    a.onCommand(preEvent(130));
    a.onCommand(rfmEvent(150, 7, 2, 0));
    EXPECT_TRUE(a.clean()) << a.report();
}

TEST(Auditor, PracDroppedCountFlagged)
{
    // The drop_count fault shape: an ACT the controller never counted.
    // Conservation expects tracked sum 1 after the first ACT; reporting
    // 0 must trip at that very event.
    const AuditConfig ac = pracOnConfig();
    Auditor a(ac);
    a.onCommand(pracAct(ac, 7, 0, 100));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(mentions(a, "count-conservation")) << a.report();
    EXPECT_TRUE(mentions(a, "conservation expects 1")) << a.report();
}

TEST(Auditor, PracRfmVictimMismatchFlagged)
{
    // Row 7 is twice as hot as row 9; an RFM claiming to have mitigated
    // row 9 disagrees with the replica's hottest-entry selection.
    const AuditConfig ac = pracOnConfig();
    Auditor a(ac);
    a.onCommand(pracAct(ac, 7, 1, 100));
    a.onCommand(preEvent(110));
    a.onCommand(pracAct(ac, 7, 2, 120));
    a.onCommand(preEvent(130));
    a.onCommand(pracAct(ac, 9, 3, 140));
    a.onCommand(preEvent(150));
    a.onCommand(rfmEvent(170, 9, 1, 2));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(mentions(a, "hottest entry")) << a.report();
}

TEST(Auditor, PracCamEvictionInheritsCountAndConserves)
{
    // Three distinct rows overflow the 2-entry CAM: the eviction
    // inherits the coldest count (over-approximating the newcomer, never
    // undercounting), so the tracked sum still rises by exactly one per
    // ACT and conservation holds throughout — including a return of the
    // evicted row.
    const AuditConfig ac = pracOnConfig();
    Auditor a(ac);
    std::uint64_t tracked = 0;
    Cycle cycle = 100;
    for (std::uint32_t row : {1u, 2u, 3u, 1u}) {
        a.onCommand(pracAct(ac, row, ++tracked, cycle));
        a.onCommand(preEvent(cycle + 10));
        cycle += 20;
    }
    EXPECT_TRUE(a.clean()) << a.report();
}

TEST(Auditor, RfmWithPracDisabledFlagged)
{
    Auditor a(praAuditConfig());
    a.onCommand(rfmEvent(100, 7, 1, 0));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(mentions(a, "PRAC disabled")) << a.report();
}

TEST(Auditor, RfmWithNothingTrackedFlagged)
{
    const AuditConfig ac = pracOnConfig();
    Auditor a(ac);
    a.onCommand(rfmEvent(100, 7, 0, 0));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(mentions(a, "no tracked activation counts"))
        << a.report();
}

// --- End-to-end -------------------------------------------------------

sim::SystemConfig
smallConfig(const SchemeModel *scheme, bool dbi)
{
    sim::SystemConfig cfg =
        sim::makeConfig({scheme, dram::PagePolicy::RelaxedClose, dbi});
    cfg.enableAudit = true;
    cfg.caches.l2 = cache::CacheParams{256 * 1024, 8, kLineBytes};
    cfg.warmupOpsPerCore = 3000;
    cfg.targetInstructions = 40'000;
    // Scan densely enough that small runs exercise the coherence scan.
    cfg.auditScanStride = 1024;
    return cfg;
}

sim::RunResult
runAudited(const sim::SystemConfig &cfg, const sim::System **out_sys,
           std::unique_ptr<sim::System> &holder)
{
    const workloads::Mix mix{"mix", {"GUPS", "lbm", "em3d", "mcf"}};
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned i = 0; i < mix.apps.size(); ++i)
        gens.push_back(workloads::makeGenerator(mix.apps[i], i + 1));
    holder = std::make_unique<sim::System>(cfg, std::move(gens));
    if (out_sys)
        *out_sys = holder.get();
    return holder->run();
}

TEST(AuditorEndToEnd, AuditedRunsAreCleanAcrossSchemes)
{
    const struct
    {
        const SchemeModel *scheme;
        bool dbi;
    } points[] = {
        {&schemeByName("baseline"), false}, {&schemeByName("fga"), false},
        {&schemeByName("halfdram"), false}, {&schemeByName("pra"), false},
        {&schemeByName("pra"), true},       {&schemeByName("halfdram+pra"), true},
        {&schemeByName("sds"), false},      {&schemeByName("sectored"), false},
        {&schemeByName("pra_spec_read"), false},
        {&schemeByName("pra_spec_read"), true},
    };
    for (const auto &p : points) {
        SCOPED_TRACE(std::string(p.scheme->displayName()) + std::string(p.dbi ? "/dbi"
                                                              : ""));
        std::unique_ptr<sim::System> sys;
        const sim::System *view = nullptr;
        runAudited(smallConfig(p.scheme, p.dbi), &view, sys);
        ASSERT_NE(view->auditor(), nullptr);
        EXPECT_TRUE(view->auditor()->clean()) << view->auditor()->report();
        EXPECT_GT(view->auditor()->eventsAudited(), 1000u);
        EXPECT_GT(view->auditor()->scansRun(), 0u);
    }
}

TEST(AuditorEndToEnd, PracRunAuditedCleanWithRealRfms)
{
    // An aggressive PRAC point (threshold 4, 2-entry CAM) so the run
    // issues real RFMs; the conservation invariant then audits every
    // ACT and every mitigation online against the replayed CAM.
    sim::SystemConfig cfg = smallConfig(&schemeByName("pra"), false);
    cfg.dram.pracEnabled = true;
    cfg.dram.disturbanceThreshold = 4;
    cfg.dram.pracCamEntries = 2;
    cfg.dram.pracRecoveryWindow = 4096;
    std::unique_ptr<sim::System> sys;
    const sim::System *view = nullptr;
    const sim::RunResult res = runAudited(cfg, &view, sys);
    EXPECT_GT(res.dramStats.rfms, 0u);
    ASSERT_NE(view->auditor(), nullptr);
    EXPECT_TRUE(view->auditor()->clean()) << view->auditor()->report();
}

TEST(AuditorEndToEnd, InjectedMaskWideningIsCaught)
{
    // The acceptance-criteria fault drill: a controller bug that widens
    // every partial activation by one MAT group must be caught by the
    // PRA mask-conformance invariant, with the ring-buffer report.
    sim::SystemConfig cfg = smallConfig(&schemeByName("pra"), false);
    cfg.dram.auditFaultWidenAct = 0x80;

    std::unique_ptr<sim::System> sys;
    const sim::System *view = nullptr;
    runAudited(cfg, &view, sys);

    ASSERT_NE(view->auditor(), nullptr);
    ASSERT_FALSE(view->auditor()->clean());
    const auto &stats = view->auditor()->invariants();
    const auto &mask_stat =
        stats[static_cast<std::size_t>(Invariant::ActMaskConformance)];
    EXPECT_GT(mask_stat.violations, 0u);

    const std::string report = view->auditor()->report();
    EXPECT_NE(report.find("dram.act.mask-conformance"), std::string::npos);
    EXPECT_NE(report.find("ring buffer"), std::string::npos);
    EXPECT_NE(report.find("config fingerprint"), std::string::npos);
}

TEST(AuditorEndToEnd, WidenedReadActivationCaughtUnderSpeculativeReads)
{
    // Read-side drill for the same fault hook: under a partial-reads
    // scheme a covertly widened read ACT is neither the speculative
    // read mask nor the full-row fallback, so the repurposed
    // read-activation invariant must flag it.
    sim::SystemConfig cfg = smallConfig(&schemeByName("pra_spec_read"), false);
    cfg.dram.auditFaultWidenAct = 0x80;

    std::unique_ptr<sim::System> sys;
    const sim::System *view = nullptr;
    runAudited(cfg, &view, sys);

    ASSERT_NE(view->auditor(), nullptr);
    ASSERT_FALSE(view->auditor()->clean());
    const auto &read_stat = view->auditor()->invariants()
        [static_cast<std::size_t>(Invariant::ReadFullRow)];
    EXPECT_GT(read_stat.violations, 0u);
    EXPECT_NE(view->auditor()->report().find("speculative read mask"),
              std::string::npos);
}

/** Scoped environment override (tests are single-threaded). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

TEST(AuditorEndToEnd, ReplayModeMatchesFastPathBitExactly)
{
    const sim::SystemConfig cfg = smallConfig(&schemeByName("pra"), true);

    std::unique_ptr<sim::System> fast_sys;
    const sim::RunResult fast = runAudited(cfg, nullptr, fast_sys);

    EnvGuard replay("PRA_AUDIT_REPLAY", "1");
    std::unique_ptr<sim::System> slow_sys;
    const sim::System *slow_view = nullptr;
    const sim::RunResult slow = runAudited(cfg, &slow_view, slow_sys);

    ASSERT_NE(slow_view->auditor(), nullptr);
    EXPECT_TRUE(slow_view->auditor()->clean())
        << slow_view->auditor()->report();
    const auto &skip_stat = slow_view->auditor()->invariants()
        [static_cast<std::size_t>(Invariant::SkipQuiescent)];
    EXPECT_GT(skip_stat.checks, 0u);

    // Replaying the skipped windows through the slow path must not
    // change a single bit of the result.
    EXPECT_EQ(fast.dramCycles, slow.dramCycles);
    EXPECT_EQ(fast.ipc, slow.ipc);
    EXPECT_EQ(fast.memReads, slow.memReads);
    EXPECT_EQ(fast.memWrites, slow.memWrites);
    EXPECT_TRUE(fast.energy == slow.energy);
    EXPECT_EQ(fast.totalEnergyNj, slow.totalEnergyNj);
    EXPECT_EQ(fast.avgPowerMw, slow.avgPowerMw);
}

TEST(AuditorEndToEnd, ForkFingerprintAudited)
{
    EnvGuard replay("PRA_AUDIT_REPLAY", "1");
    const sim::SystemConfig cfg = smallConfig(&schemeByName("pra"), false);

    const workloads::Mix mix{"mix", {"GUPS", "lbm", "em3d", "mcf"}};
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned i = 0; i < mix.apps.size(); ++i)
        gens.push_back(workloads::makeGenerator(mix.apps[i], i + 1));
    sim::System warm(cfg, std::move(gens));
    const sim::WarmSnapshot snap = warm.exportWarmSnapshot();

    sim::System fork(cfg, snap);
    fork.run();

    ASSERT_NE(fork.auditor(), nullptr);
    EXPECT_TRUE(fork.auditor()->clean()) << fork.auditor()->report();
    const auto &fp_stat = fork.auditor()->invariants()
        [static_cast<std::size_t>(Invariant::ForkFingerprint)];
    EXPECT_GT(fp_stat.checks, 0u);
}

} // namespace
} // namespace pra::verify
