/**
 * @file
 * Tests for RowBufferState: the partial-row probe semantics including
 * the paper's false-row-buffer-hit definition (Section 5.2.1).
 */
#include <gtest/gtest.h>

#include "core/row_buffer.h"

namespace pra {
namespace {

TEST(RowBuffer, StartsClosed)
{
    RowBufferState rb;
    EXPECT_FALSE(rb.isOpen());
    EXPECT_EQ(rb.probe(5, WordMask::full()), RowProbe::Closed);
    EXPECT_FALSE(rb.conventionalHit(5));
}

TEST(RowBuffer, FullActivationHitsEverything)
{
    RowBufferState rb;
    rb.activate(7, WordMask::full());
    EXPECT_TRUE(rb.isOpen());
    EXPECT_FALSE(rb.isPartial());
    EXPECT_EQ(rb.probe(7, WordMask::full()), RowProbe::Hit);
    EXPECT_EQ(rb.probe(7, WordMask::single(3)), RowProbe::Hit);
    EXPECT_EQ(rb.probe(8, WordMask::single(3)), RowProbe::Conflict);
}

TEST(RowBuffer, PaperFalseHitExample)
{
    // "if the PRA mask is 11000000b and thus local rows of the first and
    //  second groups of MATs are currently open, a posterior read request
    //  that targets the partially opened row will result in a false row
    //  buffer hit"
    RowBufferState rb;
    rb.activate(42, WordMask(0b00000011));   // Words 0 and 1 open.
    EXPECT_TRUE(rb.isPartial());
    EXPECT_EQ(rb.probe(42, WordMask::full()), RowProbe::FalseHit);
    EXPECT_TRUE(rb.conventionalHit(42));
}

TEST(RowBuffer, PaperWriteFalseHitExample)
{
    // "If currently opened row is maintained by 10000001b PRA mask, an
    //  incoming write request that needs a local row of the second group
    //  of MATs will result in a false hit."
    RowBufferState rb;
    rb.activate(10, WordMask(0b10000001));
    EXPECT_EQ(rb.probe(10, WordMask::single(1)), RowProbe::FalseHit);
    // A write inside the open footprint hits.
    EXPECT_EQ(rb.probe(10, WordMask::single(0)), RowProbe::Hit);
    EXPECT_EQ(rb.probe(10, WordMask::single(7)), RowProbe::Hit);
    EXPECT_EQ(rb.probe(10, WordMask(0b10000001)), RowProbe::Hit);
}

TEST(RowBuffer, CloseResetsState)
{
    RowBufferState rb;
    rb.activate(3, WordMask::full());
    rb.close();
    EXPECT_FALSE(rb.isOpen());
    EXPECT_EQ(rb.probe(3, WordMask::full()), RowProbe::Closed);
    EXPECT_FALSE(rb.conventionalHit(3));
}

TEST(RowBuffer, ReactivationReplacesMask)
{
    RowBufferState rb;
    rb.activate(3, WordMask::single(0));
    rb.close();
    rb.activate(3, WordMask::single(7));
    EXPECT_EQ(rb.probe(3, WordMask::single(7)), RowProbe::Hit);
    EXPECT_EQ(rb.probe(3, WordMask::single(0)), RowProbe::FalseHit);
}

/** Property sweep over open-mask x need-mask combinations. */
class RowBufferProbe
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RowBufferProbe, ProbeMatchesSetAlgebra)
{
    const auto [open_bits, need_bits] = GetParam();
    if (open_bits == 0)
        return;   // An activation always opens at least one group.
    RowBufferState rb;
    const WordMask open(static_cast<std::uint8_t>(open_bits));
    const WordMask need(static_cast<std::uint8_t>(need_bits));
    rb.activate(100, open);

    const RowProbe same_row = rb.probe(100, need);
    if ((open.bits() & need.bits()) == need.bits())
        EXPECT_EQ(same_row, RowProbe::Hit);
    else
        EXPECT_EQ(same_row, RowProbe::FalseHit);

    EXPECT_EQ(rb.probe(101, need), RowProbe::Conflict);
}

INSTANTIATE_TEST_SUITE_P(
    MaskAlgebra, RowBufferProbe,
    ::testing::Combine(::testing::Values(0x01, 0x03, 0x81, 0x0f, 0xff,
                                         0x55, 0x80),
                       ::testing::Values(0x00, 0x01, 0x02, 0x80, 0x81,
                                         0xff, 0x55, 0x20)));

} // namespace
} // namespace pra
