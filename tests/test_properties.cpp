/**
 * @file
 * Cross-cutting property tests:
 *  - PRA degenerates to the conventional baseline, cycle-exactly, when
 *    every writeback is fully dirty (the strongest regression guard on
 *    the partial-activation plumbing);
 *  - read-latency floors hold for every completion in randomized runs;
 *  - the protocol checker stays clean under randomized (but legal)
 *    timing parameter variations — a fuzz of the controller against its
 *    independent shadow implementation.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/experiment.h"

namespace pra {
namespace {

/** GUPS variant whose stores dirty the full line. */
class FullLineGups : public cpu::Generator
{
  public:
    explicit FullLineGups(std::uint64_t seed) : rng_(seed) {}

    cpu::MemOp
    next() override
    {
        cpu::MemOp op;
        if (pending_) {
            pending_ = false;
            op.gap = 1;
            op.isWrite = true;
            op.addr = current_;
            op.bytes = ByteMask::full();
            return op;
        }
        current_ = rng_.below((1ull << 26) / kLineBytes) * kLineBytes;
        op.gap = 10;
        op.addr = current_;
        pending_ = true;
        return op;
    }

    const char *name() const override { return "gups-full"; }

    std::unique_ptr<cpu::Generator>
    clone() const override
    {
        return std::make_unique<FullLineGups>(*this);
    }

  private:
    Rng rng_;
    bool pending_ = false;
    Addr current_ = 0;
};

sim::SystemConfig
smallConfig(const SchemeModel *scheme)
{
    sim::SystemConfig cfg = sim::makeConfig(
        {scheme, dram::PagePolicy::RelaxedClose, false});
    cfg.caches.l2 = cache::CacheParams{256 * 1024, 8, kLineBytes};
    cfg.warmupOpsPerCore = 5000;
    cfg.targetInstructions = 100'000;
    return cfg;
}

sim::RunResult
runFullLine(const SchemeModel *scheme)
{
    std::vector<std::unique_ptr<cpu::Generator>> gens;
    for (unsigned c = 0; c < 4; ++c)
        gens.push_back(std::make_unique<FullLineGups>(c + 1));
    sim::System system(smallConfig(scheme), std::move(gens));
    return system.run();
}

TEST(Equivalence, PraWithFullMasksIsCycleExactBaseline)
{
    // When no line is partially dirty, PRA must not change a single
    // cycle or picojoule relative to the conventional system.
    const sim::RunResult base = runFullLine(&schemeByName("baseline"));
    const sim::RunResult pra = runFullLine(&schemeByName("pra"));
    EXPECT_EQ(base.dramCycles, pra.dramCycles);
    EXPECT_EQ(base.ipc, pra.ipc);
    EXPECT_DOUBLE_EQ(base.totalEnergyNj, pra.totalEnergyNj);
    EXPECT_EQ(base.dramStats.readRowHits, pra.dramStats.readRowHits);
    EXPECT_EQ(pra.dramStats.readFalseHits, 0u);
    EXPECT_EQ(pra.dramStats.writeFalseHits, 0u);
    EXPECT_EQ(pra.dramStats.actGranularity.count(8),
              pra.dramStats.actGranularity.total());
}

TEST(Equivalence, SdsWithAllBytesChangedIsCycleExactBaseline)
{
    const sim::RunResult base = runFullLine(&schemeByName("baseline"));
    const sim::RunResult sds = runFullLine(&schemeByName("sds"));
    EXPECT_EQ(base.dramCycles, sds.dramCycles);
    EXPECT_DOUBLE_EQ(base.totalEnergyNj, sds.totalEnergyNj);
}

TEST(Properties, ReadLatencyFloorHolds)
{
    dram::DramConfig cfg;
    cfg.powerDownEnabled = false;
    dram::DramSystem sys(cfg);
    Rng rng(31);
    const Cycle floor = cfg.timing.rl() + cfg.timing.burstCycles;
    std::uint64_t completions = 0;
    for (int i = 0; i < 30000; ++i) {
        const Addr a = rng.below(sys.mapper().capacityBytes());
        const bool wr = rng.chance(0.3);
        if (sys.canAccept(a, wr)) {
            sys.enqueue(a, wr, WordMask::single(rng.below(8)), 0,
                        static_cast<std::uint64_t>(i));
        }
        sys.tick();
        for (const auto &c : sys.drainCompletions()) {
            ++completions;
            // Forwarded reads complete in one cycle; everything else
            // must pay at least CAS latency plus the burst.
            if (c.latency != 1) {
                ASSERT_GE(c.latency, floor);
            }
        }
    }
    EXPECT_GT(completions, 1000u);
}

/** Randomized legal timing sets must keep the checker clean. */
class TimingFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingFuzz, CheckerCleanUnderTimingVariants)
{
    Rng rng(1000 + GetParam());
    dram::DramConfig cfg;
    cfg.channels = 1;
    cfg.powerDownEnabled = false;
    cfg.enableChecker = true;
    cfg.scheme = rng.chance(0.5) ? &schemeByName("pra") : &schemeByName("baseline");

    // Randomize timings within legal-looking envelopes; keep the
    // derived identity tRC = tRAS + tRP.
    dram::Timing &t = cfg.timing;
    t.tRcd = 8 + static_cast<unsigned>(rng.below(8));
    t.tRp = 8 + static_cast<unsigned>(rng.below(8));
    t.tRas = 20 + static_cast<unsigned>(rng.below(16));
    t.tRc = t.tRas + t.tRp;
    t.tRrd = 3 + static_cast<unsigned>(rng.below(5));
    t.tFaw = 4 * t.tRrd + static_cast<unsigned>(rng.below(8));
    t.tWr = 8 + static_cast<unsigned>(rng.below(8));
    t.tRtp = 4 + static_cast<unsigned>(rng.below(4));
    t.tWtr = 4 + static_cast<unsigned>(rng.below(4));
    t.praMaskCycles = static_cast<unsigned>(rng.below(3));

    dram::AddressMapper mapper(cfg);
    dram::MemoryController mc(cfg, 0);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        const bool wr = rng.chance(0.4);
        if (mc.canAccept(wr)) {
            dram::DecodedAddr loc;
            loc.rank = static_cast<unsigned>(rng.below(2));
            loc.bank = static_cast<unsigned>(rng.below(8));
            loc.row = static_cast<std::uint32_t>(rng.below(128));
            loc.col = static_cast<unsigned>(rng.below(128));
            dram::Request req;
            req.addr = mapper.encode(loc);
            req.isWrite = wr;
            req.mask = WordMask::single(rng.below(8));
            req.loc = loc;
            req.tag = static_cast<std::uint64_t>(i);
            mc.enqueue(req, now);
        }
        mc.tick(now++);
    }
    ASSERT_NE(mc.checker(), nullptr);
    EXPECT_TRUE(mc.checker()->clean())
        << mc.checker()->violations()[0] << " (scheme "
        << std::string(cfg.scheme->displayName()) << ")";
    EXPECT_GT(mc.checker()->commandsChecked(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(RandomTimings, TimingFuzz,
                         ::testing::Range(0, 20));

TEST(Properties, EnergyMonotonicInGranularityEndToEnd)
{
    // Coarsening PRA's minimum granularity can only increase activation
    // energy.
    double prev = 0.0;
    for (unsigned min_gran : {1u, 2u, 4u, 8u}) {
        sim::SystemConfig cfg = smallConfig(&schemeByName("pra"));
        cfg.dram.minActGranularity = min_gran;
        std::vector<std::unique_ptr<cpu::Generator>> gens;
        for (unsigned c = 0; c < 4; ++c)
            gens.push_back(workloads::makeGenerator("GUPS", c + 1));
        sim::System system(cfg, std::move(gens));
        const sim::RunResult r = system.run();
        const double per_act =
            r.breakdown.actPre / static_cast<double>(r.energy.totalActs());
        EXPECT_GE(per_act, prev * 0.999);
        prev = per_act;
    }
}

} // namespace
} // namespace pra
