/**
 * @file
 * Tests for the experiment harness: configuration points, the alone-IPC
 * cache, and the weighted-speedup metric (paper Eq. 3).
 */
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace pra::sim {
namespace {

TEST(ConfigPoint, KeysDistinguishConfigurations)
{
    const ConfigPoint a{&schemeByName("pra"), dram::PagePolicy::RelaxedClose,
                        false};
    const ConfigPoint b{&schemeByName("pra"), dram::PagePolicy::RestrictedClose,
                        false};
    const ConfigPoint c{&schemeByName("pra"), dram::PagePolicy::RelaxedClose,
                        true};
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_NE(b.key(), c.key());
}

TEST(MakeConfig, AppliesSchemeAndPolicy)
{
    const SystemConfig cfg = makeConfig(
        ConfigPoint{&schemeByName("halfdram"), dram::PagePolicy::RestrictedClose,
                    true});
    EXPECT_EQ(cfg.dram.scheme, &schemeByName("halfdram"));
    EXPECT_EQ(cfg.dram.policy, dram::PagePolicy::RestrictedClose);
    EXPECT_EQ(cfg.dram.mapping, dram::AddrMapping::LineInterleaved);
    EXPECT_TRUE(cfg.enableDbi);

    const SystemConfig relaxed =
        makeConfig(ConfigPoint{&schemeByName("baseline"),
                               dram::PagePolicy::RelaxedClose, false});
    EXPECT_EQ(relaxed.dram.mapping, dram::AddrMapping::RowInterleaved);
    EXPECT_FALSE(relaxed.enableDbi);
}

TEST(AloneIpc, CachedAndPositive)
{
    // Shrink the run so the test stays fast; the cache key must make the
    // second lookup free.
    AloneIpcCache cache;
    const ConfigPoint point{&schemeByName("baseline"),
                            dram::PagePolicy::RelaxedClose, false};
    const double first = cache.get("GUPS", point);
    EXPECT_GT(first, 0.0);
    const double second = cache.get("GUPS", point);
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(WeightedSpeedup, SumsIpcRatios)
{
    // Synthetic check of Eq. 3 with a hand-built result.
    AloneIpcCache cache;
    const ConfigPoint point{&schemeByName("baseline"),
                            dram::PagePolicy::RelaxedClose, false};
    const workloads::Mix mix{"GUPS4", {"GUPS", "GUPS", "GUPS", "GUPS"}};
    const double alone = cache.get("GUPS", point);

    RunResult shared;
    shared.ipc = {alone, alone / 2, alone / 4, alone};
    const double ws = weightedSpeedup(mix, shared, point, cache);
    EXPECT_NEAR(ws, 1.0 + 0.5 + 0.25 + 1.0, 1e-9);
}

TEST(WeightedSpeedup, IdenticalSharedEqualsCoreCountWhenNoContention)
{
    // If every core achieved its alone IPC, WS == 4 by construction.
    AloneIpcCache cache;
    const ConfigPoint point{&schemeByName("baseline"),
                            dram::PagePolicy::RelaxedClose, false};
    const workloads::Mix mix{"GUPS4", {"GUPS", "GUPS", "GUPS", "GUPS"}};
    const double alone = cache.get("GUPS", point);
    RunResult shared;
    shared.ipc = {alone, alone, alone, alone};
    EXPECT_NEAR(weightedSpeedup(mix, shared, point, cache), 4.0, 1e-9);
}

} // namespace
} // namespace pra::sim
