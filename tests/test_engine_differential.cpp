/**
 * @file
 * Tick-vs-event engine differential (DESIGN.md §11).
 *
 * The event-driven engine promises *bit-identical* behaviour to the
 * exhaustive tick engine: skipping to the next wake-up target may never
 * change a scheduling decision, only avoid the idle rounds between
 * decisions. This test pins that contract the hard way: the golden
 * canned request mix is driven through standalone controllers under
 * EngineKind::Tick and EngineKind::Event for every scheduler policy x
 * scheme x page policy x device preset cell, and the stats/energy
 * fingerprint, the cycle-exact completion stream, and the checker
 * verdict must match field-for-field. Deliberate protocol faults
 * (ignored tWTR / tCCD_L) must produce the *same* violation lists under
 * both engines — the event engine may not skip past a bug's window.
 * Finally the engine counters prove the event runs actually exercised
 * the fast path (ticks skipped, wake-ups popped) and the tick runs did
 * not.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hash.h"
#include "dram/address_mapping.h"
#include "dram/controller.h"
#include "dram/presets.h"
#include "dram/sched/scheduler_policy.h"

namespace pra::dram {
namespace {

/** Everything one canned run produces that the engines must agree on. */
struct Outcome
{
    std::uint64_t statsFp = 0;        //!< Stats + energy fold.
    std::uint64_t completionsFp = 0;  //!< Cycle-exact completion stream.
    std::vector<std::string> violations;
    EngineStats engine;
    Cycle end = 0;
};

/** Same field fold as test_golden_equivalence.cpp. */
std::uint64_t
statsFingerprint(const ControllerStats &s, const power::EnergyCounts &e)
{
    Fnv1a h;
    h.add(s.readReqs);
    h.add(s.writeReqs);
    h.add(s.readRowHits);
    h.add(s.writeRowHits);
    h.add(s.readRowMisses);
    h.add(s.writeRowMisses);
    h.add(s.readFalseHits);
    h.add(s.writeFalseHits);
    h.add(s.actsForReads);
    h.add(s.actsForWrites);
    h.add(s.precharges);
    h.add(s.refreshes);
    h.add(s.forwardedReads);
    for (std::size_t b = 0; b < s.actGranularity.buckets(); ++b)
        h.add(s.actGranularity.count(b));
    h.add(s.readLatency.samples());
    h.add(s.readLatency.sum());
    h.add(s.readLatency.min());
    h.add(s.readLatency.max());
    for (auto a : e.acts)
        h.add(a);
    for (auto a : e.actsHalfHeight)
        h.add(a);
    h.add(e.sdsActs);
    h.add(e.sdsChipsActivated);
    h.add(e.readLines);
    h.add(e.writeLines);
    h.add(e.writeWordsDriven);
    h.add(e.actStandbyCycles);
    h.add(e.preStandbyCycles);
    h.add(e.powerDownCycles);
    h.add(e.refreshOps);
    h.add(e.elapsedCycles);
    return h.value();
}

/**
 * The golden canned mix (test_golden_equivalence.cpp), instrumented to
 * also fold the completion stream as it is delivered. The LCG arrival
 * pattern includes idle gaps long enough for power-down entry and a
 * two-tREFI idle tail — exactly the stretches the event engine skips.
 */
Outcome
runCanned(DramConfig cfg)
{
    cfg.channels = 1;
    cfg.enableChecker = true;
    AddressMapper mapper(cfg);
    MemoryController mc(cfg, 0);

    Fnv1a completions;
    Cycle now = 0;
    auto tickOnce = [&] {
        mc.tick(now++);
        for (const Completion &c : mc.completions()) {
            completions.add(c.tag);
            completions.add(c.addr);
            completions.add(c.finish);
            completions.add(c.latency);
        }
        mc.completions().clear();
    };

    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 16;
    };

    unsigned issued = 0;
    std::uint64_t tag = 1;
    while (issued < 600) {
        const std::uint64_t r = next();
        const bool is_write = r % 3 != 0;
        DecodedAddr loc;
        loc.rank = static_cast<unsigned>((r >> 3) % cfg.ranksPerChannel);
        loc.bank = static_cast<unsigned>((r >> 8) % cfg.banksPerRank);
        loc.row = static_cast<std::uint32_t>((r >> 12) % 48);
        loc.col =
            static_cast<unsigned>((r >> 20) % std::min(32u, cfg.linesPerRow));
        Request req;
        req.addr = mapper.encode(loc);
        req.loc = loc;
        req.isWrite = is_write;
        req.tag = tag++;
        if (is_write) {
            WordMask m = WordMask::single((r >> 28) % 8);
            if (r & 1)
                m |= WordMask::single((r >> 33) % 8);
            if (r & 2)
                m |= WordMask::single((r >> 38) % 8);
            req.mask = m;
        }
        if (mc.canAccept(is_write)) {
            mc.enqueue(req, now);
            ++issued;
        }
        const Cycle gap = (r % 7 == 0) ? 40 + (r >> 40) % 60 : 1 + r % 3;
        const Cycle until = now + gap;
        while (now < until)
            tickOnce();
    }
    const Cycle idle_end = now + 2 * cfg.timing.tRefi;
    while (now < idle_end || mc.busy())
        tickOnce();

    Outcome out;
    power::EnergyCounts energy = mc.energyCounts();
    energy.elapsedCycles = now;
    out.statsFp = statsFingerprint(mc.stats(), energy);
    out.completionsFp = completions.value();
    out.violations = mc.checker()->violations();
    out.engine = mc.engineStats();
    out.end = now;
    return out;
}

DramConfig
withEngine(DramConfig cfg, EngineKind kind)
{
    cfg.engine = kind;
    return cfg;
}

/** Run one cell under both engines and require identical behaviour. */
void
expectEnginesAgree(const DramConfig &cfg, const std::string &label,
                   bool expect_violations = false)
{
    const Outcome tick = runCanned(withEngine(cfg, EngineKind::Tick));
    const Outcome event = runCanned(withEngine(cfg, EngineKind::Event));

    EXPECT_EQ(tick.statsFp, event.statsFp) << label;
    EXPECT_EQ(tick.completionsFp, event.completionsFp) << label;
    EXPECT_EQ(tick.end, event.end) << label;
    EXPECT_EQ(tick.violations, event.violations) << label;
    EXPECT_EQ(tick.violations.empty(), !expect_violations)
        << label << (tick.violations.empty()
                         ? ""
                         : ": " + tick.violations.front());

    // The comparison is only meaningful if the event run actually took
    // the fast path: most ticks skipped, wake-ups popped from the heap.
    // (The round counter only runs in event mode — the tick engine
    // reports all-zero EngineStats.)
    EXPECT_EQ(tick.engine.skippedTicks, 0u) << label;
    EXPECT_EQ(tick.engine.rounds, 0u) << label;
    EXPECT_GT(event.engine.skippedTicks, 0u) << label;
    EXPECT_GT(event.engine.wakeups, 0u) << label;
    EXPECT_GT(event.engine.eventsPopped, 0u) << label;
    EXPECT_GT(event.engine.heapPeak, 0u) << label;
    // Every event-mode tick either skips or runs a round, so the two
    // counters partition the simulated cycles — and the run only
    // benefits if skipping dominates.
    EXPECT_EQ(event.engine.rounds + event.engine.skippedTicks, event.end)
        << label;
    EXPECT_LT(event.engine.rounds, event.engine.skippedTicks) << label;
}

TEST(EngineDifferential, AllSchedulersSchemesAndPresetsAgree)
{
    struct Cell
    {
        const char *name;
        bool ddr4;
        bool restricted;
        const SchemeModel *scheme;
    };
    // The golden-equivalence grid (DDR4 ships relaxed-close only).
    const Cell cells[] = {
        {"baseline-ddr3-relaxed", false, false, &schemeByName("baseline")},
        {"pra-ddr3-relaxed", false, false, &schemeByName("pra")},
        {"baseline-ddr3-restricted", false, true, &schemeByName("baseline")},
        {"pra-ddr3-restricted", false, true, &schemeByName("pra")},
        {"baseline-ddr4-relaxed", true, false, &schemeByName("baseline")},
        {"pra-ddr4-relaxed", true, false, &schemeByName("pra")},
    };
    for (const Cell &cell : cells) {
        for (SchedulerKind sched : kAllSchedulerKinds) {
            DramConfig cfg = cell.ddr4 ? ddr4_2400() : DramConfig{};
            if (cell.restricted)
                cfg.useRestrictedClosePage();
            cfg.scheme = cell.scheme;
            cfg.scheduler = sched;
            expectEnginesAgree(cfg, std::string(cell.name) + "/" +
                                        schedulerKindName(sched));
        }
    }
}

TEST(EngineDifferential, PowerDownDisabledStillAgrees)
{
    // Without power-down the idle stretches are pure standby — a
    // different wake-candidate mix (no threshold crossings).
    DramConfig cfg;
    cfg.scheme = &schemeByName("pra");
    cfg.powerDownEnabled = false;
    expectEnginesAgree(cfg, "pra-ddr3-no-powerdown");
}

TEST(EngineDifferential, FaultWindowsAreNotSkippedPast)
{
    // A protocol bug must be equally visible under both engines: the
    // event engine may not sleep through the window in which a faulty
    // gate issues an illegal command. Both deliberate bus-arbiter
    // faults must yield identical, non-empty checker violation lists.
    {
        DramConfig cfg;
        cfg.scheme = &schemeByName("pra");
        cfg.faultIgnoreTwtr = true;
        expectEnginesAgree(cfg, "fault-ignore-twtr", true);
    }
    {
        DramConfig cfg = ddr4_2400();
        cfg.scheme = &schemeByName("pra");
        cfg.faultIgnoreTccdL = true;
        expectEnginesAgree(cfg, "fault-ignore-tccdl", true);
    }
}

} // namespace
} // namespace pra::dram
