/**
 * @file
 * Tests for the top-level DramSystem: channel routing, aggregation,
 * drain semantics, and energy-count consistency.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/dram_system.h"

namespace pra::dram {
namespace {

DramConfig
smallConfig()
{
    DramConfig cfg;
    cfg.powerDownEnabled = false;
    return cfg;
}

TEST(DramSystem, RoutesToCorrectChannel)
{
    DramSystem sys(smallConfig());
    // Craft addresses on each channel via the mapper.
    for (unsigned ch = 0; ch < 2; ++ch) {
        DecodedAddr loc;
        loc.channel = ch;
        loc.row = 10 + ch;
        const Addr addr = sys.mapper().encode(loc);
        ASSERT_TRUE(sys.enqueue(addr, false, WordMask::full(), 0, ch));
    }
    sys.drain();
    EXPECT_EQ(sys.channel(0).stats().readReqs, 1u);
    EXPECT_EQ(sys.channel(1).stats().readReqs, 1u);
}

TEST(DramSystem, CompletionsCarryTagsAndCores)
{
    DramSystem sys(smallConfig());
    ASSERT_TRUE(sys.enqueue(0x1000, false, WordMask::full(), 3, 77));
    Cycle guard = 0;
    std::vector<Completion> done;
    while (done.empty() && guard++ < 1000) {
        sys.tick();
        done = sys.drainCompletions();
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tag, 77u);
    EXPECT_EQ(done[0].coreId, 3u);
    EXPECT_EQ(done[0].addr, lineBase(Addr{0x1000}));
}

TEST(DramSystem, WritesNeedNoCompletion)
{
    DramSystem sys(smallConfig());
    ASSERT_TRUE(sys.enqueue(0x2000, true, WordMask::single(1), 0, 1));
    sys.drain();
    EXPECT_FALSE(sys.busy());
    EXPECT_EQ(sys.energyCounts().writeLines, 1u);
}

TEST(DramSystem, EnqueueAlignsToLine)
{
    DramSystem sys(smallConfig());
    ASSERT_TRUE(sys.enqueue(0x1234, false, WordMask::full(), 0, 1));
    Cycle guard = 0;
    std::vector<Completion> done;
    while (done.empty() && guard++ < 1000) {
        sys.tick();
        done = sys.drainCompletions();
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].addr, 0x1200u);
}

TEST(DramSystem, AggregateStatsSumChannels)
{
    DramSystem sys(smallConfig());
    Rng rng(4);
    unsigned reads = 0, writes = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr a = rng.below(sys.mapper().capacityBytes());
        const bool wr = rng.chance(0.4);
        if (sys.canAccept(a, wr)) {
            sys.enqueue(a, wr, WordMask::single(rng.below(8)), 0, i);
            reads += wr ? 0 : 1;
            writes += wr ? 1 : 0;
        }
        sys.tick();
    }
    sys.drain();
    const ControllerStats agg = sys.aggregateStats();
    EXPECT_EQ(agg.readReqs, reads);
    EXPECT_EQ(agg.writeReqs, writes);
    EXPECT_EQ(agg.readReqs,
              sys.channel(0).stats().readReqs +
                  sys.channel(1).stats().readReqs);
    // Hit + miss accounting covers every serviced request (minus any
    // forwarded reads, which bypass the row buffer).
    EXPECT_EQ(agg.readRowHits + agg.readRowMisses + agg.forwardedReads,
              reads);
    EXPECT_EQ(agg.writeRowHits + agg.writeRowMisses, writes);
}

TEST(DramSystem, EnergyCountsUseWallClockOnce)
{
    DramSystem sys(smallConfig());
    for (int i = 0; i < 100; ++i)
        sys.tick();
    const power::EnergyCounts c = sys.energyCounts();
    EXPECT_EQ(c.elapsedCycles, 100u);
    // Background cycles: 2 channels x 2 ranks x 100 cycles.
    EXPECT_EQ(c.actStandbyCycles + c.preStandbyCycles + c.powerDownCycles,
              400u);
}

TEST(DramSystem, PowerDownEngagesWhenIdle)
{
    DramConfig cfg = smallConfig();
    cfg.powerDownEnabled = true;
    DramSystem sys(cfg);
    for (int i = 0; i < 200; ++i)
        sys.tick();
    EXPECT_GT(sys.energyCounts().powerDownCycles, 300u);
}

TEST(DramSystem, BackpressureWhenQueueFull)
{
    DramConfig cfg = smallConfig();
    DramSystem sys(cfg);
    // Saturate channel 0's read queue without ticking.
    DecodedAddr loc;
    unsigned accepted = 0;
    for (unsigned i = 0; i < 200; ++i) {
        loc.row = i;
        loc.bank = i % 8;
        const Addr a = sys.mapper().encode(loc);
        if (!sys.canAccept(a, false))
            break;
        sys.enqueue(a, false, WordMask::full(), 0, i);
        ++accepted;
    }
    EXPECT_EQ(accepted, cfg.readQueueDepth);
    sys.drain();
    EXPECT_EQ(sys.aggregateStats().readReqs, accepted);
}

TEST(DramSystem, DrainBounded)
{
    DramSystem sys(smallConfig());
    sys.enqueue(0x1000, false, WordMask::full(), 0, 1);
    sys.drain(100000);
    EXPECT_FALSE(sys.busy());
}

} // namespace
} // namespace pra::dram
