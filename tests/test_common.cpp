/**
 * @file
 * Tests for the common utilities: address helpers, RNG determinism and
 * statistical sanity, counters/histograms, and the table printer.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace pra {
namespace {

TEST(Types, LineBaseAlignsDown)
{
    EXPECT_EQ(lineBase(0), 0u);
    EXPECT_EQ(lineBase(63), 0u);
    EXPECT_EQ(lineBase(64), 64u);
    EXPECT_EQ(lineBase(0x12345), 0x12340u);
}

TEST(Types, WordInLine)
{
    EXPECT_EQ(wordInLine(0), 0u);
    EXPECT_EQ(wordInLine(7), 0u);
    EXPECT_EQ(wordInLine(8), 1u);
    EXPECT_EQ(wordInLine(63), 7u);
    EXPECT_EQ(wordInLine(64), 0u);   // Wraps per line.
}

TEST(Types, ByteInLine)
{
    EXPECT_EQ(byteInLine(0), 0u);
    EXPECT_EQ(byteInLine(63), 63u);
    EXPECT_EQ(byteInLine(64), 0u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(10);
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(HitRate, RateComputation)
{
    HitRate h;
    EXPECT_DOUBLE_EQ(h.rate(), 0.0);
    h.hit(3);
    h.miss(1);
    EXPECT_DOUBLE_EQ(h.rate(), 0.75);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, FractionsAndMean)
{
    Histogram h(9);
    h.record(1, 30);
    h.record(8, 70);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.3);
    EXPECT_DOUBLE_EQ(h.fraction(8), 0.7);
    EXPECT_DOUBLE_EQ(h.mean(), 0.3 * 1 + 0.7 * 8);
}

TEST(Histogram, OutOfRangeIgnored)
{
    Histogram h(4);
    h.record(10);
    EXPECT_EQ(h.total(), 0u);
}

TEST(Summary, TracksMinMeanMax)
{
    Summary s;
    s.record(2.0);
    s.record(4.0);
    s.record(9.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.samples(), 3u);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.256, 1), "25.6%");
}

TEST(Table, PrintsAlignedColumns)
{
    Table t("demo");
    t.header({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

} // namespace
} // namespace pra
