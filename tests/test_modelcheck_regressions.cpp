/**
 * @file
 * Regression tests for the bounded protocol model checker
 * (src/analysis/model_checker.h) and its command-script replay format.
 *
 * Three layers:
 *  - live exploration: each deliberate fault hook must be caught within
 *    the default depth budget (for every scheduler policy), and the
 *    unfaulted model must explore clean — with the liveness properties
 *    and wakeup-soundness checking on, and with the measured reduction
 *    ratio and liveness headroom pinned;
 *  - fault hooks: the config-level seams the liveness faults arm are
 *    unit-tested directly (a suppressed-but-still-gating tWTR bound, an
 *    age threshold past which requests never issue);
 *  - distilled counterexamples: command scripts pinned here replay
 *    specific protocol rules (weighted tFAW bursts, DDR4 bank-group
 *    tCCD_S/tCCD_L, refresh/close collisions) straight through the
 *    independent TimingChecker, so these rules stay covered even if the
 *    explorer's search order changes.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/command_script.h"
#include "analysis/model_checker.h"
#include "core/scheme.h"
#include "dram/bus_arbiter.h"
#include "dram/sched/scheduler_policy.h"

namespace pra::analysis {
namespace {

std::vector<std::string>
replayText(const std::string &text, const dram::DramConfig &cfg)
{
    CommandScript script;
    std::string error;
    EXPECT_TRUE(CommandScript::parse(text, script, error)) << error;
    // The simulation engine is observational: a distilled script must
    // replay to the same verdicts whether the config that produced it
    // selects the tick or the event engine. Replay under both and
    // require identical violation lists before returning one.
    dram::DramConfig tick_cfg = cfg;
    tick_cfg.engine = dram::EngineKind::Tick;
    dram::DramConfig event_cfg = cfg;
    event_cfg.engine = dram::EngineKind::Event;
    const auto tick_violations = replayScript(script, tick_cfg);
    const auto event_violations = replayScript(script, event_cfg);
    EXPECT_EQ(tick_violations, event_violations);
    return tick_violations;
}

bool
anyContains(const std::vector<std::string> &violations, const char *needle)
{
    for (const std::string &v : violations) {
        if (v.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

// --- Live exploration ---------------------------------------------------

class FaultCatch : public ::testing::TestWithParam<Fault>
{
};

TEST_P(FaultCatch, CaughtWithinDefaultBudgetUnderEveryScheduler)
{
    const Fault fault = GetParam();
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.fault = fault;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        ASSERT_TRUE(res.violationFound)
            << faultName(fault) << " not caught under "
            << dram::schedulerKindName(sched);
        ASSERT_FALSE(res.counterexample.commands.empty());

        // The counterexample must survive a serialize/parse round trip
        // and reproduce a violation in the independent replayer.
        CommandScript parsed;
        std::string error;
        ASSERT_TRUE(CommandScript::parse(res.counterexample.serialize(),
                                         parsed, error))
            << error;
        EXPECT_EQ(parsed.fault, faultName(fault));
        EXPECT_EQ(parsed.commands.size(),
                  res.counterexample.commands.size());
        const auto violations =
            replayScript(parsed, ModelChecker::modelConfig(fault));
        EXPECT_FALSE(violations.empty())
            << "counterexample did not replay:\n"
            << res.counterexample.serialize();
    }
}

// LateRfm is absent deliberately: its counterexample indicts the
// exploration (a mitigation that never lands in time), not the replayed
// command stream, so it fails this suite's replay leg — it gets the
// dedicated recovery-window test below instead.
INSTANTIATE_TEST_SUITE_P(AllFaults, FaultCatch,
                         ::testing::Values(Fault::WidenAct,
                                           Fault::IgnoreTccdL,
                                           Fault::IgnoreTwtr,
                                           Fault::DropCount));

TEST(ModelCheck, UnfaultedExplorationIsClean)
{
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        EXPECT_FALSE(res.violationFound)
            << "under " << dram::schedulerKindName(sched) << ": "
            << res.violation << "\n"
            << res.counterexample.serialize();
        // The space must converge inside the default budget — a clean
        // verdict on an exhausted budget proves nothing.
        EXPECT_FALSE(res.budgetExhausted);
        // Liveness headroom below the default bounds, with enough slack
        // that the properties are genuinely armed (not trivially tight).
        EXPECT_LE(res.maxRequestWait, ModelChecker::kDefaultLivenessBound);
        EXPECT_LE(res.maxRefreshOverrun, ModelChecker::kDefaultRefreshSlack);
        if (sched == dram::SchedulerKind::FrFcfs) {
            // Measured pins for the reordering policy (the exploration
            // is deterministic): re-pin deliberately when the model,
            // workload, or reduction changes.
            EXPECT_EQ(res.statesExplored, 514742u);
            EXPECT_EQ(res.maxRequestWait, 81u);
            EXPECT_EQ(res.maxRefreshOverrun, 21u);
            EXPECT_GT(res.idleLeaps, 0u);
            EXPECT_GT(res.interleavingsPruned, 0u);
        }
        // The exploration must be substantial, not vacuous: even the
        // non-reordering FCFS policy issues the full workload.
        EXPECT_GT(res.statesExplored, 100u);
        EXPECT_GT(res.commandsIssued, 100u);
    }
}

TEST(ModelCheck, SuppressedWakeBoundCaughtBySoundnessProperty)
{
    // faultSuppressWakeTwtr reports a stale tWTR release bound while the
    // gate keeps blocking reads: the event engine would sleep through the
    // release. The wakeup-soundness property must see, at some explored
    // quiet state, that the legal set changes before any published bound.
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.fault = Fault::SuppressWake;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        ASSERT_TRUE(res.violationFound)
            << "suppress_wake not caught under "
            << dram::schedulerKindName(sched);
        EXPECT_NE(res.violation.find("lost wakeup"), std::string::npos)
            << res.violation;
        EXPECT_FALSE(res.budgetExhausted);
    }
}

TEST(ModelCheck, StarvedAgedRequestCaughtByBoundedProgress)
{
    // faultStarveAgedCycles makes the controller skip any request older
    // than the threshold — it stalls forever without ever issuing an
    // illegal command, invisible to the safety layer. Bounded progress
    // must flag it once the request outlives the liveness bound.
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.fault = Fault::StarveAged;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        ASSERT_TRUE(res.violationFound)
            << "starve_aged not caught under "
            << dram::schedulerKindName(sched);
        EXPECT_NE(res.violation.find("request starved"), std::string::npos)
            << res.violation;
        EXPECT_FALSE(res.budgetExhausted);
    }
}

TEST(ModelCheck, ReductionExploresAtLeastFourTimesFewerStates)
{
    // Symmetry canonicalization + sleep sets + idle time-leaps against
    // the same exploration with reduction off, at equal depth and equal
    // findings (both clean). The interleaving breadth dominates this
    // space, so a shallow depth keeps the unreduced run affordable
    // without weakening the comparison.
    ModelChecker::Options on;
    on.depth = 16;
    ModelChecker::Options off = on;
    off.reduction = false;
    off.maxStates = 2000000;
    const ModelCheckResult res_on = ModelChecker(on).run();
    const ModelCheckResult res_off = ModelChecker(off).run();
    ASSERT_FALSE(res_on.violationFound) << res_on.violation;
    ASSERT_FALSE(res_off.violationFound) << res_off.violation;
    ASSERT_FALSE(res_on.budgetExhausted);
    ASSERT_FALSE(res_off.budgetExhausted);
    EXPECT_GE(res_off.statesExplored, 4 * res_on.statesExplored)
        << "reduction ratio regressed: " << res_off.statesExplored
        << " unreduced vs " << res_on.statesExplored << " reduced";
    // The reduced run actually used its machinery; the unreduced run
    // really ran bare.
    EXPECT_GT(res_on.idleLeaps, 0u);
    EXPECT_GT(res_on.interleavingsPruned, 0u);
    EXPECT_EQ(res_off.idleLeaps, 0u);
    EXPECT_EQ(res_off.interleavingsPruned, 0u);
}

TEST(ModelCheck, DegenerateGeometriesExploreClean)
{
    // Geometry overrides fold the workload onto the reduced shape; the
    // symmetry canonicalizer must stay sound when a bank group spans
    // every bank (groups off), when there is no rank symmetry to find,
    // and when per_group collapses to a single bank.
    struct Geometry
    {
        const char *name;
        unsigned ranks, banks, groups;
        std::uint64_t maxStates;
    };
    const Geometry geometries[] = {
        // Dropping the group wall removes the tCCD_L gate, so this space
        // is larger than the default geometry's.
        {"bank-groups-off", 0, 0, 1, 2000000},
        {"single-rank", 1, 0, 0, 1000000},
        {"single-bank", 0, 1, 0, 1000000},
    };
    for (const Geometry &g : geometries) {
        ModelChecker::Options opts;
        opts.overrideRanks = g.ranks;
        opts.overrideBanks = g.banks;
        opts.overrideBankGroups = g.groups;
        opts.maxStates = g.maxStates;
        const ModelCheckResult res = ModelChecker(opts).run();
        EXPECT_FALSE(res.violationFound)
            << g.name << ": " << res.violation << "\n"
            << res.counterexample.serialize();
        EXPECT_FALSE(res.budgetExhausted) << g.name;
        EXPECT_GT(res.statesExplored, 100u) << g.name;
    }
}

TEST(ModelCheck, ShrinkingMinimizesSafetyCounterexamples)
{
    ModelChecker::Options opts;
    opts.fault = Fault::IgnoreTwtr;
    const ModelCheckResult res = ModelChecker(opts).run();
    ASSERT_TRUE(res.violationFound);
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::IgnoreTwtr);
    const auto base = replayScript(res.counterexample, cfg);
    ASSERT_FALSE(base.empty());

    const CommandScript shrunk = shrinkScript(res.counterexample, cfg);
    EXPECT_LT(shrunk.commands.size(), res.counterexample.commands.size());
    // The minimized script still reproduces the original first violation
    // verbatim, and dropping any single remaining command loses it (the
    // greedy pass ran to a fixpoint).
    const std::string &target = base.front();
    const auto shrunk_violations = replayScript(shrunk, cfg);
    EXPECT_TRUE(anyContains(shrunk_violations, target.c_str()));
    for (std::size_t i = 0; i < shrunk.commands.size(); ++i) {
        CommandScript trial = shrunk;
        trial.commands.erase(trial.commands.begin() +
                             static_cast<std::ptrdiff_t>(i));
        bool still = false;
        for (const std::string &v : replayScript(trial, cfg))
            still |= v == target;
        EXPECT_FALSE(still) << "command " << i << " was droppable";
    }
}

TEST(ModelCheck, ShrinkingLeavesLivenessCounterexamplesIntact)
{
    // A liveness counterexample indicts the exploration (a request that
    // never completes), not the replayed command stream — it replays
    // clean, and the shrinker must hand it back unchanged rather than
    // delete it down to nothing.
    ModelChecker::Options opts;
    opts.fault = Fault::StarveAged;
    const ModelCheckResult res = ModelChecker(opts).run();
    ASSERT_TRUE(res.violationFound);
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::StarveAged);
    ASSERT_TRUE(replayScript(res.counterexample, cfg).empty());
    const CommandScript shrunk = shrinkScript(res.counterexample, cfg);
    EXPECT_EQ(shrunk.commands.size(), res.counterexample.commands.size());
}

// --- PRAC / disturbance safety (DESIGN.md §13) --------------------------

TEST(PracModelCheck, CleanPracExplorationPinsDisturbanceHeadroom)
{
    // The PRAC-armed model (per-row counters, Alert Back-Off, RFM) must
    // explore clean under every scheduler: no row reaches the threshold,
    // every alert recovers inside the window, and the liveness bounds
    // still hold with the rank spending alert-blocked stretches.
    const dram::DramConfig cfg = ModelChecker::modelConfig(
        Fault::None, ModelChecker::kDefaultDisturbanceThreshold);
    ASSERT_TRUE(cfg.pracEnabled);
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.scheduler = sched;
        opts.disturbanceThreshold =
            ModelChecker::kDefaultDisturbanceThreshold;
        const ModelCheckResult res = ModelChecker(opts).run();
        EXPECT_FALSE(res.violationFound)
            << "under " << dram::schedulerKindName(sched) << ": "
            << res.violation << "\n"
            << res.counterexample.serialize();
        EXPECT_FALSE(res.budgetExhausted);
        // The alert/RFM machinery genuinely fired (not a vacuous pass)
        // and stayed inside the recovery window with real headroom.
        EXPECT_GT(res.maxRecoveryWait, 0u);
        EXPECT_LE(res.maxRecoveryWait, cfg.pracRecoveryWindow);
        EXPECT_LE(res.maxRequestWait, ModelChecker::kDefaultLivenessBound);
        if (sched == dram::SchedulerKind::FrFcfs) {
            // Measured pins (deterministic exploration): re-pin
            // deliberately when the PRAC model or workload changes.
            EXPECT_EQ(res.statesExplored, 508u);
            EXPECT_EQ(res.maxRecoveryWait, 22u);
        }
    }
}

TEST(PracModelCheck, LateRfmCaughtByRecoveryWindowProperty)
{
    // faultPracLateRfm releases the mitigation one full window after the
    // alert — every path overruns. The recovery-window property must
    // flag it; the counterexample replays clean (like liveness, the
    // violation is the exploration's schedule, not a command breach) and
    // the shrinker hands it back unchanged.
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.fault = Fault::LateRfm;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        ASSERT_TRUE(res.violationFound)
            << "late_rfm not caught under "
            << dram::schedulerKindName(sched);
        EXPECT_NE(res.violation.find("recovery window"), std::string::npos)
            << res.violation;
        EXPECT_FALSE(res.budgetExhausted);

        const dram::DramConfig cfg =
            ModelChecker::modelConfig(Fault::LateRfm);
        EXPECT_TRUE(replayScript(res.counterexample, cfg).empty());
        const CommandScript shrunk = shrinkScript(res.counterexample, cfg);
        EXPECT_EQ(shrunk.commands.size(),
                  res.counterexample.commands.size());
    }
}

TEST(PracModelCheck, DropCountCounterexampleShrinksToBareHammer)
{
    // faultPracDropCount leaves partial ACTs uncounted, so the hammer
    // row crosses the threshold with no alert. The spec-side shadow
    // catches it, and the witness delta-debugs down to just the ACTs of
    // the victim row.
    ModelChecker::Options opts;
    opts.fault = Fault::DropCount;
    const ModelCheckResult res = ModelChecker(opts).run();
    ASSERT_TRUE(res.violationFound);
    EXPECT_NE(res.violation.find("disturbance threshold"),
              std::string::npos)
        << res.violation;

    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::DropCount);
    const auto base = replayScript(res.counterexample, cfg);
    ASSERT_TRUE(anyContains(base, "disturbance threshold"));
    const CommandScript shrunk = shrinkScript(res.counterexample, cfg);
    EXPECT_EQ(shrunk.commands.size(), cfg.disturbanceThreshold);
    for (const ScriptCommand &c : shrunk.commands) {
        EXPECT_EQ(c.kind, dram::CheckedCommand::Kind::Activate);
        EXPECT_EQ(c.row, shrunk.commands.front().row);
    }
    EXPECT_TRUE(anyContains(replayScript(shrunk, cfg),
                            "disturbance threshold"));
}

TEST(PracModelCheck, UnfaultedModelKeepsPracOff)
{
    // With neither a PRAC fault nor a threshold override, the model must
    // stay byte-compatible with the pre-PRAC explorations: PRAC off, and
    // the same state count the unfaulted pin above protects.
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    EXPECT_FALSE(cfg.pracEnabled);
    EXPECT_FALSE(cfg.faultPracDropCount);
    EXPECT_FALSE(cfg.faultPracLateRfm);

    // Each PRAC fault arms PRAC and exactly its own hook.
    const dram::DramConfig drop =
        ModelChecker::modelConfig(Fault::DropCount);
    ASSERT_TRUE(drop.pracEnabled);
    EXPECT_TRUE(drop.faultPracDropCount);
    EXPECT_FALSE(drop.faultPracLateRfm);

    const dram::DramConfig late = ModelChecker::modelConfig(Fault::LateRfm);
    ASSERT_TRUE(late.pracEnabled);
    EXPECT_FALSE(late.faultPracDropCount);
    EXPECT_TRUE(late.faultPracLateRfm);
}

// --- Fault hooks --------------------------------------------------------

TEST(FaultHooks, SuppressWakeHidesTheBoundButKeepsTheGate)
{
    // The faulted arbiter still blocks reads for the full tWTR window
    // but reports a stale (cycle-0) release bound — exactly the shape
    // of wake bug the soundness property exists to catch.
    const dram::DramConfig faulted =
        ModelChecker::modelConfig(Fault::SuppressWake);
    ASSERT_TRUE(faulted.faultSuppressWakeTwtr);
    dram::BusArbiter bus(faulted);
    bus.noteWriteIssued(10, 2);
    EXPECT_TRUE(bus.readBlocked(11));
    EXPECT_EQ(bus.readBlockedUntil(), 0u);

    const dram::DramConfig clean = ModelChecker::modelConfig(Fault::None);
    dram::BusArbiter honest(clean);
    honest.noteWriteIssued(10, 2);
    EXPECT_TRUE(honest.readBlocked(11));
    // WL + tWTR + burst past the issue cycle.
    EXPECT_EQ(honest.readBlockedUntil(),
              10 + clean.timing.wl + clean.timing.tWtr + 2);
}

TEST(FaultHooks, StarveAgedDefersRequestsPastTheThreshold)
{
    const dram::DramConfig faulted =
        ModelChecker::modelConfig(Fault::StarveAged);
    ASSERT_EQ(faulted.faultStarveAgedCycles, 8u);
    EXPECT_FALSE(faulted.faultStarvesRequest(7, 0));
    EXPECT_TRUE(faulted.faultStarvesRequest(8, 0));
    EXPECT_TRUE(faulted.faultStarvesRequest(100, 0));

    const dram::DramConfig clean = ModelChecker::modelConfig(Fault::None);
    EXPECT_FALSE(clean.faultStarvesRequest(1000, 0));
}

TEST(ModelCheck, CleanRunDeepestPathReplaysClean)
{
    // --emit-test on a clean run serializes the deepest violation-free
    // path; that path must agree with the independent replayer.
    ModelChecker::Options opts;
    opts.depth = 30;
    opts.maxStates = 20000;
    const ModelCheckResult res = ModelChecker(opts).run();
    ASSERT_FALSE(res.violationFound) << res.violation;
    ASSERT_FALSE(res.deepestPath.commands.empty());
    const auto violations =
        replayScript(res.deepestPath, ModelChecker::modelConfig(Fault::None));
    EXPECT_TRUE(violations.empty())
        << violations.front() << "\n"
        << res.deepestPath.serialize();
}

TEST(ModelCheck, WorkloadExercisesBothRanksAndMaskMerging)
{
    const auto workload = ModelChecker::defaultWorkload();
    ASSERT_FALSE(workload.empty());
    bool rank1 = false, partialWrite = false, twins = false;
    for (const ModelRequest &r : workload) {
        rank1 |= r.rank == 1;
        partialWrite |= r.isWrite && r.mask != 0xff;
        // The symmetry canonicalizer needs at least one pair of requests
        // identical up to a bank rename within one bank group.
        for (const ModelRequest &o : workload) {
            twins |= &r != &o && r.rank == o.rank && r.bank != o.bank &&
                     r.bank / 2 == o.bank / 2 && r.row == o.row &&
                     r.col == o.col && r.arrival == o.arrival &&
                     r.isWrite == o.isWrite && r.mask == o.mask;
        }
    }
    EXPECT_TRUE(rank1);
    EXPECT_TRUE(partialWrite);
    EXPECT_TRUE(twins);
}

// --- Scheme plugins under the checker -----------------------------------

TEST(SchemePlugins, ReadPartialSchemesExploreCleanOnReducedGeometry)
{
    // Read-side partial activation multiplies the reachable bank states
    // (per-row sector masks defeat much of the symmetry reduction), so
    // the full-geometry space is out of unit-test budget; a single-rank,
    // two-bank fold keeps every scheduler convergent in milliseconds
    // while preserving contention, refresh pressure, and the fallback
    // re-activation path.
    struct Pin
    {
        const char *scheme;
        std::uint64_t frfcfsStates;
        unsigned frfcfsWait;
    };
    const Pin pins[] = {
        {"sectored", 38326u, 89u},
        {"pra_spec_read", 33011u, 90u},
    };
    for (const Pin &pin : pins) {
        for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
            ModelChecker::Options opts;
            opts.scheme = pin.scheme;
            opts.scheduler = sched;
            opts.overrideRanks = 1;
            opts.overrideBanks = 2;
            // Partial-read ACTs (and spec-read's second, full-row ACT
            // after an underprediction) stretch queue waits past the
            // write-optimized default bound; the raised horizon keeps
            // bounded progress armed without false positives.
            opts.livenessBound = 128;
            const ModelCheckResult res = ModelChecker(opts).run();
            EXPECT_FALSE(res.violationFound)
                << pin.scheme << " under "
                << dram::schedulerKindName(sched) << ": " << res.violation
                << "\n" << res.counterexample.serialize();
            EXPECT_FALSE(res.budgetExhausted) << pin.scheme;
            if (sched == dram::SchedulerKind::FrFcfs) {
                // Measured pins (deterministic exploration): re-pin
                // deliberately when the model or workload changes.
                EXPECT_EQ(res.statesExplored, pin.frfcfsStates)
                    << pin.scheme;
                EXPECT_EQ(res.maxRequestWait, pin.frfcfsWait)
                    << pin.scheme;
                // The read-side activation cost is visible: both new
                // schemes wait past the default liveness bound where
                // PRA on the same fold stays under it (83 cycles).
                EXPECT_GT(res.maxRequestWait,
                          ModelChecker::kDefaultLivenessBound);
            }
        }
    }
    ModelChecker::Options pra_opts;
    pra_opts.overrideRanks = 1;
    pra_opts.overrideBanks = 2;
    pra_opts.livenessBound = 128;
    const ModelCheckResult pra_res = ModelChecker(pra_opts).run();
    ASSERT_FALSE(pra_res.violationFound) << pra_res.violation;
    EXPECT_EQ(pra_res.statesExplored, 10383u);
    EXPECT_EQ(pra_res.maxRequestWait, 83u);
    EXPECT_LT(pra_res.maxRequestWait, ModelChecker::kDefaultLivenessBound);
}

TEST(SchemePlugins, FullGeometryFcfsConvergesClean)
{
    // FCFS keeps the full-geometry space tiny (no reordering breadth),
    // so the unreduced model is still covered for both new schemes.
    struct Pin
    {
        const char *scheme;
        std::uint64_t states;
        unsigned wait;
    };
    const Pin pins[] = {
        {"sectored", 139u, 60u},
        {"pra_spec_read", 268u, 69u},
    };
    for (const Pin &pin : pins) {
        ModelChecker::Options opts;
        opts.scheme = pin.scheme;
        opts.scheduler = dram::SchedulerKind::Fcfs;
        const ModelCheckResult res = ModelChecker(opts).run();
        EXPECT_FALSE(res.violationFound)
            << pin.scheme << ": " << res.violation;
        EXPECT_FALSE(res.budgetExhausted) << pin.scheme;
        EXPECT_EQ(res.statesExplored, pin.states) << pin.scheme;
        EXPECT_EQ(res.maxRequestWait, pin.wait) << pin.scheme;
    }
}

TEST(SchemePlugins, FaultedSectoredRunRoundTripsSchemeMetadata)
{
    // A counterexample found under a non-default scheme must carry the
    // scheme in its script metadata and replay under that scheme's mask
    // algebra (the replayer would mis-derive expectations otherwise).
    ModelChecker::Options opts;
    opts.scheme = "sectored";
    opts.fault = Fault::WidenAct;
    opts.overrideRanks = 1;
    opts.overrideBanks = 2;
    opts.livenessBound = 128;
    const ModelCheckResult res = ModelChecker(opts).run();
    ASSERT_TRUE(res.violationFound);
    EXPECT_NE(res.violation.find("scheme-derived"), std::string::npos)
        << res.violation;

    CommandScript parsed;
    std::string error;
    ASSERT_TRUE(
        CommandScript::parse(res.counterexample.serialize(), parsed, error))
        << error;
    EXPECT_EQ(parsed.scheme, "sectored");
    dram::DramConfig cfg = ModelChecker::modelConfig(Fault::WidenAct);
    cfg.scheme = &schemeByName(parsed.scheme);
    EXPECT_TRUE(anyContains(replayScript(parsed, cfg), "scheme-derived"));
}

TEST(SchemePlugins, ScriptSchemeMetadataDefaultsToPra)
{
    // Pre-plugin scripts carry no scheme token; parsing must default to
    // the model's historical scheme and serializing a default script
    // must not emit the token (byte-identical round trip for pinned
    // counterexamples).
    CommandScript script;
    std::string error;
    ASSERT_TRUE(CommandScript::parse("# pra-modelcheck command script v1\n"
                                     "# scheduler=frfcfs fault=none\n"
                                     "ACT 0 0 0 5\n",
                                     script, error))
        << error;
    EXPECT_EQ(script.scheme, "pra");
    EXPECT_EQ(script.serialize().find("scheme="), std::string::npos);

    script.scheme = "sectored";
    const std::string text = script.serialize();
    EXPECT_NE(text.find("scheme=sectored"), std::string::npos);
    CommandScript reparsed;
    ASSERT_TRUE(CommandScript::parse(text, reparsed, error)) << error;
    EXPECT_EQ(reparsed.scheme, "sectored");
}

// --- Distilled counterexamples ------------------------------------------

TEST(ScriptRegression, WeightedTfawBurstIsFlagged)
{
    // Five full-row activations to distinct banks of one rank, spaced at
    // exactly tRRD, inside a widened tFAW window: the fifth exceeds the
    // weighted budget of 4.0 activations while every pairwise rule
    // (tRRD, tRC) stays satisfied.
    dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    cfg.banksPerRank = 8;
    cfg.timing.tFaw = 10;
    const auto violations = replayText("ACT 0 0 0 10\n"
                                       "ACT 2 0 1 10\n"
                                       "ACT 4 0 2 10\n"
                                       "ACT 6 0 3 10\n"
                                       "ACT 8 0 4 10\n",
                                       cfg);
    ASSERT_EQ(violations.size(), 1u) << violations.front();
    EXPECT_TRUE(anyContains(violations, "tFAW")) << violations.front();
}

TEST(ScriptRegression, BankGroupTccdShortOkLongFlagged)
{
    // Model geometry: 4 banks in 2 groups ({0,1} and {2,3}), tCCD_S = 2,
    // tCCD_L = 4. Cross-group reads at the short spacing are legal; the
    // final same-group read at the short spacing violates tCCD_L.
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    const auto violations = replayText("ACT 0 0 0 7\n"
                                       "ACT 2 0 2 7\n"
                                       "ACT 4 0 1 7\n"
                                       "RD 5 0 0 7 burst=2\n"
                                       "RD 7 0 2 7 burst=2\n"
                                       "RD 9 0 1 7 burst=2\n"
                                       "RD 11 0 0 7 burst=2\n",
                                       cfg);
    ASSERT_EQ(violations.size(), 1u) << violations.front();
    EXPECT_TRUE(anyContains(violations, "tCCD_L")) << violations.front();
}

TEST(ScriptRegression, RefreshCollisionsAreFlagged)
{
    // Rank 0: REF while a bank is still open. Rank 1: a legal REF
    // followed by an ACT inside its tRFC window.
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    const auto violations = replayText("ACT 0 0 0 3\n"
                                       "REF 4 0\n"
                                       "REF 5 1\n"
                                       "ACT 7 1 0 1\n",
                                       cfg);
    // The late ACT trips both the rank-level tRFC gate and the bank's
    // actAllowed register, so it may be reported more than once.
    ASSERT_GE(violations.size(), 2u);
    EXPECT_TRUE(anyContains(violations, "REF with bank"));
    EXPECT_TRUE(anyContains(violations, "command during tRFC"));
}

TEST(ScriptRegression, MaskInvariantsCheckedOnReplay)
{
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    // A widened ACT (mask != scheme-derived expectation) is flagged.
    auto violations = replayText(
        "ACT 0 0 0 5 partial=1 weight=0.5 mask=8f expect=0f\n", cfg);
    EXPECT_TRUE(anyContains(violations, "scheme-derived"));

    // A read served by a partially open row is flagged even when every
    // timing rule passes.
    violations = replayText("ACT 0 0 0 5 partial=1 weight=0.5 mask=0f "
                            "expect=0f\n"
                            "RD 4 0 0 5 burst=2 need=03\n",
                            cfg);
    EXPECT_TRUE(anyContains(violations, "partially open row"));

    // A write outside the open mask is flagged.
    violations = replayText("ACT 0 0 0 5 partial=1 weight=0.5 mask=0f "
                            "expect=0f\n"
                            "WR 4 0 0 5 burst=2 need=f0\n",
                            cfg);
    EXPECT_TRUE(anyContains(violations, "outside open mask"));

    // The conforming variants replay clean.
    violations = replayText("ACT 0 0 0 5 partial=1 weight=0.5 mask=0f "
                            "expect=0f\n"
                            "WR 4 0 0 5 burst=2 need=0c\n",
                            cfg);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ScriptRegression, DistilledDropCountHammerReachesThreshold)
{
    // The drop_count counterexample as distilled by the explorer's
    // shrinker (3 of 15 commands): three partial-write ACTs of the
    // hammer row with no intervening mitigation. The spec shadow counts
    // every ACT — masked or not — so replay flags the third regardless
    // of the controller-side fault that hid them. Pinned permanently so
    // the disturbance property stays covered even if the explorer's
    // search order changes.
    const dram::DramConfig cfg =
        ModelChecker::modelConfig(Fault::DropCount);
    const auto violations = replayText(
        "# pra-modelcheck command script v1\n"
        "# scheduler=frfcfs fault=drop_count\n"
        "ACT 0 0 0 1 partial=1 weight=0.52252252252252251 mask=0f "
        "expect=0f\n"
        "ACT 15 0 0 1 partial=1 weight=0.52252252252252251 mask=0f "
        "expect=0f\n"
        "ACT 50 0 0 1 partial=1 weight=0.28828828828828829 mask=03 "
        "expect=03\n",
        cfg);
    EXPECT_TRUE(anyContains(violations,
                            "activation count reached the disturbance "
                            "threshold 3 without mitigation"))
        << (violations.empty() ? std::string("clean") : violations.front());
}

TEST(ScriptRegression, RfmResetsDisturbanceCountOnReplay)
{
    // Two ACTs of a row, an RFM naming it as the victim, then a third
    // ACT: the mitigation resets the spec count, so the path is clean.
    // Dropping only the RFM line makes the third ACT the threshold
    // breach — the reset, not the spacing, is what the clean verdict
    // hinges on.
    const dram::DramConfig cfg = ModelChecker::modelConfig(
        Fault::None, ModelChecker::kDefaultDisturbanceThreshold);
    const char *const kActs[] = {
        "ACT 0 0 0 5\n",  "PRE 6 0 0\n",    "ACT 9 0 0 5\n",
        "PRE 15 0 0\n",   "RFM 18 0 0 5\n", "ACT 22 0 0 5\n",
    };
    std::string with_rfm, without_rfm;
    for (const char *line : kActs) {
        with_rfm += line;
        if (std::string(line).rfind("RFM", 0) != 0)
            without_rfm += line;
    }
    const auto clean = replayText(with_rfm, cfg);
    EXPECT_TRUE(clean.empty()) << clean.front();
    EXPECT_TRUE(anyContains(replayText(without_rfm, cfg),
                            "disturbance threshold"));
}

TEST(ScriptRegression, RfmRecoveryWindowBlocksTheRank)
{
    // Any command inside tRFM of an ongoing mitigation is a collision —
    // the same rule that keeps RFM and refresh from overlapping. Model
    // tRFM is 4: an ACT 2 cycles after the RFM must be flagged.
    const dram::DramConfig cfg = ModelChecker::modelConfig(
        Fault::None, ModelChecker::kDefaultDisturbanceThreshold);
    const auto violations = replayText("ACT 0 0 0 5\n"
                                       "PRE 6 0 0\n"
                                       "RFM 9 0 0 5\n"
                                       "ACT 11 0 0 5\n",
                                       cfg);
    EXPECT_TRUE(anyContains(violations, "during tRFM"))
        << (violations.empty() ? std::string("clean") : violations.front());
    // RFM against a PRAC-disabled config is itself the violation.
    EXPECT_TRUE(anyContains(
        replayText("RFM 0 0 0 5\n", ModelChecker::modelConfig(Fault::None)),
        "RFM with PRAC disabled"));
}

TEST(ScriptRegression, RfmLineRoundTripsThroughParser)
{
    CommandScript script;
    std::string error;
    ASSERT_TRUE(CommandScript::parse("RFM 18 1 2 7\n", script, error))
        << error;
    ASSERT_EQ(script.commands.size(), 1u);
    const ScriptCommand &c = script.commands.front();
    EXPECT_EQ(c.kind, dram::CheckedCommand::Kind::Rfm);
    EXPECT_EQ(c.cycle, 18u);
    EXPECT_EQ(c.rank, 1u);
    EXPECT_EQ(c.bank, 2u);
    EXPECT_EQ(c.row, 7u);
    EXPECT_NE(script.serialize().find("RFM 18 1 2 7"), std::string::npos);
    // A victim-less RFM line is malformed.
    EXPECT_FALSE(CommandScript::parse("RFM 18 1 2\n", script, error));
}

TEST(ScriptRegression, ParserRejectsMalformedScripts)
{
    CommandScript script;
    std::string error;
    EXPECT_FALSE(CommandScript::parse("FOO 0 0 0 1\n", script, error));
    EXPECT_NE(error.find("unknown command"), std::string::npos);
    EXPECT_FALSE(CommandScript::parse("ACT 0 0\n", script, error));
    EXPECT_FALSE(
        CommandScript::parse("ACT 0 0 0 1 bogus=1\n", script, error));
    EXPECT_FALSE(
        CommandScript::parse("ACT 0 0 0 1 mask=zz\n", script, error));
}

} // namespace
} // namespace pra::analysis
