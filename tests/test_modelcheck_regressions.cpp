/**
 * @file
 * Regression tests for the bounded protocol model checker
 * (src/analysis/model_checker.h) and its command-script replay format.
 *
 * Two layers:
 *  - live exploration: each deliberate fault hook must be caught within
 *    the default depth budget (for every scheduler policy), and the
 *    unfaulted model must explore clean;
 *  - distilled counterexamples: command scripts pinned here replay
 *    specific protocol rules (weighted tFAW bursts, DDR4 bank-group
 *    tCCD_S/tCCD_L, refresh/close collisions) straight through the
 *    independent TimingChecker, so these rules stay covered even if the
 *    explorer's search order changes.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/command_script.h"
#include "analysis/model_checker.h"
#include "dram/sched/scheduler_policy.h"

namespace pra::analysis {
namespace {

std::vector<std::string>
replayText(const std::string &text, const dram::DramConfig &cfg)
{
    CommandScript script;
    std::string error;
    EXPECT_TRUE(CommandScript::parse(text, script, error)) << error;
    // The simulation engine is observational: a distilled script must
    // replay to the same verdicts whether the config that produced it
    // selects the tick or the event engine. Replay under both and
    // require identical violation lists before returning one.
    dram::DramConfig tick_cfg = cfg;
    tick_cfg.engine = dram::EngineKind::Tick;
    dram::DramConfig event_cfg = cfg;
    event_cfg.engine = dram::EngineKind::Event;
    const auto tick_violations = replayScript(script, tick_cfg);
    const auto event_violations = replayScript(script, event_cfg);
    EXPECT_EQ(tick_violations, event_violations);
    return tick_violations;
}

bool
anyContains(const std::vector<std::string> &violations, const char *needle)
{
    for (const std::string &v : violations) {
        if (v.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

// --- Live exploration ---------------------------------------------------

class FaultCatch : public ::testing::TestWithParam<Fault>
{
};

TEST_P(FaultCatch, CaughtWithinDefaultBudgetUnderEveryScheduler)
{
    const Fault fault = GetParam();
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.fault = fault;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        ASSERT_TRUE(res.violationFound)
            << faultName(fault) << " not caught under "
            << dram::schedulerKindName(sched);
        ASSERT_FALSE(res.counterexample.commands.empty());

        // The counterexample must survive a serialize/parse round trip
        // and reproduce a violation in the independent replayer.
        CommandScript parsed;
        std::string error;
        ASSERT_TRUE(CommandScript::parse(res.counterexample.serialize(),
                                         parsed, error))
            << error;
        EXPECT_EQ(parsed.fault, faultName(fault));
        EXPECT_EQ(parsed.commands.size(),
                  res.counterexample.commands.size());
        const auto violations =
            replayScript(parsed, ModelChecker::modelConfig(fault));
        EXPECT_FALSE(violations.empty())
            << "counterexample did not replay:\n"
            << res.counterexample.serialize();
    }
}

INSTANTIATE_TEST_SUITE_P(AllFaults, FaultCatch,
                         ::testing::Values(Fault::WidenAct,
                                           Fault::IgnoreTccdL,
                                           Fault::IgnoreTwtr));

TEST(ModelCheck, UnfaultedExplorationIsClean)
{
    for (dram::SchedulerKind sched : dram::kAllSchedulerKinds) {
        ModelChecker::Options opts;
        opts.scheduler = sched;
        const ModelCheckResult res = ModelChecker(opts).run();
        EXPECT_FALSE(res.violationFound)
            << "under " << dram::schedulerKindName(sched) << ": "
            << res.violation << "\n"
            << res.counterexample.serialize();
        // The exploration must be substantial, not vacuous.
        EXPECT_GT(res.statesExplored, 10000u);
        EXPECT_GT(res.commandsIssued, 10000u);
    }
}

TEST(ModelCheck, CleanRunDeepestPathReplaysClean)
{
    // --emit-test on a clean run serializes the deepest violation-free
    // path; that path must agree with the independent replayer.
    ModelChecker::Options opts;
    opts.depth = 30;
    opts.maxStates = 20000;
    const ModelCheckResult res = ModelChecker(opts).run();
    ASSERT_FALSE(res.violationFound) << res.violation;
    ASSERT_FALSE(res.deepestPath.commands.empty());
    const auto violations =
        replayScript(res.deepestPath, ModelChecker::modelConfig(Fault::None));
    EXPECT_TRUE(violations.empty())
        << violations.front() << "\n"
        << res.deepestPath.serialize();
}

TEST(ModelCheck, WorkloadExercisesBothRanksAndMaskMerging)
{
    const auto workload = ModelChecker::defaultWorkload();
    ASSERT_FALSE(workload.empty());
    bool rank1 = false, partialWrite = false;
    for (const ModelRequest &r : workload) {
        rank1 |= r.rank == 1;
        partialWrite |= r.isWrite && r.mask != 0xff;
    }
    EXPECT_TRUE(rank1);
    EXPECT_TRUE(partialWrite);
}

// --- Distilled counterexamples ------------------------------------------

TEST(ScriptRegression, WeightedTfawBurstIsFlagged)
{
    // Five full-row activations to distinct banks of one rank, spaced at
    // exactly tRRD, inside a widened tFAW window: the fifth exceeds the
    // weighted budget of 4.0 activations while every pairwise rule
    // (tRRD, tRC) stays satisfied.
    dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    cfg.banksPerRank = 8;
    cfg.timing.tFaw = 10;
    const auto violations = replayText("ACT 0 0 0 10\n"
                                       "ACT 2 0 1 10\n"
                                       "ACT 4 0 2 10\n"
                                       "ACT 6 0 3 10\n"
                                       "ACT 8 0 4 10\n",
                                       cfg);
    ASSERT_EQ(violations.size(), 1u) << violations.front();
    EXPECT_TRUE(anyContains(violations, "tFAW")) << violations.front();
}

TEST(ScriptRegression, BankGroupTccdShortOkLongFlagged)
{
    // Model geometry: 4 banks in 2 groups ({0,1} and {2,3}), tCCD_S = 2,
    // tCCD_L = 4. Cross-group reads at the short spacing are legal; the
    // final same-group read at the short spacing violates tCCD_L.
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    const auto violations = replayText("ACT 0 0 0 7\n"
                                       "ACT 2 0 2 7\n"
                                       "ACT 4 0 1 7\n"
                                       "RD 5 0 0 7 burst=2\n"
                                       "RD 7 0 2 7 burst=2\n"
                                       "RD 9 0 1 7 burst=2\n"
                                       "RD 11 0 0 7 burst=2\n",
                                       cfg);
    ASSERT_EQ(violations.size(), 1u) << violations.front();
    EXPECT_TRUE(anyContains(violations, "tCCD_L")) << violations.front();
}

TEST(ScriptRegression, RefreshCollisionsAreFlagged)
{
    // Rank 0: REF while a bank is still open. Rank 1: a legal REF
    // followed by an ACT inside its tRFC window.
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    const auto violations = replayText("ACT 0 0 0 3\n"
                                       "REF 4 0\n"
                                       "REF 5 1\n"
                                       "ACT 7 1 0 1\n",
                                       cfg);
    // The late ACT trips both the rank-level tRFC gate and the bank's
    // actAllowed register, so it may be reported more than once.
    ASSERT_GE(violations.size(), 2u);
    EXPECT_TRUE(anyContains(violations, "REF with bank"));
    EXPECT_TRUE(anyContains(violations, "command during tRFC"));
}

TEST(ScriptRegression, MaskInvariantsCheckedOnReplay)
{
    const dram::DramConfig cfg = ModelChecker::modelConfig(Fault::None);
    // A widened ACT (mask != scheme-derived expectation) is flagged.
    auto violations = replayText(
        "ACT 0 0 0 5 partial=1 weight=0.5 mask=8f expect=0f\n", cfg);
    EXPECT_TRUE(anyContains(violations, "scheme-derived"));

    // A read served by a partially open row is flagged even when every
    // timing rule passes.
    violations = replayText("ACT 0 0 0 5 partial=1 weight=0.5 mask=0f "
                            "expect=0f\n"
                            "RD 4 0 0 5 burst=2 need=03\n",
                            cfg);
    EXPECT_TRUE(anyContains(violations, "partially open row"));

    // A write outside the open mask is flagged.
    violations = replayText("ACT 0 0 0 5 partial=1 weight=0.5 mask=0f "
                            "expect=0f\n"
                            "WR 4 0 0 5 burst=2 need=f0\n",
                            cfg);
    EXPECT_TRUE(anyContains(violations, "outside open mask"));

    // The conforming variants replay clean.
    violations = replayText("ACT 0 0 0 5 partial=1 weight=0.5 mask=0f "
                            "expect=0f\n"
                            "WR 4 0 0 5 burst=2 need=0c\n",
                            cfg);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ScriptRegression, ParserRejectsMalformedScripts)
{
    CommandScript script;
    std::string error;
    EXPECT_FALSE(CommandScript::parse("FOO 0 0 0 1\n", script, error));
    EXPECT_NE(error.find("unknown command"), std::string::npos);
    EXPECT_FALSE(CommandScript::parse("ACT 0 0\n", script, error));
    EXPECT_FALSE(
        CommandScript::parse("ACT 0 0 0 1 bogus=1\n", script, error));
    EXPECT_FALSE(
        CommandScript::parse("ACT 0 0 0 1 mask=zz\n", script, error));
}

} // namespace
} // namespace pra::analysis
