/**
 * @file
 * Tests for the simplified OoO core: ROB-head blocking on loads, LDQ/STQ
 * structural limits, pointer-chase serialization, store latency
 * insensitivity, and instruction accounting.
 */
#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.h"

namespace pra::cpu {
namespace {

/** Scripted generator: replays a fixed op list, then idles. */
class ScriptGen : public Generator
{
  public:
    explicit ScriptGen(std::vector<MemOp> ops) : ops_(std::move(ops)) {}

    MemOp
    next() override
    {
        if (pos_ < ops_.size())
            return ops_[pos_++];
        MemOp idle;
        idle.gap = 1000000;   // Effectively no more memory ops.
        return idle;
    }

    const char *name() const override { return "script"; }

    std::unique_ptr<Generator>
    clone() const override
    {
        return std::make_unique<ScriptGen>(*this);
    }

  private:
    std::vector<MemOp> ops_;
    std::size_t pos_ = 0;
};

/** Memory port stub: every access misses; completions on demand. */
class StubPort : public CoreMemoryPort
{
  public:
    bool
    canIssue(unsigned, Addr) override
    {
        return allowIssue;
    }

    bool
    access(unsigned, const MemOp &op, std::uint64_t tag) override
    {
        accesses.push_back(op);
        if (missEverything) {
            pending.push_back(tag);
            return true;
        }
        return false;
    }

    bool allowIssue = true;
    bool missEverything = true;
    std::vector<MemOp> accesses;
    std::deque<std::uint64_t> pending;
};

MemOp
load(unsigned gap, Addr addr = 0x1000, bool serializing = false)
{
    MemOp op;
    op.gap = gap;
    op.addr = addr;
    op.serializing = serializing;
    return op;
}

MemOp
store(unsigned gap, Addr addr = 0x2000)
{
    MemOp op;
    op.gap = gap;
    op.isWrite = true;
    op.addr = addr;
    op.bytes = ByteMask::word(0);
    return op;
}

TEST(Core, RunsAtIssueWidthWithoutMemory)
{
    ScriptGen gen({});
    StubPort port;
    CoreParams params;
    Core core(0, params, gen, port);
    core.tick();
    // 4-wide x 4 CPU cycles per DRAM cycle = 16 instructions.
    EXPECT_EQ(core.retiredInstructions(), 16u);
    for (int i = 0; i < 9; ++i)
        core.tick();
    EXPECT_EQ(core.retiredInstructions(), 160u);
}

TEST(Core, CacheHitsDoNotStall)
{
    std::vector<MemOp> ops;
    for (int i = 0; i < 20; ++i)
        ops.push_back(load(3));
    ScriptGen gen(ops);
    StubPort port;
    port.missEverything = false;   // All hits.
    Core core(0, CoreParams{}, gen, port);
    core.tick();
    EXPECT_EQ(core.retiredInstructions(), 16u);
    EXPECT_EQ(core.outstandingLoads(), 0u);
}

TEST(Core, RobBlocksAtHeadDistance)
{
    // One miss, then an endless instruction stream: the core may run
    // ahead exactly ROB-size instructions past the load.
    ScriptGen gen({load(0)});
    StubPort port;
    CoreParams params;
    Core core(0, params, gen, port);
    for (int i = 0; i < 100; ++i)
        core.tick();
    // Load was instruction 1; the front may reach 1 + 192.
    EXPECT_EQ(core.retiredInstructions(), 1u + params.robSize);
    // Completion unblocks it.
    ASSERT_EQ(port.pending.size(), 1u);
    core.complete(port.pending.front());
    core.tick();
    EXPECT_GT(core.retiredInstructions(), 1u + params.robSize);
}

TEST(Core, LdqBoundsOutstandingLoads)
{
    std::vector<MemOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back(load(0, 0x1000 + i * 64));
    ScriptGen gen(ops);
    StubPort port;
    CoreParams params;
    Core core(0, params, gen, port);
    for (int i = 0; i < 50; ++i)
        core.tick();
    EXPECT_EQ(core.outstandingLoads(), params.ldqSize);
    EXPECT_EQ(port.accesses.size(), params.ldqSize);
    // Draining one admits one more.
    core.complete(port.pending.front());
    port.pending.pop_front();
    core.tick();
    EXPECT_EQ(port.accesses.size(), params.ldqSize + 1);
}

TEST(Core, StqBoundsOutstandingStoreFetches)
{
    std::vector<MemOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back(store(0, 0x2000 + i * 64));
    ScriptGen gen(ops);
    StubPort port;
    CoreParams params;
    Core core(0, params, gen, port);
    for (int i = 0; i < 50; ++i)
        core.tick();
    EXPECT_EQ(port.accesses.size(), params.stqSize);
}

TEST(Core, StoresDoNotBlockRetirement)
{
    // A store miss followed by a long instruction stream: unlike a load,
    // the core sails past it (write-latency insensitivity).
    ScriptGen gen({store(0)});
    StubPort port;
    Core core(0, CoreParams{}, gen, port);
    for (int i = 0; i < 100; ++i)
        core.tick();
    EXPECT_GT(core.retiredInstructions(), 1000u);
    EXPECT_EQ(core.outstandingLoads(), 0u);
}

TEST(Core, SerializingLoadWaitsForOutstanding)
{
    ScriptGen gen({load(0, 0x1000), load(0, 0x2000, true)});
    StubPort port;
    Core core(0, CoreParams{}, gen, port);
    for (int i = 0; i < 20; ++i)
        core.tick();
    // The dependent load must not issue while the first is in flight.
    EXPECT_EQ(port.accesses.size(), 1u);
    core.complete(port.pending.front());
    port.pending.pop_front();
    core.tick();
    EXPECT_EQ(port.accesses.size(), 2u);
}

TEST(Core, BackpressureRetriesOp)
{
    ScriptGen gen({load(0)});
    StubPort port;
    port.allowIssue = false;
    Core core(0, CoreParams{}, gen, port);
    core.tick();
    EXPECT_TRUE(port.accesses.empty());
    // The op is held, not dropped.
    port.allowIssue = true;
    core.tick();
    EXPECT_EQ(port.accesses.size(), 1u);
}

TEST(Core, GapInstructionsCounted)
{
    ScriptGen gen({load(9)});
    StubPort port;
    port.missEverything = false;
    Core core(0, CoreParams{}, gen, port);
    core.tick();
    // 9 gap instructions + the load itself, then the idle filler.
    EXPECT_GE(core.retiredInstructions(), 10u);
    EXPECT_EQ(core.issuedLoads(), 1u);
}

TEST(Core, CompleteUnknownTagTreatedAsStoreFetch)
{
    ScriptGen gen({store(0)});
    StubPort port;
    Core core(0, CoreParams{}, gen, port);
    core.tick();
    ASSERT_EQ(port.pending.size(), 1u);
    core.complete(port.pending.front());   // Store fetch completes.
    // No crash, no outstanding loads.
    EXPECT_EQ(core.outstandingLoads(), 0u);
}

} // namespace
} // namespace pra::cpu
