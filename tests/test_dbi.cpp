/**
 * @file
 * Tests for the Dirty-Block Index: row-grouped dirty tracking and the
 * DRAM-aware proactive writeback it drives through the hierarchy.
 */
#include <gtest/gtest.h>

#include "cache/hierarchy.h"

namespace pra::cache {
namespace {

/** Row key: 8 consecutive lines per "DRAM row". */
std::uint64_t
rowOf(Addr addr)
{
    return addr / (8 * kLineBytes);
}

TEST(Dbi, TracksDirtyLines)
{
    DirtyBlockIndex dbi(rowOf);
    dbi.markDirty(0 * kLineBytes);
    dbi.markDirty(1 * kLineBytes);
    dbi.markDirty(1 * kLineBytes);   // Idempotent.
    EXPECT_EQ(dbi.trackedLines(), 2u);
    dbi.markClean(0 * kLineBytes);
    EXPECT_EQ(dbi.trackedLines(), 1u);
    dbi.markClean(0 * kLineBytes);   // Idempotent.
    EXPECT_EQ(dbi.trackedLines(), 1u);
}

TEST(Dbi, SiblingsAreSameRowOnly)
{
    DirtyBlockIndex dbi(rowOf);
    dbi.markDirty(0 * kLineBytes);   // Row 0.
    dbi.markDirty(3 * kLineBytes);   // Row 0.
    dbi.markDirty(9 * kLineBytes);   // Row 1.
    const auto siblings = dbi.siblingsForEviction(0 * kLineBytes);
    ASSERT_EQ(siblings.size(), 1u);
    EXPECT_EQ(siblings[0], 3 * kLineBytes);
    // Row 0 group is consumed; row 1 still tracked.
    EXPECT_EQ(dbi.trackedLines(), 1u);
    EXPECT_EQ(dbi.proactiveWritebacks(), 1u);
}

TEST(Dbi, EvictionOfUntrackedLineIsEmpty)
{
    DirtyBlockIndex dbi(rowOf);
    EXPECT_TRUE(dbi.siblingsForEviction(0).empty());
}

HierarchyConfig
dbiConfig()
{
    HierarchyConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = CacheParams{512, 2, kLineBytes};
    cfg.l2 = CacheParams{2048, 2, kLineBytes};
    cfg.enableDbi = true;
    cfg.dbiRowKey = rowOf;
    return cfg;
}

TEST(DbiHierarchy, EvictionFlushesWholeRowGroup)
{
    Hierarchy h(dbiConfig());
    // Dirty two lines of the same "row" (lines 0 and 1), push them to
    // the L2 by thrashing the L1 set each maps to.
    h.access(0, 0 * kLineBytes, true, ByteMask::word(0));
    h.access(0, 1 * kLineBytes, true, ByteMask::word(1));
    // Force both out of L1 (L1 has 4 sets of 2; lines 0,8,16 share set 0
    // and lines 1,9,17 share set 1).
    for (Addr l : {8, 16, 9, 17})
        h.access(0, l * kLineBytes, false, ByteMask::none());

    // Now evict line 0 from the 16-set, 2-way L2: lines 0, 32, 64 share
    // L2 set 0.
    std::vector<Writeback> all;
    for (Addr l : {32, 64}) {
        const auto out = h.access(0, l * kLineBytes, false,
                                  ByteMask::none());
        all.insert(all.end(), out.writebacks.begin(),
                   out.writebacks.end());
    }
    // DBI turned the eviction of line 0 into writebacks of BOTH dirty
    // lines of row 0, each with its own mask.
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].addr, 0u);
    EXPECT_EQ(all[1].addr, 1 * kLineBytes);
    EXPECT_EQ(all[0].praMask(), WordMask::single(0));
    EXPECT_EQ(all[1].praMask(), WordMask::single(1));
    // The sibling stays resident but clean.
    EXPECT_TRUE(h.l2().contains(1 * kLineBytes));
    EXPECT_TRUE(h.l2().dirtyMask(1 * kLineBytes).empty());
    EXPECT_EQ(h.dbi()->proactiveWritebacks(), 1u);
}

TEST(DbiHierarchy, SiblingDirtyBytesPulledFromL1)
{
    Hierarchy h(dbiConfig());
    // Line 1 reaches the L2 dirty (word 1), then is re-dirtied in the L1
    // (word 7). The row flush triggered by line 0's eviction must union
    // both dirtiness levels into the sibling writeback.
    h.access(0, 0 * kLineBytes, true, ByteMask::word(0));
    h.access(0, 1 * kLineBytes, true, ByteMask::word(1));
    for (Addr l : {8, 16, 9, 17})   // Evict lines 0 and 1 from the L1.
        h.access(0, l * kLineBytes, false, ByteMask::none());
    h.access(0, 1 * kLineBytes, true, ByteMask::word(7));   // Back in L1.

    std::vector<Writeback> all;
    for (Addr l : {32, 64}) {
        const auto out = h.access(0, l * kLineBytes, false,
                                  ByteMask::none());
        all.insert(all.end(), out.writebacks.begin(),
                   out.writebacks.end());
    }
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[1].addr, 1 * kLineBytes);
    EXPECT_EQ(all[1].praMask().bits(), 0b10000010u);
    // Both copies of the sibling are clean afterwards.
    EXPECT_TRUE(h.l1(0).dirtyMask(1 * kLineBytes).empty());
    EXPECT_TRUE(h.l2().dirtyMask(1 * kLineBytes).empty());
}

TEST(DbiHierarchy, CleanEvictionTriggersNothing)
{
    Hierarchy h(dbiConfig());
    h.access(0, 0 * kLineBytes, false, ByteMask::none());
    std::vector<Writeback> all;
    for (Addr l : {32, 64}) {
        const auto out = h.access(0, l * kLineBytes, false,
                                  ByteMask::none());
        all.insert(all.end(), out.writebacks.begin(),
                   out.writebacks.end());
    }
    EXPECT_TRUE(all.empty());
}

TEST(DbiHierarchy, WritebackCountMatchesHistogram)
{
    Hierarchy h(dbiConfig());
    std::uint64_t state = 17;
    for (int i = 0; i < 3000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const Addr a = ((state >> 25) % 256) * kLineBytes;
        const bool wr = (state >> 11) % 2 == 0;
        h.access(0, a, wr, ByteMask::word(state % 8));
    }
    h.flush();
    EXPECT_EQ(h.memWrites(), h.dirtyWordsHistogram().total());
}

} // namespace
} // namespace pra::cache
