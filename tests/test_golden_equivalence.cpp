/**
 * @file
 * Golden-equivalence fingerprints for the memory controller.
 *
 * The controller decomposition (scheduler / bank-engine / bus-arbiter /
 * maintenance layers, DESIGN.md §9) promises the default FR-FCFS path
 * is *bit-identical* to the pre-refactor monolith. This test pins that
 * contract: a canned deterministic request mix is driven through a
 * standalone controller under Baseline and PRA (DDR3 relaxed close,
 * restricted close, and the DDR4-2400 bank-group preset), and the
 * FNV-1a fingerprint over every ControllerStats and EnergyCounts field
 * must equal the constants recorded against the pre-refactor controller
 * (commit 1110031). Any scheduling, timing, or accounting change on the
 * default path — however small — changes a fingerprint.
 *
 * Regenerating (only for a deliberate, documented behaviour change +
 * result-cache salt bump): run with PRA_GOLDEN_PRINT=1 and paste the
 * printed table over kGolden below.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "dram/address_mapping.h"
#include "dram/controller.h"
#include "dram/presets.h"

namespace pra::dram {
namespace {

/** Fold every stats/energy field into one order-fixed FNV-1a hash. */
std::uint64_t
fingerprint(const ControllerStats &s, const power::EnergyCounts &e)
{
    Fnv1a h;
    h.add(s.readReqs);
    h.add(s.writeReqs);
    h.add(s.readRowHits);
    h.add(s.writeRowHits);
    h.add(s.readRowMisses);
    h.add(s.writeRowMisses);
    h.add(s.readFalseHits);
    h.add(s.writeFalseHits);
    h.add(s.actsForReads);
    h.add(s.actsForWrites);
    h.add(s.precharges);
    h.add(s.refreshes);
    h.add(s.forwardedReads);
    for (std::size_t b = 0; b < s.actGranularity.buckets(); ++b)
        h.add(s.actGranularity.count(b));
    h.add(s.readLatency.samples());
    h.add(s.readLatency.sum());
    h.add(s.readLatency.min());
    h.add(s.readLatency.max());

    for (auto a : e.acts)
        h.add(a);
    for (auto a : e.actsHalfHeight)
        h.add(a);
    h.add(e.sdsActs);
    h.add(e.sdsChipsActivated);
    h.add(e.readLines);
    h.add(e.writeLines);
    h.add(e.writeWordsDriven);
    h.add(e.actStandbyCycles);
    h.add(e.preStandbyCycles);
    h.add(e.powerDownCycles);
    h.add(e.refreshOps);
    h.add(e.elapsedCycles);
    return h.value();
}

/**
 * Drive a canned request mix: an LCG request stream over both ranks,
 * all banks, mixed reads and masked writes, bursty enough to trigger
 * write drains, long enough to span several refresh intervals. Every
 * arrival cycle and address is a pure function of the seed, so the
 * command-by-command trace is deterministic.
 */
std::uint64_t
runCanned(DramConfig cfg)
{
    cfg.channels = 1;
    cfg.enableChecker = true;
    AddressMapper mapper(cfg);
    MemoryController mc(cfg, 0);

    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 16;
    };

    Cycle now = 0;
    unsigned issued = 0;
    std::uint64_t tag = 1;
    while (issued < 600) {
        const std::uint64_t r = next();
        const bool is_write = r % 3 != 0;
        DecodedAddr loc;
        loc.rank = static_cast<unsigned>((r >> 3) % cfg.ranksPerChannel);
        loc.bank = static_cast<unsigned>((r >> 8) % cfg.banksPerRank);
        loc.row = static_cast<std::uint32_t>((r >> 12) % 48);
        loc.col =
            static_cast<unsigned>((r >> 20) % std::min(32u, cfg.linesPerRow));
        Request req;
        req.addr = mapper.encode(loc);
        req.loc = loc;
        req.isWrite = is_write;
        req.tag = tag++;
        if (is_write) {
            // One to three dirty words, LCG-chosen.
            WordMask m = WordMask::single((r >> 28) % 8);
            if (r & 1)
                m |= WordMask::single((r >> 33) % 8);
            if (r & 2)
                m |= WordMask::single((r >> 38) % 8);
            req.mask = m;
        }
        if (mc.canAccept(is_write)) {
            mc.enqueue(req, now);
            ++issued;
        }
        // Bursty arrivals: mostly back-to-back, sometimes an idle gap
        // long enough for power-down entry.
        const Cycle gap = (r % 7 == 0) ? 40 + (r >> 40) % 60 : 1 + r % 3;
        const Cycle until = now + gap;
        while (now < until)
            mc.tick(now++);
    }
    // Drain, then run through two more refresh intervals of idle time.
    const Cycle idle_end = now + 2 * cfg.timing.tRefi;
    while (now < idle_end || mc.busy()) {
        mc.tick(now++);
        mc.completions().clear();
    }

    EXPECT_TRUE(mc.checker()->clean())
        << mc.checker()->violations().front();

    power::EnergyCounts energy = mc.energyCounts();
    energy.elapsedCycles = now;
    return fingerprint(mc.stats(), energy);
}

struct GoldenCell
{
    const char *name;
    std::uint64_t expected;
};

/**
 * Fingerprints recorded against the pre-refactor monolith (the first
 * six cells) and, for schemes added after the plugin registry landed,
 * against their introducing commit. A cell's name is
 * "<registered-scheme-name>-<preset>-<policy>".
 */
constexpr GoldenCell kGolden[] = {
    {"baseline-ddr3-relaxed", 0xb2432a700e84e478ull},
    {"pra-ddr3-relaxed", 0xdf2efc895924e165ull},
    {"baseline-ddr3-restricted", 0x71394f85a4d127c0ull},
    {"pra-ddr3-restricted", 0x2e027501f7371a6dull},
    {"baseline-ddr4-relaxed", 0x603aadb6879edd99ull},
    {"pra-ddr4-relaxed", 0xf89618ae30e8c868ull},
    {"sectored-ddr3-relaxed", 0x50e31305dfb05b3dull},
    {"sectored-ddr3-restricted", 0x56f42c8d8eca0726ull},
    {"pra_spec_read-ddr3-relaxed", 0x5da6647e6b476519ull},
};

DramConfig
cellConfig(const char *name)
{
    const std::string n = name;
    DramConfig cfg;
    if (n.find("ddr4") != std::string::npos)
        cfg = ddr4_2400();
    if (n.find("restricted") != std::string::npos)
        cfg.useRestrictedClosePage();
    // The cell name's leading token is the registered scheme name.
    cfg.scheme = &schemeByName(n.substr(0, n.find("-ddr")));
    return cfg;
}

TEST(GoldenEquivalence, DefaultPathMatchesPreRefactorFingerprints)
{
    const bool print = [] {
        const char *env = std::getenv("PRA_GOLDEN_PRINT");
        return env && env[0] == '1';
    }();
    for (const GoldenCell &cell : kGolden) {
        const std::uint64_t actual = runCanned(cellConfig(cell.name));
        if (print) {
            std::printf("    {\"%s\", 0x%llxull},\n", cell.name,
                        static_cast<unsigned long long>(actual));
            continue;
        }
        EXPECT_EQ(actual, cell.expected)
            << cell.name << ": default-path behaviour diverged from the "
            << "pre-refactor controller (got 0x" << std::hex << actual
            << "); if this change is deliberate, bump kResultCacheSalt "
            << "and regenerate with PRA_GOLDEN_PRINT=1";
    }
}

} // namespace
} // namespace pra::dram
