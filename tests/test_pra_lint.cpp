/**
 * @file
 * Tests for the repo-specific lint engine (src/analysis/lint.h): each
 * rule is drilled with synthetic sources (including the "field added to
 * DramConfig without a canonicalConfig entry" scenario the lint exists
 * to catch), and the real tree under PRA_SOURCE_DIR must scan clean.
 *
 * Note: this file spells forbidden entropy patterns (rand(), ...)
 * inside drill inputs. That is safe because the determinism rules
 * scope themselves to src/ paths: pra_lint loads tests/ only as the
 * fault-coverage reference corpus, and tools/check_determinism.sh
 * covers src/ only.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.h"

namespace pra::analysis {
namespace {

std::vector<LintIssue>
issuesOfRule(const std::vector<LintIssue> &issues, const std::string &rule)
{
    std::vector<LintIssue> out;
    for (const LintIssue &i : issues) {
        if (i.rule == rule)
            out.push_back(i);
    }
    return out;
}

std::string
joined(const std::vector<LintIssue> &issues)
{
    std::string out;
    for (const LintIssue &i : issues)
        out += i.format() + "\n";
    return out;
}

// --- Parsing helpers ----------------------------------------------------

TEST(StructFields, ExtractsDataMembersOnly)
{
    const std::string text = R"(
        /** Doc comment mentioning fakeField and rand(). */
        struct Sample
        {
            unsigned channels = 2;          //!< trailing comment
            std::uint8_t mask = 0;
            std::array<std::uint64_t, 8> acts{};
            Timing timing{};
            power::PowerParams power{};
            std::uint64_t warmup = 120'000; // digit separator
            SchemeTraits traits() const { return {}; }
            void reset() { mask = 0; }
            static constexpr int kConst = 3;
            bool operator==(const Sample &o) const = default;
        };
        struct Other { int unrelated; };
    )";
    const auto fields = structFields(text, "Sample");
    EXPECT_EQ(fields, (std::vector<std::string>{
                          "channels", "mask", "acts", "timing", "power",
                          "warmup"}));
    EXPECT_EQ(structFields(text, "Other"),
              std::vector<std::string>{"unrelated"});
    EXPECT_TRUE(structFields(text, "Missing").empty());
}

TEST(EnumMembers, ExtractsEnumeratorsSkippingInitializers)
{
    const std::string text = R"(
        enum Fault;   // forward declaration is skipped
        /** Doc mentioning FakeMember. */
        enum class Fault : unsigned
        {
            None,         //!< comment
            WidenAct = 3,
            StarveAged,
        };
        enum Plain { A, B };
    )";
    EXPECT_EQ(enumMembers(text, "Fault"),
              (std::vector<std::string>{"None", "WidenAct", "StarveAged"}));
    EXPECT_EQ(enumMembers(text, "Plain"),
              (std::vector<std::string>{"A", "B"}));
    EXPECT_TRUE(enumMembers(text, "Missing").empty());
}

TEST(FunctionBody, ExtractsDefinitionNotDeclaration)
{
    const std::string text = R"(
        std::string canonicalConfig(const SystemConfig &cfg);
        std::string canonicalConfig(const SystemConfig &cfg)
        {
            return std::to_string(cfg.dram.channels);
        }
        void other() { int canonical = 0; (void)canonical; }
    )";
    const std::string body = functionBody(text, "canonicalConfig");
    EXPECT_TRUE(containsIdentifier(body, "channels"));
    EXPECT_FALSE(containsIdentifier(body, "canonical"));
    EXPECT_TRUE(functionBody(text, "missing").empty());
}

// --- Rule: entropy ------------------------------------------------------

TEST(EntropyRule, FlagsAmbientEntropyAndClocks)
{
    const std::vector<SourceFile> files{
        {"src/dram/bad.cpp",
         "int a = rand();\n"
         "std::random_device rd;\n"
         "auto t = std::chrono::steady_clock::now();\n"
         "int fd = open(\"/dev/urandom\", 0);\n"}};
    const auto issues = issuesOfRule(lintSources(files), "entropy");
    ASSERT_EQ(issues.size(), 4u) << joined(issues);
    EXPECT_EQ(issues[0].line, 1u);
    EXPECT_EQ(issues[3].line, 4u);
}

TEST(EntropyRule, IgnoresCommentsAnchorsAndRngHeader)
{
    const std::vector<SourceFile> files{
        {"src/dram/ok.cpp",
         "// rand() in a comment is fine\n"
         "/* std::random_device too */\n"
         "int strand(int x);\n"          // Identifier suffix: anchored.
         "int y = strand(3);\n"
         "int ranktime(int);\n"
         "double lifetime (0.5);\n"      // `time` bounded inside words.
         "int z = obj.time();\n"},       // Member call on another object.
        {"src/common/rng.h",
         "std::uint64_t seedFromEntropy() { return rand(); }\n"}};
    const auto issues = issuesOfRule(lintSources(files), "entropy");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

// --- Rule: unordered-iteration ------------------------------------------

TEST(UnorderedIterationRule, FlagsIterationAcrossDeclaringFile)
{
    // Member declared in the header, iterated in the .cpp: names are
    // pooled across result-affecting files.
    const std::vector<SourceFile> files{
        {"src/dram/widget.h",
         "struct W { std::unordered_map<int, int> index_; };\n"},
        {"src/dram/widget.cpp",
         "void W::walk() {\n"
         "    for (auto &[k, v] : index_) { use(k, v); }\n"
         "}\n"}};
    const auto issues =
        issuesOfRule(lintSources(files), "unordered-iteration");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_EQ(issues[0].file, "src/dram/widget.cpp");
    EXPECT_EQ(issues[0].line, 2u);
}

TEST(UnorderedIterationRule, SuppressionAndElementAccessAndScope)
{
    const std::vector<SourceFile> files{
        // Annotated iteration (keys sorted afterwards) is accepted.
        {"src/cache/sorted.cpp",
         "std::unordered_map<int, int> m_;\n"
         "void f() {\n"
         "    // pra-lint: unordered-ok (keys sorted before use)\n"
         "    for (auto &[k, v] : m_) keys.push_back(k);\n"
         "}\n"},
        // Iterating a mapped value (deterministic vector) is fine.
        {"src/cache/value.cpp",
         "std::unordered_map<int, std::vector<int>> byRow_;\n"
         "void g(int k) {\n"
         "    for (int line : byRow_.at(k)) use(line);\n"
         "}\n"},
        // Outside the result-affecting directories the rule is off.
        {"src/power/report.cpp",
         "std::unordered_set<int> seen_;\n"
         "void h() { for (int s : seen_) print(s); }\n"},
        // Explicit iterator walks are flagged too.
        {"src/sim/iter.cpp",
         "std::unordered_set<int> live_;\n"
         "void k() { for (auto it = live_.begin(); it != live_.end(); "
         "++it) use(*it); }\n"}};
    const auto issues =
        issuesOfRule(lintSources(files), "unordered-iteration");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_EQ(issues[0].file, "src/sim/iter.cpp");
}

// --- Rule: timing-locality ----------------------------------------------

TEST(TimingLocalityRule, FlagsRawTimingUseInIssuePath)
{
    const std::vector<SourceFile> files{
        {"src/dram/controller.cpp",
         "void f(const DramConfig &cfg) {\n"
         "    Cycle gap = cfg.timing.tRcd + cfg.timing.tCcd;\n"
         "    Timing t = cfg.timing;\n"
         "}\n"},
        {"src/dram/sched/frfcfs.cpp",
         "Cycle g(const Timing &t) { return t.tRrd; }\n"}};
    const auto issues = issuesOfRule(lintSources(files), "timing-locality");
    ASSERT_EQ(issues.size(), 3u) << joined(issues);
    EXPECT_EQ(issues[0].file, "src/dram/controller.cpp");
    EXPECT_EQ(issues[0].line, 2u);
    EXPECT_EQ(issues[1].line, 3u);
    EXPECT_EQ(issues[2].file, "src/dram/sched/frfcfs.cpp");
    EXPECT_NE(issues[0].message.find("timing_tables.h"), std::string::npos);
}

TEST(TimingLocalityRule, ScopeSuppressionAndBoundedIdentifiers)
{
    const std::vector<SourceFile> files{
        // The table builder is the one place allowed raw Timing access.
        {"src/dram/timing_tables.cpp",
         "BankTables b(const Timing &t) { return {t.tRcd}; }\n"},
        // So is the independent oracle.
        {"src/dram/checker.cpp",
         "bool legal(const Timing &t) { return t.tCcd > 0; }\n"},
        // Outside src/dram the rule is off entirely.
        {"src/sim/system.cpp",
         "void s(const DramConfig &c) { use(c.timing.tRfc); }\n"},
        // Table-type identifiers and the include path are anchored:
        // `Timing` inside `TimingTables` / `timing` before `_` never
        // match word-bounded.
        {"src/dram/controller.h",
         "#include \"dram/timing_tables.h\"\n"
         "// comment mentioning timing is stripped before the scan\n"
         "struct C { TimingTables tables_; };\n"},
        // An annotated cold-path site is accepted.
        {"src/dram/rank.cpp",
         "void r(const DramConfig &cfg) {\n"
         "    // pra-lint: timing-ok (power-down exit, not issue path)\n"
         "    wake_ = now + cfg.timing.tXp;\n"
         "}\n"}};
    const auto issues = issuesOfRule(lintSources(files), "timing-locality");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

// --- Rule: scheme-locality ----------------------------------------------

TEST(SchemeLocalityRule, FlagsClosedSchemeWorldIdioms)
{
    const std::vector<SourceFile> files{
        {"src/dram/bad_dispatch.cpp",
         "void f(const DramConfig &cfg) {\n"
         "    if (cfg.scheme == Scheme::Pra) fastPath();\n"
         "    SchemeTraits t = traitsOf(cfg);\n"
         "    if (name == \"sectored\") sectorPath();\n"
         "    if (std::string(s->displayName()) != \"Half-DRAM\") other();\n"
         "}\n"}};
    const auto issues = issuesOfRule(lintSources(files), "scheme-locality");
    ASSERT_EQ(issues.size(), 4u) << joined(issues);
    EXPECT_EQ(issues[0].line, 2u);
    EXPECT_NE(issues[0].message.find("Scheme::"), std::string::npos);
    EXPECT_EQ(issues[1].line, 3u);
    EXPECT_NE(issues[1].message.find("SchemeTraits"), std::string::npos);
    EXPECT_EQ(issues[2].line, 4u);
    EXPECT_NE(issues[2].message.find("sectored"), std::string::npos);
    EXPECT_EQ(issues[3].line, 5u);
    // The fix-path is named in every diagnostic.
    for (const LintIssue &i : issues)
        EXPECT_NE(i.message.find("SchemeModel"), std::string::npos)
            << i.message;
}

TEST(SchemeLocalityRule, ScopeSuppressionAndAllowedIdioms)
{
    const std::vector<SourceFile> files{
        // The registry TU is the one place allowed to enumerate schemes.
        {"src/core/scheme.cpp",
         "const SchemeModel *legacy() { return map(Scheme::Pra); }\n"},
        // Registry lookup by name is the sanctioned selection idiom.
        {"src/sim/lookup.cpp",
         "void g(SystemConfig &c) {\n"
         "    c.dram.scheme = &schemeByName(\"sectored\");\n"
         "    c.other = findScheme(\"pra\");\n"
         "}\n"},
        // An annotated site is accepted (marker on the line above).
        {"src/analysis/compat.cpp",
         "bool h(const std::string &s) {\n"
         "    // pra-lint: scheme-ok (serialization default, not dispatch)\n"
         "    return s != \"pra\";\n"
         "}\n"},
        // SchemeModel itself is word-bounded past the `Scheme` probe,
        // and non-registered literals compare freely.
        {"src/dram/clean.cpp",
         "void k(const SchemeModel *m, const std::string &hdr) {\n"
         "    if (hdr == \"pra-result-cache v1\") use(m);\n"
         "}\n"},
        // Outside src/ the rule is off (tests drill scheme behaviour by
        // name on purpose).
        {"tests/test_drill.cpp",
         "TEST(X, Y) { EXPECT_TRUE(name == \"sectored\"); }\n"}};
    const auto issues = issuesOfRule(lintSources(files), "scheme-locality");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

// --- Rule: config-coverage ----------------------------------------------

namespace drill {

const char *const kConfigHeader =
    "struct DramConfig\n"
    "{\n"
    "    unsigned channels = 2;\n"
    "    unsigned newKnob = 1;\n"
    "};\n";

const char *const kSystemHeader =
    "struct SystemConfig\n"
    "{\n"
    "    dram::DramConfig dram{};\n"
    "    bool enableAudit = false;   // pra-lint: observational\n"
    "};\n";

std::vector<SourceFile>
files(const std::string &config_io)
{
    return {{"src/dram/config.h", kConfigHeader},
            {"src/sim/system.h", kSystemHeader},
            {"src/sim/config_io.cpp", config_io}};
}

} // namespace drill

TEST(ConfigCoverageRule, FieldMissingFromCanonicalConfigFails)
{
    // The ISSUE drill: a field added to DramConfig with a parse handler
    // but no canonicalConfig entry must fail the lint.
    const auto issues = issuesOfRule(
        lintSources(drill::files(
            "std::string canonicalConfig(const SystemConfig &cfg)\n"
            "{ return std::to_string(cfg.dram.channels); }\n"
            "void applyConfigLine(SystemConfig &c)\n"
            "{ c.dram.channels = 1; c.dram.newKnob = 2; "
            "c.enableAudit = true; }\n")),
        "config-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_EQ(issues[0].file, "src/dram/config.h");
    EXPECT_NE(issues[0].message.find("newKnob"), std::string::npos);
    EXPECT_NE(issues[0].message.find("canonicalConfig"), std::string::npos);
}

TEST(ConfigCoverageRule, FieldMissingFromApplyConfigLineFails)
{
    const auto issues = issuesOfRule(
        lintSources(drill::files(
            "std::string canonicalConfig(const SystemConfig &cfg)\n"
            "{ return std::to_string(cfg.dram.channels + cfg.dram.newKnob);"
            " }\n"
            "void applyConfigLine(SystemConfig &c)\n"
            "{ c.dram.channels = 1; c.enableAudit = true; }\n")),
        "config-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_NE(issues[0].message.find("newKnob"), std::string::npos);
    EXPECT_NE(issues[0].message.find("applyConfigLine"), std::string::npos);
}

TEST(ConfigCoverageRule, FullCoverageAndObservationalExemptionPass)
{
    // enableAudit is annotated observational: exempt from the canonical
    // key (it cannot affect results) but still settable from configs.
    const auto issues = issuesOfRule(
        lintSources(drill::files(
            "std::string canonicalConfig(const SystemConfig &cfg)\n"
            "{ return std::to_string(cfg.dram.channels + cfg.dram.newKnob);"
            " }\n"
            "void applyConfigLine(SystemConfig &c)\n"
            "{ c.dram.channels = 1; c.dram.newKnob = 2; "
            "c.enableAudit = true; }\n")),
        "config-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

TEST(ConfigCoverageRule, MentionInsideDumpConfigDoesNotCount)
{
    // dumpConfig mentioning the field must not mask the missing handler.
    const auto issues = issuesOfRule(
        lintSources(drill::files(
            "std::string canonicalConfig(const SystemConfig &cfg)\n"
            "{ return std::to_string(cfg.dram.channels + cfg.dram.newKnob);"
            " }\n"
            "std::string dumpConfig(const SystemConfig &cfg)\n"
            "{ return std::to_string(cfg.dram.newKnob + cfg.enableAudit); "
            "}\n"
            "void applyConfigLine(SystemConfig &c)\n"
            "{ c.dram.channels = 1; c.enableAudit = true; }\n")),
        "config-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_NE(issues[0].message.find("newKnob"), std::string::npos);
}

// --- Rule: energy-coverage ----------------------------------------------

TEST(EnergyCoverageRule, UnconsumedCounterFails)
{
    const std::vector<SourceFile> files{
        {"src/power/power_model.h",
         "struct EnergyCounts\n"
         "{\n"
         "    std::uint64_t readLines = 0;\n"
         "    std::uint64_t orphanCount = 0;\n"
         "};\n"},
        {"src/power/power_model.cpp",
         "double f(const EnergyCounts &c) { return 1.0 * c.readLines; }\n"},
        {"src/verify/auditor.cpp",
         "void check(const EnergyCounts &c)\n"
         "{ expect(c.readLines); expect(c.orphanCount); }\n"}};
    const auto issues = issuesOfRule(lintSources(files), "energy-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_NE(issues[0].message.find("orphanCount"), std::string::npos);
    EXPECT_NE(issues[0].message.find("power_model.cpp"), std::string::npos);
}

// --- Rule: fault-coverage -----------------------------------------------

namespace faultdrill {

const char *const kCheckerHeader =
    "enum class Fault\n"
    "{\n"
    "    None,\n"
    "    WidenAct,\n"
    "    StarveAged,\n"
    "};\n";

const char *const kConfigHeader =
    "struct DramConfig\n"
    "{\n"
    "    unsigned channels = 2;\n"
    "    std::uint8_t auditFaultWidenAct = 0;\n"
    "    Cycle faultStarveAgedCycles = 0;\n"
    "    bool faultStarvesRequest(Cycle now) const { return false; }\n"
    "};\n";

std::vector<SourceFile>
files(const std::string &test_text)
{
    std::vector<SourceFile> out{
        {"src/analysis/model_checker.h", kCheckerHeader},
        {"src/dram/config.h", kConfigHeader}};
    if (!test_text.empty())
        out.push_back({"tests/test_drill.cpp", test_text});
    return out;
}

} // namespace faultdrill

TEST(FaultCoverageRule, UndrilledHookAndEnumMemberFail)
{
    // The tests corpus exercises WidenAct and its config hook but never
    // mentions StarveAged or its cycle threshold: both must be flagged,
    // at their declaration sites.
    const auto issues = issuesOfRule(
        lintSources(faultdrill::files(
            "TEST(X, Y) { o.fault = Fault::WidenAct;\n"
            "  cfg.auditFaultWidenAct = 0x80; use(Fault::None); }\n")),
        "fault-coverage");
    ASSERT_EQ(issues.size(), 2u) << joined(issues);
    EXPECT_EQ(issues[0].file, "src/analysis/model_checker.h");
    EXPECT_NE(issues[0].message.find("Fault::StarveAged"),
              std::string::npos);
    EXPECT_EQ(issues[1].file, "src/dram/config.h");
    EXPECT_NE(issues[1].message.find("faultStarveAgedCycles"),
              std::string::npos);
    EXPECT_NE(issues[1].message.find("tests/"), std::string::npos);
}

TEST(FaultCoverageRule, FullCoveragePasses)
{
    const auto issues = issuesOfRule(
        lintSources(faultdrill::files(
            "TEST(X, Y) { use(Fault::None, Fault::WidenAct,\n"
            "  Fault::StarveAged);\n"
            "  cfg.auditFaultWidenAct = 0x80;\n"
            "  cfg.faultStarveAgedCycles = 8; }\n")),
        "fault-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

TEST(FaultCoverageRule, InactiveWithoutTestsCorpus)
{
    // A src-only scan has no corpus to check against — the rule must
    // stay silent rather than flag every hook.
    const auto issues = issuesOfRule(lintSources(faultdrill::files("")),
                                     "fault-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

TEST(FaultCoverageRule, NonHookFieldsAreOutOfScope)
{
    // `channels` is uncovered by the drill corpus but is not a fault
    // hook; a mention inside a comment must not count as coverage.
    const auto issues = issuesOfRule(
        lintSources(faultdrill::files(
            "// auditFaultWidenAct faultStarveAgedCycles StarveAged\n"
            "TEST(X, Y) { use(Fault::None, Fault::WidenAct); }\n")),
        "fault-coverage");
    ASSERT_EQ(issues.size(), 3u) << joined(issues);
    for (const LintIssue &i : issues)
        EXPECT_EQ(i.message.find("channels"), std::string::npos)
            << i.message;
}

// --- Rule: maintop-coverage ---------------------------------------------

namespace maintopdrill {

/** A config_io.cpp stand-in whose canonical key names (or omits) an op. */
std::string
configIo(bool names_op)
{
    std::string body = "std::string canonicalConfig(const SystemConfig "
                       "&cfg)\n{\n    std::ostringstream os;\n";
    if (names_op)
        body += "    os << \"maint_op = scrub_patrol\" << '\\n';\n";
    body += "    return os.str();\n}\n";
    return body;
}

std::vector<SourceFile>
files(const std::string &src_text, const std::string &test_text,
      bool canonical_names_op = true)
{
    std::vector<SourceFile> out{
        {"src/dram/engine_user.cpp", src_text},
        {"src/sim/config_io.cpp", configIo(canonical_names_op)}};
    if (!test_text.empty())
        out.push_back({"tests/test_drill.cpp", test_text});
    return out;
}

const char *const kNamedCall =
    "void wire(MaintenanceEngine &maint)\n"
    "{\n"
    "    maint.registerOp(\n"
    "        \"scrub_patrol\", [](Cycle now) { return false; },\n"
    "        [](Cycle now) { return now + 1; });\n"
    "}\n";

} // namespace maintopdrill

TEST(MaintopCoverageRule, CoveredNamedOpPasses)
{
    const auto issues = issuesOfRule(
        lintSources(maintopdrill::files(
            maintopdrill::kNamedCall,
            "TEST(X, Y) { run(\"scrub_patrol\"); }\n")),
        "maintop-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

TEST(MaintopCoverageRule, UndrilledOpFlaggedAtTheCallSite)
{
    // The op is named in the canonical key but no tests/ file mentions
    // it: flagged once, at the registration line.
    const auto issues = issuesOfRule(
        lintSources(maintopdrill::files(maintopdrill::kNamedCall,
                                        "TEST(X, Y) { unrelated(); }\n")),
        "maintop-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_EQ(issues[0].file, "src/dram/engine_user.cpp");
    EXPECT_EQ(issues[0].line, 3u);
    EXPECT_NE(issues[0].message.find("scrub_patrol"), std::string::npos);
    EXPECT_NE(issues[0].message.find("tests/"), std::string::npos);
}

TEST(MaintopCoverageRule, OpMissingFromCanonicalKeyFlagged)
{
    const auto issues = issuesOfRule(
        lintSources(maintopdrill::files(
            maintopdrill::kNamedCall,
            "TEST(X, Y) { run(\"scrub_patrol\"); }\n",
            /*canonical_names_op=*/false)),
        "maintop-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_NE(issues[0].message.find("canonicalConfig"), std::string::npos);
}

TEST(MaintopCoverageRule, ObservationalAnnotationWaivesTheCanonicalKey)
{
    // A vetted result-neutral op opts out of the cache-key requirement
    // (but never out of the tests/ requirement).
    const char *const annotated =
        "void wire(MaintenanceEngine &maint)\n"
        "{\n"
        "    // pra-lint: observational\n"
        "    maint.registerOp(\n"
        "        \"scrub_patrol\", [](Cycle now) { return false; },\n"
        "        [](Cycle now) { return now + 1; });\n"
        "}\n";
    const auto issues = issuesOfRule(
        lintSources(maintopdrill::files(
            annotated, "TEST(X, Y) { run(\"scrub_patrol\"); }\n",
            /*canonical_names_op=*/false)),
        "maintop-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

TEST(MaintopCoverageRule, UnnamedRegistrationAlwaysFlagged)
{
    const auto issues = issuesOfRule(
        lintSources(maintopdrill::files(
            "void wire(MaintenanceEngine &maint)\n"
            "{\n"
            "    maint.registerOp([](Cycle now) { return false; });\n"
            "}\n",
            "TEST(X, Y) { everything(); }\n")),
        "maintop-coverage");
    ASSERT_EQ(issues.size(), 1u) << joined(issues);
    EXPECT_NE(issues[0].message.find("unnamed"), std::string::npos);
    EXPECT_EQ(issues[0].line, 3u);
}

TEST(MaintopCoverageRule, DeclarationsAndTestCallersAreOutOfScope)
{
    // The seam's own declarations (no member access before the name)
    // must not read as call sites, and registrations inside tests/ are
    // drills, not production ops.
    const auto issues = issuesOfRule(
        lintSources({{"src/dram/maintenance_engine.h",
                      "class MaintenanceEngine {\n"
                      "  public:\n"
                      "    void registerOp(MaintenanceOp op);\n"
                      "    void registerOp(std::string name, "
                      "MaintenanceOp op, OpWakeBound wake);\n"
                      "};\n"},
                     {"tests/test_drill.cpp",
                      "TEST(X, Y) { maint.registerOp(op); }\n"}}),
        "maintop-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

TEST(MaintopCoverageRule, TestsRequirementInactiveWithoutCorpus)
{
    // A src-only scan still enforces the canonical key but has no
    // corpus to demand drills from.
    const auto issues = issuesOfRule(
        lintSources(maintopdrill::files(maintopdrill::kNamedCall, "")),
        "maintop-coverage");
    EXPECT_TRUE(issues.empty()) << joined(issues);
}

// --- The real tree must be clean ----------------------------------------

TEST(RepoScan, SourceTreeIsLintClean)
{
#ifndef PRA_SOURCE_DIR
    GTEST_SKIP() << "PRA_SOURCE_DIR not defined";
#else
    namespace fs = std::filesystem;
    const fs::path src = fs::path(PRA_SOURCE_DIR) / "src";
    ASSERT_TRUE(fs::is_directory(src)) << src;

    // tests/ joins the scan as the fault-coverage corpus, mirroring
    // tools/pra_lint.cpp.
    std::vector<fs::path> paths;
    for (const fs::path &dir :
         {src, fs::path(PRA_SOURCE_DIR) / "tests"}) {
        if (!fs::is_directory(dir))
            continue;
        for (const fs::directory_entry &e :
             fs::recursive_directory_iterator(dir)) {
            if (!e.is_regular_file())
                continue;
            const std::string ext = e.path().extension().string();
            if (ext == ".h" || ext == ".cpp")
                paths.push_back(e.path());
        }
    }
    std::sort(paths.begin(), paths.end());
    ASSERT_GT(paths.size(), 50u);   // Sanity: the tree was actually found.

    std::vector<SourceFile> files;
    for (const fs::path &p : paths) {
        std::ifstream in(p);
        ASSERT_TRUE(in) << p;
        std::ostringstream ss;
        ss << in.rdbuf();
        std::error_code ec;
        files.push_back(
            {fs::relative(p, fs::path(PRA_SOURCE_DIR), ec).generic_string(),
             ss.str()});
    }

    const auto issues = lintSources(files);
    EXPECT_TRUE(issues.empty()) << joined(issues);

    // The scan must have really exercised the coverage rules: the
    // config, energy, and fault-coverage anchors exist in the tree.
    bool sawConfig = false, sawPower = false, sawTests = false;
    for (const SourceFile &f : files) {
        sawConfig |= f.path == "src/sim/config_io.cpp";
        sawPower |= f.path == "src/power/power_model.cpp";
        sawTests |= f.path.rfind("tests/", 0) == 0;
    }
    EXPECT_TRUE(sawConfig);
    EXPECT_TRUE(sawPower);
    EXPECT_TRUE(sawTests);
#endif
}

} // namespace
} // namespace pra::analysis
