/**
 * @file
 * Tests for the SchemeModel plugin registry and the behavioural contract
 * of every registered DRAM organization (baseline, FGA, Half-DRAM, PRA,
 * combined, SDS, Sectored, PRA+SpecRead). The registry-driven sweeps at
 * the bottom run against allSchemes() so a newly registered comparator
 * is conformance-checked with zero edits here.
 */
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/scheme.h"

namespace pra {
namespace {

const power::PowerParams kPower{};

// --- Registry resolution ------------------------------------------------

TEST(SchemeRegistry, NamesResolveToDisplayNames)
{
    EXPECT_STREQ(schemeByName("baseline").displayName(), "Baseline");
    EXPECT_STREQ(schemeByName("fga").displayName(), "FGA");
    EXPECT_STREQ(schemeByName("halfdram").displayName(), "Half-DRAM");
    EXPECT_STREQ(schemeByName("pra").displayName(), "PRA");
    EXPECT_STREQ(schemeByName("halfdram+pra").displayName(),
                 "Half-DRAM+PRA");
    EXPECT_STREQ(schemeByName("sds").displayName(), "SDS");
    EXPECT_STREQ(schemeByName("sectored").displayName(), "Sectored");
    EXPECT_STREQ(schemeByName("pra_spec_read").displayName(),
                 "PRA+SpecRead");
}

TEST(SchemeRegistry, LookupIsCaseInsensitiveAcrossSpellings)
{
    // Display names and aliases resolve to the same singleton as the
    // registry key; pointer equality is scheme identity.
    EXPECT_EQ(findScheme("PRA"), &schemeByName("pra"));
    EXPECT_EQ(findScheme("Half-DRAM"), &schemeByName("halfdram"));
    EXPECT_EQ(findScheme("half-dram"), &schemeByName("halfdram"));
    EXPECT_EQ(findScheme("combined"), &schemeByName("halfdram+pra"));
    EXPECT_EQ(findScheme("Half-DRAM+PRA"), &schemeByName("halfdram+pra"));
    EXPECT_EQ(findScheme("specread"), &schemeByName("pra_spec_read"));
    EXPECT_EQ(findScheme("pra-spec-read"), &schemeByName("pra_spec_read"));
    EXPECT_EQ(findScheme("SECTORED"), &schemeByName("sectored"));
    EXPECT_EQ(findScheme("no-such-scheme"), nullptr);
}

TEST(SchemeRegistry, UnknownNameThrowsListingEveryRegisteredScheme)
{
    try {
        schemeByName("warp-core");
        FAIL() << "schemeByName must throw on an unknown name";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("warp-core"), std::string::npos) << what;
        EXPECT_NE(what.find("registered schemes:"), std::string::npos)
            << what;
        for (const SchemeModel *s : allSchemes())
            EXPECT_NE(what.find(s->name()), std::string::npos)
                << what << " missing " << s->name();
    }
}

TEST(SchemeRegistry, RegistrationOrderIsStable)
{
    // Sweeps, bench args, and golden tables index the registry by
    // position; the order is part of the published contract.
    const auto &all = allSchemes();
    ASSERT_EQ(all.size(), 8u);
    EXPECT_STREQ(all[0]->name(), "baseline");
    EXPECT_STREQ(all[1]->name(), "fga");
    EXPECT_STREQ(all[2]->name(), "halfdram");
    EXPECT_STREQ(all[3]->name(), "pra");
    EXPECT_STREQ(all[4]->name(), "halfdram+pra");
    EXPECT_STREQ(all[5]->name(), "sds");
    EXPECT_STREQ(all[6]->name(), "sectored");
    EXPECT_STREQ(all[7]->name(), "pra_spec_read");
    EXPECT_EQ(&baselineScheme(), all[0]);
}

TEST(SchemeRegistry, SpellingsAreUniqueAndSelfResolving)
{
    std::set<std::string> seen;
    for (const SchemeModel *s : allSchemes()) {
        EXPECT_TRUE(seen.insert(s->name()).second) << s->name();
        EXPECT_EQ(findScheme(s->name()), s);
        EXPECT_EQ(findScheme(s->displayName()), s);
        for (const std::string &alias : s->aliases()) {
            EXPECT_TRUE(seen.insert(alias).second) << alias;
            EXPECT_EQ(findScheme(alias), s) << alias;
        }
        EXPECT_NE(registeredSchemeNames().find(s->name()),
                  std::string::npos);
    }
}

// --- Per-scheme behavioural contracts -----------------------------------

TEST(Scheme, BaselineAlwaysFullRow)
{
    const SchemeModel &t = schemeByName("baseline");
    EXPECT_EQ(t.actGranularity(false, WordMask::full()), 8u);
    EXPECT_EQ(t.actGranularity(true, WordMask::single(0)), 8u);
    EXPECT_TRUE(t.actMask(true, WordMask::single(0)).isFull());
    EXPECT_FALSE(t.needsMaskCycle(true, WordMask::single(0)));
    EXPECT_EQ(t.burstCycles(4), 4u);
    EXPECT_EQ(t.wordsDriven(WordMask::single(0)), kWordsPerLine);
    EXPECT_DOUBLE_EQ(t.actWeight(8, kPower), 1.0);
}

TEST(Scheme, FgaHalfRowDoubleBursts)
{
    const SchemeModel &t = schemeByName("fga");
    // Half-row activation for reads AND writes.
    EXPECT_EQ(t.actGranularity(false, WordMask::full()), 4u);
    EXPECT_EQ(t.actGranularity(true, WordMask::single(2)), 4u);
    // n-bit prefetch broken: a 64 B line takes twice the bus time.
    EXPECT_EQ(t.burstCycles(4), 8u);
    // The whole line is still transferred.
    EXPECT_EQ(t.wordsDriven(WordMask::single(2)), kWordsPerLine);
    EXPECT_FALSE(t.needsMaskCycle(true, WordMask::single(2)));
}

TEST(Scheme, HalfDramHalfHeightFullBandwidth)
{
    const SchemeModel &t = schemeByName("halfdram");
    EXPECT_TRUE(t.halfHeight());
    EXPECT_EQ(t.actGranularity(false, WordMask::full()), 8u);
    EXPECT_EQ(t.actGranularity(true, WordMask::single(1)), 8u);
    EXPECT_EQ(t.burstCycles(4), 4u);   // Full bandwidth maintained.
    EXPECT_EQ(t.wordsDriven(WordMask::single(1)), kWordsPerLine);
    // Half-height activations get roughly the 2x tFAW relaxation the
    // Half-DRAM paper claims.
    const double w = t.actWeight(8, kPower);
    EXPECT_GT(w, 0.4);
    EXPECT_LT(w, 0.65);
}

TEST(Scheme, PraAsymmetricReadWrite)
{
    const SchemeModel &t = schemeByName("pra");
    // Reads: full row, full bandwidth, no mask cycle.
    EXPECT_EQ(t.actGranularity(false, WordMask::full()), 8u);
    EXPECT_FALSE(t.needsMaskCycle(false, WordMask::full()));
    EXPECT_EQ(t.burstCycles(4), 4u);
    EXPECT_FALSE(t.partialReads());
    EXPECT_TRUE(t.readNeed(0x1234 << 6).isFull());
    EXPECT_TRUE(t.readActMask(0x1234 << 6).isFull());
    // Writes: granularity tracks the dirty mask.
    for (unsigned k = 1; k <= 8; ++k) {
        const WordMask m = WordMask::firstWords(k);
        EXPECT_EQ(t.actGranularity(true, m), k);
        EXPECT_EQ(t.actMask(true, m), m);
        EXPECT_EQ(t.wordsDriven(m), k);
    }
    // Mask cycle only for genuinely partial activations.
    EXPECT_TRUE(t.needsMaskCycle(true, WordMask::single(3)));
    EXPECT_FALSE(t.needsMaskCycle(true, WordMask::full()));
}

TEST(Scheme, PraEmptyMaskFallsBackToFullRow)
{
    const SchemeModel &t = schemeByName("pra");
    EXPECT_EQ(t.actGranularity(true, WordMask::none()), 8u);
    EXPECT_TRUE(t.actMask(true, WordMask::none()).isFull());
    EXPECT_FALSE(t.needsMaskCycle(true, WordMask::none()));
}

TEST(Scheme, PraActWeightTracksPowerRatio)
{
    const SchemeModel &t = schemeByName("pra");
    // Table 3: 1/8-row activation draws 3.7 / 22.2 of full power, so it
    // charges the tFAW window proportionally.
    EXPECT_NEAR(t.actWeight(1, kPower), 3.7 / 22.2, 1e-9);
    EXPECT_NEAR(t.actWeight(4, kPower), 11.6 / 22.2, 1e-9);
    for (unsigned g = 1; g < 8; ++g)
        EXPECT_LT(t.actWeight(g, kPower), t.actWeight(g + 1, kPower));
}

TEST(Scheme, CombinedSchemeComposesBothMechanisms)
{
    const SchemeModel &t = schemeByName("halfdram+pra");
    EXPECT_TRUE(t.halfHeight());
    EXPECT_TRUE(t.partialWrites());
    EXPECT_EQ(t.actGranularity(true, WordMask::single(0)), 1u);
    EXPECT_EQ(t.actGranularity(false, WordMask::full()), 8u);
    EXPECT_EQ(t.burstCycles(4), 4u);
    // Composition is strictly cheaper than either alone.
    const double combined_w = t.actWeight(1, kPower);
    EXPECT_LT(combined_w, schemeByName("pra").actWeight(1, kPower));
    EXPECT_LT(combined_w, schemeByName("halfdram").actWeight(8, kPower));
}

TEST(Scheme, SectoredOpensExactlyTheDemandedSectors)
{
    const SchemeModel &t = schemeByName("sectored");
    EXPECT_TRUE(t.partialWrites());
    EXPECT_TRUE(t.partialReads());
    // The read demand IS the read activation mask: sector bits travel
    // with the request, so there is nothing to mispredict.
    for (Addr line = 0; line < 64; ++line) {
        const Addr addr = line << 6;
        EXPECT_EQ(t.readActMask(addr), t.readNeed(addr));
        EXPECT_FALSE(t.readNeed(addr).empty());
    }
    // Granularity is mask-driven in BOTH directions.
    EXPECT_EQ(t.actGranularity(false, WordMask::firstWords(3)), 3u);
    EXPECT_EQ(t.actGranularity(true, WordMask::firstWords(3)), 3u);
    EXPECT_EQ(t.actGranularity(false, WordMask::none()), 8u);
    // Sector-select bits ride the ACT for any partial open, reads too.
    EXPECT_TRUE(t.needsMaskCycle(false, WordMask::single(5)));
    EXPECT_FALSE(t.needsMaskCycle(false, WordMask::full()));
}

TEST(Scheme, SectoredLinearEnergyAndShortenedBursts)
{
    const SchemeModel &t = schemeByName("sectored");
    // Isolated sub-arrays: no shared-structure floor, weight is g/8.
    for (unsigned g = 1; g <= 8; ++g)
        EXPECT_DOUBLE_EQ(t.actWeight(g, kPower), g / 8.0);
    // I/O is shortened to the moved sectors in both directions...
    EXPECT_EQ(t.readWordsDriven(WordMask::firstWords(2)), 2u);
    EXPECT_EQ(t.wordsDriven(WordMask::firstWords(2)), 2u);
    // ...and the burst is ceil-scaled, never below one bus cycle.
    EXPECT_EQ(t.columnBurstCycles(false, WordMask::full(), 4), 4u);
    EXPECT_EQ(t.columnBurstCycles(false, WordMask::firstWords(4), 4), 2u);
    EXPECT_EQ(t.columnBurstCycles(false, WordMask::single(0), 4), 1u);
    EXPECT_EQ(t.columnBurstCycles(true, WordMask::firstWords(3), 4), 2u);
    // Empty masks mean "no information": full line.
    EXPECT_EQ(t.columnBurstCycles(false, WordMask::none(), 4), 4u);
    EXPECT_EQ(t.readWordsDriven(WordMask::none()), kWordsPerLine);
}

TEST(Scheme, SectoredChargesTheLinearActivationBucket)
{
    const SchemeModel &t = schemeByName("sectored");
    power::EnergyCounts c;
    t.accountActivate(c, 3, false);
    t.accountActivate(c, 5, true);
    EXPECT_EQ(c.sdsActs, 2u);
    EXPECT_EQ(c.sdsChipsActivated, 8u);
    EXPECT_EQ(c.acts, (std::array<std::uint64_t, 8>{}));
    EXPECT_EQ(c.totalActs(), 2u);
}

TEST(Scheme, SpecReadWritesBehaveExactlyLikePra)
{
    const SchemeModel &t = schemeByName("pra_spec_read");
    const SchemeModel &p = schemeByName("pra");
    for (int bits : {0x00, 0x01, 0x81, 0x0f, 0xff, 0x55}) {
        const WordMask m(static_cast<std::uint8_t>(bits));
        EXPECT_EQ(t.actGranularity(true, m), p.actGranularity(true, m));
        EXPECT_EQ(t.actMask(true, m), p.actMask(true, m));
        EXPECT_EQ(t.needsMaskCycle(true, m), p.needsMaskCycle(true, m));
        EXPECT_EQ(t.wordsDriven(m), p.wordsDriven(m));
    }
    // Read I/O stays full-line (only the activation is partial): the
    // paper's asymmetric DQ design point is preserved.
    EXPECT_EQ(t.readWordsDriven(WordMask::single(0)), kWordsPerLine);
    EXPECT_EQ(t.columnBurstCycles(false, WordMask::single(0), 4), 4u);
    for (unsigned g = 1; g <= 8; ++g)
        EXPECT_DOUBLE_EQ(t.actWeight(g, kPower), p.actWeight(g, kPower));
}

TEST(Scheme, SpecReadPredictionUnderpredictsSomeLines)
{
    const SchemeModel &t = schemeByName("pra_spec_read");
    unsigned under = 0, exact = 0;
    for (Addr line = 0; line < 4096; ++line) {
        const Addr addr = line << 6;
        const WordMask need = t.readNeed(addr);
        const WordMask spec = t.readActMask(addr);
        // The speculative mask is never empty and never strictly wider
        // than the demand (only equal or underpredicted).
        EXPECT_FALSE(spec.empty());
        EXPECT_TRUE(need.covers(spec));
        if (spec == need)
            ++exact;
        else
            ++under;
        // Determinism: the same line always predicts the same mask.
        EXPECT_EQ(t.readActMask(addr), spec);
    }
    // The modeled predictor is mostly exact with a deterministic ~1/8
    // underprediction rate (lines electing the fallback path).
    EXPECT_GT(exact, under);
    EXPECT_GT(under, 4096u / 16);
    EXPECT_LT(under, 4096u / 4);
}

TEST(Scheme, SdsChipSelectSemantics)
{
    const SchemeModel &t = schemeByName("sds");
    EXPECT_TRUE(t.chipSelect());
    EXPECT_FALSE(t.partialWrites());
    EXPECT_FALSE(t.partialReads());
    // The write algebra consumes the chip mask, not the word mask.
    EXPECT_EQ(t.writeMask(WordMask::full(), 0b101).bits(), 0b101);
    EXPECT_EQ(t.writeNeed(WordMask::full(), 0b101).bits(), 0b101);
    EXPECT_TRUE(t.writeNeed(WordMask::full(), 0).isFull());
    EXPECT_DOUBLE_EQ(t.actWeight(2, kPower), 2.0 / 8.0);
}

// --- Registry-driven conformance sweep ----------------------------------
//
// Every scheme — including ones registered after this file was written —
// must satisfy the invariants the controller, auditor, and model checker
// rely on. A comparator that breaks one of these corrupts the simulation
// silently, so they are pinned here against the live registry.

class SchemeConformance
    : public ::testing::TestWithParam<const SchemeModel *>
{
};

TEST_P(SchemeConformance, IdentityIsWellFormed)
{
    const SchemeModel &t = *GetParam();
    EXPECT_GT(std::string(t.name()).size(), 0u);
    EXPECT_GT(std::string(t.displayName()).size(), 0u);
    // Registry keys are lower-case config spellings.
    for (const char *p = t.name(); *p; ++p)
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(*p)))
            << t.name();
}

TEST_P(SchemeConformance, ActivationAlgebraInvariants)
{
    const SchemeModel &t = *GetParam();
    for (int bits = 0; bits <= 0xff; ++bits) {
        const WordMask m(static_cast<std::uint8_t>(bits));
        for (bool is_write : {false, true}) {
            const unsigned g = t.actGranularity(is_write, m);
            EXPECT_GE(g, 1u) << t.name();
            EXPECT_LE(g, 8u) << t.name();
            // The opened mask is never empty, covers any non-empty
            // demand, and its population matches the granularity claim
            // for partial opens.
            const WordMask opened = t.actMask(is_write, m);
            EXPECT_FALSE(opened.empty()) << t.name();
            if (!m.empty()) {
                EXPECT_TRUE(opened.covers(m) || opened.isFull())
                    << t.name() << " mask " << bits;
            }
            // A full open never needs the extra mask cycle.
            if (opened.isFull()) {
                EXPECT_FALSE(t.needsMaskCycle(is_write, m)) << t.name();
            }
            // Weight is positive and never exceeds a full-row ACT.
            const double w = t.actWeight(g, kPower);
            EXPECT_GT(w, 0.0) << t.name();
            EXPECT_LE(w, 1.0 + 1e-9) << t.name();
        }
        // Driven words are within the line in both directions.
        EXPECT_GE(t.wordsDriven(m), 1u) << t.name();
        EXPECT_LE(t.wordsDriven(m), kWordsPerLine) << t.name();
        EXPECT_GE(t.readWordsDriven(m), 1u) << t.name();
        EXPECT_LE(t.readWordsDriven(m), kWordsPerLine) << t.name();
        // Bursts are at least one bus cycle.
        EXPECT_GE(t.columnBurstCycles(false, m, 4), 1u) << t.name();
        EXPECT_GE(t.columnBurstCycles(true, m, 4), 1u) << t.name();
    }
    EXPECT_GE(t.burstCycles(4), 4u) << t.name();
}

TEST_P(SchemeConformance, ReadSideContract)
{
    const SchemeModel &t = *GetParam();
    for (Addr line = 0; line < 512; ++line) {
        const Addr addr = line << 6;
        const WordMask need = t.readNeed(addr);
        const WordMask spec = t.readActMask(addr);
        // Demand and prediction are never empty (a read always consumes
        // and opens something), and both are pure functions of the
        // address (the controller, auditor, and checker re-derive them
        // independently).
        EXPECT_FALSE(need.empty()) << t.name();
        EXPECT_FALSE(spec.empty()) << t.name();
        EXPECT_EQ(t.readNeed(addr), need) << t.name();
        EXPECT_EQ(t.readActMask(addr), spec) << t.name();
        // Schemes without read-side partial activation keep the
        // full-row contract.
        if (!t.partialReads()) {
            EXPECT_TRUE(need.isFull()) << t.name();
            EXPECT_TRUE(spec.isFull()) << t.name();
        }
    }
}

TEST_P(SchemeConformance, AccountActivateChargesExactlyOneActivation)
{
    const SchemeModel &t = *GetParam();
    for (unsigned g = 1; g <= 8; ++g) {
        for (bool is_write : {false, true}) {
            power::EnergyCounts c;
            t.accountActivate(c, g, is_write);
            EXPECT_EQ(c.totalActs(), 1u)
                << t.name() << " g=" << g << " w=" << is_write;
        }
    }
}

TEST_P(SchemeConformance, WriteAlgebraHelpersAreConsistent)
{
    const SchemeModel &t = *GetParam();
    for (int bits : {0x00, 0x01, 0x80, 0x0f, 0xff}) {
        const WordMask m(static_cast<std::uint8_t>(bits));
        for (int chips : {0x00, 0x05, 0xff}) {
            const auto cm = static_cast<std::uint8_t>(chips);
            const WordMask need = t.writeNeed(m, cm);
            EXPECT_FALSE(need.empty()) << t.name();
            // The demand equals the raw mask with the empty→full-row
            // fallback applied, in whichever domain the scheme uses.
            const WordMask raw = t.writeMask(m, cm);
            EXPECT_EQ(need, raw.empty() ? WordMask::full()
                      : t.partialWrites() || t.chipSelect()
                          ? raw
                          : WordMask::full())
                << t.name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeConformance,
                         ::testing::ValuesIn(allSchemes()),
                         [](const auto &info) {
                             std::string n = info.param->name();
                             for (char &c : n)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

/** Property sweep: every scheme, every mask, invariants hold. */
class SchemeMaskSweep
    : public ::testing::TestWithParam<std::tuple<const SchemeModel *, int>>
{
};

TEST_P(SchemeMaskSweep, GranularityMatchesMaskAndScheme)
{
    const auto [scheme, bits] = GetParam();
    const SchemeModel &t = *scheme;
    const WordMask m(static_cast<std::uint8_t>(bits));
    for (bool is_write : {false, true}) {
        const unsigned g = t.actGranularity(is_write, m);
        EXPECT_GE(g, 1u);
        EXPECT_LE(g, 8u);
        // The opened footprint always covers the request's need.
        const WordMask opened = t.actMask(is_write, m);
        if (!m.empty())
            EXPECT_TRUE(opened.covers(m));
        else
            EXPECT_TRUE(opened.isFull());
        // Weight never exceeds a full-row activation's.
        EXPECT_LE(t.actWeight(g, kPower), 1.0 + 1e-9);
        EXPECT_GT(t.actWeight(g, kPower), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeMaskSweep,
    ::testing::Combine(::testing::ValuesIn(allSchemes()),
                       ::testing::Values(0x00, 0x01, 0x80, 0x81, 0x0f,
                                         0xff, 0x55, 0x10)));

} // namespace
} // namespace pra
